//! Bring-your-own-capture: run the detection pipeline over a pcap file.
//!
//! This is the workflow a telescope operator would actually use: point
//! the tool at a capture of dark-space traffic and get darknet events
//! plus aggressive-hitter lists out.
//!
//! ```sh
//! cargo run --release --example pcap_events -- <file.pcap> <dark-prefix>
//! # e.g. after `cargo run --release --example daily_blocklist`:
//! cargo run --release --example pcap_events -- out/darknet_excerpt.pcap 20.0.0.0/18
//! ```
//!
//! With no arguments, a demo capture is synthesized in memory first.

use aggressive_scanners::core::defs::Definition;
use aggressive_scanners::core::detector::{Detector, DetectorConfig};
use aggressive_scanners::net::packet::PacketMeta;
use aggressive_scanners::net::pcap::{PcapReader, PcapWriter, DEFAULT_SNAPLEN, LINKTYPE_RAW};
use aggressive_scanners::net::prefix::Prefix;
use aggressive_scanners::telescope::capture::Telescope;
use aggressive_scanners::telescope::timeout;

fn synthesize_demo() -> (Vec<u8>, Prefix) {
    use aggressive_scanners::simnet::scenario::{Scenario, ScenarioConfig};
    eprintln!("no pcap given; synthesizing a demo capture...");
    let mut sc = Scenario::build(ScenarioConfig::tiny(1, 5));
    let dark = sc.world.config.dark;
    let mut buf = Vec::new();
    let mut w = PcapWriter::new(&mut buf, LINKTYPE_RAW, DEFAULT_SNAPLEN).expect("header");
    while let Some(pkt) = sc.mux.next_packet() {
        if dark.contains(pkt.dst) {
            w.write_packet(pkt.ts, &pkt.to_bytes()).expect("record");
        }
    }
    w.finish().expect("flush");
    (buf, dark)
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (bytes, dark) = match args.as_slice() {
        [path, prefix] => {
            let bytes = std::fs::read(path).unwrap_or_else(|e| {
                eprintln!("cannot read {path}: {e}");
                std::process::exit(1);
            });
            let dark: Prefix = prefix.parse().unwrap_or_else(|e| {
                eprintln!("bad prefix {prefix}: {e}");
                std::process::exit(1);
            });
            (bytes, dark)
        }
        [] => synthesize_demo(),
        _ => {
            eprintln!("usage: pcap_events [<file.pcap> <dark-prefix>]");
            std::process::exit(2);
        }
    };

    // Auto-detect classic pcap vs pcapng by magic and normalize both to
    // a (ts, linktype, bytes) record stream.
    let records: Box<dyn Iterator<Item = (aggressive_scanners::net::time::Ts, u16, Vec<u8>)>> =
        if bytes.len() >= 4 && bytes[0..4] == aggressive_scanners::net::pcapng::BT_SHB.to_le_bytes()
        {
            let r =
                aggressive_scanners::net::pcapng::PcapNgReader::new(std::io::Cursor::new(bytes))
                    .unwrap_or_else(|e| {
                        eprintln!("not a pcapng file: {e}");
                        std::process::exit(1);
                    });
            eprintln!("pcapng capture");
            Box::new(r.packets().map_while(|p| p.ok()).map(|p| (p.ts, 101u16, p.data)))
        } else {
            let r = PcapReader::new(std::io::Cursor::new(bytes)).unwrap_or_else(|e| {
                eprintln!("not a pcap file: {e}");
                std::process::exit(1);
            });
            eprintln!(
                "classic pcap, linktype {} snaplen {}",
                r.header().linktype,
                r.header().snaplen
            );
            let lt = r.header().linktype as u16;
            Box::new(r.records().map_while(|p| p.ok()).map(move |p| (p.ts, lt, p.data)))
        };

    let mut telescope = Telescope::new(dark, timeout::paper_default());
    let mut parsed = 0u64;
    let mut skipped = 0u64;
    for (ts, linktype, data) in records {
        let pkt = if u32::from(linktype) == aggressive_scanners::net::pcap::LINKTYPE_ETHERNET {
            PacketMeta::parse_frame(&data, ts)
        } else {
            PacketMeta::parse_ip(&data, ts)
        };
        match pkt {
            Ok(p) => {
                parsed += 1;
                telescope.observe(&p);
            }
            Err(_) => skipped += 1,
        }
    }
    println!("parsed {parsed} packets ({skipped} unparsable records skipped)");

    let events = telescope.flush();
    println!(
        "captured {} scanning packets from {} sources -> {} darknet events",
        telescope.stats().scan_packets(),
        telescope.stats().unique_sources(),
        events.len()
    );

    let mut det = Detector::new(DetectorConfig::new(telescope.dark_space().size()));
    det.ingest_all(&events);
    let report = det.finalize();
    for def in Definition::ALL {
        let hitters = report.hitters(def);
        println!("{}: {} hitters", def.short(), hitters.len());
        let mut v: Vec<String> = hitters.iter().map(|ip| ip.to_string()).collect();
        v.sort();
        for ip in v.iter().take(10) {
            println!("    {ip}");
        }
    }
}
