//! Hand-rolled CRC32 (IEEE 802.3, reflected polynomial `0xEDB88320`).
//!
//! The workspace carries zero third-party dependencies (see
//! `vendor/README.md`), so the frame checksum is implemented here from
//! first principles: a compile-time 256-entry lookup table and a
//! streaming update loop. This is the same CRC32 used by zlib, Ethernet
//! and pcapng — any single-bit error in a checked span is detected, as
//! are all burst errors up to 32 bits.

/// Lookup table for the reflected polynomial, built at compile time.
const TABLE: [u32; 256] = build_table();

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0usize;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

/// Streaming CRC32 state; feed spans with [`Crc32::update`] and read the
/// final checksum with [`Crc32::finish`].
#[derive(Debug, Clone, Copy)]
pub struct Crc32(u32);

impl Default for Crc32 {
    fn default() -> Self {
        Crc32::new()
    }
}

impl Crc32 {
    /// Fresh state (all-ones preset, per the IEEE definition).
    pub fn new() -> Crc32 {
        Crc32(0xFFFF_FFFF)
    }

    /// Fold `bytes` into the running checksum.
    pub fn update(&mut self, bytes: &[u8]) {
        let mut c = self.0;
        for &b in bytes {
            c = TABLE[((c ^ u32::from(b)) & 0xFF) as usize] ^ (c >> 8);
        }
        self.0 = c;
    }

    /// The final (bit-inverted) checksum.
    pub fn finish(self) -> u32 {
        self.0 ^ 0xFFFF_FFFF
    }
}

/// One-shot CRC32 of `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = Crc32::new();
    c.update(bytes);
    c.finish()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // The canonical check value for CRC-32/ISO-HDLC.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
    }

    #[test]
    fn streaming_matches_oneshot() {
        let data: Vec<u8> = (0..=255u8).cycle().take(1000).collect();
        let mut c = Crc32::new();
        for chunk in data.chunks(7) {
            c.update(chunk);
        }
        assert_eq!(c.finish(), crc32(&data));
    }

    #[test]
    fn single_bit_flips_change_the_checksum() {
        let data = b"the quick brown fox jumps over the lazy dog";
        let base = crc32(data);
        for i in 0..data.len() * 8 {
            let mut m = data.to_vec();
            m[i / 8] ^= 1 << (i % 8);
            assert_ne!(crc32(&m), base, "bit {i} undetected");
        }
    }
}
