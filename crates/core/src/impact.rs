//! Network-impact measurement: joining hitter lists against ISP flow
//! datasets (Tables 2, 4, 8) and unsampled packet taps (Figures 1, 2).

use ah_flow::record::FlowRecord;
use ah_flow::router::{FlowDataset, RouterId};
use ah_net::ipv4::Ipv4Addr4;
use ah_net::packet::PacketMeta;
use ah_net::time::Ts;
use std::collections::{BTreeMap, HashSet};

/// Impact of a hitter population at one router on one day.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RouterDayImpact {
    /// The border router measured.
    pub router: RouterId,
    /// Day index within the run.
    pub day: u64,
    /// Estimated hitter packets (sampled count × sampling rate).
    pub ah_packets: u64,
    /// Ground-truth packets the router processed that day.
    pub total_packets: u64,
}

impl RouterDayImpact {
    /// Hitter share of all routed packets, in percent.
    pub fn pct(&self) -> f64 {
        if self.total_packets == 0 {
            0.0
        } else {
            100.0 * self.ah_packets as f64 / self.total_packets as f64
        }
    }
}

/// Table 2/4 core: per (router, day) impact of a per-day hitter
/// population. `hitters(day)` supplies the population active that day
/// (pass a constant set for list-based joins like Table 4's ACKed rows).
///
/// Only packets *originating from* a hitter count, mirroring the paper's
/// methodology ("packets originating from a source IP belonging to an
/// identified AH").
pub fn flow_impact(
    ds: &FlowDataset,
    mut hitters: impl FnMut(u64) -> Option<HashSet<Ipv4Addr4>>,
) -> Vec<RouterDayImpact> {
    let mut per_day: BTreeMap<u64, HashSet<Ipv4Addr4>> = BTreeMap::new();
    let mut ah: BTreeMap<(RouterId, u64), u64> = BTreeMap::new();
    for r in &ds.records {
        let day = r.day();
        let set = per_day.entry(day).or_insert_with(|| hitters(day).unwrap_or_default());
        if set.contains(&r.key.src) {
            *ah.entry((r.router, day)).or_default() += r.packets;
        }
    }
    ds.router_day_keys()
        .into_iter()
        .map(|(router, day)| RouterDayImpact {
            router,
            day,
            ah_packets: ds.estimate(ah.get(&(router, day)).copied().unwrap_or(0)),
            total_packets: ds.router_day_packets(router, day),
        })
        .collect()
}

/// Table 8: what share of a day's hitter population is *seen* (as a flow
/// source) at each router.
#[derive(Debug, Clone)]
pub struct PresenceRow {
    /// Day index within the run.
    pub day: u64,
    /// Hitters in the darknet-derived population that day.
    pub population: u64,
    /// Per router: fraction of the population seen there (0..=1).
    pub seen_fraction: Vec<(RouterId, f64)>,
}

/// Compute presence of per-day populations at every router.
pub fn presence(
    ds: &FlowDataset,
    mut hitters: impl FnMut(u64) -> Option<HashSet<Ipv4Addr4>>,
) -> Vec<PresenceRow> {
    // (router, day) -> sources seen.
    let mut seen: BTreeMap<(RouterId, u64), HashSet<Ipv4Addr4>> = BTreeMap::new();
    let mut days: BTreeMap<u64, ()> = BTreeMap::new();
    let mut routers: HashSet<RouterId> = HashSet::new();
    for r in &ds.records {
        seen.entry((r.router, r.day())).or_default().insert(r.key.src);
        days.insert(r.day(), ());
        routers.insert(r.router);
    }
    let mut routers: Vec<RouterId> = routers.into_iter().collect();
    routers.sort_unstable();
    days.keys()
        .filter_map(|&day| {
            let pop = hitters(day)?;
            if pop.is_empty() {
                return None;
            }
            let fracs = routers
                .iter()
                .map(|&router| {
                    let got = seen
                        .get(&(router, day))
                        .map_or(0, |s| pop.iter().filter(|ip| s.contains(ip)).count());
                    (router, got as f64 / pop.len() as f64)
                })
                .collect();
            Some(PresenceRow { day, population: pop.len() as u64, seen_fraction: fracs })
        })
        .collect()
}

/// Classify a flow record into the telescope's three scanning buckets
/// (for the Table 3 darknet-vs-flow protocol comparison). Flow data has
/// no per-packet flags, so a TCP flow whose OR'd flags are SYN-only is
/// counted as TCP-SYN; ICMP flows count as echo probes.
pub fn flow_scan_bucket(r: &FlowRecord) -> Option<usize> {
    match r.key.protocol {
        6 if r.tcp_flags & 0x12 == 0x02 => Some(0),
        6 => None,
        17 => Some(1),
        1 => Some(2),
        _ => None,
    }
}

/// Streaming analyzer for an unsampled packet tap (Figures 1 and 2):
/// per-second total and hitter packet counts.
pub struct TapAnalyzer {
    ah: HashSet<Ipv4Addr4>,
    start: Ts,
    bins: Vec<(u64, u64)>, // (total, ah) per elapsed second
}

impl TapAnalyzer {
    /// `ah` is the hitter list being joined (the paper derives it from
    /// darknet detection the day before the tap window).
    pub fn new(ah: HashSet<Ipv4Addr4>, start: Ts) -> TapAnalyzer {
        TapAnalyzer { ah, start, bins: Vec::new() }
    }

    /// Observe one packet crossing the tap.
    pub fn observe(&mut self, pkt: &PacketMeta) {
        let sec = pkt.ts.since(self.start).secs() as usize;
        if self.bins.len() <= sec {
            self.bins.resize(sec + 1, (0, 0));
        }
        self.bins[sec].0 += 1;
        if self.ah.contains(&pkt.src) {
            self.bins[sec].1 += 1;
        }
    }

    /// The finished time series.
    pub fn series(&self) -> TapSeries {
        TapSeries { bins: self.bins.clone() }
    }
}

/// Per-second tap series with the paper's three views.
#[derive(Debug, Clone)]
pub struct TapSeries {
    /// (total, hitter) packets per elapsed second.
    pub bins: Vec<(u64, u64)>,
}

impl TapSeries {
    /// Total packets across the window.
    pub fn total_packets(&self) -> u64 {
        self.bins.iter().map(|b| b.0).sum()
    }

    /// Hitter packets across the window.
    pub fn ah_packets(&self) -> u64 {
        self.bins.iter().map(|b| b.1).sum()
    }

    /// Figure 1 top row: cumulative hitter fraction over time (percent).
    pub fn cumulative_pct(&self) -> Vec<f64> {
        let mut total = 0u64;
        let mut ah = 0u64;
        self.bins
            .iter()
            .map(|&(t, a)| {
                total += t;
                ah += a;
                if total == 0 {
                    0.0
                } else {
                    100.0 * ah as f64 / total as f64
                }
            })
            .collect()
    }

    /// Figure 1 middle row: instantaneous (per-second) hitter percent.
    pub fn instantaneous_pct(&self) -> Vec<f64> {
        self.bins
            .iter()
            .map(|&(t, a)| if t == 0 { 0.0 } else { 100.0 * a as f64 / t as f64 })
            .collect()
    }

    /// Figure 1 bottom row: total rate in packets per second.
    pub fn rate_pps(&self) -> Vec<u64> {
        self.bins.iter().map(|b| b.0).collect()
    }

    /// Figure 2: hitter packet rate normalized by the network's /24 count.
    pub fn ah_rate_per_slash24(&self, slash24s: u64) -> Vec<f64> {
        let n = slash24s.max(1) as f64;
        self.bins.iter().map(|b| b.1 as f64 / n).collect()
    }

    /// Coarsen to `window`-second bins (averaging rates), for plotting.
    pub fn downsample(&self, window: usize) -> TapSeries {
        let window = window.max(1);
        let bins = self
            .bins
            .chunks(window)
            .map(|c| {
                let t: u64 = c.iter().map(|b| b.0).sum();
                let a: u64 = c.iter().map(|b| b.1).sum();
                (t / c.len() as u64, a / c.len() as u64)
            })
            .collect();
        TapSeries { bins }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ah_flow::cache::FlowCache;
    use ah_flow::router::{Direction, RouterDayCounter};
    use ah_net::time::Dur;
    use std::collections::HashMap;

    fn ip(n: u8) -> Ipv4Addr4 {
        Ipv4Addr4::new(100, 64, 0, n)
    }

    fn user() -> Ipv4Addr4 {
        Ipv4Addr4::new(10, 0, 0, 1)
    }

    /// Build a FlowDataset by pushing packets through a real cache.
    fn dataset(packets: &[(Ipv4Addr4, u64, u8)], totals: &[((RouterId, u64), u64)]) -> FlowDataset {
        let mut caches: HashMap<u8, FlowCache> = HashMap::new();
        // Stagger timestamps: byte-identical packets at the same µs would
        // be suppressed by the cache as wire duplicates.
        for (i, &(src, day, router)) in packets.iter().enumerate() {
            let pkt = PacketMeta::tcp_syn(
                Ts::from_days(day) + Dur::from_secs(60) + Dur::from_millis(i as u64),
                src,
                user(),
                4000,
                23,
            );
            caches
                .entry(router)
                .or_insert_with(|| FlowCache::new(router))
                .observe(&pkt, Direction::Ingress);
        }
        let mut records = Vec::new();
        for (_, mut c) in caches {
            records.extend(c.flush());
        }
        FlowDataset {
            records,
            sampling_rate: 10,
            router_days: totals
                .iter()
                .map(|&(k, v)| (k, RouterDayCounter { packets: v, bytes: v * 40 }))
                .collect(),
        }
    }

    #[test]
    fn flow_impact_counts_hitter_sources_only() {
        let ds = dataset(
            &[(ip(1), 0, 1), (ip(1), 0, 1), (ip(2), 0, 1), (ip(1), 1, 1)],
            &[((1, 0), 1000), ((1, 1), 1000)],
        );
        let ah: HashSet<_> = [ip(1)].into_iter().collect();
        let rows = flow_impact(&ds, |_| Some(ah.clone()));
        assert_eq!(rows.len(), 2);
        let d0 = rows.iter().find(|r| r.day == 0).unwrap();
        // 2 sampled packets × rate 10 = 20 estimated.
        assert_eq!(d0.ah_packets, 20);
        assert_eq!(d0.total_packets, 1000);
        assert!((d0.pct() - 2.0).abs() < 1e-9);
        let d1 = rows.iter().find(|r| r.day == 1).unwrap();
        assert_eq!(d1.ah_packets, 10);
    }

    #[test]
    fn flow_impact_day_specific_population() {
        let ds = dataset(&[(ip(1), 0, 1), (ip(1), 1, 1)], &[((1, 0), 100), ((1, 1), 100)]);
        // ip(1) is a hitter on day 0 only.
        let rows = flow_impact(&ds, |day| (day == 0).then(|| [ip(1)].into_iter().collect()));
        let d0 = rows.iter().find(|r| r.day == 0).unwrap();
        let d1 = rows.iter().find(|r| r.day == 1).unwrap();
        assert!(d0.ah_packets > 0);
        assert_eq!(d1.ah_packets, 0);
    }

    #[test]
    fn presence_fractions() {
        // ip(1) seen at routers 1 and 2; ip(2) only at router 1.
        let ds =
            dataset(&[(ip(1), 0, 1), (ip(1), 0, 2), (ip(2), 0, 1)], &[((1, 0), 10), ((2, 0), 10)]);
        let pop: HashSet<_> = [ip(1), ip(2), ip(3)].into_iter().collect();
        let rows = presence(&ds, |_| Some(pop.clone()));
        assert_eq!(rows.len(), 1);
        let row = &rows[0];
        assert_eq!(row.population, 3);
        let get = |r: RouterId| row.seen_fraction.iter().find(|(x, _)| *x == r).unwrap().1;
        assert!((get(1) - 2.0 / 3.0).abs() < 1e-9);
        assert!((get(2) - 1.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn scan_bucket_classification() {
        let ds = dataset(&[(ip(1), 0, 1)], &[((1, 0), 10)]);
        let rec = &ds.records[0];
        assert_eq!(flow_scan_bucket(rec), Some(0)); // bare SYN flow
        let mut udp = *rec;
        udp.key.protocol = 17;
        assert_eq!(flow_scan_bucket(&udp), Some(1));
        let mut icmp = *rec;
        icmp.key.protocol = 1;
        assert_eq!(flow_scan_bucket(&icmp), Some(2));
        let mut ack = *rec;
        ack.tcp_flags = 0x10;
        assert_eq!(flow_scan_bucket(&ack), None);
        let mut other = *rec;
        other.key.protocol = 47;
        assert_eq!(flow_scan_bucket(&other), None);
    }

    #[test]
    fn tap_series_views() {
        let ah: HashSet<_> = [ip(1)].into_iter().collect();
        let mut tap = TapAnalyzer::new(ah, Ts::from_secs(100));
        // Second 0: 3 packets, 1 from the hitter. Second 2: 2 packets, both hitter.
        for (src, at) in [(ip(1), 0u64), (ip(2), 0), (ip(3), 0), (ip(1), 2), (ip(1), 2)] {
            tap.observe(&PacketMeta::tcp_syn(Ts::from_secs(100 + at), src, user(), 1, 23));
        }
        let s = tap.series();
        assert_eq!(s.bins.len(), 3);
        assert_eq!(s.total_packets(), 5);
        assert_eq!(s.ah_packets(), 3);
        let inst = s.instantaneous_pct();
        assert!((inst[0] - 100.0 / 3.0).abs() < 1e-9);
        assert_eq!(inst[1], 0.0);
        assert!((inst[2] - 100.0).abs() < 1e-9);
        let cum = s.cumulative_pct();
        assert!((cum[2] - 60.0).abs() < 1e-9);
        assert_eq!(s.rate_pps(), vec![3, 0, 2]);
        let per24 = s.ah_rate_per_slash24(2);
        assert!((per24[2] - 1.0).abs() < 1e-9);
    }

    #[test]
    fn tap_downsample() {
        let s = TapSeries { bins: vec![(10, 1), (20, 3), (30, 5), (40, 7)] };
        let d = s.downsample(2);
        assert_eq!(d.bins, vec![(15, 2), (35, 6)]);
        assert_eq!(s.downsample(1).bins, s.bins);
    }
}
