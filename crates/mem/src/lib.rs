//! Tagged-allocator memory observability (the third observability
//! pillar, next to ah-obs metrics and ah-trace spans).
//!
//! The paper's longitudinal story — years of telescope traffic,
//! millions of tracked sources — is ultimately a *memory* story:
//! ROADMAP item 1 ("bounded RSS with ≥10× more sources") cannot be
//! judged without knowing where bytes live. This crate answers that
//! with three small pieces:
//!
//! * [`TaggedSystem`] — a [`GlobalAlloc`](std::alloc::GlobalAlloc)
//!   wrapper over the system allocator. Every allocation gets a small
//!   header recording which subsystem [`Tag`] was active on the
//!   allocating thread; frees consult the header, so bytes are always
//!   returned to the account that was charged, no matter which thread
//!   or scope frees them.
//! * [`MemScope`] — a thread-local RAII tag scope. `MemScope::enter(
//!   Tag::Telescope)` routes every allocation on the current thread to
//!   the telescope account until the guard drops (scopes nest; the
//!   previous tag is restored).
//! * per-tag **accounts** — cache-padded atomic counters (live bytes /
//!   live allocations, cumulative bytes / allocations, peak live
//!   bytes) plus a process-global account whose peak is the portable
//!   fallback when `/proc/self/status` `VmHWM` is unavailable.
//!
//! # Determinism and cost contract
//!
//! Accounting is **observation-only**: nothing in the pipeline reads
//! these counters back into control flow, so a run's
//! `RunOutput::fingerprint` is bitwise identical with accounting on or
//! off (enforced by `tests/memory.rs` in the workspace root). The shim
//! is runtime no-op-able via [`set_accounting`]: when off, the only
//! per-allocation cost is one relaxed atomic load and an 8-byte header
//! write, and [`MemScope::enter`] is a single relaxed load — measured
//! ≤1% on the end-to-end pipeline (see `BENCH.md`).
//!
//! # Exactness
//!
//! The header carries a *charged* bit: an account is only ever
//! debited for a block that was credited, so toggling accounting
//! mid-run can never drive an account negative. `realloc` moves the
//! charge to the new size under the block's original tag.
//!
//! # Example
//!
//! ```
//! use ah_mem::{MemScope, Tag};
//!
//! ah_mem::set_accounting(true);
//! {
//!     let _scope = MemScope::enter(Tag::Telescope);
//!     // allocations here are charged to the telescope account
//!     // (when the embedding binary installs `ah_mem::TaggedSystem`
//!     // as its #[global_allocator])
//! }
//! let report = ah_mem::report();
//! assert!(report.peak_rss_bytes() < u64::MAX);
//! ah_mem::set_accounting(false);
//! ```
//!
//! `unsafe` is confined to the allocator shim (the private `alloc`
//! module behind [`TaggedSystem`]) with per-site SAFETY arguments.
//
// ah-lint: allow-file(unsafe-forbid, reason = "this crate IS the allocator shim; all unsafe is confined to src/alloc.rs with per-site SAFETY comments, and the public scope/account API is safe")
#![warn(missing_docs)]

mod account;
mod alloc;

pub use alloc::TaggedSystem;

use std::cell::Cell;
use std::marker::PhantomData;
use std::sync::atomic::{AtomicBool, Ordering};

/// Subsystem tags: one per pipeline layer plus `Other` for anything
/// allocated outside an explicit scope (test harness, CLI parsing,
/// process setup).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(u8)]
pub enum Tag {
    /// Simnet substrate: world build, mux event queue, fault injector,
    /// SPSC fan-out rings.
    Mux = 0,
    /// Telescope capture: aggregation tables, event buffers, source
    /// filters.
    Telescope = 1,
    /// Flow pipeline: flow caches, NetFlow v9 encode/decode, ISP
    /// routers.
    Flow = 2,
    /// Write-ahead log: writer frames, group-commit buffers, recovery
    /// scans.
    Wal = 3,
    /// Parallel-engine merge: MPSC ring, shard result boxes, collected
    /// shard state.
    Merge = 4,
    /// Detector passes: aggressive-scanner classification, GreyNoise
    /// replica state, report assembly.
    Detectors = 5,
    /// ah-trace internals: per-thread span buffers, name interning.
    Trace = 6,
    /// ah-obs internals: instrument registration, exporter buffers.
    Obs = 7,
    /// Anything allocated with no scope active.
    Other = 8,
}

/// Number of [`Tag`] variants (accounts are a fixed array this size).
pub const TAG_COUNT: usize = 9;

impl Tag {
    /// All tags, in account order.
    pub const ALL: [Tag; TAG_COUNT] = [
        Tag::Mux,
        Tag::Telescope,
        Tag::Flow,
        Tag::Wal,
        Tag::Merge,
        Tag::Detectors,
        Tag::Trace,
        Tag::Obs,
        Tag::Other,
    ];

    /// Tags whose allocations are owned by a single run and must drain
    /// to ~0 once its `RunOutput` is dropped — the leak-gate set.
    /// `Trace`/`Obs` are excluded (tracers and recorders outlive runs
    /// by design) and `Other` is ambient process state.
    pub const RUN_SCOPED: [Tag; 6] =
        [Tag::Mux, Tag::Telescope, Tag::Flow, Tag::Wal, Tag::Merge, Tag::Detectors];

    /// Stable lowercase label (used for metric label values and report
    /// rendering).
    pub fn name(self) -> &'static str {
        match self {
            Tag::Mux => "mux",
            Tag::Telescope => "telescope",
            Tag::Flow => "flow",
            Tag::Wal => "wal",
            Tag::Merge => "merge",
            Tag::Detectors => "detectors",
            Tag::Trace => "trace",
            Tag::Obs => "obs",
            Tag::Other => "other",
        }
    }

    /// Tag for a raw account index; out-of-range maps to [`Tag::Other`].
    pub fn from_index(i: u8) -> Tag {
        *Tag::ALL.get(i as usize).unwrap_or(&Tag::Other)
    }
}

/// Master accounting switch. Off at process start.
static ENABLED: AtomicBool = AtomicBool::new(false);

/// Enable or disable allocation accounting process-wide.
///
/// Already-charged blocks keep draining their accounts when freed even
/// while accounting is off (the charged bit in each block header, not
/// this switch, decides debits), so toggling never skews live counts
/// negative. Intended to be flipped once, before the measured region.
pub fn set_accounting(on: bool) {
    // ORDERING: `Relaxed` — the switch gates *whether* new blocks are
    // charged, never the correctness of debits (those follow the
    // per-block header). No other memory operation is ordered by it.
    ENABLED.store(on, Ordering::Relaxed);
}

/// True when allocation accounting is currently enabled.
///
/// `#[inline]`: this is the accounting-off fast path — it must fold
/// into callers in other crates (every [`MemScope::enter`] and every
/// allocator hook) for the ≤1% disabled-overhead contract to hold.
#[inline]
pub fn accounting_enabled() -> bool {
    // ORDERING: `Relaxed` — advisory read of a monotone-ish switch; see
    // `set_accounting`.
    ENABLED.load(Ordering::Relaxed)
}

thread_local! {
    /// The tag charged for allocations on this thread. Const-initialized
    /// and `Copy` so the allocator itself can read it without ever
    /// allocating or running lazy initializers.
    static CURRENT_TAG: Cell<u8> = const { Cell::new(Tag::Other as u8) };
}

/// Sentinel for "scope recorded nothing" (accounting was off at entry,
/// or thread-local storage was unavailable).
const NO_PREV: u8 = u8::MAX;

#[inline]
pub(crate) fn current_tag_index() -> u8 {
    // During thread teardown the TLS slot may already be gone; those
    // stragglers are ambient process state and belong to `Other`.
    CURRENT_TAG.try_with(Cell::get).unwrap_or(Tag::Other as u8)
}

/// RAII tag scope: allocations on the current thread are charged to
/// `tag` until the guard drops, which restores the previous tag.
///
/// Entering is a no-op (and Drop restores nothing) while accounting is
/// disabled, so scattered scopes cost one relaxed load each when the
/// feature is off. The guard is `!Send`: it must drop on the thread
/// that entered it.
#[derive(Debug)]
pub struct MemScope {
    prev: u8,
    _not_send: PhantomData<*const ()>,
}

impl MemScope {
    /// Enter `tag` on the current thread, returning the restoring guard.
    ///
    /// `#[inline]`: scopes sit on per-packet paths in other crates;
    /// inlining reduces the disabled case to the one relaxed load.
    #[inline]
    pub fn enter(tag: Tag) -> MemScope {
        if !accounting_enabled() {
            return MemScope { prev: NO_PREV, _not_send: PhantomData };
        }
        let prev = CURRENT_TAG.try_with(|c| c.replace(tag as u8)).unwrap_or(NO_PREV);
        MemScope { prev, _not_send: PhantomData }
    }
}

impl Drop for MemScope {
    #[inline]
    fn drop(&mut self) {
        if self.prev != NO_PREV {
            let _ = CURRENT_TAG.try_with(|c| c.set(self.prev));
        }
    }
}

/// Manual, non-RAII variant of [`MemScope`] for per-packet hot paths:
/// returns an opaque token to hand back to [`tag_restore`].
///
/// A guard with a `Drop` impl inside a function that runs per packet
/// costs far more than its loads: the live guard adds drop glue to
/// every exit path, unwind landing pads around every call it spans,
/// and register pressure — measured at several percent of end-to-end
/// pipeline throughput even with accounting *off* (see `BENCH.md`).
/// The manual pair keeps the disabled case to one relaxed load and
/// leaves the enclosing function free of cleanup paths. The price: if
/// the region between swap and restore panics, the restore is skipped
/// and the unwinding thread keeps the entered tag. That can only
/// misattribute later allocations on that dying thread — it cannot
/// unbalance charge/debit pairing, because debits follow each block's
/// header, not the thread tag. Cold paths should keep using
/// [`MemScope`].
#[inline]
pub fn tag_swap(tag: Tag) -> u8 {
    if !accounting_enabled() {
        return NO_PREV;
    }
    CURRENT_TAG.try_with(|c| c.replace(tag as u8)).unwrap_or(NO_PREV)
}

/// Restore the tag saved by [`tag_swap`]. No-op on the token a
/// disabled swap returned.
#[inline]
pub fn tag_restore(prev: u8) {
    if prev != NO_PREV {
        let _ = CURRENT_TAG.try_with(|c| c.set(prev));
    }
}

/// A point-in-time copy of one account's counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TagStats {
    /// Bytes currently allocated and not yet freed under this tag.
    pub live_bytes: i64,
    /// Blocks currently allocated and not yet freed under this tag.
    pub live_allocs: i64,
    /// High-water mark of `live_bytes` since process start (or the
    /// last [`reset_window`]).
    pub peak_bytes: i64,
    /// Cumulative bytes ever charged to this tag.
    pub total_bytes: u64,
    /// Cumulative allocations ever charged to this tag.
    pub total_allocs: u64,
}

/// Snapshot one tag's account.
pub fn tag_stats(tag: Tag) -> TagStats {
    account::snapshot(tag as usize)
}

/// Snapshot the process-global account (all tags combined; its
/// `peak_bytes` is the portable RSS-pressure fallback).
pub fn global_stats() -> TagStats {
    account::snapshot(account::GLOBAL)
}

/// Structured end-of-run memory report: every tag's stats, the global
/// account, and the kernel's `VmHWM` when available.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MemReport {
    /// Per-tag snapshots, in [`Tag::ALL`] order.
    pub tags: [TagStats; TAG_COUNT],
    /// All-tags-combined account.
    pub global: TagStats,
    /// `/proc/self/status` `VmHWM` in bytes, when the platform exposes
    /// it.
    pub vm_hwm_bytes: Option<u64>,
}

impl MemReport {
    /// Iterate `(tag, stats)` pairs in account order.
    pub fn tags(&self) -> impl Iterator<Item = (Tag, &TagStats)> {
        Tag::ALL.iter().copied().zip(self.tags.iter())
    }

    /// Peak RSS in bytes: kernel `VmHWM` when available, otherwise the
    /// tracked global peak of accounted live bytes (a lower bound —
    /// it excludes allocator slack and non-heap memory).
    pub fn peak_rss_bytes(&self) -> u64 {
        self.vm_hwm_bytes.unwrap_or(self.global.peak_bytes.max(0) as u64)
    }

    /// Render the report as an aligned text table (one row per tag,
    /// then the global account and the RSS line).
    pub fn render(&self) -> String {
        let mut out = String::with_capacity(1024);
        out.push_str(&format!(
            "{:<10} {:>14} {:>12} {:>14} {:>14} {:>12}\n",
            "tag", "live-bytes", "live-allocs", "peak-bytes", "cum-bytes", "cum-allocs"
        ));
        for (tag, st) in self.tags() {
            out.push_str(&format!(
                "{:<10} {:>14} {:>12} {:>14} {:>14} {:>12}\n",
                tag.name(),
                st.live_bytes,
                st.live_allocs,
                st.peak_bytes,
                st.total_bytes,
                st.total_allocs
            ));
        }
        out.push_str(&format!(
            "{:<10} {:>14} {:>12} {:>14} {:>14} {:>12}\n",
            "global",
            self.global.live_bytes,
            self.global.live_allocs,
            self.global.peak_bytes,
            self.global.total_bytes,
            self.global.total_allocs
        ));
        match self.vm_hwm_bytes {
            Some(v) => out.push_str(&format!("peak rss (VmHWM): {v} bytes\n")),
            None => out.push_str(&format!(
                "peak rss: VmHWM unavailable; tracked peak {} bytes\n",
                self.global.peak_bytes.max(0)
            )),
        }
        out
    }
}

/// Take a full memory report now.
pub fn report() -> MemReport {
    let mut tags = [TagStats::default(); TAG_COUNT];
    for (i, slot) in tags.iter_mut().enumerate() {
        *slot = account::snapshot(i);
    }
    MemReport { tags, global: account::snapshot(account::GLOBAL), vm_hwm_bytes: vm_hwm_bytes() }
}

/// Parse `VmHWM` (peak resident set size) from `/proc/self/status`.
/// Returns `None` off Linux or when the file is unreadable — callers
/// fall back to the tracked global peak.
pub fn vm_hwm_bytes() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix("VmHWM:") {
            let kb: u64 = rest.trim().trim_end_matches("kB").trim().parse().ok()?;
            return Some(kb * 1024);
        }
    }
    None
}

/// Leak gate: return every run-scoped tag (see [`Tag::RUN_SCOPED`])
/// whose live bytes exceed `epsilon_bytes`, with its live count.
/// After a run's `RunOutput` is dropped the expected answer is empty —
/// a small epsilon absorbs long-lived stragglers like interned span
/// names charged while a stage scope was active.
pub fn leak_check(epsilon_bytes: i64) -> Vec<(Tag, i64)> {
    Tag::RUN_SCOPED
        .iter()
        .copied()
        .filter_map(|tag| {
            let live = tag_stats(tag).live_bytes;
            (live > epsilon_bytes).then_some((tag, live))
        })
        .collect()
}

/// Start a fresh measurement window: reset every account's peak to its
/// current live level and zero the cumulative counters. Benches call
/// this between configurations so per-config peaks are comparable.
/// Live counts are never touched (they track real outstanding blocks).
pub fn reset_window() {
    account::reset_window();
}

#[cfg(test)]
mod tests {
    use super::*;

    // NOTE: these tests exercise only the scope/report plumbing; the
    // allocator itself is covered by `tests/accounting.rs`, which
    // installs `TaggedSystem` as the test binary's global allocator.

    #[test]
    fn scope_restores_previous_tag() {
        set_accounting(true);
        assert_eq!(current_tag_index(), Tag::Other as u8);
        {
            let _a = MemScope::enter(Tag::Mux);
            assert_eq!(current_tag_index(), Tag::Mux as u8);
            {
                let _b = MemScope::enter(Tag::Wal);
                assert_eq!(current_tag_index(), Tag::Wal as u8);
            }
            assert_eq!(current_tag_index(), Tag::Mux as u8);
        }
        assert_eq!(current_tag_index(), Tag::Other as u8);
        set_accounting(false);
    }

    #[test]
    fn disabled_scope_is_inert() {
        set_accounting(false);
        let _a = MemScope::enter(Tag::Telescope);
        assert_eq!(current_tag_index(), Tag::Other as u8);
    }

    #[test]
    fn tag_roundtrip_and_names() {
        for tag in Tag::ALL {
            assert_eq!(Tag::from_index(tag as u8), tag);
            assert!(!tag.name().is_empty());
        }
        assert_eq!(Tag::from_index(200), Tag::Other);
        assert_eq!(Tag::RUN_SCOPED.len(), 6);
        assert!(!Tag::RUN_SCOPED.contains(&Tag::Trace));
        assert!(!Tag::RUN_SCOPED.contains(&Tag::Obs));
        assert!(!Tag::RUN_SCOPED.contains(&Tag::Other));
    }

    #[test]
    fn report_renders_every_tag() {
        let rendered = report().render();
        for tag in Tag::ALL {
            assert!(rendered.contains(tag.name()), "missing {} row", tag.name());
        }
        assert!(rendered.contains("global"));
        assert!(rendered.contains("peak rss"));
    }

    #[test]
    fn vm_hwm_parses_on_linux() {
        // On Linux the file exists and VmHWM must parse to a sane
        // nonzero figure; elsewhere `None` is the contract.
        if std::path::Path::new("/proc/self/status").exists() {
            let hwm = vm_hwm_bytes().expect("VmHWM parses");
            assert!(hwm > 0);
        } else {
            assert_eq!(vm_hwm_bytes(), None);
        }
    }
}
