//! Bounded per-thread trace buffers.
//!
//! Each tracing thread owns one [`TraceBuf`]: a fixed-capacity array of
//! four-word event slots plus a published length. The owning thread is
//! the only writer; it stores the slot words, then publishes the new
//! length with a release store ([`TraceSync::LEN_PUBLISH`]). Any thread
//! may take a consistent snapshot by acquiring the length
//! ([`TraceSync::LEN_OBSERVE`]) and reading the slots below it — the
//! same single-writer publication protocol as the SPSC ring
//! (`crates/simnet/src/ring.rs`), expressed through the same facade
//! idiom so the orderings stay model-checkable.
//!
//! A full buffer *drops* the event and counts the drop: tracing is
//! observation-only and must never block or otherwise perturb the
//! pipeline (see the determinism argument in `crates/trace/src/lib.rs`
//! and ARCHITECTURE.md §12).

use std::marker::PhantomData;
use std::sync::atomic::Ordering;

use crate::sync::{TraceAtomicU64, TraceSync};

/// Words per event slot: packed kind/name, wall-clock ns, logical
/// sequence, journey id.
const WORDS: usize = 4;

/// What an event marks.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EventKind {
    /// Span begin (matched by a later [`EventKind::End`] on the same
    /// track).
    Begin,
    /// Span end.
    End,
    /// Instantaneous point event.
    Instant,
}

impl EventKind {
    fn code(self) -> u64 {
        match self {
            EventKind::Begin => 0,
            EventKind::End => 1,
            EventKind::Instant => 2,
        }
    }

    fn from_code(c: u64) -> EventKind {
        match c {
            0 => EventKind::Begin,
            1 => EventKind::End,
            _ => EventKind::Instant,
        }
    }
}

/// One decoded trace event.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RawEvent {
    /// Begin/end/instant.
    pub kind: EventKind,
    /// Interned name id (resolve via the tracer's name table).
    pub name_id: u32,
    /// Wall-clock nanoseconds since the tracer epoch. Informational
    /// only — never read back by the pipeline.
    pub ts_ns: u64,
    /// Deterministic logical sequence: the event's index in its buffer.
    /// Per-track event order is a pure function of the scenario, so
    /// this is reproducible across runs even though `ts_ns` is not.
    pub seq: u64,
    /// Journey id (`0` = not part of a sampled packet journey).
    pub journey: u64,
}

/// Fixed-capacity single-writer trace buffer (see module docs).
pub struct TraceBuf<S: TraceSync> {
    words: Vec<S::AtomicU64>,
    /// Published event count. Written only by the owning thread.
    len: S::AtomicU64,
    /// Events discarded because the buffer was full.
    dropped: S::AtomicU64,
    capacity: usize,
    _sync: PhantomData<S>,
}

impl<S: TraceSync> std::fmt::Debug for TraceBuf<S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("TraceBuf")
            .field("capacity", &self.capacity)
            .field("len", &self.len.load(S::LEN_OBSERVE))
            .finish()
    }
}

impl<S: TraceSync> TraceBuf<S> {
    /// Create a buffer holding at most `capacity` events.
    pub fn new(capacity: usize) -> TraceBuf<S> {
        let mut words = Vec::with_capacity(capacity * WORDS);
        for _ in 0..capacity * WORDS {
            words.push(S::AtomicU64::new(0));
        }
        TraceBuf {
            words,
            len: S::AtomicU64::new(0),
            dropped: S::AtomicU64::new(0),
            capacity,
            _sync: PhantomData,
        }
    }

    /// Event capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Append one event. Only the owning thread may call this (the
    /// single-writer invariant the module docs describe). Returns
    /// `false` — counting, not blocking — when the buffer is full.
    pub fn push(&self, kind: EventKind, name_id: u32, ts_ns: u64, journey: u64) -> bool {
        // ORDERING: `Relaxed` — `len` is written only by this thread,
        // so this load always sees the writer's own latest store.
        let n = self.len.load(Ordering::Relaxed) as usize;
        if n >= self.capacity {
            // ORDERING: `Relaxed` — monotone overflow counter, read
            // only after the run quiesces; no data rides on it.
            self.dropped.fetch_add(1, Ordering::Relaxed);
            return false;
        }
        let base = n * WORDS;
        self.words[base].store(kind.code() << 32 | u64::from(name_id), S::SLOT_WRITE);
        self.words[base + 1].store(ts_ns, S::SLOT_WRITE);
        self.words[base + 2].store(n as u64, S::SLOT_WRITE);
        self.words[base + 3].store(journey, S::SLOT_WRITE);
        self.len.store((n + 1) as u64, S::LEN_PUBLISH);
        true
    }

    /// Events dropped on overflow so far.
    pub fn dropped(&self) -> u64 {
        // ORDERING: `Relaxed` — see the counter's comment in `push`.
        self.dropped.load(Ordering::Relaxed)
    }

    /// Snapshot the published prefix of the buffer. Safe from any
    /// thread: the acquire on `len` pairs with the writer's release,
    /// so every slot below the observed length is fully written.
    pub fn snapshot(&self) -> Vec<RawEvent> {
        let n = self.len.load(S::LEN_OBSERVE) as usize;
        let mut out = Vec::with_capacity(n);
        for i in 0..n {
            let base = i * WORDS;
            let w0 = self.words[base].load(S::SLOT_READ);
            out.push(RawEvent {
                kind: EventKind::from_code(w0 >> 32),
                name_id: (w0 & 0xffff_ffff) as u32,
                ts_ns: self.words[base + 1].load(S::SLOT_READ),
                seq: self.words[base + 2].load(S::SLOT_READ),
                journey: self.words[base + 3].load(S::SLOT_READ),
            });
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sync::StdSync;

    #[test]
    fn push_snapshot_round_trip() {
        let buf: TraceBuf<StdSync> = TraceBuf::new(4);
        assert!(buf.push(EventKind::Begin, 7, 100, 0));
        assert!(buf.push(EventKind::Instant, 8, 150, 42));
        assert!(buf.push(EventKind::End, 7, 200, 0));
        let evs = buf.snapshot();
        assert_eq!(evs.len(), 3);
        assert_eq!(evs[0].kind, EventKind::Begin);
        assert_eq!(evs[0].name_id, 7);
        assert_eq!(evs[0].ts_ns, 100);
        assert_eq!(evs[0].seq, 0);
        assert_eq!(evs[1].journey, 42);
        assert_eq!(evs[2].kind, EventKind::End);
        assert_eq!(evs[2].seq, 2);
        assert_eq!(buf.dropped(), 0);
    }

    #[test]
    fn overflow_drops_and_counts() {
        let buf: TraceBuf<StdSync> = TraceBuf::new(2);
        assert!(buf.push(EventKind::Instant, 1, 1, 0));
        assert!(buf.push(EventKind::Instant, 2, 2, 0));
        assert!(!buf.push(EventKind::Instant, 3, 3, 0));
        assert!(!buf.push(EventKind::Instant, 4, 4, 0));
        assert_eq!(buf.snapshot().len(), 2);
        assert_eq!(buf.dropped(), 2);
    }

    #[test]
    fn snapshot_from_other_thread_sees_published_prefix() {
        let buf = std::sync::Arc::new(TraceBuf::<StdSync>::new(1024));
        let writer = {
            let buf = std::sync::Arc::clone(&buf);
            std::thread::spawn(move || {
                for i in 0..1024u64 {
                    buf.push(EventKind::Instant, i as u32, i, 0);
                }
            })
        };
        // Concurrent snapshots must always see a consistent prefix:
        // seq == index and name_id == seq for every visible event.
        for _ in 0..100 {
            let evs = buf.snapshot();
            for (i, ev) in evs.iter().enumerate() {
                assert_eq!(ev.seq, i as u64);
                assert_eq!(u64::from(ev.name_id), ev.seq);
            }
        }
        writer.join().expect("writer thread");
        assert_eq!(buf.snapshot().len(), 1024);
    }
}
