//! Invariants of the three hitter definitions on seeded runs.

use aggressive_scanners::core::defs::{Definition, Thresholds};
use aggressive_scanners::core::detector::{Detector, DetectorConfig};
use aggressive_scanners::pipeline::{self, RunOptions};
use aggressive_scanners::simnet::scenario::{Scenario, ScenarioConfig};
use aggressive_scanners::telescope::capture::Telescope;
use aggressive_scanners::telescope::timeout;
use std::collections::HashSet;

fn run(seed: u64) -> pipeline::RunOutput {
    pipeline::run(ScenarioConfig::tiny(3, seed), RunOptions::darknet_only())
}

#[test]
fn daily_sets_are_subsets_of_yearly() {
    let out = run(31);
    for def in Definition::ALL {
        let yearly = out.report.hitters(def);
        for day in 0..out.days {
            if let Some(daily) = out.report.daily_hitters(def, day) {
                assert!(daily.is_subset(yearly), "{def:?} day {day}");
            }
            if let Some(active) = out.report.active_hitters(def, day) {
                assert!(active.is_subset(yearly), "{def:?} day {day}");
            }
        }
    }
}

#[test]
fn active_covers_daily_for_event_definitions() {
    let out = run(32);
    for def in [Definition::AddressDispersion, Definition::PacketVolume] {
        for day in 0..out.days {
            let daily: HashSet<_> = out.report.daily_hitters(def, day).cloned().unwrap_or_default();
            let active: HashSet<_> =
                out.report.active_hitters(def, day).cloned().unwrap_or_default();
            assert!(daily.is_subset(&active), "{def:?} day {day}");
        }
    }
}

#[test]
fn d2_threshold_sits_in_the_tail() {
    let out = run(33);
    let e = &out.report.volume_ecdf;
    let t = out.report.d2_threshold;
    assert!(t >= e.quantile(0.99).unwrap(), "threshold below the 99th percentile");
    assert!(t <= e.max().unwrap());
    // The number of qualifying events matches the ECDF's own count.
    let above = e.count_above(t);
    assert!(above as f64 <= e.len() as f64 * 2e-4 + 1.0, "tail too fat: {above}");
}

#[test]
fn dispersion_qualification_matches_event_records() {
    let out = run(34);
    let dark = out.report.cfg.dark_size as f64;
    let d1 = out.report.hitters(Definition::AddressDispersion);
    // Every D1 member has at least one record at or above the cut; every
    // record at or above the cut belongs to a member.
    let mut qualified_srcs = HashSet::new();
    for r in out.report.records() {
        if f64::from(r.unique_dsts) / dark >= 0.10 {
            qualified_srcs.insert(r.src);
        }
    }
    assert_eq!(&qualified_srcs, d1);
}

#[test]
fn stricter_dispersion_shrinks_population_monotonically() {
    // Re-detect from the same event stream under increasing cuts.
    let cfg = ScenarioConfig::tiny(2, 35);
    let mut sc = Scenario::build(cfg);
    let mut telescope = Telescope::new(sc.world.config.dark, timeout::paper_default());
    while let Some(pkt) = sc.mux.next_packet() {
        telescope.observe(&pkt);
    }
    let events = telescope.flush();
    let mut last = usize::MAX;
    for cut in [0.02, 0.05, 0.10, 0.25, 0.50] {
        let mut det = Detector::new(DetectorConfig {
            thresholds: Thresholds { dispersion_fraction: cut, ..Thresholds::default() },
            dark_size: telescope.dark_space().size(),
        });
        det.ingest_all(&events);
        let n = det.finalize().hitters(Definition::AddressDispersion).len();
        assert!(n <= last, "population must shrink: cut {cut} gave {n} > {last}");
        last = n;
    }
    assert!(last < usize::MAX);
}

#[test]
fn event_packet_conservation_through_detection() {
    let out = run(36);
    let from_records: u64 = out.report.records().iter().map(|r| u64::from(r.packets)).sum();
    let from_days: u64 = out.report.day_all_packets.values().sum();
    assert_eq!(from_records, from_days);
    // And they equal what the telescope classified as scanning.
    assert_eq!(from_records, out.capture.scan_packets);
}

#[test]
fn ah_packets_never_exceed_all_packets() {
    let out = run(37);
    for def in Definition::ALL {
        for day in 0..out.days {
            let ah = out.report.ah_packets(def, day);
            let all = out.report.day_all_packets.get(&day).copied().unwrap_or(0);
            assert!(ah <= all, "{def:?} day {day}: {ah} > {all}");
        }
    }
}
