//! A GreyNoise-style distributed honeypot with behavioral tagging.
//!
//! GreyNoise operates sensors scattered across many networks and tags
//! every source that contacts them. Because the paper's aggressive
//! hitters scan Internet-wide (mostly uniformly), virtually all of them
//! hit such a distributed sensor fleet — the basis of the 99.3% daily
//! overlap reported in Section 5 — while *localized* scanners do not.
//!
//! The tagger here is rule-based over per-source behavioral profiles
//! (tool fingerprints, targeted ports, protocol mix) and emits the tag
//! vocabulary of Table 9. Three of the paper's tags derive from HTTP
//! payload contents which this workspace does not carry on the wire;
//! the simulator passes those as an explicit [`PayloadHint`] instead
//! (documented substitution — same join key, different provenance).

use ah_net::fingerprint::{classify, Tool};
use ah_net::ipv4::Ipv4Addr4;
use ah_net::packet::{PacketMeta, Transport};
use ah_net::prefix::PrefixSet;
use ah_net::time::Ts;
use std::collections::{HashMap, HashSet};

/// GreyNoise's three-way IP classification.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GnClassification {
    /// Known-good actor (research scanners, search engines).
    Benign,
    /// Observed malicious behavior (exploits, bruteforcing).
    Malicious,
    /// Seen scanning, intent not established.
    Unknown,
}

/// Application-payload evidence the wire model does not carry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PayloadHint {
    /// No application payload observed.
    None,
    /// Go's default HTTP client user-agent.
    GoHttp,
    /// Python `requests` library user-agent.
    PythonRequests,
    /// Request carried an HTTP Referer header.
    HttpReferer,
}

/// Tags the paper's Table 9 vocabulary uses, plus Masscan.
pub mod tags {
    /// ZMap probe fingerprint.
    pub const ZMAP: &str = "ZMap Client";
    /// Masscan probe fingerprint.
    pub const MASSCAN: &str = "Masscan Client";
    /// Generic web crawler behavior.
    pub const WEB_CRAWLER: &str = "Web Crawler";
    /// Mirai-botnet TCP fingerprint.
    pub const MIRAI: &str = "Mirai";
    /// Docker API scanning.
    pub const DOCKER: &str = "Docker Scanner";
    /// Kubernetes API scanning.
    pub const KUBERNETES: &str = "Kubernetes Crawler";
    /// SSH credential bruteforcing.
    pub const SSH_BRUTE: &str = "SSH Bruteforcer";
    /// TLS/SSL certificate harvesting.
    pub const TLS_CRAWLER: &str = "TLS/SSL Crawler";
    /// Self-propagating SSH malware.
    pub const SSH_WORM: &str = "SSH Worm";
    /// Shenzhen TVT DVR bruteforcing.
    pub const TVT_BRUTE: &str = "Shenzhen TVT Bruteforcer";
    /// Go default HTTP client payload.
    pub const GO_HTTP: &str = "Go HTTP Client";
    /// Python requests client payload.
    pub const PY_REQUESTS: &str = "Python Requests Client";
    /// Telnet credential bruteforcing.
    pub const TELNET_BRUTE: &str = "Telnet Bruteforcer";
    /// JAWS webserver exploit attempts.
    pub const JAWS_RCE: &str = "JAWS Webserver RCE";
    /// ICMP echo sweeping.
    pub const PING: &str = "Ping Scanner";
    /// SIP scanner toolkit.
    pub const SIPVICIOUS: &str = "Sipvicious";
    /// RDP worm-like propagation.
    pub const RDP_WORM: &str = "Looks Like RDP Worm";
    /// Requests carry an HTTP Referer.
    pub const HTTP_REFERER: &str = "Carries HTTP Referer";
    /// SMBv1 endpoint scanning.
    pub const SMB_CRAWLER: &str = "SMBv1 Crawler";
    /// Hadoop YARN exploit propagation.
    pub const HADOOP_WORM: &str = "Hadoop Yarn Worm";
    /// Realtek miniigd UPnP exploit (CVE-2014-8361).
    pub const UPNP_WORM: &str = "Miniigd UPnP Worm CVE-2014-8361";
}

/// Tags implying malicious intent (worms, bruteforcers, exploit attempts).
const MALICIOUS_TAGS: &[&str] = &[
    tags::MIRAI,
    tags::SSH_BRUTE,
    tags::SSH_WORM,
    tags::TVT_BRUTE,
    tags::TELNET_BRUTE,
    tags::JAWS_RCE,
    tags::SIPVICIOUS,
    tags::RDP_WORM,
    tags::HADOOP_WORM,
    tags::UPNP_WORM,
];

/// The finalized record for one observed source.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GnEntry {
    /// Three-way intent classification.
    pub classification: GnClassification,
    /// Behavior tags (Table 9 vocabulary).
    pub tags: Vec<String>,
    /// First packet timestamp across all sensors.
    pub first_seen: Ts,
    /// Last packet timestamp across all sensors.
    pub last_seen: Ts,
    /// Total packets this source sent to the sensor fleet.
    pub packets: u64,
}

#[derive(Debug, Default)]
struct SrcProfile {
    packets: u64,
    tcp_syn: u64,
    udp: u64,
    icmp: u64,
    tool_counts: [u64; 4], // ZMap, Masscan, Mirai, Other
    ports: HashSet<u16>,
    port_packets: HashMap<u16, u64>,
    sensors_hit: HashSet<Ipv4Addr4>,
    payload_hints: HashSet<PayloadHint>,
    first_seen: Ts,
    last_seen: Ts,
}

/// Ingest counters: every packet offered to the fleet is either accepted
/// (hit a sensor, profiled) or ignored (destination not a sensor).
/// Conservation: `received == accepted + ignored`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IngestStats {
    /// Packets offered to the honeypot fleet.
    pub received: u64,
    /// Packets that hit a sensor and were profiled.
    pub accepted: u64,
    /// Packets whose destination is not a sensor.
    pub ignored: u64,
}

impl IngestStats {
    /// The conservation identity.
    pub fn conserves(&self) -> bool {
        self.received == self.accepted + self.ignored
    }
}

/// The honeypot fleet.
pub struct GreyNoise {
    sensors: PrefixSet,
    profiles: HashMap<Ipv4Addr4, SrcProfile>,
    benign_vetted: HashSet<Ipv4Addr4>,
    ingest: IngestStats,
    /// Telemetry (inert until [`GreyNoise::set_recorder`]).
    m_received: ah_obs::Counter,
    m_accepted: ah_obs::Counter,
    m_ignored: ah_obs::Counter,
    m_profiles_hwm: ah_obs::Gauge,
}

impl GreyNoise {
    /// A fleet whose sensor addresses are `sensors`. `benign_vetted` is
    /// GN's internal allow-list of known research sources (we feed it the
    /// acknowledged-scanner IPs, mirroring GN's own vetting process).
    pub fn new(sensors: PrefixSet, benign_vetted: HashSet<Ipv4Addr4>) -> GreyNoise {
        GreyNoise {
            sensors,
            profiles: HashMap::new(),
            benign_vetted,
            ingest: IngestStats::default(),
            m_received: ah_obs::Counter::default(),
            m_accepted: ah_obs::Counter::default(),
            m_ignored: ah_obs::Counter::default(),
            m_profiles_hwm: ah_obs::Gauge::default(),
        }
    }

    /// Attach live telemetry instruments (`ah_intel_greynoise_*`).
    /// Observation-only: ingest and tagging semantics are unchanged.
    pub fn set_recorder(&mut self, rec: &ah_obs::Recorder) {
        self.m_received = rec.counter("ah_intel_greynoise_packets_received_total");
        self.m_accepted = rec.counter("ah_intel_greynoise_packets_accepted_total");
        self.m_ignored = rec.counter("ah_intel_greynoise_packets_ignored_total");
        self.m_profiles_hwm = rec.gauge("ah_intel_greynoise_profiles_hwm");
    }

    /// Ingest counters so far.
    pub fn ingest_stats(&self) -> IngestStats {
        self.ingest
    }

    /// Does this destination belong to a sensor?
    pub fn is_sensor(&self, dst: Ipv4Addr4) -> bool {
        self.sensors.contains(dst)
    }

    /// Offer one packet; only packets to sensors are recorded. Returns
    /// true when the packet hit a sensor.
    pub fn observe(&mut self, pkt: &PacketMeta, hint: PayloadHint) -> bool {
        self.ingest.received += 1;
        self.m_received.inc();
        if !self.sensors.contains(pkt.dst) {
            self.ingest.ignored += 1;
            self.m_ignored.inc();
            return false;
        }
        self.ingest.accepted += 1;
        self.m_accepted.inc();
        let p = self.profiles.entry(pkt.src).or_insert_with(|| SrcProfile {
            first_seen: pkt.ts,
            last_seen: pkt.ts,
            ..SrcProfile::default()
        });
        p.packets += 1;
        p.first_seen = p.first_seen.min(pkt.ts);
        p.last_seen = p.last_seen.max(pkt.ts);
        p.sensors_hit.insert(pkt.dst);
        match pkt.transport {
            Transport::Tcp { dst_port, flags, .. } if flags.is_bare_syn() => {
                p.tcp_syn += 1;
                p.ports.insert(dst_port);
                *p.port_packets.entry(dst_port).or_default() += 1;
            }
            Transport::Tcp { dst_port, .. } => {
                p.ports.insert(dst_port);
                *p.port_packets.entry(dst_port).or_default() += 1;
            }
            Transport::Udp { dst_port, .. } => {
                p.udp += 1;
                p.ports.insert(dst_port);
                *p.port_packets.entry(dst_port).or_default() += 1;
            }
            Transport::Icmp { .. } => p.icmp += 1,
            Transport::Other { .. } => {}
        }
        match classify(pkt) {
            Tool::ZMap => p.tool_counts[0] += 1,
            Tool::Masscan => p.tool_counts[1] += 1,
            Tool::Mirai => p.tool_counts[2] += 1,
            Tool::Other => p.tool_counts[3] += 1,
        }
        if hint != PayloadHint::None {
            p.payload_hints.insert(hint);
        }
        self.m_profiles_hwm.set_max(self.profiles.len() as i64);
        true
    }

    /// Number of distinct sources observed.
    pub fn observed_count(&self) -> usize {
        self.profiles.len()
    }

    /// Has this source contacted any sensor?
    pub fn has_seen(&self, src: Ipv4Addr4) -> bool {
        self.profiles.contains_key(&src)
    }

    /// Run the tagger and classification over every profile.
    pub fn finalize(&self) -> HashMap<Ipv4Addr4, GnEntry> {
        self.profiles
            .iter()
            .map(|(src, p)| {
                let tag_list = Self::tag(p);
                let classification = if self.benign_vetted.contains(src) {
                    GnClassification::Benign
                } else if tag_list.iter().any(|t| MALICIOUS_TAGS.contains(&t.as_str())) {
                    GnClassification::Malicious
                } else {
                    GnClassification::Unknown
                };
                (
                    *src,
                    GnEntry {
                        classification,
                        tags: tag_list,
                        first_seen: p.first_seen,
                        last_seen: p.last_seen,
                        packets: p.packets,
                    },
                )
            })
            .collect()
    }

    fn port_hit(p: &SrcProfile, port: u16) -> u64 {
        p.port_packets.get(&port).copied().unwrap_or(0)
    }

    /// The rule-based tag engine.
    fn tag(p: &SrcProfile) -> Vec<String> {
        let mut out: Vec<String> = Vec::new();
        let total = p.packets.max(1);
        let mut push = |t: &str| {
            if !out.iter().any(|x| x == t) {
                out.push(t.to_string());
            }
        };

        // Tool fingerprints.
        if p.tool_counts[0] * 2 > total {
            push(tags::ZMAP);
        }
        if p.tool_counts[1] * 2 > total {
            push(tags::MASSCAN);
        }
        if p.tool_counts[2] > 0 {
            push(tags::MIRAI);
        }

        // Port-profile rules. "Heavy on port X" means X dominates the
        // source's traffic; "touches X" is any packet.
        let heavy = |port: u16| Self::port_hit(p, port) * 3 > total;
        let touches = |port: u16| Self::port_hit(p, port) > 0;

        // Mirai's signature pair is 23/2323, already tagged by seq rule;
        // a non-Mirai telnet-heavy source is a bruteforcer.
        if (heavy(23) || heavy(2323)) && p.tool_counts[2] == 0 {
            push(tags::TELNET_BRUTE);
        }
        if heavy(22) {
            // Wide spread across sensors looks like worm propagation;
            // hammering few targets looks like credential stuffing.
            if p.sensors_hit.len() >= 8 {
                push(tags::SSH_WORM);
            } else {
                push(tags::SSH_BRUTE);
            }
        }
        if touches(80) && touches(443) && p.ports.len() <= 8 {
            push(tags::WEB_CRAWLER);
        }
        if touches(443) && (touches(465) || touches(993) || touches(8443)) {
            push(tags::TLS_CRAWLER);
        }
        if touches(2375) || touches(2376) || touches(4243) {
            push(tags::DOCKER);
        }
        if touches(6443) || touches(10250) || touches(10255) {
            push(tags::KUBERNETES);
        }
        if touches(445) {
            push(tags::SMB_CRAWLER);
        }
        if touches(5060) {
            push(tags::SIPVICIOUS);
        }
        if heavy(3389) {
            push(tags::RDP_WORM);
        }
        if touches(8088) && touches(8090) {
            push(tags::HADOOP_WORM);
        }
        if touches(52869) {
            push(tags::UPNP_WORM);
        }
        if touches(60001) {
            push(tags::JAWS_RCE);
        }
        if touches(34567) || touches(9527) {
            push(tags::TVT_BRUTE);
        }
        if p.icmp > 0 && p.tcp_syn == 0 && p.udp == 0 {
            push(tags::PING);
        }

        // Payload-derived hints (see module docs).
        if p.payload_hints.contains(&PayloadHint::GoHttp) {
            push(tags::GO_HTTP);
        }
        if p.payload_hints.contains(&PayloadHint::PythonRequests) {
            push(tags::PY_REQUESTS);
        }
        if p.payload_hints.contains(&PayloadHint::HttpReferer) {
            push(tags::HTTP_REFERER);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ah_net::fingerprint::{masscan_ip_id, ZMAP_IP_ID};
    use ah_net::prefix::Prefix;

    fn sensors() -> PrefixSet {
        PrefixSet::from_prefixes(vec!["50.0.0.0/24".parse::<Prefix>().unwrap()])
    }

    fn gn() -> GreyNoise {
        GreyNoise::new(sensors(), HashSet::new())
    }

    fn sensor(n: u8) -> Ipv4Addr4 {
        Ipv4Addr4::new(50, 0, 0, n)
    }

    const SRC: Ipv4Addr4 = Ipv4Addr4::new(203, 0, 113, 77);

    #[test]
    fn only_sensor_traffic_recorded() {
        let mut g = gn();
        let miss = PacketMeta::tcp_syn(Ts::ZERO, SRC, Ipv4Addr4::new(51, 0, 0, 1), 1, 80);
        assert!(!g.observe(&miss, PayloadHint::None));
        let hit = PacketMeta::tcp_syn(Ts::ZERO, SRC, sensor(1), 1, 80);
        assert!(g.observe(&hit, PayloadHint::None));
        assert_eq!(g.observed_count(), 1);
        assert!(g.has_seen(SRC));
        let s = g.ingest_stats();
        assert_eq!(s.received, 2);
        assert_eq!(s.accepted, 1);
        assert_eq!(s.ignored, 1);
        assert!(s.conserves());
    }

    #[test]
    fn zmap_client_tag() {
        let mut g = gn();
        for i in 0..10u8 {
            let mut p = PacketMeta::tcp_syn(Ts::from_secs(u64::from(i)), SRC, sensor(i), 1, 443);
            p.ip_id = ZMAP_IP_ID;
            g.observe(&p, PayloadHint::None);
        }
        let entry = &g.finalize()[&SRC];
        assert!(entry.tags.iter().any(|t| t == tags::ZMAP), "{:?}", entry.tags);
        // ZMap alone is not malicious.
        assert_eq!(entry.classification, GnClassification::Unknown);
    }

    #[test]
    fn mirai_is_malicious() {
        let mut g = gn();
        for i in 0..5u8 {
            let dst = sensor(i);
            let mut p = PacketMeta::tcp_syn(Ts::from_secs(u64::from(i)), SRC, dst, 1, 23);
            if let Transport::Tcp { ref mut seq, .. } = p.transport {
                *seq = dst.to_u32();
            }
            g.observe(&p, PayloadHint::None);
        }
        let entry = &g.finalize()[&SRC];
        assert!(entry.tags.iter().any(|t| t == tags::MIRAI));
        assert_eq!(entry.classification, GnClassification::Malicious);
    }

    #[test]
    fn telnet_bruteforcer_without_mirai_fingerprint() {
        let mut g = gn();
        for i in 0..6u8 {
            let mut p = PacketMeta::tcp_syn(Ts::from_secs(u64::from(i)), SRC, sensor(1), 1, 23);
            if let Transport::Tcp { ref mut seq, .. } = p.transport {
                *seq = 0xdead_0000 + u32::from(i); // not the Mirai invariant
            }
            p.ip_id = 11; // not ZMap, and extremely unlikely to be Masscan's
            g.observe(&p, PayloadHint::None);
        }
        let entry = &g.finalize()[&SRC];
        assert!(entry.tags.iter().any(|t| t == tags::TELNET_BRUTE), "{:?}", entry.tags);
        assert_eq!(entry.classification, GnClassification::Malicious);
    }

    #[test]
    fn ssh_worm_vs_bruteforcer_by_spread() {
        // Wide spread: worm.
        let mut g = gn();
        for i in 0..10u8 {
            let mut p = PacketMeta::tcp_syn(Ts::from_secs(u64::from(i)), SRC, sensor(i), 1, 22);
            if let Transport::Tcp { ref mut seq, .. } = p.transport {
                *seq = 5;
            }
            p.ip_id = 1;
            g.observe(&p, PayloadHint::None);
        }
        let e = &g.finalize()[&SRC];
        assert!(e.tags.iter().any(|t| t == tags::SSH_WORM), "{:?}", e.tags);

        // One sensor hammered: bruteforcer.
        let mut g2 = gn();
        for i in 0..10u8 {
            let mut p = PacketMeta::tcp_syn(Ts::from_secs(u64::from(i)), SRC, sensor(1), 1, 22);
            if let Transport::Tcp { ref mut seq, .. } = p.transport {
                *seq = 5;
            }
            p.ip_id = 1;
            g2.observe(&p, PayloadHint::None);
        }
        let e2 = &g2.finalize()[&SRC];
        assert!(e2.tags.iter().any(|t| t == tags::SSH_BRUTE), "{:?}", e2.tags);
    }

    #[test]
    fn ping_scanner_tag() {
        let mut g = gn();
        for i in 0..4u8 {
            g.observe(
                &PacketMeta::icmp_echo(Ts::from_secs(u64::from(i)), SRC, sensor(i)),
                PayloadHint::None,
            );
        }
        let e = &g.finalize()[&SRC];
        assert_eq!(e.tags, vec![tags::PING.to_string()]);
        assert_eq!(e.classification, GnClassification::Unknown);
    }

    #[test]
    fn benign_vetting_overrides() {
        let mut vetted = HashSet::new();
        vetted.insert(SRC);
        let mut g = GreyNoise::new(sensors(), vetted);
        let mut p = PacketMeta::tcp_syn(Ts::ZERO, SRC, sensor(1), 1, 23);
        p.ip_id = 1;
        g.observe(&p, PayloadHint::None);
        let e = &g.finalize()[&SRC];
        assert_eq!(e.classification, GnClassification::Benign);
    }

    #[test]
    fn masscan_tag() {
        let mut g = gn();
        for i in 0..10u8 {
            let dst = sensor(i);
            let seq = 0x4000_0000 + u32::from(i);
            let mut p = PacketMeta::tcp_syn(Ts::from_secs(u64::from(i)), SRC, dst, 1, 6379);
            if let Transport::Tcp { seq: ref mut s, .. } = p.transport {
                *s = seq;
            }
            p.ip_id = masscan_ip_id(dst, 6379, seq);
            g.observe(&p, PayloadHint::None);
        }
        let e = &g.finalize()[&SRC];
        assert!(e.tags.iter().any(|t| t == tags::MASSCAN), "{:?}", e.tags);
    }

    #[test]
    fn payload_hints_become_tags() {
        let mut g = gn();
        let p = PacketMeta::tcp_syn(Ts::ZERO, SRC, sensor(1), 1, 80);
        g.observe(&p, PayloadHint::GoHttp);
        g.observe(&p, PayloadHint::HttpReferer);
        let e = &g.finalize()[&SRC];
        assert!(e.tags.iter().any(|t| t == tags::GO_HTTP));
        assert!(e.tags.iter().any(|t| t == tags::HTTP_REFERER));
    }

    #[test]
    fn docker_and_kubernetes_tags() {
        let mut g = gn();
        g.observe(&PacketMeta::tcp_syn(Ts::ZERO, SRC, sensor(1), 1, 2375), PayloadHint::None);
        g.observe(&PacketMeta::tcp_syn(Ts::ZERO, SRC, sensor(2), 1, 6443), PayloadHint::None);
        let e = &g.finalize()[&SRC];
        assert!(e.tags.iter().any(|t| t == tags::DOCKER));
        assert!(e.tags.iter().any(|t| t == tags::KUBERNETES));
    }

    #[test]
    fn entry_timestamps_and_packets() {
        let mut g = gn();
        g.observe(&PacketMeta::tcp_syn(Ts::from_secs(5), SRC, sensor(1), 1, 80), PayloadHint::None);
        g.observe(&PacketMeta::tcp_syn(Ts::from_secs(2), SRC, sensor(1), 1, 80), PayloadHint::None);
        g.observe(&PacketMeta::tcp_syn(Ts::from_secs(9), SRC, sensor(1), 1, 80), PayloadHint::None);
        let e = &g.finalize()[&SRC];
        assert_eq!(e.first_seen, Ts::from_secs(2));
        assert_eq!(e.last_seen, Ts::from_secs(9));
        assert_eq!(e.packets, 3);
    }
}
