//! Fixture-driven self-tests for ah-lint.
//!
//! Each fixture under `tests/fixtures/` carries rustc-UI-style markers:
//! `//~ <id>` expects a diagnostic of lint `<id>` on the same line,
//! `//~^ <id>` on the line above (one `^` per line up), and several ids
//! may be comma-separated. A test fails on any missed or spurious
//! diagnostic, so the fixtures pin both positives and negatives.

use ah_lint::lint_source;
use std::collections::BTreeSet;
use std::fs;
use std::path::Path;

/// Parse the `//~` expectation markers out of a fixture.
fn expected(src: &str) -> BTreeSet<(u32, String)> {
    let mut want = BTreeSet::new();
    for (i, line) in src.lines().enumerate() {
        let lineno = (i + 1) as u32;
        let Some(pos) = line.find("//~") else { continue };
        let rest = &line[pos + 3..];
        let carets = rest.chars().take_while(|&c| c == '^').count() as u32;
        for id in rest[carets as usize..].split(',') {
            let id = id.trim();
            if !id.is_empty() {
                want.insert((lineno - carets, id.to_string()));
            }
        }
    }
    want
}

fn check_fixture(name: &str, crate_root: bool) {
    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures").join(name);
    let src = fs::read_to_string(&path).unwrap_or_else(|e| panic!("reading {name}: {e}"));
    let got: BTreeSet<(u32, String)> = lint_source(name, &src, crate_root, &|_| true)
        .into_iter()
        .map(|d| (d.line, d.lint.to_string()))
        .collect();
    let want = expected(&src);
    let missed: Vec<_> = want.difference(&got).collect();
    let spurious: Vec<_> = got.difference(&want).collect();
    assert!(
        missed.is_empty() && spurious.is_empty(),
        "fixture {name}: missed {missed:?}, spurious {spurious:?}"
    );
}

#[test]
fn fixture_panic_path() {
    check_fixture("panic_path.rs", false);
}

#[test]
fn fixture_atomic_ordering() {
    check_fixture("atomic_ordering.rs", false);
}

#[test]
fn fixture_metric_name() {
    check_fixture("metric_name.rs", false);
}

#[test]
fn fixture_mem_name() {
    check_fixture("mem_name.rs", false);
}

#[test]
fn fixture_unsafe_safety() {
    check_fixture("unsafe_safety.rs", false);
}

#[test]
fn fixture_suppressions() {
    check_fixture("suppressions.rs", false);
}

#[test]
fn fixture_allow_file() {
    check_fixture("allow_file.rs", false);
}

#[test]
fn fixture_unused_suppression() {
    check_fixture("unused_suppression.rs", false);
}

#[test]
fn fixture_lexer_edges() {
    check_fixture("lexer_edges.rs", false);
}

#[test]
fn unused_suppression_skips_lints_disabled_in_this_run() {
    // Under `--lint panic-path` the metric-name allow-file below cannot
    // be judged (the metric-name pass never ran), so it must not be
    // reported as unused; the stale panic-path allow still is.
    let src = "//! doc\n\
               // ah-lint: allow-file(metric-name, reason = \"x\")\n\
               // ah-lint: allow(panic-path, reason = \"stale\")\n\
               pub fn f() {}\n";
    let only = |id: &str| id == "panic-path" || id == "unused-suppression";
    let got = ah_lint::lint_source("m.rs", src, false, &only);
    assert_eq!(got.len(), 1, "{got:?}");
    assert_eq!((got[0].lint, got[0].line), ("unused-suppression", 3));
    assert!(got[0].message.contains("allow(panic-path)"), "{}", got[0].message);
}

#[test]
fn fixture_crate_root_bad() {
    check_fixture("crate_root_bad.rs", true);
}

#[test]
fn fixture_crate_root_good() {
    check_fixture("crate_root_good.rs", true);
}

#[test]
fn posture_lints_only_apply_to_crate_roots() {
    let src = fs::read_to_string(
        Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/crate_root_bad.rs"),
    )
    .unwrap();
    // As a non-root module, the crate-root posture findings (the
    // missing_docs attribute, unsafe-forbid) vanish; only the
    // module-doc half of doc-header still applies (the fixture opens
    // with a plain comment, not `//!`).
    let got = lint_source("module.rs", &src, false, &|_| true);
    assert_eq!(got.len(), 1, "{got:?}");
    assert_eq!(got[0].lint, "doc-header");
    assert!(got[0].message.contains("module file"), "{}", got[0].message);
}

#[test]
fn module_doc_header_requires_a_leading_doc_block() {
    let documented = "//! What this module is for.\npub fn f() {}\n";
    assert!(lint_source("m.rs", documented, false, &|id| id == "doc-header").is_empty());
    let bare = "pub fn f() {}\n";
    let got = lint_source("m.rs", bare, false, &|id| id == "doc-header");
    assert_eq!(got.len(), 1);
    assert!(got[0].message.contains("doc block"), "{}", got[0].message);
}

#[test]
fn lint_selection_filters_by_id() {
    let src = "//! A documented module.\npub fn f(v: Option<u32>) -> u32 { v.unwrap() }\n";
    let all = lint_source("x.rs", src, false, &|_| true);
    assert_eq!(all.len(), 1);
    assert_eq!(all[0].lint, "panic-path");
    let none = lint_source("x.rs", src, false, &|id| id == "metric-name");
    assert!(none.is_empty());
}

#[test]
fn diagnostic_formats() {
    let src = "pub fn f(v: Option<u32>) -> u32 { v.unwrap() }\n";
    let d = &lint_source("dir/x.rs", src, false, &|_| true)[0];
    assert_eq!(d.file, "dir/x.rs");
    assert_eq!(d.line, 1);
    assert!(d.human().starts_with("dir/x.rs:1: [panic-path]"), "{}", d.human());
    let json = d.json();
    assert!(json.contains("\"file\":\"dir/x.rs\""), "{json}");
    assert!(json.contains("\"line\":1"), "{json}");
    assert!(json.contains("\"lint\":\"panic-path\""), "{json}");
}

/// The workspace itself must stay lint-clean: the house rules hold on
/// every shipped library file. scripts/ci.sh gates the same invariant
/// via `ah-lint --deny-warnings`; this test makes plain `cargo test`
/// catch violations too.
#[test]
fn workspace_is_lint_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let report = ah_lint::run_workspace(&root, &|_| true).expect("workspace walk");
    assert!(report.files_scanned > 50, "scanned only {} files", report.files_scanned);
    let findings: Vec<String> = report.diagnostics.iter().map(|d| d.human()).collect();
    assert!(findings.is_empty(), "workspace lint findings:\n{}", findings.join("\n"));
}
