//! Turnkey pipeline run with live telemetry — the smallest way to watch
//! the measurement pipeline from the outside.
//!
//! ```text
//! aggressive-scanners [--metrics PATH] [--metrics-interval N]
//!                     [--threads N] [--days N] [--seed N] [--fault-rate F]
//!                     [--wal-dir DIR] [--resume] [--replay]
//!                     [--suspend-after N] [--crash-after N]
//!                     [--trace-out PATH] [--trace-sample N]
//!                     [--mem-report] [--mem-interval N]
//! ```
//!
//! Runs one full-vantage scenario (telescope + both ISPs + honeypots) on
//! the sharded engine and prints the health ledger. With `--metrics PATH`
//! every stage records instruments on a shared recorder and periodic
//! snapshots are written to `PATH.jsonl` (one JSON object per line) and
//! `PATH.prom` (Prometheus text exposition, latest snapshot). Telemetry
//! is observation-only: the run's output fingerprint is identical with
//! metrics on or off (see `tests/telemetry.rs`).
//!
//! With `--wal-dir DIR` the run becomes durable: every delivered packet
//! is appended to a write-ahead log in `DIR` before the vantage points
//! consume it. `--resume` continues an interrupted durable run from its
//! recovered prefix; `--replay` re-runs detection over a sealed log
//! without re-simulating. `--suspend-after N` stops cleanly after `N`
//! delivered packets (exit code 0, log left resumable); `--crash-after N`
//! aborts the process with a deliberately torn tail — the CI
//! crash-recovery gate uses the pair to prove that an interrupted run,
//! resumed, prints the same output fingerprint as an uninterrupted one.
//!
//! With `--trace-out PATH` every stage also emits structured spans into
//! per-thread [`ah_trace`] buffers; on exit the run writes a Chrome
//! trace-event JSON at `PATH` (load it in Perfetto / `chrome://tracing`)
//! and a folded-stack file at `PATH` with extension `.folded`
//! (flamegraph input). `--trace-sample N` follows roughly 1-in-`N`
//! source IPs end to end as causal packet journeys (default 64; seeded
//! by `--seed`). Tracing, like metrics, is observation-only — the
//! fingerprint is identical with it on or off (see `tests/trace.rs`).
//!
//! With `--mem-report` the tagged allocator (see `ah-mem`) starts
//! accounting every allocation to the subsystem that made it; on exit
//! the run prints a per-tag live/peak/cumulative table plus the
//! process peak RSS, then verifies that every run-scoped tag drained
//! back to ~zero live bytes (a leak fails the process with exit 1).
//! `--mem-interval N` refreshes the `ah_mem_*` gauges every `N`
//! delivered packets (default 100000) when metrics are also on.
//! Accounting, like metrics and tracing, is observation-only — the
//! fingerprint is identical with it on or off (see `tests/memory.rs`).
//!
//! For the paper's tables and figures use the `experiment` binary in
//! `crates/bench`, which takes the same two metrics flags.

use aggressive_scanners::pipeline::{self, RunOptions, RunOutput, Telemetry, WalOutcome, WalRun};
use aggressive_scanners::simnet::faults::FaultPlan;
use aggressive_scanners::simnet::scenario::ScenarioConfig;
use ah_obs::{Exporter, Recorder};
use std::path::PathBuf;

fn parse<T: std::str::FromStr>(args: &[String], i: usize, flag: &str) -> T {
    let Some(v) = args.get(i) else {
        eprintln!("error: {flag} requires a value");
        std::process::exit(2);
    };
    v.parse().unwrap_or_else(|_| {
        eprintln!("error: {flag}: {v:?} is not valid");
        std::process::exit(2);
    })
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut metrics: Option<PathBuf> = None;
    let mut interval = 10_000u64;
    let mut threads = 4usize;
    let mut days = 3u64;
    let mut seed = 7u64;
    let mut fault_rate = 0.0f64;
    let mut wal_dir: Option<PathBuf> = None;
    let mut resume = false;
    let mut replay = false;
    let mut suspend_after: Option<u64> = None;
    let mut crash_after: Option<u64> = None;
    let mut trace_out: Option<PathBuf> = None;
    let mut trace_sample = 64u64;
    let mut mem_report = false;
    let mut mem_interval = 100_000u64;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--metrics" => {
                i += 1;
                metrics =
                    Some(PathBuf::from(args.get(i).map(String::as_str).unwrap_or_else(|| {
                        eprintln!("error: --metrics requires a file-base (e.g. out/metrics)");
                        std::process::exit(2);
                    })));
            }
            "--metrics-interval" => {
                i += 1;
                interval = parse(&args, i, "--metrics-interval");
            }
            "--threads" => {
                i += 1;
                threads = parse(&args, i, "--threads");
            }
            "--days" => {
                i += 1;
                days = parse(&args, i, "--days");
            }
            "--seed" => {
                i += 1;
                seed = parse(&args, i, "--seed");
            }
            "--fault-rate" => {
                i += 1;
                fault_rate = parse(&args, i, "--fault-rate");
            }
            "--wal-dir" => {
                i += 1;
                wal_dir =
                    Some(PathBuf::from(args.get(i).map(String::as_str).unwrap_or_else(|| {
                        eprintln!("error: --wal-dir requires a directory");
                        std::process::exit(2);
                    })));
            }
            "--resume" => resume = true,
            "--replay" => replay = true,
            "--suspend-after" => {
                i += 1;
                suspend_after = Some(parse(&args, i, "--suspend-after"));
            }
            "--crash-after" => {
                i += 1;
                crash_after = Some(parse(&args, i, "--crash-after"));
            }
            "--trace-out" => {
                i += 1;
                trace_out =
                    Some(PathBuf::from(args.get(i).map(String::as_str).unwrap_or_else(|| {
                        eprintln!("error: --trace-out requires a file path (e.g. out/trace.json)");
                        std::process::exit(2);
                    })));
            }
            "--trace-sample" => {
                i += 1;
                trace_sample = parse(&args, i, "--trace-sample");
            }
            "--mem-report" => mem_report = true,
            "--mem-interval" => {
                i += 1;
                mem_interval = parse(&args, i, "--mem-interval");
            }
            "--help" | "-h" => {
                eprintln!(
                    "usage: aggressive-scanners [--metrics PATH] [--metrics-interval N] [--threads N] [--days N] [--seed N] [--fault-rate F] [--wal-dir DIR] [--resume] [--replay] [--suspend-after N] [--crash-after N] [--trace-out PATH] [--trace-sample N] [--mem-report] [--mem-interval N]"
                );
                return;
            }
            other => {
                eprintln!("error: unknown argument {other:?} (try --help)");
                std::process::exit(2);
            }
        }
        i += 1;
    }
    for (flag, value) in [
        ("--metrics-interval", interval),
        ("--trace-sample", trace_sample),
        ("--mem-interval", mem_interval),
    ] {
        if value == 0 {
            eprintln!("error: {flag} must be at least 1 (0 would disable the stream it paces)");
            std::process::exit(2);
        }
    }
    if (resume || replay || suspend_after.is_some() || crash_after.is_some()) && wal_dir.is_none() {
        eprintln!("error: --resume/--replay/--suspend-after/--crash-after need --wal-dir");
        std::process::exit(2);
    }
    if resume && replay {
        eprintln!("error: --resume and --replay are mutually exclusive");
        std::process::exit(2);
    }

    let mut tel = match metrics {
        Some(base) => {
            if let Some(dir) = base.parent().filter(|d| !d.as_os_str().is_empty()) {
                std::fs::create_dir_all(dir).ok();
            }
            let rec = Recorder::new();
            let exporter = Exporter::new(rec.clone(), base, interval);
            eprintln!(
                "[metrics] {} + {} every {interval} packets",
                exporter.jsonl_path().display(),
                exporter.prom_path().display()
            );
            Telemetry::with_exporter(rec, exporter)
        }
        None => Telemetry::disabled(),
    };
    if trace_out.is_some() {
        tel.tracer = ah_trace::Tracer::new(ah_trace::TraceConfig {
            seed,
            sample_one_in: trace_sample,
            ..ah_trace::TraceConfig::default()
        });
        eprintln!("[trace] spans on, following ~1-in-{trace_sample} source journeys");
    }
    if mem_report {
        ah_mem::set_accounting(true);
        tel = tel.with_mem(mem_interval);
        eprintln!("[mem] per-subsystem accounting on, refresh every {mem_interval} packets");
    }

    let mut opts = RunOptions::full();
    if fault_rate > 0.0 {
        opts = opts.with_faults(FaultPlan::uniform(fault_rate, seed));
    }
    let cfg = ScenarioConfig::tiny(days, seed);
    let t0 = std::time::Instant::now();
    let out: RunOutput = match wal_dir {
        None => {
            eprintln!("[run] tiny world, {days} days, seed {seed}, {threads} shard(s)...");
            pipeline::run_parallel_with_recorder(cfg, opts, threads, &mut tel)
        }
        Some(dir) => {
            let mut wal = WalRun::new(dir.clone());
            wal.suspend_after = suspend_after;
            wal.crash_after = crash_after;
            let outcome = if replay {
                eprintln!("[run] replaying sealed WAL {}...", dir.display());
                pipeline::replay_wal(cfg, opts, &dir, &mut tel).map(WalOutcome::Completed)
            } else if resume {
                eprintln!("[run] resuming durable run from {}...", dir.display());
                pipeline::resume_wal(cfg, opts, &wal, &mut tel)
            } else {
                eprintln!(
                    "[run] durable run, tiny world, {days} days, seed {seed}, {threads} shard(s), WAL {}...",
                    dir.display()
                );
                pipeline::run_parallel_wal(cfg, opts, threads, &wal, &mut tel)
            };
            match outcome {
                Ok(WalOutcome::Completed(out)) => *out,
                Ok(WalOutcome::Suspended { delivered, durable_seq }) => {
                    println!(
                        "suspended at {delivered} delivered packets ({durable_seq} durable frames)"
                    );
                    println!("resume with: --wal-dir {} --resume", dir.display());
                    return;
                }
                Err(e) => {
                    eprintln!("error: durable run failed: {e}");
                    std::process::exit(1);
                }
            }
        }
    };
    let secs = t0.elapsed().as_secs_f64();

    println!("generated packets : {}", out.generated_packets);
    println!("captured packets  : {}", out.capture.total_packets);
    println!("scan packets      : {}", out.capture.scan_packets);
    println!("output fingerprint: {:016x}", out.fingerprint());
    println!("wall clock        : {secs:.1}s");
    println!();
    print!("{}", out.health.render());
    if !out.health.conserves() {
        eprintln!("error: conservation violated in {:?}", out.health.violations());
        std::process::exit(1);
    }
    if let Some(ex) = tel.exporter.as_ref() {
        println!();
        println!(
            "[metrics] {} snapshots -> {} ({} io errors)",
            ex.snapshots_written(),
            ex.jsonl_path().display(),
            ex.io_errors()
        );
    }
    if let Some(path) = trace_out {
        if let Some(dir) = path.parent().filter(|d| !d.as_os_str().is_empty()) {
            std::fs::create_dir_all(dir).ok();
        }
        let snap = tel.tracer.snapshot();
        match ah_trace::export::write_artifacts(&snap, &path) {
            Ok(folded) => {
                println!();
                println!("[trace] chrome trace -> {}", path.display());
                println!("[trace] folded stacks -> {}", folded.display());
                if snap.dropped > 0 {
                    println!("[trace] {} events dropped (buffers full)", snap.dropped);
                }
            }
            Err(e) => {
                eprintln!("error: writing trace artifacts: {e}");
                std::process::exit(1);
            }
        }
    }
    if mem_report {
        let report = out.mem.clone().unwrap_or_else(ah_mem::report);
        println!();
        print!("{}", report.render());
        // Leak gate: once the run's output is gone, every run-scoped
        // tag must have drained back to (approximately) zero live
        // bytes. The epsilon absorbs interned span/metric names that
        // were charged to a run tag before their owner registered them.
        drop(out);
        let leaks = ah_mem::leak_check(16 * 1024);
        if leaks.is_empty() {
            println!("[mem] leak check ok: run-scoped tags drained");
        } else {
            for (tag, bytes) in &leaks {
                eprintln!("[mem] leak: tag {} holds {bytes} live bytes after shutdown", tag.name());
            }
            eprintln!("error: memory leak check failed");
            std::process::exit(1);
        }
    }
}
