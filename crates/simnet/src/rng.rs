//! Deterministic pseudo-randomness for the simulator.
//!
//! Experiments must be exactly reproducible from a seed across platforms
//! and Rust versions, so the simulator uses its own xoshiro256**
//! implementation (seeded via splitmix64) rather than depending on any
//! external RNG's stability guarantees. The distributions implemented are
//! exactly the ones the actors need.

/// splitmix64 step — used for seeding and cheap stateless hashing.
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Stateless 64-bit mix of a key — handy for deterministic per-entity
/// parameters ("what is bot #i's rate?") without carrying RNG state.
pub fn hash64(key: u64) -> u64 {
    let mut s = key;
    splitmix64(&mut s)
}

/// xoshiro256** PRNG.
#[derive(Debug, Clone)]
pub struct Rng64 {
    s: [u64; 4],
}

impl Rng64 {
    /// Seed deterministically from a single u64.
    pub fn new(seed: u64) -> Rng64 {
        let mut sm = seed;
        let s =
            [splitmix64(&mut sm), splitmix64(&mut sm), splitmix64(&mut sm), splitmix64(&mut sm)];
        Rng64 { s }
    }

    /// Derive an independent child stream (for per-actor RNGs).
    pub fn fork(&mut self, salt: u64) -> Rng64 {
        Rng64::new(self.next_u64() ^ hash64(salt))
    }

    /// Next raw 64 bits.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform in `[0, n)`; `n` must be nonzero. Uses Lemire's unbiased
    /// multiply-shift rejection.
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        loop {
            let x = self.next_u64();
            let m = u128::from(x) * u128::from(n);
            let lo = m as u64;
            if lo >= n.wrapping_neg() % n {
                return (m >> 64) as u64;
            }
            // Rejected: retry (vanishingly rare for small n).
        }
    }

    /// Uniform in `[lo, hi)`.
    pub fn range(&mut self, lo: u64, hi: u64) -> u64 {
        debug_assert!(lo < hi);
        lo + self.below(hi - lo)
    }

    /// Uniform f64 in [0, 1).
    pub fn f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli trial.
    pub fn chance(&mut self, p: f64) -> bool {
        self.f64() < p
    }

    /// Exponential with mean `mean` (inter-arrival times of Poisson
    /// processes). Always > 0.
    pub fn exp(&mut self, mean: f64) -> f64 {
        let u = 1.0 - self.f64(); // in (0, 1]
        -mean * u.ln()
    }

    /// Bounded Pareto (power-law) sample in `[lo, hi]` with shape `alpha`.
    /// Used for heavy-tailed flow sizes and per-scanner rates.
    pub fn pareto(&mut self, lo: f64, hi: f64, alpha: f64) -> f64 {
        debug_assert!(lo > 0.0 && hi > lo && alpha > 0.0);
        let u = self.f64();
        let la = lo.powf(alpha);
        let ha = hi.powf(alpha);
        (-(u * ha - u * la - ha) / (ha * la)).powf(-1.0 / alpha)
    }

    /// Pick one element uniformly.
    pub fn choice<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        &items[self.below(items.len() as u64) as usize]
    }

    /// Weighted pick: returns an index with probability proportional to
    /// `weights[i]`.
    pub fn weighted(&mut self, weights: &[f64]) -> usize {
        let total: f64 = weights.iter().sum();
        debug_assert!(total > 0.0);
        let mut x = self.f64() * total;
        for (i, w) in weights.iter().enumerate() {
            if x < *w {
                return i;
            }
            x -= w;
        }
        weights.len() - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_from_seed() {
        let mut a = Rng64::new(42);
        let mut b = Rng64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = Rng64::new(43);
        assert_ne!(Rng64::new(42).next_u64(), c.next_u64());
    }

    #[test]
    fn below_is_in_range_and_covers() {
        let mut r = Rng64::new(1);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let x = r.below(10);
            assert!(x < 10);
            seen[x as usize] = true;
        }
        assert!(seen.iter().all(|&b| b), "all residues should appear in 1000 draws");
    }

    #[test]
    fn range_bounds() {
        let mut r = Rng64::new(2);
        for _ in 0..1000 {
            let x = r.range(100, 110);
            assert!((100..110).contains(&x));
        }
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = Rng64::new(3);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let x = r.f64();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / 10_000.0;
        assert!((0.45..0.55).contains(&mean), "mean {mean} far from 0.5");
    }

    #[test]
    fn exp_mean_is_close() {
        let mut r = Rng64::new(4);
        let mean = 5.0;
        let n = 20_000;
        let sum: f64 = (0..n).map(|_| r.exp(mean)).sum();
        let got = sum / n as f64;
        assert!((4.7..5.3).contains(&got), "sample mean {got}");
    }

    #[test]
    fn exp_is_positive() {
        let mut r = Rng64::new(5);
        for _ in 0..1000 {
            assert!(r.exp(1.0) > 0.0);
        }
    }

    #[test]
    fn pareto_bounds() {
        let mut r = Rng64::new(6);
        for _ in 0..5000 {
            let x = r.pareto(1.0, 1000.0, 1.2);
            assert!((1.0..=1000.0 + 1e-9).contains(&x), "{x}");
        }
    }

    #[test]
    fn pareto_is_heavy_tailed() {
        // Median should be near lo while max approaches hi.
        let mut r = Rng64::new(7);
        let mut xs: Vec<f64> = (0..5000).map(|_| r.pareto(1.0, 1000.0, 1.0)).collect();
        xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert!(xs[2500] < 10.0, "median {}", xs[2500]);
        assert!(xs[4999] > 100.0, "max {}", xs[4999]);
    }

    #[test]
    fn chance_extremes() {
        let mut r = Rng64::new(8);
        assert!(!(0..100).any(|_| r.chance(0.0)));
        assert!((0..100).all(|_| r.chance(1.0)));
    }

    #[test]
    fn weighted_respects_weights() {
        let mut r = Rng64::new(9);
        let w = [1.0, 0.0, 9.0];
        let mut counts = [0usize; 3];
        for _ in 0..10_000 {
            counts[r.weighted(&w)] += 1;
        }
        assert_eq!(counts[1], 0);
        assert!(counts[2] > counts[0] * 5, "{counts:?}");
    }

    #[test]
    fn fork_streams_differ() {
        let mut r = Rng64::new(10);
        let mut a = r.fork(1);
        let mut b = r.fork(2);
        let same = (0..50).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn hash64_is_stable() {
        assert_eq!(hash64(12345), hash64(12345));
        assert_ne!(hash64(12345), hash64(12346));
    }

    #[test]
    fn choice_picks_members() {
        let mut r = Rng64::new(11);
        let items = [10, 20, 30];
        for _ in 0..100 {
            assert!(items.contains(r.choice(&items)));
        }
    }
}
