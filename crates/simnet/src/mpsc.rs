//! Bounded lock-free MPSC ring buffer — the parallel pipeline's merge
//! stage.
//!
//! N producer threads (the pipeline shards) feed one consumer thread
//! (the merge loop) through a fixed-capacity power-of-two ring. It is
//! the multi-producer sibling of the SPSC ring in [`crate::ring`],
//! built behind the *same* [`RingSync`] facade so the identical
//! protocol code runs on real atomics in production and on the
//! `interleave` model checker's shadow atomics in the test suite
//! (`crates/simnet/tests/model_check.rs`; `ARCHITECTURE.md` §11).
//!
//! The design is a Vyukov-style bounded queue with batched
//! reservations:
//!
//! * **Per-slot sequence numbers.** Each cell carries an atomic
//!   sequence; `seq == index` means writable, `seq == index + 1` means
//!   readable, and consuming bumps it a full generation
//!   (`index + capacity`). All data-carrying synchronization rides on
//!   these (Release on publish/recycle, Acquire on observe) — never on
//!   the cursors.
//! * **Batched slot reservations.** A producer buffers up to `batch`
//!   items locally, then claims that many contiguous slots with a
//!   *single* compare-exchange on the shared tail, amortizing the
//!   contended RMW the way the SPSC ring amortizes its release store.
//!   The tail CAS is `Relaxed` by contract: it only partitions index
//!   space among producers.
//! * **Cache-padded head/tail.** The reservation tail and the
//!   consumer's advisory head live on private cache lines so producer
//!   CAS traffic, consumer progress stores, and slot traffic never
//!   false-share.
//!
//! # Memory-ordering contract
//!
//! Slot writes are plain stores made *before* the producer publishes
//! `seq = index + 1` with [`RingSync::SEQ_PUBLISH`] (Release); the
//! consumer's [`RingSync::SEQ_OBSERVE`] (Acquire) load therefore
//! happens-after every write it observes. Symmetrically the consumer
//! moves the value out *before* recycling the sequence with
//! [`RingSync::RECYCLE_PUBLISH`] (Release), and a producer probing the
//! slot with [`RingSync::RECYCLE_OBSERVE`] (Acquire) happens-after that
//! read — a slot is never overwritten until its previous occupant has
//! been moved out.
//!
//! The stream is closed per producer: [`MpscProducer::close`] flushes,
//! then increments the shared closed count with
//! [`RingSync::CLOSED_PUBLISH`] (Release). A consumer that observes
//! `closed == producers` with [`RingSync::CLOSED_OBSERVE`] (Acquire)
//! and then finds the ring empty has seen every item — each producer's
//! final flush happens-before its increment.
//!
//! Like the SPSC contract, this one is *proved*, not just argued: the
//! model-check suite instantiates this exact generic code over shadow
//! atomics, explores every interleaving and memory-model-permitted
//! stale read at capacities 2 and 4 with two producers, and shows that
//! demoting any one of the six Release/Acquire constants to `Relaxed`
//! yields a caught counterexample.

use std::sync::Arc;

use crate::ring::{RingAtomicUsize, RingSlot, RingSync, StdSync};

/// Producers reserve slots in batches of at most this many items (also
/// clamped to the ring capacity).
pub const RESERVE_BATCH: usize = 16;

/// One cell: the slot's synchronizing sequence number plus its plain
/// storage.
struct Cell<T: Send, S: RingSync> {
    seq: S::AtomicUsize,
    slot: S::Slot<T>,
}

/// A 128-byte-aligned wrapper keeping its contents on a private cache
/// line (two 64-byte lines, covering adjacent-line prefetching).
#[repr(align(128))]
struct CachePadded<T>(T);

struct Shared<T: Send, S: RingSync> {
    mask: usize,
    cells: Box<[Cell<T, S>]>,
    /// Reservation cursor: one past the last reserved index. Producers
    /// claim `[tail, tail + k)` by CAS.
    tail: CachePadded<S::AtomicUsize>,
    /// Consumer's advisory progress (occupancy estimates only).
    head: CachePadded<S::AtomicUsize>,
    /// How many producers have closed.
    closed: S::AtomicUsize,
    /// Total producer handles created for this ring.
    producers: usize,
}

impl<T: Send, S: RingSync> Drop for Shared<T, S> {
    fn drop(&mut self) {
        // Sole owner: drop every published-but-unpopped item. A cell at
        // index i is occupied iff its sequence is in the "readable"
        // phase, i.e. seq ≡ i + 1 (mod capacity) — see the module doc's
        // three-phase sequence scheme.
        for (i, cell) in self.cells.iter_mut().enumerate() {
            if cell.seq.unsync_load() & self.mask == (i + 1) & self.mask {
                // SAFETY: the sequence phase says this slot holds an
                // initialized value, and we are the last owner.
                unsafe { cell.slot.drop_in_place() };
            }
        }
    }
}

/// One write half of an MPSC ring; see [`mpsc`]. Clonable only at
/// construction time: [`mpsc`] hands out exactly `producers` handles.
pub struct MpscProducer<T: Send, S: RingSync = StdSync> {
    shared: Arc<Shared<T, S>>,
    /// Locally buffered items awaiting a batched reservation.
    buf: Vec<T>,
    /// Reserve at most this many slots per CAS.
    batch: usize,
    /// Highest occupancy this producer has observed (see
    /// [`MpscProducer::high_water_mark`]).
    hwm: usize,
    /// Set once this handle has counted itself into `closed`.
    closed: bool,
}

/// The read half of an MPSC ring; see [`mpsc`].
pub struct MpscConsumer<T: Send, S: RingSync = StdSync> {
    shared: Arc<Shared<T, S>>,
    /// Next index to pop.
    pos: usize,
}

/// Create a bounded MPSC ring with `producers` write handles and one
/// consumer, holding at least `capacity` items (rounded up to a power
/// of two, minimum 2).
///
/// # Examples
///
/// ```
/// let (mut txs, mut rx) = ah_simnet::mpsc::mpsc::<u64>(2, 8);
/// let handles: Vec<_> = txs
///     .drain(..)
///     .enumerate()
///     .map(|(p, mut tx)| {
///         std::thread::spawn(move || {
///             for i in 0..100u64 {
///                 tx.push(p as u64 * 1000 + i);
///             }
///             tx.close();
///         })
///     })
///     .collect();
/// let mut got = Vec::new();
/// while let Some(v) = rx.pop_wait() {
///     got.push(v);
/// }
/// for h in handles {
///     h.join().unwrap();
/// }
/// got.sort_unstable();
/// assert_eq!(got.len(), 200);
/// assert!(got.windows(2).all(|w| w[0] < w[1]), "exactly-once delivery");
/// ```
pub fn mpsc<T: Send>(producers: usize, capacity: usize) -> (Vec<MpscProducer<T>>, MpscConsumer<T>) {
    mpsc_with::<StdSync, T>(producers, capacity, RESERVE_BATCH)
}

/// Create an MPSC ring over an explicit [`RingSync`] facade with an
/// explicit reservation batch — the entry point the model-check suite
/// uses to run the production protocol on shadow atomics at tiny
/// capacities and batches. `batch` is clamped to `1..=capacity`.
pub fn mpsc_with<S: RingSync, T: Send>(
    producers: usize,
    capacity: usize,
    batch: usize,
) -> (Vec<MpscProducer<T, S>>, MpscConsumer<T, S>) {
    let cap = capacity.max(2).next_power_of_two();
    let cells: Box<[Cell<T, S>]> =
        (0..cap).map(|i| Cell { seq: S::AtomicUsize::new(i), slot: S::Slot::vacant() }).collect();
    let shared = Arc::new(Shared::<T, S> {
        mask: cap - 1,
        cells,
        tail: CachePadded(S::AtomicUsize::new(0)),
        head: CachePadded(S::AtomicUsize::new(0)),
        closed: S::AtomicUsize::new(0),
        producers,
    });
    let txs = (0..producers)
        .map(|_| MpscProducer {
            shared: Arc::clone(&shared),
            buf: Vec::with_capacity(batch.clamp(1, cap)),
            batch: batch.clamp(1, cap),
            hwm: 0,
            closed: false,
        })
        .collect();
    (txs, MpscConsumer { shared, pos: 0 })
}

impl<T: Send, S: RingSync> MpscProducer<T, S> {
    /// Ring capacity in items.
    pub fn capacity(&self) -> usize {
        self.shared.mask + 1
    }

    /// Highest occupancy this producer has observed after any
    /// reservation, in items — computed against the consumer's
    /// *advisory* head, so an upper bound on true instantaneous
    /// occupancy (the conservative number wanted for "how close did
    /// the merge ring come to back-pressuring this shard"). Plain
    /// field; reading it cannot perturb the protocol.
    pub fn high_water_mark(&self) -> usize {
        self.hwm
    }

    /// Try to claim `k` contiguous slots; `Some(first_index)` on
    /// success, `None` when the ring lacks room right now.
    fn try_reserve(&mut self, k: usize) -> Option<usize> {
        let mut pos = self.shared.tail.0.load(S::TAIL_RESERVE);
        loop {
            // The batch fits iff its *last* slot is writable: the
            // single consumer recycles strictly in order, so slot
            // `pos + k - 1` free implies all earlier ones are too.
            let probe = &self.shared.cells[(pos + k - 1) & self.shared.mask];
            let seq = probe.seq.load(S::RECYCLE_OBSERVE);
            if seq == pos + k - 1 {
                match self.shared.tail.0.compare_exchange(
                    pos,
                    pos + k,
                    S::TAIL_RESERVE,
                    S::TAIL_RESERVE,
                ) {
                    Ok(_) => {
                        let head = self.shared.head.0.load(S::HEAD_ADVISORY);
                        self.hwm = self.hwm.max((pos + k).saturating_sub(head));
                        return Some(pos);
                    }
                    Err(actual) => {
                        pos = actual;
                        continue;
                    }
                }
            }
            if seq < pos + k - 1 {
                // Not yet recycled: the ring genuinely lacks k slots.
                return None;
            }
            // seq ran ahead: our tail copy is stale; reload and retry.
            pos = self.shared.tail.0.load(S::TAIL_RESERVE);
        }
    }

    /// Write the whole local buffer into freshly reserved slots and
    /// publish them in order. Spins (then yields) while the ring is
    /// full.
    pub fn flush(&mut self) {
        if self.buf.is_empty() {
            return;
        }
        let k = self.buf.len();
        let mut spins = 0u32;
        let first = loop {
            if let Some(first) = self.try_reserve(k) {
                break first;
            }
            spins += 1;
            if spins < 64 {
                S::spin_loop();
            } else {
                S::yield_now();
            }
        };
        for (j, v) in self.buf.drain(..).enumerate() {
            let idx = first + j;
            let cell = &self.shared.cells[idx & self.shared.mask];
            // SAFETY: the successful reservation CAS made [first,
            // first+k) exclusively ours, and the probed recycle
            // sequence (Acquire) ordered this write after the previous
            // occupant's consumption.
            unsafe { cell.slot.write(v) };
            cell.seq.store(idx + 1, S::SEQ_PUBLISH);
        }
    }

    /// Enqueue one item. The item is buffered locally and becomes
    /// visible at the next batch boundary, [`MpscProducer::flush`] or
    /// [`MpscProducer::close`] — same two-phase cadence as the SPSC
    /// ring's batched publication.
    pub fn push(&mut self, value: T) {
        self.buf.push(value);
        if self.buf.len() >= self.batch {
            self.flush();
        }
    }

    /// Flush and count this producer closed; once all producers close,
    /// the consumer's [`MpscConsumer::pop_wait`] returns `None` after
    /// the ring drains.
    pub fn close(mut self) {
        self.flush();
        self.closed = true;
        self.shared.closed.fetch_add(1, S::CLOSED_PUBLISH);
    }
}

impl<T: Send, S: RingSync> Drop for MpscProducer<T, S> {
    fn drop(&mut self) {
        if self.closed {
            return;
        }
        // A dropped (not closed) producer makes a best-effort flush —
        // it must not spin, because the consumer may already be gone —
        // then counts itself closed so the stream still terminates.
        // Buffered items that don't fit are dropped; call `close()` for
        // guaranteed delivery.
        if !self.buf.is_empty() {
            if let Some(first) = self.try_reserve(self.buf.len()) {
                for (j, v) in self.buf.drain(..).enumerate() {
                    let idx = first + j;
                    let cell = &self.shared.cells[idx & self.shared.mask];
                    // SAFETY: same exclusivity argument as `flush` —
                    // the reservation CAS made these slots ours.
                    unsafe { cell.slot.write(v) };
                    cell.seq.store(idx + 1, S::SEQ_PUBLISH);
                }
            } else {
                self.buf.clear();
            }
        }
        self.shared.closed.fetch_add(1, S::CLOSED_PUBLISH);
    }
}

impl<T: Send, S: RingSync> MpscConsumer<T, S> {
    /// Dequeue without blocking; `None` when no published item is ready
    /// at the consumer's cursor.
    pub fn pop(&mut self) -> Option<T> {
        let cell = &self.shared.cells[self.pos & self.shared.mask];
        let seq = cell.seq.load(S::SEQ_OBSERVE);
        if seq != self.pos + 1 {
            return None;
        }
        // SAFETY: seq == pos + 1 says the producer published this slot
        // (Acquire above ordered us after its write), and only this
        // single consumer ever takes.
        let value = unsafe { cell.slot.take() };
        cell.seq.store(self.pos + self.shared.mask + 1, S::RECYCLE_PUBLISH);
        self.pos += 1;
        self.shared.head.0.store(self.pos, S::HEAD_ADVISORY);
        Some(value)
    }

    /// Dequeue, waiting (spin, then yield) for an item; `None` only
    /// after every producer closed *and* the ring has drained.
    pub fn pop_wait(&mut self) -> Option<T> {
        let mut spins = 0u32;
        loop {
            if let Some(v) = self.pop() {
                return Some(v);
            }
            if self.shared.closed.load(S::CLOSED_OBSERVE) == self.shared.producers {
                // Re-check: every final flush happens-before the count
                // reaching the producer total.
                return self.pop();
            }
            spins += 1;
            if spins < 64 {
                S::spin_loop();
            } else {
                S::yield_now();
            }
        }
    }

    /// True when every producer has closed (items may remain).
    pub fn is_closed(&self) -> bool {
        self.shared.closed.load(S::CLOSED_OBSERVE) == self.shared.producers
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_per_producer_within_one_thread() {
        let (mut txs, mut rx) = mpsc::<u32>(1, 8);
        let mut tx = txs.pop().expect("one producer");
        assert_eq!(tx.capacity(), 8);
        for i in 0..5 {
            tx.push(i);
        }
        tx.flush();
        for i in 0..5 {
            assert_eq!(rx.pop(), Some(i));
        }
        assert_eq!(rx.pop(), None);
    }

    #[test]
    fn buffered_items_are_invisible_until_batch_or_flush() {
        let (mut txs, mut rx) = mpsc_with::<StdSync, u32>(1, 8, 3);
        let mut tx = txs.pop().expect("one producer");
        tx.push(1);
        tx.push(2);
        assert_eq!(rx.pop(), None, "below batch: invisible");
        tx.push(3);
        assert_eq!(rx.pop(), Some(1), "batch of 3 self-publishes");
        tx.push(4);
        tx.flush();
        assert_eq!(rx.pop(), Some(2));
        assert_eq!(rx.pop(), Some(3));
        assert_eq!(rx.pop(), Some(4));
    }

    #[test]
    fn full_ring_back_pressures_and_recovers() {
        let (mut txs, mut rx) = mpsc_with::<StdSync, u32>(1, 4, 1);
        let mut tx = txs.pop().expect("one producer");
        for i in 0..4 {
            tx.push(i);
        }
        assert!(tx.try_reserve(1).is_none(), "full ring must refuse reservation");
        assert_eq!(rx.pop(), Some(0));
        tx.push(4);
        let got: Vec<u32> = std::iter::from_fn(|| rx.pop()).collect();
        assert_eq!(got, vec![1, 2, 3, 4]);
    }

    #[test]
    fn close_drains_then_ends() {
        let (mut txs, mut rx) = mpsc::<u32>(2, 8);
        let a = txs.pop().expect("producer");
        let mut b = txs.pop().expect("producer");
        b.push(7);
        b.close();
        assert!(!rx.is_closed(), "one producer still open");
        a.close();
        assert_eq!(rx.pop_wait(), Some(7));
        assert_eq!(rx.pop_wait(), None);
        assert!(rx.is_closed());
    }

    #[test]
    fn drop_of_all_producers_closes() {
        let (txs, mut rx) = mpsc::<u32>(3, 8);
        drop(txs);
        assert_eq!(rx.pop_wait(), None);
    }

    #[test]
    fn high_water_mark_tracks_peak_occupancy() {
        let (mut txs, mut rx) = mpsc_with::<StdSync, u32>(1, 8, 1);
        let mut tx = txs.pop().expect("one producer");
        assert_eq!(tx.high_water_mark(), 0);
        for i in 0..8 {
            tx.push(i);
        }
        assert_eq!(tx.high_water_mark(), 8, "filled to capacity");
        for _ in 0..4 {
            rx.pop();
        }
        tx.push(8);
        assert_eq!(tx.high_water_mark(), 8, "refill after drain keeps the peak");
    }

    #[test]
    fn unpopped_items_are_dropped_with_the_ring() {
        let (mut txs, rx) = mpsc::<Box<u64>>(1, 8);
        let mut tx = txs.pop().expect("one producer");
        tx.push(Box::new(1));
        tx.push(Box::new(2));
        tx.flush();
        drop(rx);
        tx.close();
    }

    #[test]
    fn cross_thread_exactly_once_two_producers() {
        const N: u64 = 100_000;
        let (mut txs, mut rx) = mpsc::<u64>(2, 256);
        let handles: Vec<_> = txs
            .drain(..)
            .enumerate()
            .map(|(p, mut tx)| {
                std::thread::spawn(move || {
                    for i in 0..N {
                        tx.push((p as u64) * N + i);
                    }
                    tx.close();
                })
            })
            .collect();
        let mut per_producer: [Vec<u64>; 2] = [Vec::new(), Vec::new()];
        while let Some(v) = rx.pop_wait() {
            per_producer[(v / N) as usize].push(v % N);
        }
        for h in handles {
            h.join().expect("producer thread");
        }
        for (p, seen) in per_producer.iter().enumerate() {
            assert_eq!(seen.len() as u64, N, "producer {p}: lost or duplicated items");
            assert!(
                seen.iter().enumerate().all(|(i, &v)| i as u64 == v),
                "producer {p}: per-producer FIFO violated"
            );
        }
    }

    #[test]
    fn four_producers_mixed_batches() {
        const N: u64 = 5_000;
        let (txs, mut rx) = mpsc_with::<StdSync, u64>(4, 16, 4);
        let handles: Vec<_> = txs
            .into_iter()
            .enumerate()
            .map(|(p, mut tx)| {
                std::thread::spawn(move || {
                    for i in 0..N {
                        tx.push((p as u64) << 32 | i);
                    }
                    tx.close();
                })
            })
            .collect();
        let mut counts = [0u64; 4];
        let mut last = [-1i64; 4];
        while let Some(v) = rx.pop_wait() {
            let p = (v >> 32) as usize;
            let i = (v & 0xffff_ffff) as i64;
            assert!(i > last[p], "per-producer FIFO violated for {p}");
            last[p] = i;
            counts[p] += 1;
        }
        for h in handles {
            h.join().expect("producer thread");
        }
        assert_eq!(counts, [N; 4]);
    }
}
