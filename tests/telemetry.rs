//! Telemetry determinism, snapshot-file schema, and ledger cross-checks.
//!
//! The contract under test (`ARCHITECTURE.md` §Observability): telemetry
//! is observation-only. Attaching a live recorder — and even writing
//! periodic snapshot files — must leave [`RunOutput::fingerprint`]
//! bitwise identical on both engines, clean or faulted. On top of that,
//! the exported files must follow their documented schemas, every metric
//! name must follow the `ah_<crate>_<subsystem>_<name>` scheme, and the
//! exported `ah_core_health_*` gauges must mirror the run's
//! `PipelineHealth` ledger field by field.

use aggressive_scanners::pipeline::{self, RunOptions, RunOutput, Telemetry};
use aggressive_scanners::simnet::faults::FaultPlan;
use aggressive_scanners::simnet::scenario::ScenarioConfig;
use ah_obs::{
    to_jsonl_line, valid_metric_name, Exporter, HistogramSnapshot, Recorder, Sample, Snapshot,
    Value,
};

// --- A tiny JSON reader -------------------------------------------------
//
// The workspace deliberately has no serde_json dependency (all JSON in
// this repo is hand-rolled; see vendor/README.md), so the schema check
// parses the exporter's JSONL output with a minimal recursive-descent
// reader instead. Strict enough for the exporter's own output: objects,
// arrays, strings with basic escapes, integer/float numbers,
// true/false/null.

#[derive(Debug, Clone, PartialEq)]
enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }
}

struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(s: &'a str) -> Reader<'a> {
        Reader { bytes: s.as_bytes(), pos: 0 }
    }

    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len() && self.bytes[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected {:?} at byte {}", b as char, self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek().ok_or("unexpected end of input")? {
            b'{' => self.object(),
            b'[' => self.array(),
            b'"' => Ok(Json::Str(self.string()?)),
            b't' => self.literal("true", Json::Bool(true)),
            b'f' => self.literal("false", Json::Bool(false)),
            b'n' => self.literal("null", Json::Null),
            _ => self.number(),
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| b.is_ascii_digit() || matches!(b, b'-' | b'+' | b'.' | b'e' | b'E'))
        {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse().ok())
            .map(Json::Num)
            .ok_or_else(|| format!("bad number at byte {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos).copied().ok_or("unterminated string")? {
                b'"' => {
                    self.pos += 1;
                    return Ok(out);
                }
                b'\\' => {
                    self.pos += 1;
                    let esc = self.bytes.get(self.pos).copied().ok_or("bad escape")?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = std::str::from_utf8(
                                self.bytes.get(self.pos..self.pos + 4).ok_or("bad \\u")?,
                            )
                            .map_err(|_| "bad \\u")?;
                            let code = u32::from_str_radix(hex, 16).map_err(|_| "bad \\u")?;
                            out.push(char::from_u32(code).ok_or("bad \\u code")?);
                            self.pos += 4;
                        }
                        other => return Err(format!("unsupported escape \\{}", other as char)),
                    }
                }
                b => {
                    // Multi-byte UTF-8 passes through unchanged.
                    let ch_len = match b {
                        0x00..=0x7f => 1,
                        0xc0..=0xdf => 2,
                        0xe0..=0xef => 3,
                        _ => 4,
                    };
                    let chunk = self.bytes.get(self.pos..self.pos + ch_len).ok_or("bad utf8")?;
                    out.push_str(std::str::from_utf8(chunk).map_err(|_| "bad utf8")?);
                    self.pos += ch_len;
                }
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            let key = self.string()?;
            self.expect(b':')?;
            pairs.push((key, self.value()?));
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(format!("bad object at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("bad array at byte {}", self.pos)),
            }
        }
    }
}

fn parse_json(line: &str) -> Json {
    let mut r = Reader::new(line);
    let v = r.value().unwrap_or_else(|e| panic!("invalid JSON ({e}): {line}"));
    r.skip_ws();
    assert_eq!(r.pos, r.bytes.len(), "trailing garbage after JSON value: {line}");
    v
}

// --- Shared run helpers -------------------------------------------------

fn scenario() -> ScenarioConfig {
    ScenarioConfig::tiny(1, 31)
}

fn opts(faulted: bool) -> RunOptions {
    let o = RunOptions::full();
    if faulted {
        o.with_faults(FaultPlan::uniform(0.01, 31))
    } else {
        o
    }
}

fn run_with(tel: &mut Telemetry, threads: usize, faulted: bool) -> RunOutput {
    if threads <= 1 {
        pipeline::run_with_recorder(scenario(), opts(faulted), tel)
    } else {
        pipeline::run_parallel_with_recorder(scenario(), opts(faulted), threads, tel)
    }
}

/// An 8-shard faulted run recording to `rec`, exporting to `base`.
fn instrumented_run(base: &std::path::Path, interval: u64) -> (RunOutput, Recorder, Exporter) {
    let rec = Recorder::new();
    let exporter = Exporter::new(rec.clone(), base, interval);
    let mut tel = Telemetry::with_exporter(rec.clone(), exporter);
    let out = run_with(&mut tel, 8, true);
    let ex = tel.exporter.take().expect("exporter still attached");
    assert_eq!(ex.io_errors(), 0, "exporter hit IO errors");
    (out, rec, ex)
}

fn temp_base(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("ah-telemetry-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir.join("metrics")
}

// --- Determinism --------------------------------------------------------

#[test]
fn metrics_do_not_perturb_output() {
    let base = temp_base("det");
    for (threads, faulted) in [(1, false), (1, true), (8, false), (8, true)] {
        let baseline = run_with(&mut Telemetry::disabled(), threads, faulted).fingerprint();
        let rec = Recorder::new();
        // Tight interval so the exporter runs often mid-stream.
        let exporter = Exporter::new(rec.clone(), &base, 2_000);
        let mut tel = Telemetry::with_exporter(rec, exporter);
        let instrumented = run_with(&mut tel, threads, faulted).fingerprint();
        assert_eq!(
            baseline, instrumented,
            "metrics changed the output at threads={threads} faulted={faulted}"
        );
    }
}

// --- Snapshot-file schema ------------------------------------------------

#[test]
fn jsonl_snapshots_follow_schema() {
    let base = temp_base("jsonl");
    let (_out, _rec, ex) = instrumented_run(&base, 5_000);
    let text = std::fs::read_to_string(ex.jsonl_path()).expect("read jsonl");
    let lines: Vec<&str> = text.lines().collect();
    assert!(lines.len() >= 2, "expected multiple snapshots, got {}", lines.len());
    assert_eq!(lines.len() as u64, ex.snapshots_written());
    let mut prev_seq = None;
    let mut prev_pos = 0u64;
    let last = lines.len() - 1;
    for (idx, line) in lines.into_iter().enumerate() {
        let snap = parse_json(line);
        let seq = snap.get("seq").and_then(Json::as_num).expect("seq") as u64;
        let pos = snap.get("pos").and_then(Json::as_num).expect("pos") as u64;
        snap.get("ts_ms").and_then(Json::as_num).expect("ts_ms");
        if let Some(p) = prev_seq {
            assert_eq!(seq, p + 1, "snapshot seq must increase by one");
        }
        assert!(pos >= prev_pos, "snapshot pos must be monotone");
        (prev_seq, prev_pos) = (Some(seq), pos);
        let samples = snap.get("samples").and_then(Json::as_arr).expect("samples array");
        assert!(!samples.is_empty());
        for s in samples {
            let name = s.get("name").and_then(Json::as_str).expect("sample name");
            assert!(valid_metric_name(name), "bad metric name in JSONL: {name}");
            assert!(matches!(s.get("labels"), Some(Json::Obj(_))), "labels must be an object");
            match s.get("type").and_then(Json::as_str).expect("sample type") {
                "counter" | "gauge" => {
                    s.get("value").and_then(Json::as_num).expect("numeric value");
                }
                "histogram" => {
                    let bounds = s.get("bounds").and_then(Json::as_arr).expect("bounds");
                    let buckets = s.get("buckets").and_then(Json::as_arr).expect("buckets");
                    assert_eq!(buckets.len(), bounds.len() + 1, "+Inf bucket missing: {name}");
                    let count = s.get("count").and_then(Json::as_num).expect("count") as u64;
                    s.get("sum").and_then(Json::as_num).expect("sum");
                    // Buckets and count are separate atomics, so a
                    // mid-run snapshot taken while shard threads are
                    // observing need not be internally consistent; the
                    // identity must hold exactly on the final snapshot,
                    // written after every shard has joined.
                    if idx == last {
                        let total: f64 =
                            buckets.iter().map(|b| b.as_num().expect("bucket count")).sum();
                        assert_eq!(
                            total as u64, count,
                            "bucket counts disagree with count: {name}"
                        );
                    }
                }
                other => panic!("unknown sample type {other:?}"),
            }
        }
    }
}

// --- JSONL round-trip ----------------------------------------------------

/// Rebuild a [`Snapshot`] from one parsed JSONL line — the inverse of
/// [`to_jsonl_line`] over the exporter's own output.
fn snapshot_from_json(line: &Json) -> Snapshot {
    let samples = line
        .get("samples")
        .and_then(Json::as_arr)
        .expect("samples array")
        .iter()
        .map(|s| {
            let name = s.get("name").and_then(Json::as_str).expect("name").to_string();
            let labels = match s.get("labels") {
                Some(Json::Obj(pairs)) => pairs
                    .iter()
                    .map(|(k, v)| (k.clone(), v.as_str().expect("label value").to_string()))
                    .collect(),
                _ => panic!("labels must be an object"),
            };
            let num = |key: &str| {
                s.get(key).and_then(Json::as_num).unwrap_or_else(|| panic!("missing {key}")) as u64
            };
            let nums = |key: &str| -> Vec<u64> {
                s.get(key)
                    .and_then(Json::as_arr)
                    .unwrap_or_else(|| panic!("missing {key}"))
                    .iter()
                    .map(|n| n.as_num().expect("numeric element") as u64)
                    .collect()
            };
            let value = match s.get("type").and_then(Json::as_str).expect("type") {
                "counter" => Value::Counter(num("value")),
                "gauge" => {
                    Value::Gauge(s.get("value").and_then(Json::as_num).expect("value") as i64)
                }
                "histogram" => Value::Histogram(HistogramSnapshot {
                    bounds: nums("bounds"),
                    buckets: nums("buckets"),
                    count: num("count"),
                    sum: num("sum"),
                }),
                other => panic!("unknown sample type {other:?}"),
            };
            Sample { name, labels, value }
        })
        .collect();
    Snapshot { samples }
}

#[test]
fn jsonl_line_round_trips_through_the_reader() {
    // Serialize -> parse -> rebuild must be lossless for every
    // instrument kind, including label values that need JSON escapes.
    // (The reader stores numbers as f64, which holds every value here
    // exactly; pipeline counters stay far below 2^53.)
    let rec = Recorder::new();
    rec.counter("ah_test_stage_packets_total").add(12_345);
    rec.gauge_with("ah_test_stage_depth_current", &[("shard", "3"), ("router", "r\"1\"\n")])
        .set(-42);
    let h = rec.histogram("ah_test_stage_lag_us", &[10, 100, 1_000]);
    for v in [1, 11, 99, 5_000] {
        h.observe(v);
    }
    let snap = rec.snapshot();
    let line = to_jsonl_line(&snap, 7, 9_001, 1_234_567);

    let parsed = parse_json(&line);
    assert_eq!(parsed.get("seq").and_then(Json::as_num), Some(7.0));
    assert_eq!(parsed.get("pos").and_then(Json::as_num), Some(9_001.0));
    assert_eq!(parsed.get("ts_ms").and_then(Json::as_num), Some(1_234_567.0));
    let rebuilt = snapshot_from_json(&parsed);
    assert_eq!(rebuilt, snap, "JSONL round-trip lost or mangled a sample");
    // And the rebuilt snapshot re-serializes byte-identically.
    assert_eq!(to_jsonl_line(&rebuilt, 7, 9_001, 1_234_567), line);
}

#[test]
fn prometheus_file_follows_text_exposition_format() {
    let base = temp_base("prom");
    let (_out, _rec, ex) = instrumented_run(&base, 50_000);
    let text = std::fs::read_to_string(ex.prom_path()).expect("read prom");
    let mut typed: Vec<String> = Vec::new();
    let mut series = 0usize;
    for line in text.lines() {
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut it = rest.split_whitespace();
            let name = it.next().expect("TYPE name");
            let kind = it.next().expect("TYPE kind");
            assert!(valid_metric_name(name), "bad metric name in TYPE line: {name}");
            assert!(
                matches!(kind, "counter" | "gauge" | "histogram"),
                "unknown TYPE kind {kind:?}"
            );
            typed.push(name.to_string());
            continue;
        }
        assert!(!line.starts_with('#'), "only TYPE comments expected: {line}");
        // `name{labels} value` or `name value`.
        let name_end = line.find(['{', ' ']).unwrap_or_else(|| panic!("malformed line: {line}"));
        let name = &line[..name_end];
        // Histogram series append _bucket/_sum/_count to the base name.
        let bare = name
            .strip_suffix("_bucket")
            .or_else(|| name.strip_suffix("_sum"))
            .or_else(|| name.strip_suffix("_count"))
            .filter(|b| typed.contains(&b.to_string()))
            .unwrap_or(name);
        assert!(typed.contains(&bare.to_string()), "sample line for undeclared metric: {line}");
        let value = line.rsplit(' ').next().expect("value field");
        assert!(value.parse::<f64>().is_ok(), "sample value must be numeric: {line}");
        series += 1;
    }
    assert!(series >= typed.len(), "every declared metric should have samples");
}

// --- Ledger cross-check and layer coverage -------------------------------

#[test]
fn health_gauges_mirror_the_pipeline_ledger() {
    let rec = Recorder::new();
    let mut tel = Telemetry::new(rec.clone());
    let out = run_with(&mut tel, 8, true);
    assert!(out.health.conserves());
    let snap = rec.snapshot();
    let gauge = |name: &str, stage: &str| -> i64 {
        snap.samples
            .iter()
            .find(|s| s.name == name && s.labels.iter().any(|(k, v)| k == "stage" && v == stage))
            .map(|s| match s.value {
                Value::Gauge(v) => v,
                _ => panic!("{name} is not a gauge"),
            })
            .unwrap_or_else(|| panic!("no exported {name} for stage {stage}"))
    };
    for st in &out.health.stages {
        assert_eq!(gauge("ah_core_health_received_count", &st.stage), st.received as i64);
        assert_eq!(gauge("ah_core_health_accepted_count", &st.stage), st.accepted as i64);
        assert_eq!(gauge("ah_core_health_repaired_count", &st.stage), st.repaired as i64);
        assert_eq!(gauge("ah_core_health_quarantined_count", &st.stage), st.quarantined as i64);
        assert_eq!(gauge("ah_core_health_discarded_count", &st.stage), st.discarded_total() as i64);
        // The exported conservation identity balances exactly like the
        // in-memory ledger's.
        assert_eq!(
            gauge("ah_core_health_received_count", &st.stage),
            gauge("ah_core_health_accepted_count", &st.stage)
                + gauge("ah_core_health_quarantined_count", &st.stage)
                + gauge("ah_core_health_discarded_count", &st.stage),
            "exported ledger does not balance for {}",
            st.stage
        );
    }
}

#[test]
fn exported_metrics_cover_every_layer() {
    let rec = Recorder::new();
    let mut tel = Telemetry::new(rec.clone());
    let out = run_with(&mut tel, 8, false);
    let snap = rec.snapshot();
    let names: Vec<&str> = snap.samples.iter().map(|s| s.name.as_str()).collect();
    for prefix in ["ah_telescope_", "ah_flow_", "ah_intel_", "ah_core_health_", "ah_pipeline_"] {
        assert!(
            names.iter().any(|n| n.starts_with(prefix)),
            "no metrics exported for layer {prefix}"
        );
    }
    for name in &names {
        assert!(valid_metric_name(name), "bad metric name registered: {name}");
    }
    // Ring occupancy: one gauge per shard on the 8-thread run, for both
    // the dispatch rings and the MPSC merge ring's producer side.
    let rings = snap.samples.iter().filter(|s| s.name == "ah_pipeline_ring_occupancy_hwm").count();
    assert_eq!(rings, 8, "expected one ring-occupancy gauge per shard");
    let merge: Vec<_> =
        snap.samples.iter().filter(|s| s.name == "ah_pipeline_merge_ring_occupancy_hwm").collect();
    assert_eq!(merge.len(), 8, "expected one merge-ring gauge per shard");
    for s in merge {
        match s.value {
            // Every shard pushes exactly one ShardResult, so its peak
            // reservation count is at least one slot (and bounded by
            // the ring capacity, which equals the thread count here).
            Value::Gauge(v) => assert!((1..=8).contains(&v), "merge HWM out of range: {v}"),
            _ => panic!("merge ring metric is not a gauge"),
        }
    }
    // Cross-check the mux throughput counter against the run itself: a
    // clean run delivers every generated packet.
    let mux = snap
        .samples
        .iter()
        .find(|s| s.name == "ah_pipeline_mux_packets_delivered_total")
        .expect("mux packet counter");
    match mux.value {
        Value::Counter(v) => assert_eq!(v, out.generated_packets),
        _ => panic!("mux packet metric is not a counter"),
    }
    // The telescope's watermark-lag histogram observes exactly the
    // packets the aggregator accepted or quarantined past the filter.
    let lag = snap
        .samples
        .iter()
        .find(|s| s.name == "ah_telescope_agg_watermark_lag_us")
        .expect("watermark lag histogram");
    match &lag.value {
        Value::Histogram(h) => assert!(h.count > 0, "lag histogram never observed"),
        _ => panic!("watermark lag metric is not a histogram"),
    }
}
