//! Cross-validation of hitter lists against external intelligence:
//! the Acknowledged-Scanners list (Table 6) and the GreyNoise-style
//! honeypot (Table 9, Figure 6 left, and the 99.3% overlap claim).

use crate::defs::Definition;
use crate::detector::AhReport;
use ah_intel::acked::AckedScanners;
use ah_intel::greynoise::{GnClassification, GnEntry};
use ah_intel::rdns::RdnsTable;
use ah_net::ipv4::Ipv4Addr4;
use std::collections::{HashMap, HashSet};

/// Table 6 column: acknowledged-scanner validation for one definition.
#[derive(Debug, Clone)]
pub struct AckedValidation {
    /// Hitters matched by exact IP.
    pub ip_matches: u64,
    /// Hitters matched only via reverse-DNS keyword.
    pub domain_matches: u64,
    /// Total acknowledged hitters.
    pub total_ips: u64,
    /// Packets from acknowledged hitters (darknet events).
    pub packets: u64,
    /// Their share of all hitter packets, in percent.
    pub packets_pct_of_ah: f64,
    /// Distinct acknowledged organizations seen.
    pub orgs: u64,
    /// The acknowledged hitter set (for downstream filtering).
    pub ips: HashSet<Ipv4Addr4>,
}

/// Run the two-stage acknowledged match over a definition's hitters.
pub fn acked_validation(
    report: &AhReport,
    def: Definition,
    acked: &AckedScanners,
    rdns: &RdnsTable,
) -> AckedValidation {
    let mut ip_matches = 0u64;
    let mut domain_matches = 0u64;
    let mut orgs: HashSet<String> = HashSet::new();
    let mut ips: HashSet<Ipv4Addr4> = HashSet::new();
    for ip in report.hitters(def) {
        if let Some(m) = acked.matches(*ip, rdns) {
            if m.is_ip_match() {
                ip_matches += 1;
            } else {
                domain_matches += 1;
            }
            orgs.insert(m.org().to_string());
            ips.insert(*ip);
        }
    }
    let mut acked_packets = 0u64;
    let mut all_packets = 0u64;
    for r in report.hitter_records(def) {
        all_packets += u64::from(r.packets);
        if ips.contains(&r.src) {
            acked_packets += u64::from(r.packets);
        }
    }
    AckedValidation {
        ip_matches,
        domain_matches,
        total_ips: ips.len() as u64,
        packets: acked_packets,
        packets_pct_of_ah: if all_packets == 0 {
            0.0
        } else {
            100.0 * acked_packets as f64 / all_packets as f64
        },
        orgs: orgs.len() as u64,
        ips,
    }
}

/// Figure 6 (left): GreyNoise-based breakdown of a hitter population.
#[derive(Debug, Clone, Copy, Default)]
pub struct GnBreakdown {
    /// Hitters GreyNoise classifies as benign (vetted researchers).
    pub benign: u64,
    /// Hitters with malicious tags (worms, bruteforcers, exploits).
    pub malicious: u64,
    /// Hitters seen by sensors but not classifiable either way.
    pub unknown: u64,
    /// Hitters never seen by any honeypot sensor (localized scanners).
    pub absent: u64,
}

impl GnBreakdown {
    /// Size of the whole population broken down.
    pub fn total(&self) -> u64 {
        self.benign + self.malicious + self.unknown + self.absent
    }

    /// Fraction of the population present in GreyNoise.
    pub fn overlap(&self) -> f64 {
        let t = self.total();
        if t == 0 {
            1.0
        } else {
            (t - self.absent) as f64 / t as f64
        }
    }
}

/// Classify a hitter population against finalized honeypot entries.
/// `exclude` removes acknowledged scanners first (the paper's Figure 6
/// studies the non-ACKed remainder; pass an empty set to keep everyone).
pub fn gn_breakdown(
    hitters: &HashSet<Ipv4Addr4>,
    gn: &HashMap<Ipv4Addr4, GnEntry>,
    exclude: &HashSet<Ipv4Addr4>,
) -> GnBreakdown {
    let mut out = GnBreakdown::default();
    for ip in hitters {
        if exclude.contains(ip) {
            continue;
        }
        match gn.get(ip).map(|e| e.classification) {
            Some(GnClassification::Benign) => out.benign += 1,
            Some(GnClassification::Malicious) => out.malicious += 1,
            Some(GnClassification::Unknown) => out.unknown += 1,
            None => out.absent += 1,
        }
    }
    out
}

/// Table 9: tag histogram over the non-acknowledged hitters present in
/// the honeypot data, sorted descending.
pub fn gn_tag_table(
    hitters: &HashSet<Ipv4Addr4>,
    gn: &HashMap<Ipv4Addr4, GnEntry>,
    exclude: &HashSet<Ipv4Addr4>,
    top: usize,
) -> Vec<(String, u64)> {
    let mut counts: HashMap<String, u64> = HashMap::new();
    for ip in hitters {
        if exclude.contains(ip) {
            continue;
        }
        if let Some(e) = gn.get(ip) {
            for t in &e.tags {
                *counts.entry(t.clone()).or_default() += 1;
            }
        }
    }
    let mut rows: Vec<(String, u64)> = counts.into_iter().collect();
    rows.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    rows.truncate(top);
    rows
}

/// Average daily overlap between the detector's daily hitters and the
/// honeypot's observed sources (the paper reports 99.3% for June 2022).
pub fn daily_gn_overlap(
    report: &AhReport,
    def: Definition,
    gn_seen: &HashSet<Ipv4Addr4>,
    days: std::ops::Range<u64>,
) -> f64 {
    let mut fracs = Vec::new();
    for day in days {
        if let Some(set) = report.daily_hitters(def, day) {
            if set.is_empty() {
                continue;
            }
            let hit = set.iter().filter(|ip| gn_seen.contains(ip)).count();
            fracs.push(hit as f64 / set.len() as f64);
        }
    }
    if fracs.is_empty() {
        0.0
    } else {
        fracs.iter().sum::<f64>() / fracs.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::detector::{Detector, DetectorConfig};
    use ah_intel::acked::AckedOrg;
    use ah_net::packet::ScanClass;
    use ah_net::time::{Dur, Ts};
    use ah_telescope::event::{DarknetEvent, EventKey, ToolCounts};

    fn ip(n: u8) -> Ipv4Addr4 {
        Ipv4Addr4::new(104, 0, 0, n)
    }

    fn event(src: Ipv4Addr4, day: u64, packets: u64, unique: u32) -> DarknetEvent {
        DarknetEvent {
            key: EventKey { src, dst_port: 443, class: ScanClass::TcpSyn },
            start: Ts::from_days(day) + Dur::from_secs(5),
            end: Ts::from_days(day) + Dur::from_secs(65),
            packets,
            bytes: packets * 40,
            unique_dsts: unique,
            dark_size: 1000,
            tools: ToolCounts::default(),
        }
    }

    fn report() -> AhReport {
        let mut d = Detector::new(DetectorConfig::new(1000));
        d.ingest(&event(ip(1), 0, 600, 150)); // acked by IP list
        d.ingest(&event(ip(2), 0, 300, 140)); // acked via rDNS
        d.ingest(&event(ip(3), 0, 100, 130)); // not acked
        d.finalize()
    }

    fn acked() -> AckedScanners {
        AckedScanners::new(vec![AckedOrg {
            name: "ScanOrg".into(),
            ips: vec![ip(1)],
            keywords: vec!["scanorg".into()],
        }])
    }

    #[test]
    fn acked_validation_counts_stages() {
        let mut rdns = RdnsTable::new();
        rdns.insert(ip(2), "probe.scanorg.example");
        let v = acked_validation(&report(), Definition::AddressDispersion, &acked(), &rdns);
        assert_eq!(v.ip_matches, 1);
        assert_eq!(v.domain_matches, 1);
        assert_eq!(v.total_ips, 2);
        assert_eq!(v.orgs, 1);
        assert_eq!(v.packets, 900);
        assert!((v.packets_pct_of_ah - 90.0).abs() < 1e-9);
        assert!(v.ips.contains(&ip(1)) && v.ips.contains(&ip(2)));
    }

    fn gn_map(entries: &[(Ipv4Addr4, GnClassification, &[&str])]) -> HashMap<Ipv4Addr4, GnEntry> {
        entries
            .iter()
            .map(|(ip, c, tags)| {
                (
                    *ip,
                    GnEntry {
                        classification: *c,
                        tags: tags.iter().map(|s| s.to_string()).collect(),
                        first_seen: Ts::ZERO,
                        last_seen: Ts::ZERO,
                        packets: 1,
                    },
                )
            })
            .collect()
    }

    #[test]
    fn breakdown_and_overlap() {
        let hitters: HashSet<_> = [ip(1), ip(2), ip(3), ip(4)].into_iter().collect();
        let gn = gn_map(&[
            (ip(1), GnClassification::Benign, &[]),
            (ip(2), GnClassification::Malicious, &["Mirai"]),
            (ip(3), GnClassification::Unknown, &["ZMap Client"]),
        ]);
        let b = gn_breakdown(&hitters, &gn, &HashSet::new());
        assert_eq!((b.benign, b.malicious, b.unknown, b.absent), (1, 1, 1, 1));
        assert!((b.overlap() - 0.75).abs() < 1e-12);
        // Excluding the acked IP removes the benign row.
        let excl: HashSet<_> = [ip(1)].into_iter().collect();
        let b2 = gn_breakdown(&hitters, &gn, &excl);
        assert_eq!(b2.benign, 0);
        assert_eq!(b2.total(), 3);
    }

    #[test]
    fn tag_table_sorted() {
        let hitters: HashSet<_> = [ip(1), ip(2), ip(3)].into_iter().collect();
        let gn = gn_map(&[
            (ip(1), GnClassification::Unknown, &["ZMap Client", "Web Crawler"]),
            (ip(2), GnClassification::Malicious, &["Mirai"]),
            (ip(3), GnClassification::Unknown, &["ZMap Client"]),
        ]);
        let rows = gn_tag_table(&hitters, &gn, &HashSet::new(), 10);
        assert_eq!(rows[0], ("ZMap Client".to_string(), 2));
        assert_eq!(rows.len(), 3);
        let top1 = gn_tag_table(&hitters, &gn, &HashSet::new(), 1);
        assert_eq!(top1.len(), 1);
    }

    #[test]
    fn daily_overlap_average() {
        let r = report();
        let seen: HashSet<_> = [ip(1), ip(2)].into_iter().collect();
        // Day 0 daily hitters = {1,2,3}; two of three seen.
        let o = daily_gn_overlap(&r, Definition::AddressDispersion, &seen, 0..3);
        assert!((o - 2.0 / 3.0).abs() < 1e-9);
    }
}
