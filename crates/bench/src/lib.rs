//! Shared helpers for the experiment runner and the Criterion benches.
//!
//! The heavy lifting lives in the workspace crates; this library only
//! provides the run cache the `experiment` binary uses so that multiple
//! tables regenerated in one invocation share simulation output.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use aggressive_scanners::pipeline::{self, RunOptions, RunOutput, TapRun, Telemetry};
use aggressive_scanners::simnet::scenario::{BenignLevel, ScenarioConfig, Year};
use ah_core::defs::Definition;
use ah_obs::Recorder;

/// Span (in simulated days) of each dataset, scaled from the paper's
/// 365 / 288 / 8 / 3 / 30 by roughly 1:9 so a full `experiment all`
/// regenerates every artifact in minutes. Scale with `--days-scale`.
#[derive(Debug, Clone, Copy)]
pub struct Spans {
    /// Darknet-1 (2021) characterization span.
    pub darknet1_days: u64,
    /// Darknet-2 (2022) characterization span.
    pub darknet2_days: u64,
    /// Flow-measurement week (excluding the warm-up day).
    pub flow_days: u64,
    /// Tap runs: 1 detection day + 3 tap days.
    pub tap_days: u64,
    /// Honeypot-validation month.
    pub gn_days: u64,
}

impl Default for Spans {
    fn default() -> Spans {
        Spans { darknet1_days: 40, darknet2_days: 32, flow_days: 8, tap_days: 4, gn_days: 21 }
    }
}

impl Spans {
    /// Scale all spans by `f` (minimum sensible floors applied).
    pub fn scaled(self, f: f64) -> Spans {
        let s = |d: u64, min: u64| ((d as f64 * f) as u64).max(min);
        Spans {
            darknet1_days: s(self.darknet1_days, 4),
            darknet2_days: s(self.darknet2_days, 4),
            flow_days: s(self.flow_days, 2),
            tap_days: s(self.tap_days, 2),
            gn_days: s(self.gn_days, 3),
        }
    }
}

/// Run a scenario on the requested engine: the serial reference for
/// `threads <= 1`, the sharded engine otherwise. Both produce bitwise
/// identical output (see `tests/determinism.rs`), so callers may treat
/// the choice as a pure performance knob.
pub fn execute(cfg: ScenarioConfig, opts: RunOptions, threads: usize) -> RunOutput {
    execute_with(cfg, opts, threads, &mut Telemetry::disabled())
}

/// [`execute`] with live telemetry (recorder + optional exporter); the
/// output is bitwise identical to a telemetry-free run.
pub fn execute_with(
    cfg: ScenarioConfig,
    opts: RunOptions,
    threads: usize,
    tel: &mut Telemetry,
) -> RunOutput {
    if threads > 1 {
        pipeline::run_parallel_with_recorder(cfg, opts, threads, tel)
    } else {
        pipeline::run_with_recorder(cfg, opts, tel)
    }
}

/// Lazily-computed, shared simulation runs.
pub struct Runs {
    /// Spans used for every run.
    pub spans: Spans,
    /// Base RNG seed; each run derives its own by XOR.
    pub seed: u64,
    /// Worker shards for the parallel engine (`0`/`1` = serial).
    pub threads: usize,
    telemetry: Telemetry,
    darknet1: Option<RunOutput>,
    darknet2: Option<RunOutput>,
    flows: Option<RunOutput>,
    gn: Option<RunOutput>,
    taps: Option<TapRun>,
}

impl Runs {
    /// An empty cache; runs execute on first access.
    pub fn new(spans: Spans, seed: u64) -> Runs {
        Runs {
            spans,
            seed,
            threads: 0,
            telemetry: Telemetry::disabled(),
            darknet1: None,
            darknet2: None,
            flows: None,
            gn: None,
            taps: None,
        }
    }

    /// Route every subsequent run through `run_parallel` on `n` shards.
    pub fn with_threads(mut self, n: usize) -> Runs {
        self.threads = n;
        self
    }

    /// Record pipeline telemetry on `rec` for every subsequent run
    /// (keeping any exporter already configured). Telemetry is
    /// observation-only: run outputs are unchanged.
    pub fn with_recorder(mut self, rec: Recorder) -> Runs {
        self.telemetry.recorder = rec;
        self
    }

    /// Replace the whole telemetry handle (recorder + snapshot exporter).
    pub fn with_telemetry(mut self, tel: Telemetry) -> Runs {
        self.telemetry = tel;
        self
    }

    /// The telemetry handle shared by every cached run (for end-of-batch
    /// snapshot or exporter-health inspection).
    pub fn telemetry(&self) -> &Telemetry {
        &self.telemetry
    }

    /// Darknet-1 (2021) characterization run.
    pub fn darknet1(&mut self) -> &RunOutput {
        let (spans, seed, threads) = (self.spans, self.seed, self.threads);
        let tel = &mut self.telemetry;
        self.darknet1.get_or_insert_with(|| {
            eprintln!("[run] darknet-1 ({} days)...", spans.darknet1_days);
            let cfg = ScenarioConfig::darknet(Year::Y2021, spans.darknet1_days, seed ^ 0x2021);
            execute_with(cfg, RunOptions::darknet_only(), threads, tel)
        })
    }

    /// Darknet-2 (2022) characterization run.
    pub fn darknet2(&mut self) -> &RunOutput {
        let (spans, seed, threads) = (self.spans, self.seed, self.threads);
        let tel = &mut self.telemetry;
        self.darknet2.get_or_insert_with(|| {
            eprintln!("[run] darknet-2 ({} days)...", spans.darknet2_days);
            let cfg = ScenarioConfig::darknet(Year::Y2022, spans.darknet2_days, seed ^ 0x2022);
            execute_with(cfg, RunOptions::darknet_only(), threads, tel)
        })
    }

    /// The flow-measurement week (Merit benign + 3 border routers).
    pub fn flows(&mut self) -> &RunOutput {
        let (spans, seed, threads) = (self.spans, self.seed, self.threads);
        let tel = &mut self.telemetry;
        self.flows.get_or_insert_with(|| {
            eprintln!("[run] flow week (1 warm-up + {} days, Merit benign)...", spans.flow_days);
            let cfg = ScenarioConfig::flows(spans.flow_days + 1, seed ^ 0xf10f);
            execute_with(cfg, RunOptions::with_flows(), threads, tel)
        })
    }

    /// The honeypot-validation month (telescope + GreyNoise).
    pub fn gn(&mut self) -> &RunOutput {
        let (spans, seed, threads) = (self.spans, self.seed, self.threads);
        let tel = &mut self.telemetry;
        self.gn.get_or_insert_with(|| {
            eprintln!("[run] greynoise month ({} days)...", spans.gn_days);
            let mut cfg = ScenarioConfig::darknet(Year::Y2022, spans.gn_days, seed ^ 0x60e5);
            cfg.label = "gn-month".into();
            cfg.benign = BenignLevel::Off;
            let opts = RunOptions { greynoise: true, ..RunOptions::darknet_only() };
            execute_with(cfg, opts, threads, tel)
        })
    }

    /// The 72-hour packet-tap experiment (two-phase).
    pub fn taps(&mut self) -> &TapRun {
        let (spans, seed) = (self.spans, self.seed);
        self.taps.get_or_insert_with(|| {
            eprintln!("[run] packet taps (1+{} days, Merit+CU benign)...", spans.tap_days - 1);
            pipeline::run_taps(
                ScenarioConfig::taps(spans.tap_days, seed ^ 0x7a9),
                1,
                Definition::AddressDispersion,
            )
        })
    }
}
