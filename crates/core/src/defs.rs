//! The three aggressive-hitter definitions (Section 3 of the paper).

/// A hitter definition.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Definition {
    /// Definition 1: an event touches ≥ 10% of the dark address space.
    AddressDispersion,
    /// Definition 2: an event's packet count exceeds the top-α ECDF
    /// threshold over all events in the dataset.
    PacketVolume,
    /// Definition 3: a source contacts more distinct destination ports in
    /// one day than the top-α ECDF threshold over all (source, day) pairs.
    DistinctPorts,
}

impl Definition {
    /// All three, in paper order.
    pub const ALL: [Definition; 3] =
        [Definition::AddressDispersion, Definition::PacketVolume, Definition::DistinctPorts];

    /// Index 0..3 for array-keyed storage.
    pub fn index(self) -> usize {
        match self {
            Definition::AddressDispersion => 0,
            Definition::PacketVolume => 1,
            Definition::DistinctPorts => 2,
        }
    }

    /// Short label ("D1" .. "D3").
    pub fn short(self) -> &'static str {
        match self {
            Definition::AddressDispersion => "D1",
            Definition::PacketVolume => "D2",
            Definition::DistinctPorts => "D3",
        }
    }

    /// Long label as used in table headers.
    pub fn label(self) -> &'static str {
        match self {
            Definition::AddressDispersion => "Address Dispersion",
            Definition::PacketVolume => "Packet Volume",
            Definition::DistinctPorts => "Total Ports",
        }
    }
}

/// Tunable parameters of the three definitions.
#[derive(Debug, Clone, Copy)]
pub struct Thresholds {
    /// Definition 1 dispersion fraction (paper: 0.10, following the
    /// "large scans" cut of Durumeric et al.).
    pub dispersion_fraction: f64,
    /// Definition 2 tail mass (paper: α = 10⁻⁴, the top-0.01% of events).
    pub volume_alpha: f64,
    /// Definition 3 tail mass (paper: α = 10⁻⁴).
    pub ports_alpha: f64,
}

impl Default for Thresholds {
    fn default() -> Thresholds {
        Thresholds { dispersion_fraction: 0.10, volume_alpha: 1e-4, ports_alpha: 1e-4 }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indices_are_stable() {
        for (i, d) in Definition::ALL.iter().enumerate() {
            assert_eq!(d.index(), i);
        }
    }

    #[test]
    fn labels() {
        assert_eq!(Definition::AddressDispersion.short(), "D1");
        assert_eq!(Definition::PacketVolume.label(), "Packet Volume");
        assert_eq!(Definition::DistinctPorts.short(), "D3");
    }

    #[test]
    fn default_thresholds_match_paper() {
        let t = Thresholds::default();
        assert!((t.dispersion_fraction - 0.10).abs() < 1e-12);
        assert!((t.volume_alpha - 1e-4).abs() < 1e-18);
        assert!((t.ports_alpha - 1e-4).abs() < 1e-18);
    }
}
