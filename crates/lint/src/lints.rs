//! The lint passes and the suppression machinery.
//!
//! Each lint is a token-pattern check over the [`lexer`](crate::lexer)
//! stream of one file. Suppressions are first-class and *audited*: an
//! `// ah-lint: allow(<id>, reason = "…")` comment silences the named
//! lint on its own and the following line, `allow-file` silences it
//! for the whole file, and a suppression without a non-empty reason is
//! itself a diagnostic — the allowlist stays self-documenting.

use std::collections::{HashMap, HashSet};

use crate::lexer::{Tok, Token};

/// One finding: where, which lint, and what is wrong.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Diagnostic {
    /// Workspace-relative path of the offending file.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// Lint id (one of [`LINTS`]).
    pub lint: &'static str,
    /// Human-readable description of the finding.
    pub message: String,
}

impl Diagnostic {
    /// Render as the canonical `file:line: [lint] message` form.
    pub fn human(&self) -> String {
        format!("{}:{}: [{}] {}", self.file, self.line, self.lint, self.message)
    }

    /// Render as a single JSON object (first-party, no serde).
    pub fn json(&self) -> String {
        format!(
            "{{\"file\":\"{}\",\"line\":{},\"lint\":\"{}\",\"message\":\"{}\"}}",
            escape_json(&self.file),
            self.line,
            self.lint,
            escape_json(&self.message)
        )
    }
}

fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Every lint this tool knows, with a one-line description.
pub const LINTS: &[(&str, &str)] = &[
    ("panic-path", "no unwrap/expect/panic!/todo!/unimplemented!/unreachable! in non-test library code"),
    ("atomic-ordering", "SeqCst/Relaxed atomic orderings only at sites justified by an ORDERING:/SAFETY: comment"),
    ("metric-name", "metric registration and ah-trace span/track name literals must satisfy the ah_<crate>_<subsystem>_<name> scheme"),
    ("unsafe-safety-comment", "unsafe blocks/impls/traits need a SAFETY: comment; unsafe fns need a '# Safety' doc section"),
    ("doc-header", "crate roots must carry #![warn(missing_docs)]; every module file must open with a doc comment"),
    ("doc-link", "markdown links must resolve: relative paths exist, #anchors match a heading"),
    ("unsafe-forbid", "crate roots must carry #![forbid(unsafe_code)] unless allow-file'd with a reason"),
    ("bad-suppression", "ah-lint suppression comments must name a known lint and carry a reason"),
    ("unused-suppression", "an allow/allow-file whose lint would not have fired must be removed"),
];

/// True when `id` names a known lint.
pub fn known_lint(id: &str) -> bool {
    LINTS.iter().any(|(l, _)| *l == id)
}

/// Everything the passes need to know about one file.
pub struct FileCtx<'a> {
    /// Workspace-relative display path.
    pub path: &'a str,
    /// True for `src/lib.rs` of a crate (doc-header / unsafe-forbid
    /// apply).
    pub crate_root: bool,
    /// Token stream of the file.
    pub tokens: &'a [Token],
    /// Line ranges (inclusive) of `#[cfg(test)]` / `#[test]` items.
    pub test_ranges: Vec<(u32, u32)>,
}

impl FileCtx<'_> {
    fn in_test(&self, line: u32) -> bool {
        self.test_ranges.iter().any(|&(a, b)| a <= line && line <= b)
    }

    fn diag(&self, line: u32, lint: &'static str, message: String) -> Diagnostic {
        Diagnostic { file: self.path.to_string(), line, lint, message }
    }
}

/// Parsed suppressions for one file.
#[derive(Default)]
pub struct Suppressions {
    /// Lints silenced for the whole file, each with the line of the
    /// `allow-file` comment that declared it (for unused reporting).
    pub file: HashMap<String, u32>,
    /// (lint, line) pairs; a suppression on line L silences L and L+1.
    pub line: HashSet<(String, u32)>,
    /// Malformed suppression comments found while parsing.
    pub bad: Vec<(u32, String)>,
}

impl Suppressions {
    /// Is `lint` silenced at `line`?
    pub fn allows(&self, lint: &str, line: u32) -> bool {
        self.file.contains_key(lint)
            || self.line.contains(&(lint.to_string(), line))
            || (line > 0 && self.line.contains(&(lint.to_string(), line - 1)))
    }
}

/// Parse `ah-lint:` control comments out of the token stream.
pub fn parse_suppressions(tokens: &[Token]) -> Suppressions {
    let mut sup = Suppressions::default();
    for t in tokens {
        let text = match &t.kind {
            Tok::Comment(c) | Tok::DocComment(c) => c.trim(),
            _ => continue,
        };
        let Some(rest) = text.strip_prefix("ah-lint:") else { continue };
        let rest = rest.trim();
        let (file_scope, body) = if let Some(b) = rest.strip_prefix("allow-file(") {
            (true, b)
        } else if let Some(b) = rest.strip_prefix("allow(") {
            (false, b)
        } else {
            sup.bad.push((t.line, format!("unrecognized ah-lint directive: `{rest}`")));
            continue;
        };
        let Some(body) = body.strip_suffix(')') else {
            sup.bad.push((t.line, "unterminated ah-lint directive (missing `)`)".into()));
            continue;
        };
        let (id, tail) = match body.split_once(',') {
            Some((id, tail)) => (id.trim(), tail.trim()),
            None => (body.trim(), ""),
        };
        if !known_lint(id) {
            sup.bad.push((t.line, format!("unknown lint `{id}` in suppression")));
            continue;
        }
        let reason_ok = tail
            .strip_prefix("reason")
            .map(|r| r.trim_start().trim_start_matches('='))
            .map(|r| r.trim())
            .is_some_and(|r| r.len() > 2 && r.starts_with('"') && r.ends_with('"'));
        if !reason_ok {
            sup.bad.push((
                t.line,
                format!("suppression of `{id}` needs a reason: allow({id}, reason = \"…\")"),
            ));
            continue;
        }
        if file_scope {
            sup.file.entry(id.to_string()).or_insert(t.line);
        } else {
            sup.line.insert((id.to_string(), t.line));
        }
    }
    sup
}

/// Compute the (inclusive) line ranges covered by `#[cfg(test)]` /
/// `#[test]` items, so panic-path and friends skip test code. Works on
/// tokens, so braces in strings or comments cannot confuse the
/// tracker.
pub fn test_ranges(tokens: &[Token]) -> Vec<(u32, u32)> {
    let code: Vec<&Token> =
        tokens.iter().filter(|t| !matches!(t.kind, Tok::Comment(_) | Tok::DocComment(_))).collect();
    let mut ranges = Vec::new();
    let mut i = 0;
    while i < code.len() {
        if code[i].kind != Tok::Punct('#')
            || code.get(i + 1).map(|t| &t.kind) != Some(&Tok::Punct('['))
        {
            i += 1;
            continue;
        }
        let attr_start_line = code[i].line;
        // Collect idents to the matching `]`.
        let mut j = i + 2;
        let mut depth = 1i32;
        let mut idents: Vec<&str> = Vec::new();
        while j < code.len() && depth > 0 {
            match &code[j].kind {
                Tok::Punct('[') => depth += 1,
                Tok::Punct(']') => depth -= 1,
                Tok::Ident(s) => idents.push(s),
                _ => {}
            }
            j += 1;
        }
        let is_test = idents.contains(&"test")
            && !idents.contains(&"not")
            && idents.first() != Some(&"cfg_attr");
        if !is_test {
            i = j;
            continue;
        }
        // Skip any further attributes, then span the item itself: to the
        // matching `}` of its first top-level `{`, or to a `;` if one
        // comes first (e.g. a use declaration).
        while j + 1 < code.len()
            && code[j].kind == Tok::Punct('#')
            && code[j + 1].kind == Tok::Punct('[')
        {
            let mut d = 1i32;
            let mut k = j + 2;
            while k < code.len() && d > 0 {
                match code[k].kind {
                    Tok::Punct('[') => d += 1,
                    Tok::Punct(']') => d -= 1,
                    _ => {}
                }
                k += 1;
            }
            j = k;
        }
        let mut brace = 0i32;
        let mut end_line = code.get(j.saturating_sub(1)).map_or(attr_start_line, |t| t.line);
        while j < code.len() {
            match code[j].kind {
                Tok::Punct('{') => brace += 1,
                Tok::Punct('}') => {
                    brace -= 1;
                    if brace == 0 {
                        end_line = code[j].line;
                        j += 1;
                        break;
                    }
                }
                Tok::Punct(';') if brace == 0 => {
                    end_line = code[j].line;
                    j += 1;
                    break;
                }
                _ => {}
            }
            end_line = code[j].line;
            j += 1;
        }
        ranges.push((attr_start_line, end_line));
        i = j;
    }
    ranges
}

/// Run the selected lints over one file.
pub fn run_lints(ctx: &FileCtx<'_>, enabled: &dyn Fn(&str) -> bool) -> Vec<Diagnostic> {
    let sup = parse_suppressions(ctx.tokens);
    let mut out = Vec::new();
    if enabled("bad-suppression") {
        for (line, msg) in &sup.bad {
            out.push(ctx.diag(*line, "bad-suppression", msg.clone()));
        }
    }
    if enabled("panic-path") {
        panic_path(ctx, &mut out);
    }
    if enabled("atomic-ordering") {
        atomic_ordering(ctx, &mut out);
    }
    if enabled("metric-name") {
        metric_name(ctx, &mut out);
    }
    if enabled("unsafe-safety-comment") {
        unsafe_safety_comment(ctx, &mut out);
    }
    if enabled("doc-header") {
        doc_header(ctx, &mut out);
    }
    if ctx.crate_root && enabled("unsafe-forbid") {
        unsafe_forbid(ctx, &mut out);
    }
    // An allow that silenced nothing is itself a finding: compute usage
    // against the *pre-filter* diagnostics, so a suppression is "used"
    // exactly when some finding it covers actually fired. Lints not
    // enabled in this run are skipped — under `--lint` filtering we
    // cannot know whether the suppressed lint would have fired.
    if enabled("unused-suppression") {
        let mut unused = Vec::new();
        for (id, decl_line) in &sup.file {
            if enabled(id) && !out.iter().any(|d| d.lint == id.as_str()) {
                unused.push((*decl_line, id.clone(), true));
            }
        }
        for (id, decl_line) in &sup.line {
            let hit = out.iter().any(|d| {
                d.lint == id.as_str() && (d.line == *decl_line || d.line == decl_line + 1)
            });
            if enabled(id) && !hit {
                unused.push((*decl_line, id.clone(), false));
            }
        }
        for (line, id, file_scope) in unused {
            let form = if file_scope { "allow-file" } else { "allow" };
            out.push(ctx.diag(
                line,
                "unused-suppression",
                format!(
                    "unused {form}({id}): the suppressed lint would not have fired — remove it"
                ),
            ));
        }
    }
    out.retain(|d| d.lint == "bad-suppression" || !sup.allows(d.lint, d.line));
    out.sort_by_key(|d| d.line);
    out
}

/// Code tokens only (comments stripped), preserving order.
fn code_tokens<'a>(ctx: &'a FileCtx<'_>) -> Vec<&'a Token> {
    ctx.tokens.iter().filter(|t| !matches!(t.kind, Tok::Comment(_) | Tok::DocComment(_))).collect()
}

/// Contiguous runs of comment lines, merged into blocks: (first line,
/// last line, concatenated text). A `// SAFETY:` argument often spans
/// several lines; anchoring on the whole block lets the nearby-ness
/// checks measure from the block's end, not the line the keyword
/// happens to sit on. Doc and non-doc comments merge separately.
fn comment_blocks(tokens: &[Token], doc: bool) -> Vec<(u32, u32, String)> {
    let mut blocks: Vec<(u32, u32, String)> = Vec::new();
    for t in tokens {
        let (is_doc, text) = match &t.kind {
            Tok::Comment(c) => (false, c),
            Tok::DocComment(c) => (true, c),
            _ => continue,
        };
        if is_doc != doc {
            continue;
        }
        let end = t.line + text.matches('\n').count() as u32;
        match blocks.last_mut() {
            Some((_, last_end, body)) if t.line <= *last_end + 1 => {
                *last_end = end;
                body.push('\n');
                body.push_str(text);
            }
            _ => blocks.push((t.line, end, text.clone())),
        }
    }
    blocks
}

/// Is there a block (from `blocks`) containing `needle` whose end is
/// within `above` lines above `line`, or whose start is within `below`
/// lines below it?
fn near_block(
    blocks: &[(u32, u32, String)],
    needle: &str,
    line: u32,
    above: u32,
    below: u32,
) -> bool {
    blocks.iter().any(|(start, end, body)| {
        body.contains(needle)
            && ((*end <= line && line - end <= above) || (*start >= line && start - line <= below))
    })
}

const PANIC_MACROS: &[&str] = &["panic", "todo", "unimplemented", "unreachable"];

fn panic_path(ctx: &FileCtx<'_>, out: &mut Vec<Diagnostic>) {
    let code = code_tokens(ctx);
    for (i, t) in code.iter().enumerate() {
        if ctx.in_test(t.line) {
            continue;
        }
        let Tok::Ident(name) = &t.kind else { continue };
        let prev = i.checked_sub(1).and_then(|p| code.get(p)).map(|t| &t.kind);
        let next = code.get(i + 1).map(|t| &t.kind);
        if (name == "unwrap" || name == "expect")
            && prev == Some(&Tok::Punct('.'))
            && next == Some(&Tok::Punct('('))
        {
            out.push(ctx.diag(
                t.line,
                "panic-path",
                format!(".{name}() in library code — return a Result or annotate with a reason"),
            ));
        } else if PANIC_MACROS.contains(&name.as_str()) && next == Some(&Tok::Punct('!')) {
            out.push(ctx.diag(
                t.line,
                "panic-path",
                format!("{name}! in library code — return an error or annotate with a reason"),
            ));
        }
    }
}

fn atomic_ordering(ctx: &FileCtx<'_>, out: &mut Vec<Diagnostic>) {
    // A SeqCst/Relaxed site is fine when a nearby comment block (same
    // line or just above) argues for it with ORDERING: or SAFETY:.
    let mut blocks = comment_blocks(ctx.tokens, false);
    blocks.extend(comment_blocks(ctx.tokens, true));
    for t in code_tokens(ctx) {
        if ctx.in_test(t.line) {
            continue;
        }
        let Tok::Ident(name) = &t.kind else { continue };
        if name != "Relaxed" && name != "SeqCst" {
            continue;
        }
        if near_block(&blocks, "ORDERING:", t.line, 2, 0)
            || near_block(&blocks, "SAFETY:", t.line, 2, 0)
        {
            continue;
        }
        out.push(ctx.diag(
            t.line,
            "atomic-ordering",
            format!(
                "Ordering::{name} without an ORDERING:/SAFETY: justification — \
                 use Acquire/Release or justify the weaker/stronger ordering"
            ),
        ));
    }
}

const METRIC_FNS: &[&str] =
    &["counter", "counter_with", "gauge", "gauge_with", "histogram", "histogram_with"];

/// ah-trace registration points whose first string-literal argument is a
/// span/instant/track name. Shares the metric naming scheme
/// (`ah_trace::valid_trace_name` is the same predicate as
/// `ah_obs::valid_metric_name`), so violations report as `metric-name`.
const TRACE_FNS: &[&str] = &["span", "journey_span", "instant", "journey_instant", "set_track"];

/// Memory-observability helpers (`src/pipeline.rs`) whose first
/// string-literal argument is an `ah_mem_*` gauge/counter name. They are
/// deliberately name-first so this pass sees the same
/// `ident ( "literal"` shape as the recorder methods.
const MEM_FNS: &[&str] = &["mem_gauge", "mem_counter"];

fn metric_name(ctx: &FileCtx<'_>, out: &mut Vec<Diagnostic>) {
    let code = code_tokens(ctx);
    for (i, t) in code.iter().enumerate() {
        if ctx.in_test(t.line) {
            continue;
        }
        let Tok::Ident(name) = &t.kind else { continue };
        let is_metric = METRIC_FNS.contains(&name.as_str()) || MEM_FNS.contains(&name.as_str());
        let is_trace = TRACE_FNS.contains(&name.as_str());
        if !is_metric && !is_trace {
            continue;
        }
        if code.get(i + 1).map(|t| &t.kind) != Some(&Tok::Punct('(')) {
            continue;
        }
        let Some(Tok::Str(lit)) = code.get(i + 2).map(|t| &t.kind) else { continue };
        if !ah_obs::valid_metric_name(lit) {
            let kind = if is_metric { "metric" } else { "trace span/track" };
            out.push(ctx.diag(
                t.line,
                "metric-name",
                format!(
                    "{kind} name \"{lit}\" violates the ah_<crate>_<subsystem>_<name> scheme \
                     (ah_obs::valid_metric_name / ah_trace::valid_trace_name)"
                ),
            ));
        }
    }
}

fn unsafe_safety_comment(ctx: &FileCtx<'_>, out: &mut Vec<Diagnostic>) {
    let comments = comment_blocks(ctx.tokens, false);
    let docs = comment_blocks(ctx.tokens, true);
    let code = code_tokens(ctx);
    for (i, t) in code.iter().enumerate() {
        if !matches!(&t.kind, Tok::Ident(name) if name == "unsafe") {
            continue;
        }
        let next = code.get(i + 1).map(|t| &t.kind);
        let is_block_like = matches!(next, Some(Tok::Punct('{')))
            || matches!(next, Some(Tok::Ident(k)) if k == "impl" || k == "trait");
        let is_fn = matches!(next, Some(Tok::Ident(k)) if k == "fn");
        if is_block_like {
            // Block / impl / trait: want `// SAFETY:` ending on the
            // same line or within the 4 lines above (rustfmt may wrap
            // the statement the comment was written against).
            if !near_block(&comments, "SAFETY:", t.line, 4, 0) {
                out.push(ctx.diag(
                    t.line,
                    "unsafe-safety-comment",
                    "unsafe without a `// SAFETY:` comment justifying it".into(),
                ));
            }
        } else if is_fn {
            // An unsafe fn documents its contract in a `# Safety` doc
            // section; a trait-impl definition may instead carry the
            // `// SAFETY:` justification just above or inside its body
            // (the trait declaration owns the contract).
            if !near_block(&docs, "# Safety", t.line, 4, 0)
                && !near_block(&comments, "SAFETY:", t.line, 4, 3)
            {
                out.push(ctx.diag(
                    t.line,
                    "unsafe-safety-comment",
                    "unsafe fn without a `# Safety` doc section or SAFETY: comment".into(),
                ));
            }
        }
    }
}

/// Does the stream open with `#![<level>(<what>)]`? Scans all inner
/// attributes of the file.
fn has_inner_attr(ctx: &FileCtx<'_>, levels: &[&str], what: &str) -> bool {
    let code = code_tokens(ctx);
    let mut i = 0;
    while i + 4 < code.len() {
        if code[i].kind == Tok::Punct('#')
            && code[i + 1].kind == Tok::Punct('!')
            && code[i + 2].kind == Tok::Punct('[')
        {
            let mut d = 1i32;
            let mut j = i + 3;
            let mut idents: Vec<&str> = Vec::new();
            while j < code.len() && d > 0 {
                match &code[j].kind {
                    Tok::Punct('[') => d += 1,
                    Tok::Punct(']') => d -= 1,
                    Tok::Ident(s) => idents.push(s),
                    _ => {}
                }
                j += 1;
            }
            if idents.first().is_some_and(|l| levels.contains(l)) && idents.contains(&what) {
                return true;
            }
            i = j;
        } else {
            i += 1;
        }
    }
    false
}

fn doc_header(ctx: &FileCtx<'_>, out: &mut Vec<Diagnostic>) {
    if ctx.crate_root && !has_inner_attr(ctx, &["warn", "deny", "forbid"], "missing_docs") {
        out.push(ctx.diag(
            1,
            "doc-header",
            "crate root lacks #![warn(missing_docs)] (or deny/forbid)".into(),
        ));
    }
    // Every module file — crate root or not — opens with a doc block:
    // some doc comment must precede the first code token. (Token-level
    // heuristic: an outer `///` on the first item also satisfies this,
    // but rustfmt'd module files put the `//!` header first, so in
    // practice this pins the module-doc convention — added when the
    // MPSC merge ring joined `crates/simnet` as a second ring module.)
    let first_code = ctx
        .tokens
        .iter()
        .find(|t| !matches!(t.kind, Tok::Comment(_) | Tok::DocComment(_)))
        .map_or(u32::MAX, |t| t.line);
    let has_doc =
        ctx.tokens.iter().any(|t| matches!(t.kind, Tok::DocComment(_)) && t.line < first_code);
    if !has_doc {
        out.push(ctx.diag(
            1,
            "doc-header",
            "module file lacks a leading `//!` doc block describing the module".into(),
        ));
    }
}

fn unsafe_forbid(ctx: &FileCtx<'_>, out: &mut Vec<Diagnostic>) {
    if !has_inner_attr(ctx, &["forbid", "deny"], "unsafe_code") {
        out.push(
            ctx.diag(
                1,
                "unsafe-forbid",
                "crate root lacks #![forbid(unsafe_code)]; crates that need unsafe \
             allow-file this lint with a reason"
                    .into(),
            ),
        );
    }
}
