//! End-to-end fault-injection ("chaos") runs: the full pipeline fed a
//! degraded packet stream must neither panic nor lose input without a
//! ledger entry, and detection must degrade gracefully — at a 1% fault
//! rate the aggressive-hitter lists stay nearly identical to a pristine
//! run (Jaccard ≥ 0.9 for all three definitions).

use aggressive_scanners::core::defs::{Definition, Thresholds};
use aggressive_scanners::core::lists::jaccard;
use aggressive_scanners::net::time::Dur;
use aggressive_scanners::pipeline::{self, RunOptions, RunOutput};
use aggressive_scanners::simnet::faults::FaultPlan;
use aggressive_scanners::simnet::scenario::ScenarioConfig;

/// Loose tail cuts so the tiny scenario yields lists of tens of sources
/// per definition (the paper's α = 10⁻⁴ assumes millions of events).
fn chaos_thresholds() -> Thresholds {
    Thresholds { dispersion_fraction: 0.10, volume_alpha: 0.01, ports_alpha: 0.01 }
}

fn chaos_run(faults: Option<FaultPlan>) -> RunOutput {
    let mut opts = RunOptions::full().with_thresholds(chaos_thresholds());
    if let Some(plan) = faults {
        opts = opts.with_faults(plan);
    }
    pipeline::run(ScenarioConfig::tiny(3, 77), opts)
}

/// Every stage ledger must balance exactly, at any fault rate.
fn assert_conserves(out: &RunOutput, label: &str) {
    assert!(
        out.health.conserves(),
        "{label}: conservation violated in stages {:?}\n{}",
        out.health.violations(),
        out.health.render()
    );
}

#[test]
fn faulty_runs_never_panic_and_always_conserve() {
    for rate in [0.001, 0.01, 0.05] {
        let out = chaos_run(Some(FaultPlan::uniform(rate, 7)));
        assert_conserves(&out, &format!("rate {rate}"));
        let inj = out.health.stage("faults.injector").expect("injector stage present");
        assert!(inj.received >= out.generated_packets, "injector saw every packet");
        assert!(inj.discarded_total() > 0, "rate {rate} must discard something");
        // The degraded stream still reaches every vantage point.
        assert!(out.capture.total_packets > 0);
        assert!(out.merit_flows.as_ref().is_some_and(|d| !d.records.is_empty()));
        assert!(out.gn_entries.as_ref().is_some_and(|g| !g.is_empty()));
    }
}

#[test]
fn one_percent_faults_keep_hitter_lists_stable() {
    let clean = chaos_run(None);
    let faulty = chaos_run(Some(FaultPlan::uniform(0.01, 7)));
    assert_conserves(&clean, "clean");
    assert_conserves(&faulty, "1% faults");
    for def in [Definition::AddressDispersion, Definition::PacketVolume, Definition::DistinctPorts]
    {
        let a = clean.report.hitters(def);
        let b = faulty.report.hitters(def);
        assert!(!a.is_empty(), "{def:?}: clean run must detect hitters");
        let j = jaccard(a, b);
        assert!(
            j >= 0.9,
            "{def:?}: Jaccard {j:.3} < 0.9 (clean {} vs faulty {})",
            a.len(),
            b.len()
        );
    }
}

#[test]
fn clean_plan_is_an_identity() {
    let baseline = chaos_run(None);
    let injected = chaos_run(Some(FaultPlan::clean()));
    assert_conserves(&injected, "clean plan");
    let inj = injected.health.stage("faults.injector").expect("injector stage present");
    assert_eq!(inj.received, inj.accepted, "clean plan delivers every packet");
    assert_eq!(inj.discarded_total(), 0);
    assert_eq!(baseline.generated_packets, injected.generated_packets);
    assert_eq!(baseline.capture.total_packets, injected.capture.total_packets);
    for def in [Definition::AddressDispersion, Definition::PacketVolume, Definition::DistinctPorts]
    {
        assert_eq!(baseline.report.hitters(def), injected.report.hitters(def), "{def:?}");
    }
}

#[test]
fn burst_outages_are_dropped_and_ledgered() {
    let plan = FaultPlan::clean().with_outage(Dur::from_mins(60), Dur::from_mins(5));
    let out = chaos_run(Some(plan));
    assert_conserves(&out, "outage");
    let inj = out.health.stage("faults.injector").expect("injector stage present");
    let outage = inj.discarded.get("outage").copied().unwrap_or(0);
    assert!(outage > 0, "periodic outage windows must drop packets");
    assert_eq!(inj.received, inj.accepted + outage, "outage is the only loss");
    // Capture still conserves downstream of the holes.
    assert!(out.capture.total_packets > 0);
}
