//! The sentinel set: curated mutants the suite **must** catch, backing
//! the CI `mutation` gate.
//!
//! A full sweep is too slow for every CI run (one CPU, minutes per
//! mutant), so the gate runs a hand-picked set of mutants at the
//! system's load-bearing decision points — ring memory orderings, WAL
//! CRC/truncation handling, detector thresholds, aggregator boundary
//! comparisons — each with an explicit, narrow kill command so the
//! whole set classifies in a bounded time budget. Every sentinel must
//! come back **caught**; anything else fails the gate.
//!
//! Sentinels are matched structurally, not by byte offset: a sentinel
//! names (file, operator, original token, a substring of the source
//! line) plus a `pick` index for same-line twins (e.g. the two `!=` in
//! the WAL CRC check), and resolution takes the `pick`-th matching
//! mutant in offset order. Surrounding edits therefore never silently
//! detach a sentinel — if the site changes shape, resolution errors
//! out and CI says so; a distinct-ids test keeps two sentinels from
//! collapsing onto one mutant.

use std::path::Path;

use crate::ops::Mutant;
use crate::plan::enumerate_workspace;

/// One curated must-catch mutant.
pub struct Sentinel {
    /// Short stable name, shown in the gate output.
    pub name: &'static str,
    /// Workspace-relative file the mutant lives in.
    pub file: &'static str,
    /// Operator id (see [`crate::ops::OPERATORS`]).
    pub op: &'static str,
    /// The original token at the site (disambiguates operators that
    /// hit several tokens on the matched line).
    pub original: &'static str,
    /// Substring of the (trimmed) source line that anchors the site.
    pub contains: &'static str,
    /// Which match to take when the line holds same-op twins
    /// (offset order; 0 unless stated).
    pub pick: usize,
    /// Explicit cargo steps that must fail — build first, then the
    /// narrowest test command known to exercise the site.
    pub kill: &'static [&'static [&'static str]],
    /// Why this mutant must never survive.
    pub why: &'static str,
}

const WAL_BUILD: &[&str] = &["build", "-q", "-p", "ah-wal"];
const WAL_TEST: &[&str] = &["test", "-q", "-p", "ah-wal"];
const CORE_BUILD: &[&str] = &["build", "-q", "-p", "ah-core"];
const CORE_TEST: &[&str] = &["test", "-q", "-p", "ah-core"];
const TELE_TEST: &[&str] = &["test", "-q", "-p", "ah-telescope"];
const SPSC_CLEAN: &[&str] =
    &["test", "-q", "-p", "ah-simnet", "--test", "model_check", "real_ring_is_clean_capacity_2"];
const MPSC_CLEAN: &[&str] = &[
    "test",
    "-q",
    "--release",
    "-p",
    "ah-simnet",
    "--test",
    "model_check",
    "real_mpsc_is_clean_capacity_2",
];

/// The curated sentinel set. Ordered cheapest-kill first so a broken
/// tree fails the gate as early as possible.
pub const SENTINELS: &[Sentinel] = &[
    Sentinel {
        name: "wal-crc-flip",
        file: "crates/wal/src/frame.rs",
        op: "cmp-swap",
        original: "!=",
        contains: "crc.finish() != stored_crc",
        pick: 0,
        kill: &[WAL_BUILD, WAL_TEST],
        why: "inverting the CRC check accepts every corrupt frame",
    },
    Sentinel {
        name: "wal-seq-flip",
        file: "crates/wal/src/frame.rs",
        op: "cmp-swap",
        original: "!=",
        contains: "crc.finish() != stored_crc",
        pick: 1,
        kill: &[WAL_BUILD, WAL_TEST],
        why: "inverting the sequence check accepts replayed/reordered frames",
    },
    Sentinel {
        name: "wal-crc-or-seq",
        file: "crates/wal/src/frame.rs",
        op: "logic-swap",
        original: "||",
        contains: "crc.finish() != stored_crc",
        pick: 0,
        kill: &[WAL_BUILD, WAL_TEST],
        why: "|| → && requires BOTH checks to fail before rejecting a frame",
    },
    Sentinel {
        name: "wal-empty-frame",
        file: "crates/wal/src/frame.rs",
        op: "cmp-swap",
        original: "==",
        contains: "len == 0",
        pick: 0,
        kill: &[WAL_BUILD, WAL_TEST],
        why: "== → != flips the zero-length/oversize corruption guard",
    },
    Sentinel {
        name: "wal-torn-tail",
        file: "crates/wal/src/frame.rs",
        op: "cmp-swap",
        original: "<",
        contains: "buf.len() < total",
        pick: 0,
        kill: &[WAL_BUILD, WAL_TEST],
        why: "< → <= misclassifies an exactly-complete frame as torn",
    },
    Sentinel {
        name: "wal-seal-last",
        file: "crates/wal/src/recover.rs",
        op: "cmp-swap",
        original: "!=",
        contains: "seal_at != out.next_seq",
        pick: 0,
        kill: &[WAL_BUILD, WAL_TEST],
        why: "a seal mid-log (or lost to truncation) must not count as sealed",
    },
    Sentinel {
        name: "det-d1-dispersion",
        file: "crates/core/src/detector.rs",
        op: "cmp-swap",
        original: ">=",
        contains: "t.dispersion_fraction",
        pick: 0,
        kill: &[CORE_BUILD, CORE_TEST],
        why: ">= → > drops sources exactly at the D1 dispersion threshold",
    },
    Sentinel {
        name: "det-d2-volume",
        file: "crates/core/src/detector.rs",
        op: "cmp-swap",
        original: ">",
        contains: "> d2_threshold",
        pick: 0,
        kill: &[CORE_BUILD, CORE_TEST],
        why: "the paper's D2 is strictly-above; > → >= admits the threshold itself",
    },
    Sentinel {
        name: "det-d3-ports",
        file: "crates/core/src/detector.rs",
        op: "cmp-swap",
        original: ">=",
        contains: ">= d3_threshold",
        pick: 0,
        kill: &[CORE_BUILD, CORE_TEST],
        why: "the paper's D3 is at-or-above; >= → > drops boundary scanners",
    },
    Sentinel {
        name: "ecdf-count-above",
        file: "crates/core/src/ecdf.rs",
        op: "arith-swap",
        original: "-",
        contains: "partition_point",
        pick: 0,
        kill: &[CORE_BUILD, CORE_TEST],
        why: "count_above feeds the D2/D3 threshold derivation",
    },
    Sentinel {
        name: "time-since-saturates",
        file: "crates/net/src/time.rs",
        op: "sat-wrap",
        original: "saturating_sub",
        contains: "earlier.0",
        pick: 0,
        kill: &[&["build", "-q", "-p", "ah-net"], &["test", "-q", "-p", "ah-net"], TELE_TEST],
        why: "Ts::since underpins every watermark/lag decision; wrapping turns \
              a slightly-early packet into a ~584-year gap",
    },
    Sentinel {
        name: "agg-event-split",
        file: "crates/telescope/src/event.rs",
        op: "cmp-swap",
        original: ">",
        contains: "> self.timeout",
        pick: 0,
        kill: &[&["build", "-q", "-p", "ah-telescope"], TELE_TEST],
        why: "a gap of exactly the quiet timeout must extend the event, not split it",
    },
    Sentinel {
        name: "sampler-rollover",
        file: "crates/flow/src/sampler.rs",
        op: "cmp-swap",
        original: ">=",
        contains: ">= self.rate",
        pick: 0,
        kill: &[&["build", "-q", "-p", "ah-flow"], &["test", "-q", "-p", "ah-flow"]],
        why: ">= → > silently turns 1-in-N sampling into 1-in-(N+1)",
    },
    Sentinel {
        name: "ring-tail-publish",
        file: "crates/simnet/src/ring.rs",
        op: "ord-relax",
        original: "Release",
        contains: "const TAIL_PUBLISH",
        pick: 0,
        kill: &[&["build", "-q", "-p", "ah-simnet"], SPSC_CLEAN],
        why: "PR 5's seeded mutant: Relaxed tail publish lets the consumer read \
              unwritten slots; the model checker must re-find it from source",
    },
    Sentinel {
        name: "ring-head-observe",
        file: "crates/simnet/src/ring.rs",
        op: "ord-relax",
        original: "Acquire",
        contains: "const HEAD_OBSERVE",
        pick: 0,
        kill: &[&["build", "-q", "-p", "ah-simnet"], SPSC_CLEAN],
        why: "PR 5's seeded mutant: Relaxed head observe lets the producer \
              overwrite a slot still being read",
    },
    Sentinel {
        name: "mpsc-seq-publish",
        file: "crates/simnet/src/ring.rs",
        op: "ord-relax",
        original: "Release",
        contains: "const SEQ_PUBLISH",
        pick: 0,
        kill: &[&["build", "-q", "--release", "-p", "ah-simnet"], MPSC_CLEAN],
        why: "PR 7's seeded mutant: Relaxed seq publish exposes half-written \
              slots to the merge consumer (release-only exhaustive check)",
    },
    Sentinel {
        name: "mpsc-recycle-observe",
        file: "crates/simnet/src/ring.rs",
        op: "ord-relax",
        original: "Acquire",
        contains: "const RECYCLE_OBSERVE",
        pick: 0,
        kill: &[&["build", "-q", "--release", "-p", "ah-simnet"], MPSC_CLEAN],
        why: "PR 7's seeded mutant: Relaxed recycle observe lets a producer \
              reuse a slot before the consumer's read completes",
    },
];

/// Resolve one sentinel against the enumerated mutants of its file.
/// Errors when the anchor matches nothing (site moved/renamed) or when
/// `pick` exceeds the matches (twin disappeared) — a sentinel that no
/// longer resolves must be re-curated, not skipped.
pub fn resolve(s: &Sentinel, mutants: &[Mutant]) -> Result<Mutant, String> {
    let hits: Vec<&Mutant> = mutants
        .iter()
        .filter(|m| {
            m.file == s.file
                && m.op == s.op
                && m.original == s.original
                && m.context.contains(s.contains)
        })
        .collect();
    match hits.get(s.pick) {
        Some(m) => Ok((*m).clone()),
        None => Err(format!(
            "sentinel {}: no {} mutant of `{}` matching `{}` (pick {}) in {} — \
             the site moved; re-curate the sentinel",
            s.name, s.op, s.original, s.contains, s.pick, s.file
        )),
    }
}

/// Resolve the whole set, failing on the first detached sentinel.
pub fn resolve_all(root: &Path) -> Result<Vec<(&'static Sentinel, Mutant)>, String> {
    let mutants = enumerate_workspace(root)?;
    SENTINELS.iter().map(|s| resolve(s, &mutants).map(|m| (s, m))).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn repo_root() -> std::path::PathBuf {
        // crates/mutate → workspace root.
        Path::new(env!("CARGO_MANIFEST_DIR")).join("../..").canonicalize().unwrap()
    }

    #[test]
    fn every_sentinel_resolves_to_exactly_one_mutant() {
        let resolved = resolve_all(&repo_root()).unwrap();
        assert_eq!(resolved.len(), SENTINELS.len());
        // Distinct sites: no two sentinels may collapse onto one mutant.
        let mut ids: Vec<&str> = resolved.iter().map(|(_, m)| m.id.as_str()).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), SENTINELS.len(), "sentinels must hit distinct mutants");
    }

    #[test]
    fn sentinel_names_are_unique_and_kills_are_nonempty() {
        let mut names: Vec<&str> = SENTINELS.iter().map(|s| s.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), SENTINELS.len());
        for s in SENTINELS {
            assert!(!s.kill.is_empty(), "{} has no kill steps", s.name);
            assert!(s.kill.iter().all(|step| !step.is_empty()));
        }
    }

    #[test]
    fn ordering_sentinels_cover_both_rings() {
        let spsc = SENTINELS.iter().filter(|s| s.name.starts_with("ring-")).count();
        let mpsc = SENTINELS.iter().filter(|s| s.name.starts_with("mpsc-")).count();
        assert!(spsc >= 2 && mpsc >= 2, "must re-detect PR 5 and PR 7 ordering mutants");
    }
}
