//! Seeded fault injection between the traffic mux and its consumers.
//!
//! Real measurement pipelines never see the pristine packet stream the
//! simulator produces: capture drops under load, mirror ports duplicate,
//! multi-path delivery reorders, and hardware occasionally truncates or
//! corrupts frames. This module injects exactly those impairments —
//! deterministically, from a seed — so experiments can quantify how
//! gracefully the telescope/flow/intel consumers degrade
//! (`tests/chaos.rs` at the workspace root drives the full pipeline
//! through increasing fault rates).
//!
//! Byte-level faults (truncation, bit flips) go through the real wire
//! path: the packet is serialized with [`PacketMeta::to_bytes`], mutated,
//! and re-parsed with [`PacketMeta::parse_ip`] — so the "parsers are
//! total" guarantee of `ah-net` is exercised end to end, and a corrupted
//! packet is delivered downstream only if a real capture stack would have
//! accepted those bytes.
//!
//! Every packet's fate is counted in [`InjectorStats`], which satisfies
//! the conservation identity checked by [`InjectorStats::conserves`]:
//! nothing is ever silently lost or invented.
//!
//! # Counter-based per-source decision streams
//!
//! Fault decisions are **not** drawn from one global RNG sequence in
//! arrival order. Each offered packet gets its own decision RNG, seeded
//! as a pure function of `(plan.seed, source IP, per-source packet
//! counter)` — see [`packet_decision_seed`]. Packet *k* of source *S*
//! therefore suffers exactly the same fate no matter which packets from
//! *other* sources surround it. That is what lets the sharded parallel
//! engine run one injector per shard over its per-source substreams and
//! still reproduce the serial run bit for bit: the union of the shard
//! decisions *is* the serial decision set (`ARCHITECTURE.md` §11).
//! Burst outages are a pure function of the packet timestamp, and the
//! reorder hold-back heap releases a held packet relative to its own
//! source's later packets, so per-source delivered order is identical
//! in every sharding.

use crate::rng::{hash64, Rng64};
use ah_mem::Tag;
use ah_net::packet::{PacketMeta, Transport};
use ah_net::time::{Dur, Ts};
use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::collections::HashMap;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Per-category fault rates and parameters. All rates are per-packet
/// probabilities in `[0, 1]`; categories are drawn independently.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaultPlan {
    /// Probability a packet is silently dropped (capture loss).
    pub drop: f64,
    /// Probability a packet is delivered twice (mirror duplication).
    pub duplicate: f64,
    /// Probability a packet is held back and delivered out of order.
    pub reorder: f64,
    /// Maximum delivery delay for reordered packets; the consumer-visible
    /// timestamp skew is bounded by this.
    pub max_skew: Dur,
    /// Probability the packet's bytes are truncated at a random offset
    /// (snaplen/framing faults). Truncated packets that no longer parse
    /// are discarded, as a capture stack would.
    pub truncate: f64,
    /// Probability a single random bit of the packet's bytes is flipped.
    /// Flips that break the IP header checksum are discarded; flips the
    /// wire would accept are delivered corrupted.
    pub bitflip: f64,
    /// Probability the packet's payload is stripped to a bare header
    /// (zero-length payload capture).
    pub zero_payload: f64,
    /// Period of recurring burst outages; `Dur::ZERO` disables them.
    pub outage_period: Dur,
    /// Length of each outage window (every packet inside is dropped).
    pub outage_len: Dur,
    /// Seed for all fault decisions.
    pub seed: u64,
}

impl FaultPlan {
    /// No faults at all — the injector becomes a pass-through.
    pub fn clean() -> FaultPlan {
        FaultPlan {
            drop: 0.0,
            duplicate: 0.0,
            reorder: 0.0,
            max_skew: Dur::ZERO,
            truncate: 0.0,
            bitflip: 0.0,
            zero_payload: 0.0,
            outage_period: Dur::ZERO,
            outage_len: Dur::ZERO,
            seed: 0,
        }
    }

    /// Every per-packet category at the same `rate`, with a 2-second
    /// reorder bound and no outages — the standard chaos-test plan.
    pub fn uniform(rate: f64, seed: u64) -> FaultPlan {
        FaultPlan {
            drop: rate,
            duplicate: rate,
            reorder: rate,
            max_skew: Dur::from_secs(2),
            truncate: rate,
            bitflip: rate,
            zero_payload: rate,
            outage_period: Dur::ZERO,
            outage_len: Dur::ZERO,
            seed,
        }
    }

    /// Add recurring burst outages to a plan.
    pub fn with_outage(mut self, period: Dur, len: Dur) -> FaultPlan {
        self.outage_period = period;
        self.outage_len = len;
        self
    }

    /// True when no category can ever fire.
    pub fn is_clean(&self) -> bool {
        self.drop == 0.0
            && self.duplicate == 0.0
            && self.reorder == 0.0
            && self.truncate == 0.0
            && self.bitflip == 0.0
            && self.zero_payload == 0.0
            && (self.outage_period.0 == 0 || self.outage_len.0 == 0)
    }
}

/// Counters over every packet offered to a [`FaultInjector`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct InjectorStats {
    /// Packets offered by the mux.
    pub input: u64,
    /// Packets handed to the consumer (including duplicates and packets
    /// delivered mutated).
    pub delivered: u64,
    /// Packets dropped by the `drop` category.
    pub dropped: u64,
    /// Extra copies created by the `duplicate` category.
    pub duplicated: u64,
    /// Packets dropped inside an outage window.
    pub outage_dropped: u64,
    /// Truncated packets whose bytes no longer parsed.
    pub truncated_discarded: u64,
    /// Bit-flipped packets whose bytes no longer parsed.
    pub corrupt_discarded: u64,
    /// Packets delayed for out-of-order delivery (subset of `delivered`).
    pub reordered: u64,
    /// Bit-flipped packets that still parsed and were delivered (subset
    /// of `delivered`).
    pub corrupted_delivered: u64,
    /// Packets delivered with their payload stripped (subset of
    /// `delivered`).
    pub zero_payload: u64,
}

impl InjectorStats {
    /// The conservation identity: every input packet (plus every created
    /// duplicate) is either delivered or counted in exactly one discard
    /// category. Holds after [`FaultInjector::flush`]; while packets are
    /// still held for reordering, add [`FaultInjector::pending`] to the
    /// right-hand side.
    pub fn conserves(&self) -> bool {
        self.input + self.duplicated
            == self.delivered
                + self.dropped
                + self.outage_dropped
                + self.truncated_discarded
                + self.corrupt_discarded
    }

    /// Total packets lost to any discard category.
    pub fn total_discarded(&self) -> u64 {
        self.dropped + self.outage_dropped + self.truncated_discarded + self.corrupt_discarded
    }

    /// Fold another injector's counters into this one. Because every
    /// field is a plain per-packet tally, per-shard stats summed across
    /// shards equal the serial injector's stats exactly — the parallel
    /// engine's `faults.injector` health ledger is built this way.
    pub fn merge(&mut self, other: &InjectorStats) {
        self.input += other.input;
        self.delivered += other.delivered;
        self.dropped += other.dropped;
        self.duplicated += other.duplicated;
        self.outage_dropped += other.outage_dropped;
        self.truncated_discarded += other.truncated_discarded;
        self.corrupt_discarded += other.corrupt_discarded;
        self.reordered += other.reordered;
        self.corrupted_delivered += other.corrupted_delivered;
        self.zero_payload += other.zero_payload;
    }
}

/// The decision-RNG seed for packet number `n` (0-based) of source
/// `src` under `plan_seed`: a chained splitmix mix, so the stream is a
/// pure function of `(plan_seed, src, n)` and nothing else. Public so
/// tests (and the documentation) can state the derivation exactly.
pub fn packet_decision_seed(plan_seed: u64, src: u32, n: u64) -> u64 {
    hash64(hash64(hash64(plan_seed ^ 0xfa17_1e57) ^ u64::from(src)) ^ n)
}

/// A packet held back for out-of-order delivery.
struct Held {
    release: Ts,
    seq: u64,
    pkt: PacketMeta,
}

impl PartialEq for Held {
    fn eq(&self, other: &Self) -> bool {
        (self.release, self.seq) == (other.release, other.seq)
    }
}
impl Eq for Held {}
impl PartialOrd for Held {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Held {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.release, self.seq).cmp(&(other.release, other.seq))
    }
}

/// Applies a [`FaultPlan`] to a time-ordered packet stream.
///
/// Sits between [`crate::mux::TrafficMux`] and the consumers: call
/// [`FaultInjector::apply`] with each mux packet and a delivery callback,
/// then [`FaultInjector::flush`] at end of stream to release any packets
/// still held for reordering.
pub struct FaultInjector {
    plan: FaultPlan,
    /// Per-source offered-packet counters: how many packets of each
    /// source have reached the decision point, feeding
    /// [`packet_decision_seed`].
    counters: HashMap<u32, u64>,
    held: BinaryHeap<Reverse<Held>>,
    seq: u64,
    /// Phase offset of the outage schedule, derived from the seed.
    outage_phase: u64,
    stats: InjectorStats,
    /// Trace handle for journey-fate instants; noop unless attached via
    /// [`FaultInjector::set_tracer`]. Observation-only: the tracer draws
    /// nothing from the decision RNGs and no verdict depends on it.
    tracer: ah_trace::Tracer,
}

impl FaultInjector {
    /// An injector executing `plan`, deterministically from its seed.
    pub fn new(plan: FaultPlan) -> FaultInjector {
        let outage_phase = if plan.outage_period.0 > 0 {
            hash64(plan.seed ^ 0x6f75_7461_6765) % plan.outage_period.0
        } else {
            0
        };
        FaultInjector {
            plan,
            counters: HashMap::new(),
            held: BinaryHeap::new(),
            seq: 0,
            outage_phase,
            stats: InjectorStats::default(),
            tracer: ah_trace::Tracer::noop(),
        }
    }

    /// Attach a tracer: sampled packet journeys (`Tracer::journey_id`)
    /// get an `ah_simnet_faults_*` instant whenever a fault verdict
    /// alters their fate (drop, outage, duplicate, reorder, discard).
    /// Observation-only — verdicts and delivery order are unchanged.
    pub fn set_tracer(&mut self, tracer: &ah_trace::Tracer) {
        self.tracer = tracer.clone();
    }

    /// The plan in force.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Counters so far.
    pub fn stats(&self) -> InjectorStats {
        self.stats
    }

    /// Packets currently held for reordering.
    pub fn pending(&self) -> u64 {
        self.held.len() as u64
    }

    fn in_outage(&self, ts: Ts) -> bool {
        let period = self.plan.outage_period.0;
        if period == 0 || self.plan.outage_len.0 == 0 {
            return false;
        }
        (ts.0 + period - self.outage_phase) % period < self.plan.outage_len.0
    }

    fn deliver(&mut self, pkt: &PacketMeta, emit: &mut impl FnMut(&PacketMeta)) {
        self.stats.delivered += 1;
        emit(pkt);
    }

    /// Release packets whose delivery point has been reached.
    fn release_until(&mut self, now: Ts, emit: &mut impl FnMut(&PacketMeta)) {
        while let Some(Reverse(top)) = self.held.peek() {
            if top.release > now {
                break;
            }
            let Some(Reverse(h)) = self.held.pop() else { break };
            self.deliver(&h.pkt, emit);
        }
    }

    /// Apply byte-level mutations; returns the packet to deliver, or
    /// `None` when the mutated bytes no longer parse. `rng` is the
    /// packet's own decision stream.
    fn mutate(&mut self, rng: &mut Rng64, pkt: &PacketMeta, journey: u64) -> Option<PacketMeta> {
        if rng.chance(self.plan.truncate) {
            let bytes = pkt.to_bytes();
            let cut = rng.range(1, bytes.len().max(2) as u64) as usize;
            match PacketMeta::parse_ip(&bytes[..cut], pkt.ts) {
                Ok(p) => return Some(p),
                Err(_) => {
                    self.stats.truncated_discarded += 1;
                    if journey != 0 {
                        self.tracer.journey_instant("ah_simnet_faults_discard", journey);
                    }
                    return None;
                }
            }
        }
        if rng.chance(self.plan.bitflip) {
            let mut bytes = pkt.to_bytes();
            let bit = rng.below((bytes.len() as u64) * 8);
            bytes[(bit / 8) as usize] ^= 1 << (bit % 8);
            match PacketMeta::parse_ip(&bytes, pkt.ts) {
                Ok(p) => {
                    self.stats.corrupted_delivered += 1;
                    return Some(p);
                }
                Err(_) => {
                    self.stats.corrupt_discarded += 1;
                    if journey != 0 {
                        self.tracer.journey_instant("ah_simnet_faults_discard", journey);
                    }
                    return None;
                }
            }
        }
        if rng.chance(self.plan.zero_payload) {
            let header_only: u16 = match pkt.transport {
                Transport::Tcp { .. } => 40,
                Transport::Udp { .. } | Transport::Icmp { .. } => 28,
                Transport::Other { .. } => 20,
            };
            if pkt.wire_len > header_only {
                self.stats.zero_payload += 1;
                let mut p = *pkt;
                p.wire_len = header_only;
                return Some(p);
            }
        }
        Some(*pkt)
    }

    /// Offer one mux packet; `emit` receives everything delivered at this
    /// point in the stream (held packets whose time has come, then this
    /// packet's surviving copies).
    ///
    /// Every random decision for this packet — drop, duplicate, the
    /// per-copy mutations, reorder and skew — is drawn, in a fixed
    /// order, from a fresh [`Rng64`] seeded by [`packet_decision_seed`]
    /// from `(plan.seed, pkt.src, per-source counter)`. The fate of a
    /// packet is therefore independent of what other sources did,
    /// which is the property the sharded engine relies on.
    pub fn apply(&mut self, pkt: &PacketMeta, emit: &mut impl FnMut(&PacketMeta)) {
        self.stats.input += 1;
        self.release_until(pkt.ts, emit);
        // Journey tag for trace instants only: a pure hash of the source
        // (no RNG draws), zero when tracing is off or unsampled.
        let journey = self.tracer.journey_id(pkt.src.to_u32());
        if self.in_outage(pkt.ts) {
            self.stats.outage_dropped += 1;
            if journey != 0 {
                self.tracer.journey_instant("ah_simnet_faults_outage", journey);
            }
            return;
        }
        // The per-source decision counters are the injector's own
        // state; the `emit` delivery path re-tags downstream. Manual
        // tag swap on the per-packet path (see `ah_mem::tag_swap`).
        let n = {
            let prev = ah_mem::tag_swap(Tag::Mux);
            let n = self.counters.entry(pkt.src.to_u32()).or_insert(0);
            ah_mem::tag_restore(prev);
            n
        };
        let draw = *n;
        *n += 1;
        let mut rng = Rng64::new(packet_decision_seed(self.plan.seed, pkt.src.to_u32(), draw));
        if rng.chance(self.plan.drop) {
            self.stats.dropped += 1;
            if journey != 0 {
                self.tracer.journey_instant("ah_simnet_faults_drop", journey);
            }
            return;
        }
        let mut copies = 1;
        if rng.chance(self.plan.duplicate) {
            self.stats.duplicated += 1;
            if journey != 0 {
                self.tracer.journey_instant("ah_simnet_faults_duplicate", journey);
            }
            copies = 2;
        }
        for _ in 0..copies {
            let Some(out) = self.mutate(&mut rng, pkt, journey) else { continue };
            if self.plan.max_skew.0 > 0 && rng.chance(self.plan.reorder) {
                self.stats.reordered += 1;
                if journey != 0 {
                    self.tracer.journey_instant("ah_simnet_faults_reorder", journey);
                }
                let skew = Dur(rng.range(1, self.plan.max_skew.0 + 1));
                self.seq += 1;
                // The reorder buffer belongs to the injector, not to
                // whatever stage the delivery callback runs next.
                let prev = ah_mem::tag_swap(Tag::Mux);
                self.held.push(Reverse(Held { release: pkt.ts + skew, seq: self.seq, pkt: out }));
                ah_mem::tag_restore(prev);
            } else {
                self.deliver(&out, emit);
            }
        }
    }

    /// End of stream: deliver every packet still held for reordering.
    pub fn flush(&mut self, emit: &mut impl FnMut(&PacketMeta)) {
        while let Some(Reverse(h)) = self.held.pop() {
            self.deliver(&h.pkt, emit);
        }
    }
}

// --- Storage faults ----------------------------------------------------

/// What kind of at-rest damage to inflict on a durable store.
///
/// These model the failure modes a write-ahead log must survive: a
/// power cut mid-write (torn final frame), a filesystem that lost a
/// chunk of the tail, silent media corruption (bit rot), and a lost
/// sidecar index. The plan operates on raw files — it knows nothing
/// about frame formats, so it composes with any log layout (the chaos
/// suite points it at `ah-wal` directories).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StorageFaultKind {
    /// Cut 1–15 bytes off the newest data file: less than a frame
    /// header, so the file is guaranteed to end mid-frame.
    TornFinalWrite,
    /// Cut the newest data file back to a seeded point anywhere past its
    /// file header — typically destroying many trailing frames.
    TruncatedTail,
    /// Flip one seeded bit in the body of a seeded data file.
    BitFlipMidSegment,
    /// Delete the sidecar index file.
    MissingIndex,
}

/// A seeded at-rest storage fault. Same seed + same files = same damage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StorageFaultPlan {
    /// The damage to inflict.
    pub kind: StorageFaultKind,
    /// Determinism seed for target/offset selection.
    pub seed: u64,
}

/// What [`StorageFaultPlan::apply`] actually did, for assertions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StorageFaultReport {
    /// The file that was damaged (or deleted).
    pub path: PathBuf,
    /// File size before the damage.
    pub len_before: u64,
    /// Bytes removed from the tail (truncation kinds).
    pub bytes_removed: u64,
    /// Absolute bit index flipped, when the kind flips a bit.
    pub bit_flipped: Option<u64>,
}

/// Size of the fixed per-file header the truncation/bit-flip faults
/// always leave intact, so damage lands in frame data rather than
/// degenerating into "file unreadable" (which recovery also survives,
/// but which would make the chaos assertions vacuous).
const STORAGE_FILE_HEADER: u64 = 24;

impl StorageFaultPlan {
    /// Build a plan.
    pub fn new(kind: StorageFaultKind, seed: u64) -> StorageFaultPlan {
        StorageFaultPlan { kind, seed }
    }

    /// Inflict the damage. `data_files` must be the store's data files
    /// in order (oldest first); `index_file` is the sidecar index. Fails
    /// with [`io::ErrorKind::InvalidInput`] when there is nothing
    /// suitable to damage.
    pub fn apply(
        &self,
        data_files: &[PathBuf],
        index_file: &Path,
    ) -> io::Result<StorageFaultReport> {
        let mut rng = Rng64::new(self.seed ^ 0x5706_4a6c_5746_414c);
        let no_target =
            || io::Error::new(io::ErrorKind::InvalidInput, "no file suitable for this fault");
        match self.kind {
            StorageFaultKind::TornFinalWrite => {
                let path = data_files.last().ok_or_else(no_target)?;
                let len = fs::metadata(path)?.len();
                if len <= STORAGE_FILE_HEADER + 16 {
                    return Err(no_target());
                }
                let cut = 1 + rng.below(15);
                let f = fs::OpenOptions::new().write(true).open(path)?;
                f.set_len(len - cut)?;
                f.sync_data()?;
                Ok(StorageFaultReport {
                    path: path.clone(),
                    len_before: len,
                    bytes_removed: cut,
                    bit_flipped: None,
                })
            }
            StorageFaultKind::TruncatedTail => {
                let path = data_files.last().ok_or_else(no_target)?;
                let len = fs::metadata(path)?.len();
                if len <= STORAGE_FILE_HEADER + 1 {
                    return Err(no_target());
                }
                let keep = STORAGE_FILE_HEADER + rng.below(len - STORAGE_FILE_HEADER);
                let f = fs::OpenOptions::new().write(true).open(path)?;
                f.set_len(keep)?;
                f.sync_data()?;
                Ok(StorageFaultReport {
                    path: path.clone(),
                    len_before: len,
                    bytes_removed: len - keep,
                    bit_flipped: None,
                })
            }
            StorageFaultKind::BitFlipMidSegment => {
                if data_files.is_empty() {
                    return Err(no_target());
                }
                let path = &data_files[rng.below(data_files.len() as u64) as usize];
                let mut raw = fs::read(path)?;
                if raw.len() as u64 <= STORAGE_FILE_HEADER + 1 {
                    return Err(no_target());
                }
                let body_bits = (raw.len() as u64 - STORAGE_FILE_HEADER) * 8;
                let bit = STORAGE_FILE_HEADER * 8 + rng.below(body_bits);
                raw[(bit / 8) as usize] ^= 1 << (bit % 8);
                let len = raw.len() as u64;
                fs::write(path, &raw)?;
                Ok(StorageFaultReport {
                    path: path.clone(),
                    len_before: len,
                    bytes_removed: 0,
                    bit_flipped: Some(bit),
                })
            }
            StorageFaultKind::MissingIndex => {
                let len = fs::metadata(index_file).map(|m| m.len()).map_err(|_| no_target())?;
                fs::remove_file(index_file)?;
                Ok(StorageFaultReport {
                    path: index_file.to_path_buf(),
                    len_before: len,
                    bytes_removed: len,
                    bit_flipped: None,
                })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ah_net::ipv4::Ipv4Addr4;

    const S: Ipv4Addr4 = Ipv4Addr4::new(100, 64, 0, 1);
    const D: Ipv4Addr4 = Ipv4Addr4::new(20, 0, 0, 7);

    fn stream(n: u64) -> Vec<PacketMeta> {
        (0..n).map(|i| PacketMeta::udp_probe(Ts::from_millis(i * 100), S, D, 40_000, 53)).collect()
    }

    fn run(plan: FaultPlan, pkts: &[PacketMeta]) -> (Vec<PacketMeta>, InjectorStats) {
        let mut inj = FaultInjector::new(plan);
        let mut out = Vec::new();
        let mut emit = |p: &PacketMeta| out.push(*p);
        for p in pkts {
            inj.apply(p, &mut emit);
        }
        inj.flush(&mut emit);
        assert_eq!(inj.pending(), 0);
        (out, inj.stats())
    }

    #[test]
    fn clean_plan_is_identity() {
        let pkts = stream(500);
        let (out, stats) = run(FaultPlan::clean(), &pkts);
        assert_eq!(out, pkts);
        assert_eq!(stats.input, 500);
        assert_eq!(stats.delivered, 500);
        assert_eq!(stats.total_discarded(), 0);
        assert!(stats.conserves());
        assert!(FaultPlan::clean().is_clean());
        assert!(!FaultPlan::uniform(0.01, 1).is_clean());
    }

    #[test]
    fn drops_are_counted_and_conserved() {
        let plan = FaultPlan { drop: 0.2, ..FaultPlan::clean() };
        let (out, stats) = run(FaultPlan { seed: 3, ..plan }, &stream(2000));
        assert!(stats.dropped > 200, "dropped {}", stats.dropped);
        assert_eq!(out.len() as u64, stats.delivered);
        assert!(stats.conserves());
    }

    #[test]
    fn duplicates_add_copies() {
        let plan = FaultPlan { duplicate: 0.5, seed: 4, ..FaultPlan::clean() };
        let (out, stats) = run(plan, &stream(1000));
        assert!(stats.duplicated > 300);
        assert_eq!(out.len() as u64, 1000 + stats.duplicated);
        assert!(stats.conserves());
    }

    #[test]
    fn reorder_preserves_packets_within_bound() {
        let plan = FaultPlan {
            reorder: 0.3,
            max_skew: Dur::from_millis(500),
            seed: 5,
            ..FaultPlan::clean()
        };
        let pkts = stream(2000);
        let (out, stats) = run(plan, &pkts);
        assert!(stats.reordered > 300);
        assert_eq!(out.len(), pkts.len(), "reorder must not lose packets");
        // Same multiset of timestamps.
        let mut a: Vec<u64> = out.iter().map(|p| p.ts.0).collect();
        let mut b: Vec<u64> = pkts.iter().map(|p| p.ts.0).collect();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
        // Out-of-orderness is bounded by max_skew.
        let mut max_seen = Ts::ZERO;
        for p in &out {
            assert!(max_seen.since(p.ts) <= Dur::from_millis(500), "skew bound violated");
            max_seen = max_seen.max(p.ts);
        }
        assert!(stats.conserves());
    }

    #[test]
    fn truncation_discards_are_counted() {
        let plan = FaultPlan { truncate: 0.5, seed: 6, ..FaultPlan::clean() };
        let (out, stats) = run(plan, &stream(1000));
        assert!(stats.truncated_discarded > 100);
        assert_eq!(out.len() as u64, stats.delivered);
        assert!(stats.conserves());
    }

    #[test]
    fn bitflips_split_into_discarded_and_corrupted() {
        let plan = FaultPlan { bitflip: 1.0, seed: 7, ..FaultPlan::clean() };
        let (out, stats) = run(plan, &stream(1000));
        // IP-header flips fail the checksum; payload/L4 flips survive.
        assert!(stats.corrupt_discarded > 100, "discarded {}", stats.corrupt_discarded);
        assert!(stats.corrupted_delivered > 100, "delivered {}", stats.corrupted_delivered);
        assert_eq!(stats.corrupt_discarded + stats.corrupted_delivered, 1000);
        assert_eq!(out.len() as u64, stats.delivered);
        assert!(stats.conserves());
    }

    #[test]
    fn zero_payload_shrinks_but_delivers() {
        let plan = FaultPlan { zero_payload: 1.0, seed: 8, ..FaultPlan::clean() };
        let pkts = stream(100); // UDP probes are 48 bytes: 20 over bare header
        let (out, stats) = run(plan, &pkts);
        assert_eq!(stats.zero_payload, 100);
        assert_eq!(out.len(), 100);
        assert!(out.iter().all(|p| p.wire_len == 28));
        assert!(stats.conserves());
    }

    #[test]
    fn outage_windows_drop_bursts() {
        let plan = FaultPlan::clean().with_outage(Dur::from_secs(10), Dur::from_secs(1));
        let pkts = stream(2000); // 200 seconds at 10 pps
        let (out, stats) = run(plan, &pkts);
        assert!(stats.outage_dropped > 100, "outage_dropped {}", stats.outage_dropped);
        assert!(stats.outage_dropped < 400, "outage_dropped {}", stats.outage_dropped);
        assert_eq!(out.len() as u64, stats.delivered);
        assert!(stats.conserves());
    }

    #[test]
    fn injection_is_deterministic() {
        let plan = FaultPlan::uniform(0.05, 42);
        let pkts = stream(1500);
        let (out_a, stats_a) = run(plan, &pkts);
        let (out_b, stats_b) = run(plan, &pkts);
        assert_eq!(out_a, out_b);
        assert_eq!(stats_a, stats_b);
        let (_, stats_c) = run(FaultPlan::uniform(0.05, 43), &pkts);
        assert_ne!(stats_a, stats_c, "different seeds must differ");
    }

    #[test]
    fn uniform_plan_conserves_at_all_rates() {
        for rate in [0.001, 0.01, 0.05, 0.25] {
            let (_, stats) = run(FaultPlan::uniform(rate, 9), &stream(2000));
            assert!(stats.conserves(), "rate {rate}: {stats:?}");
            assert_eq!(stats.input, 2000);
        }
    }

    fn storage_fixture(tag: &str) -> (PathBuf, Vec<PathBuf>, PathBuf) {
        let dir =
            std::env::temp_dir().join(format!("ah-simnet-storage-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        let mut files = Vec::new();
        for i in 0..3u8 {
            let p = dir.join(format!("{i:02}.dat"));
            fs::write(&p, vec![i; 400]).unwrap();
            files.push(p);
        }
        let idx = dir.join("store.idx");
        fs::write(&idx, [9u8; 64]).unwrap();
        (dir, files, idx)
    }

    #[test]
    fn storage_faults_are_deterministic_and_bounded() {
        for kind in [
            StorageFaultKind::TornFinalWrite,
            StorageFaultKind::TruncatedTail,
            StorageFaultKind::BitFlipMidSegment,
            StorageFaultKind::MissingIndex,
        ] {
            let (dir_a, files_a, idx_a) = storage_fixture("a");
            let (dir_b, files_b, idx_b) = storage_fixture("b");
            let plan = StorageFaultPlan::new(kind, 77);
            let ra = plan.apply(&files_a, &idx_a).unwrap();
            let rb = plan.apply(&files_b, &idx_b).unwrap();
            assert_eq!(ra.bytes_removed, rb.bytes_removed, "{kind:?}");
            assert_eq!(ra.bit_flipped, rb.bit_flipped, "{kind:?}");
            match kind {
                StorageFaultKind::TornFinalWrite => {
                    assert!((1..=15).contains(&ra.bytes_removed));
                    assert_eq!(ra.path, files_a[2]);
                }
                StorageFaultKind::TruncatedTail => {
                    assert!(ra.bytes_removed >= 1);
                    assert!(fs::metadata(&ra.path).unwrap().len() >= STORAGE_FILE_HEADER);
                }
                StorageFaultKind::BitFlipMidSegment => {
                    assert_eq!(ra.bytes_removed, 0);
                    let bit = ra.bit_flipped.unwrap();
                    assert!(bit >= STORAGE_FILE_HEADER * 8);
                }
                StorageFaultKind::MissingIndex => {
                    assert!(!idx_a.exists());
                }
            }
            let _ = fs::remove_dir_all(&dir_a);
            let _ = fs::remove_dir_all(&dir_b);
        }
    }
}
