//! IP → AS/organization/country attribution.

use ah_net::ipv4::Ipv4Addr4;
use ah_net::prefix::{Prefix, PrefixMap};
use std::fmt;

/// Coarse AS categories, following the paper's Table 5 labels.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum AsType {
    /// Public cloud providers.
    Cloud,
    /// Access and transit networks.
    Isp,
    /// Dedicated/colocation hosting.
    Hosting,
    /// Universities and research networks.
    Education,
    /// Everything else with its own AS.
    Enterprise,
}

impl AsType {
    /// Label as printed in Table 5 ("Cloud", "ISP", "Host.", ...).
    pub fn label(self) -> &'static str {
        match self {
            AsType::Cloud => "Cloud",
            AsType::Isp => "ISP",
            AsType::Hosting => "Host.",
            AsType::Education => "Edu.",
            AsType::Enterprise => "Ent.",
        }
    }
}

/// ISO-3166-alpha-2-style country code.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CountryCode(pub [u8; 2]);

impl CountryCode {
    /// Wrap a two-letter code.
    pub const fn new(code: &[u8; 2]) -> CountryCode {
        CountryCode(*code)
    }

    /// The code as a string ("??" if not valid UTF-8).
    pub fn as_str(&self) -> &str {
        std::str::from_utf8(&self.0).unwrap_or("??")
    }
}

impl fmt::Display for CountryCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.as_str())
    }
}

/// Metadata for one autonomous system.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AsInfo {
    /// Autonomous-system number.
    pub asn: u32,
    /// Organization name, as registries print it.
    pub org: String,
    /// Coarse category (Table 5 labels).
    pub as_type: AsType,
    /// Registration country.
    pub country: CountryCode,
}

/// A registry mapping announced prefixes to AS metadata.
#[derive(Debug, Clone, Default)]
pub struct AsnDb {
    map: PrefixMap<AsInfo>,
}

impl AsnDb {
    /// An empty registry.
    pub fn new() -> AsnDb {
        AsnDb::default()
    }

    /// Register one announced prefix. Later registrations of the exact
    /// same prefix replace earlier ones.
    pub fn announce(&mut self, prefix: Prefix, info: AsInfo) {
        self.map.insert(prefix, info);
    }

    /// Longest-prefix attribution for an address.
    pub fn lookup(&self, addr: Ipv4Addr4) -> Option<&AsInfo> {
        self.map.lookup(addr)
    }

    /// Number of announced prefixes.
    pub fn prefix_count(&self) -> usize {
        self.map.len()
    }

    /// Iterate all announcements.
    pub fn iter(&self) -> impl Iterator<Item = (Prefix, &AsInfo)> {
        self.map.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn info(asn: u32, org: &str, t: AsType, cc: &[u8; 2]) -> AsInfo {
        AsInfo { asn, org: org.to_string(), as_type: t, country: CountryCode::new(cc) }
    }

    #[test]
    fn lookup_longest_prefix() {
        let mut db = AsnDb::new();
        db.announce("100.0.0.0/8".parse().unwrap(), info(1, "BigCloud", AsType::Cloud, b"US"));
        db.announce("100.1.0.0/16".parse().unwrap(), info(2, "SubISP", AsType::Isp, b"CN"));
        let a = db.lookup(Ipv4Addr4::new(100, 1, 2, 3)).unwrap();
        assert_eq!(a.asn, 2);
        assert_eq!(a.country.as_str(), "CN");
        let b = db.lookup(Ipv4Addr4::new(100, 200, 0, 1)).unwrap();
        assert_eq!(b.asn, 1);
        assert!(db.lookup(Ipv4Addr4::new(99, 0, 0, 1)).is_none());
        assert_eq!(db.prefix_count(), 2);
    }

    #[test]
    fn as_type_labels() {
        assert_eq!(AsType::Cloud.label(), "Cloud");
        assert_eq!(AsType::Hosting.label(), "Host.");
        assert_eq!(AsType::Isp.label(), "ISP");
    }

    #[test]
    fn country_display() {
        assert_eq!(CountryCode::new(b"TW").to_string(), "TW");
        assert_eq!(CountryCode([0xff, 0xff]).as_str(), "??");
    }

    #[test]
    fn iter_returns_all() {
        let mut db = AsnDb::new();
        db.announce("10.0.0.0/8".parse().unwrap(), info(1, "A", AsType::Isp, b"US"));
        db.announce("20.0.0.0/8".parse().unwrap(), info(2, "B", AsType::Cloud, b"DE"));
        assert_eq!(db.iter().count(), 2);
    }
}
