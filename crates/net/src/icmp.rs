//! ICMPv4 message parsing and building.
//!
//! The telescope only treats Echo Requests as scanning packets, but the
//! parser understands the common message shapes (echo, unreachable, time
//! exceeded) so that backscatter and misconfiguration noise can be
//! represented faithfully.

use crate::checksum;
use crate::error::{NetError, Result};

/// ICMP header length in bytes (type, code, checksum, rest-of-header).
pub const HEADER_LEN: usize = 8;

/// ICMP type number: echo reply.
pub const TYPE_ECHO_REPLY: u8 = 0;
/// ICMP type number: destination unreachable.
pub const TYPE_DEST_UNREACHABLE: u8 = 3;
/// ICMP type number: echo request.
pub const TYPE_ECHO_REQUEST: u8 = 8;
/// ICMP type number: time exceeded.
pub const TYPE_TIME_EXCEEDED: u8 = 11;

/// An owned ICMP message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IcmpMessage {
    /// Message type number.
    pub icmp_type: u8,
    /// Type-specific code.
    pub code: u8,
    /// For echo messages: identifier (first half of rest-of-header).
    pub ident: u16,
    /// For echo messages: sequence number (second half of rest-of-header).
    pub seq: u16,
    /// Payload after the 8-byte header.
    pub payload: Vec<u8>,
}

impl IcmpMessage {
    /// An Echo Request as a ping scanner would send it.
    pub fn echo_request(ident: u16, seq: u16) -> Self {
        IcmpMessage { icmp_type: TYPE_ECHO_REQUEST, code: 0, ident, seq, payload: Vec::new() }
    }

    /// True if this is an Echo Request — the only ICMP type the telescope
    /// counts as scanning.
    pub fn is_echo_request(&self) -> bool {
        self.icmp_type == TYPE_ECHO_REQUEST
    }

    /// Parse an ICMP message, verifying its checksum.
    pub fn parse(data: &[u8]) -> Result<IcmpMessage> {
        if data.len() < HEADER_LEN {
            return Err(NetError::Truncated { layer: "icmp", needed: HEADER_LEN, got: data.len() });
        }
        if !checksum::verify(data) {
            return Err(NetError::BadChecksum { layer: "icmp" });
        }
        Ok(IcmpMessage {
            icmp_type: data[0],
            code: data[1],
            ident: u16::from_be_bytes([data[4], data[5]]),
            seq: u16::from_be_bytes([data[6], data[7]]),
            payload: data[HEADER_LEN..].to_vec(),
        })
    }

    /// Serialize into `out` with a correct checksum.
    pub fn emit(&self, out: &mut Vec<u8>) {
        let start = out.len();
        out.push(self.icmp_type);
        out.push(self.code);
        out.extend_from_slice(&[0, 0]);
        out.extend_from_slice(&self.ident.to_be_bytes());
        out.extend_from_slice(&self.seq.to_be_bytes());
        out.extend_from_slice(&self.payload);
        let csum = checksum::checksum(&out[start..]);
        out[start + 2..start + 4].copy_from_slice(&csum.to_be_bytes());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_echo() {
        let mut m = IcmpMessage::echo_request(0xbeef, 42);
        m.payload = b"abcdefgh".to_vec();
        let mut buf = Vec::new();
        m.emit(&mut buf);
        let parsed = IcmpMessage::parse(&buf).unwrap();
        assert_eq!(parsed, m);
        assert!(parsed.is_echo_request());
    }

    #[test]
    fn echo_reply_is_not_scanning() {
        let m = IcmpMessage { icmp_type: TYPE_ECHO_REPLY, ..IcmpMessage::echo_request(1, 1) };
        assert!(!m.is_echo_request());
    }

    #[test]
    fn corrupted_checksum_rejected() {
        let m = IcmpMessage::echo_request(7, 7);
        let mut buf = Vec::new();
        m.emit(&mut buf);
        buf[0] = TYPE_ECHO_REPLY; // change type without fixing checksum
        assert_eq!(IcmpMessage::parse(&buf), Err(NetError::BadChecksum { layer: "icmp" }));
    }

    #[test]
    fn truncated_rejected() {
        assert!(IcmpMessage::parse(&[8, 0, 0]).is_err());
    }
}
