//! Behavioral traffic actors.
//!
//! Each actor reproduces the *wire-visible invariants* of one real-world
//! traffic class — the properties the paper's pipeline keys on
//! (fingerprints, address dispersion, rates, port profiles) — while
//! drawing targets from the [`ObservableSpace`] (see [`crate::space`] for
//! the rate-thinning argument).
//!
//! | Actor | Real-world counterpart | Invariants reproduced |
//! |---|---|---|
//! | [`SweepScanner`] | ZMap / Masscan / custom horizontal scans, incl. acknowledged research sweeps | permutation target order, IP-ID fingerprints, coverage fraction, per-target retries |
//! | [`MiraiBot`] | IoT botnet propagation | seq = dst IP, 23/2323 port mix, low rate, churn via lifetime |
//! | [`PortSweeper`] | vertical scanners (definition-3 hitters) | thousands of distinct ports/day on few targets |
//! | [`Backscatter`] | DoS victims answering spoofed SYNs | SYN-ACK/RST to random addresses — must NOT count as scanning |
//! | [`Radiation`] | misconfigurations and the "small scan" long tail | many sources, few packets each, 445-heavy port mix |
//! | [`Benign`] | user traffic incl. content caching | diurnal + weekend rate shape, cache-served traffic bypassing the ISP border |

use crate::mux::Actor;
use crate::permute::Permutation;
use crate::rng::{hash64, Rng64};
use crate::space::ObservableSpace;
use ah_net::fingerprint::{masscan_ip_id, ZMAP_IP_ID};
use ah_net::ipv4::Ipv4Addr4;
use ah_net::packet::{PacketMeta, Transport};
use ah_net::prefix::Prefix;
use ah_net::tcp::TcpFlags;
use ah_net::time::{Dur, Ts};
use std::sync::Arc;

/// The timestamp [`Actor::emit`] was scheduled for. The mux only calls
/// `emit` on the actor whose [`Actor::peek`] just returned `Some`, so
/// the contract violation is unreachable from the public API; keeping
/// the check in one audited place removes a panic path from every
/// actor.
fn due(next: Option<Ts>) -> Ts {
    // ah-lint: allow(panic-path, reason = "Actor contract: emit() is only called while peek() returns Some; TrafficMux upholds this and it is the only caller")
    next.expect("emit called while peek() is None")
}

/// Scanning tool whose fingerprint a sweep stamps on its probes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ToolKind {
    /// ZMap (IP id 54321, fixed initial window).
    ZMap,
    /// Masscan (IP id derived from dst/port, distinctive seq).
    Masscan,
    /// No distinctive fingerprint ("Other" in Figure 4).
    Plain,
}

/// Transport used for a probed port.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScanProto {
    /// TCP SYN probing.
    Tcp,
    /// UDP datagram probing.
    Udp,
    /// ICMP echo; the port field is ignored.
    Icmp,
}

/// One probed service.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PortSpec {
    /// Destination port (ignored for ICMP).
    pub port: u16,
    /// Transport the probe uses.
    pub proto: ScanProto,
}

impl PortSpec {
    /// A TCP port.
    pub const fn tcp(port: u16) -> PortSpec {
        PortSpec { port, proto: ScanProto::Tcp }
    }

    /// A UDP port.
    pub const fn udp(port: u16) -> PortSpec {
        PortSpec { port, proto: ScanProto::Udp }
    }

    /// ICMP echo probing (portless).
    pub const fn icmp() -> PortSpec {
        PortSpec { port: 0, proto: ScanProto::Icmp }
    }
}

fn exp_gap(rng: &mut Rng64, rate_pps: f64) -> Dur {
    let gap_s = rng.exp(1.0 / rate_pps.max(1e-9));
    Dur::from_micros(((gap_s * 1e6) as u64).max(1))
}

fn ephemeral_port(rng: &mut Rng64) -> u16 {
    rng.range(32768, 61000) as u16
}

/// A horizontal sweep scanner: covers a fraction of the observable space
/// in a keyed-permutation order, optionally repeating (daily research
/// sweeps), optionally retrying each target several times (bruteforce-
/// flavored scanning).
pub struct SweepScanner {
    src: Ipv4Addr4,
    tool: ToolKind,
    ports: Vec<PortSpec>,
    rate_pps: f64,
    targets_per_sweep: u64,
    probes_per_target: u32,
    repeat_every: Option<Dur>,
    end: Ts,
    space: Arc<ObservableSpace>,
    // state
    sweep_no: u64,
    pos: u64,
    probe_no: u32,
    perm: Permutation,
    next: Option<Ts>,
    src_port: u16,
    rng: Rng64,
    seed: u64,
}

/// Configuration for [`SweepScanner`].
pub struct SweepConfig {
    /// Source address probes are sent from.
    pub src: Ipv4Addr4,
    /// Tool fingerprint stamped on the probes.
    pub tool: ToolKind,
    /// Ports rotated across sweeps (sweep *n* probes `ports[n % len]`).
    pub ports: Vec<PortSpec>,
    /// Observable-space packet rate (see [`ObservableSpace::thin_rate`]).
    pub rate_pps: f64,
    /// Fraction of the observable space covered per sweep, in (0, 1].
    pub coverage: f64,
    /// SYNs sent to each target (>1 looks like credential probing).
    pub probes_per_target: u32,
    /// First probe time.
    pub start: Ts,
    /// Re-sweep interval (`None` = a single sweep).
    pub repeat_every: Option<Dur>,
    /// Hard stop; no packets at or after this time.
    pub end: Ts,
    /// Seed for the permutation and timing jitter.
    pub seed: u64,
}

impl SweepScanner {
    /// A scanner from its config, probing targets drawn from `space`.
    pub fn new(cfg: SweepConfig, space: Arc<ObservableSpace>) -> SweepScanner {
        assert!(cfg.coverage > 0.0 && cfg.coverage <= 1.0);
        assert!(!cfg.ports.is_empty());
        assert!(cfg.probes_per_target >= 1);
        let mut rng = Rng64::new(cfg.seed);
        let targets = ((space.len() as f64 * cfg.coverage) as u64).clamp(1, space.len());
        let perm = Permutation::new(space.len(), hash64(cfg.seed));
        let src_port = ephemeral_port(&mut rng);
        SweepScanner {
            src: cfg.src,
            tool: cfg.tool,
            ports: cfg.ports,
            rate_pps: cfg.rate_pps,
            targets_per_sweep: targets,
            probes_per_target: cfg.probes_per_target,
            repeat_every: cfg.repeat_every,
            end: cfg.end,
            space,
            sweep_no: 0,
            pos: 0,
            probe_no: 0,
            perm,
            next: (cfg.start < cfg.end).then_some(cfg.start),
            src_port,
            rng,
            seed: cfg.seed,
        }
    }

    fn current_port(&self) -> PortSpec {
        self.ports[(self.sweep_no % self.ports.len() as u64) as usize]
    }

    fn advance(&mut self, from: Ts) {
        self.probe_no += 1;
        if self.probe_no >= self.probes_per_target {
            self.probe_no = 0;
            self.pos += 1;
        }
        let mut next = from + exp_gap(&mut self.rng, self.rate_pps);
        if self.pos >= self.targets_per_sweep {
            // Sweep complete.
            match self.repeat_every {
                Some(gap) => {
                    self.pos = 0;
                    self.sweep_no += 1;
                    // New permutation key per sweep, like re-running the tool.
                    self.perm =
                        Permutation::new(self.space.len(), hash64(self.seed ^ self.sweep_no));
                    self.src_port = ephemeral_port(&mut self.rng);
                    // Next sweep starts one repeat interval after this
                    // one *started*; if the sweep overran, start soon.
                    let sweep_start = next;
                    next = sweep_start.max(from + gap);
                }
                None => {
                    self.next = None;
                    return;
                }
            }
        }
        self.next = (next < self.end).then_some(next);
    }
}

impl Actor for SweepScanner {
    fn peek(&self) -> Option<Ts> {
        self.next
    }

    fn emit(&mut self) -> PacketMeta {
        let ts = due(self.next);
        let dst = self.space.addr_mod(self.perm.apply(self.pos % self.perm.len()));
        let spec = self.current_port();
        let mut pkt = match spec.proto {
            ScanProto::Tcp => {
                let seq = self.rng.next_u64() as u32;
                let mut p = PacketMeta::tcp_syn(ts, self.src, dst, self.src_port, spec.port);
                if let Transport::Tcp { seq: ref mut s, .. } = p.transport {
                    *s = seq;
                }
                p
            }
            ScanProto::Udp => PacketMeta::udp_probe(ts, self.src, dst, self.src_port, spec.port),
            ScanProto::Icmp => PacketMeta::icmp_echo(ts, self.src, dst),
        };
        pkt.ip_id = match (self.tool, &pkt.transport) {
            (ToolKind::ZMap, _) => ZMAP_IP_ID,
            (ToolKind::Masscan, Transport::Tcp { seq, dst_port, .. }) => {
                masscan_ip_id(dst, *dst_port, *seq)
            }
            _ => (self.rng.next_u64() & 0xffff) as u16,
        };
        pkt.ttl = 48 + (hash64(self.src.to_u32() as u64) % 64) as u8;
        self.advance(ts);
        pkt
    }
}

/// A Mirai-style bot: stateless uniform scanning of 23/2323 with the
/// `seq == dst` fingerprint, at a low per-bot rate, alive for a bounded
/// window (botnet churn comes from populations of bots with staggered
/// lifetimes and rotating source addresses).
pub struct MiraiBot {
    src: Ipv4Addr4,
    rate_pps: f64,
    end: Ts,
    space: Arc<ObservableSpace>,
    next: Option<Ts>,
    rng: Rng64,
}

impl MiraiBot {
    /// A bot probing from `src` at `rate_pps` between `start` and `end`.
    pub fn new(
        src: Ipv4Addr4,
        rate_pps: f64,
        start: Ts,
        end: Ts,
        seed: u64,
        space: Arc<ObservableSpace>,
    ) -> MiraiBot {
        MiraiBot {
            src,
            rate_pps,
            end,
            space,
            next: (start < end).then_some(start),
            rng: Rng64::new(seed),
        }
    }
}

impl Actor for MiraiBot {
    fn peek(&self) -> Option<Ts> {
        self.next
    }

    fn emit(&mut self) -> PacketMeta {
        let ts = due(self.next);
        let dst = self.space.addr_mod(self.rng.below(self.space.len()));
        // Mirai probes 23 with probability 0.9, else 2323.
        let port = if self.rng.chance(0.9) { 23 } else { 2323 };
        let mut pkt = PacketMeta::tcp_syn(ts, self.src, dst, ephemeral_port(&mut self.rng), port);
        if let Transport::Tcp { ref mut seq, .. } = pkt.transport {
            *seq = dst.to_u32(); // the Mirai invariant
        }
        pkt.ip_id = (self.rng.next_u64() & 0xffff) as u16;
        pkt.ttl = 64;
        let next = ts + exp_gap(&mut self.rng, self.rate_pps);
        self.next = (next < self.end).then_some(next);
        pkt
    }
}

/// A vertical port sweeper: walks thousands of destination ports on a
/// small set of targets — the definition-3 population.
pub struct PortSweeper {
    src: Ipv4Addr4,
    targets: Vec<Ipv4Addr4>,
    port_count: u16,
    rate_pps: f64,
    end: Ts,
    next: Option<Ts>,
    pos: u64,
    rng: Rng64,
}

impl PortSweeper {
    /// Sweeps ports `1..=port_count` on `target_count` targets drawn from
    /// the observable space, cycling indefinitely until `end`.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        src: Ipv4Addr4,
        target_count: usize,
        port_count: u16,
        rate_pps: f64,
        start: Ts,
        end: Ts,
        seed: u64,
        space: &ObservableSpace,
    ) -> PortSweeper {
        let mut rng = Rng64::new(seed);
        let targets =
            (0..target_count.max(1)).map(|_| space.addr_mod(rng.below(space.len()))).collect();
        PortSweeper {
            src,
            targets,
            port_count: port_count.max(1),
            rate_pps,
            end,
            next: (start < end).then_some(start),
            pos: 0,
            rng,
        }
    }
}

impl Actor for PortSweeper {
    fn peek(&self) -> Option<Ts> {
        self.next
    }

    fn emit(&mut self) -> PacketMeta {
        let ts = due(self.next);
        // Walk ports in the outer loop so each day covers many ports even
        // at modest rates.
        let port = 1 + (self.pos % u64::from(self.port_count)) as u16;
        let dst = self.targets[((self.pos / u64::from(self.port_count)) as usize
            + (self.pos % self.targets.len() as u64) as usize)
            % self.targets.len()];
        self.pos += 1;
        let mut pkt = PacketMeta::tcp_syn(ts, self.src, dst, ephemeral_port(&mut self.rng), port);
        if let Transport::Tcp { ref mut seq, .. } = pkt.transport {
            *seq = self.rng.next_u64() as u32;
        }
        pkt.ip_id = (self.rng.next_u64() & 0xffff) as u16;
        let next = ts + exp_gap(&mut self.rng, self.rate_pps);
        self.next = (next < self.end).then_some(next);
        pkt
    }
}

/// DoS backscatter: victims of spoofed-source floods answer to random
/// addresses. Emits SYN-ACK and RST packets that the telescope must
/// capture but *not* classify as scanning.
pub struct Backscatter {
    victims: Vec<Ipv4Addr4>,
    rate_pps: f64,
    end: Ts,
    space: Arc<ObservableSpace>,
    next: Option<Ts>,
    rng: Rng64,
}

impl Backscatter {
    /// Backscatter from DoS `victims`, spread across the observable space.
    pub fn new(
        victims: Vec<Ipv4Addr4>,
        rate_pps: f64,
        start: Ts,
        end: Ts,
        seed: u64,
        space: Arc<ObservableSpace>,
    ) -> Backscatter {
        assert!(!victims.is_empty());
        Backscatter {
            victims,
            rate_pps,
            end,
            space,
            next: (start < end).then_some(start),
            rng: Rng64::new(seed),
        }
    }
}

impl Actor for Backscatter {
    fn peek(&self) -> Option<Ts> {
        self.next
    }

    fn emit(&mut self) -> PacketMeta {
        let ts = due(self.next);
        let src = *self.rng.choice(&self.victims);
        let dst = self.space.addr_mod(self.rng.below(self.space.len()));
        let flags = if self.rng.chance(0.7) { TcpFlags::SYN_ACK } else { TcpFlags::RST };
        let mut pkt = PacketMeta::tcp_syn(ts, src, dst, 80, ephemeral_port(&mut self.rng));
        if let Transport::Tcp { flags: ref mut f, ref mut seq, .. } = pkt.transport {
            *f = flags;
            *seq = self.rng.next_u64() as u32;
        }
        pkt.ip_id = (self.rng.next_u64() & 0xffff) as u16;
        let next = ts + exp_gap(&mut self.rng, self.rate_pps);
        self.next = (next < self.end).then_some(next);
        pkt
    }
}

/// The "small scan" long tail: a large pool of sources (misconfigured
/// devices, one-off probes) each sending a handful of packets. Port mix
/// is deliberately 445-heavy — the paper observes TCP/445 to be a
/// small-scan port that aggressive hitters do *not* prefer.
pub struct Radiation {
    pool: Vec<Ipv4Addr4>,
    rate_pps: f64,
    end: Ts,
    space: Arc<ObservableSpace>,
    next: Option<Ts>,
    rng: Rng64,
}

/// (port, weight, proto) rows for radiation's port mix.
const RADIATION_PORTS: &[(u16, f64, ScanProto)] = &[
    (445, 3.0, ScanProto::Tcp),
    (1433, 1.2, ScanProto::Tcp),
    (3389, 1.2, ScanProto::Tcp),
    (8080, 1.0, ScanProto::Tcp),
    (5060, 0.8, ScanProto::Udp),
    (53, 0.8, ScanProto::Udp),
    (123, 0.6, ScanProto::Udp),
    (0, 0.8, ScanProto::Icmp),
    (139, 0.6, ScanProto::Tcp),
    (21, 0.5, ScanProto::Tcp),
];

impl Radiation {
    /// `pool_size` synthetic sources drawn from `source_org_hosts` (a
    /// function index → address, typically an org's `host`).
    pub fn new(
        pool: Vec<Ipv4Addr4>,
        rate_pps: f64,
        start: Ts,
        end: Ts,
        seed: u64,
        space: Arc<ObservableSpace>,
    ) -> Radiation {
        assert!(!pool.is_empty());
        Radiation {
            pool,
            rate_pps,
            end,
            space,
            next: (start < end).then_some(start),
            rng: Rng64::new(seed),
        }
    }
}

impl Actor for Radiation {
    fn peek(&self) -> Option<Ts> {
        self.next
    }

    fn emit(&mut self) -> PacketMeta {
        let ts = due(self.next);
        // Quadratic skew: low indices reappear more often, so some
        // sources form multi-packet events while most send one or two.
        let u = self.rng.f64();
        let idx = ((u * u) * self.pool.len() as f64) as usize;
        let src = self.pool[idx.min(self.pool.len() - 1)];
        let dst = self.space.addr_mod(self.rng.below(self.space.len()));
        let weights: Vec<f64> = RADIATION_PORTS.iter().map(|(_, w, _)| *w).collect();
        let (port, _, proto) = RADIATION_PORTS[self.rng.weighted(&weights)];
        let sp = ephemeral_port(&mut self.rng);
        let mut pkt = match proto {
            ScanProto::Tcp => PacketMeta::tcp_syn(ts, src, dst, sp, port),
            ScanProto::Udp => PacketMeta::udp_probe(ts, src, dst, sp, port),
            ScanProto::Icmp => PacketMeta::icmp_echo(ts, src, dst),
        };
        if let Transport::Tcp { ref mut seq, .. } = pkt.transport {
            *seq = self.rng.next_u64() as u32;
        }
        pkt.ip_id = (self.rng.next_u64() & 0xffff) as u16;
        pkt.ttl = 32 + (self.rng.next_u64() % 96) as u8;
        let next = ts + exp_gap(&mut self.rng, self.rate_pps);
        self.next = (next < self.end).then_some(next);
        pkt
    }
}

/// A spoofed-source probe flood: an attacker (or a grossly misconfigured
/// device) sprays SYNs across the monitored space with *forged* sources —
/// bogons and random addresses. The telescope's source filter must drop
/// the bogon-sourced ones, and no single forged source ever sends enough
/// to qualify as an aggressive hitter (the paper's false-positive
/// robustness argument, §7).
pub struct SpoofFlood {
    rate_pps: f64,
    end: Ts,
    space: Arc<ObservableSpace>,
    next: Option<Ts>,
    rng: Rng64,
}

impl SpoofFlood {
    /// A spoofed-source flood at `rate_pps` between `start` and `end`.
    pub fn new(
        rate_pps: f64,
        start: Ts,
        end: Ts,
        seed: u64,
        space: Arc<ObservableSpace>,
    ) -> SpoofFlood {
        SpoofFlood {
            rate_pps,
            end,
            space,
            next: (start < end).then_some(start),
            rng: Rng64::new(seed),
        }
    }

    fn forged_source(&mut self) -> Ipv4Addr4 {
        match self.rng.below(3) {
            // Multicast / reserved bogons: filterable.
            0 => Ipv4Addr4(0xe000_0000 | (self.rng.next_u64() as u32 & 0x0fff_ffff)),
            1 => Ipv4Addr4(0x7f00_0000 | (self.rng.next_u64() as u32 & 0x00ff_ffff)),
            // Random unicast: unfilterable, but each value recurs ~never.
            _ => Ipv4Addr4(0x5000_0000 | (self.rng.next_u64() as u32 & 0x0fff_ffff)),
        }
    }
}

impl Actor for SpoofFlood {
    fn peek(&self) -> Option<Ts> {
        self.next
    }

    fn emit(&mut self) -> PacketMeta {
        let ts = due(self.next);
        let src = self.forged_source();
        let dst = self.space.addr_mod(self.rng.below(self.space.len()));
        let mut pkt = PacketMeta::tcp_syn(ts, src, dst, ephemeral_port(&mut self.rng), 80);
        if let Transport::Tcp { ref mut seq, .. } = pkt.transport {
            *seq = self.rng.next_u64() as u32;
        }
        pkt.ip_id = (self.rng.next_u64() & 0xffff) as u16;
        let next = ts + exp_gap(&mut self.rng, self.rate_pps);
        self.next = (next < self.end).then_some(next);
        pkt
    }
}

/// Benign user traffic for one ISP, with diurnal and weekend shape and an
/// optional in-network content-cache bypass.
///
/// The actor maintains a rotating set of "flow slots" (user ↔ remote
/// pairs). Each emission picks a slot and a direction; slots are
/// resampled with a small probability so flows have heavy-ish tails.
/// When `caches` is set, a configurable fraction of *download* traffic is
/// served by a cache host instead of the remote — producing internal ↔
/// internal packets that never cross the border routers.
pub struct Benign {
    users: Prefix,
    caches: Option<Prefix>,
    cache_fraction: f64,
    remotes: Vec<Prefix>,
    base_rate_pps: f64,
    /// Multiplier applied on weekend days.
    weekend_factor: f64,
    /// Weekday of day 0 (0 = Monday .. 6 = Sunday).
    day0_weekday: u8,
    end: Ts,
    slots: Vec<BenignSlot>,
    next: Option<Ts>,
    rng: Rng64,
}

#[derive(Clone, Copy)]
struct BenignSlot {
    user: Ipv4Addr4,
    remote: Ipv4Addr4,
    /// Cache host standing in for `remote` (when cache-served).
    cache: Option<Ipv4Addr4>,
    user_port: u16,
    remote_port: u16,
}

impl Benign {
    /// Benign user sessions from `users` to `remotes`, a `cache_fraction`
    /// of which are served from `caches` instead of crossing the border.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        users: Prefix,
        caches: Option<Prefix>,
        cache_fraction: f64,
        remotes: Vec<Prefix>,
        base_rate_pps: f64,
        weekend_factor: f64,
        day0_weekday: u8,
        start: Ts,
        end: Ts,
        seed: u64,
    ) -> Benign {
        assert!(!remotes.is_empty());
        let rng = Rng64::new(seed);
        let mut b = Benign {
            users,
            caches,
            cache_fraction,
            remotes,
            base_rate_pps,
            weekend_factor,
            day0_weekday,
            end,
            slots: Vec::new(),
            next: (start < end).then_some(start),
            rng,
        };
        let n_slots = 256;
        for _ in 0..n_slots {
            let slot = b.sample_slot();
            b.slots.push(slot);
        }
        b
    }

    fn sample_slot(&mut self) -> BenignSlot {
        let user = self.users.addr_mod(self.rng.below(self.users.size()) as u32);
        let remote_prefix = *self.rng.choice(&self.remotes);
        let remote = remote_prefix.addr_mod(self.rng.below(remote_prefix.size()) as u32);
        let cache = match (&self.caches, self.rng.chance(self.cache_fraction)) {
            (Some(c), true) => Some(c.addr_mod(self.rng.below(c.size()) as u32)),
            _ => None,
        };
        BenignSlot {
            user,
            remote,
            cache,
            user_port: ephemeral_port(&mut self.rng),
            remote_port: if self.rng.chance(0.8) { 443 } else { 80 },
        }
    }

    /// Time-varying rate: diurnal sinusoid (trough at 04:00, peak at
    /// 16:00 local) times a weekend dampening factor.
    fn rate_at(&self, ts: Ts) -> f64 {
        let sod = ts.second_of_day() as f64;
        // sin argument hits +τ/4 (peak) at 16:00 and −τ/4 (trough) at 04:00.
        let phase = (sod / 86_400.0 - 5.0 / 12.0) * std::f64::consts::TAU;
        let diurnal = 1.0 + 0.45 * phase.sin();
        let weekday = (u64::from(self.day0_weekday) + ts.day()) % 7;
        let wk = if weekday >= 5 { self.weekend_factor } else { 1.0 };
        self.base_rate_pps * diurnal * wk
    }

    /// True when `day` is a weekend under this actor's calendar.
    pub fn is_weekend(&self, day: u64) -> bool {
        (u64::from(self.day0_weekday) + day) % 7 >= 5
    }
}

impl Actor for Benign {
    fn peek(&self) -> Option<Ts> {
        self.next
    }

    fn emit(&mut self) -> PacketMeta {
        let ts = due(self.next);
        // Occasionally rotate a slot (new flow).
        if self.rng.chance(0.02) {
            let i = self.rng.below(self.slots.len() as u64) as usize;
            self.slots[i] = self.sample_slot();
        }
        let slot = *self.rng.choice(&self.slots);
        let download = self.rng.chance(0.72); // eyeball networks pull
        let remote = slot.cache.unwrap_or(slot.remote);
        let (src, dst, sport, dport, len) = if download {
            (remote, slot.user, slot.remote_port, slot.user_port, 1300u16)
        } else {
            (slot.user, remote, slot.user_port, slot.remote_port, 88u16)
        };
        let mut pkt = PacketMeta {
            ts,
            src,
            dst,
            ip_id: (self.rng.next_u64() & 0xffff) as u16,
            ttl: 57,
            wire_len: len,
            transport: Transport::Tcp {
                src_port: sport,
                dst_port: dport,
                seq: self.rng.next_u64() as u32,
                flags: TcpFlags::ACK, // established-flow traffic, not scans
            },
        };
        if self.rng.chance(0.05) {
            // A sprinkle of pure ACK-less UDP (video/QUIC-ish).
            pkt.transport = Transport::Udp { src_port: sport, dst_port: 443 };
        }
        let rate = self.rate_at(ts);
        let next = ts + exp_gap(&mut self.rng, rate);
        self.next = (next < self.end).then_some(next);
        pkt
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ah_net::fingerprint::{classify, Tool};
    use ah_net::packet::ScanClass;
    use std::collections::HashSet;

    fn space() -> Arc<ObservableSpace> {
        Arc::new(ObservableSpace::new(vec![
            "20.0.0.0/24".parse().unwrap(),
            "10.0.0.0/25".parse().unwrap(),
        ]))
    }

    fn drain(actor: &mut dyn Actor, max: usize) -> Vec<PacketMeta> {
        let mut out = Vec::new();
        while actor.peek().is_some() && out.len() < max {
            out.push(actor.emit());
        }
        out
    }

    const SRC: Ipv4Addr4 = Ipv4Addr4::new(100, 64, 0, 1);

    fn sweep_cfg() -> SweepConfig {
        SweepConfig {
            src: SRC,
            tool: ToolKind::ZMap,
            ports: vec![PortSpec::tcp(6379)],
            rate_pps: 100.0,
            coverage: 1.0,
            probes_per_target: 1,
            start: Ts::from_secs(10),
            repeat_every: None,
            end: Ts::from_days(30),
            seed: 7,
        }
    }

    #[test]
    fn sweep_covers_space_without_duplicates() {
        let sp = space();
        let mut s = SweepScanner::new(sweep_cfg(), sp.clone());
        let pkts = drain(&mut s, 10_000);
        assert_eq!(pkts.len() as u64, sp.len());
        let dsts: HashSet<_> = pkts.iter().map(|p| p.dst).collect();
        assert_eq!(dsts.len() as u64, sp.len(), "full coverage, no duplicates");
        assert!(pkts.iter().all(|p| p.scan_class() == Some(ScanClass::TcpSyn)));
        assert!(pkts.iter().all(|p| p.dst_port() == Some(6379)));
        // Time-ordered.
        assert!(pkts.windows(2).all(|w| w[0].ts <= w[1].ts));
    }

    #[test]
    fn zmap_fingerprint_stamped() {
        let mut s = SweepScanner::new(sweep_cfg(), space());
        let pkts = drain(&mut s, 50);
        assert!(pkts.iter().all(|p| classify(p) == Tool::ZMap));
    }

    #[test]
    fn masscan_fingerprint_stamped() {
        let mut cfg = sweep_cfg();
        cfg.tool = ToolKind::Masscan;
        let mut s = SweepScanner::new(cfg, space());
        let pkts = drain(&mut s, 50);
        assert!(pkts.iter().all(|p| classify(p) == Tool::Masscan));
    }

    #[test]
    fn plain_tool_is_mostly_other() {
        let mut cfg = sweep_cfg();
        cfg.tool = ToolKind::Plain;
        let mut s = SweepScanner::new(cfg, space());
        let pkts = drain(&mut s, 200);
        let other = pkts.iter().filter(|p| classify(p) == Tool::Other).count();
        assert!(other > 195, "{other}/200"); // rare accidental collisions allowed
    }

    #[test]
    fn coverage_fraction_respected() {
        let mut cfg = sweep_cfg();
        cfg.coverage = 0.25;
        let sp = space();
        let mut s = SweepScanner::new(cfg, sp.clone());
        let pkts = drain(&mut s, 10_000);
        assert_eq!(pkts.len() as u64, sp.len() / 4);
    }

    #[test]
    fn probes_per_target_repeats() {
        let mut cfg = sweep_cfg();
        cfg.probes_per_target = 3;
        cfg.coverage = 0.1;
        let sp = space();
        let mut s = SweepScanner::new(cfg, sp.clone());
        let pkts = drain(&mut s, 10_000);
        let expected = (sp.len() as f64 * 0.1) as u64 * 3;
        assert_eq!(pkts.len() as u64, expected);
        // Consecutive triples share a destination.
        assert_eq!(pkts[0].dst, pkts[1].dst);
        assert_eq!(pkts[1].dst, pkts[2].dst);
        assert_ne!(pkts[2].dst, pkts[3].dst);
    }

    #[test]
    fn repeat_sweeps_use_fresh_permutations() {
        let mut cfg = sweep_cfg();
        cfg.coverage = 0.5;
        cfg.repeat_every = Some(Dur::from_mins(1));
        cfg.end = Ts::from_secs(10) + Dur::from_secs(600);
        let sp = space();
        let mut s = SweepScanner::new(cfg, sp.clone());
        let pkts = drain(&mut s, 100_000);
        let per_sweep = (sp.len() / 2) as usize;
        assert!(pkts.len() > per_sweep, "should re-sweep");
        let first: Vec<_> = pkts[..per_sweep].iter().map(|p| p.dst).collect();
        let second: Vec<_> =
            pkts[per_sweep..(2 * per_sweep).min(pkts.len())].iter().map(|p| p.dst).collect();
        assert_ne!(first[..second.len()], second[..], "orders should differ across sweeps");
    }

    #[test]
    fn port_rotation_across_sweeps() {
        let mut cfg = sweep_cfg();
        cfg.ports = vec![PortSpec::tcp(23), PortSpec::udp(161)];
        cfg.coverage = 0.1;
        cfg.repeat_every = Some(Dur::from_secs(1));
        cfg.end = Ts::from_secs(200);
        let mut s = SweepScanner::new(cfg, space());
        let pkts = drain(&mut s, 100_000);
        let tcp23 = pkts.iter().any(|p| p.dst_port() == Some(23) && p.protocol() == 6);
        let udp161 = pkts.iter().any(|p| p.dst_port() == Some(161) && p.protocol() == 17);
        assert!(tcp23 && udp161);
    }

    #[test]
    fn sweep_respects_end_time() {
        let mut cfg = sweep_cfg();
        cfg.rate_pps = 0.1; // far too slow to finish
        cfg.end = Ts::from_secs(100);
        let mut s = SweepScanner::new(cfg, space());
        let pkts = drain(&mut s, 10_000);
        assert!(pkts.iter().all(|p| p.ts < Ts::from_secs(100)));
        assert!(pkts.len() < 30);
    }

    #[test]
    fn mirai_bot_invariants() {
        let sp = space();
        let mut b = MiraiBot::new(SRC, 50.0, Ts::ZERO, Ts::from_secs(60), 3, sp);
        let pkts = drain(&mut b, 100_000);
        assert!(!pkts.is_empty());
        for p in &pkts {
            assert_eq!(classify(p), Tool::Mirai);
            let port = p.dst_port().unwrap();
            assert!(port == 23 || port == 2323);
        }
        let p23 = pkts.iter().filter(|p| p.dst_port() == Some(23)).count();
        assert!(p23 * 10 > pkts.len() * 7, "23 should dominate");
    }

    #[test]
    fn port_sweeper_covers_many_ports() {
        let sp = space();
        let mut s = PortSweeper::new(SRC, 4, 500, 1000.0, Ts::ZERO, Ts::from_secs(30), 5, &sp);
        let pkts = drain(&mut s, 5000);
        let ports: HashSet<_> = pkts.iter().filter_map(|p| p.dst_port()).collect();
        assert!(ports.len() >= 400, "distinct ports: {}", ports.len());
        let dsts: HashSet<_> = pkts.iter().map(|p| p.dst).collect();
        assert!(dsts.len() <= 4);
    }

    #[test]
    fn backscatter_is_never_scanning() {
        let sp = space();
        let victims = vec![Ipv4Addr4::new(150, 0, 0, 1), Ipv4Addr4::new(150, 0, 0, 2)];
        let mut b = Backscatter::new(victims.clone(), 100.0, Ts::ZERO, Ts::from_secs(10), 9, sp);
        let pkts = drain(&mut b, 10_000);
        assert!(!pkts.is_empty());
        assert!(pkts.iter().all(|p| p.scan_class().is_none()));
        assert!(pkts.iter().all(|p| victims.contains(&p.src)));
    }

    #[test]
    fn radiation_tail_shape() {
        let sp = space();
        let pool: Vec<Ipv4Addr4> = (0..500).map(|i| Ipv4Addr4(0x6e00_0000 + i)).collect();
        let mut r = Radiation::new(pool, 500.0, Ts::ZERO, Ts::from_secs(20), 11, sp);
        let pkts = drain(&mut r, 100_000);
        assert!(pkts.len() > 5000);
        // Many distinct sources, each with few packets on average.
        let srcs: HashSet<_> = pkts.iter().map(|p| p.src).collect();
        assert!(srcs.len() > 200, "{}", srcs.len());
        // 445 is the plurality port.
        let p445 = pkts.iter().filter(|p| p.dst_port() == Some(445)).count();
        let p21 = pkts.iter().filter(|p| p.dst_port() == Some(21)).count();
        assert!(p445 > p21);
        // All three scan classes appear.
        let classes: HashSet<_> = pkts.iter().filter_map(|p| p.scan_class()).collect();
        assert_eq!(classes.len(), 3);
    }

    #[test]
    fn spoof_flood_sources_never_repeat_much() {
        let sp = space();
        let mut f = SpoofFlood::new(200.0, Ts::ZERO, Ts::from_secs(60), 21, sp);
        let pkts = drain(&mut f, 50_000);
        assert!(pkts.len() > 2000);
        let srcs: HashSet<_> = pkts.iter().map(|p| p.src).collect();
        // Essentially every packet has a fresh forged source.
        assert!(srcs.len() * 10 > pkts.len() * 9, "{} srcs / {} pkts", srcs.len(), pkts.len());
        // A third-ish are filterable bogons.
        let bogons = ah_net::prefix::standard_bogons();
        let filtered = pkts.iter().filter(|p| bogons.contains(p.src)).count();
        assert!(filtered * 3 > pkts.len(), "{filtered}");
        assert!(pkts.iter().all(|p| p.scan_class().is_some()));
    }

    fn benign() -> Benign {
        Benign::new(
            "10.0.0.0/25".parse().unwrap(),
            Some("10.128.0.0/28".parse().unwrap()),
            0.6,
            vec!["150.0.0.0/24".parse().unwrap()],
            200.0,
            0.6,
            5, // day 0 = Saturday
            Ts::ZERO,
            Ts::from_days(3),
            13,
        )
    }

    #[test]
    fn benign_traffic_is_not_scanning() {
        let mut b = benign();
        let pkts = drain(&mut b, 2000);
        assert!(pkts.iter().all(|p| p.scan_class() != Some(ScanClass::TcpSyn)));
    }

    #[test]
    fn cache_fraction_stays_internal() {
        let mut b = benign();
        let cache_prefix: Prefix = "10.128.0.0/28".parse().unwrap();
        let pkts = drain(&mut b, 5000);
        let cache_pkts = pkts
            .iter()
            .filter(|p| cache_prefix.contains(p.src) || cache_prefix.contains(p.dst))
            .count();
        let frac = cache_pkts as f64 / pkts.len() as f64;
        assert!((0.4..0.8).contains(&frac), "cache fraction {frac}");
    }

    #[test]
    fn weekend_rate_is_lower() {
        let b = benign(); // day 0 = Saturday, day 2 = Monday
        assert!(b.is_weekend(0));
        assert!(!b.is_weekend(2));
        let sat = b.rate_at(Ts::from_days(0) + Dur::from_secs(12 * 3600));
        let mon = b.rate_at(Ts::from_days(2) + Dur::from_secs(12 * 3600));
        assert!(mon > sat * 1.3, "mon {mon} vs sat {sat}");
    }

    #[test]
    fn diurnal_peak_beats_trough() {
        let b = benign();
        let peak = b.rate_at(Ts::from_days(2) + Dur::from_secs(16 * 3600));
        let trough = b.rate_at(Ts::from_days(2) + Dur::from_secs(4 * 3600));
        assert!(peak > trough * 1.8, "peak {peak} trough {trough}");
    }

    #[test]
    fn mostly_download_heavy() {
        let mut b = benign();
        let pkts = drain(&mut b, 3000);
        let big = pkts.iter().filter(|p| p.wire_len > 1000).count();
        assert!(big * 10 > pkts.len() * 5, "download-dominant: {big}/{}", pkts.len());
    }
}
