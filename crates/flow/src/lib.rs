//! ISP flow substrate.
//!
//! Models the Merit-style measurement plane the paper joins its
//! aggressive-hitter lists against:
//!
//! * [`record`] — flow records plus the NetFlow v5 export wire format
//!   (encoder and decoder, implemented from the published layout);
//! * [`v9`] — the template-based NetFlow v9 format (RFC 3954) newer
//!   exporters speak, with a template-learning decoder;
//! * [`sampler`] — deterministic 1:N systematic packet sampling, as
//!   configured on the paper's routers (1:1000), with the inverse
//!   estimator used when reporting totals;
//! * [`cache`] — a flow cache with active and inactive timeouts that
//!   turns sampled packets into flow records;
//! * [`router`] — border routers and the ISP model: peering-policy
//!   ingress assignment (why router-1 sees more scanner traffic than
//!   router-3), ingress/egress classification, and the content-cache
//!   bypass that explains the Merit-vs-CU impact gap.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod record;
pub mod router;
pub mod sampler;
pub mod v9;

pub use cache::{CacheStats, FlowCache};
pub use record::{FlowKey, FlowRecord};
pub use router::{Direction, IspModel, RouterId};
pub use sampler::Sampler;
