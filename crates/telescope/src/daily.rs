//! Per-day rollups of darknet activity.
//!
//! Figure 3 and Table 1 need day-granular aggregates of the raw capture:
//! how many scanning packets arrived, from how many unique sources, and
//! which events started on which day.

use crate::event::DarknetEvent;
use ah_net::ipv4::Ipv4Addr4;
use ah_net::packet::PacketMeta;
use std::collections::{BTreeMap, HashSet};

/// Aggregates for one day of capture.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DayStats {
    /// Scanning packets captured this day.
    pub scan_packets: u64,
    /// All packets captured this day (incl. backscatter).
    pub total_packets: u64,
    /// Unique source IPs that sent scanning packets this day.
    pub unique_sources: u64,
}

/// Streaming per-day tracker. Feed every captured packet.
#[derive(Debug, Default)]
pub struct DailyTracker {
    days: BTreeMap<u64, DayAccum>,
}

#[derive(Debug, Default)]
struct DayAccum {
    scan_packets: u64,
    total_packets: u64,
    sources: HashSet<Ipv4Addr4>,
}

impl DailyTracker {
    /// An empty tracker.
    pub fn new() -> DailyTracker {
        DailyTracker::default()
    }

    /// Record one captured packet; `is_scan` from the telescope classifier.
    pub fn record(&mut self, pkt: &PacketMeta, is_scan: bool) {
        let acc = self.days.entry(pkt.ts.day()).or_default();
        acc.total_packets += 1;
        if is_scan {
            acc.scan_packets += 1;
            acc.sources.insert(pkt.src);
        }
    }

    /// Per-day statistics, ordered by day index.
    pub fn finalize(&self) -> BTreeMap<u64, DayStats> {
        self.days
            .iter()
            .map(|(day, acc)| {
                (
                    *day,
                    DayStats {
                        scan_packets: acc.scan_packets,
                        total_packets: acc.total_packets,
                        unique_sources: acc.sources.len() as u64,
                    },
                )
            })
            .collect()
    }

    /// Days observed so far.
    pub fn day_count(&self) -> usize {
        self.days.len()
    }

    /// Fold another shard's tracker into this one.
    ///
    /// Packet counters sum and per-day source sets take their union, so
    /// the merged tracker finalizes to exactly what a single tracker fed
    /// the concatenated streams would produce — in any merge order.
    pub fn absorb(&mut self, other: DailyTracker) {
        for (day, acc) in other.days {
            let mine = self.days.entry(day).or_default();
            mine.scan_packets += acc.scan_packets;
            mine.total_packets += acc.total_packets;
            mine.sources.extend(acc.sources);
        }
    }
}

/// Group completed events by the day their scan *started* — the paper's
/// "daily" attribution (footnote to Figure 3: packet statistics can only
/// be computed for daily scanners because events carry their start day).
pub fn events_by_start_day(events: &[DarknetEvent]) -> BTreeMap<u64, Vec<&DarknetEvent>> {
    let mut map: BTreeMap<u64, Vec<&DarknetEvent>> = BTreeMap::new();
    for ev in events {
        map.entry(ev.start_day()).or_default().push(ev);
    }
    map
}

/// For each day, the set of sources with an event *active* that day
/// (started on or before, ended on or after) — the paper's "active"
/// scanner population.
pub fn active_sources_by_day(events: &[DarknetEvent]) -> BTreeMap<u64, HashSet<Ipv4Addr4>> {
    let mut map: BTreeMap<u64, HashSet<Ipv4Addr4>> = BTreeMap::new();
    for ev in events {
        for day in ev.days() {
            map.entry(day).or_default().insert(ev.key.src);
        }
    }
    map
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{EventKey, ToolCounts};
    use ah_net::packet::ScanClass;
    use ah_net::time::{Dur, Ts};

    fn ev(src: u8, start_day: u64, end_day: u64) -> DarknetEvent {
        DarknetEvent {
            key: EventKey {
                src: Ipv4Addr4::new(10, 0, 0, src),
                dst_port: 23,
                class: ScanClass::TcpSyn,
            },
            start: Ts::from_days(start_day) + Dur::from_secs(10),
            end: Ts::from_days(end_day) + Dur::from_secs(20),
            packets: 10,
            bytes: 400,
            unique_dsts: 10,
            dark_size: 100,
            tools: ToolCounts::default(),
        }
    }

    #[test]
    fn tracker_buckets_by_day() {
        let mut t = DailyTracker::new();
        let src = Ipv4Addr4::new(10, 0, 0, 1);
        let dst = Ipv4Addr4::new(192, 0, 2, 1);
        t.record(&PacketMeta::tcp_syn(Ts::from_days(0), src, dst, 1, 23), true);
        t.record(&PacketMeta::tcp_syn(Ts::from_days(0) + Dur::from_secs(5), src, dst, 1, 23), true);
        t.record(&PacketMeta::tcp_syn(Ts::from_days(1), src, dst, 1, 23), false);
        let days = t.finalize();
        assert_eq!(days.len(), 2);
        assert_eq!(days[&0].scan_packets, 2);
        assert_eq!(days[&0].unique_sources, 1);
        assert_eq!(days[&1].scan_packets, 0);
        assert_eq!(days[&1].total_packets, 1);
        assert_eq!(t.day_count(), 2);
    }

    #[test]
    fn start_day_grouping() {
        let events = vec![ev(1, 0, 0), ev(2, 0, 1), ev(3, 2, 2)];
        let by_day = events_by_start_day(&events);
        assert_eq!(by_day[&0].len(), 2);
        assert_eq!(by_day[&2].len(), 1);
        assert!(!by_day.contains_key(&1));
    }

    #[test]
    fn active_includes_span_days() {
        let events = vec![ev(1, 0, 2), ev(2, 1, 1)];
        let active = active_sources_by_day(&events);
        assert_eq!(active[&0].len(), 1);
        assert_eq!(active[&1].len(), 2);
        assert_eq!(active[&2].len(), 1);
    }

    #[test]
    fn active_dedupes_multiple_events_same_source() {
        // One source with two events the same day counts once.
        let events = vec![ev(1, 0, 0), ev(1, 0, 0)];
        let active = active_sources_by_day(&events);
        assert_eq!(active[&0].len(), 1);
    }
}
