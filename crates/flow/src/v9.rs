//! NetFlow v9 export format (RFC 3954), template-based.
//!
//! The paper's collectors speak NetFlow; v5 (fixed layout) is in
//! [`crate::record`], and this module adds the template-driven v9 that
//! newer router software exports. We implement the subset a flow
//! collector for this pipeline needs: one template FlowSet describing
//! our record layout, data FlowSets referencing it, and a decoder that
//! learns templates from the stream (as real collectors must — data
//! arriving before its template is undecodable and reported as such).
//!
//! Data FlowSets that arrive before their template are *buffered* in a
//! bounded FIFO ([`DEFAULT_PENDING_CAP`] sets) and replayed the moment
//! the template is learned, so a reordered template packet costs
//! nothing. When the buffer is full the oldest set is evicted and
//! counted in `evicted_sets` — bounded memory, accounted loss.
//!
//! Field types used (RFC 3954 §8): IN_BYTES(1), IN_PKTS(2), PROTOCOL(4),
//! TCP_FLAGS(6), L4_SRC_PORT(7), IPV4_SRC_ADDR(8), L4_DST_PORT(11),
//! IPV4_DST_ADDR(12), LAST_SWITCHED(21), FIRST_SWITCHED(22),
//! INPUT_SNMP(10), OUTPUT_SNMP(14).

use crate::record::{FlowKey, FlowRecord};
use crate::router::Direction;
use ah_net::error::{NetError, Result};
use ah_net::ipv4::Ipv4Addr4;
use ah_net::time::Ts;
use std::collections::{HashMap, VecDeque};

/// The template id we export under (ids < 256 are reserved).
pub const TEMPLATE_ID: u16 = 260;

/// Default bound on data FlowSets buffered while waiting for their
/// template.
pub const DEFAULT_PENDING_CAP: usize = 64;

/// (field type, length) pairs of the exported template, in order.
const FIELDS: &[(u16, u16)] = &[
    (8, 4),  // IPV4_SRC_ADDR
    (12, 4), // IPV4_DST_ADDR
    (7, 2),  // L4_SRC_PORT
    (11, 2), // L4_DST_PORT
    (4, 1),  // PROTOCOL
    (6, 1),  // TCP_FLAGS
    (2, 4),  // IN_PKTS
    (1, 4),  // IN_BYTES
    (22, 4), // FIRST_SWITCHED (sysuptime ms)
    (21, 4), // LAST_SWITCHED
    (10, 2), // INPUT_SNMP
    (14, 2), // OUTPUT_SNMP
];

const RECORD_LEN: usize = 4 + 4 + 2 + 2 + 1 + 1 + 4 + 4 + 4 + 4 + 2 + 2;

/// Encode one v9 export packet carrying the template FlowSet (when
/// `with_template`) and the given records as one data FlowSet.
pub fn encode_v9(
    records: &[FlowRecord],
    export_ts: Ts,
    sequence: u32,
    source_id: u32,
    with_template: bool,
) -> Vec<u8> {
    let mut out = Vec::new();
    // Header: version, count (FlowSets' record count), sysUptime, unix
    // secs, sequence, source id.
    let count = records.len() as u16 + u16::from(with_template);
    out.extend_from_slice(&9u16.to_be_bytes());
    out.extend_from_slice(&count.to_be_bytes());
    out.extend_from_slice(&((export_ts.micros() / 1000) as u32).to_be_bytes());
    out.extend_from_slice(&(export_ts.secs() as u32).to_be_bytes());
    out.extend_from_slice(&sequence.to_be_bytes());
    out.extend_from_slice(&source_id.to_be_bytes());
    if with_template {
        // Template FlowSet: id 0.
        let len = 4 + 4 + FIELDS.len() * 4;
        out.extend_from_slice(&0u16.to_be_bytes());
        out.extend_from_slice(&(len as u16).to_be_bytes());
        out.extend_from_slice(&TEMPLATE_ID.to_be_bytes());
        out.extend_from_slice(&(FIELDS.len() as u16).to_be_bytes());
        for (t, l) in FIELDS {
            out.extend_from_slice(&t.to_be_bytes());
            out.extend_from_slice(&l.to_be_bytes());
        }
    }
    if !records.is_empty() {
        let body = records.len() * RECORD_LEN;
        let padding = (4 - (4 + body) % 4) % 4;
        out.extend_from_slice(&TEMPLATE_ID.to_be_bytes());
        out.extend_from_slice(&((4 + body + padding) as u16).to_be_bytes());
        for r in records {
            out.extend_from_slice(&r.key.src.octets());
            out.extend_from_slice(&r.key.dst.octets());
            out.extend_from_slice(&r.key.src_port.to_be_bytes());
            out.extend_from_slice(&r.key.dst_port.to_be_bytes());
            out.push(r.key.protocol);
            out.push(r.tcp_flags);
            out.extend_from_slice(&(r.packets as u32).to_be_bytes());
            out.extend_from_slice(&(r.bytes as u32).to_be_bytes());
            out.extend_from_slice(&((r.first.micros() / 1000) as u32).to_be_bytes());
            out.extend_from_slice(&((r.last.micros() / 1000) as u32).to_be_bytes());
            let (input, output) = match r.direction {
                Direction::Ingress => (1u16, 2u16),
                Direction::Egress => (2u16, 1u16),
            };
            out.extend_from_slice(&input.to_be_bytes());
            out.extend_from_slice(&output.to_be_bytes());
        }
        out.resize(out.len() + padding, 0);
    }
    out
}

/// A stateful v9 decoder: learns templates from the stream.
#[derive(Debug)]
pub struct V9Decoder {
    /// template id -> (field type, length) list.
    templates: HashMap<u16, Vec<(u16, u16)>>,
    /// Data FlowSets waiting for their template: (template id, body,
    /// router). Bounded FIFO.
    pending: VecDeque<(u16, Vec<u8>, u8)>,
    pending_cap: usize,
    /// Data FlowSets seen before their template arrived (whether later
    /// replayed, evicted, or still pending).
    pub undecodable_sets: u64,
    /// Pending sets evicted because the buffer was full: permanent loss.
    pub evicted_sets: u64,
    /// Pending sets successfully decoded once their template arrived.
    pub replayed_sets: u64,
    /// Telemetry (inert until [`V9Decoder::set_recorder`]).
    m_records: ah_obs::Counter,
    m_pending_hwm: ah_obs::Gauge,
    m_templates: ah_obs::Gauge,
    m_evicted: ah_obs::Counter,
}

impl Default for V9Decoder {
    fn default() -> V9Decoder {
        V9Decoder::with_pending_cap(DEFAULT_PENDING_CAP)
    }
}

impl V9Decoder {
    /// A decoder with the default data-before-template buffer cap.
    pub fn new() -> V9Decoder {
        V9Decoder::default()
    }

    /// A decoder whose data-before-template buffer holds at most `cap`
    /// FlowSets.
    pub fn with_pending_cap(cap: usize) -> V9Decoder {
        V9Decoder {
            templates: HashMap::new(),
            pending: VecDeque::new(),
            pending_cap: cap,
            undecodable_sets: 0,
            evicted_sets: 0,
            replayed_sets: 0,
            m_records: ah_obs::Counter::default(),
            m_pending_hwm: ah_obs::Gauge::default(),
            m_templates: ah_obs::Gauge::default(),
            m_evicted: ah_obs::Counter::default(),
        }
    }

    /// Attach live telemetry instruments (`ah_flow_v9_*`).
    /// Observation-only: decoding semantics are unchanged.
    pub fn set_recorder(&mut self, rec: &ah_obs::Recorder) {
        self.m_records = rec.counter("ah_flow_v9_records_decoded_total");
        self.m_pending_hwm = rec.gauge("ah_flow_v9_pending_sets_hwm");
        self.m_templates = rec.gauge("ah_flow_v9_templates_learned");
        self.m_evicted = rec.counter("ah_flow_v9_pending_evicted_total");
    }

    /// Number of templates learned.
    pub fn template_count(&self) -> usize {
        self.templates.len()
    }

    /// Data FlowSets currently buffered awaiting a template.
    pub fn pending_sets(&self) -> usize {
        self.pending.len()
    }

    /// Decode one export packet, learning templates and returning the
    /// records of data FlowSets whose template is known. `router` is
    /// attached to the returned records (v9 carries it out of band via
    /// source id; we map it directly).
    pub fn decode(&mut self, data: &[u8], router: u8) -> Result<Vec<FlowRecord>> {
        if data.len() < 20 {
            return Err(NetError::Truncated { layer: "netflow-v9", needed: 20, got: data.len() });
        }
        let version = u16::from_be_bytes([data[0], data[1]]);
        if version != 9 {
            return Err(NetError::Unsupported {
                layer: "netflow-v9",
                field: "version",
                value: u64::from(version),
            });
        }
        let mut records = Vec::new();
        let mut off = 20;
        while off + 4 <= data.len() {
            let set_id = u16::from_be_bytes([data[off], data[off + 1]]);
            let set_len = usize::from(u16::from_be_bytes([data[off + 2], data[off + 3]]));
            if set_len < 4 || off + set_len > data.len() {
                return Err(NetError::BadLength { layer: "netflow-v9", value: set_len });
            }
            let body = &data[off + 4..off + set_len];
            match set_id {
                0 => {
                    self.learn_templates(body)?;
                    self.replay_pending(&mut records)?;
                }
                1 => {} // options templates: skipped
                id if id >= 256 => {
                    if let Some(fields) = self.templates.get(&id).cloned() {
                        records.extend(self.decode_data(body, &fields, router)?);
                    } else {
                        self.undecodable_sets += 1;
                        self.buffer_pending(id, body.to_vec(), router);
                    }
                }
                _ => {}
            }
            off += set_len;
        }
        self.m_records.add(records.len() as u64);
        self.m_pending_hwm.set_max(self.pending.len() as i64);
        self.m_templates.set(self.templates.len() as i64);
        Ok(records)
    }

    /// Buffer a data FlowSet until its template shows up, evicting the
    /// oldest pending set when the bounded buffer is full.
    fn buffer_pending(&mut self, template: u16, body: Vec<u8>, router: u8) {
        if self.pending_cap == 0 {
            self.evicted_sets += 1;
            self.m_evicted.inc();
            return;
        }
        if self.pending.len() >= self.pending_cap {
            self.pending.pop_front();
            self.evicted_sets += 1;
            self.m_evicted.inc();
        }
        self.pending.push_back((template, body, router));
    }

    /// Decode every pending set whose template is now known, in arrival
    /// order, appending the recovered records.
    fn replay_pending(&mut self, records: &mut Vec<FlowRecord>) -> Result<()> {
        let mut i = 0;
        while i < self.pending.len() {
            let template = self.pending[i].0;
            let Some(fields) = self.templates.get(&template).cloned() else {
                i += 1;
                continue;
            };
            if let Some((_, body, router)) = self.pending.remove(i) {
                records.extend(self.decode_data(&body, &fields, router)?);
                self.replayed_sets += 1;
            }
        }
        Ok(())
    }

    fn learn_templates(&mut self, mut body: &[u8]) -> Result<()> {
        while body.len() >= 4 {
            let id = u16::from_be_bytes([body[0], body[1]]);
            let n = usize::from(u16::from_be_bytes([body[2], body[3]]));
            if body.len() < 4 + n * 4 {
                return Err(NetError::Truncated {
                    layer: "netflow-v9-template",
                    needed: 4 + n * 4,
                    got: body.len(),
                });
            }
            let fields: Vec<(u16, u16)> = (0..n)
                .map(|i| {
                    let b = &body[4 + i * 4..];
                    (u16::from_be_bytes([b[0], b[1]]), u16::from_be_bytes([b[2], b[3]]))
                })
                .collect();
            if id >= 256 {
                self.templates.insert(id, fields);
            }
            body = &body[4 + n * 4..];
        }
        Ok(())
    }

    fn decode_data(
        &self,
        body: &[u8],
        fields: &[(u16, u16)],
        router: u8,
    ) -> Result<Vec<FlowRecord>> {
        let rec_len: usize = fields.iter().map(|&(_, l)| usize::from(l)).sum();
        if rec_len == 0 {
            return Err(NetError::BadLength { layer: "netflow-v9-data", value: 0 });
        }
        let mut out = Vec::new();
        let mut off = 0;
        // Trailing bytes shorter than one record are padding.
        while off + rec_len <= body.len() {
            let mut src = Ipv4Addr4::UNSPECIFIED;
            let mut dst = Ipv4Addr4::UNSPECIFIED;
            let (mut sp, mut dp, mut proto, mut flags) = (0u16, 0u16, 0u8, 0u8);
            let (mut pkts, mut bytes, mut first, mut last) = (0u64, 0u64, 0u64, 0u64);
            let mut input = 0u16;
            let mut f_off = off;
            for &(ftype, flen) in fields {
                let v = &body[f_off..f_off + usize::from(flen)];
                let as_u64 = v.iter().fold(0u64, |acc, &b| (acc << 8) | u64::from(b));
                match ftype {
                    8 if flen == 4 => src = Ipv4Addr4::from_octets([v[0], v[1], v[2], v[3]]),
                    12 if flen == 4 => dst = Ipv4Addr4::from_octets([v[0], v[1], v[2], v[3]]),
                    7 => sp = as_u64 as u16,
                    11 => dp = as_u64 as u16,
                    4 => proto = as_u64 as u8,
                    6 => flags = as_u64 as u8,
                    2 => pkts = as_u64,
                    1 => bytes = as_u64,
                    22 => first = as_u64,
                    21 => last = as_u64,
                    10 => input = as_u64 as u16,
                    _ => {} // unknown field: skipped (length still consumed)
                }
                f_off += usize::from(flen);
            }
            out.push(FlowRecord {
                key: FlowKey { src, dst, src_port: sp, dst_port: dp, protocol: proto },
                router,
                direction: if input == 1 { Direction::Ingress } else { Direction::Egress },
                first: Ts::from_millis(first),
                last: Ts::from_millis(last),
                packets: pkts,
                bytes,
                tcp_flags: flags,
            });
            off += rec_len;
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(n: u8) -> FlowRecord {
        FlowRecord {
            key: FlowKey {
                src: Ipv4Addr4::new(100, 64, 0, n),
                dst: Ipv4Addr4::new(10, 0, 0, 1),
                src_port: 40_000 + u16::from(n),
                dst_port: 6379,
                protocol: 6,
            },
            router: 2,
            direction: if n.is_multiple_of(2) { Direction::Ingress } else { Direction::Egress },
            first: Ts::from_millis(10_000 + u64::from(n)),
            last: Ts::from_millis(20_000 + u64::from(n)),
            packets: 7 + u64::from(n),
            bytes: 280 + u64::from(n),
            tcp_flags: 0x02,
        }
    }

    #[test]
    fn header_length_boundary_is_exact() {
        let mut dec = V9Decoder::new();
        // 19 bytes is one short of the v9 export header.
        let short = [0u8; 19];
        match dec.decode(&short, 0) {
            Err(NetError::Truncated { needed: 20, got: 19, .. }) => {}
            other => panic!("19-byte packet must be Truncated, got {other:?}"),
        }
        // Exactly 20 bytes with a valid version is a legal, empty export.
        let mut bare = [0u8; 20];
        bare[1] = 9;
        assert_eq!(dec.decode(&bare, 0).unwrap(), vec![]);
    }

    #[test]
    fn roundtrip_with_template() {
        let records: Vec<_> = (0..5).map(rec).collect();
        let wire = encode_v9(&records, Ts::from_secs(50), 1, 2, true);
        let mut dec = V9Decoder::new();
        let got = dec.decode(&wire, 2).unwrap();
        assert_eq!(dec.template_count(), 1);
        assert_eq!(got, records);
        assert_eq!(dec.undecodable_sets, 0);
    }

    #[test]
    fn data_before_template_is_buffered_then_replayed() {
        let records: Vec<_> = (0..3).map(rec).collect();
        let data_only = encode_v9(&records, Ts::from_secs(1), 1, 2, false);
        let with_tpl = encode_v9(&records, Ts::from_secs(2), 2, 2, true);
        let mut dec = V9Decoder::new();
        // First packet: no template yet — buffered, nothing returned.
        let got = dec.decode(&data_only, 2).unwrap();
        assert!(got.is_empty());
        assert_eq!(dec.undecodable_sets, 1);
        assert_eq!(dec.pending_sets(), 1);
        // Template arrives: the buffered set is replayed ahead of the
        // packet's own records — nothing was lost to the reordering.
        let got = dec.decode(&with_tpl, 2).unwrap();
        assert_eq!(got.len(), 6);
        assert_eq!(&got[..3], &records[..]);
        assert_eq!(&got[3..], &records[..]);
        assert_eq!(dec.replayed_sets, 1);
        assert_eq!(dec.pending_sets(), 0);
        assert_eq!(dec.evicted_sets, 0);
        // And later data-only packets decode directly.
        let got = dec.decode(&data_only, 2).unwrap();
        assert_eq!(got, records);
    }

    #[test]
    fn pending_buffer_evicts_oldest_beyond_cap() {
        let mut dec = V9Decoder::with_pending_cap(2);
        let packets: Vec<Vec<u8>> = (0..3)
            .map(|n| encode_v9(&[rec(n)], Ts::from_secs(u64::from(n) + 1), u32::from(n), 2, false))
            .collect();
        for p in &packets {
            assert!(dec.decode(p, 2).unwrap().is_empty());
        }
        assert_eq!(dec.undecodable_sets, 3);
        assert_eq!(dec.pending_sets(), 2);
        assert_eq!(dec.evicted_sets, 1, "oldest set evicted at the cap");
        // Template arrives alone: only the two retained sets replay.
        let tpl_only = encode_v9(&[], Ts::from_secs(9), 9, 2, true);
        let got = dec.decode(&tpl_only, 2).unwrap();
        assert_eq!(got, vec![rec(1), rec(2)]);
        assert_eq!(dec.replayed_sets, 2);
        assert_eq!(dec.pending_sets(), 0);
        // Ledger: every undecodable set was either replayed or evicted.
        assert_eq!(dec.undecodable_sets, dec.replayed_sets + dec.evicted_sets);
    }

    #[test]
    fn zero_pending_cap_discards_immediately() {
        let mut dec = V9Decoder::with_pending_cap(0);
        let data_only = encode_v9(&[rec(0)], Ts::from_secs(1), 1, 2, false);
        assert!(dec.decode(&data_only, 2).unwrap().is_empty());
        assert_eq!(dec.pending_sets(), 0);
        assert_eq!(dec.evicted_sets, 1);
    }

    #[test]
    fn template_only_packet() {
        let wire = encode_v9(&[], Ts::from_secs(1), 0, 7, true);
        let mut dec = V9Decoder::new();
        assert!(dec.decode(&wire, 1).unwrap().is_empty());
        assert_eq!(dec.template_count(), 1);
    }

    #[test]
    fn rejects_wrong_version() {
        let mut wire = encode_v9(&[rec(0)], Ts::from_secs(1), 0, 1, true);
        wire[1] = 5;
        let mut dec = V9Decoder::new();
        assert!(matches!(dec.decode(&wire, 1), Err(NetError::Unsupported { .. })));
    }

    #[test]
    fn truncation_is_an_error_not_a_panic() {
        let wire = encode_v9(&(0..4).map(rec).collect::<Vec<_>>(), Ts::from_secs(1), 0, 1, true);
        let mut dec = V9Decoder::new();
        for cut in [0usize, 10, 21, wire.len() - 3] {
            let _ = dec.decode(&wire[..cut], 1); // may Err, must not panic
        }
    }

    #[test]
    fn padding_is_ignored() {
        // One record: data FlowSet body = 34 bytes -> padded to 36.
        let records = vec![rec(1)];
        let wire = encode_v9(&records, Ts::from_secs(1), 0, 1, true);
        let mut dec = V9Decoder::new();
        let got = dec.decode(&wire, 2).unwrap();
        assert_eq!(got.len(), 1);
        assert_eq!(got[0], records[0]);
    }
}
