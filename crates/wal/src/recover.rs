//! Crash recovery: scan, validate, truncate, rebuild.
//!
//! [`recover`] walks every segment in sequence order, validates each
//! frame (CRC, length, monotonic sequence number) and hands decoded
//! records to the caller. At the **first** torn or corrupt frame it
//! stops, physically truncates the damaged segment back to its last
//! valid frame, deletes any later segments (their sequence numbers can
//! no longer be contiguous), and rewrites the segment index from what it
//! actually saw. The result is a log identical to one where the writer
//! had cleanly committed exactly `next_seq` frames — which is what makes
//! recovery idempotent: running it twice yields byte-identical state.
//!
//! The segment index is advisory. Recovery reads it only to report
//! whether it disagreed with the scan ([`RecoveryStats::index_rebuilt`]);
//! the segments themselves are always the source of truth.

use std::fs;
use std::io::{self, Read};
use std::path::Path;

use ah_obs::Recorder;

use crate::frame::{check_frame, FrameCheck};
use crate::record::{RunMeta, RunSeal, WalRecord};
use crate::segment::{
    decode_segment_header, read_index, segment_paths, write_index, IndexEntry, SEGMENT_HEADER_BYTES,
};

/// What the recovery scanner found and did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecoveryStats {
    /// Segments visited (including any later dropped).
    pub segments_scanned: u64,
    /// Frames that validated and were delivered to the callback.
    pub frames_valid: u64,
    /// Torn (short) trailing writes discarded — 0 or 1.
    pub torn_frames: u64,
    /// Structurally complete frames rejected by checksum/sequence.
    pub corrupt_frames: u64,
    /// Bytes physically truncated from the damaged segment.
    pub bytes_truncated: u64,
    /// Whole segments deleted because they followed the damage point or
    /// had an unreadable header.
    pub segments_dropped: u64,
    /// True when the on-disk index was missing, invalid, or disagreed
    /// with the scan and was rewritten.
    pub index_rebuilt: bool,
}

/// A recovered log, ready for replay or resumption.
#[derive(Debug, Clone, PartialEq)]
pub struct RecoveredLog {
    /// The run-meta frame, if the log has one (frame 0).
    pub meta: Option<RunMeta>,
    /// The seal, when the log captured a completed run.
    pub seal: Option<RunSeal>,
    /// Durable watermark: sequence number the next append would get.
    pub next_seq: u64,
    /// Scanner report.
    pub stats: RecoveryStats,
}

impl RecoveredLog {
    /// True when the log ends with a [`RunSeal`] — the run it captured
    /// ran to completion and the log is read-only from here on.
    pub fn is_sealed(&self) -> bool {
        self.seal.is_some()
    }
}

/// Scan `dir`, repair it, and stream every valid record (in sequence
/// order) to `on_record(seq, raw_payload, record)`. Returns the durable
/// watermark and what the scanner had to do to get there. An absent or
/// empty directory recovers to an empty log (`next_seq == 0`).
///
/// # Examples
///
/// A torn trailing write (the bytes a crash left behind after the last
/// group commit) is discarded and physically truncated; every committed
/// frame survives:
///
/// ```
/// use ah_net::{Ipv4Addr4, PacketMeta, Ts};
/// use ah_obs::Recorder;
/// use ah_wal::record::WalRecord;
/// use ah_wal::writer::{WalWriter, WalWriterConfig};
///
/// let dir = std::env::temp_dir().join(format!("wal-doc-recover-{}", std::process::id()));
/// # let _ = std::fs::remove_dir_all(&dir);
/// let rec = Recorder::noop();
/// let mut w = WalWriter::create(&dir, WalWriterConfig::default(), &rec)?;
/// for i in 0..4u64 {
///     let pkt = PacketMeta::tcp_syn(
///         Ts::from_secs(i),
///         Ipv4Addr4(0x0a00_0001),
///         Ipv4Addr4(0xc000_0202),
///         40_000,
///         443,
///     );
///     w.append(&WalRecord::Packet(pkt))?;
/// }
/// w.commit()?;
/// drop(w);
///
/// // Simulate a crash mid-append: garbage after the committed tail.
/// use std::io::Write;
/// let seg = dir.join(format!("{:016x}.seg", 0));
/// std::fs::OpenOptions::new().append(true).open(&seg)?.write_all(&[0xAB; 7])?;
///
/// let log = ah_wal::recover::recover(&dir, &rec, |_seq, _raw, _record| {})?;
/// assert_eq!(log.next_seq, 4, "all committed frames survive");
/// assert_eq!(log.stats.torn_frames, 1, "the torn tail is counted once");
/// assert_eq!(log.stats.bytes_truncated, 7, "and physically removed");
/// # std::fs::remove_dir_all(&dir).ok();
/// # Ok::<(), std::io::Error>(())
/// ```
pub fn recover(
    dir: &Path,
    rec: &Recorder,
    mut on_record: impl FnMut(u64, &[u8], WalRecord),
) -> io::Result<RecoveredLog> {
    // The scan buffers and rebuilt index are recovery's own memory
    // traffic; `on_record` consumers re-tag via their own scopes.
    let _mem = ah_mem::MemScope::enter(ah_mem::Tag::Wal);
    let segs = segment_paths(dir)?;
    let prior_index = if segs.is_empty() { None } else { read_index(dir)? };

    let mut out =
        RecoveredLog { meta: None, seal: None, next_seq: 0, stats: RecoveryStats::default() };
    let mut rebuilt: Vec<IndexEntry> = Vec::new();
    let mut damaged = false;
    let mut seal_at: Option<u64> = None;

    for (base, path) in segs.iter() {
        out.stats.segments_scanned += 1;
        if damaged || *base != out.next_seq {
            // Everything after the damage point (or a sequence gap) is
            // unreachable: drop it.
            fs::remove_file(path)?;
            out.stats.segments_dropped += 1;
            continue;
        }
        let mut raw = Vec::new();
        fs::File::open(path)?.read_to_end(&mut raw)?;
        if decode_segment_header(&raw) != Some(*base) {
            fs::remove_file(path)?;
            out.stats.segments_dropped += 1;
            damaged = true;
            continue;
        }
        let mut off = SEGMENT_HEADER_BYTES;
        let seg_start_seq = out.next_seq;
        while off < raw.len() {
            match check_frame(&raw[off..], out.next_seq) {
                FrameCheck::Frame { payload, consumed } => {
                    match WalRecord::decode_payload(payload) {
                        Some(record) => {
                            match &record {
                                WalRecord::Meta(m) if out.next_seq == 0 => {
                                    out.meta = Some(m.clone());
                                }
                                WalRecord::Seal(s) => {
                                    out.seal = Some(*s);
                                    seal_at = Some(out.next_seq);
                                }
                                _ => {}
                            }
                            on_record(out.next_seq, payload, record);
                            out.stats.frames_valid += 1;
                            out.next_seq += 1;
                            off += consumed;
                        }
                        None => {
                            // Framed correctly but not a record: same
                            // contract as a checksum failure.
                            out.stats.corrupt_frames += 1;
                            damaged = true;
                            break;
                        }
                    }
                }
                FrameCheck::Torn => {
                    out.stats.torn_frames += 1;
                    damaged = true;
                    break;
                }
                FrameCheck::Corrupt => {
                    out.stats.corrupt_frames += 1;
                    damaged = true;
                    break;
                }
            }
        }
        if damaged {
            // Physical truncation: cut the file back to its last valid
            // frame and make the cut durable.
            out.stats.bytes_truncated += (raw.len() - off) as u64;
            let f = fs::OpenOptions::new().write(true).open(path)?;
            f.set_len(off as u64)?;
            f.sync_data()?;
            rebuilt.push(IndexEntry {
                base_seq: seg_start_seq,
                frames: out.next_seq - seg_start_seq,
                bytes: off as u64,
                sealed: false,
            });
        } else {
            rebuilt.push(IndexEntry {
                base_seq: seg_start_seq,
                frames: out.next_seq - seg_start_seq,
                bytes: raw.len() as u64,
                sealed: false,
            });
        }
    }

    // A seal only counts when it is the very last surviving frame; a
    // seal followed by more frames (or lost to truncation) leaves the
    // log unsealed.
    if seal_at != out.next_seq.checked_sub(1) {
        out.seal = None;
    }
    if out.seal.is_some() {
        if let Some(last) = rebuilt.last_mut() {
            last.sealed = true;
        }
    }

    if !segs.is_empty() {
        let needs_rewrite = match &prior_index {
            Some(entries) => entries != &rebuilt,
            None => true,
        };
        if needs_rewrite {
            write_index(dir, &rebuilt)?;
            out.stats.index_rebuilt = true;
        }
    }

    let m = RecoverMetrics::new(rec);
    m.apply(&out.stats, out.next_seq);
    Ok(out)
}

/// Decode just the run-meta frame (frame 0) without scanning the whole
/// log. `Ok(None)` when the directory is empty or frame 0 is damaged.
pub fn peek_meta(dir: &Path) -> io::Result<Option<RunMeta>> {
    let segs = segment_paths(dir)?;
    let Some((base, path)) = segs.first() else { return Ok(None) };
    if *base != 0 {
        return Ok(None);
    }
    let mut raw = Vec::new();
    fs::File::open(path)?.read_to_end(&mut raw)?;
    if decode_segment_header(&raw) != Some(0) {
        return Ok(None);
    }
    match check_frame(&raw[SEGMENT_HEADER_BYTES..], 0) {
        FrameCheck::Frame { payload, .. } => match WalRecord::decode_payload(payload) {
            Some(WalRecord::Meta(m)) => Ok(Some(m)),
            _ => Ok(None),
        },
        _ => Ok(None),
    }
}

/// Recovery metrics (`ah_wal_recover_*`).
struct RecoverMetrics<'a> {
    rec: &'a Recorder,
}

impl<'a> RecoverMetrics<'a> {
    fn new(rec: &'a Recorder) -> RecoverMetrics<'a> {
        RecoverMetrics { rec }
    }

    fn apply(&self, s: &RecoveryStats, next_seq: u64) {
        // Instruments live in the recorder, which outlives the run.
        let _mem = ah_mem::MemScope::enter(ah_mem::Tag::Obs);
        self.rec.counter("ah_wal_recover_runs_total").inc();
        self.rec.counter("ah_wal_recover_frames_valid_total").add(s.frames_valid);
        self.rec.counter("ah_wal_recover_frames_torn_total").add(s.torn_frames);
        self.rec.counter("ah_wal_recover_frames_corrupt_total").add(s.corrupt_frames);
        self.rec.counter("ah_wal_recover_bytes_truncated_total").add(s.bytes_truncated);
        self.rec.counter("ah_wal_recover_segments_dropped_total").add(s.segments_dropped);
        self.rec.counter("ah_wal_recover_index_rebuilds_total").add(u64::from(s.index_rebuilt));
        self.rec.gauge("ah_wal_recover_watermark_seq").set(next_seq as i64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::writer::{WalWriter, WalWriterConfig};
    use ah_net::ipv4::Ipv4Addr4;
    use ah_net::packet::{PacketMeta, Transport};
    use ah_net::time::Ts;
    use std::path::PathBuf;

    fn tmp(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("ah-wal-recover-{tag}-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn small_cfg() -> WalWriterConfig {
        WalWriterConfig { group_commit_frames: 4, segment_bytes: 200 }
    }

    fn pkt(i: u64) -> WalRecord {
        WalRecord::Packet(PacketMeta {
            ts: Ts(i),
            src: Ipv4Addr4(0x0a00_0001),
            dst: Ipv4Addr4(0xc000_0200),
            ip_id: i as u16,
            ttl: 64,
            wire_len: 60,
            transport: Transport::Udp { src_port: 53, dst_port: 443 },
        })
    }

    fn pkt_payload(i: u64) -> Vec<u8> {
        let mut out = Vec::new();
        pkt(i).encode_payload(&mut out);
        out
    }

    #[test]
    fn empty_dir_recovers_empty() {
        let dir = tmp("empty");
        let rec = Recorder::new();
        let out = recover(&dir, &rec, |_, _, _| {}).unwrap();
        assert_eq!(out.next_seq, 0);
        assert!(!out.is_sealed());
    }

    #[test]
    fn clean_log_replays_every_frame() {
        let dir = tmp("clean");
        let rec = Recorder::new();
        let mut w = WalWriter::create(&dir, small_cfg(), &rec).unwrap();
        for i in 0..20 {
            w.append(&pkt(i)).unwrap();
        }
        w.commit().unwrap();
        let mut seen = 0u64;
        let out = recover(&dir, &rec, |seq, _, _| {
            assert_eq!(seq, seen);
            seen += 1;
        })
        .unwrap();
        assert_eq!(out.next_seq, 20);
        assert_eq!(seen, 20);
        assert_eq!(out.stats.torn_frames + out.stats.corrupt_frames, 0);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn torn_tail_is_truncated_and_recovery_is_idempotent() {
        let dir = tmp("torn");
        let rec = Recorder::new();
        let mut w = WalWriter::create(&dir, small_cfg(), &rec).unwrap();
        for i in 0..6 {
            w.append(&pkt(i)).unwrap();
        }
        w.commit().unwrap();
        // Tear the final frame by hand: append half a frame to the last
        // segment.
        let segs = segment_paths(&dir).unwrap();
        let (_, last) = segs.last().unwrap();
        let mut raw = fs::read(last).unwrap();
        let mut frame = Vec::new();
        crate::frame::append_frame(&mut frame, 6, &pkt_payload(6));
        raw.extend_from_slice(&frame[..frame.len() / 2]);
        fs::write(last, &raw).unwrap();

        let out1 = recover(&dir, &rec, |_, _, _| {}).unwrap();
        assert_eq!(out1.next_seq, 6);
        assert_eq!(out1.stats.torn_frames, 1);
        assert!(out1.stats.bytes_truncated > 0);

        // Second pass sees a clean log and changes nothing.
        let before: Vec<Vec<u8>> =
            segment_paths(&dir).unwrap().iter().map(|(_, p)| fs::read(p).unwrap()).collect();
        let out2 = recover(&dir, &rec, |_, _, _| {}).unwrap();
        assert_eq!(out2.next_seq, 6);
        assert_eq!(out2.stats.torn_frames, 0);
        assert_eq!(out2.stats.bytes_truncated, 0);
        let after: Vec<Vec<u8>> =
            segment_paths(&dir).unwrap().iter().map(|(_, p)| fs::read(p).unwrap()).collect();
        assert_eq!(before, after, "recovery must be idempotent");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_mid_segment_drops_later_segments() {
        let dir = tmp("corrupt");
        let rec = Recorder::new();
        let mut w = WalWriter::create(&dir, small_cfg(), &rec).unwrap();
        for i in 0..40 {
            w.append(&pkt(i)).unwrap();
        }
        w.commit().unwrap();
        let segs = segment_paths(&dir).unwrap();
        assert!(segs.len() >= 2, "need rotation for this test");
        // Flip a payload byte in the middle of the first segment.
        let (_, first) = &segs[0];
        let mut raw = fs::read(first).unwrap();
        let mid = SEGMENT_HEADER_BYTES + (raw.len() - SEGMENT_HEADER_BYTES) / 2;
        raw[mid] ^= 0x01;
        fs::write(first, &raw).unwrap();

        let out = recover(&dir, &rec, |_, _, _| {}).unwrap();
        assert_eq!(out.stats.corrupt_frames, 1);
        assert!(out.stats.segments_dropped >= 1, "later segments must be dropped");
        assert!(out.next_seq < 40);
        // All surviving state is contiguous from zero.
        let survivors = segment_paths(&dir).unwrap();
        assert_eq!(survivors.len(), 1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_index_is_rebuilt() {
        let dir = tmp("noindex");
        let rec = Recorder::new();
        let mut w = WalWriter::create(&dir, small_cfg(), &rec).unwrap();
        for i in 0..8 {
            w.append(&pkt(i)).unwrap();
        }
        w.commit().unwrap();
        fs::remove_file(crate::segment::index_path(&dir)).unwrap();
        let out = recover(&dir, &rec, |_, _, _| {}).unwrap();
        assert_eq!(out.next_seq, 8);
        assert!(out.stats.index_rebuilt);
        assert!(crate::segment::index_path(&dir).exists());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn seal_counts_only_as_the_very_last_frame() {
        let dir = tmp("seal-last");
        let rec = Recorder::new();
        let mut w = WalWriter::create(&dir, small_cfg(), &rec).unwrap();
        for i in 0..3 {
            w.append(&pkt(i)).unwrap();
        }
        w.seal(RunSeal { generated: 3, delivered: 3, packet_hash: 7, injector: None }).unwrap();
        drop(w);

        // A seal sitting at the tail must survive recovery…
        let sealed = recover(&dir, &rec, |_, _, _| {}).unwrap();
        assert!(sealed.is_sealed(), "tail seal must recover as sealed");
        assert_eq!(sealed.next_seq, 4);

        // …but the identical seal followed by one more valid frame is a
        // lie (the run kept going), and recovery must refuse it.
        let (_, last_seg) = segment_paths(&dir).unwrap().pop().unwrap();
        let mut extra = Vec::new();
        crate::frame::append_frame(&mut extra, sealed.next_seq, &pkt_payload(99));
        use std::io::Write;
        fs::OpenOptions::new().append(true).open(&last_seg).unwrap().write_all(&extra).unwrap();
        let unsealed = recover(&dir, &rec, |_, _, _| {}).unwrap();
        assert!(!unsealed.is_sealed(), "a mid-log seal is not a seal");
        assert_eq!(unsealed.next_seq, 5, "the post-seal frame itself is valid");
        let _ = fs::remove_dir_all(&dir);
    }
}
