//! Property-based tests for the packet substrate.

use ah_net::checksum;
use ah_net::fingerprint::{self, Tool};
use ah_net::icmp::IcmpMessage;
use ah_net::ipv4::{Ipv4Addr4, Ipv4Header};
use ah_net::packet::{PacketMeta, Transport};
use ah_net::pcap::{PcapReader, PcapWriter, DEFAULT_SNAPLEN, LINKTYPE_RAW};
use ah_net::prefix::{Prefix, PrefixMap, PrefixSet};
use ah_net::tcp::{TcpFlags, TcpHeader};
use ah_net::time::Ts;
use ah_net::udp::UdpHeader;
use proptest::prelude::*;

fn arb_addr() -> impl Strategy<Value = Ipv4Addr4> {
    any::<u32>().prop_map(Ipv4Addr4::from_u32)
}

proptest! {
    #[test]
    fn checksum_verifies_any_buffer(mut data in proptest::collection::vec(any::<u8>(), 0..512)) {
        // Appending a correct checksum always verifies — provided the
        // checksum field is 16-bit aligned, as in every real protocol
        // (odd-length payloads are zero-padded before the field).
        if data.len() % 2 == 1 {
            data.push(0);
        }
        let c = checksum::checksum(&data);
        let mut with = data.clone();
        with.extend_from_slice(&c.to_be_bytes());
        prop_assert!(checksum::verify(&with));
    }

    #[test]
    fn checksum_chunking_invariant(
        data in proptest::collection::vec(any::<u8>(), 1..256),
        split in any::<prop::sample::Index>(),
    ) {
        let at = split.index(data.len());
        let mut s = checksum::Sum16::new();
        s.add(&data[..at]);
        s.add(&data[at..]);
        prop_assert_eq!(s.finish(), checksum::checksum(&data));
    }

    #[test]
    fn ipv4_header_roundtrip(
        src in arb_addr(),
        dst in arb_addr(),
        ident in any::<u16>(),
        ttl in any::<u8>(),
        dscp in any::<u8>(),
        proto in any::<u8>(),
        payload_len in 0usize..64,
        df in any::<bool>(),
    ) {
        let mut h = Ipv4Header::probe(src, dst, proto, payload_len);
        h.ident = ident;
        h.ttl = ttl;
        h.dscp_ecn = dscp;
        h.dont_frag = df;
        let mut buf = Vec::new();
        h.emit(&mut buf);
        buf.resize(h.total_len as usize, 0x5a);
        let (parsed, payload) = Ipv4Header::parse(&buf).unwrap();
        prop_assert_eq!(parsed, h);
        prop_assert_eq!(payload.len(), payload_len);
    }

    #[test]
    fn tcp_header_roundtrip(
        src in arb_addr(),
        dst in arb_addr(),
        sp in any::<u16>(),
        dp in any::<u16>(),
        seq in any::<u32>(),
        ack in any::<u32>(),
        flags in any::<u8>(),
        window in any::<u16>(),
        payload in proptest::collection::vec(any::<u8>(), 0..64),
    ) {
        let h = TcpHeader {
            src_port: sp, dst_port: dp, seq, ack,
            flags: TcpFlags(flags), window, urgent: 0, options: Vec::new(),
        };
        let mut buf = Vec::new();
        h.emit(src, dst, &payload, &mut buf);
        let (parsed, got) = TcpHeader::parse(&buf, Some((src, dst))).unwrap();
        prop_assert_eq!(parsed, h);
        prop_assert_eq!(got, &payload[..]);
    }

    #[test]
    fn udp_header_roundtrip(
        src in arb_addr(),
        dst in arb_addr(),
        sp in any::<u16>(),
        dp in any::<u16>(),
        payload in proptest::collection::vec(any::<u8>(), 0..64),
    ) {
        let h = UdpHeader::new(sp, dp, payload.len());
        let mut buf = Vec::new();
        h.emit(src, dst, &payload, &mut buf);
        let (parsed, got) = UdpHeader::parse(&buf, Some((src, dst))).unwrap();
        prop_assert_eq!(parsed, h);
        prop_assert_eq!(got, &payload[..]);
    }

    #[test]
    fn icmp_roundtrip(
        t in any::<u8>(),
        code in any::<u8>(),
        ident in any::<u16>(),
        seq in any::<u16>(),
        payload in proptest::collection::vec(any::<u8>(), 0..64),
    ) {
        let m = IcmpMessage { icmp_type: t, code, ident, seq, payload };
        let mut buf = Vec::new();
        m.emit(&mut buf);
        prop_assert_eq!(IcmpMessage::parse(&buf).unwrap(), m);
    }

    #[test]
    fn packet_meta_wire_roundtrip(
        src in arb_addr(),
        dst in arb_addr(),
        ip_id in any::<u16>(),
        sp in any::<u16>(),
        dp in any::<u16>(),
        seq in any::<u32>(),
        kind in 0u8..3,
        ts in any::<u32>(),
    ) {
        let ts = Ts::from_micros(u64::from(ts));
        let mut m = match kind {
            0 => {
                let mut m = PacketMeta::tcp_syn(ts, src, dst, sp, dp);
                if let Transport::Tcp { seq: ref mut s, .. } = m.transport { *s = seq; }
                m
            }
            1 => PacketMeta::udp_probe(ts, src, dst, sp, dp),
            _ => PacketMeta::icmp_echo(ts, src, dst),
        };
        m.ip_id = ip_id;
        let parsed = PacketMeta::parse_ip(&m.to_bytes(), ts).unwrap();
        prop_assert_eq!(parsed, m);
    }

    #[test]
    fn truncated_packets_never_panic(
        src in arb_addr(),
        dst in arb_addr(),
        cut in any::<prop::sample::Index>(),
    ) {
        let m = PacketMeta::tcp_syn(Ts::ZERO, src, dst, 40000, 443);
        let bytes = m.to_bytes();
        let at = cut.index(bytes.len());
        // Must return an error or a valid packet, never panic.
        let _ = PacketMeta::parse_ip(&bytes[..at], Ts::ZERO);
    }

    #[test]
    fn corrupted_packets_never_panic(
        src in arb_addr(),
        dst in arb_addr(),
        idx in any::<prop::sample::Index>(),
        bit in 0u8..8,
    ) {
        let m = PacketMeta::udp_probe(Ts::ZERO, src, dst, 53, 53);
        let mut bytes = m.to_bytes();
        let at = idx.index(bytes.len());
        bytes[at] ^= 1 << bit;
        let _ = PacketMeta::parse_ip(&bytes, Ts::ZERO);
    }

    #[test]
    fn prefix_set_matches_naive_model(
        prefixes in proptest::collection::vec((any::<u32>(), 8u8..=32), 1..20),
        probes in proptest::collection::vec(any::<u32>(), 50),
    ) {
        let prefixes: Vec<Prefix> = prefixes
            .into_iter()
            .map(|(a, l)| Prefix::new(Ipv4Addr4(a), l).unwrap())
            .collect();
        let set = PrefixSet::from_prefixes(prefixes.clone());
        for probe in probes {
            let addr = Ipv4Addr4(probe);
            let naive = prefixes.iter().any(|p| p.contains(addr));
            prop_assert_eq!(set.contains(addr), naive, "addr {}", addr);
        }
        // Members of every prefix are always contained.
        for p in &prefixes {
            prop_assert!(set.contains(p.first()));
            prop_assert!(set.contains(p.last()));
        }
    }

    #[test]
    fn prefix_map_matches_naive_lpm(
        entries in proptest::collection::vec((any::<u32>(), 8u8..=28), 1..16),
        probes in proptest::collection::vec(any::<u32>(), 30),
    ) {
        let mut map = PrefixMap::new();
        let mut naive: Vec<(Prefix, usize)> = Vec::new();
        for (i, (a, l)) in entries.iter().enumerate() {
            let p = Prefix::new(Ipv4Addr4(*a), *l).unwrap();
            map.insert(p, i);
            naive.retain(|(q, _)| *q != p);
            naive.push((p, i));
        }
        for probe in probes {
            let addr = Ipv4Addr4(probe);
            let expect = naive
                .iter()
                .filter(|(p, _)| p.contains(addr))
                .max_by_key(|(p, _)| p.len)
                .map(|(_, v)| *v);
            prop_assert_eq!(map.lookup(addr).copied(), expect);
        }
    }

    #[test]
    fn pcap_roundtrip_any_payload(
        packets in proptest::collection::vec(
            (any::<u32>(), proptest::collection::vec(any::<u8>(), 0..128)),
            0..20,
        ),
    ) {
        let mut buf = Vec::new();
        let mut w = PcapWriter::new(&mut buf, LINKTYPE_RAW, DEFAULT_SNAPLEN).unwrap();
        for (ts, data) in &packets {
            w.write_packet(Ts::from_micros(u64::from(*ts)), data).unwrap();
        }
        w.finish().unwrap();
        let got: Vec<_> = PcapReader::new(&buf[..]).unwrap().records().map(|r| r.unwrap()).collect();
        prop_assert_eq!(got.len(), packets.len());
        for (rec, (ts, data)) in got.iter().zip(&packets) {
            prop_assert_eq!(rec.ts, Ts::from_micros(u64::from(*ts)));
            prop_assert_eq!(&rec.data, data);
        }
    }

    #[test]
    fn masscan_fingerprint_self_consistent(
        src in arb_addr(),
        dst in arb_addr(),
        dp in any::<u16>(),
        seq in any::<u32>(),
    ) {
        // A generator that stamps the masscan cookie is always classified
        // Masscan (unless it collides with ZMap's constant or Mirai's rule,
        // which are checked first).
        let mut m = PacketMeta::tcp_syn(Ts::ZERO, src, dst, 61000, dp);
        if let Transport::Tcp { seq: ref mut s, .. } = m.transport { *s = seq; }
        m.ip_id = fingerprint::masscan_ip_id(dst, dp, seq);
        let tool = fingerprint::classify(&m);
        if m.ip_id == fingerprint::ZMAP_IP_ID {
            prop_assert_eq!(tool, Tool::ZMap);
        } else if seq == dst.to_u32() {
            prop_assert_eq!(tool, Tool::Mirai);
        } else {
            prop_assert_eq!(tool, Tool::Masscan);
        }
    }
}

proptest! {
    /// pcapng roundtrips arbitrary payloads and timestamps, mirroring the
    /// classic-pcap property above.
    #[test]
    fn pcapng_roundtrip_any_payload(
        packets in proptest::collection::vec(
            (any::<u64>(), proptest::collection::vec(any::<u8>(), 0..128)),
            0..20,
        ),
    ) {
        use ah_net::pcapng::{PcapNgReader, PcapNgWriter};
        let mut buf = Vec::new();
        let mut w = PcapNgWriter::new(&mut buf, 101, 65_535).unwrap();
        for (ts, data) in &packets {
            w.write_packet(Ts::from_micros(*ts), data).unwrap();
        }
        w.finish().unwrap();
        let got: Vec<_> = PcapNgReader::new(&buf[..])
            .unwrap()
            .packets()
            .map(|p| p.unwrap())
            .collect();
        prop_assert_eq!(got.len(), packets.len());
        for (rec, (ts, data)) in got.iter().zip(&packets) {
            prop_assert_eq!(rec.ts, Ts::from_micros(*ts));
            prop_assert_eq!(&rec.data, data);
        }
    }

    /// Truncating a valid pcap stream of real packets at ANY offset never
    /// panics the reader or the packet parser — the whole byte path is
    /// total. Mirrors what the fault injector's `truncate` category does
    /// to capture files.
    #[test]
    fn pcap_stream_truncation_is_total(
        srcs in proptest::collection::vec(any::<u32>(), 1..8),
        cut in any::<prop::sample::Index>(),
    ) {
        let mut buf = Vec::new();
        let mut w = PcapWriter::new(&mut buf, LINKTYPE_RAW, DEFAULT_SNAPLEN).unwrap();
        for (i, s) in srcs.iter().enumerate() {
            let ts = Ts::from_micros(i as u64 * 1000);
            let m = PacketMeta::tcp_syn(ts, Ipv4Addr4(*s), Ipv4Addr4(!*s), 40000, 443);
            w.write_packet(ts, &m.to_bytes()).unwrap();
        }
        w.finish().unwrap();
        let at = cut.index(buf.len() + 1);
        if let Ok(r) = PcapReader::new(&buf[..at]) {
            for (n, rec) in r.records().enumerate() {
                prop_assert!(n <= srcs.len(), "reader must terminate");
                let Ok(rec) = rec else { break };
                // Whatever the reader yields must parse or error cleanly.
                let _ = PacketMeta::parse_ip(&rec.data, rec.ts);
            }
        }
    }

    /// Flipping any single bit of a valid pcap stream never panics the
    /// reader or the packet parser.
    #[test]
    fn pcap_stream_bitflip_is_total(
        srcs in proptest::collection::vec(any::<u32>(), 1..8),
        idx in any::<prop::sample::Index>(),
        bit in 0u8..8,
    ) {
        let mut buf = Vec::new();
        let mut w = PcapWriter::new(&mut buf, LINKTYPE_RAW, DEFAULT_SNAPLEN).unwrap();
        for (i, s) in srcs.iter().enumerate() {
            let ts = Ts::from_micros(i as u64 * 1000);
            let m = PacketMeta::udp_probe(ts, Ipv4Addr4(*s), Ipv4Addr4(!*s), 53, 53);
            w.write_packet(ts, &m.to_bytes()).unwrap();
        }
        w.finish().unwrap();
        let at = idx.index(buf.len());
        buf[at] ^= 1 << bit;
        if let Ok(r) = PcapReader::new(&buf[..]) {
            for (n, rec) in r.records().enumerate() {
                // A flipped length field may yield bogus records, but the
                // reader must stay bounded by the stream it was given.
                prop_assert!(n <= srcs.len() + 1, "reader must terminate");
                let Ok(rec) = rec else { break };
                let _ = PacketMeta::parse_ip(&rec.data, rec.ts);
            }
        }
    }

    /// Single-byte corruption of a pcapng file never panics the reader.
    #[test]
    fn pcapng_reader_total_under_corruption(
        idx in any::<prop::sample::Index>(),
        bit in 0u8..8,
    ) {
        use ah_net::pcapng::{PcapNgReader, PcapNgWriter};
        let mut buf = Vec::new();
        let mut w = PcapNgWriter::new(&mut buf, 101, 65_535).unwrap();
        for i in 0..4u64 {
            w.write_packet(Ts::from_secs(i), &[1, 2, 3, 4, 5, 6]).unwrap();
        }
        w.finish().unwrap();
        let at = idx.index(buf.len());
        buf[at] ^= 1 << bit;
        if let Ok(r) = PcapNgReader::new(&buf[..]) {
            // Drain until error or EOF; must not panic or loop forever.
            for (n, p) in r.packets().enumerate() {
                if p.is_err() || n > 100 {
                    break;
                }
            }
        }
    }
}
