//! Threat-intelligence substrate.
//!
//! Everything the paper joins its hitter lists against that is *metadata
//! about IPs* rather than traffic:
//!
//! * [`asn`] — an IP → (ASN, organization, AS type, country) registry
//!   with longest-prefix matching, used for the origin tables;
//! * [`acked`] — the "Acknowledged Scanners" list: research organizations
//!   that disclose their scanning, matched by exact IP or by reverse-DNS
//!   keyword (the paper's two-stage match, Table 6);
//! * [`rdns`] — a reverse-DNS table and keyword matcher;
//! * [`greynoise`] — a GreyNoise-style distributed honeypot: sensors
//!   placed around the address space, per-source behavioral profiles, a
//!   rule-based tagger emitting the paper's tag vocabulary (Table 9),
//!   and benign/malicious/unknown classification (Figure 6 left).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod acked;
pub mod asn;
pub mod greynoise;
pub mod rdns;

pub use acked::{AckedMatch, AckedScanners};
pub use asn::{AsInfo, AsType, AsnDb, CountryCode};
pub use greynoise::{GnClassification, GreyNoise, IngestStats};
pub use rdns::RdnsTable;
