//! Write-ahead log throughput: the append path (group-committed,
//! CRC-framed, fsync'd), the recovery scanner, and the end-to-end payoff
//! — replaying a sealed log instead of re-simulating the world.
//!
//! Besides the Criterion measurements, the bench writes a
//! machine-readable summary (`BENCH_wal.json`, or the path in
//! `$BENCH_WAL_OUT`) with append MB/s and frames/s, recovery-scan
//! throughput and post-crash recovery time at two log sizes, and the
//! wall-clock of a durable pipeline run vs a replay of its log — the
//! numbers behind the replay table in `EXPERIMENTS.md`.

use aggressive_scanners::pipeline::{self, RunOptions, Telemetry, WalRun};
use ah_net::ipv4::Ipv4Addr4;
use ah_net::packet::PacketMeta;
use ah_net::time::Ts;
use ah_obs::Recorder;
use ah_simnet::scenario::{ScenarioConfig, Year};
use ah_wal::record::WalRecord;
use ah_wal::{recover, RunSeal, WalWriter, WalWriterConfig};
use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use std::path::{Path, PathBuf};
use std::time::Instant;

const SEED: u64 = 42;
const PIPELINE_DAYS: u64 = 2;

/// A representative delivered packet (the dominant record kind).
fn sample_packet(i: u64) -> PacketMeta {
    let mut m = PacketMeta::udp_probe(
        Ts::from_micros(i * 37),
        Ipv4Addr4::from_u32(0x0a00_0000 | (i as u32 & 0xffff)),
        Ipv4Addr4::from_u32(0xc000_0200 | (i as u32 & 0xff)),
        40_000 + (i as u16 & 0x3fff),
        (i as u16).wrapping_mul(251) | 1,
    );
    m.ip_id = i as u16;
    m
}

/// Fresh scratch directory, unique per label within this process.
fn bench_dir(label: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ah-wal-bench-{label}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Append `frames` packet records to a fresh log; returns bytes on disk.
fn write_log(dir: &Path, frames: u64, sealed: bool) -> u64 {
    let rec = Recorder::new();
    let mut w = WalWriter::create(dir, WalWriterConfig::default(), &rec).expect("create log");
    for i in 0..frames {
        w.append(&WalRecord::Packet(sample_packet(i))).expect("append");
    }
    if sealed {
        w.seal(RunSeal { generated: frames, delivered: frames, packet_hash: 0, injector: None })
            .expect("seal");
    } else {
        w.commit().expect("commit");
    }
    dir_bytes(dir)
}

fn dir_bytes(dir: &Path) -> u64 {
    std::fs::read_dir(dir)
        .expect("read dir")
        .map(|e| e.expect("entry").metadata().expect("stat").len())
        .sum()
}

/// Copy a log directory so destructive recovery can run on a clone.
fn clone_dir(src: &Path, dst: &Path) {
    let _ = std::fs::remove_dir_all(dst);
    std::fs::create_dir_all(dst).expect("mkdir");
    for e in std::fs::read_dir(src).expect("read dir") {
        let e = e.expect("entry");
        std::fs::copy(e.path(), dst.join(e.file_name())).expect("copy");
    }
}

/// Tear the newest segment mid-frame, like a crash during a write.
fn tear_tail(dir: &Path) {
    let segs = ah_wal::segment_paths(dir).expect("segments");
    let (_, last) = segs.last().expect("non-empty log");
    let len = std::fs::metadata(last).expect("stat").len();
    let f = std::fs::OpenOptions::new().write(true).open(last).expect("open");
    f.set_len(len - 7).expect("truncate");
}

fn bench_wal(c: &mut Criterion) {
    const N: u64 = 10_000;
    let mut g = c.benchmark_group("wal");
    g.sample_size(10);
    g.throughput(Throughput::Elements(N));
    let dir = bench_dir("criterion-append");
    g.bench_function("append_10k", |b| {
        b.iter(|| {
            let _ = std::fs::remove_dir_all(&dir);
            black_box(write_log(&dir, N, false))
        })
    });
    let scan = bench_dir("criterion-scan");
    write_log(&scan, N, true);
    g.bench_function("recover_scan_10k", |b| {
        b.iter(|| {
            let mut frames = 0u64;
            recover(&scan, &Recorder::new(), |_, _, _| frames += 1).expect("recover");
            black_box(frames)
        })
    });
    g.finish();
    let _ = std::fs::remove_dir_all(&dir);
    let _ = std::fs::remove_dir_all(&scan);
    write_summary();
}

/// The commit the numbers were measured at: `$GIT_COMMIT` if the harness
/// (scripts/bench.sh) exported it, else `git rev-parse`, else "unknown".
fn git_commit() -> String {
    if let Ok(c) = std::env::var("GIT_COMMIT") {
        if !c.is_empty() {
            return c;
        }
    }
    std::process::Command::new("git")
        .args(["rev-parse", "--short=12", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .map(|o| String::from_utf8_lossy(&o.stdout).trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

fn best_of_three(mut f: impl FnMut()) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..3 {
        let t0 = Instant::now();
        f();
        best = best.min(t0.elapsed().as_secs_f64());
    }
    best
}

/// Best-of-three wall clocks for every headline number, written as JSON.
fn write_summary() {
    let wall0 = Instant::now();
    let host_cpus = std::thread::available_parallelism().map_or(1, |n| n.get());

    // Append and scan throughput at two log sizes, plus recovery time
    // after a torn final write (the crash case the CI gate drills).
    let mut size_lines = Vec::new();
    for frames in [50_000u64, 200_000] {
        let dir = bench_dir(&format!("sum-{frames}"));
        let mut bytes = 0;
        let append_secs = best_of_three(|| {
            let _ = std::fs::remove_dir_all(&dir);
            bytes = write_log(&dir, frames, true);
        });
        let scan_secs = best_of_three(|| {
            let mut n = 0u64;
            recover(&dir, &Recorder::new(), |_, _, _| n += 1).expect("recover");
            black_box(n);
        });
        let damaged = bench_dir(&format!("sum-{frames}-torn"));
        let recovery_secs = best_of_three(|| {
            clone_dir(&dir, &damaged);
            tear_tail(&damaged);
            recover(&damaged, &Recorder::new(), |_, _, _| {}).expect("recover damaged");
        });
        let mb = bytes as f64 / 1e6;
        eprintln!(
            "[bench] {frames} frames ({mb:.1} MB): append {:.0} fps / {:.1} MB/s, \
             scan {:.0} fps, torn-tail recovery {:.3}s",
            frames as f64 / append_secs,
            mb / append_secs,
            frames as f64 / scan_secs,
            recovery_secs,
        );
        size_lines.push(format!(
            concat!(
                "    {{\"frames\": {}, \"bytes\": {}, \"append_seconds\": {:.6}, ",
                "\"append_frames_per_sec\": {:.1}, \"append_mb_per_sec\": {:.2}, ",
                "\"scan_seconds\": {:.6}, \"scan_frames_per_sec\": {:.1}, ",
                "\"torn_tail_recovery_seconds\": {:.6}}}"
            ),
            frames,
            bytes,
            append_secs,
            frames as f64 / append_secs,
            mb / append_secs,
            scan_secs,
            frames as f64 / scan_secs,
            recovery_secs,
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let _ = std::fs::remove_dir_all(&damaged);
    }

    // The payoff: a durable pipeline run vs replaying its sealed log vs
    // a plain in-memory run. A real darknet scenario (not the tiny test
    // world) so simulation cost dominates and the comparison matches the
    // `daily_blocklist` example's workload.
    let cfg = || ScenarioConfig::darknet(Year::Y2022, PIPELINE_DAYS, SEED);
    let mut tel = Telemetry::disabled();
    let plain_secs = best_of_three(|| {
        black_box(pipeline::run(cfg(), RunOptions::darknet_only()));
    });
    let wal_live = bench_dir("sum-pipeline");
    let mut delivered = 0u64;
    let live_secs = best_of_three(|| {
        let _ = std::fs::remove_dir_all(&wal_live);
        let out =
            pipeline::run_wal(cfg(), RunOptions::darknet_only(), &WalRun::new(&wal_live), &mut tel)
                .expect("durable run")
                .completed()
                .expect("no suspension points");
        delivered = out.capture.total_packets;
        black_box(out);
    });
    let replay_secs = best_of_three(|| {
        black_box(
            pipeline::replay_wal(cfg(), RunOptions::darknet_only(), &wal_live, &mut tel)
                .expect("replay"),
        );
    });
    let log_bytes = dir_bytes(&wal_live);
    let _ = std::fs::remove_dir_all(&wal_live);

    // One accounted durable run: where does the WAL path put its
    // memory, and what does the whole process peak at? The window is
    // rebased first so peaks describe this run alone.
    ah_mem::set_accounting(true);
    ah_mem::reset_window();
    let wal_mem = bench_dir("sum-mem");
    let mut tel_mem = Telemetry::disabled().with_mem(100_000);
    let t0 = Instant::now();
    let out =
        pipeline::run_wal(cfg(), RunOptions::darknet_only(), &WalRun::new(&wal_mem), &mut tel_mem)
            .expect("accounted durable run")
            .completed()
            .expect("no suspension points");
    let mem_secs = t0.elapsed().as_secs_f64();
    let mem_report = out.mem.clone().unwrap_or_default();
    black_box(out);
    ah_mem::set_accounting(false);
    let _ = std::fs::remove_dir_all(&wal_mem);
    eprintln!(
        "[bench] accounted durable run: {mem_secs:.3}s, peak rss {} bytes",
        mem_report.peak_rss_bytes()
    );
    let tag_peaks: Vec<String> =
        mem_report.tags().map(|(tag, s)| format!("\"{}\": {}", tag.name(), s.peak_bytes)).collect();
    eprintln!(
        "[bench] pipeline darknet({PIPELINE_DAYS}d): plain {plain_secs:.3}s, durable \
         {live_secs:.3}s ({:+.1}% overhead), replay {replay_secs:.3}s ({:.2}x faster than \
         re-simulating)",
        (live_secs / plain_secs - 1.0) * 100.0,
        plain_secs / replay_secs,
    );

    let json = format!(
        "{{\n  \"bench\": \"wal\",\n  \"git_commit\": \"{}\",\n  \"host_cpus\": {host_cpus},\n  \
         \"wall_seconds\": {:.3},\n  \"log_sizes\": [\n{}\n  ],\n  \
         \"pipeline\": {{\"scenario\": \"darknet-2022({PIPELINE_DAYS} days, seed {SEED})\", \
         \"captured_packets\": {delivered}, \"log_bytes\": {log_bytes}, \
         \"plain_seconds\": {plain_secs:.6}, \"durable_seconds\": {live_secs:.6}, \
         \"replay_seconds\": {replay_secs:.6}, \"durable_overhead_pct\": {:.2}, \
         \"replay_speedup_vs_simulate\": {:.3}}},\n  \
         \"memory\": {{\"accounted_durable_seconds\": {mem_secs:.6}, \
         \"peak_rss_bytes\": {}, \"global_peak_live_bytes\": {}, \
         \"tag_peak_bytes\": {{{}}}}}\n}}\n",
        git_commit(),
        wall0.elapsed().as_secs_f64(),
        size_lines.join(",\n"),
        (live_secs / plain_secs - 1.0) * 100.0,
        plain_secs / replay_secs,
        mem_report.peak_rss_bytes(),
        mem_report.global.peak_bytes,
        tag_peaks.join(", "),
    );
    let path = std::env::var("BENCH_WAL_OUT").unwrap_or_else(|_| "BENCH_wal.json".to_string());
    match std::fs::write(&path, &json) {
        Ok(()) => eprintln!("[bench] wrote {path}"),
        Err(e) => eprintln!("[bench] could not write {path}: {e}"),
    }
}

criterion_group!(benches, bench_wal);
criterion_main!(benches);
