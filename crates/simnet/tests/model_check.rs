//! Exhaustive model checking of both rings' publication protocols.
//!
//! The production ring code — the SPSC fan-out ring in
//! `ah_simnet::ring` *and* the MPSC merge ring in `ah_simnet::mpsc` —
//! is generic over the [`RingSync`] facade; here the *same* generic
//! code is instantiated over the `interleave` checker's shadow atomics
//! and explored exhaustively (within the preemption and store-buffer
//! bounds) at tiny capacities:
//!
//! * each real contract (all the default orderings) is proved clean at
//!   capacities 2 and 4 — two threads for SPSC, two producers plus the
//!   consumer for MPSC — with wrap, back-pressure, batched
//!   publication/reservation, and the close/drain handshake all
//!   exercised;
//! * seeded mutants — demoting one `Release`/`Acquire` in the facade
//!   to `Relaxed` — must each be *caught*, with the counterexample
//!   schedule printed, proving the checker has the power to reject
//!   every ordering each contract actually relies on.
//!
//! The checker is CPU-hungry (thousands of schedules, each a full
//! virtual-threaded execution), so capacities stay tiny; both
//! protocols are capacity-oblivious (masked monotone counters /
//! sequence generations), so the small instances carry the proof. See
//! `ARCHITECTURE.md` §9 and §11.
//
// ah-lint: allow-file(panic-path, reason = "test code: assertions and expects are the test oracle")
// ah-lint: allow-file(atomic-ordering, reason = "test code: the mutant facades deliberately name forbidden orderings to prove the checker rejects them")

use std::mem::MaybeUninit;
use std::sync::atomic::Ordering;

use ah_simnet::mpsc::mpsc_with;
use ah_simnet::ring::{ring_with, RingAtomicBool, RingAtomicUsize, RingSlot, RingSync};
use interleave::{shadow, Checker, FailureKind, Outcome};

/// Shadow-atomic `usize` bridged onto the ring facade.
struct MAtomicUsize(shadow::AtomicUsize);

impl RingAtomicUsize for MAtomicUsize {
    fn new(v: usize) -> MAtomicUsize {
        MAtomicUsize(shadow::AtomicUsize::new(v))
    }

    fn load(&self, ord: Ordering) -> usize {
        self.0.load(ord)
    }

    fn store(&self, v: usize, ord: Ordering) {
        self.0.store(v, ord);
    }

    fn fetch_add(&self, v: usize, ord: Ordering) -> usize {
        self.0.fetch_add(v, ord)
    }

    fn compare_exchange(
        &self,
        current: usize,
        new: usize,
        success: Ordering,
        failure: Ordering,
    ) -> Result<usize, usize> {
        self.0.compare_exchange(current, new, success, failure)
    }

    fn unsync_load(&mut self) -> usize {
        self.0.unsync_load()
    }
}

/// Shadow-atomic `bool` bridged onto the ring facade.
struct MAtomicBool(shadow::AtomicBool);

impl RingAtomicBool for MAtomicBool {
    fn new(v: bool) -> MAtomicBool {
        MAtomicBool(shadow::AtomicBool::new(v))
    }

    fn load(&self, ord: Ordering) -> bool {
        self.0.load(ord)
    }

    fn store(&self, v: bool, ord: Ordering) {
        self.0.store(v, ord);
    }
}

/// Race-checked plain-memory slot: every access is recorded in the
/// checker's vector-clock race detector, so a slot touched without a
/// happens-before edge from its previous user is a reported data race
/// — exactly the property the cursor protocol must provide.
struct MSlot<T>(shadow::Cell<MaybeUninit<T>>);

impl<T: Send> RingSlot<T> for MSlot<T> {
    fn vacant() -> MSlot<T> {
        MSlot(shadow::Cell::new(MaybeUninit::uninit()))
    }

    unsafe fn write(&self, v: T) {
        // SAFETY: caller contract (sole producer-side access, vacant slot).
        self.0.with_mut(|p| unsafe { (*p).write(v) });
    }

    unsafe fn take(&self) -> T {
        // Moving the value out invalidates the slot: a write for the
        // race detector.
        // SAFETY: caller contract (sole consumer-side access, occupied).
        self.0.with_mut(|p| unsafe { (*p).assume_init_read() })
    }

    unsafe fn drop_in_place(&self) {
        // SAFETY: caller contract (exclusive teardown access, occupied).
        self.0.with_mut(|p| unsafe { (*p).assume_init_drop() });
    }
}

/// Define a model facade. With no overrides this is the production
/// contract verbatim (the `RingSync` defaults); each override creates
/// a seeded ordering mutant the checker must refute.
macro_rules! model_sync {
    ($(#[$doc:meta])* $name:ident $(, $konst:ident = $val:expr)*) => {
        $(#[$doc])*
        struct $name;

        impl RingSync for $name {
            type AtomicUsize = MAtomicUsize;
            type AtomicBool = MAtomicBool;
            type Slot<T: Send> = MSlot<T>;
            $(const $konst: Ordering = $val;)*

            fn spin_loop() {
                shadow::hint::spin_loop();
            }

            fn yield_now() {
                shadow::yield_now();
            }
        }
    };
}

model_sync!(
    /// The production contract, unmodified.
    ModelSync
);
model_sync!(
    /// Mutant: tail published without Release — slot writes unprotected.
    TailPublishRelaxed,
    TAIL_PUBLISH = Ordering::Relaxed
);
model_sync!(
    /// Mutant: consumer observes tail without Acquire.
    TailObserveRelaxed,
    TAIL_OBSERVE = Ordering::Relaxed
);
model_sync!(
    /// Mutant: producer refreshes head without Acquire — slot reuse
    /// unordered after the consumer's read.
    HeadObserveRelaxed,
    HEAD_OBSERVE = Ordering::Relaxed
);
model_sync!(
    /// Mutant: consumer publishes head without Release.
    HeadPublishRelaxed,
    HEAD_PUBLISH = Ordering::Relaxed
);
model_sync!(
    /// Mutant: close flag observed without Acquire — the post-close
    /// re-check may miss the final flush (lost items).
    ClosedObserveRelaxed,
    CLOSED_OBSERVE = Ordering::Relaxed
);
model_sync!(
    /// Mutant: close flag published without Release — same lost-flush
    /// bug from the producer side.
    ClosedPublishRelaxed,
    CLOSED_PUBLISH = Ordering::Relaxed
);

/// The full producer/consumer lifecycle on the real ring code: one
/// producer virtual thread pushes `n` items (spinning through
/// back-pressure), flushes via batching and `close`; the main virtual
/// thread drains with `pop_wait` until end-of-stream. The oracle is
/// exact FIFO completeness — any lost, duplicated, or reordered item
/// panics, any unprotected slot access is a data race, any lost close
/// wakeup is a deadlock.
fn spsc_lifecycle<S: RingSync>(capacity: usize, n: u64, batch: usize) {
    let (mut tx, mut rx) = ring_with::<S, u64>(capacity, batch);
    let producer = shadow::thread::spawn(move || {
        for i in 0..n {
            tx.push(i);
        }
        tx.close();
    });
    let mut got = Vec::new();
    while let Some(v) = rx.pop_wait() {
        got.push(v);
    }
    producer.join();
    assert_eq!(got, (0..n).collect::<Vec<_>>(), "items lost, duplicated, or reordered");
}

fn check<S: RingSync>(capacity: usize, n: u64, batch: usize) -> Outcome {
    Checker::new().check(move || spsc_lifecycle::<S>(capacity, n, batch))
}

/// A mutant must be refuted, and the counterexample must be a real
/// replayable artifact: a non-empty schedule plus an operation log.
fn assert_caught(name: &str, outcome: Outcome, expect: &[FailureKind]) {
    let failure = outcome
        .failure
        .unwrap_or_else(|| panic!("mutant {name} survived {} schedules", outcome.schedules));
    println!("mutant {name}: caught after {} schedules\n{failure}", outcome.schedules);
    assert!(
        expect.contains(&failure.kind),
        "mutant {name}: expected one of {expect:?}, got {:?}: {}",
        failure.kind,
        failure.message
    );
    assert!(!failure.schedule.is_empty(), "counterexample must carry a schedule");
    assert!(!failure.oplog.is_empty(), "counterexample must carry an op log");
}

// ---------------------------------------------------------------- real ring

#[test]
fn real_ring_is_clean_capacity_2() {
    // Capacity 2, three items, batch 2: exercises wrap, a full-ring
    // spin on the producer side, batch publication, and the close
    // handshake publishing the final unbatched item.
    let outcome = check::<ModelSync>(2, 3, 2);
    outcome.assert_exhaustive_clean();
    println!("capacity 2: clean across {} schedules", outcome.schedules);
    assert!(outcome.schedules > 100, "state space implausibly small");
}

#[test]
#[cfg_attr(debug_assertions, ignore = "exhaustive run is release-only; scripts/ci.sh runs it")]
fn real_ring_is_clean_capacity_2_unbatched() {
    // Batch 1 publishes every push: different publication cadence,
    // same contract.
    let outcome = check::<ModelSync>(2, 3, 1);
    outcome.assert_exhaustive_clean();
    println!("capacity 2 unbatched: clean across {} schedules", outcome.schedules);
}

#[test]
#[cfg_attr(debug_assertions, ignore = "exhaustive run is release-only; scripts/ci.sh runs it")]
fn real_ring_is_clean_capacity_4() {
    // Capacity 4, five items, batch 3: wrap plus a batch boundary that
    // does not divide the item count, so close() flushes a remainder.
    let outcome = check::<ModelSync>(4, 5, 3);
    outcome.assert_exhaustive_clean();
    println!("capacity 4: clean across {} schedules", outcome.schedules);
}

// ------------------------------------------------------------------ mutants

#[test]
fn mutant_tail_publish_relaxed_is_caught() {
    // Without Release on the tail store, the consumer's slot read is
    // unordered after the producer's slot write: a data race.
    assert_caught(
        "TAIL_PUBLISH=Relaxed",
        check::<TailPublishRelaxed>(2, 3, 2),
        &[FailureKind::DataRace],
    );
}

#[test]
fn mutant_tail_observe_relaxed_is_caught() {
    assert_caught(
        "TAIL_OBSERVE=Relaxed",
        check::<TailObserveRelaxed>(2, 3, 2),
        &[FailureKind::DataRace],
    );
}

#[test]
fn mutant_head_observe_relaxed_is_caught() {
    // Without Acquire on the head refresh, the producer may reuse a
    // slot with no happens-before edge from the consumer's read of it.
    assert_caught(
        "HEAD_OBSERVE=Relaxed",
        check::<HeadObserveRelaxed>(2, 3, 2),
        &[FailureKind::DataRace],
    );
}

#[test]
fn mutant_head_publish_relaxed_is_caught() {
    assert_caught(
        "HEAD_PUBLISH=Relaxed",
        check::<HeadPublishRelaxed>(2, 3, 2),
        &[FailureKind::DataRace],
    );
}

#[test]
fn mutant_closed_observe_relaxed_is_caught() {
    // Without Acquire on the close-flag load, the post-close re-check
    // may read a stale tail and drop the final flush: lost items (the
    // FIFO assertion fires) — or, depending on the interleaving, an
    // unordered touch of the flushed slot (a race). Either way the
    // mutant must not survive.
    assert_caught(
        "CLOSED_OBSERVE=Relaxed",
        check::<ClosedObserveRelaxed>(2, 3, 2),
        &[FailureKind::Panic, FailureKind::DataRace],
    );
}

#[test]
fn mutant_closed_publish_relaxed_is_caught() {
    assert_caught(
        "CLOSED_PUBLISH=Relaxed",
        check::<ClosedPublishRelaxed>(2, 3, 2),
        &[FailureKind::Panic, FailureKind::DataRace],
    );
}

// ============================================================== MPSC ring ==

model_sync!(
    /// Mutant: slot sequence published without Release after the data
    /// write — the consumer's take is unordered after the write.
    SeqPublishRelaxed,
    SEQ_PUBLISH = Ordering::Relaxed
);
model_sync!(
    /// Mutant: consumer observes the slot sequence without Acquire —
    /// no happens-before edge from the producer's data write.
    SeqObserveRelaxed,
    SEQ_OBSERVE = Ordering::Relaxed
);
model_sync!(
    /// Mutant: consumer recycles the slot sequence without Release —
    /// the next producer's write is unordered after the take.
    RecyclePublishRelaxed,
    RECYCLE_PUBLISH = Ordering::Relaxed
);
model_sync!(
    /// Mutant: producer probes slot availability without Acquire —
    /// slot reuse unordered after the consumer's read of it.
    RecycleObserveRelaxed,
    RECYCLE_OBSERVE = Ordering::Relaxed
);
model_sync!(
    /// Mutant: close counter observed without Acquire — the post-close
    /// re-check may miss a final flush (lost items) or touch a slot
    /// with no edge from the closing producer.
    MpscClosedObserveRelaxed,
    CLOSED_OBSERVE = Ordering::Relaxed
);
model_sync!(
    /// Mutant: close counter bumped without Release — same lost-flush
    /// bug from the producer side.
    MpscClosedPublishRelaxed,
    CLOSED_PUBLISH = Ordering::Relaxed
);

/// The full multi-producer lifecycle on the real MPSC code: each of
/// `producers` virtual threads pushes `n` tagged items (spinning
/// through back-pressure inside `flush`), then closes; the main
/// virtual thread drains with `pop_wait` until the counted close.
/// The oracle is per-producer FIFO completeness: any lost, duplicated,
/// or per-producer-reordered item panics, any unprotected slot access
/// is a data race, any lost close count is a deadlock.
fn mpsc_lifecycle<S: RingSync>(producers: usize, capacity: usize, n: u64, batch: usize) {
    let (txs, mut rx) = mpsc_with::<S, u64>(producers, capacity, batch);
    let handles: Vec<_> = txs
        .into_iter()
        .enumerate()
        .map(|(p, mut tx)| {
            shadow::thread::spawn(move || {
                for i in 0..n {
                    tx.push((p as u64) << 32 | i);
                }
                tx.close();
            })
        })
        .collect();
    let mut next = vec![0u64; producers];
    while let Some(v) = rx.pop_wait() {
        let (p, i) = ((v >> 32) as usize, v & 0xffff_ffff);
        assert_eq!(i, next[p], "per-producer FIFO violated for producer {p}");
        next[p] += 1;
    }
    for h in handles {
        h.join();
    }
    assert!(next.iter().all(|&c| c == n), "items lost: {next:?} (want {n} each)");
}

fn check_mpsc<S: RingSync>(producers: usize, capacity: usize, n: u64, batch: usize) -> Outcome {
    Checker::new().check(move || mpsc_lifecycle::<S>(producers, capacity, n, batch))
}

// ----------------------------------------------------------- real MPSC ring

#[test]
#[cfg_attr(debug_assertions, ignore = "exhaustive run is release-only; scripts/ci.sh runs it")]
fn real_mpsc_is_clean_capacity_2() {
    // Capacity 2, two producers, one item each, batch 1: the two
    // producers race the tail CAS for slots in the same lap and both
    // bump the counted close that the consumer's drain must observe.
    // (Two items each is where the exhaustive space blows up — the
    // loser's full-ring back-pressure spin multiplies schedules past
    // what a CI gate can afford; the single-producer wrap test below
    // covers back-pressure with a far smaller thread count.)
    let outcome = check_mpsc::<ModelSync>(2, 2, 1, 1);
    outcome.assert_exhaustive_clean();
    println!("mpsc capacity 2: clean across {} schedules", outcome.schedules);
    assert!(outcome.schedules > 100, "state space implausibly small");
}

#[test]
#[cfg_attr(debug_assertions, ignore = "exhaustive run is release-only; scripts/ci.sh runs it")]
fn real_mpsc_is_clean_capacity_2_wrap() {
    // Capacity 2, one producer, three items, batch 2: the third item
    // cannot be reserved until the consumer recycles a slot, so the
    // producer spins through full-ring back-pressure, the ring wraps,
    // and the close flushes a remainder batch of one.
    let outcome = check_mpsc::<ModelSync>(1, 2, 3, 2);
    outcome.assert_exhaustive_clean();
    println!("mpsc capacity 2 wrap: clean across {} schedules", outcome.schedules);
    assert!(outcome.schedules > 100, "state space implausibly small");
}

#[test]
#[cfg_attr(debug_assertions, ignore = "exhaustive run is release-only; scripts/ci.sh runs it")]
fn real_mpsc_is_clean_capacity_4() {
    // Capacity 4, two producers, two items each, batch 2: one batched
    // reservation per producer, interleaving within a single lap that
    // fills the ring exactly — no back-pressure spin, so the space
    // stays tractable while the batched-reserve/publish orderings and
    // the counted close are fully explored.
    let outcome = check_mpsc::<ModelSync>(2, 4, 2, 2);
    outcome.assert_exhaustive_clean();
    println!("mpsc capacity 4: clean across {} schedules", outcome.schedules);
}

// --------------------------------------------------------------- MPSC mutants

#[test]
fn mpsc_mutant_seq_publish_relaxed_is_caught() {
    // Without Release on the sequence store, the consumer's take is
    // unordered after the producer's slot write: a data race.
    assert_caught(
        "mpsc SEQ_PUBLISH=Relaxed",
        check_mpsc::<SeqPublishRelaxed>(2, 2, 2, 2),
        &[FailureKind::DataRace],
    );
}

#[test]
fn mpsc_mutant_seq_observe_relaxed_is_caught() {
    assert_caught(
        "mpsc SEQ_OBSERVE=Relaxed",
        check_mpsc::<SeqObserveRelaxed>(2, 2, 2, 2),
        &[FailureKind::DataRace],
    );
}

#[test]
fn mpsc_mutant_recycle_publish_relaxed_is_caught() {
    // Without Release on the recycle store, the next producer to win
    // the slot writes with no happens-before edge from the consumer's
    // take of the previous value.
    assert_caught(
        "mpsc RECYCLE_PUBLISH=Relaxed",
        check_mpsc::<RecyclePublishRelaxed>(2, 2, 2, 2),
        &[FailureKind::DataRace],
    );
}

#[test]
fn mpsc_mutant_recycle_observe_relaxed_is_caught() {
    assert_caught(
        "mpsc RECYCLE_OBSERVE=Relaxed",
        check_mpsc::<RecycleObserveRelaxed>(2, 2, 2, 2),
        &[FailureKind::DataRace],
    );
}

#[test]
fn mpsc_mutant_closed_observe_relaxed_is_caught() {
    // Without Acquire on the close-count load, the consumer's post-
    // close re-check may read stale slot sequences and end the stream
    // with items still in flight: lost items (the completeness
    // assertion fires) — or an unordered touch of a flushed slot.
    assert_caught(
        "mpsc CLOSED_OBSERVE=Relaxed",
        check_mpsc::<MpscClosedObserveRelaxed>(2, 2, 2, 2),
        &[FailureKind::Panic, FailureKind::DataRace],
    );
}

#[test]
fn mpsc_mutant_closed_publish_relaxed_is_caught() {
    assert_caught(
        "mpsc CLOSED_PUBLISH=Relaxed",
        check_mpsc::<MpscClosedPublishRelaxed>(2, 2, 2, 2),
        &[FailureKind::Panic, FailureKind::DataRace],
    );
}
