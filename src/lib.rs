//! # aggressive-scanners
//!
//! A full reproduction of *"Aggressive Internet-Wide Scanners: Network
//! Impact and Longitudinal Characterization"* (CoNEXT 2023) as a Rust
//! workspace:
//!
//! * [`net`] — packet substrate (IPv4/TCP/UDP/ICMP, pcap, prefixes,
//!   scanner fingerprints);
//! * [`telescope`] — ORION-style darknet capture and darknet-event
//!   aggregation;
//! * [`flow`] — NetFlow-style sampling, flow caches, and the border-
//!   router/peering model;
//! * [`intel`] — ASN registry, Acknowledged-Scanners list, reverse DNS,
//!   GreyNoise-style honeypot;
//! * [`simnet`] — the synthetic internet standing in for the paper's
//!   proprietary traces (see `DESIGN.md` for the substitution table);
//! * [`core`] — the paper's contribution: three aggressive-hitter
//!   definitions, network-impact measurement, characterization;
//! * [`obs`] — observation-only pipeline telemetry: atomic instruments
//!   behind a cheap [`obs::Recorder`] handle plus JSONL/Prometheus
//!   snapshot export (see `ARCHITECTURE.md` §Observability);
//! * [`mem`] — tagged-allocator memory observability: per-subsystem
//!   live/peak/cumulative accounting behind [`mem::MemScope`] tag
//!   scopes, installed process-wide by this crate's
//!   `#[global_allocator]` (see `ARCHITECTURE.md` §13);
//! * [`wal`] — durable write-ahead event store: CRC-framed append-only
//!   segments with crash recovery, powering suspend/resume and
//!   re-simulation-free replay (see `ARCHITECTURE.md` §Durability);
//! * [`pipeline`] (this crate) — turnkey end-to-end runs used by the
//!   examples, the integration tests, and the experiment harness.
//!
//! ## Quickstart
//!
//! ```
//! use aggressive_scanners::pipeline::{self, RunOptions};
//! use aggressive_scanners::simnet::scenario::ScenarioConfig;
//! use aggressive_scanners::core::defs::Definition;
//!
//! // A 2-day miniature world; see ScenarioConfig::darknet for full runs.
//! let run = pipeline::run(ScenarioConfig::tiny(2, 42), RunOptions::darknet_only());
//! let hitters = run.report.hitters(Definition::AddressDispersion);
//! println!("{} aggressive hitters detected", hitters.len());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use ah_core as core;
pub use ah_flow as flow;
pub use ah_intel as intel;
pub use ah_mem as mem;
pub use ah_net as net;
pub use ah_obs as obs;
pub use ah_simnet as simnet;
pub use ah_telescope as telescope;
pub use ah_wal as wal;

/// The tagged system allocator (see [`mem`]). Installing it here puts
/// every binary, test, bench, and example linking this crate under
/// per-subsystem memory accounting; until
/// [`mem::set_accounting`]`(true)` is called the shim only pads each
/// allocation with its 8-byte header. Declaring the static is safe —
/// all `unsafe` stays inside `ah-mem`'s allocator shim.
#[global_allocator]
static GLOBAL_ALLOC: ah_mem::TaggedSystem = ah_mem::TaggedSystem::new();

pub mod pipeline;
