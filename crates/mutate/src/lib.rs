//! `ah-mutate` — the workspace's first-party mutation-testing harness.
//!
//! The repo's deliverable is a *daily AH blocklist* whose value rests on
//! bitwise-reproducible detector decisions. A silently-flipped threshold
//! comparison, a weakened atomic ordering, or a dropped CRC check ships
//! bad intelligence without failing a single existing test — unless the
//! test suite would notice. Mutation testing measures exactly that:
//! plant a plausible bug (a *mutant*), run the tests, and demand they
//! fail. A mutant the suite kills is evidence; one that *survives* is a
//! blind spot with a file:line attached.
//!
//! The harness is zero-dependency and token-level, built on the
//! [`ah_lint`] lexer (see [`ops`] for the operator set), so mutations
//! never land in strings, comments, or `#[cfg(test)]` code. The
//! pipeline:
//!
//! * [`ops`] — mutation operators + per-file site enumeration; every
//!   mutant gets a stable content-derived id (FNV-1a over
//!   `path ‖ offset ‖ operator ‖ replacement`) so reports diff cleanly
//!   across commits;
//! * [`plan`] — workspace walking (product crates only), deterministic
//!   `--sample`/`--seed` subsetting, and the tree fingerprint that
//!   keys the result cache;
//! * [`runner`] — applies one mutant at a time to a scratch copy of the
//!   tree, drives `cargo build`/`cargo test` with per-mutant wall-clock
//!   timeouts, and classifies **caught / survived / timeout /
//!   build-broken**;
//! * [`cache`] — results keyed by (mutant id, tree fingerprint) in
//!   `out/mutate-cache.json`, so a re-run on an unchanged tree executes
//!   zero mutants;
//! * [`sentinel`] — the curated must-be-caught set backing the CI
//!   `mutation` gate (ring orderings, WAL CRC/truncation, detector
//!   thresholds, watermark comparisons);
//! * [`report`] — `out/mutants.json` plus the markdown survivor table.
//!
//! See ARCHITECTURE.md §14 for the operator table, the id scheme, the
//! cache-invalidation contract and the sentinel-set rationale.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod ops;
pub mod plan;
pub mod report;
pub mod runner;
pub mod sentinel;

pub use ops::{enumerate_source, Mutant, OPERATORS};
pub use runner::Outcome;
