//! Deterministic 1:N systematic packet sampling.
//!
//! The paper's flow data is collected at 1:1000. Routers implement this
//! as systematic count-based sampling: every N-th packet is selected.
//! Reported totals multiply sampled counts back by N — that inverse
//! estimator is unbiased for flows that are large relative to N and the
//! source of the small-flow quantization the paper validates against
//! unsampled taps (our `sampling_ablation` bench measures exactly this).

/// Systematic 1:N sampler.
#[derive(Debug, Clone)]
pub struct Sampler {
    rate: u64,
    counter: u64,
    selected: u64,
    seen: u64,
}

impl Sampler {
    /// A 1:`rate` sampler. `rate = 1` selects everything.
    ///
    /// `phase` staggers the first selected packet (routers don't all pick
    /// packet 0); it is reduced modulo `rate`.
    pub fn new(rate: u64, phase: u64) -> Sampler {
        assert!(rate >= 1, "sampling rate must be >= 1");
        Sampler { rate, counter: phase % rate, selected: 0, seen: 0 }
    }

    /// Sampling rate N.
    pub fn rate(&self) -> u64 {
        self.rate
    }

    /// Offer one packet; returns true when it is selected.
    pub fn sample(&mut self) -> bool {
        self.seen += 1;
        self.counter += 1;
        if self.counter >= self.rate {
            self.counter = 0;
            self.selected += 1;
            true
        } else {
            false
        }
    }

    /// Packets offered so far.
    pub fn seen(&self) -> u64 {
        self.seen
    }

    /// Packets selected so far.
    pub fn selected(&self) -> u64 {
        self.selected
    }

    /// The inverse estimator: scale a sampled count back to a wire count.
    pub fn estimate(&self, sampled: u64) -> u64 {
        sampled * self.rate
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_in_one_selects_all() {
        let mut s = Sampler::new(1, 0);
        for _ in 0..100 {
            assert!(s.sample());
        }
        assert_eq!(s.selected(), 100);
    }

    #[test]
    fn exact_fraction_selected() {
        let mut s = Sampler::new(10, 0);
        let picked = (0..1000).filter(|_| s.sample()).count();
        assert_eq!(picked, 100);
        assert_eq!(s.seen(), 1000);
        assert_eq!(s.estimate(s.selected()), 1000);
    }

    #[test]
    fn selection_is_evenly_spaced() {
        let mut s = Sampler::new(4, 0);
        let picks: Vec<bool> = (0..12).map(|_| s.sample()).collect();
        assert_eq!(
            picks,
            vec![false, false, false, true, false, false, false, true, false, false, false, true]
        );
    }

    #[test]
    fn phase_shifts_first_selection() {
        let mut s = Sampler::new(4, 3);
        let picks: Vec<bool> = (0..8).map(|_| s.sample()).collect();
        assert_eq!(picks, vec![true, false, false, false, true, false, false, false]);
    }

    #[test]
    fn phase_wraps_modulo_rate() {
        let mut a = Sampler::new(4, 7);
        let mut b = Sampler::new(4, 3);
        for _ in 0..16 {
            assert_eq!(a.sample(), b.sample());
        }
    }

    #[test]
    #[should_panic(expected = "sampling rate")]
    fn zero_rate_rejected() {
        let _ = Sampler::new(0, 0);
    }

    #[test]
    fn estimator_is_unbiased_over_rate_multiples() {
        // For any stream length that is a multiple of the rate, the
        // estimate is exact regardless of phase.
        for phase in 0..5 {
            let mut s = Sampler::new(5, phase);
            for _ in 0..2000 {
                s.sample();
            }
            assert_eq!(s.estimate(s.selected()), 2000);
        }
    }
}
