//! Network impact measurement: how many of an ISP's routed packets come
//! from aggressive scanners?
//!
//! Simulates a weekend+weekday window with benign user traffic at a
//! Merit-like ISP, joins the darknet-derived hitter list against the
//! sampled flow data of its three border routers, and prints the per-day
//! impact — the experiment behind the paper's headline "one in every
//! hundred packets is from an aggressive scanner".
//!
//! ```sh
//! cargo run --release --example network_impact
//! ```

use aggressive_scanners::core::defs::Definition;
use aggressive_scanners::core::impact::{flow_impact, presence};
use aggressive_scanners::pipeline::{self, RunOptions};
use aggressive_scanners::simnet::scenario::ScenarioConfig;

fn main() {
    let days = 3;
    println!("simulating {days} days of ISP traffic (this builds benign flows too)...");
    let run = pipeline::run(ScenarioConfig::flows(days, 99), RunOptions::with_flows());
    let ds = run.merit_flows.as_ref().expect("flow dataset");

    println!();
    println!(
        "flow dataset: {} records at 1:{} sampling, {} router-days of truth counters",
        ds.records.len(),
        ds.sampling_rate,
        ds.router_days.len()
    );

    let rows = flow_impact(ds, |day| {
        run.report.active_hitters(Definition::AddressDispersion, day).cloned()
    });
    println!();
    println!(
        "{:<8} {:>8} {:>14} {:>14} {:>8}",
        "day", "router", "AH packets", "all packets", "share"
    );
    for r in &rows {
        println!(
            "{:<8} {:>8} {:>14} {:>14} {:>7.2}%",
            r.day,
            r.router,
            r.ah_packets,
            r.total_packets,
            r.pct()
        );
    }

    let mean: f64 = rows.iter().map(|r| r.pct()).sum::<f64>() / rows.len().max(1) as f64;
    println!();
    println!("mean impact across routers and days: {mean:.2}%");
    println!("(the paper measures 1.1–5.85% daily at Merit's core routers)");

    // Where are the hitters visible?
    println!();
    println!("hitter presence per router (share of the day's active hitters seen):");
    for row in
        presence(ds, |day| run.report.active_hitters(Definition::AddressDispersion, day).cloned())
    {
        let fr: Vec<String> =
            row.seen_fraction.iter().map(|(r, f)| format!("r{}: {:.0}%", r, 100.0 * f)).collect();
        println!("  day {} ({} hitters): {}", row.day, row.population, fr.join("  "));
    }
}
