//! Domain records carried in WAL frames.
//!
//! A frame payload is one encoded [`WalRecord`]: a kind byte followed by
//! a fixed, hand-rolled little-endian body (the workspace has no
//! serialization dependency; see `vendor/README.md`). Five kinds exist:
//!
//! * [`RunMeta`] — written once as frame 0 of a pipeline run: the
//!   scenario/options summary the log was produced under, so a replay or
//!   resume can verify it is being matched against the same world.
//! * [`PacketMeta`] — one delivered darknet packet, the primary stream.
//! * [`DarknetEvent`] — a completed darknet event (derived-stream stores,
//!   e.g. pure-detector backtest logs).
//! * [`FlowRecord`] — an exported NetFlow-style record (derived-stream
//!   stores).
//! * [`RunSeal`] — written last, after the stream ends: totals, the
//!   rolling packet-payload hash, and the fault injector's final
//!   counters. A log without a seal is a suspended or crashed run.
//!
//! All decoders are total: any payload that does not parse exactly (kind,
//! lengths, enum tags, trailing bytes) yields `None` and is treated by
//! recovery as a corrupt frame.

use ah_core::defs::Thresholds;
use ah_flow::record::{FlowKey, FlowRecord};
use ah_flow::router::Direction;
use ah_net::ipv4::Ipv4Addr4;
use ah_net::packet::{PacketMeta, ScanClass, Transport};
use ah_net::tcp::TcpFlags;
use ah_net::time::{Dur, Ts};
use ah_simnet::faults::{FaultPlan, InjectorStats};
use ah_simnet::scenario::{BenignLevel, ScenarioConfig, Year};
use ah_telescope::event::{DarknetEvent, EventKey, ToolCounts};

/// Frame-payload kind byte for [`RunMeta`].
pub const KIND_META: u8 = 1;
/// Frame-payload kind byte for a packet record.
pub const KIND_PACKET: u8 = 2;
/// Frame-payload kind byte for a darknet-event record.
pub const KIND_EVENT: u8 = 3;
/// Frame-payload kind byte for a flow record.
pub const KIND_FLOW: u8 = 4;
/// Frame-payload kind byte for [`RunSeal`].
pub const KIND_SEAL: u8 = 5;

/// The run configuration summary stored as the log's first record.
#[derive(Debug, Clone)]
pub struct RunMeta {
    /// Scenario label (`"tiny"`, `"darknet-2"`, …).
    pub label: String,
    /// Master scenario seed.
    pub seed: u64,
    /// Scenario length in days.
    pub days: u64,
    /// Measurement year preset.
    pub year: Year,
    /// Benign-traffic level preset.
    pub benign: BenignLevel,
    /// Weekday of day 0.
    pub day0_weekday: u8,
    /// Whether the Merit ISP vantage point was built.
    pub merit_isp: bool,
    /// Whether the CU campus vantage point was built.
    pub cu_isp: bool,
    /// Whether the honeypot fleet was fed.
    pub greynoise: bool,
    /// NetFlow sampling rate of the ISP vantage points.
    pub sampling_rate: u64,
    /// Detection thresholds the run finalized with.
    pub thresholds: Thresholds,
    /// Packet-fault plan applied between mux and vantage points, if any.
    pub faults: Option<FaultPlan>,
}

impl PartialEq for RunMeta {
    fn eq(&self, other: &Self) -> bool {
        // `Thresholds` holds plain f64s without a PartialEq impl;
        // compare by bit pattern so round-tripping through `to_bits`
        // encoding is exact (NaN-safe, -0.0 != 0.0 — which is what we
        // want for "same configuration").
        let t = |x: &Thresholds| {
            (x.dispersion_fraction.to_bits(), x.volume_alpha.to_bits(), x.ports_alpha.to_bits())
        };
        self.label == other.label
            && self.seed == other.seed
            && self.days == other.days
            && self.year == other.year
            && self.benign == other.benign
            && self.day0_weekday == other.day0_weekday
            && self.merit_isp == other.merit_isp
            && self.cu_isp == other.cu_isp
            && self.greynoise == other.greynoise
            && self.sampling_rate == other.sampling_rate
            && t(&self.thresholds) == t(&other.thresholds)
            && self.faults == other.faults
    }
}

impl RunMeta {
    /// True when this meta record was produced from `cfg` — same label,
    /// seed, span and world presets — so the deterministic generator can
    /// be fast-forwarded against this log.
    pub fn matches_scenario(&self, cfg: &ScenarioConfig) -> bool {
        self.label == cfg.label
            && self.seed == cfg.seed
            && self.days == cfg.days
            && self.year == cfg.year
            && self.benign == cfg.benign
            && self.day0_weekday == cfg.day0_weekday
    }
}

/// The final record of a completed run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunSeal {
    /// Total packets the scenario generated.
    pub generated: u64,
    /// Total packets delivered to the vantage points (== packet frames
    /// in the log).
    pub delivered: u64,
    /// Rolling FNV-1a over every packet record's encoded payload, in
    /// delivery order — an end-to-end integrity check over the whole
    /// stream, independent of the per-frame CRCs.
    pub packet_hash: u64,
    /// Final fault-injector counters, when a fault plan was active.
    pub injector: Option<InjectorStats>,
}

/// One decoded WAL record.
#[derive(Debug, Clone, PartialEq)]
pub enum WalRecord {
    /// Run configuration summary (first frame).
    Meta(RunMeta),
    /// One delivered packet.
    Packet(PacketMeta),
    /// One completed darknet event.
    Event(DarknetEvent),
    /// One exported flow record.
    Flow(FlowRecord),
    /// End-of-run seal (last frame of a completed run).
    Seal(RunSeal),
}

// --- encoding ----------------------------------------------------------

/// FNV-1a offset basis; the hash every rolling packet hash starts from.
pub const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;

/// Fold `bytes` into a rolling FNV-1a state.
pub fn fnv1a_fold(mut h: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

fn put_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_f64(out: &mut Vec<u8>, v: f64) {
    put_u64(out, v.to_bits());
}

/// Bounds-checked little-endian reader over a record body.
struct Cursor<'a> {
    buf: &'a [u8],
    off: usize,
}

impl<'a> Cursor<'a> {
    fn new(buf: &'a [u8]) -> Cursor<'a> {
        Cursor { buf, off: 0 }
    }

    fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        let end = self.off.checked_add(n)?;
        if end > self.buf.len() {
            return None;
        }
        let s = &self.buf[self.off..end];
        self.off = end;
        Some(s)
    }

    fn u8(&mut self) -> Option<u8> {
        self.take(1).map(|s| s[0])
    }

    fn u16(&mut self) -> Option<u16> {
        self.take(2).and_then(|s| s.try_into().ok()).map(u16::from_le_bytes)
    }

    fn u32(&mut self) -> Option<u32> {
        self.take(4).and_then(|s| s.try_into().ok()).map(u32::from_le_bytes)
    }

    fn u64(&mut self) -> Option<u64> {
        self.take(8).and_then(|s| s.try_into().ok()).map(u64::from_le_bytes)
    }

    fn f64(&mut self) -> Option<f64> {
        self.u64().map(f64::from_bits)
    }

    fn done(&self) -> bool {
        self.off == self.buf.len()
    }
}

fn encode_packet(out: &mut Vec<u8>, p: &PacketMeta) {
    put_u64(out, p.ts.0);
    put_u32(out, p.src.to_u32());
    put_u32(out, p.dst.to_u32());
    put_u16(out, p.ip_id);
    out.push(p.ttl);
    put_u16(out, p.wire_len);
    match p.transport {
        Transport::Tcp { src_port, dst_port, seq, flags } => {
            out.push(0);
            put_u16(out, src_port);
            put_u16(out, dst_port);
            put_u32(out, seq);
            out.push(flags.0);
        }
        Transport::Udp { src_port, dst_port } => {
            out.push(1);
            put_u16(out, src_port);
            put_u16(out, dst_port);
        }
        Transport::Icmp { icmp_type, code } => {
            out.push(2);
            out.push(icmp_type);
            out.push(code);
        }
        Transport::Other { protocol } => {
            out.push(3);
            out.push(protocol);
        }
    }
}

fn decode_packet(c: &mut Cursor<'_>) -> Option<PacketMeta> {
    let ts = Ts(c.u64()?);
    let src = Ipv4Addr4(c.u32()?);
    let dst = Ipv4Addr4(c.u32()?);
    let ip_id = c.u16()?;
    let ttl = c.u8()?;
    let wire_len = c.u16()?;
    let transport = match c.u8()? {
        0 => Transport::Tcp {
            src_port: c.u16()?,
            dst_port: c.u16()?,
            seq: c.u32()?,
            flags: TcpFlags(c.u8()?),
        },
        1 => Transport::Udp { src_port: c.u16()?, dst_port: c.u16()? },
        2 => Transport::Icmp { icmp_type: c.u8()?, code: c.u8()? },
        3 => Transport::Other { protocol: c.u8()? },
        _ => return None,
    };
    Some(PacketMeta { ts, src, dst, ip_id, ttl, wire_len, transport })
}

fn class_tag(class: ScanClass) -> u8 {
    match class {
        ScanClass::TcpSyn => 0,
        ScanClass::Udp => 1,
        ScanClass::IcmpEcho => 2,
    }
}

fn class_of(tag: u8) -> Option<ScanClass> {
    match tag {
        0 => Some(ScanClass::TcpSyn),
        1 => Some(ScanClass::Udp),
        2 => Some(ScanClass::IcmpEcho),
        _ => None,
    }
}

fn encode_event(out: &mut Vec<u8>, e: &DarknetEvent) {
    put_u32(out, e.key.src.to_u32());
    put_u16(out, e.key.dst_port);
    out.push(class_tag(e.key.class));
    put_u64(out, e.start.0);
    put_u64(out, e.end.0);
    put_u64(out, e.packets);
    put_u64(out, e.bytes);
    put_u32(out, e.unique_dsts);
    put_u32(out, e.dark_size);
    put_u64(out, e.tools.zmap);
    put_u64(out, e.tools.masscan);
    put_u64(out, e.tools.mirai);
    put_u64(out, e.tools.other);
}

fn decode_event(c: &mut Cursor<'_>) -> Option<DarknetEvent> {
    Some(DarknetEvent {
        key: EventKey { src: Ipv4Addr4(c.u32()?), dst_port: c.u16()?, class: class_of(c.u8()?)? },
        start: Ts(c.u64()?),
        end: Ts(c.u64()?),
        packets: c.u64()?,
        bytes: c.u64()?,
        unique_dsts: c.u32()?,
        dark_size: c.u32()?,
        tools: ToolCounts { zmap: c.u64()?, masscan: c.u64()?, mirai: c.u64()?, other: c.u64()? },
    })
}

fn encode_flow(out: &mut Vec<u8>, f: &FlowRecord) {
    put_u32(out, f.key.src.to_u32());
    put_u32(out, f.key.dst.to_u32());
    put_u16(out, f.key.src_port);
    put_u16(out, f.key.dst_port);
    out.push(f.key.protocol);
    out.push(f.router);
    out.push(match f.direction {
        Direction::Ingress => 0,
        Direction::Egress => 1,
    });
    put_u64(out, f.first.0);
    put_u64(out, f.last.0);
    put_u64(out, f.packets);
    put_u64(out, f.bytes);
    out.push(f.tcp_flags);
}

fn decode_flow(c: &mut Cursor<'_>) -> Option<FlowRecord> {
    Some(FlowRecord {
        key: FlowKey {
            src: Ipv4Addr4(c.u32()?),
            dst: Ipv4Addr4(c.u32()?),
            src_port: c.u16()?,
            dst_port: c.u16()?,
            protocol: c.u8()?,
        },
        router: c.u8()?,
        direction: match c.u8()? {
            0 => Direction::Ingress,
            1 => Direction::Egress,
            _ => return None,
        },
        first: Ts(c.u64()?),
        last: Ts(c.u64()?),
        packets: c.u64()?,
        bytes: c.u64()?,
        tcp_flags: c.u8()?,
    })
}

fn encode_meta(out: &mut Vec<u8>, m: &RunMeta) {
    let label = m.label.as_bytes();
    put_u16(out, label.len() as u16);
    out.extend_from_slice(label);
    put_u64(out, m.seed);
    put_u64(out, m.days);
    out.push(match m.year {
        Year::Y2021 => 0,
        Year::Y2022 => 1,
    });
    out.push(match m.benign {
        BenignLevel::Off => 0,
        BenignLevel::Merit => 1,
        BenignLevel::MeritAndCu => 2,
    });
    out.push(m.day0_weekday);
    let mut flags = 0u8;
    if m.merit_isp {
        flags |= 1;
    }
    if m.cu_isp {
        flags |= 2;
    }
    if m.greynoise {
        flags |= 4;
    }
    if m.faults.is_some() {
        flags |= 8;
    }
    out.push(flags);
    put_u64(out, m.sampling_rate);
    put_f64(out, m.thresholds.dispersion_fraction);
    put_f64(out, m.thresholds.volume_alpha);
    put_f64(out, m.thresholds.ports_alpha);
    if let Some(p) = m.faults.as_ref() {
        put_f64(out, p.drop);
        put_f64(out, p.duplicate);
        put_f64(out, p.reorder);
        put_u64(out, p.max_skew.0);
        put_f64(out, p.truncate);
        put_f64(out, p.bitflip);
        put_f64(out, p.zero_payload);
        put_u64(out, p.outage_period.0);
        put_u64(out, p.outage_len.0);
        put_u64(out, p.seed);
    }
}

fn decode_meta(c: &mut Cursor<'_>) -> Option<RunMeta> {
    let label_len = c.u16()? as usize;
    let label = String::from_utf8(c.take(label_len)?.to_vec()).ok()?;
    let seed = c.u64()?;
    let days = c.u64()?;
    let year = match c.u8()? {
        0 => Year::Y2021,
        1 => Year::Y2022,
        _ => return None,
    };
    let benign = match c.u8()? {
        0 => BenignLevel::Off,
        1 => BenignLevel::Merit,
        2 => BenignLevel::MeritAndCu,
        _ => return None,
    };
    let day0_weekday = c.u8()?;
    let flags = c.u8()?;
    let sampling_rate = c.u64()?;
    let thresholds =
        Thresholds { dispersion_fraction: c.f64()?, volume_alpha: c.f64()?, ports_alpha: c.f64()? };
    let faults = if flags & 8 != 0 {
        Some(FaultPlan {
            drop: c.f64()?,
            duplicate: c.f64()?,
            reorder: c.f64()?,
            max_skew: Dur(c.u64()?),
            truncate: c.f64()?,
            bitflip: c.f64()?,
            zero_payload: c.f64()?,
            outage_period: Dur(c.u64()?),
            outage_len: Dur(c.u64()?),
            seed: c.u64()?,
        })
    } else {
        None
    };
    Some(RunMeta {
        label,
        seed,
        days,
        year,
        benign,
        day0_weekday,
        merit_isp: flags & 1 != 0,
        cu_isp: flags & 2 != 0,
        greynoise: flags & 4 != 0,
        sampling_rate,
        thresholds,
        faults,
    })
}

fn encode_seal(out: &mut Vec<u8>, s: &RunSeal) {
    put_u64(out, s.generated);
    put_u64(out, s.delivered);
    put_u64(out, s.packet_hash);
    out.push(u8::from(s.injector.is_some()));
    if let Some(i) = s.injector.as_ref() {
        put_u64(out, i.input);
        put_u64(out, i.delivered);
        put_u64(out, i.dropped);
        put_u64(out, i.duplicated);
        put_u64(out, i.outage_dropped);
        put_u64(out, i.truncated_discarded);
        put_u64(out, i.corrupt_discarded);
        put_u64(out, i.reordered);
        put_u64(out, i.corrupted_delivered);
        put_u64(out, i.zero_payload);
    }
}

fn decode_seal(c: &mut Cursor<'_>) -> Option<RunSeal> {
    let generated = c.u64()?;
    let delivered = c.u64()?;
    let packet_hash = c.u64()?;
    let injector = match c.u8()? {
        0 => None,
        1 => Some(InjectorStats {
            input: c.u64()?,
            delivered: c.u64()?,
            dropped: c.u64()?,
            duplicated: c.u64()?,
            outage_dropped: c.u64()?,
            truncated_discarded: c.u64()?,
            corrupt_discarded: c.u64()?,
            reordered: c.u64()?,
            corrupted_delivered: c.u64()?,
            zero_payload: c.u64()?,
        }),
        _ => return None,
    };
    Some(RunSeal { generated, delivered, packet_hash, injector })
}

impl WalRecord {
    /// Append this record's frame payload (kind byte + body) to `out`.
    pub fn encode_payload(&self, out: &mut Vec<u8>) {
        match self {
            WalRecord::Meta(m) => {
                out.push(KIND_META);
                encode_meta(out, m);
            }
            WalRecord::Packet(p) => {
                out.push(KIND_PACKET);
                encode_packet(out, p);
            }
            WalRecord::Event(e) => {
                out.push(KIND_EVENT);
                encode_event(out, e);
            }
            WalRecord::Flow(f) => {
                out.push(KIND_FLOW);
                encode_flow(out, f);
            }
            WalRecord::Seal(s) => {
                out.push(KIND_SEAL);
                encode_seal(out, s);
            }
        }
    }

    /// Decode a frame payload. `None` means the payload is not a valid
    /// record (unknown kind, short body, bad enum tag, or trailing
    /// bytes) — recovery treats this exactly like a CRC failure.
    pub fn decode_payload(payload: &[u8]) -> Option<WalRecord> {
        let mut c = Cursor::new(payload);
        let rec = match c.u8()? {
            KIND_META => WalRecord::Meta(decode_meta(&mut c)?),
            KIND_PACKET => WalRecord::Packet(decode_packet(&mut c)?),
            KIND_EVENT => WalRecord::Event(decode_event(&mut c)?),
            KIND_FLOW => WalRecord::Flow(decode_flow(&mut c)?),
            KIND_SEAL => WalRecord::Seal(decode_seal(&mut c)?),
            _ => return None,
        };
        if !c.done() {
            return None;
        }
        Some(rec)
    }
}
