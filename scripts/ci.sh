#!/usr/bin/env bash
# Repo CI gate: formatting, lints, build, tests.
#
# Library and binary code must be panic-free on the unwrap path
# (`clippy::unwrap_used` denied); tests may unwrap/expect freely
# (allow-unwrap-in-tests in clippy.toml).
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> clippy (lib + bins, unwrap_used denied)"
cargo clippy --workspace --lib --bins -- -D warnings -D clippy::unwrap_used

echo "==> clippy (tests, benches, examples)"
cargo clippy --workspace --tests --benches --examples -- -D warnings

echo "==> rustdoc (warnings denied)"
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps -q

echo "==> benches compile"
cargo bench --workspace --no-run -q

echo "==> build (release)"
cargo build --release --workspace

echo "==> tests"
cargo test --workspace -q

echo "CI gate passed."
