#!/usr/bin/env bash
# Repo CI gate: formatting, lints, build, tests.
#
# Library and binary code must be panic-free on the unwrap path
# (`clippy::unwrap_used` denied); tests may unwrap/expect freely
# (allow-unwrap-in-tests in clippy.toml).
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> clippy (lib + bins, unwrap_used denied)"
cargo clippy --workspace --lib --bins -- -D warnings -D clippy::unwrap_used

echo "==> clippy (tests, benches, examples)"
cargo clippy --workspace --tests --benches --examples -- -D warnings

echo "==> ah-lint (house rules, warnings denied)"
# First-party static analysis (crates/lint): panic-path, atomic-ordering,
# unsafe-safety-comment, doc-header, unsafe-forbid, metric-name — see
# ARCHITECTURE.md §9. Suppressions require written reasons; an unknown
# or reasonless suppression is itself a finding.
cargo run -q --release -p ah-lint -- --deny-warnings

echo "==> ah-lint (static metric-name check)"
# Every metric name passed as a string literal to ah_obs registration
# functions is validated against ah_obs::valid_metric_name before the
# code ever runs. (This replaces the old source grep; the runtime JSONL
# check below still covers dynamically-built names.)
cargo run -q --release -p ah-lint -- --lint metric-name --deny-warnings

echo "==> ah-lint (markdown links + anchors)"
# Nothing compiles markdown, so renamed files and sections strand
# cross-references silently; the doc-link pass (crates/lint/src/mdcheck.rs)
# resolves every relative link and #anchor in every *.md of the repo.
# External http(s) targets are skipped — CI does not touch the network.
cargo run -q --release -p ah-lint -- --md --deny-warnings

echo "==> rustdoc (warnings denied)"
RUSTDOCFLAGS="-D warnings" cargo doc --workspace --no-deps -q

echo "==> doctests"
# The public ring/WAL API examples in the rustdoc (SPSC Producer/Consumer,
# the MPSC merge ring, WalWriter/recovery) are executable. The workspace
# test run above already includes them; this named pass exists so a
# filtered `cargo test` invocation elsewhere can never silently drop
# the examples-stay-true gate.
cargo test --workspace --doc -q

echo "==> benches compile"
cargo bench --workspace --no-run -q

echo "==> build (release)"
cargo build --release --workspace

echo "==> tests"
cargo test --workspace -q

echo "==> telemetry determinism gate"
# The full matrix (serial/8-shard x clean/faulted, metrics on vs off,
# snapshot schemas, ledger cross-checks) lives in tests/telemetry.rs;
# run it by name so a filtered `cargo test` invocation elsewhere can
# never silently drop it.
cargo test --release --test telemetry -q

echo "==> ring model checks: SPSC + MPSC (exhaustive, release)"
# vendor/interleave explores every interleaving of both ring lifecycles
# within the configured bounds: the SPSC dispatch ring and the MPSC
# merge ring must each be clean, and every seeded ordering mutant (six
# per ring) must be caught with a replayable counterexample. The heavy
# clean-ring tests are ignored in debug builds and only run here, in
# release; expect several minutes — the MPSC capacity-4 case alone
# explores ~1M schedules.
cargo test --release -p ah-simnet --test model_check -q

echo "==> WAL crash-recovery gate"
# Durability drill with a real process kill: run the durable engine and
# have it abort mid-write (--crash-after leaves a deliberately torn,
# unsynced tail), then resume from the recovered log and replay the
# sealed result. Both must print the exact output fingerprint of an
# uninterrupted run — the bitwise replay/resume contract of
# ARCHITECTURE.md §10, checked on the shipped binary.
WAL_DIR="$(mktemp -d)/wal"
run_bin=(target/release/aggressive-scanners --days 1 --threads 4)
if "${run_bin[@]}" --wal-dir "$WAL_DIR" --crash-after 2500 >/dev/null 2>&1; then
  echo "error: --crash-after was expected to abort the process"
  exit 1
fi
fp_base=$("${run_bin[@]}" 2>/dev/null | awk -F': ' '/^output fingerprint/{print $2}')
fp_resume=$("${run_bin[@]}" --wal-dir "$WAL_DIR" --resume 2>/dev/null \
  | awk -F': ' '/^output fingerprint/{print $2}')
fp_replay=$("${run_bin[@]}" --wal-dir "$WAL_DIR" --replay 2>/dev/null \
  | awk -F': ' '/^output fingerprint/{print $2}')
rm -rf "$(dirname "$WAL_DIR")"
[ -n "$fp_base" ] || { echo "error: baseline run printed no fingerprint"; exit 1; }
if [ "$fp_resume" != "$fp_base" ] || [ "$fp_replay" != "$fp_base" ]; then
  echo "error: crash-recovery fingerprints diverged:"
  echo "    uninterrupted $fp_base"
  echo "    resumed       ${fp_resume:-<none>}"
  echo "    replayed      ${fp_replay:-<none>}"
  exit 1
fi
echo "    crashed, resumed and replayed runs all fingerprint $fp_base"

echo "==> metrics schema lint"
# Emit a real snapshot from the release binary and lint every exported
# metric name against the naming scheme `ah_<crate>_<subsystem>_<name>`
# (>= 4 lowercase alnum segments, first segment "ah") — the same rule
# ah_obs::valid_metric_name enforces, checked here on the file actually
# written to disk.
METRICS_DIR="$(mktemp -d)"
trap 'rm -rf "$METRICS_DIR"' EXIT
target/release/aggressive-scanners --metrics "$METRICS_DIR/metrics" \
  --metrics-interval 100000 --days 1 --threads 4 >/dev/null
for f in "$METRICS_DIR/metrics.jsonl" "$METRICS_DIR/metrics.prom"; do
  [ -s "$f" ] || { echo "error: $f missing or empty"; exit 1; }
done
bad=$(grep -oE '"name":"[^"]+"' "$METRICS_DIR/metrics.jsonl" | sed 's/"name":"//;s/"//' \
  | sort -u | grep -vE '^ah(_[a-z0-9]+){3,}$' || true)
if [ -n "$bad" ]; then
  echo "error: exported metric names violate ah_<crate>_<subsystem>_<name>:"
  echo "$bad"
  exit 1
fi
bad=$(awk '/^# TYPE /{print $3}' "$METRICS_DIR/metrics.prom" \
  | grep -vE '^ah(_[a-z0-9]+){3,}$' || true)
if [ -n "$bad" ]; then
  echo "error: Prometheus TYPE names violate the scheme:"
  echo "$bad"
  exit 1
fi
echo "    $(grep -oE '"name":"[^"]+"' "$METRICS_DIR/metrics.jsonl" | sort -u | wc -l) metric names conform"

echo "==> trace gate"
# Tracing is observation-only (ARCHITECTURE.md §12). First the full
# determinism + schema matrix (tests/trace.rs) by name, so a filtered
# `cargo test` elsewhere can never drop it; then the shipped binary: a
# traced durable run must emit a Chrome trace that passes the
# first-party validator (target/release/ah-trace) with sampled packet
# journeys, the dispatcher-to-detector span chain and WAL I/O spans —
# while printing the exact output fingerprint of an untraced run.
cargo test --release --test trace -q
TRACE_DIR="$(mktemp -d)"
trap 'rm -rf "$METRICS_DIR" "$TRACE_DIR"' EXIT
trace_bin=(target/release/aggressive-scanners --days 1 --threads 4)
fp_plain=$("${trace_bin[@]}" 2>/dev/null | awk -F': ' '/^output fingerprint/{print $2}')
# Sample 1-in-32 sources: dense enough for journeys at every layer,
# sparse enough that the bounded per-thread buffers keep the end-of-run
# detector spans on a 1-day traced WAL run.
fp_traced=$("${trace_bin[@]}" --wal-dir "$TRACE_DIR/wal" \
  --trace-out "$TRACE_DIR/trace.json" --trace-sample 32 2>/dev/null \
  | awk -F': ' '/^output fingerprint/{print $2}')
[ -n "$fp_plain" ] || { echo "error: untraced run printed no fingerprint"; exit 1; }
if [ "$fp_traced" != "$fp_plain" ]; then
  echo "error: tracing changed the output fingerprint:"
  echo "    untraced $fp_plain"
  echo "    traced   ${fp_traced:-<none>}"
  exit 1
fi
[ -s "$TRACE_DIR/trace.folded" ] || { echo "error: folded-stack export missing or empty"; exit 1; }
target/release/ah-trace check "$TRACE_DIR/trace.json" --require-journey \
  --require ah_pipeline_dispatch_route --require ah_pipeline_shard_consume \
  --require ah_pipeline_vantage_consume --require ah_telescope_capture_observe \
  --require ah_pipeline_detector_ingest --require ah_pipeline_wal_append \
  --require ah_wal_writer_commit --require ah_wal_writer_fsync
echo "    traced and untraced runs both fingerprint $fp_plain"

echo "==> memory gate"
# Tagged-allocator accounting is observation-only (ARCHITECTURE.md §13).
# First the full determinism + leak matrix (tests/memory.rs) by name, so
# a filtered `cargo test` elsewhere can never drop it; then the shipped
# binary: a run with --mem-report must print the exact output
# fingerprint of a plain run, print a per-tag memory report with a
# nonzero peak RSS, and pass its own end-of-run leak check (every
# run-scoped tag drained back to ~0 live bytes after the output drops).
cargo test --release --test memory -q
MEM_DIR="$(mktemp -d)"
trap 'rm -rf "$METRICS_DIR" "$TRACE_DIR" "$MEM_DIR"' EXIT
mem_bin=(target/release/aggressive-scanners --days 1 --threads 4)
fp_unaccounted=$("${mem_bin[@]}" 2>/dev/null | awk -F': ' '/^output fingerprint/{print $2}')
"${mem_bin[@]}" --mem-report >"$MEM_DIR/report.txt" 2>&1 \
  || { echo "error: --mem-report run failed (leak check?)"; cat "$MEM_DIR/report.txt"; exit 1; }
fp_accounted=$(awk -F': ' '/^output fingerprint/{print $2}' "$MEM_DIR/report.txt")
[ -n "$fp_unaccounted" ] || { echo "error: unaccounted run printed no fingerprint"; exit 1; }
if [ "$fp_accounted" != "$fp_unaccounted" ]; then
  echo "error: memory accounting changed the output fingerprint:"
  echo "    unaccounted $fp_unaccounted"
  echo "    accounted   ${fp_accounted:-<none>}"
  exit 1
fi
grep -q '^\[mem\] leak check ok' "$MEM_DIR/report.txt" \
  || { echo "error: leak check line missing from --mem-report output"; exit 1; }
rss=$(awk '/^peak rss/{print $(NF-1); exit}' "$MEM_DIR/report.txt")
case "$rss" in (''|0) echo "error: peak RSS missing or zero in memory report"; exit 1;; esac
echo "    accounted and unaccounted runs both fingerprint $fp_unaccounted; peak rss $rss bytes"

echo "==> mutation gate"
# The curated sentinel set (ARCHITECTURE.md §14): ~17 token-level
# mutants at the load-bearing decision points — ring memory orderings,
# WAL CRC/truncation/seal handling, detector thresholds, aggregator
# boundary comparisons — each applied to a scratch copy of the tree and
# run against its explicit kill command. Every sentinel must come back
# *caught*; a survivor (or a detached sentinel whose site moved) fails
# the gate, under a hard wall-clock budget. Verdicts are cached by tree
# fingerprint, so a re-run on an unchanged tree is seconds.
cargo run -q -p ah-mutate -- --budget 2400 \
  || { echo "error: mutation sentinel gate failed (see survivors above)"; exit 1; }

echo "CI gate passed."
