//! Command-line front end for the `ah-lint` workspace invariant
//! checker; see the library crate docs for what the lints enforce.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::path::PathBuf;
use std::process::ExitCode;

use ah_lint::{run_workspace, LINTS};

const USAGE: &str = "\
ah-lint — workspace invariant checker

USAGE: ah-lint [--root DIR] [--lint ID]... [--md] [--json] [--deny-warnings] [--list]

  --root DIR        workspace root to scan (default: current directory)
  --lint ID         run only the named lint (repeatable; default: all)
  --md              check markdown links/anchors (doc-link) instead of Rust sources
  --json            emit one JSON object per finding instead of text
  --deny-warnings   exit nonzero when any finding is reported
  --list            list the known lints and exit
";

struct Opts {
    root: PathBuf,
    only: Vec<String>,
    md: bool,
    json: bool,
    deny: bool,
    list: bool,
}

fn parse_args(args: &[String]) -> Result<Opts, String> {
    let mut opts = Opts {
        root: PathBuf::from("."),
        only: Vec::new(),
        md: false,
        json: false,
        deny: false,
        list: false,
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--root" => {
                opts.root =
                    PathBuf::from(it.next().ok_or_else(|| "--root needs a value".to_string())?);
            }
            "--lint" => {
                let id = it.next().ok_or_else(|| "--lint needs a value".to_string())?;
                if !ah_lint::lints::known_lint(id) {
                    return Err(format!("unknown lint `{id}` (see --list)"));
                }
                opts.only.push(id.clone());
            }
            "--md" => opts.md = true,
            "--json" => opts.json = true,
            "--deny-warnings" => opts.deny = true,
            "--list" => opts.list = true,
            "--help" | "-h" => return Err(String::new()),
            other => return Err(format!("unrecognized argument `{other}`")),
        }
    }
    Ok(opts)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match parse_args(&args) {
        Ok(o) => o,
        Err(msg) => {
            if msg.is_empty() {
                print!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            eprintln!("ah-lint: {msg}\n\n{USAGE}");
            return ExitCode::from(2);
        }
    };
    if opts.list {
        for (id, desc) in LINTS {
            println!("{id:<22} {desc}");
        }
        return ExitCode::SUCCESS;
    }
    if opts.md {
        let (diags, files, links) = match ah_lint::mdcheck::check_workspace(&opts.root) {
            Ok(r) => r,
            Err(msg) => {
                eprintln!("ah-lint: {msg}");
                return ExitCode::from(2);
            }
        };
        for d in &diags {
            if opts.json {
                println!("{}", d.json());
            } else {
                println!("{}", d.human());
            }
        }
        eprintln!(
            "ah-lint: {} finding(s) across {links} link(s) in {files} markdown file(s)",
            diags.len()
        );
        if opts.deny && !diags.is_empty() {
            return ExitCode::FAILURE;
        }
        return ExitCode::SUCCESS;
    }
    let only = opts.only;
    let enabled = move |id: &str| only.is_empty() || only.iter().any(|o| o == id);
    let report = match run_workspace(&opts.root, &enabled) {
        Ok(r) => r,
        Err(msg) => {
            eprintln!("ah-lint: {msg}");
            return ExitCode::from(2);
        }
    };
    for d in &report.diagnostics {
        if opts.json {
            println!("{}", d.json());
        } else {
            println!("{}", d.human());
        }
    }
    eprintln!(
        "ah-lint: {} finding(s) across {} file(s)",
        report.diagnostics.len(),
        report.files_scanned
    );
    if opts.deny && !report.diagnostics.is_empty() {
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
