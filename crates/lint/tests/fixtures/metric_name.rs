//! Fixture: metric-name positives and negatives.

use ah_obs::Recorder;

pub fn register(rec: &Recorder) {
    rec.counter("ah_net_parse_errors_total");
    rec.counter("bad_name"); //~ metric-name
    rec.gauge("ah_pipeline_ring_Occupancy"); //~ metric-name
    rec.histogram_with("ah_x"); //~ metric-name
    rec.gauge_with("ah_flow_cache_occupancy", &[("router", "r1")]);
}

pub fn non_literal_names_are_out_of_scope(rec: &Recorder, suffix: &str) {
    // Only string literals are statically checkable; dynamic names are
    // covered by the runtime JSONL check in scripts/ci.sh.
    let name = format!("ah_net_dynamic_{suffix}");
    rec.counter(&name);
}

pub fn unrelated_counter_fn(counter: impl Fn(u64)) {
    counter(7);
}
