//! Fixture: a crate root carrying both posture attributes.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// A documented item.
pub fn item() {}
