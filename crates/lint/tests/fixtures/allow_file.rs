//! Fixture: a file-scope suppression silences every site in the file.

// ah-lint: allow-file(panic-path, reason = "fixture: file-scope scoping check")

pub fn first(v: Option<u32>) -> u32 {
    v.unwrap()
}

pub fn second(v: Option<u32>) -> u32 {
    v.expect("covered by the allow-file above")
}

pub fn far_from_the_directive() {
    panic!("still covered");
}
