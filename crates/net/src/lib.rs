//! Packet substrate for the aggressive-scanners reproduction.
//!
//! This crate implements, from scratch, everything the measurement pipeline
//! needs to speak raw IPv4: zero-copy header parsing and owned header
//! builders for Ethernet II, IPv4, TCP, UDP and ICMP; the classic libpcap
//! file format (reader and writer, both endiannesses); CIDR prefixes and a
//! fast prefix-set for dark-space membership tests; and the wire-level
//! fingerprints of the scanning tools the paper attributes traffic to
//! (ZMap, Masscan, Mirai).
//!
//! The design follows the smoltcp school: explicit buffers, no hidden
//! allocation on the parse path, exhaustive error enums, and owned
//! "repr" structs that can be emitted back to bytes so every parser is
//! testable by roundtrip.
//!
//! # Quick example
//!
//! ```
//! use ah_net::packet::{PacketMeta, Transport};
//! use ah_net::ipv4::Ipv4Addr4;
//!
//! // Build a TCP-SYN probe like a scanner would, serialize it, parse it back.
//! let meta = PacketMeta::tcp_syn(
//!     ah_net::time::Ts::from_secs(1),
//!     Ipv4Addr4::new(198, 51, 100, 7),
//!     Ipv4Addr4::new(192, 0, 2, 1),
//!     44321,
//!     6379,
//! );
//! let bytes = meta.to_bytes();
//! let parsed = PacketMeta::parse_ip(&bytes, meta.ts).unwrap();
//! assert_eq!(parsed.dst_port(), Some(6379));
//! assert!(matches!(parsed.transport, Transport::Tcp { .. }));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod checksum;
pub mod error;
pub mod ethernet;
pub mod fingerprint;
pub mod icmp;
pub mod ipv4;
pub mod packet;
pub mod pcap;
pub mod pcapng;
pub mod prefix;
pub mod tcp;
pub mod time;
pub mod udp;

pub use error::{NetError, Result};
pub use ipv4::Ipv4Addr4;
pub use packet::{PacketMeta, Transport};
pub use prefix::{Prefix, PrefixSet};
pub use time::Ts;
