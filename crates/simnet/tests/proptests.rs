//! Property-based tests for the simulator substrate.

use ah_net::time::Ts;
use ah_simnet::permute::Permutation;
use ah_simnet::rng::Rng64;
use ah_simnet::space::ObservableSpace;
use proptest::prelude::*;

proptest! {
    /// The Feistel permutation is a bijection on [0, n) for any n and key.
    #[test]
    fn permutation_bijection(n in 1u64..5000, key in any::<u64>()) {
        let p = Permutation::new(n, key);
        let mut seen = vec![false; n as usize];
        for i in 0..n {
            let y = p.apply(i);
            prop_assert!(y < n);
            prop_assert!(!seen[y as usize], "collision at {}", y);
            seen[y as usize] = true;
        }
    }

    /// Observable-space index/address mapping is a bijection over any
    /// disjoint prefix layout.
    #[test]
    fn space_index_roundtrip(
        lens in proptest::collection::vec(20u8..30, 1..6),
    ) {
        // Build disjoint prefixes spaced far apart.
        let prefixes: Vec<ah_net::prefix::Prefix> = lens
            .iter()
            .enumerate()
            .map(|(i, &l)| {
                ah_net::prefix::Prefix::new(
                    ah_net::ipv4::Ipv4Addr4((10 + i as u32) << 24),
                    l,
                )
                .unwrap()
            })
            .collect();
        let space = ObservableSpace::new(prefixes.clone());
        let total: u64 = prefixes.iter().map(|p| p.size()).sum();
        prop_assert_eq!(space.len(), total);
        // Probe a sample of indices.
        let step = (total / 64).max(1);
        let mut i = 0;
        while i < total {
            let addr = space.addr_at(i).unwrap();
            prop_assert_eq!(space.index_of(addr), Some(i));
            i += step;
        }
        prop_assert!(space.addr_at(total).is_none());
    }

    /// RNG helpers stay in their contracts for arbitrary seeds.
    #[test]
    fn rng_contracts(seed in any::<u64>(), n in 1u64..1_000_000) {
        let mut r = Rng64::new(seed);
        for _ in 0..50 {
            prop_assert!(r.below(n) < n);
            let f = r.f64();
            prop_assert!((0.0..1.0).contains(&f));
            prop_assert!(r.exp(2.0) > 0.0);
        }
    }

    /// Scenario traffic is time-ordered and deterministic for any seed
    /// (smoke property on a very small run).
    #[test]
    fn tiny_scenario_time_ordered(seed in 0u64..50) {
        use ah_simnet::scenario::{Scenario, ScenarioConfig};
        let mut sc = Scenario::build(ScenarioConfig::tiny(1, seed));
        let mut last = Ts::ZERO;
        let mut n = 0u64;
        while let Some(p) = sc.mux.next_packet() {
            prop_assert!(p.ts >= last);
            last = p.ts;
            n += 1;
            if n > 20_000 {
                break; // enough evidence per case
            }
        }
        prop_assert!(n > 100);
    }
}
