//! TCP header parsing and building.

use crate::checksum::{self, Sum16};
use crate::error::{NetError, Result};
use crate::ipv4::Ipv4Addr4;

/// Minimum TCP header length (no options).
pub const HEADER_LEN: usize = 20;

/// TCP flag bits, as a transparent wrapper over the low 8 flag bits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct TcpFlags(pub u8);

impl TcpFlags {
    /// Connection teardown.
    pub const FIN: TcpFlags = TcpFlags(0x01);
    /// Connection open (the scanning probe flag).
    pub const SYN: TcpFlags = TcpFlags(0x02);
    /// Connection reset.
    pub const RST: TcpFlags = TcpFlags(0x04);
    /// Push.
    pub const PSH: TcpFlags = TcpFlags(0x08);
    /// Acknowledgment.
    pub const ACK: TcpFlags = TcpFlags(0x10);
    /// Urgent pointer significant.
    pub const URG: TcpFlags = TcpFlags(0x20);
    /// SYN|ACK, the shape of DoS backscatter.
    pub const SYN_ACK: TcpFlags = TcpFlags(0x12);

    /// True when every bit of `other` is set in `self`.
    pub const fn contains(self, other: TcpFlags) -> bool {
        self.0 & other.0 == other.0
    }

    /// Bitwise union of two flag sets.
    pub const fn union(self, other: TcpFlags) -> TcpFlags {
        TcpFlags(self.0 | other.0)
    }

    /// A bare SYN: SYN set and ACK clear. This is the telescope's
    /// definition of a TCP scanning packet.
    pub const fn is_bare_syn(self) -> bool {
        self.0 & 0x12 == 0x02
    }
}

/// An owned TCP header. Options are carried verbatim.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TcpHeader {
    /// Source port.
    pub src_port: u16,
    /// Destination port.
    pub dst_port: u16,
    /// Sequence number. Scanner fingerprints live here (Masscan, Mirai).
    pub seq: u32,
    /// Acknowledgment number.
    pub ack: u32,
    /// Header flags.
    pub flags: TcpFlags,
    /// Receive window.
    pub window: u16,
    /// Urgent pointer.
    pub urgent: u16,
    /// Raw options bytes, length must be a multiple of 4 and ≤ 40.
    pub options: Vec<u8>,
}

impl TcpHeader {
    /// A conventional SYN probe as emitted by port scanners.
    pub fn syn(src_port: u16, dst_port: u16, seq: u32) -> Self {
        TcpHeader {
            src_port,
            dst_port,
            seq,
            ack: 0,
            flags: TcpFlags::SYN,
            window: 65535,
            urgent: 0,
            options: Vec::new(),
        }
    }

    /// Header length in bytes including options.
    pub fn header_len(&self) -> usize {
        HEADER_LEN + self.options.len()
    }

    /// Parse from `data` (the full L4 segment). Returns header + payload.
    ///
    /// `verify_csum` optionally checks the transport checksum against the
    /// given IPv4 pseudo-header addresses. Flow collectors skip this on
    /// the fast path; the telescope verifies on capture.
    pub fn parse(
        data: &[u8],
        verify_csum: Option<(Ipv4Addr4, Ipv4Addr4)>,
    ) -> Result<(TcpHeader, &[u8])> {
        if data.len() < HEADER_LEN {
            return Err(NetError::Truncated { layer: "tcp", needed: HEADER_LEN, got: data.len() });
        }
        let offset = usize::from(data[12] >> 4) * 4;
        if !(HEADER_LEN..=60).contains(&offset) || offset > data.len() {
            return Err(NetError::BadLength { layer: "tcp", value: offset });
        }
        if let Some((src, dst)) = verify_csum {
            let mut s =
                checksum::pseudo_header(src, dst, crate::ipv4::PROTO_TCP, data.len() as u16);
            s.add(data);
            if s.finish() != 0 {
                return Err(NetError::BadChecksum { layer: "tcp" });
            }
        }
        let header = TcpHeader {
            src_port: u16::from_be_bytes([data[0], data[1]]),
            dst_port: u16::from_be_bytes([data[2], data[3]]),
            seq: u32::from_be_bytes([data[4], data[5], data[6], data[7]]),
            ack: u32::from_be_bytes([data[8], data[9], data[10], data[11]]),
            flags: TcpFlags(data[13]),
            window: u16::from_be_bytes([data[14], data[15]]),
            urgent: u16::from_be_bytes([data[18], data[19]]),
            options: data[HEADER_LEN..offset].to_vec(),
        };
        Ok((header, &data[offset..]))
    }

    /// Serialize into `out` with a correct checksum over the pseudo-header
    /// and `payload`.
    pub fn emit(&self, src: Ipv4Addr4, dst: Ipv4Addr4, payload: &[u8], out: &mut Vec<u8>) {
        debug_assert!(self.options.len().is_multiple_of(4) && self.options.len() <= 40);
        let start = out.len();
        let total = self.header_len() + payload.len();
        out.extend_from_slice(&self.src_port.to_be_bytes());
        out.extend_from_slice(&self.dst_port.to_be_bytes());
        out.extend_from_slice(&self.seq.to_be_bytes());
        out.extend_from_slice(&self.ack.to_be_bytes());
        out.push(((self.header_len() / 4) as u8) << 4);
        out.push(self.flags.0);
        out.extend_from_slice(&self.window.to_be_bytes());
        out.extend_from_slice(&[0, 0]); // checksum placeholder
        out.extend_from_slice(&self.urgent.to_be_bytes());
        out.extend_from_slice(&self.options);
        out.extend_from_slice(payload);
        let mut s: Sum16 = checksum::pseudo_header(src, dst, crate::ipv4::PROTO_TCP, total as u16);
        s.add(&out[start..]);
        let csum = s.finish();
        out[start + 16..start + 18].copy_from_slice(&csum.to_be_bytes());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SRC: Ipv4Addr4 = Ipv4Addr4::new(198, 51, 100, 1);
    const DST: Ipv4Addr4 = Ipv4Addr4::new(192, 0, 2, 77);

    #[test]
    fn flags_predicates() {
        assert!(TcpFlags::SYN.is_bare_syn());
        assert!(!TcpFlags::SYN_ACK.is_bare_syn());
        assert!(!TcpFlags::ACK.is_bare_syn());
        assert!(TcpFlags::SYN_ACK.contains(TcpFlags::SYN));
        assert!(TcpFlags::SYN_ACK.contains(TcpFlags::ACK));
        assert!(!TcpFlags::SYN.contains(TcpFlags::ACK));
        assert_eq!(TcpFlags::SYN.union(TcpFlags::ACK), TcpFlags::SYN_ACK);
    }

    #[test]
    fn roundtrip_syn() {
        let h = TcpHeader::syn(40000, 6379, 0xdead_beef);
        let mut buf = Vec::new();
        h.emit(SRC, DST, &[], &mut buf);
        let (parsed, payload) = TcpHeader::parse(&buf, Some((SRC, DST))).unwrap();
        assert_eq!(parsed, h);
        assert!(payload.is_empty());
    }

    #[test]
    fn roundtrip_with_payload_and_options() {
        let mut h = TcpHeader::syn(1234, 22, 7);
        h.options = vec![2, 4, 0x05, 0xb4]; // MSS 1460
        h.flags = TcpFlags::SYN_ACK;
        let payload = b"hello scanners";
        let mut buf = Vec::new();
        h.emit(SRC, DST, payload, &mut buf);
        let (parsed, got) = TcpHeader::parse(&buf, Some((SRC, DST))).unwrap();
        assert_eq!(parsed, h);
        assert_eq!(got, payload);
    }

    #[test]
    fn checksum_covers_pseudo_header() {
        // Same bytes but different IP addresses must fail verification.
        let h = TcpHeader::syn(1, 2, 3);
        let mut buf = Vec::new();
        h.emit(SRC, DST, &[], &mut buf);
        let other = Ipv4Addr4::new(10, 0, 0, 1);
        assert_eq!(
            TcpHeader::parse(&buf, Some((other, DST))),
            Err(NetError::BadChecksum { layer: "tcp" })
        );
        // Skipping verification accepts them.
        assert!(TcpHeader::parse(&buf, None).is_ok());
    }

    #[test]
    fn rejects_truncated() {
        let h = TcpHeader::syn(1, 2, 3);
        let mut buf = Vec::new();
        h.emit(SRC, DST, &[], &mut buf);
        for cut in 0..HEADER_LEN {
            assert!(TcpHeader::parse(&buf[..cut], None).is_err());
        }
    }

    #[test]
    fn rejects_bad_data_offset() {
        let h = TcpHeader::syn(1, 2, 3);
        let mut buf = Vec::new();
        h.emit(SRC, DST, &[], &mut buf);
        buf[12] = 0x30; // offset 12 bytes < 20
        assert!(matches!(TcpHeader::parse(&buf, None), Err(NetError::BadLength { .. })));
        buf[12] = 0xf0; // offset 60 > buffer
        assert!(matches!(TcpHeader::parse(&buf, None), Err(NetError::BadLength { .. })));
    }
}
