//! Result cache: `out/mutate-cache.json`, keyed by (mutant id, tree
//! fingerprint).
//!
//! The contract is all-or-nothing: entries recorded under a different
//! tree fingerprint are discarded wholesale on load, because a verdict
//! ("the suite catches this mutant") depends on every source and test
//! file in the tree, not just the mutated one. On an unchanged tree a
//! re-run executes zero mutants; after any edit, everything re-runs.
//! The file is hand-rolled JSON written one entry per line, so the
//! first-party reader below stays a line scanner (the same idiom as
//! `tests/telemetry.rs`).

use std::fs;
use std::io;
use std::path::Path;

use crate::runner::{Outcome, RunResult};

/// One cached verdict.
#[derive(Clone, Debug, PartialEq)]
pub struct Entry {
    /// Mutant id (16 hex chars).
    pub id: String,
    /// Classification of the run.
    pub outcome: Outcome,
    /// Short human detail (failing step, tail of output).
    pub detail: String,
    /// Wall-clock seconds the mutant took to classify.
    pub secs: f64,
}

/// The cache: a tree fingerprint plus verdicts recorded under it.
#[derive(Default)]
pub struct Cache {
    /// Fingerprint the entries are valid for.
    pub tree_fp: String,
    /// Verdicts by mutant id, sorted on save.
    pub entries: std::collections::BTreeMap<String, Entry>,
}

impl Cache {
    /// Load the cache at `path`, keeping entries only when the stored
    /// fingerprint matches `tree_fp`.
    pub fn load(path: &Path, tree_fp: &str) -> Cache {
        let mut cache = Cache { tree_fp: tree_fp.to_string(), entries: Default::default() };
        let Ok(body) = fs::read_to_string(path) else { return cache };
        let stored_fp = body.lines().find_map(|l| field_str(l, "tree_fp"));
        if stored_fp.as_deref() != Some(tree_fp) {
            return cache; // invalidated: different tree (or unreadable)
        }
        for line in body.lines() {
            let (Some(id), Some(outcome)) = (field_str(line, "id"), field_str(line, "outcome"))
            else {
                continue;
            };
            let Some(outcome) = Outcome::parse(&outcome) else { continue };
            let entry = Entry {
                id: id.clone(),
                outcome,
                detail: field_str(line, "detail").unwrap_or_default(),
                secs: field_num(line, "secs").unwrap_or(0.0),
            };
            cache.entries.insert(id, entry);
        }
        cache
    }

    /// Record a verdict.
    pub fn insert(&mut self, id: &str, result: &RunResult) {
        self.entries.insert(
            id.to_string(),
            Entry {
                id: id.to_string(),
                outcome: result.outcome,
                detail: result.detail.clone(),
                secs: result.secs,
            },
        );
    }

    /// Persist to `path` (tmp + rename, one entry per line).
    pub fn save(&self, path: &Path) -> io::Result<()> {
        let mut body = String::new();
        body.push_str(&format!(
            "{{\"schema\":\"ah-mutate-cache/1\",\"tree_fp\":\"{}\",\n",
            self.tree_fp
        ));
        body.push_str("\"results\":[\n");
        let mut first = true;
        for e in self.entries.values() {
            if !first {
                body.push_str(",\n");
            }
            first = false;
            body.push_str(&format!(
                "{{\"id\":\"{}\",\"outcome\":\"{}\",\"secs\":{:.3},\"detail\":\"{}\"}}",
                e.id,
                e.outcome.as_str(),
                e.secs,
                escape_json(&e.detail)
            ));
        }
        body.push_str("\n]}\n");
        if let Some(parent) = path.parent() {
            fs::create_dir_all(parent)?;
        }
        let tmp = path.with_extension("json.tmp");
        fs::write(&tmp, body)?;
        fs::rename(&tmp, path)
    }
}

/// Escape a string for embedding in JSON.
pub fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Extract `"key":"value"` from a single JSON line our writer emitted,
/// unescaping the backslash forms [`escape_json`] produces.
pub fn field_str(line: &str, key: &str) -> Option<String> {
    let pat = format!("\"{key}\":\"");
    let start = line.find(&pat)? + pat.len();
    let rest = &line[start..];
    let mut out = String::new();
    let mut chars = rest.chars();
    while let Some(c) = chars.next() {
        match c {
            '"' => return Some(out),
            '\\' => match chars.next()? {
                'n' => out.push('\n'),
                '"' => out.push('"'),
                '\\' => out.push('\\'),
                'u' => {
                    let hex: String = chars.by_ref().take(4).collect();
                    let v = u32::from_str_radix(&hex, 16).ok()?;
                    out.push(char::from_u32(v)?);
                }
                other => out.push(other),
            },
            c => out.push(c),
        }
    }
    None
}

/// Extract `"key":123.4` from a single JSON line.
pub fn field_num(line: &str, key: &str) -> Option<f64> {
    let pat = format!("\"{key}\":");
    let start = line.find(&pat)? + pat.len();
    let rest: String = line[start..]
        .chars()
        .take_while(|c| c.is_ascii_digit() || *c == '.' || *c == '-')
        .collect();
    rest.parse().ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn result(outcome: Outcome, detail: &str) -> RunResult {
        RunResult { outcome, detail: detail.to_string(), secs: 1.25 }
    }

    #[test]
    fn round_trips_and_invalidates_on_fingerprint_change() {
        let dir = std::env::temp_dir().join(format!("ah-mutate-cache-{}", std::process::id()));
        let path = dir.join("cache.json");
        let mut c = Cache { tree_fp: "aa".into(), entries: Default::default() };
        c.insert("0011", &result(Outcome::Caught, "step `test -p x` failed"));
        c.insert("0022", &result(Outcome::Survived, "all steps passed\n\"quoted\""));
        c.save(&path).unwrap();

        let back = Cache::load(&path, "aa");
        assert_eq!(back.entries.len(), 2);
        assert_eq!(back.entries["0011"].outcome, Outcome::Caught);
        assert_eq!(back.entries["0022"].detail, "all steps passed\n\"quoted\"");
        assert!((back.entries["0022"].secs - 1.25).abs() < 1e-9);

        let invalidated = Cache::load(&path, "bb");
        assert!(invalidated.entries.is_empty(), "fingerprint change must drop everything");
        assert_eq!(invalidated.tree_fp, "bb");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_file_loads_empty() {
        let c = Cache::load(Path::new("/nonexistent/cache.json"), "zz");
        assert!(c.entries.is_empty());
        assert_eq!(c.tree_fp, "zz");
    }
}
