//! The flow cache: sampled packets in, flow records out.
//!
//! Mirrors router behaviour: a keyed cache where entries are exported
//! when idle past the *inactive timeout*, when they live past the
//! *active timeout* (long flows are chopped so collectors see them
//! periodically), or when the trace ends.

use crate::record::{FlowKey, FlowRecord};
use crate::router::Direction;
use ah_net::packet::{PacketMeta, Transport};
use ah_net::time::{Dur, Ts};
use std::collections::HashMap;

/// Cisco-style defaults.
pub const DEFAULT_ACTIVE_TIMEOUT: Dur = Dur::from_mins(30);
pub const DEFAULT_INACTIVE_TIMEOUT: Dur = Dur::from_secs(15);

struct Entry {
    first: Ts,
    last: Ts,
    packets: u64,
    bytes: u64,
    tcp_flags: u8,
    direction: Direction,
}

/// A per-router flow cache.
pub struct FlowCache {
    router: u8,
    active_timeout: Dur,
    inactive_timeout: Dur,
    entries: HashMap<FlowKey, Entry>,
    exported: Vec<FlowRecord>,
    last_sweep: Ts,
}

impl FlowCache {
    /// A cache for `router` with the default timeouts.
    pub fn new(router: u8) -> FlowCache {
        FlowCache::with_timeouts(router, DEFAULT_ACTIVE_TIMEOUT, DEFAULT_INACTIVE_TIMEOUT)
    }

    /// A cache with explicit timeouts.
    pub fn with_timeouts(router: u8, active: Dur, inactive: Dur) -> FlowCache {
        FlowCache {
            router,
            active_timeout: active,
            inactive_timeout: inactive,
            entries: HashMap::new(),
            exported: Vec::new(),
            last_sweep: Ts::ZERO,
        }
    }

    /// Account one *sampled* packet.
    pub fn observe(&mut self, pkt: &PacketMeta, direction: Direction) {
        if pkt.ts.since(self.last_sweep) >= self.inactive_timeout {
            self.sweep(pkt.ts);
        }
        let key = FlowKey::of(pkt);
        let flags = match pkt.transport {
            Transport::Tcp { flags, .. } => flags.0,
            _ => 0,
        };
        match self.entries.entry(key) {
            std::collections::hash_map::Entry::Occupied(mut e) => {
                let needs_cut = {
                    let en = e.get();
                    pkt.ts.since(en.last) > self.inactive_timeout
                        || pkt.ts.since(en.first) > self.active_timeout
                        || en.direction != direction
                };
                if needs_cut {
                    let (k, en) = (key, e.remove());
                    self.exported.push(Self::export(self.router, k, en));
                    self.entries.insert(key, Self::fresh(pkt, flags, direction));
                } else {
                    let en = e.get_mut();
                    en.last = en.last.max(pkt.ts);
                    en.packets += 1;
                    en.bytes += u64::from(pkt.wire_len);
                    en.tcp_flags |= flags;
                }
            }
            std::collections::hash_map::Entry::Vacant(v) => {
                v.insert(Self::fresh(pkt, flags, direction));
            }
        }
    }

    fn fresh(pkt: &PacketMeta, flags: u8, direction: Direction) -> Entry {
        Entry {
            first: pkt.ts,
            last: pkt.ts,
            packets: 1,
            bytes: u64::from(pkt.wire_len),
            tcp_flags: flags,
            direction,
        }
    }

    fn export(router: u8, key: FlowKey, e: Entry) -> FlowRecord {
        FlowRecord {
            key,
            router,
            direction: e.direction,
            first: e.first,
            last: e.last,
            packets: e.packets,
            bytes: e.bytes,
            tcp_flags: e.tcp_flags,
        }
    }

    /// Export all entries idle past the inactive timeout or older than the
    /// active timeout as of `now`.
    pub fn sweep(&mut self, now: Ts) {
        self.last_sweep = now;
        let inactive = self.inactive_timeout;
        let active = self.active_timeout;
        let expired: Vec<FlowKey> = self
            .entries
            .iter()
            .filter(|(_, e)| now.since(e.last) > inactive || now.since(e.first) > active)
            .map(|(k, _)| *k)
            .collect();
        for k in expired {
            if let Some(e) = self.entries.remove(&k) {
                self.exported.push(Self::export(self.router, k, e));
            }
        }
    }

    /// Drain exported records.
    pub fn drain(&mut self) -> Vec<FlowRecord> {
        std::mem::take(&mut self.exported)
    }

    /// Export everything remaining (end of trace) and drain.
    pub fn flush(&mut self) -> Vec<FlowRecord> {
        let router = self.router;
        let mut out = std::mem::take(&mut self.exported);
        for (k, e) in self.entries.drain() {
            out.push(Self::export(router, k, e));
        }
        out
    }

    /// Number of in-cache flows.
    pub fn active_flows(&self) -> usize {
        self.entries.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ah_net::ipv4::Ipv4Addr4;

    const S: Ipv4Addr4 = Ipv4Addr4::new(203, 0, 113, 1);
    const D: Ipv4Addr4 = Ipv4Addr4::new(10, 0, 0, 1);

    fn pkt(ts_s: u64, dport: u16) -> PacketMeta {
        PacketMeta::tcp_syn(Ts::from_secs(ts_s), S, D, 40000, dport)
    }

    #[test]
    fn packets_aggregate_into_one_flow() {
        let mut c = FlowCache::new(1);
        for t in 0..5 {
            c.observe(&pkt(t, 80), Direction::Ingress);
        }
        let recs = c.flush();
        assert_eq!(recs.len(), 1);
        let r = &recs[0];
        assert_eq!(r.packets, 5);
        assert_eq!(r.bytes, 200);
        assert_eq!(r.first, Ts::from_secs(0));
        assert_eq!(r.last, Ts::from_secs(4));
        assert_eq!(r.router, 1);
        assert_eq!(r.tcp_flags, 0x02);
    }

    #[test]
    fn inactive_timeout_splits() {
        let mut c = FlowCache::new(1);
        c.observe(&pkt(0, 80), Direction::Ingress);
        c.observe(&pkt(16, 80), Direction::Ingress); // > 15s idle
        let recs = c.flush();
        assert_eq!(recs.len(), 2);
    }

    #[test]
    fn active_timeout_chops_long_flows() {
        let mut c = FlowCache::new(1);
        // A packet every 10s for 35 minutes: inactive never fires, active does.
        for t in (0..2100).step_by(10) {
            c.observe(&pkt(t, 80), Direction::Ingress);
        }
        let recs = c.flush();
        assert!(recs.len() >= 2, "long flow was not chopped: {}", recs.len());
        let total: u64 = recs.iter().map(|r| r.packets).sum();
        assert_eq!(total, 210, "packets must be conserved across chops");
    }

    #[test]
    fn distinct_tuples_are_distinct_flows() {
        let mut c = FlowCache::new(2);
        c.observe(&pkt(0, 80), Direction::Ingress);
        c.observe(&pkt(0, 443), Direction::Ingress);
        assert_eq!(c.active_flows(), 2);
        assert_eq!(c.flush().len(), 2);
    }

    #[test]
    fn direction_change_splits_flow() {
        // Same 5-tuple seen in both directions (rare, but must not merge).
        let mut c = FlowCache::new(1);
        c.observe(&pkt(0, 80), Direction::Ingress);
        c.observe(&pkt(1, 80), Direction::Egress);
        let recs = c.flush();
        assert_eq!(recs.len(), 2);
    }

    #[test]
    fn sweep_exports_idle_flows() {
        let mut c = FlowCache::new(1);
        c.observe(&pkt(0, 80), Direction::Ingress);
        c.sweep(Ts::from_secs(100));
        assert_eq!(c.active_flows(), 0);
        assert_eq!(c.drain().len(), 1);
    }

    #[test]
    fn tcp_flags_accumulate() {
        let mut c = FlowCache::new(1);
        let mut p1 = pkt(0, 80);
        let mut p2 = pkt(1, 80);
        if let Transport::Tcp { ref mut flags, .. } = p1.transport {
            *flags = ah_net::tcp::TcpFlags::SYN;
        }
        if let Transport::Tcp { ref mut flags, .. } = p2.transport {
            *flags = ah_net::tcp::TcpFlags::ACK;
        }
        c.observe(&p1, Direction::Ingress);
        c.observe(&p2, Direction::Ingress);
        let recs = c.flush();
        assert_eq!(recs[0].tcp_flags, 0x12);
    }
}
