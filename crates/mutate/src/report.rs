//! Report rendering: `out/mutants.json` (machine-readable, schema
//! `ah-mutate/1`) and the markdown survivor table (`out/survivors.md`
//! plus stdout).
//!
//! The JSON file is written one mutant per line (the same idiom as the
//! cache and `tests/telemetry.rs`), so downstream line scanners need no
//! JSON parser. BENCH.md documents the schema. The survivor table is
//! the human deliverable: every surviving mutant is a test to write,
//! with file:line, the exact token flip, and the source line attached.

use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::Path;

use crate::cache::escape_json;
use crate::ops::Mutant;
use crate::runner::{Outcome, RunResult};

/// One classified mutant, ready to render.
pub struct Classified {
    /// The mutant.
    pub mutant: Mutant,
    /// Its verdict.
    pub result: RunResult,
    /// True when the verdict came from the cache (not executed now).
    pub cached: bool,
}

/// Outcome counts across a run.
#[derive(Default, Clone, Copy, Debug, PartialEq, Eq)]
pub struct Counts {
    /// Mutants the suite caught.
    pub caught: usize,
    /// Mutants the suite missed.
    pub survived: usize,
    /// Mutants that hit the wall-clock budget.
    pub timeout: usize,
    /// Mutants that failed to compile (excluded from scoring).
    pub build_broken: usize,
    /// Verdicts served from the cache.
    pub cached: usize,
}

/// Tally outcomes.
pub fn count(results: &[Classified]) -> Counts {
    let mut c = Counts::default();
    for r in results {
        match r.result.outcome {
            Outcome::Caught => c.caught += 1,
            Outcome::Survived => c.survived += 1,
            Outcome::Timeout => c.timeout += 1,
            Outcome::BuildBroken => c.build_broken += 1,
        }
        if r.cached {
            c.cached += 1;
        }
    }
    c
}

/// Kill rate over the scoreable population (caught + timeout over
/// everything except build-broken), as a percentage.
pub fn kill_rate(c: &Counts) -> f64 {
    let scoreable = c.caught + c.timeout + c.survived;
    if scoreable == 0 {
        return 100.0;
    }
    100.0 * (c.caught + c.timeout) as f64 / scoreable as f64
}

/// Render the `ah-mutate/1` JSON report.
pub fn render_json(tree_fp: &str, results: &[Classified]) -> String {
    let c = count(results);
    let mut out = String::new();
    let _ = writeln!(
        out,
        "{{\"schema\":\"ah-mutate/1\",\"tree_fp\":\"{tree_fp}\",\
         \"caught\":{},\"survived\":{},\"timeout\":{},\"build_broken\":{},\
         \"cached\":{},\"kill_rate\":{:.1},",
        c.caught,
        c.survived,
        c.timeout,
        c.build_broken,
        c.cached,
        kill_rate(&c)
    );
    out.push_str("\"mutants\":[\n");
    for (i, r) in results.iter().enumerate() {
        let m = &r.mutant;
        let _ = writeln!(
            out,
            "{{\"id\":\"{}\",\"file\":\"{}\",\"line\":{},\"op\":\"{}\",\
             \"original\":\"{}\",\"replacement\":\"{}\",\"outcome\":\"{}\",\
             \"cached\":{},\"secs\":{:.3},\"detail\":\"{}\"}}{}",
            m.id,
            escape_json(&m.file),
            m.line,
            m.op,
            escape_json(&m.original),
            escape_json(&m.replacement),
            r.result.outcome.as_str(),
            r.cached,
            r.result.secs,
            escape_json(&r.result.detail),
            if i + 1 < results.len() { "," } else { "" }
        );
    }
    out.push_str("]}\n");
    out
}

/// Render the markdown survivor table (empty table elided).
pub fn render_survivors(results: &[Classified]) -> String {
    let c = count(results);
    let mut out = String::new();
    let _ = writeln!(out, "# Mutation survivors\n");
    let _ = writeln!(
        out,
        "{} mutants: **{} caught**, **{} survived**, {} timeout, {} build-broken \
         ({} from cache) — kill rate {:.1}%.\n",
        results.len(),
        c.caught,
        c.survived,
        c.timeout,
        c.build_broken,
        c.cached,
        kill_rate(&c)
    );
    if c.survived == 0 {
        let _ = writeln!(out, "No survivors. Every scoreable mutant was caught.");
        return out;
    }
    let _ = writeln!(out, "| id | site | flip | source line |");
    let _ = writeln!(out, "|----|------|------|-------------|");
    for r in results {
        if r.result.outcome != Outcome::Survived {
            continue;
        }
        let m = &r.mutant;
        let _ = writeln!(
            out,
            "| `{}` | `{}:{}` | {} `{}` → `{}` | `{}` |",
            m.id,
            m.file,
            m.line,
            m.op,
            md_code(&m.original),
            md_code(&m.replacement),
            md_code(&m.context)
        );
    }
    let _ = writeln!(
        out,
        "\nEach row is a missing test: re-run just one with \
         `ah-mutate --id <id>` after writing it."
    );
    out
}

/// Escape backticks/pipes for use inside a markdown code span in a table.
fn md_code(s: &str) -> String {
    s.replace('`', "'").replace('|', "\\|")
}

/// Write both artifacts under `out_dir`.
pub fn write_reports(out_dir: &Path, tree_fp: &str, results: &[Classified]) -> io::Result<()> {
    fs::create_dir_all(out_dir)?;
    fs::write(out_dir.join("mutants.json"), render_json(tree_fp, results))?;
    fs::write(out_dir.join("survivors.md"), render_survivors(results))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::enumerate_source;

    fn classified(outcome: Outcome, cached: bool) -> Classified {
        let src = "//! d\nfn f(a: u64) -> bool {\n    a >= 10\n}\n";
        let mutant = enumerate_source("crates/x/src/lib.rs", src).remove(0);
        Classified {
            mutant,
            result: RunResult { outcome, detail: "step `x` said \"no\"".into(), secs: 2.5 },
            cached,
        }
    }

    #[test]
    fn json_report_counts_and_escapes() {
        let results = vec![classified(Outcome::Caught, true), classified(Outcome::Survived, false)];
        let json = render_json("deadbeef00000000", &results);
        assert!(json.contains("\"schema\":\"ah-mutate/1\""));
        assert!(json.contains("\"tree_fp\":\"deadbeef00000000\""));
        assert!(json.contains("\"caught\":1,\"survived\":1,\"timeout\":0"));
        assert!(json.contains("\"cached\":1"));
        assert!(json.contains("\\\"no\\\""), "details must be JSON-escaped");
        assert!(json.contains("\"kill_rate\":50.0"));
    }

    #[test]
    fn survivor_table_lists_only_survivors() {
        let results = vec![
            classified(Outcome::Caught, false),
            classified(Outcome::Survived, false),
            classified(Outcome::BuildBroken, false),
        ];
        let md = render_survivors(&results);
        assert!(md.contains("| id | site |"));
        assert_eq!(md.matches("crates/x/src/lib.rs:3").count(), 1);
        assert!(md.contains("kill rate 50.0%"), "build-broken excluded from the rate:\n{md}");
    }

    #[test]
    fn clean_run_elides_the_table() {
        let md = render_survivors(&[classified(Outcome::Caught, false)]);
        assert!(md.contains("No survivors"));
        assert!(!md.contains("| id |"));
    }
}
