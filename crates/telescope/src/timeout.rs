//! Event idle-timeout derivation.
//!
//! The paper (footnote 1) derives its ~10-minute event expiration from the
//! "flow timeout problem" of Moore et al.'s network-telescopes report: a
//! slow *long scan* must not be split into many short events just because
//! the gaps between its darknet hits exceed the timeout.
//!
//! Model: a scanner probing the IPv4 space uniformly at random at rate
//! `r` pps hits a darknet of `n` addresses as a Poisson process with mean
//! inter-arrival `Δ = 2³² / (r·n)` seconds. Over a scan of duration `D`
//! there are about `D/Δ` gaps; requiring the probability that *any* gap
//! exceeds the timeout `T` to stay below `ε` (union bound over
//! exponential gaps) gives
//!
//! ```text
//! T = Δ · ln( D / (Δ·ε) )
//! ```
//!
//! With the paper's parameters (n ≈ 475k dark IPs, r = 100 pps, D = 2
//! days) this lands in the several-hundred-seconds range — "around 10
//! minutes" — which is also the crate-wide default.

use ah_net::time::Dur;

/// Size of the IPv4 address space.
const IPV4_SPACE: f64 = 4_294_967_296.0;

/// Parameters of the timeout derivation.
#[derive(Debug, Clone, Copy)]
pub struct TimeoutModel {
    /// Number of dark addresses monitored.
    pub dark_size: u64,
    /// Assumed scanning rate of the slowest "long scan" to preserve (pps).
    pub scan_rate_pps: f64,
    /// Assumed duration of the long scan (seconds).
    pub scan_duration_secs: f64,
    /// Acceptable probability of splitting such a scan.
    pub split_probability: f64,
}

impl TimeoutModel {
    /// The paper's assumptions: ORION-sized darknet, 100 pps, 2 days.
    pub fn paper() -> TimeoutModel {
        TimeoutModel {
            dark_size: 475_000,
            scan_rate_pps: 100.0,
            scan_duration_secs: 2.0 * 86_400.0,
            split_probability: 0.05,
        }
    }

    /// Expected inter-arrival of the scanner's packets at the darknet.
    pub fn expected_gap_secs(&self) -> f64 {
        IPV4_SPACE / (self.scan_rate_pps * self.dark_size as f64)
    }

    /// The derived timeout in seconds.
    pub fn timeout_secs(&self) -> f64 {
        let delta = self.expected_gap_secs();
        let gaps = (self.scan_duration_secs / delta).max(1.0);
        delta * (gaps / self.split_probability).ln().max(1.0)
    }

    /// The derived timeout as a duration (microsecond resolution).
    pub fn timeout(&self) -> Dur {
        Dur::from_micros((self.timeout_secs() * 1e6) as u64)
    }
}

/// The paper's operational choice: "around 10 minutes".
pub fn paper_default() -> Dur {
    Dur::from_mins(10)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_parameters_land_near_ten_minutes() {
        let m = TimeoutModel::paper();
        let t = m.timeout_secs();
        // The derivation lands in the hundreds of seconds; the paper
        // rounds this to "around 10 minutes".
        assert!((300.0..1800.0).contains(&t), "timeout {t} out of plausible range");
    }

    #[test]
    fn expected_gap_scales_inversely_with_darknet_size() {
        let small = TimeoutModel { dark_size: 1000, ..TimeoutModel::paper() };
        let big = TimeoutModel { dark_size: 1_000_000, ..TimeoutModel::paper() };
        assert!(small.expected_gap_secs() > big.expected_gap_secs() * 900.0);
    }

    #[test]
    fn slower_scans_need_longer_timeouts() {
        let fast = TimeoutModel { scan_rate_pps: 10_000.0, ..TimeoutModel::paper() };
        let slow = TimeoutModel { scan_rate_pps: 10.0, ..TimeoutModel::paper() };
        assert!(slow.timeout_secs() > fast.timeout_secs());
    }

    #[test]
    fn stricter_split_probability_lengthens_timeout() {
        let lax = TimeoutModel { split_probability: 0.5, ..TimeoutModel::paper() };
        let strict = TimeoutModel { split_probability: 0.001, ..TimeoutModel::paper() };
        assert!(strict.timeout_secs() > lax.timeout_secs());
    }

    #[test]
    fn default_is_ten_minutes() {
        assert_eq!(paper_default().secs(), 600);
    }
}
