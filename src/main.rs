//! Turnkey pipeline run with live telemetry — the smallest way to watch
//! the measurement pipeline from the outside.
//!
//! ```text
//! aggressive-scanners [--metrics PATH] [--metrics-interval N]
//!                     [--threads N] [--days N] [--seed N] [--fault-rate F]
//! ```
//!
//! Runs one full-vantage scenario (telescope + both ISPs + honeypots) on
//! the sharded engine and prints the health ledger. With `--metrics PATH`
//! every stage records instruments on a shared recorder and periodic
//! snapshots are written to `PATH.jsonl` (one JSON object per line) and
//! `PATH.prom` (Prometheus text exposition, latest snapshot). Telemetry
//! is observation-only: the run's output fingerprint is identical with
//! metrics on or off (see `tests/telemetry.rs`).
//!
//! For the paper's tables and figures use the `experiment` binary in
//! `crates/bench`, which takes the same two metrics flags.

use aggressive_scanners::pipeline::{self, RunOptions, Telemetry};
use aggressive_scanners::simnet::faults::FaultPlan;
use aggressive_scanners::simnet::scenario::ScenarioConfig;
use ah_obs::{Exporter, Recorder};
use std::path::PathBuf;

fn parse<T: std::str::FromStr>(args: &[String], i: usize, flag: &str) -> T {
    let Some(v) = args.get(i) else {
        eprintln!("error: {flag} requires a value");
        std::process::exit(2);
    };
    v.parse().unwrap_or_else(|_| {
        eprintln!("error: {flag}: {v:?} is not valid");
        std::process::exit(2);
    })
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut metrics: Option<PathBuf> = None;
    let mut interval = 10_000u64;
    let mut threads = 4usize;
    let mut days = 3u64;
    let mut seed = 7u64;
    let mut fault_rate = 0.0f64;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--metrics" => {
                i += 1;
                metrics =
                    Some(PathBuf::from(args.get(i).map(String::as_str).unwrap_or_else(|| {
                        eprintln!("error: --metrics requires a file-base (e.g. out/metrics)");
                        std::process::exit(2);
                    })));
            }
            "--metrics-interval" => {
                i += 1;
                interval = parse(&args, i, "--metrics-interval");
            }
            "--threads" => {
                i += 1;
                threads = parse(&args, i, "--threads");
            }
            "--days" => {
                i += 1;
                days = parse(&args, i, "--days");
            }
            "--seed" => {
                i += 1;
                seed = parse(&args, i, "--seed");
            }
            "--fault-rate" => {
                i += 1;
                fault_rate = parse(&args, i, "--fault-rate");
            }
            "--help" | "-h" => {
                eprintln!(
                    "usage: aggressive-scanners [--metrics PATH] [--metrics-interval N] [--threads N] [--days N] [--seed N] [--fault-rate F]"
                );
                return;
            }
            other => {
                eprintln!("error: unknown argument {other:?} (try --help)");
                std::process::exit(2);
            }
        }
        i += 1;
    }

    let mut tel = match metrics {
        Some(base) => {
            if let Some(dir) = base.parent().filter(|d| !d.as_os_str().is_empty()) {
                std::fs::create_dir_all(dir).ok();
            }
            let rec = Recorder::new();
            let exporter = Exporter::new(rec.clone(), base, interval);
            eprintln!(
                "[metrics] {} + {} every {interval} packets",
                exporter.jsonl_path().display(),
                exporter.prom_path().display()
            );
            Telemetry::with_exporter(rec, exporter)
        }
        None => Telemetry::disabled(),
    };

    let mut opts = RunOptions::full();
    if fault_rate > 0.0 {
        opts = opts.with_faults(FaultPlan::uniform(fault_rate, seed));
    }
    eprintln!("[run] tiny world, {days} days, seed {seed}, {threads} shard(s)...");
    let t0 = std::time::Instant::now();
    let out = pipeline::run_parallel_with_recorder(
        ScenarioConfig::tiny(days, seed),
        opts,
        threads,
        &mut tel,
    );
    let secs = t0.elapsed().as_secs_f64();

    println!("generated packets : {}", out.generated_packets);
    println!("captured packets  : {}", out.capture.total_packets);
    println!("scan packets      : {}", out.capture.scan_packets);
    println!("output fingerprint: {:016x}", out.fingerprint());
    println!("wall clock        : {secs:.1}s");
    println!();
    print!("{}", out.health.render());
    if !out.health.conserves() {
        eprintln!("error: conservation violated in {:?}", out.health.violations());
        std::process::exit(1);
    }
    if let Some(ex) = tel.exporter.as_ref() {
        println!();
        println!(
            "[metrics] {} snapshots -> {} ({} io errors)",
            ex.snapshots_written(),
            ex.jsonl_path().display(),
            ex.io_errors()
        );
    }
}
