//! Execution engine: virtual threads, the shadow memory model, and the
//! cooperative scheduler that serializes them.
//!
//! One *execution* runs the model closure from scratch under a fully
//! controlled schedule. Virtual threads are real OS threads from a
//! per-[`World`] worker pool, but only one ever runs at a time: every
//! shadow operation blocks until the controller grants it the token, so
//! the interleaving — and therefore the entire execution — is decided
//! by the trace being explored, never by the host scheduler.
//!
//! # Memory model
//!
//! Atomic locations keep their full **store history**. A load does not
//! simply see "the" current value: the set of stores it may observe is
//! every store not yet superseded by one that happens-before the load
//! (per-location coherence is enforced through a per-thread `seen`
//! index). When more than one store is readable the choice becomes an
//! explored decision point, bounded by the per-(thread, location)
//! stale-read budget ([`Config::stale_depth`]) — the model's analogue
//! of a finite store buffer. Release-class stores snapshot the
//! storer's vector clock; acquire-class loads join the snapshot of the
//! store they read, which is exactly the C11 release/acquire
//! synchronizes-with edge. An RMW's store also carries forward the
//! snapshot of the store it read from — the C++20 *release sequence*:
//! a chain of `fetch_add`s headed by a release operation keeps that
//! head's snapshot alive, whatever each link's own ordering, so an
//! acquire load of the last link synchronizes with every release
//! operation in the chain. `SeqCst` additionally joins through a
//! global clock (a sound approximation of the single total order; the
//! workspace lint forbids `SeqCst` anyway). Plain [`cell`] accesses are
//! not synchronization: they carry FastTrack-style read/write clocks
//! and any pair of unordered conflicting accesses is reported as a
//! data race.
//!
//! [`cell`]: crate::shadow::Cell

// ah-lint: allow-file(panic-path, reason = "test-support crate: executor invariant violations (poisoned channels, missing trace nodes) are checker bugs and must abort the run loudly")
// ah-lint: allow-file(atomic-ordering, reason = "the handful of real atomics here coordinate the token handoff between controller and virtual threads; SeqCst keeps the checker itself trivially correct while the code under test carries the interesting orderings")

use std::collections::HashMap;
use std::sync::atomic::Ordering;
use std::sync::mpsc;
use std::sync::{Arc, Condvar, Mutex, MutexGuard};

use crate::clock::VClock;
use crate::{Config, Failure, FailureKind};

/// Sentinel "thread id" for the initialization store of an atomic
/// location (happens-before everything, like a `static` initializer).
const INIT_TID: usize = usize::MAX;

/// Panic payload used to unwind virtual threads of an aborted
/// execution; the chained panic hook prints nothing for it.
pub(crate) struct AbortExec;

type Job = Box<dyn FnOnce() + Send + 'static>;

/// One store in an atomic location's history.
#[derive(Clone, Debug)]
pub(crate) struct StoreRec {
    pub val: u64,
    /// Virtual thread that performed the store ([`INIT_TID`] for the
    /// initial value).
    pub by: usize,
    /// The storer's own clock component at store time; `clock.get(by)
    /// >= tick` means the store happens-before the observer.
    pub tick: u64,
    /// Clock snapshot joined by acquire-class loads that read this
    /// store (empty for relaxed-class stores: observing one yields no
    /// synchronizes-with edge).
    pub sync: VClock,
}

/// An atomic location: label for traces plus the full store history.
pub(crate) struct AtomicLoc {
    pub label: String,
    pub stores: Vec<StoreRec>,
}

/// A plain (non-atomic) location tracked only for race detection.
pub(crate) struct CellLoc {
    pub label: String,
    pub write_clock: VClock,
    pub read_clock: VClock,
}

/// What a virtual thread intends to do at its next scheduling point.
#[derive(Clone, Debug)]
pub(crate) enum OpDesc {
    Load { loc: usize, ord: Ordering },
    Store { loc: usize, ord: Ordering },
    Rmw { loc: usize, ord: Ordering },
    Yield,
    Spawn,
    Join { target: usize },
}

impl OpDesc {
    fn describe(&self, inner: &Inner) -> String {
        match self {
            OpDesc::Load { loc, ord } => format!("{}.load({ord:?})", inner.atomics[*loc].label),
            OpDesc::Store { loc, ord } => format!("{}.store({ord:?})", inner.atomics[*loc].label),
            OpDesc::Rmw { loc, ord } => format!("{}.rmw({ord:?})", inner.atomics[*loc].label),
            OpDesc::Yield => "yield".into(),
            OpDesc::Spawn => "spawn".into(),
            OpDesc::Join { target } => format!("join(t{target})"),
        }
    }
}

/// Scheduler-visible state of a virtual thread.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum RunSt {
    /// Spawned but has not yet reached its first scheduling point.
    Starting,
    /// Blocked at a scheduling point, waiting for the token.
    Waiting,
    /// Holds the token (or is executing model code between points).
    Running,
    /// Parked in `yield`; woken by the next store or a rescue pass.
    Parked,
    /// Model closure returned (or unwound).
    Finished,
}

pub(crate) struct ThreadSt {
    pub name: String,
    pub st: RunSt,
    pub intent: Option<OpDesc>,
    pub clock: VClock,
    /// Per-location minimum readable store index (coherence).
    pub seen: HashMap<usize, usize>,
    /// Remaining stale (non-latest) read choices per location.
    pub budget: HashMap<usize, u32>,
    /// Clock at finish, joined by `join()`ers.
    pub final_clock: Option<VClock>,
}

impl ThreadSt {
    fn new(name: String, clock: VClock) -> ThreadSt {
        ThreadSt {
            name,
            st: RunSt::Starting,
            intent: None,
            clock,
            seen: HashMap::new(),
            budget: HashMap::new(),
            final_clock: None,
        }
    }
}

/// One decision point in a trace: the choice taken plus the
/// alternatives still pending for depth-first backtracking.
#[derive(Clone, Debug)]
pub(crate) struct Node {
    pub chosen: Choice,
    pub pending: Vec<Choice>,
}

/// A single explored decision.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum Choice {
    /// Grant the token to this virtual thread.
    Sched(usize),
    /// Make the pending load read this store index.
    Read(usize),
}

pub(crate) struct Inner {
    pub cfg: Config,
    pub threads: Vec<ThreadSt>,
    pub atomics: Vec<AtomicLoc>,
    pub cells: Vec<CellLoc>,
    /// Thread currently granted the token (None while the controller
    /// is deciding).
    pub active: Option<usize>,
    pub last_sched: usize,
    pub preemptions: u32,
    pub steps: u64,
    /// Bumped on every store and every consumed stale-read budget —
    /// two rescue passes at the same epoch mean a genuine deadlock.
    pub progress_epoch: u64,
    pub rescue_epoch: Option<u64>,
    /// `SeqCst` total-order approximation clock.
    pub sc_clock: VClock,
    pub abort: bool,
    pub failure: Option<Failure>,
    /// DFS trace: replayed prefix + nodes appended this execution.
    pub trace: Vec<Node>,
    pub cursor: usize,
    pub oplog: Option<Vec<String>>,
    /// Names requested for the next spawned thread, if any.
    pub next_name: Option<String>,
}

pub(crate) struct World {
    pub inner: Mutex<Inner>,
    pub cv: Condvar,
    pool: Mutex<Pool>,
}

#[derive(Default)]
struct Pool {
    senders: Vec<mpsc::Sender<Job>>,
    handles: Vec<std::thread::JoinHandle<()>>,
}

thread_local! {
    static CTX: std::cell::RefCell<Option<(Arc<World>, usize)>> =
        const { std::cell::RefCell::new(None) };
}

/// Run `f` with the calling OS thread's virtual-thread context;
/// panics if called outside a model execution.
pub(crate) fn with_ctx<R>(f: impl FnOnce(&Arc<World>, usize) -> R) -> R {
    CTX.with(|c| {
        let b = c.borrow();
        let (world, tid) = b
            .as_ref()
            .expect("interleave shadow primitives may only be used inside Checker::check");
        f(world, *tid)
    })
}

fn lock(m: &Mutex<Inner>) -> MutexGuard<'_, Inner> {
    // Virtual threads unwind (by design) while holding no invariants
    // the lock protects mid-update, so a poisoned mutex is still sound
    // to reuse.
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

impl World {
    pub fn new(cfg: Config) -> World {
        World {
            inner: Mutex::new(Inner {
                cfg,
                threads: Vec::new(),
                atomics: Vec::new(),
                cells: Vec::new(),
                active: None,
                last_sched: 0,
                preemptions: 0,
                steps: 0,
                progress_epoch: 0,
                rescue_epoch: None,
                sc_clock: VClock::new(),
                abort: false,
                failure: None,
                trace: Vec::new(),
                cursor: 0,
                oplog: None,
                next_name: None,
            }),
            cv: Condvar::new(),
            pool: Mutex::new(Pool::default()),
        }
    }

    /// Dispatch `job` to the pooled worker for virtual thread `tid`,
    /// spawning the worker on first use.
    fn dispatch(self: &Arc<Self>, tid: usize, job: Job) {
        let mut pool = self.pool.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        while pool.senders.len() <= tid {
            let (tx, rx) = mpsc::channel::<Job>();
            pool.senders.push(tx);
            let worker_no = pool.handles.len();
            pool.handles.push(
                std::thread::Builder::new()
                    .name(format!("interleave-w{worker_no}"))
                    .spawn(move || {
                        while let Ok(job) = rx.recv() {
                            job();
                        }
                    })
                    .expect("spawn interleave worker"),
            );
        }
        pool.senders[tid].send(job).expect("interleave worker alive");
    }

    pub fn shutdown_pool(&self) {
        let mut pool = self.pool.lock().unwrap_or_else(std::sync::PoisonError::into_inner);
        pool.senders.clear();
        for h in pool.handles.drain(..) {
            let _ = h.join();
        }
    }
}

impl Inner {
    fn log(&mut self, line: String) {
        if let Some(log) = &mut self.oplog {
            log.push(line);
        }
    }

    fn fail(&mut self, kind: FailureKind, message: String) {
        if self.failure.is_none() {
            self.failure = Some(Failure {
                kind,
                message,
                schedule: render_schedule(&self.trace[..self.cursor.min(self.trace.len())]),
                oplog: self.oplog.clone().unwrap_or_default(),
            });
        }
        self.abort = true;
    }

    /// Threads that could be granted the token right now.
    fn enabled(&self) -> Vec<usize> {
        self.threads
            .iter()
            .enumerate()
            .filter(|(_, t)| {
                t.st == RunSt::Waiting
                    && match t.intent {
                        Some(OpDesc::Join { target }) => self.threads[target].st == RunSt::Finished,
                        _ => true,
                    }
            })
            .map(|(i, _)| i)
            .collect()
    }

    /// Lowest store index thread `tid` may still read at `loc`:
    /// everything below the newest store that happens-before it (or
    /// that it has already observed) is gone for good.
    fn readable_floor(&self, tid: usize, loc: usize) -> usize {
        let th = &self.threads[tid];
        let mut floor = th.seen.get(&loc).copied().unwrap_or(0);
        let stores = &self.atomics[loc].stores;
        for (idx, s) in stores.iter().enumerate().rev() {
            if idx <= floor {
                break;
            }
            if s.by == INIT_TID || th.clock.get(s.by) >= s.tick {
                floor = idx;
                break;
            }
        }
        floor
    }

    /// Resolve the store a load reads, creating a decision point when
    /// the memory model permits more than one and budget remains.
    fn decide_read(&mut self, tid: usize, loc: usize) -> usize {
        let floor = self.readable_floor(tid, loc);
        let latest = self.atomics[loc].stores.len() - 1;
        if floor == latest {
            // Only one readable store: not a decision point at all.
            return latest;
        }
        let depth = self.cfg.stale_depth;
        let chosen = if self.cursor < self.trace.len() {
            let c = self.trace[self.cursor].chosen;
            self.cursor += 1;
            match c {
                Choice::Read(idx) if idx <= latest => idx,
                _ => {
                    // The model diverged from the recorded trace; the
                    // model closure must be deterministic.
                    self.fail(
                        FailureKind::NonDeterminism,
                        format!("replay diverged: recorded read choice {c:?} is invalid"),
                    );
                    latest
                }
            }
        } else {
            let budget = *self.threads[tid].budget.entry(loc).or_insert(depth);
            let mut pending = Vec::new();
            if budget > 0 {
                pending.extend((floor..latest).map(Choice::Read));
            }
            self.trace.push(Node { chosen: Choice::Read(latest), pending });
            self.cursor += 1;
            latest
        };
        if chosen < latest {
            let b = self.threads[tid].budget.entry(loc).or_insert(depth);
            *b = b.saturating_sub(1);
            self.progress_epoch += 1;
        }
        chosen
    }

    fn unpark_all(&mut self) {
        for t in &mut self.threads {
            if t.st == RunSt::Parked {
                t.st = RunSt::Waiting;
            }
        }
    }
}

/// Register intent and block until the controller grants the token.
/// Returns with the world lock held and the token consumed.
fn await_grant<'a>(
    world: &'a World,
    me: usize,
    op: OpDesc,
    mut g: MutexGuard<'a, Inner>,
) -> MutexGuard<'a, Inner> {
    g.threads[me].intent = Some(op);
    g.threads[me].st = RunSt::Waiting;
    world.cv.notify_all();
    loop {
        if g.abort && !std::thread::panicking() {
            drop(g);
            std::panic::panic_any(AbortExec);
        }
        if g.active == Some(me) {
            break;
        }
        g = world.cv.wait(g).unwrap_or_else(std::sync::PoisonError::into_inner);
    }
    g.active = None;
    g.steps += 1;
    g.threads[me].st = RunSt::Running;
    if g.steps > g.cfg.max_steps {
        let cap = g.cfg.max_steps;
        g.fail(
            FailureKind::StepLimit,
            format!("execution exceeded max_steps = {cap} scheduling points"),
        );
        world.cv.notify_all();
        drop(g);
        std::panic::panic_any(AbortExec);
    }
    g
}

/// True when this operation should run in degraded "free-run" mode:
/// the thread is unwinding (drop handlers of an aborted or panicked
/// execution still run real code), so perform the memory effect with
/// default choices and no scheduling, branching, or race reporting.
fn free_running(g: &Inner) -> bool {
    std::thread::panicking() || (g.abort && g.failure.is_some())
}

fn is_acquire(ord: Ordering) -> bool {
    matches!(ord, Ordering::Acquire | Ordering::AcqRel | Ordering::SeqCst)
}

fn is_release(ord: Ordering) -> bool {
    matches!(ord, Ordering::Release | Ordering::AcqRel | Ordering::SeqCst)
}

/// Allocate a new atomic location (not a scheduling point: creation is
/// deterministic because only one virtual thread runs at a time).
pub(crate) fn alloc_atomic(init: u64) -> usize {
    with_ctx(|world, _| {
        let mut g = lock(&world.inner);
        let id = g.atomics.len();
        g.atomics.push(AtomicLoc {
            label: format!("a{id}"),
            stores: vec![StoreRec { val: init, by: INIT_TID, tick: 0, sync: VClock::new() }],
        });
        id
    })
}

pub(crate) fn alloc_cell() -> usize {
    with_ctx(|world, _| {
        let mut g = lock(&world.inner);
        let id = g.cells.len();
        g.cells.push(CellLoc {
            label: format!("c{id}"),
            write_clock: VClock::new(),
            read_clock: VClock::new(),
        });
        id
    })
}

pub(crate) fn op_load(loc: usize, ord: Ordering) -> u64 {
    with_ctx(|world, me| {
        let g = lock(&world.inner);
        if free_running(&g) {
            let v = g.atomics[loc].stores.last().map_or(0, |s| s.val);
            return v;
        }
        let mut g = await_grant(world, me, OpDesc::Load { loc, ord }, g);
        g.threads[me].clock.tick(me);
        let idx = g.decide_read(me, loc);
        let latest = g.atomics[loc].stores.len() - 1;
        let store = g.atomics[loc].stores[idx].clone();
        g.threads[me].seen.insert(loc, idx);
        if is_acquire(ord) {
            let sync = store.sync.clone();
            g.threads[me].clock.join(&sync);
            if ord == Ordering::SeqCst {
                let sc = g.sc_clock.clone();
                g.threads[me].clock.join(&sc);
                let clk = g.threads[me].clock.clone();
                g.sc_clock.join(&clk);
            }
        }
        let line = format!(
            "[t{me} {}] {}.load({ord:?}) -> {} (store #{idx}{} by {})",
            g.threads[me].name,
            g.atomics[loc].label,
            store.val,
            if idx < latest { format!(", stale: latest is #{latest}") } else { String::new() },
            if store.by == INIT_TID { "init".into() } else { format!("t{}", store.by) },
        );
        g.log(line);
        finish_op(world, g, me);
        store.val
    })
}

pub(crate) fn op_store(loc: usize, ord: Ordering, val: u64) {
    with_ctx(|world, me| {
        let g = lock(&world.inner);
        if free_running(&g) {
            let mut g = g;
            let tick = g.threads[me].clock.get(me);
            g.atomics[loc].stores.push(StoreRec { val, by: me, tick, sync: VClock::new() });
            return;
        }
        let mut g = await_grant(world, me, OpDesc::Store { loc, ord }, g);
        g.threads[me].clock.tick(me);
        if ord == Ordering::SeqCst {
            let sc = g.sc_clock.clone();
            g.threads[me].clock.join(&sc);
        }
        let sync = if is_release(ord) { g.threads[me].clock.clone() } else { VClock::new() };
        if ord == Ordering::SeqCst {
            let clk = g.threads[me].clock.clone();
            g.sc_clock.join(&clk);
        }
        let tick = g.threads[me].clock.get(me);
        let idx = g.atomics[loc].stores.len();
        g.atomics[loc].stores.push(StoreRec { val, by: me, tick, sync });
        g.threads[me].seen.insert(loc, idx);
        g.progress_epoch += 1;
        g.unpark_all();
        let line = format!(
            "[t{me} {}] {}.store({val}, {ord:?}) -> store #{idx}",
            g.threads[me].name, g.atomics[loc].label
        );
        g.log(line);
        finish_op(world, g, me);
    })
}

/// Atomic read-modify-write: always reads the latest store (C11 RMW
/// atomicity), applies `f`, appends the result.
pub(crate) fn op_rmw(loc: usize, ord: Ordering, f: impl FnOnce(u64) -> u64) -> u64 {
    with_ctx(|world, me| {
        let g = lock(&world.inner);
        if free_running(&g) {
            let mut g = g;
            let old = g.atomics[loc].stores.last().map_or(0, |s| s.val);
            let tick = g.threads[me].clock.get(me);
            g.atomics[loc].stores.push(StoreRec { val: f(old), by: me, tick, sync: VClock::new() });
            return old;
        }
        let mut g = await_grant(world, me, OpDesc::Rmw { loc, ord }, g);
        g.threads[me].clock.tick(me);
        if ord == Ordering::SeqCst {
            let sc = g.sc_clock.clone();
            g.threads[me].clock.join(&sc);
        }
        let latest = g.atomics[loc].stores.len() - 1;
        let old = g.atomics[loc].stores[latest].val;
        if is_acquire(ord) {
            let sync = g.atomics[loc].stores[latest].sync.clone();
            g.threads[me].clock.join(&sync);
        }
        // C++20 [atomics.order]: an RMW continues the release sequence
        // of the store it reads from, whatever the RMW's own ordering.
        // Its store therefore carries the predecessor's sync snapshot
        // forward (joined with this thread's clock iff release-class),
        // so an acquire load of the *last* fetch_add in a chain
        // synchronizes with every release operation in the chain — the
        // edge counted-close protocols (e.g. the MPSC merge ring's)
        // depend on.
        let mut sync = if is_release(ord) { g.threads[me].clock.clone() } else { VClock::new() };
        let prev_sync = g.atomics[loc].stores[latest].sync.clone();
        sync.join(&prev_sync);
        if ord == Ordering::SeqCst {
            let clk = g.threads[me].clock.clone();
            g.sc_clock.join(&clk);
        }
        let new = f(old);
        let tick = g.threads[me].clock.get(me);
        let idx = g.atomics[loc].stores.len();
        g.atomics[loc].stores.push(StoreRec { val: new, by: me, tick, sync });
        g.threads[me].seen.insert(loc, idx);
        g.progress_epoch += 1;
        g.unpark_all();
        let line = format!(
            "[t{me} {}] {}.rmw({ord:?}) {old} -> {new} (store #{idx})",
            g.threads[me].name, g.atomics[loc].label
        );
        g.log(line);
        finish_op(world, g, me);
        old
    })
}

/// Non-synchronizing load of the latest store, for teardown paths
/// where the caller has exclusive ownership (shadow of `get_mut`).
/// Not a scheduling point.
pub(crate) fn op_unsync_load(loc: usize) -> u64 {
    with_ctx(|world, _| {
        let g = lock(&world.inner);
        g.atomics[loc].stores.last().map_or(0, |s| s.val)
    })
}

/// Plain-memory access check (no scheduling point, no branching): the
/// caller performs the real read/write under the same lock.
pub(crate) fn cell_access(cell: usize, write: bool) {
    with_ctx(|world, me| {
        let mut g = lock(&world.inner);
        if free_running(&g) {
            return;
        }
        let clk = g.threads[me].clock.clone();
        let c = &g.cells[cell];
        let conflict = if write {
            !c.write_clock.le(&clk) || !c.read_clock.le(&clk)
        } else {
            !c.write_clock.le(&clk)
        };
        if conflict {
            let label = c.label.clone();
            let kind = if write { "write" } else { "read" };
            let msg = format!(
                "data race: t{me} ({}) {kind}s plain cell {label} not ordered \
                 after a previous conflicting access (missing happens-before edge)",
                g.threads[me].name
            );
            g.fail(FailureKind::DataRace, msg);
            world.cv.notify_all();
            drop(g);
            std::panic::panic_any(AbortExec);
        }
        let tick = g.threads[me].clock.tick(me);
        let c = &mut g.cells[cell];
        if write {
            c.write_clock.record(me, tick);
        } else {
            c.read_clock.record(me, tick);
        }
        let label = g.cells[cell].label.clone();
        let line = format!(
            "[t{me} {}] {label}.{}",
            g.threads[me].name,
            if write { "write" } else { "read" }
        );
        g.log(line);
    })
}

/// `yield_now`/`spin_loop` in a model: park until another thread
/// stores (or a rescue pass wakes everyone), then reschedule.
pub(crate) fn op_yield() {
    with_ctx(|world, me| {
        let g = lock(&world.inner);
        if free_running(&g) {
            return;
        }
        let mut g = await_grant(world, me, OpDesc::Yield, g);
        g.threads[me].st = RunSt::Parked;
        let line = format!("[t{me} {}] yield (parked)", g.threads[me].name);
        g.log(line);
        world.cv.notify_all();
        // Wait to be unparked (store / rescue), then for a fresh grant.
        loop {
            if g.abort && !std::thread::panicking() {
                drop(g);
                std::panic::panic_any(AbortExec);
            }
            if g.threads[me].st == RunSt::Waiting && g.active == Some(me) {
                break;
            }
            g = world.cv.wait(g).unwrap_or_else(std::sync::PoisonError::into_inner);
        }
        g.active = None;
        g.steps += 1;
        g.threads[me].st = RunSt::Running;
        finish_op(world, g, me);
    })
}

/// Spawn a virtual thread running `f`; its result is retrievable via
/// the paired join slot.
pub(crate) fn op_spawn(job: Job, name: Option<String>) -> usize {
    with_ctx(|world, me| {
        let g = lock(&world.inner);
        assert!(!free_running(&g), "interleave: spawning a thread while unwinding is unsupported");
        let mut g = await_grant(world, me, OpDesc::Spawn, g);
        g.threads[me].clock.tick(me);
        let child = g.threads.len();
        let child_name = name.or_else(|| g.next_name.take()).unwrap_or_else(|| format!("t{child}"));
        // Spawn happens-before everything in the child.
        let clock = g.threads[me].clock.clone();
        g.threads.push(ThreadSt::new(child_name, clock));
        let line = format!("[t{me} {}] spawn -> t{child}", g.threads[me].name);
        g.log(line);
        finish_op(world, g, me);
        let world2 = Arc::clone(world);
        world.dispatch(
            child,
            Box::new(move || {
                enter_thread(world2, child, job);
            }),
        );
        child
    })
}

/// Block until `target` finishes, then join its final clock
/// (thread-exit happens-before join, as with `std::thread::join`).
pub(crate) fn op_join(target: usize) {
    with_ctx(|world, me| {
        let g = lock(&world.inner);
        if free_running(&g) {
            // Wait (non-schedulingly) for the target to finish its own
            // unwinding so join slots are populated or abandoned.
            let mut g = g;
            while g.threads[target].st != RunSt::Finished {
                g = world.cv.wait(g).unwrap_or_else(std::sync::PoisonError::into_inner);
            }
            return;
        }
        let mut g = await_grant(world, me, OpDesc::Join { target }, g);
        g.threads[me].clock.tick(me);
        let final_clock =
            g.threads[target].final_clock.clone().expect("join granted only after target finished");
        g.threads[me].clock.join(&final_clock);
        let line = format!("[t{me} {}] join(t{target})", g.threads[me].name);
        g.log(line);
        finish_op(world, g, me);
    })
}

/// Release the token back to the controller after performing an op.
fn finish_op(world: &World, mut g: MutexGuard<'_, Inner>, me: usize) {
    g.threads[me].intent = None;
    world.cv.notify_all();
}

/// Worker-side wrapper for one virtual thread of one execution.
pub(crate) fn enter_thread(world: Arc<World>, tid: usize, job: Job) {
    CTX.with(|c| *c.borrow_mut() = Some((Arc::clone(&world), tid)));
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(job));
    CTX.with(|c| *c.borrow_mut() = None);
    let mut g = lock(&world.inner);
    if let Err(payload) = result {
        if payload.downcast_ref::<AbortExec>().is_none() {
            let message = payload
                .downcast_ref::<&str>()
                .map(|s| s.to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "model thread panicked (non-string payload)".into());
            let name = g.threads[tid].name.clone();
            g.fail(FailureKind::Panic, format!("t{tid} ({name}) panicked: {message}"));
        }
    }
    let clk = g.threads[tid].clock.clone();
    g.threads[tid].final_clock = Some(clk);
    g.threads[tid].st = RunSt::Finished;
    g.threads[tid].intent = None;
    world.cv.notify_all();
}

/// Run the model once under `prefix`, appending fresh decision points.
/// Returns the full trace and the failure, if any.
pub(crate) fn run_once(
    world: &Arc<World>,
    model: &Arc<dyn Fn() + Send + Sync>,
    prefix: Vec<Node>,
    want_oplog: bool,
) -> (Vec<Node>, Option<Failure>, u64) {
    {
        let mut g = lock(&world.inner);
        g.threads.clear();
        g.threads.push(ThreadSt::new("main".into(), VClock::new()));
        g.atomics.clear();
        g.cells.clear();
        g.active = None;
        g.last_sched = 0;
        g.preemptions = 0;
        g.steps = 0;
        g.progress_epoch = 0;
        g.rescue_epoch = None;
        g.sc_clock = VClock::new();
        g.abort = false;
        g.failure = None;
        g.trace = prefix;
        g.cursor = 0;
        g.oplog = if want_oplog { Some(Vec::new()) } else { None };
        g.next_name = None;
    }
    let model = Arc::clone(model);
    let world2 = Arc::clone(world);
    world.dispatch(
        0,
        Box::new(move || {
            enter_thread(world2, 0, Box::new(move || model()));
        }),
    );
    controller(world);
    let mut g = lock(&world.inner);
    let trace = std::mem::take(&mut g.trace);
    let mut failure = g.failure.take();
    let steps = g.steps;
    if let (Some(f), Some(log)) = (&mut failure, g.oplog.take()) {
        f.oplog = log;
    }
    (trace, failure, steps)
}

/// The scheduler: waits for quiescence, picks the next thread per the
/// trace (or appends a fresh decision node), and hands out the token
/// until every virtual thread has finished.
fn controller(world: &Arc<World>) {
    let mut g = lock(&world.inner);
    loop {
        // Quiescence: nobody starting, running, or holding the token.
        loop {
            let busy = g.active.is_some()
                || g.threads.iter().any(|t| matches!(t.st, RunSt::Starting | RunSt::Running));
            if !busy {
                break;
            }
            g = world.cv.wait(g).unwrap_or_else(std::sync::PoisonError::into_inner);
        }
        if g.threads.iter().all(|t| t.st == RunSt::Finished) {
            return;
        }
        if g.abort {
            // Wake unwinding threads and wait for them to finish.
            world.cv.notify_all();
            g = world.cv.wait(g).unwrap_or_else(std::sync::PoisonError::into_inner);
            continue;
        }
        let enabled = g.enabled();
        if enabled.is_empty() {
            let parked: Vec<usize> = g
                .threads
                .iter()
                .enumerate()
                .filter(|(_, t)| t.st == RunSt::Parked)
                .map(|(i, _)| i)
                .collect();
            if !parked.is_empty() && g.rescue_epoch != Some(g.progress_epoch) {
                // Rescue pass: wake spinners so stale views can refresh.
                // If nothing changed since the last rescue this is a
                // genuine deadlock (checked above via the epoch).
                g.rescue_epoch = Some(g.progress_epoch);
                g.unpark_all();
                world.cv.notify_all();
                continue;
            }
            let stuck: Vec<String> = g
                .threads
                .iter()
                .enumerate()
                .filter(|(_, t)| t.st != RunSt::Finished)
                .map(|(i, t)| {
                    format!(
                        "t{i} ({}) {:?} intent={}",
                        t.name,
                        t.st,
                        t.intent.as_ref().map_or("-".into(), |op| op.describe(&g)),
                    )
                })
                .collect();
            g.fail(
                FailureKind::Deadlock,
                format!("no runnable thread and no progress possible: {}", stuck.join("; ")),
            );
            world.cv.notify_all();
            continue;
        }
        // A scheduling point is a decision (and occupies a trace node)
        // exactly when more than one thread is enabled; the replay rule
        // below must mirror the recording rule or cursors misalign.
        let chosen = if enabled.len() == 1 {
            enabled[0]
        } else if g.cursor < g.trace.len() {
            let c = g.trace[g.cursor].chosen;
            g.cursor += 1;
            match c {
                Choice::Sched(t) if enabled.contains(&t) => t,
                _ => {
                    g.fail(
                        FailureKind::NonDeterminism,
                        format!("replay diverged: recorded choice {c:?} not enabled"),
                    );
                    world.cv.notify_all();
                    continue;
                }
            }
        } else {
            let default = if enabled.contains(&g.last_sched) { g.last_sched } else { enabled[0] };
            // Alternatives to the default are explored only when taking
            // one would be free (the last thread is gone from the
            // enabled set, so any switch is voluntary) or when the
            // preemption budget still has room.
            let last_enabled = enabled.contains(&g.last_sched);
            let can_preempt = g.preemptions < g.cfg.preemption_bound;
            let pending: Vec<Choice> = if !last_enabled || can_preempt {
                enabled.iter().copied().filter(|&t| t != default).map(Choice::Sched).collect()
            } else {
                Vec::new()
            };
            g.trace.push(Node { chosen: Choice::Sched(default), pending });
            g.cursor += 1;
            default
        };
        if chosen != g.last_sched
            && g.threads[g.last_sched].st == RunSt::Waiting
            && g.enabled().contains(&g.last_sched)
        {
            g.preemptions += 1;
        }
        g.last_sched = chosen;
        g.active = Some(chosen);
        world.cv.notify_all();
    }
}

/// Render a trace as human-readable schedule lines.
pub(crate) fn render_schedule(trace: &[Node]) -> Vec<String> {
    trace
        .iter()
        .enumerate()
        .map(|(i, n)| match n.chosen {
            Choice::Sched(t) => format!("#{i:<4} run t{t}"),
            Choice::Read(idx) => format!("#{i:<4} read store #{idx}"),
        })
        .collect()
}
