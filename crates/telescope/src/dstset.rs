//! Memory-adaptive exact distinct-counting set over dense `u32` ids.
//!
//! Per-event destination-dispersion tracking needs an exact "how many
//! distinct dark IPs did this source touch" counter. Most events touch a
//! handful of destinations; aggressive ones touch hundreds of thousands.
//! A fixed bitmap per event would cost `dark_size / 8` bytes for *every*
//! concurrent event, so the set upgrades its representation as it grows:
//!
//! 1. sorted inline vector (≤ 32 entries, binary-searched),
//! 2. hash set (≤ `BITMAP_THRESHOLD` entries),
//! 3. fixed bitmap over the id universe (exact, O(1) inserts).

use std::collections::HashSet;

/// Upgrade point from hash set to bitmap.
const VEC_MAX: usize = 32;
/// Upgrade point from hash set to bitmap (entries).
const BITMAP_THRESHOLD: usize = 4096;

/// Exact distinct-counting set over ids in `0..universe`.
#[derive(Debug, Clone)]
pub struct DstSet {
    universe: u32,
    repr: Repr,
}

#[derive(Debug, Clone)]
enum Repr {
    Vec(Vec<u32>),
    Hash(HashSet<u32>),
    Bitmap { words: Vec<u64>, count: u32 },
}

impl DstSet {
    /// An empty set over `0..universe`.
    pub fn new(universe: u32) -> DstSet {
        DstSet { universe, repr: Repr::Vec(Vec::new()) }
    }

    /// Insert an id; returns true when newly added.
    ///
    /// # Panics
    /// Debug-asserts `id < universe`; in release, out-of-universe ids
    /// would corrupt bitmap mode, so they are clamped into range.
    pub fn insert(&mut self, id: u32) -> bool {
        debug_assert!(id < self.universe, "id {id} outside universe {}", self.universe);
        let id = id.min(self.universe.saturating_sub(1));
        match &mut self.repr {
            Repr::Vec(v) => match v.binary_search(&id) {
                Ok(_) => false,
                Err(pos) => {
                    v.insert(pos, id);
                    if v.len() > VEC_MAX {
                        let set: HashSet<u32> = v.drain(..).collect();
                        self.repr = Repr::Hash(set);
                    }
                    true
                }
            },
            Repr::Hash(set) => {
                let added = set.insert(id);
                if added && set.len() > BITMAP_THRESHOLD {
                    let words = vec![0u64; (self.universe as usize).div_ceil(64)];
                    let mut bm = Repr::Bitmap { words, count: 0 };
                    if let Repr::Bitmap { words, count } = &mut bm {
                        for &x in set.iter() {
                            let (w, b) = (x as usize / 64, x % 64);
                            if words[w] & (1 << b) == 0 {
                                words[w] |= 1 << b;
                                *count += 1;
                            }
                        }
                    }
                    self.repr = bm;
                }
                added
            }
            Repr::Bitmap { words, count } => {
                let (w, b) = (id as usize / 64, id % 64);
                if words[w] & (1 << b) == 0 {
                    words[w] |= 1 << b;
                    *count += 1;
                    true
                } else {
                    false
                }
            }
        }
    }

    /// Membership test.
    pub fn contains(&self, id: u32) -> bool {
        match &self.repr {
            Repr::Vec(v) => v.binary_search(&id).is_ok(),
            Repr::Hash(set) => set.contains(&id),
            Repr::Bitmap { words, .. } => {
                let (w, b) = (id as usize / 64, id % 64);
                words.get(w).is_some_and(|x| x & (1 << b) != 0)
            }
        }
    }

    /// Exact number of distinct ids inserted.
    pub fn count(&self) -> u32 {
        match &self.repr {
            Repr::Vec(v) => v.len() as u32,
            Repr::Hash(set) => set.len() as u32,
            Repr::Bitmap { count, .. } => *count,
        }
    }

    /// Size of the id universe.
    pub fn universe(&self) -> u32 {
        self.universe
    }

    /// Fraction of the universe covered, in [0, 1].
    pub fn coverage(&self) -> f64 {
        if self.universe == 0 {
            0.0
        } else {
            f64::from(self.count()) / f64::from(self.universe)
        }
    }

    /// Union another set into this one (exact, order-insensitive).
    ///
    /// Fast-paths the bitmap×bitmap case with word-wise OR; all other
    /// representation pairs fall back to element-wise insertion (which
    /// also performs any representation upgrades the growth triggers).
    pub fn union_with(&mut self, other: &DstSet) {
        debug_assert_eq!(self.universe, other.universe, "universe mismatch in union");
        if let (Repr::Bitmap { words, count }, Repr::Bitmap { words: ow, .. }) =
            (&mut self.repr, &other.repr)
        {
            let mut total = 0u32;
            for (a, b) in words.iter_mut().zip(ow.iter()) {
                *a |= *b;
                total += a.count_ones();
            }
            *count = total;
            return;
        }
        match &other.repr {
            Repr::Vec(v) => {
                for &id in v {
                    self.insert(id);
                }
            }
            Repr::Hash(set) => {
                for &id in set {
                    self.insert(id);
                }
            }
            Repr::Bitmap { words, .. } => {
                for (w, word) in words.iter().enumerate() {
                    let mut bits = *word;
                    while bits != 0 {
                        let b = bits.trailing_zeros();
                        self.insert(w as u32 * 64 + b);
                        bits &= bits - 1;
                    }
                }
            }
        }
    }

    /// Which representation is currently in use (for tests/benches).
    pub fn repr_name(&self) -> &'static str {
        match self.repr {
            Repr::Vec(_) => "vec",
            Repr::Hash(_) => "hash",
            Repr::Bitmap { .. } => "bitmap",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_dedupes() {
        let mut s = DstSet::new(1000);
        assert!(s.insert(5));
        assert!(!s.insert(5));
        assert!(s.insert(7));
        assert_eq!(s.count(), 2);
        assert!(s.contains(5));
        assert!(!s.contains(6));
    }

    #[test]
    fn upgrades_vec_to_hash_to_bitmap() {
        let mut s = DstSet::new(100_000);
        assert_eq!(s.repr_name(), "vec");
        for i in 0..40 {
            s.insert(i * 3);
        }
        assert_eq!(s.repr_name(), "hash");
        assert_eq!(s.count(), 40);
        for i in 0..5000u32 {
            s.insert(i * 7 % 100_000);
        }
        assert_eq!(s.repr_name(), "bitmap");
        // Count must survive all upgrades exactly.
        let mut naive = std::collections::HashSet::new();
        for i in 0..40u32 {
            naive.insert(i * 3);
        }
        for i in 0..5000u32 {
            naive.insert(i * 7 % 100_000);
        }
        assert_eq!(s.count() as usize, naive.len());
        for &x in &naive {
            assert!(s.contains(x));
        }
    }

    #[test]
    fn coverage_fraction() {
        let mut s = DstSet::new(100);
        for i in 0..10 {
            s.insert(i);
        }
        assert!((s.coverage() - 0.10).abs() < 1e-12);
        assert_eq!(s.universe(), 100);
    }

    #[test]
    fn full_universe_coverage() {
        let mut s = DstSet::new(5000);
        for i in 0..5000 {
            s.insert(i);
        }
        assert_eq!(s.count(), 5000);
        assert!((s.coverage() - 1.0).abs() < 1e-12);
        assert_eq!(s.repr_name(), "bitmap");
    }

    #[test]
    fn empty_universe() {
        let s = DstSet::new(0);
        assert_eq!(s.coverage(), 0.0);
        assert_eq!(s.count(), 0);
    }
}
