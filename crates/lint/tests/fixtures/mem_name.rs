//! Fixture: metric-name coverage for the ah-mem helper idiom.
//!
//! The pipeline's memory helpers take the metric name first so the
//! `ident ( "literal"` token shape matches the recorder methods and
//! this pass can check `ah_mem_*` names statically.

use ah_obs::Recorder;

fn mem_gauge(name: &'static str, rec: &Recorder, tag: &str, value: i64) {
    rec.gauge_with(name, &[("tag", tag)]).set(value);
}

fn mem_counter(name: &'static str, rec: &Recorder) -> ah_obs::Counter {
    rec.counter(name)
}

pub fn refresh(rec: &Recorder) {
    mem_gauge("ah_mem_tag_live_bytes", rec, "mux", 1);
    mem_gauge("ah_mem_live", rec, "mux", 1); //~ metric-name
    mem_gauge("mem_tag_live_bytes", rec, "mux", 1); //~ metric-name
    mem_counter("ah_mem_refresh_ticks_total", rec).inc();
    mem_counter("ah_mem_Refresh_ticks_total", rec).inc(); //~ metric-name
}

pub fn non_literal_names_are_out_of_scope(rec: &Recorder, tag: &str) {
    // Dynamic names fall to the runtime JSONL check in scripts/ci.sh.
    let name = format!("ah_mem_dynamic_{tag}");
    rec.counter(&name);
}
