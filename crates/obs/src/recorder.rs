//! The [`Recorder`] handle and its instruments.
//!
//! A [`Recorder`] is either *live* (holds a registry of named
//! instruments) or *no-op* (holds nothing). Instruments handed out by a
//! no-op recorder carry `None` internally, so every update is a single
//! branch on an `Option` discriminant — cheap enough to leave the
//! instrumentation compiled into release hot paths unconditionally.

// ah-lint: allow-file(atomic-ordering, reason = "ORDERING: instruments are monotone counters/gauges read only at snapshot time; Relaxed is the documented contract (see the crate docs) and keeps hot-path updates to a single uncontended RMW")

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use crate::export::{HistogramSnapshot, Sample, Snapshot, Value};

/// Registry key: metric name plus sorted label pairs.
type Key = (String, Vec<(String, String)>);

/// A registered instrument's shared storage.
enum Slot {
    Counter(Arc<AtomicU64>),
    Gauge(Arc<AtomicI64>),
    Histogram(Arc<HistogramCore>),
}

/// Shared state behind a live [`Recorder`].
struct Inner {
    metrics: Mutex<BTreeMap<Key, Slot>>,
}

/// Cheap, cloneable telemetry handle.
///
/// Construct with [`Recorder::new`] for a live recorder or
/// [`Recorder::noop`] for a disabled one. Registering the same name and
/// label set twice returns handles backed by the same storage, so
/// components may re-register freely.
#[derive(Clone)]
pub struct Recorder(Option<Arc<Inner>>);

impl std::fmt::Debug for Recorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Recorder").field("enabled", &self.is_enabled()).finish()
    }
}

impl Default for Recorder {
    fn default() -> Self {
        Recorder::noop()
    }
}

impl Recorder {
    /// A live recorder with an empty registry.
    pub fn new() -> Self {
        Recorder(Some(Arc::new(Inner { metrics: Mutex::new(BTreeMap::new()) })))
    }

    /// A disabled recorder: every instrument it hands out is inert.
    pub fn noop() -> Self {
        Recorder(None)
    }

    /// True when this recorder actually records.
    pub fn is_enabled(&self) -> bool {
        self.0.is_some()
    }

    /// Register (or look up) an unlabeled monotone counter.
    pub fn counter(&self, name: &str) -> Counter {
        self.counter_with(name, &[])
    }

    /// Register (or look up) a labeled monotone counter.
    pub fn counter_with(&self, name: &str, labels: &[(&str, &str)]) -> Counter {
        debug_assert!(crate::valid_metric_name(name), "bad metric name: {name}");
        let Some(inner) = &self.0 else { return Counter(None) };
        let mut metrics = match inner.metrics.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        let slot = metrics
            .entry(key(name, labels))
            .or_insert_with(|| Slot::Counter(Arc::new(AtomicU64::new(0))));
        match slot {
            Slot::Counter(c) => Counter(Some(Arc::clone(c))),
            _ => Counter(None), // name re-registered with a different type: inert handle
        }
    }

    /// Register (or look up) an unlabeled gauge.
    pub fn gauge(&self, name: &str) -> Gauge {
        self.gauge_with(name, &[])
    }

    /// Register (or look up) a labeled gauge.
    pub fn gauge_with(&self, name: &str, labels: &[(&str, &str)]) -> Gauge {
        debug_assert!(crate::valid_metric_name(name), "bad metric name: {name}");
        let Some(inner) = &self.0 else { return Gauge(None) };
        let mut metrics = match inner.metrics.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        let slot = metrics
            .entry(key(name, labels))
            .or_insert_with(|| Slot::Gauge(Arc::new(AtomicI64::new(0))));
        match slot {
            Slot::Gauge(g) => Gauge(Some(Arc::clone(g))),
            _ => Gauge(None),
        }
    }

    /// Register (or look up) an unlabeled fixed-bucket histogram.
    ///
    /// `bounds` are inclusive upper bucket bounds in ascending order;
    /// values above the last bound land in the implicit `+Inf` bucket.
    /// See [`crate::LATENCY_US_BUCKETS`] and [`crate::SIZE_BUCKETS`].
    pub fn histogram(&self, name: &str, bounds: &[u64]) -> Histogram {
        self.histogram_with(name, &[], bounds)
    }

    /// Register (or look up) a labeled fixed-bucket histogram.
    pub fn histogram_with(&self, name: &str, labels: &[(&str, &str)], bounds: &[u64]) -> Histogram {
        debug_assert!(crate::valid_metric_name(name), "bad metric name: {name}");
        let Some(inner) = &self.0 else { return Histogram(None) };
        let mut metrics = match inner.metrics.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        };
        let slot = metrics
            .entry(key(name, labels))
            .or_insert_with(|| Slot::Histogram(Arc::new(HistogramCore::new(bounds))));
        match slot {
            Slot::Histogram(h) => Histogram(Some(Arc::clone(h))),
            _ => Histogram(None),
        }
    }

    /// A point-in-time snapshot of every registered instrument, sorted
    /// by (name, labels) so identical registry states serialize
    /// identically.
    pub fn snapshot(&self) -> Snapshot {
        let mut samples = Vec::new();
        if let Some(inner) = &self.0 {
            let metrics = match inner.metrics.lock() {
                Ok(g) => g,
                Err(p) => p.into_inner(),
            };
            for ((name, labels), slot) in metrics.iter() {
                let value = match slot {
                    Slot::Counter(c) => Value::Counter(c.load(Ordering::Relaxed)),
                    Slot::Gauge(g) => Value::Gauge(g.load(Ordering::Relaxed)),
                    Slot::Histogram(h) => Value::Histogram(h.snapshot()),
                };
                samples.push(Sample { name: name.clone(), labels: labels.clone(), value });
            }
        }
        Snapshot { samples }
    }
}

fn key(name: &str, labels: &[(&str, &str)]) -> Key {
    let mut l: Vec<(String, String)> =
        labels.iter().map(|(k, v)| (k.to_string(), v.to_string())).collect();
    l.sort();
    (name.to_string(), l)
}

/// Monotone counter. Inert when obtained from a no-op recorder.
#[derive(Clone, Debug, Default)]
pub struct Counter(Option<Arc<AtomicU64>>);

impl Counter {
    /// Add `n` to the counter.
    #[inline]
    pub fn add(&self, n: u64) {
        if let Some(c) = &self.0 {
            c.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Add one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value (0 for inert handles).
    pub fn get(&self) -> u64 {
        self.0.as_ref().map_or(0, |c| c.load(Ordering::Relaxed))
    }
}

/// Last-value gauge with a set-max mode for high-water marks.
#[derive(Clone, Debug, Default)]
pub struct Gauge(Option<Arc<AtomicI64>>);

impl Gauge {
    /// Set the gauge to `v`.
    #[inline]
    pub fn set(&self, v: i64) {
        if let Some(g) = &self.0 {
            g.store(v, Ordering::Relaxed);
        }
    }

    /// Raise the gauge to `v` if `v` exceeds the current value.
    #[inline]
    pub fn set_max(&self, v: i64) {
        if let Some(g) = &self.0 {
            g.fetch_max(v, Ordering::Relaxed);
        }
    }

    /// Current value (0 for inert handles).
    pub fn get(&self) -> i64 {
        self.0.as_ref().map_or(0, |g| g.load(Ordering::Relaxed))
    }
}

/// Shared storage of a fixed-bucket histogram: per-bucket counts plus
/// total count and sum, all relaxed atomics.
pub(crate) struct HistogramCore {
    bounds: Vec<u64>,
    buckets: Vec<AtomicU64>, // bounds.len() + 1, last is +Inf
    count: AtomicU64,
    sum: AtomicU64,
}

impl HistogramCore {
    fn new(bounds: &[u64]) -> Self {
        debug_assert!(bounds.windows(2).all(|w| w[0] < w[1]), "bounds must ascend");
        HistogramCore {
            bounds: bounds.to_vec(),
            buckets: (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }

    fn observe(&self, v: u64) {
        let idx = self.bounds.partition_point(|&b| b < v);
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
    }

    fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            bounds: self.bounds.clone(),
            buckets: self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).collect(),
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
        }
    }
}

/// Fixed-bucket histogram. Inert when obtained from a no-op recorder.
#[derive(Clone, Default)]
pub struct Histogram(Option<Arc<HistogramCore>>);

impl std::fmt::Debug for Histogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Histogram").field("enabled", &self.0.is_some()).finish()
    }
}

impl Histogram {
    /// Record one observation of `v`.
    #[inline]
    pub fn observe(&self, v: u64) {
        if let Some(h) = &self.0 {
            h.observe(v);
        }
    }

    /// Start a span: the returned guard records elapsed wall-clock
    /// microseconds into this histogram when dropped. For an inert
    /// histogram the guard never reads the clock.
    #[inline]
    pub fn time(&self) -> SpanTimer {
        SpanTimer(self.0.as_ref().map(|h| (Arc::clone(h), Instant::now())))
    }

    /// Total observation count (0 for inert handles).
    pub fn count(&self) -> u64 {
        self.0.as_ref().map_or(0, |h| h.count.load(Ordering::Relaxed))
    }
}

/// Drop guard created by [`Histogram::time`]: measures the span from
/// creation to drop and records it as microseconds.
///
/// The measured wall-clock value flows only into telemetry output —
/// never into pipeline results — so timing jitter cannot perturb run
/// determinism.
#[must_use = "the span ends when this guard is dropped"]
pub struct SpanTimer(Option<(Arc<HistogramCore>, Instant)>);

impl Drop for SpanTimer {
    fn drop(&mut self) {
        if let Some((h, start)) = self.0.take() {
            let us = start.elapsed().as_micros().min(u128::from(u64::MAX)) as u64;
            h.observe(us);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges_share_storage_by_key() {
        let rec = Recorder::new();
        let a = rec.counter("ah_test_stage_packets_total");
        let b = rec.counter("ah_test_stage_packets_total");
        a.add(2);
        b.add(3);
        assert_eq!(a.get(), 5);

        let g = rec.gauge_with("ah_test_stage_depth_current", &[("shard", "0")]);
        g.set(7);
        g.set_max(3); // lower: no effect
        g.set_max(11);
        assert_eq!(rec.gauge_with("ah_test_stage_depth_current", &[("shard", "0")]).get(), 11);
        // different label value = different instrument
        assert_eq!(rec.gauge_with("ah_test_stage_depth_current", &[("shard", "1")]).get(), 0);
    }

    #[test]
    fn histogram_buckets() {
        let rec = Recorder::new();
        let h = rec.histogram("ah_test_stage_lag_us", &[10, 100]);
        h.observe(5); // bucket 0 (<=10)
        h.observe(10); // bucket 0 (inclusive bound)
        h.observe(50); // bucket 1 (<=100)
        h.observe(500); // +Inf
        let snap = rec.snapshot();
        let Value::Histogram(hs) = &snap.samples[0].value else {
            panic!("expected histogram sample")
        };
        assert_eq!(hs.buckets, vec![2, 1, 1]);
        assert_eq!(hs.count, 4);
        assert_eq!(hs.sum, 565);
    }

    #[test]
    fn noop_is_inert_and_snapshot_empty() {
        let rec = Recorder::noop();
        assert!(!rec.is_enabled());
        let c = rec.counter("ah_test_stage_packets_total");
        c.add(10);
        assert_eq!(c.get(), 0);
        let h = rec.histogram("ah_test_stage_lag_us", &[1, 2]);
        drop(h.time());
        assert_eq!(h.count(), 0);
        assert!(rec.snapshot().samples.is_empty());
    }

    #[test]
    fn snapshot_is_sorted() {
        let rec = Recorder::new();
        rec.counter("ah_test_zz_last_total").inc();
        rec.counter("ah_test_aa_first_total").inc();
        let names: Vec<_> = rec.snapshot().samples.iter().map(|s| s.name.clone()).collect();
        assert_eq!(names, vec!["ah_test_aa_first_total", "ah_test_zz_last_total"]);
    }

    #[test]
    fn span_timer_records() {
        let rec = Recorder::new();
        let h = rec.histogram("ah_test_stage_span_us", &[1_000_000]);
        {
            let _t = h.time();
        }
        assert_eq!(h.count(), 1);
    }

    #[test]
    fn type_conflict_yields_inert_handle() {
        let rec = Recorder::new();
        let c = rec.counter("ah_test_stage_mixed_total");
        c.inc();
        let g = rec.gauge("ah_test_stage_mixed_total");
        g.set(99);
        assert_eq!(g.get(), 0);
        assert_eq!(c.get(), 1);
    }
}
