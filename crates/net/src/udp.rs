//! UDP header parsing and building.

use crate::checksum::{self, Sum16};
use crate::error::{NetError, Result};
use crate::ipv4::Ipv4Addr4;

/// UDP header length in bytes.
pub const HEADER_LEN: usize = 8;

/// An owned UDP header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UdpHeader {
    /// Source port.
    pub src_port: u16,
    /// Destination port.
    pub dst_port: u16,
    /// Length of header + payload.
    pub length: u16,
}

impl UdpHeader {
    /// A header sized for `payload_len` bytes of payload.
    pub fn new(src_port: u16, dst_port: u16, payload_len: usize) -> Self {
        UdpHeader { src_port, dst_port, length: (HEADER_LEN + payload_len) as u16 }
    }

    /// Parse from `data` (the full L4 datagram). Returns header + payload.
    ///
    /// A zero checksum means "not computed" per RFC 768 and is accepted.
    pub fn parse(
        data: &[u8],
        verify_csum: Option<(Ipv4Addr4, Ipv4Addr4)>,
    ) -> Result<(UdpHeader, &[u8])> {
        if data.len() < HEADER_LEN {
            return Err(NetError::Truncated { layer: "udp", needed: HEADER_LEN, got: data.len() });
        }
        let length = usize::from(u16::from_be_bytes([data[4], data[5]]));
        if length < HEADER_LEN || length > data.len() {
            return Err(NetError::BadLength { layer: "udp", value: length });
        }
        let wire_csum = u16::from_be_bytes([data[6], data[7]]);
        if wire_csum != 0 {
            if let Some((src, dst)) = verify_csum {
                let mut s =
                    checksum::pseudo_header(src, dst, crate::ipv4::PROTO_UDP, length as u16);
                s.add(&data[..length]);
                if s.finish() != 0 {
                    return Err(NetError::BadChecksum { layer: "udp" });
                }
            }
        }
        let header = UdpHeader {
            src_port: u16::from_be_bytes([data[0], data[1]]),
            dst_port: u16::from_be_bytes([data[2], data[3]]),
            length: length as u16,
        };
        Ok((header, &data[HEADER_LEN..length]))
    }

    /// Serialize into `out` with a correct checksum (0x0000 results are
    /// emitted as 0xffff per RFC 768).
    pub fn emit(&self, src: Ipv4Addr4, dst: Ipv4Addr4, payload: &[u8], out: &mut Vec<u8>) {
        debug_assert_eq!(usize::from(self.length), HEADER_LEN + payload.len());
        let start = out.len();
        out.extend_from_slice(&self.src_port.to_be_bytes());
        out.extend_from_slice(&self.dst_port.to_be_bytes());
        out.extend_from_slice(&self.length.to_be_bytes());
        out.extend_from_slice(&[0, 0]);
        out.extend_from_slice(payload);
        let mut s: Sum16 = checksum::pseudo_header(src, dst, crate::ipv4::PROTO_UDP, self.length);
        s.add(&out[start..]);
        let csum = match s.finish() {
            0 => 0xffff,
            c => c,
        };
        out[start + 6..start + 8].copy_from_slice(&csum.to_be_bytes());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SRC: Ipv4Addr4 = Ipv4Addr4::new(198, 51, 100, 1);
    const DST: Ipv4Addr4 = Ipv4Addr4::new(192, 0, 2, 77);

    #[test]
    fn roundtrip() {
        let payload = b"\x00\x01\x00\x00"; // tiny fake DNS-ish payload
        let h = UdpHeader::new(5353, 53, payload.len());
        let mut buf = Vec::new();
        h.emit(SRC, DST, payload, &mut buf);
        let (parsed, got) = UdpHeader::parse(&buf, Some((SRC, DST))).unwrap();
        assert_eq!(parsed, h);
        assert_eq!(got, payload);
    }

    #[test]
    fn zero_checksum_is_accepted() {
        let h = UdpHeader::new(1, 2, 0);
        let mut buf = Vec::new();
        h.emit(SRC, DST, &[], &mut buf);
        buf[6] = 0;
        buf[7] = 0;
        assert!(UdpHeader::parse(&buf, Some((SRC, DST))).is_ok());
    }

    #[test]
    fn corrupted_payload_fails_verification() {
        let h = UdpHeader::new(9, 123, 4);
        let mut buf = Vec::new();
        h.emit(SRC, DST, b"abcd", &mut buf);
        buf[HEADER_LEN] ^= 0x80;
        assert_eq!(
            UdpHeader::parse(&buf, Some((SRC, DST))),
            Err(NetError::BadChecksum { layer: "udp" })
        );
        // Without verification the corruption passes through.
        assert!(UdpHeader::parse(&buf, None).is_ok());
    }

    #[test]
    fn rejects_bad_length_field() {
        let h = UdpHeader::new(9, 123, 0);
        let mut buf = Vec::new();
        h.emit(SRC, DST, &[], &mut buf);
        buf[4..6].copy_from_slice(&4u16.to_be_bytes()); // < header
        assert!(matches!(UdpHeader::parse(&buf, None), Err(NetError::BadLength { .. })));
        buf[4..6].copy_from_slice(&100u16.to_be_bytes()); // > buffer
        assert!(matches!(UdpHeader::parse(&buf, None), Err(NetError::BadLength { .. })));
    }

    #[test]
    fn rejects_truncated() {
        assert!(UdpHeader::parse(&[0u8; 7], None).is_err());
    }
}
