//! Synchronization facade for the trace buffers, mirroring the
//! `RingSync` idiom in `crates/simnet/src/ring.rs`.
//!
//! The buffer protocol (`crate::buffer`) is generic over [`TraceSync`],
//! whose associated `Ordering` constants *are* the memory-ordering
//! contract: slot words are stored with [`TraceSync::SLOT_WRITE`]
//! *before* the published length is stored with
//! [`TraceSync::LEN_PUBLISH`], and a reader that loads the length with
//! [`TraceSync::LEN_OBSERVE`] therefore happens-after every slot write
//! below it. Production code uses [`StdSync`] (real
//! `std::sync::atomic`, zero overhead — every facade call is a
//! monomorphized inline passthrough); a model-check harness can
//! instantiate the identical protocol over shadow atomics and explore
//! the orderings exhaustively, exactly as the SPSC/MPSC rings do.

use std::sync::atomic::{AtomicU64, Ordering};

/// Facade over the one atomic word type the trace buffer needs.
///
/// Implemented by `std::sync::atomic::AtomicU64` for production and by
/// a checker's shadow atomic in a model harness.
pub trait TraceAtomicU64: Send + Sync {
    /// Construct with an initial value.
    fn new(v: u64) -> Self;
    /// Atomic load.
    fn load(&self, order: Ordering) -> u64;
    /// Atomic store.
    fn store(&self, v: u64, order: Ordering);
    /// Atomic fetch-add (overflow drop counter only).
    fn fetch_add(&self, v: u64, order: Ordering) -> u64;
}

impl TraceAtomicU64 for AtomicU64 {
    #[inline]
    fn new(v: u64) -> Self {
        AtomicU64::new(v)
    }
    #[inline]
    fn load(&self, order: Ordering) -> u64 {
        AtomicU64::load(self, order)
    }
    #[inline]
    fn store(&self, v: u64, order: Ordering) {
        AtomicU64::store(self, v, order)
    }
    #[inline]
    fn fetch_add(&self, v: u64, order: Ordering) -> u64 {
        AtomicU64::fetch_add(self, v, order)
    }
}

/// The trace-buffer synchronization contract.
///
/// One writer (the thread that owns the buffer) appends events; any
/// thread may snapshot a consistent prefix. The defaults are the proven
/// orderings; overriding one in a test facade creates a seeded mutant a
/// model checker must catch.
pub trait TraceSync: 'static {
    /// Atomic u64 (slot words, published length, drop counter).
    type AtomicU64: TraceAtomicU64;

    /// Writer stores the four words of an event slot with this
    /// ordering before publishing the length.
    /// ORDERING: `Relaxed` is the contract, not a weakening — the slot
    /// stores are sequenced-before the `LEN_PUBLISH` release store on
    /// the writer thread, so the release/acquire edge on `len` is the
    /// only synchronizing access the data needs.
    const SLOT_WRITE: Ordering = Ordering::Relaxed;
    /// Reader loads slot words with this ordering after observing the
    /// length.
    /// ORDERING: `Relaxed` is the contract — the `LEN_OBSERVE` acquire
    /// load happens-after every slot write below the observed length,
    /// so these loads cannot see uninitialized or torn words.
    const SLOT_READ: Ordering = Ordering::Relaxed;
    /// Writer publishes the new event count with this ordering
    /// (contract: `Release` — makes all preceding slot writes visible
    /// to a reader that observes the new length).
    const LEN_PUBLISH: Ordering = Ordering::Release;
    /// Reader observes the published event count with this ordering
    /// (contract: `Acquire`).
    const LEN_OBSERVE: Ordering = Ordering::Acquire;
}

/// Production facade: real `std::sync::atomic` with the contract
/// orderings. Zero overhead — every call inlines to the plain atomic
/// op.
#[derive(Debug)]
pub struct StdSync;

impl TraceSync for StdSync {
    type AtomicU64 = AtomicU64;
}
