//! The paper's contribution: aggressive-hitter detection over darknet
//! events, network-impact measurement, and longitudinal characterization.
//!
//! Pipeline overview:
//!
//! ```text
//! telescope events ──► Detector ──► AhReport (yearly/daily/active lists,
//!        │                          thresholds, per-event records)
//!        │                               │
//!        │             ┌─────────────────┼──────────────────┐
//!        ▼             ▼                 ▼                  ▼
//!   characterize   impact (flows)   impact (taps)       validate
//!   (origins,      Table 2/4/8      Figures 1/2     (ACKed: Table 6,
//!    ports, trends, protocols                        GreyNoise: Table 9,
//!    Zipf)         Table 3                           Figure 6)
//! ```
//!
//! * [`ecdf`] — empirical CDFs and top-α thresholds;
//! * [`defs`] — the three aggressive-hitter definitions;
//! * [`detector`] — streaming event compaction and list finalization;
//! * [`lists`] — set algebra over hitter lists (Jaccard, intersections);
//! * [`health`] — per-stage graceful-degradation ledgers (received /
//!   accepted / repaired / quarantined / discarded-by-category);
//! * [`impact`] — joins against flow datasets and live packet taps;
//! * [`characterize`] — origins, port profiles, temporal trends, Zipf;
//! * [`validate`] — acknowledged-scanner and honeypot cross-validation;
//! * [`report`] — text-table and CSV rendering for the experiment runner.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod characterize;
pub mod defs;
pub mod detector;
pub mod ecdf;
pub mod health;
pub mod impact;
pub mod lists;
pub mod report;
pub mod validate;

pub use defs::{Definition, Thresholds};
pub use detector::{AhReport, Detector, DetectorConfig, EventRecord};
pub use ecdf::Ecdf;
pub use health::{PipelineHealth, StageHealth};
