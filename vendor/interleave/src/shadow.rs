//! Shadow concurrency primitives: drop-in stand-ins for the std types
//! whose every operation is a scheduling point of the model checker.
//!
//! These only function inside [`Checker::check`](crate::Checker::check)
//! — constructing or using them elsewhere panics. Code meant to run
//! both for real and under the checker should be generic over a facade
//! trait (see `ah_simnet::ring::RingSync` for the workspace's
//! instance) with one implementation forwarding to `std::sync::atomic`
//! and one forwarding here.
//
// ah-lint: allow-file(panic-path, reason = "test-support crate: the checker reports model and misuse failures by panicking, like any assertion harness")

use std::cell::UnsafeCell;
use std::sync::atomic::Ordering;
use std::sync::{Arc, Mutex};

use crate::exec;

/// Shadow of [`std::sync::atomic::AtomicUsize`].
pub struct AtomicUsize {
    loc: usize,
}

impl AtomicUsize {
    /// Create a shadow atomic with an initial value (the
    /// initialization happens-before every model operation).
    pub fn new(v: usize) -> AtomicUsize {
        AtomicUsize { loc: exec::alloc_atomic(v as u64) }
    }

    /// Model load: may observe any store the memory model permits for
    /// `ord`; each extra possibility becomes an explored branch.
    pub fn load(&self, ord: Ordering) -> usize {
        exec::op_load(self.loc, ord) as usize
    }

    /// Model store.
    pub fn store(&self, v: usize, ord: Ordering) {
        exec::op_store(self.loc, ord, v as u64);
    }

    /// Model fetch-add (reads the latest store, as C11 RMWs must).
    pub fn fetch_add(&self, v: usize, ord: Ordering) -> usize {
        exec::op_rmw(self.loc, ord, |old| old.wrapping_add(v as u64)) as usize
    }

    /// Model fetch-max.
    pub fn fetch_max(&self, v: usize, ord: Ordering) -> usize {
        exec::op_rmw(self.loc, ord, |old| old.max(v as u64)) as usize
    }

    /// Model compare-exchange. The failure ordering is approximated by
    /// the success ordering (strictly stronger, so no bug is hidden).
    pub fn compare_exchange(
        &self,
        current: usize,
        new: usize,
        success: Ordering,
        _failure: Ordering,
    ) -> Result<usize, usize> {
        let old =
            exec::op_rmw(
                self.loc,
                success,
                |old| {
                    if old == current as u64 {
                        new as u64
                    } else {
                        old
                    }
                },
            ) as usize;
        if old == current {
            Ok(old)
        } else {
            Err(old)
        }
    }

    /// Non-synchronizing load for single-owner teardown paths (the
    /// shadow of `AtomicUsize::get_mut`): reads the latest store
    /// without a scheduling point.
    pub fn unsync_load(&mut self) -> usize {
        exec::op_unsync_load(self.loc) as usize
    }
}

/// Shadow of [`std::sync::atomic::AtomicBool`].
pub struct AtomicBool {
    loc: usize,
}

impl AtomicBool {
    /// Create a shadow atomic bool.
    pub fn new(v: bool) -> AtomicBool {
        AtomicBool { loc: exec::alloc_atomic(u64::from(v)) }
    }

    /// Model load (see [`AtomicUsize::load`]).
    pub fn load(&self, ord: Ordering) -> bool {
        exec::op_load(self.loc, ord) != 0
    }

    /// Model store.
    pub fn store(&self, v: bool, ord: Ordering) {
        exec::op_store(self.loc, ord, u64::from(v));
    }
}

/// Shadow of `UnsafeCell`: plain, non-atomic memory whose accesses are
/// race-checked against the happens-before order (FastTrack-style).
/// The value lives in real memory; the checker serializes all model
/// threads, so even a detected race never touches bytes concurrently.
pub struct Cell<T> {
    id: usize,
    v: UnsafeCell<T>,
}

// SAFETY: all access goes through with/with_mut, which (a) run while
// the accessing virtual thread is the only one executing model code
// and (b) report any pair of conflicting accesses not ordered by
// happens-before as a model failure. The cell therefore transfers `T`
// between threads exactly like the std UnsafeCell protocols it
// shadows, requiring only `T: Send`.
unsafe impl<T: Send> Sync for Cell<T> {}
// SAFETY: moving the cell moves the owned `T`; no thread affinity.
unsafe impl<T: Send> Send for Cell<T> {}

impl<T> Cell<T> {
    /// Wrap a value in a race-checked plain-memory location.
    pub fn new(v: T) -> Cell<T> {
        Cell { id: exec::alloc_cell(), v: UnsafeCell::new(v) }
    }

    /// Immutable access: records a read in the race detector, then
    /// hands `f` the raw pointer. `f` must not perform shadow
    /// operations of its own.
    pub fn with<R>(&self, f: impl FnOnce(*const T) -> R) -> R {
        exec::cell_access(self.id, false);
        f(self.v.get())
    }

    /// Mutable access: records a write in the race detector, then
    /// hands `f` the raw pointer. `f` must not perform shadow
    /// operations of its own.
    pub fn with_mut<R>(&self, f: impl FnOnce(*mut T) -> R) -> R {
        exec::cell_access(self.id, true);
        f(self.v.get())
    }
}

/// Shadow of [`std::thread`]: virtual threads under the checker's
/// scheduler.
pub mod thread {
    use super::*;

    /// Handle to a spawned virtual thread; joining returns the
    /// closure's value and establishes happens-before, exactly like
    /// `std::thread::JoinHandle`.
    pub struct JoinHandle<T> {
        tid: usize,
        slot: Arc<Mutex<Option<T>>>,
    }

    /// Spawn a virtual thread. The spawn point happens-before the
    /// child's first operation.
    pub fn spawn<F, T>(f: F) -> JoinHandle<T>
    where
        F: FnOnce() -> T + Send + 'static,
        T: Send + 'static,
    {
        let slot = Arc::new(Mutex::new(None));
        let slot2 = Arc::clone(&slot);
        let tid = exec::op_spawn(
            Box::new(move || {
                let r = f();
                *slot2.lock().unwrap_or_else(std::sync::PoisonError::into_inner) = Some(r);
            }),
            None,
        );
        JoinHandle { tid, slot }
    }

    impl<T> JoinHandle<T> {
        /// Wait for the thread to finish and take its result. The
        /// thread's exit happens-before `join` returns.
        pub fn join(self) -> T {
            exec::op_join(self.tid);
            self.slot
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .take()
                .expect("joined virtual thread panicked")
        }
    }
}

/// Shadow of [`std::hint`]: busy-wait hints become park points.
pub mod hint {
    /// In a model, a spin hint parks the thread until another thread
    /// stores (spinning without new input can never observe progress).
    pub fn spin_loop() {
        crate::exec::op_yield();
    }
}

/// Shadow of [`std::thread::yield_now`] — parks like
/// [`hint::spin_loop`].
pub fn yield_now() {
    crate::exec::op_yield();
}
