//! Exactness tests for the tagged allocator, run with [`TaggedSystem`]
//! installed as this binary's global allocator.
//!
//! Accounts are process-global, so every test takes a shared mutex and
//! asserts on *deltas* against a snapshot taken under the lock — the
//! test harness's own (unscoped) allocations land in `Tag::Other` and
//! never perturb the per-subsystem deltas these tests measure.

use ah_mem::{MemScope, Tag, TaggedSystem};
use std::sync::{Mutex, MutexGuard, OnceLock};

#[global_allocator]
static ALLOC: TaggedSystem = TaggedSystem::new();

/// Serialize tests (global accounts + global enable switch) and leave
/// accounting enabled for the guard's lifetime.
fn lock_enabled() -> MutexGuard<'static, ()> {
    static GATE: OnceLock<Mutex<()>> = OnceLock::new();
    let guard = match GATE.get_or_init(|| Mutex::new(())).lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    };
    ah_mem::set_accounting(true);
    guard
}

fn live(tag: Tag) -> (i64, i64) {
    let st = ah_mem::tag_stats(tag);
    (st.live_bytes, st.live_allocs)
}

#[test]
fn scoped_alloc_charges_and_free_drains() {
    let _gate = lock_enabled();
    let before = live(Tag::Telescope);
    let buf = {
        let _scope = MemScope::enter(Tag::Telescope);
        vec![7u8; 1 << 20]
    };
    let during = live(Tag::Telescope);
    assert!(during.0 >= before.0 + (1 << 20), "live bytes did not grow: {during:?}");
    assert!(during.1 > before.1, "live allocs did not grow");
    drop(buf); // freed outside the scope — header tag, not scope, drives the debit
    assert_eq!(live(Tag::Telescope), before, "telescope account did not drain");
    ah_mem::set_accounting(false);
}

#[test]
fn tag_swap_pair_matches_scope_semantics() {
    let _gate = lock_enabled();
    let before = live(Tag::Flow);
    let prev = ah_mem::tag_swap(Tag::Flow);
    let buf = vec![3u8; 1 << 18];
    ah_mem::tag_restore(prev);
    let after_restore = vec![5u8; 1 << 18]; // no longer charged to Flow
    let during = live(Tag::Flow);
    assert!(during.0 >= before.0 + (1 << 18), "swap did not route the charge: {during:?}");
    assert!(during.0 < before.0 + (2 << 18), "restore did not end the scope: {during:?}");
    drop(buf);
    drop(after_restore);
    assert_eq!(live(Tag::Flow), before, "flow account did not drain");
    ah_mem::set_accounting(false);
}

#[test]
fn disabled_tag_swap_is_inert() {
    let _gate = lock_enabled();
    ah_mem::set_accounting(false);
    let before = live(Tag::Merge);
    let prev = ah_mem::tag_swap(Tag::Merge);
    let buf = vec![9u8; 1 << 18];
    ah_mem::tag_restore(prev);
    drop(buf);
    assert_eq!(live(Tag::Merge), before, "disabled swap still charged the account");
}

#[test]
fn peak_tracks_high_water() {
    let _gate = lock_enabled();
    let base_live = live(Tag::Wal).0;
    let sz = 3 << 20;
    {
        let _scope = MemScope::enter(Tag::Wal);
        let buf = vec![1u8; sz];
        drop(buf);
    }
    let st = ah_mem::tag_stats(Tag::Wal);
    assert!(
        st.peak_bytes >= base_live + sz as i64,
        "peak {} below high water {}",
        st.peak_bytes,
        base_live + sz as i64
    );
    assert!(st.total_bytes >= sz as u64);
    ah_mem::set_accounting(false);
}

#[test]
fn realloc_keeps_original_tag() {
    let _gate = lock_enabled();
    let before = live(Tag::Flow);
    let mut v: Vec<u64> = {
        let _scope = MemScope::enter(Tag::Flow);
        Vec::with_capacity(64)
    };
    // Growth happens outside any scope: the charge must follow the
    // block's header tag, not the (absent) current scope.
    for i in 0..100_000u64 {
        v.push(i);
    }
    let during = live(Tag::Flow);
    assert!(during.0 >= before.0 + 800_000, "realloc growth not charged to flow: {during:?}");
    drop(v);
    assert_eq!(live(Tag::Flow), before, "flow account did not drain after realloc growth");
    ah_mem::set_accounting(false);
}

#[test]
fn disabled_accounting_charges_nothing() {
    let _gate = lock_enabled();
    ah_mem::set_accounting(false);
    let before = live(Tag::Merge);
    let buf = {
        let _scope = MemScope::enter(Tag::Merge);
        vec![2u8; 1 << 16]
    };
    assert_eq!(live(Tag::Merge), before, "disabled accounting still charged");
    drop(buf);
    assert_eq!(live(Tag::Merge), before);
}

#[test]
fn free_after_disable_still_drains() {
    let _gate = lock_enabled();
    let before = live(Tag::Detectors);
    let buf = {
        let _scope = MemScope::enter(Tag::Detectors);
        vec![3u8; 1 << 18]
    };
    assert!(live(Tag::Detectors).0 > before.0);
    ah_mem::set_accounting(false);
    drop(buf); // charged bit in the header, not the switch, drives the debit
    assert_eq!(live(Tag::Detectors), before, "charged block did not drain after disable");
}

#[test]
fn cross_thread_free_returns_to_charged_tag() {
    let _gate = lock_enabled();
    let before = live(Tag::Mux);
    let handle = std::thread::spawn(|| {
        let _scope = MemScope::enter(Tag::Mux);
        vec![5u8; 1 << 19]
    });
    let buf = handle.join().expect("allocator thread");
    assert!(live(Tag::Mux).0 >= before.0 + (1 << 19));
    drop(buf); // freed on the main thread, outside any scope
    assert_eq!(live(Tag::Mux), before, "cross-thread free missed the mux account");
    ah_mem::set_accounting(false);
}

#[test]
fn zeroed_allocs_are_zero_and_charged() {
    let _gate = lock_enabled();
    let before = live(Tag::Trace);
    let buf = {
        let _scope = MemScope::enter(Tag::Trace);
        vec![0u64; 1 << 15] // vec! of zeros routes through alloc_zeroed
    };
    assert!(buf.iter().all(|&b| b == 0), "alloc_zeroed region not zeroed");
    assert!(live(Tag::Trace).0 >= before.0 + (8 << 15));
    drop(buf);
    assert_eq!(live(Tag::Trace), before);
    ah_mem::set_accounting(false);
}

#[test]
fn global_account_aggregates_tags() {
    let _gate = lock_enabled();
    let before = ah_mem::global_stats().live_bytes;
    let a = {
        let _scope = MemScope::enter(Tag::Mux);
        vec![1u8; 1 << 16]
    };
    let b = {
        let _scope = MemScope::enter(Tag::Wal);
        vec![2u8; 1 << 16]
    };
    let during = ah_mem::global_stats().live_bytes;
    assert!(during >= before + (2 << 16), "global account missed tagged traffic");
    drop((a, b));
    ah_mem::set_accounting(false);
}

#[test]
fn reset_window_rebases_peak_and_totals() {
    let _gate = lock_enabled();
    {
        let _scope = MemScope::enter(Tag::Merge);
        let buf = vec![9u8; 1 << 20];
        drop(buf);
    }
    assert!(ah_mem::tag_stats(Tag::Merge).peak_bytes >= 1 << 20);
    ah_mem::reset_window();
    let st = ah_mem::tag_stats(Tag::Merge);
    assert_eq!(st.peak_bytes, st.live_bytes, "peak not rebased to live");
    assert_eq!(st.total_bytes, 0);
    assert_eq!(st.total_allocs, 0);
    ah_mem::set_accounting(false);
}

#[test]
fn leak_check_reports_only_outstanding_run_tags() {
    let _gate = lock_enabled();
    let baseline: Vec<(Tag, i64)> = ah_mem::leak_check(0);
    let held = {
        let _scope = MemScope::enter(Tag::Telescope);
        vec![4u8; 1 << 20]
    };
    let leaks = ah_mem::leak_check(1 << 10);
    let tele_leak = leaks.iter().find(|(t, _)| *t == Tag::Telescope);
    assert!(tele_leak.is_some(), "held telescope block not reported: {leaks:?}");
    drop(held);
    assert_eq!(ah_mem::leak_check(0), baseline, "drained state still reports leaks");
    ah_mem::set_accounting(false);
}

#[test]
fn report_snapshot_is_consistent() {
    let _gate = lock_enabled();
    let rep = ah_mem::report();
    // VmHWM (when present) is a kernel-truth upper bound-ish figure;
    // peak_rss_bytes must pick it or fall back to the tracked peak.
    match rep.vm_hwm_bytes {
        Some(v) => assert_eq!(rep.peak_rss_bytes(), v),
        None => assert_eq!(rep.peak_rss_bytes(), rep.global.peak_bytes.max(0) as u64),
    }
    let rendered = rep.render();
    assert!(rendered.contains("telescope"));
    ah_mem::set_accounting(false);
}
