//! Fixture: panic-path positives and negatives.

pub fn bad_unwrap(v: Option<u32>) -> u32 {
    v.unwrap() //~ panic-path
}

pub fn bad_expect(v: Option<u32>) -> u32 {
    v.expect("always") //~ panic-path
}

pub fn bad_panic() {
    panic!("boom"); //~ panic-path
}

pub fn bad_todo() {
    todo!() //~ panic-path
}

pub fn bad_unimplemented() {
    unimplemented!() //~ panic-path
}

pub fn bad_unreachable() {
    unreachable!() //~ panic-path
}

pub fn suppressed(v: Option<u32>) -> u32 {
    // ah-lint: allow(panic-path, reason = "fixture: audited impossible case")
    v.unwrap()
}

pub fn panic_in_string_is_fine(s: &str) -> &str {
    // A grep would flag the literal below; the token-level lint must not.
    s.trim_start_matches(".unwrap() panic!")
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_code_is_exempt() {
        let v: Option<u32> = Some(1);
        assert_eq!(v.unwrap(), 1);
        assert_eq!(v.expect("test"), 1);
    }
}
