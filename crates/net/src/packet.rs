//! The composed packet type used as currency between all pipeline stages.
//!
//! [`PacketMeta`] is the decoded form of one IPv4 packet: everything the
//! telescope, flow collectors and detectors need, and nothing more. It can
//! be serialized to real wire bytes (and parsed back) so that every
//! experiment can exercise the byte-level path when desired, while bulk
//! simulation can stay in decoded form.

use crate::error::{NetError, Result};
use crate::ethernet::{EthernetHeader, MacAddr, ETHERTYPE_IPV4};
use crate::icmp::{IcmpMessage, TYPE_ECHO_REQUEST};
use crate::ipv4::{Ipv4Addr4, Ipv4Header, PROTO_ICMP, PROTO_TCP, PROTO_UDP};
use crate::tcp::{TcpFlags, TcpHeader};
use crate::time::Ts;
use crate::udp::UdpHeader;

/// The three telescope "traffic types" that count as scanning packets
/// (Section 2.A of the paper), plus their display names.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ScanClass {
    /// A TCP packet with SYN set and ACK clear.
    TcpSyn,
    /// Any UDP packet.
    Udp,
    /// An ICMP Echo Request.
    IcmpEcho,
}

impl ScanClass {
    /// All classes, in the order the paper tabulates them.
    pub const ALL: [ScanClass; 3] = [ScanClass::TcpSyn, ScanClass::Udp, ScanClass::IcmpEcho];

    /// Display name as used in Table 3.
    pub fn name(self) -> &'static str {
        match self {
            ScanClass::TcpSyn => "TCP-SYN",
            ScanClass::Udp => "UDP",
            ScanClass::IcmpEcho => "ICMP Ech Rqst",
        }
    }
}

/// Decoded transport layer of a packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Transport {
    /// TCP segment header fields.
    Tcp {
        /// Source port.
        src_port: u16,
        /// Destination port.
        dst_port: u16,
        /// Sequence number (Mirai fingerprint site).
        seq: u32,
        /// Header flags.
        flags: TcpFlags,
    },
    /// UDP datagram header fields.
    Udp {
        /// Source port.
        src_port: u16,
        /// Destination port.
        dst_port: u16,
    },
    /// ICMP message type and code.
    Icmp {
        /// ICMP type field.
        icmp_type: u8,
        /// ICMP code field.
        code: u8,
    },
    /// Any other IP protocol, carried for completeness.
    Other {
        /// IP protocol number.
        protocol: u8,
    },
}

/// One decoded IPv4 packet with capture timestamp.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PacketMeta {
    /// Capture timestamp.
    pub ts: Ts,
    /// Source address.
    pub src: Ipv4Addr4,
    /// Destination address.
    pub dst: Ipv4Addr4,
    /// IPv4 identification field (ZMap fingerprint site).
    pub ip_id: u16,
    /// IP time-to-live at capture.
    pub ttl: u8,
    /// IP total length on the wire in bytes.
    pub wire_len: u16,
    /// Decoded transport layer.
    pub transport: Transport,
}

impl PacketMeta {
    /// A bare TCP-SYN probe of `dst_port`, 40 bytes on the wire.
    pub fn tcp_syn(ts: Ts, src: Ipv4Addr4, dst: Ipv4Addr4, src_port: u16, dst_port: u16) -> Self {
        PacketMeta {
            ts,
            src,
            dst,
            ip_id: 0,
            ttl: 64,
            wire_len: 40,
            transport: Transport::Tcp { src_port, dst_port, seq: 0, flags: TcpFlags::SYN },
        }
    }

    /// A UDP probe with an 8-byte payload (48 bytes on the wire), typical
    /// of single-datagram service probes.
    pub fn udp_probe(ts: Ts, src: Ipv4Addr4, dst: Ipv4Addr4, src_port: u16, dst_port: u16) -> Self {
        PacketMeta {
            ts,
            src,
            dst,
            ip_id: 0,
            ttl: 64,
            wire_len: 48,
            transport: Transport::Udp { src_port, dst_port },
        }
    }

    /// An ICMP Echo Request (28 bytes on the wire).
    pub fn icmp_echo(ts: Ts, src: Ipv4Addr4, dst: Ipv4Addr4) -> Self {
        PacketMeta {
            ts,
            src,
            dst,
            ip_id: 0,
            ttl: 64,
            wire_len: 28,
            transport: Transport::Icmp { icmp_type: TYPE_ECHO_REQUEST, code: 0 },
        }
    }

    /// Destination port, when the transport has one.
    pub fn dst_port(&self) -> Option<u16> {
        match self.transport {
            Transport::Tcp { dst_port, .. } | Transport::Udp { dst_port, .. } => Some(dst_port),
            _ => None,
        }
    }

    /// Source port, when the transport has one.
    pub fn src_port(&self) -> Option<u16> {
        match self.transport {
            Transport::Tcp { src_port, .. } | Transport::Udp { src_port, .. } => Some(src_port),
            _ => None,
        }
    }

    /// IP protocol number of the transport.
    pub fn protocol(&self) -> u8 {
        match self.transport {
            Transport::Tcp { .. } => PROTO_TCP,
            Transport::Udp { .. } => PROTO_UDP,
            Transport::Icmp { .. } => PROTO_ICMP,
            Transport::Other { protocol } => protocol,
        }
    }

    /// Classify as a telescope scanning packet, if it is one.
    ///
    /// TCP counts only as a bare SYN; UDP always counts; ICMP counts only
    /// as an Echo Request. Everything else (SYN-ACKs, RSTs, other ICMP) is
    /// backscatter or noise and returns `None`.
    pub fn scan_class(&self) -> Option<ScanClass> {
        match self.transport {
            Transport::Tcp { flags, .. } if flags.is_bare_syn() => Some(ScanClass::TcpSyn),
            Transport::Tcp { .. } => None,
            Transport::Udp { .. } => Some(ScanClass::Udp),
            Transport::Icmp { icmp_type: TYPE_ECHO_REQUEST, .. } => Some(ScanClass::IcmpEcho),
            _ => None,
        }
    }

    /// Serialize as a standalone IPv4 packet (no link layer). Payload
    /// bytes beyond the L4 header are zero-filled to reach `wire_len`.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(usize::from(self.wire_len));
        let mut l4 = Vec::new();
        match self.transport {
            Transport::Tcp { src_port, dst_port, seq, flags } => {
                let hdr = TcpHeader { seq, flags, ..TcpHeader::syn(src_port, dst_port, seq) };
                let payload_len = usize::from(self.wire_len).saturating_sub(20 + hdr.header_len());
                hdr.emit(self.src, self.dst, &vec![0u8; payload_len], &mut l4);
            }
            Transport::Udp { src_port, dst_port } => {
                let payload_len =
                    usize::from(self.wire_len).saturating_sub(20 + crate::udp::HEADER_LEN);
                let hdr = UdpHeader::new(src_port, dst_port, payload_len);
                hdr.emit(self.src, self.dst, &vec![0u8; payload_len], &mut l4);
            }
            Transport::Icmp { icmp_type, code } => {
                let payload_len =
                    usize::from(self.wire_len).saturating_sub(20 + crate::icmp::HEADER_LEN);
                let msg = IcmpMessage {
                    icmp_type,
                    code,
                    ident: (self.src.to_u32() & 0xffff) as u16,
                    seq: 0,
                    payload: vec![0u8; payload_len],
                };
                msg.emit(&mut l4);
            }
            Transport::Other { .. } => {
                l4.resize(usize::from(self.wire_len).saturating_sub(20), 0);
            }
        }
        let mut ip = Ipv4Header::probe(self.src, self.dst, self.protocol(), l4.len());
        ip.ident = self.ip_id;
        ip.ttl = self.ttl;
        ip.emit(&mut out);
        out.extend_from_slice(&l4);
        out
    }

    /// Serialize as an Ethernet II frame.
    pub fn to_frame(&self, src_mac: MacAddr, dst_mac: MacAddr) -> Vec<u8> {
        let mut out = Vec::with_capacity(14 + usize::from(self.wire_len));
        EthernetHeader { src: src_mac, dst: dst_mac, ethertype: ETHERTYPE_IPV4 }.emit(&mut out);
        out.extend_from_slice(&self.to_bytes());
        out
    }

    /// Parse a standalone IPv4 packet captured at `ts`.
    ///
    /// Transport checksums are NOT verified here — the capture path keeps
    /// whatever the wire had, like a passive tap; only the IP header
    /// checksum (which routers check) gates acceptance.
    pub fn parse_ip(data: &[u8], ts: Ts) -> Result<PacketMeta> {
        let (ip, l4) = Ipv4Header::parse(data)?;
        if ip.frag_offset != 0 {
            // Non-first fragments have no L4 header; the pipelines treat
            // them as opaque IP traffic.
            return Ok(PacketMeta {
                ts,
                src: ip.src,
                dst: ip.dst,
                ip_id: ip.ident,
                ttl: ip.ttl,
                wire_len: ip.total_len,
                transport: Transport::Other { protocol: ip.protocol },
            });
        }
        let transport = match ip.protocol {
            PROTO_TCP => {
                let (t, _) = TcpHeader::parse(l4, None)?;
                Transport::Tcp {
                    src_port: t.src_port,
                    dst_port: t.dst_port,
                    seq: t.seq,
                    flags: t.flags,
                }
            }
            PROTO_UDP => {
                let (u, _) = UdpHeader::parse(l4, None)?;
                Transport::Udp { src_port: u.src_port, dst_port: u.dst_port }
            }
            PROTO_ICMP => {
                let m = IcmpMessage::parse(l4)?;
                Transport::Icmp { icmp_type: m.icmp_type, code: m.code }
            }
            p => Transport::Other { protocol: p },
        };
        Ok(PacketMeta {
            ts,
            src: ip.src,
            dst: ip.dst,
            ip_id: ip.ident,
            ttl: ip.ttl,
            wire_len: ip.total_len,
            transport,
        })
    }

    /// Parse an Ethernet frame captured at `ts`. Non-IPv4 frames yield
    /// `Unsupported` (the paper's pipelines skip them).
    pub fn parse_frame(data: &[u8], ts: Ts) -> Result<PacketMeta> {
        let (eth, payload) = EthernetHeader::parse(data)?;
        if eth.ethertype != ETHERTYPE_IPV4 {
            return Err(NetError::Unsupported {
                layer: "ethernet",
                field: "ethertype",
                value: u64::from(eth.ethertype),
            });
        }
        PacketMeta::parse_ip(payload, ts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const S: Ipv4Addr4 = Ipv4Addr4::new(203, 0, 113, 5);
    const D: Ipv4Addr4 = Ipv4Addr4::new(192, 0, 2, 200);

    #[test]
    fn tcp_syn_roundtrip() {
        let mut m = PacketMeta::tcp_syn(Ts::from_secs(3), S, D, 55555, 23);
        m.ip_id = 54321;
        let bytes = m.to_bytes();
        assert_eq!(bytes.len(), 40);
        let p = PacketMeta::parse_ip(&bytes, m.ts).unwrap();
        assert_eq!(p, m);
        assert_eq!(p.scan_class(), Some(ScanClass::TcpSyn));
    }

    #[test]
    fn udp_roundtrip() {
        let m = PacketMeta::udp_probe(Ts::from_secs(1), S, D, 4000, 5060);
        let p = PacketMeta::parse_ip(&m.to_bytes(), m.ts).unwrap();
        assert_eq!(p, m);
        assert_eq!(p.scan_class(), Some(ScanClass::Udp));
    }

    #[test]
    fn icmp_roundtrip() {
        let m = PacketMeta::icmp_echo(Ts::from_secs(2), S, D);
        let p = PacketMeta::parse_ip(&m.to_bytes(), m.ts).unwrap();
        assert_eq!(p, m);
        assert_eq!(p.scan_class(), Some(ScanClass::IcmpEcho));
    }

    #[test]
    fn synack_is_not_scanning() {
        let mut m = PacketMeta::tcp_syn(Ts::ZERO, S, D, 80, 40000);
        m.transport =
            Transport::Tcp { src_port: 80, dst_port: 40000, seq: 1, flags: TcpFlags::SYN_ACK };
        assert_eq!(m.scan_class(), None);
        let p = PacketMeta::parse_ip(&m.to_bytes(), m.ts).unwrap();
        assert_eq!(p.scan_class(), None);
    }

    #[test]
    fn icmp_reply_is_not_scanning() {
        let mut m = PacketMeta::icmp_echo(Ts::ZERO, S, D);
        m.transport = Transport::Icmp { icmp_type: 0, code: 0 };
        assert_eq!(m.scan_class(), None);
    }

    #[test]
    fn frame_roundtrip() {
        let m = PacketMeta::tcp_syn(Ts::from_millis(1500), S, D, 1, 6379);
        let frame = m.to_frame(MacAddr::local(1), MacAddr::local(2));
        let p = PacketMeta::parse_frame(&frame, m.ts).unwrap();
        assert_eq!(p, m);
    }

    #[test]
    fn non_ipv4_frame_is_skipped() {
        let m = PacketMeta::tcp_syn(Ts::ZERO, S, D, 1, 2);
        let mut frame = m.to_frame(MacAddr::local(1), MacAddr::local(2));
        frame[12..14].copy_from_slice(&crate::ethernet::ETHERTYPE_IPV6.to_be_bytes());
        assert!(matches!(
            PacketMeta::parse_frame(&frame, Ts::ZERO),
            Err(NetError::Unsupported { field: "ethertype", .. })
        ));
    }

    #[test]
    fn ports_and_protocols() {
        let t = PacketMeta::tcp_syn(Ts::ZERO, S, D, 9, 23);
        assert_eq!(t.dst_port(), Some(23));
        assert_eq!(t.src_port(), Some(9));
        assert_eq!(t.protocol(), PROTO_TCP);
        let i = PacketMeta::icmp_echo(Ts::ZERO, S, D);
        assert_eq!(i.dst_port(), None);
        assert_eq!(i.protocol(), PROTO_ICMP);
    }

    #[test]
    fn fragment_parses_as_other() {
        let m = PacketMeta::tcp_syn(Ts::ZERO, S, D, 1, 2);
        let mut bytes = m.to_bytes();
        // Set frag offset = 100 and fix the header checksum.
        bytes[6..8].copy_from_slice(&100u16.to_be_bytes());
        bytes[10..12].copy_from_slice(&[0, 0]);
        let c = crate::checksum::checksum(&bytes[..20]);
        bytes[10..12].copy_from_slice(&c.to_be_bytes());
        let p = PacketMeta::parse_ip(&bytes, Ts::ZERO).unwrap();
        assert!(matches!(p.transport, Transport::Other { protocol: PROTO_TCP }));
        assert_eq!(p.scan_class(), None);
    }

    #[test]
    fn scan_class_names() {
        assert_eq!(ScanClass::TcpSyn.name(), "TCP-SYN");
        assert_eq!(ScanClass::Udp.name(), "UDP");
        assert_eq!(ScanClass::IcmpEcho.name(), "ICMP Ech Rqst");
        assert_eq!(ScanClass::ALL.len(), 3);
    }
}
