//! The mutant runner: scratch copy, apply → build/test → restore, and
//! outcome classification.
//!
//! Mutants never touch the real tree. A scratch copy of the workspace
//! (default `out/mutate-scratch/`, its `target/` preserved across runs
//! so cargo stays incremental) receives one mutant at a time; the
//! runner drives the mutant's cargo steps with a per-mutant wall-clock
//! timeout, then restores the file byte-for-byte. Classification:
//!
//! * **caught** — some step's tests failed (the suite noticed);
//! * **survived** — every step passed (a blind spot);
//! * **build-broken** — the mutant does not compile (token-level
//!   operator heuristics misfired; excluded from scoring);
//! * **timeout** — the wall-clock budget elapsed (e.g. a comparison
//!   swap turning a loop infinite; counts as caught-by-hang in the
//!   survivor table but is reported distinctly).
//!
//! Processes are spawned through `setsid` when available so a timed-out
//! `cargo test` and its children die as a process group — a plain
//! `child.kill()` would orphan the running test binary on the only CPU.

use std::fs;
use std::io::{self, Read};
use std::path::{Path, PathBuf};
use std::process::{Command, Stdio};
use std::sync::OnceLock;
use std::time::{Duration, Instant};

use crate::ops::Mutant;

/// Classification of one mutant run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Outcome {
    /// Tests failed: the suite caught the mutant.
    Caught,
    /// Every step passed: the suite is blind to this mutant.
    Survived,
    /// The per-mutant wall-clock budget elapsed.
    Timeout,
    /// The mutant failed to compile; excluded from scoring.
    BuildBroken,
}

impl Outcome {
    /// Canonical lowercase name (used in JSON and the cache).
    pub fn as_str(self) -> &'static str {
        match self {
            Outcome::Caught => "caught",
            Outcome::Survived => "survived",
            Outcome::Timeout => "timeout",
            Outcome::BuildBroken => "build-broken",
        }
    }

    /// Inverse of [`Outcome::as_str`].
    pub fn parse(s: &str) -> Option<Outcome> {
        match s {
            "caught" => Some(Outcome::Caught),
            "survived" => Some(Outcome::Survived),
            "timeout" => Some(Outcome::Timeout),
            "build-broken" => Some(Outcome::BuildBroken),
            _ => None,
        }
    }
}

/// One classified run.
#[derive(Clone, Debug)]
pub struct RunResult {
    /// The classification.
    pub outcome: Outcome,
    /// Failing step and output tail, or a note that all steps passed.
    pub detail: String,
    /// Wall-clock seconds spent on this mutant.
    pub secs: f64,
}

/// Test scope for sweep mutants (sentinels carry explicit steps).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Scope {
    /// The mutated crate's own tests only.
    Crate,
    /// Crate tests plus the root package's integration suites.
    Package,
    /// Everything: crate, root, then the full workspace (minus
    /// `ah-mutate` itself — recursing into nested mutation runs from a
    /// mutation run would be absurd).
    Workspace,
}

impl Scope {
    /// Parse a `--scope` value.
    pub fn parse(s: &str) -> Option<Scope> {
        match s {
            "crate" => Some(Scope::Crate),
            "package" => Some(Scope::Package),
            "workspace" => Some(Scope::Workspace),
            _ => None,
        }
    }
}

/// The cargo step plan for a sweep mutant in `pkg` at `scope`. Steps
/// run in order and stop at the first failure; cheap, targeted steps
/// first so most mutants classify without touching the heavy suites.
pub fn default_steps(pkg: &str, scope: Scope) -> Vec<Vec<String>> {
    let s = |parts: &[&str]| parts.iter().map(|p| p.to_string()).collect::<Vec<_>>();
    let mut steps = vec![s(&["build", "-q", "-p", pkg]), s(&["test", "-q", "-p", pkg])];
    if scope != Scope::Crate && pkg != "aggressive-scanners" {
        steps.push(s(&["test", "-q", "-p", "aggressive-scanners"]));
    }
    if scope == Scope::Workspace {
        steps.push(s(&["test", "-q", "--workspace", "--exclude", "ah-mutate"]));
    }
    steps
}

/// A scratch copy of the workspace that mutants are applied to.
pub struct Scratch {
    /// Root of the scratch tree.
    pub dir: PathBuf,
}

impl Scratch {
    /// Create or refresh the scratch copy of `root` at `dir`:
    /// everything except `.git`, `target/` and `out/` is copied anew
    /// (stale files removed); the scratch `target/` survives so cargo
    /// rebuilds stay incremental across runs.
    pub fn prepare(root: &Path, dir: &Path) -> io::Result<Scratch> {
        fs::create_dir_all(dir)?;
        let dir_canon = dir.canonicalize()?;
        for entry in fs::read_dir(&dir_canon)? {
            let path = entry?.path();
            if path.file_name().is_some_and(|n| n == "target") {
                continue;
            }
            if path.is_dir() {
                fs::remove_dir_all(&path)?;
            } else {
                fs::remove_file(&path)?;
            }
        }
        copy_tree(root, &dir_canon, &dir_canon)?;
        Ok(Scratch { dir: dir_canon })
    }

    /// Apply `mutant`, run `steps` under `timeout`, restore, classify.
    pub fn run_mutant(
        &self,
        mutant: &Mutant,
        steps: &[Vec<String>],
        timeout: Duration,
    ) -> io::Result<RunResult> {
        let path = self.dir.join(&mutant.file);
        let original = fs::read_to_string(&path)?;
        if original.get(mutant.start..mutant.end) != Some(mutant.original.as_str()) {
            return Err(io::Error::other(format!(
                "{}: scratch copy out of sync at byte {} (expected `{}`)",
                mutant.file, mutant.start, mutant.original
            )));
        }
        fs::write(&path, mutant.apply(&original))?;
        let started = Instant::now();
        let drive = self.drive(steps, timeout, started);
        // Restore before surfacing any error: the scratch tree must be
        // pristine for the next mutant no matter what happened.
        let restore = fs::write(&path, &original);
        let mut result = drive?;
        restore?;
        result.secs = started.elapsed().as_secs_f64();
        Ok(result)
    }

    fn drive(
        &self,
        steps: &[Vec<String>],
        timeout: Duration,
        started: Instant,
    ) -> io::Result<RunResult> {
        for step in steps {
            let label = format!("cargo {}", step.join(" "));
            let Some(remaining) = timeout.checked_sub(started.elapsed()) else {
                return Ok(RunResult {
                    outcome: Outcome::Timeout,
                    detail: format!("budget elapsed before `{label}`"),
                    secs: 0.0,
                });
            };
            let (timed_out, success, output) = run_cargo(&self.dir, step, remaining)?;
            if timed_out {
                return Ok(RunResult {
                    outcome: Outcome::Timeout,
                    detail: format!("`{label}` exceeded the per-mutant timeout"),
                    secs: 0.0,
                });
            }
            if !success {
                let compile_error = output.contains("error[E")
                    || output.contains("could not compile")
                    || output.contains("error: expected");
                let outcome = if compile_error { Outcome::BuildBroken } else { Outcome::Caught };
                return Ok(RunResult {
                    outcome,
                    detail: format!("`{label}` failed: {}", tail(&output, 400)),
                    secs: 0.0,
                });
            }
        }
        Ok(RunResult { outcome: Outcome::Survived, detail: "all steps passed".into(), secs: 0.0 })
    }
}

/// Last `n` characters of `s`, newlines flattened.
pub fn tail(s: &str, n: usize) -> String {
    let cut = s.char_indices().rev().nth(n.saturating_sub(1)).map_or(0, |(i, _)| i);
    s[cut..].replace('\n', " ⏎ ")
}

fn copy_tree(from: &Path, to: &Path, skip: &Path) -> io::Result<()> {
    for entry in fs::read_dir(from)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        if name == ".git" || name == "target" || name == "out" {
            continue;
        }
        // Never recurse into the scratch tree itself (a custom scratch
        // dir could sit inside the workspace).
        if path.canonicalize().map(|c| c == skip).unwrap_or(false) {
            continue;
        }
        let dest = to.join(&name);
        if path.is_dir() {
            fs::create_dir_all(&dest)?;
            copy_tree(&path, &dest, skip)?;
        } else {
            fs::copy(&path, &dest)?;
        }
    }
    Ok(())
}

fn setsid_available() -> bool {
    static AVAILABLE: OnceLock<bool> = OnceLock::new();
    *AVAILABLE.get_or_init(|| {
        Command::new("setsid")
            .arg("true")
            .stdin(Stdio::null())
            .stdout(Stdio::null())
            .stderr(Stdio::null())
            .status()
            .map(|s| s.success())
            .unwrap_or(false)
    })
}

fn kill_group(pid: u32) {
    // `setsid` made the child a session leader, so its pid names the
    // process group; a plain kill would orphan cargo's test children.
    let _ = Command::new("kill")
        .args(["-KILL", "--", &format!("-{pid}")])
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .status();
}

/// Run `cargo <args>` in `cwd` with a wall-clock timeout. Returns
/// (timed out, succeeded, combined output).
fn run_cargo(cwd: &Path, args: &[String], timeout: Duration) -> io::Result<(bool, bool, String)> {
    let use_setsid = setsid_available();
    let mut cmd = if use_setsid {
        let mut c = Command::new("setsid");
        c.arg("cargo");
        c
    } else {
        Command::new("cargo")
    };
    cmd.args(args)
        .current_dir(cwd)
        .env("CARGO_TERM_COLOR", "never")
        .env_remove("CARGO_TARGET_DIR")
        .stdin(Stdio::null())
        .stdout(Stdio::piped())
        .stderr(Stdio::piped());
    let mut child = cmd.spawn()?;
    let drain = |pipe: Option<Box<dyn Read + Send>>| {
        std::thread::spawn(move || {
            let mut buf = Vec::new();
            if let Some(mut p) = pipe {
                let _ = p.read_to_end(&mut buf);
            }
            buf
        })
    };
    let t_out = drain(child.stdout.take().map(|p| Box::new(p) as Box<dyn Read + Send>));
    let t_err = drain(child.stderr.take().map(|p| Box::new(p) as Box<dyn Read + Send>));
    let start = Instant::now();
    let mut timed_out = false;
    let status = loop {
        if let Some(status) = child.try_wait()? {
            break Some(status);
        }
        if start.elapsed() >= timeout {
            timed_out = true;
            if use_setsid {
                kill_group(child.id());
            }
            let _ = child.kill();
            break child.wait().ok();
        }
        std::thread::sleep(Duration::from_millis(50));
    };
    let mut output = String::from_utf8_lossy(&t_out.join().unwrap_or_default()).into_owned();
    output.push_str(&String::from_utf8_lossy(&t_err.join().unwrap_or_default()));
    let success = status.is_some_and(|s| s.success());
    Ok((timed_out, success, output))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn outcome_names_round_trip() {
        for o in [Outcome::Caught, Outcome::Survived, Outcome::Timeout, Outcome::BuildBroken] {
            assert_eq!(Outcome::parse(o.as_str()), Some(o));
        }
        assert_eq!(Outcome::parse("unknown"), None);
    }

    #[test]
    fn step_plans_scale_with_scope() {
        assert_eq!(default_steps("ah-wal", Scope::Crate).len(), 2);
        assert_eq!(default_steps("ah-wal", Scope::Package).len(), 3);
        assert_eq!(default_steps("aggressive-scanners", Scope::Package).len(), 2);
        let ws = default_steps("ah-wal", Scope::Workspace);
        assert_eq!(ws.len(), 4);
        assert!(ws[3].contains(&"--exclude".to_string()));
    }

    #[test]
    fn tail_truncates_from_the_back() {
        assert_eq!(tail("abcdef", 3), "def");
        assert_eq!(tail("ab", 5), "ab");
        assert_eq!(tail("a\nb", 5), "a ⏎ b");
    }
}
