//! Fixture: metric-name positives and negatives.

use ah_obs::Recorder;

pub fn register(rec: &Recorder) {
    rec.counter("ah_net_parse_errors_total");
    rec.counter("bad_name"); //~ metric-name
    rec.gauge("ah_pipeline_ring_Occupancy"); //~ metric-name
    rec.histogram_with("ah_x"); //~ metric-name
    rec.gauge_with("ah_flow_cache_occupancy", &[("router", "r1")]);
}

pub fn trace_spans(tracer: &ah_trace::Tracer) {
    let _s = tracer.span("ah_pipeline_mux_drive");
    let _t = tracer.span("drive"); //~ metric-name
    tracer.journey_span("ah_pipeline_dispatch_route", 7);
    tracer.journey_instant("dispatch_route", 7); //~ metric-name
    tracer.instant("ah_pipeline_dispatch_stall");
    tracer.set_track("ah_pipeline_shard_worker", 1);
    tracer.set_track("Shard_Worker", 1); //~ metric-name
}

pub fn non_literal_names_are_out_of_scope(rec: &Recorder, suffix: &str) {
    // Only string literals are statically checkable; dynamic names are
    // covered by the runtime JSONL check in scripts/ci.sh.
    let name = format!("ah_net_dynamic_{suffix}");
    rec.counter(&name);
}

pub fn unrelated_counter_fn(counter: impl Fn(u64)) {
    counter(7);
}
