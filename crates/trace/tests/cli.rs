//! Exit-code contract of the `ah-trace check` CLI.
//!
//! The `trace` gate in `scripts/ci.sh` relies on three behaviors: a
//! valid trace file exits 0, a malformed file exits 1, and a missing
//! `--require` span exits 1 — with usage errors distinct at 2. These
//! tests pin that contract by running the real binary
//! (`CARGO_BIN_EXE_ah-trace`) against artifacts written by the real
//! exporter.

use ah_trace::{export, TraceConfig, Tracer};
use std::path::{Path, PathBuf};
use std::process::Command;

/// A fresh per-test scratch directory under the target tmpdir.
fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ah-trace-cli-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

/// Write a small but real trace (two spans, one instant) via the
/// exporter and return the Chrome-trace JSON path.
fn write_valid_trace(dir: &Path) -> PathBuf {
    let tracer = Tracer::new(TraceConfig { seed: 3, sample_one_in: 0, buf_capacity: 256 });
    {
        let _outer = tracer.span("ah_trace_cli_outer");
        let _inner = tracer.span("ah_trace_cli_inner");
        tracer.instant("ah_trace_cli_mark");
    }
    let path = dir.join("trace.json");
    export::write_artifacts(&tracer.snapshot(), &path).expect("write trace artifacts");
    path
}

fn run(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_ah-trace")).args(args).output().expect("run ah-trace")
}

#[test]
fn valid_trace_exits_zero() {
    let dir = temp_dir("valid");
    let path = write_valid_trace(&dir);
    let out = run(&["check", path.to_str().unwrap()]);
    assert!(out.status.success(), "stderr: {}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("OK"), "stdout: {stdout}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn required_span_present_exits_zero() {
    let dir = temp_dir("require-ok");
    let path = write_valid_trace(&dir);
    let out = run(&["check", path.to_str().unwrap(), "--require", "ah_trace_cli_inner"]);
    assert!(out.status.success(), "stderr: {}", String::from_utf8_lossy(&out.stderr));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn missing_required_span_exits_one() {
    let dir = temp_dir("require-missing");
    let path = write_valid_trace(&dir);
    let out = run(&["check", path.to_str().unwrap(), "--require", "ah_trace_cli_absent"]);
    assert_eq!(out.status.code(), Some(1));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("ah_trace_cli_absent"), "stderr: {stderr}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn malformed_trace_exits_one() {
    let dir = temp_dir("malformed");
    let path = dir.join("broken.json");
    std::fs::write(&path, "{\"traceEvents\": [{\"ph\": \"E\"").expect("write file");
    let out = run(&["check", path.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(1));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("INVALID"), "stderr: {stderr}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn missing_file_exits_two() {
    let dir = temp_dir("missing-file");
    let path = dir.join("does-not-exist.json");
    let out = run(&["check", path.to_str().unwrap()]);
    assert_eq!(out.status.code(), Some(2));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn usage_errors_exit_two() {
    for args in [&[][..], &["frobnicate"][..], &["check"][..]] {
        let out = run(args);
        assert_eq!(out.status.code(), Some(2), "args: {args:?}");
        assert!(String::from_utf8_lossy(&out.stderr).contains("usage"), "args: {args:?}");
    }
    // A dangling --require (no name) is a usage error too.
    let dir = temp_dir("usage");
    let path = write_valid_trace(&dir);
    let out = run(&["check", path.to_str().unwrap(), "--require"]);
    assert_eq!(out.status.code(), Some(2));
    std::fs::remove_dir_all(&dir).ok();
}
