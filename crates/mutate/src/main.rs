//! Command-line front end for the `ah-mutate` mutation-testing
//! harness; see the library crate docs for the operator set and the
//! caught/survived/timeout/build-broken classification.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::time::{Duration, Instant};

use ah_mutate::cache::Cache;
use ah_mutate::plan::{enumerate_workspace, pkg_for, sample, tree_fingerprint};
use ah_mutate::report::{count, render_json, render_survivors, write_reports, Classified};
use ah_mutate::runner::{default_steps, RunResult, Scope, Scratch};
use ah_mutate::sentinel::{resolve_all, SENTINELS};
use ah_mutate::Outcome;

const USAGE: &str = "\
ah-mutate — first-party mutation-testing harness

USAGE: ah-mutate [MODE] [OPTIONS]

Modes (default: the CI sentinel gate — every curated mutant must be caught):
  --all             full sweep over every enumerated product mutant
  --id HEX          run only the named mutant(s) (repeatable; burn-down loop)
  --list            print enumerated mutants without running anything

Options:
  --sample N        with --all: run a deterministic N-mutant subset
  --seed S          sample seed (default 1)
  --scope KIND      sweep test scope: crate | package | workspace (default: package)
  --timeout SECS    per-mutant wall-clock budget (default 900)
  --budget SECS     sentinel-gate total wall-clock budget (default 3600)
  --root DIR        workspace root (default: current directory)
  --scratch DIR     scratch tree (default: <root>/out/mutate-scratch)
  --json            print the ah-mutate/1 JSON report to stdout
  --no-cache        ignore and do not update out/mutate-cache.json
";

struct Opts {
    all: bool,
    ids: Vec<String>,
    list: bool,
    sample: Option<usize>,
    seed: u64,
    scope: Scope,
    timeout: Duration,
    budget: Duration,
    root: PathBuf,
    scratch: Option<PathBuf>,
    json: bool,
    no_cache: bool,
}

fn parse_args(args: &[String]) -> Result<Opts, String> {
    let mut opts = Opts {
        all: false,
        ids: Vec::new(),
        list: false,
        sample: None,
        seed: 1,
        scope: Scope::Package,
        timeout: Duration::from_secs(900),
        budget: Duration::from_secs(3600),
        root: PathBuf::from("."),
        scratch: None,
        json: false,
        no_cache: false,
    };
    let mut it = args.iter();
    let value = |it: &mut std::slice::Iter<String>, flag: &str| {
        it.next().cloned().ok_or_else(|| format!("{flag} needs a value"))
    };
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--all" => opts.all = true,
            "--id" => opts.ids.push(value(&mut it, "--id")?),
            "--list" => opts.list = true,
            "--sample" => {
                opts.sample = Some(
                    value(&mut it, "--sample")?
                        .parse()
                        .map_err(|_| "--sample needs an integer".to_string())?,
                );
            }
            "--seed" => {
                opts.seed = value(&mut it, "--seed")?
                    .parse()
                    .map_err(|_| "--seed needs an integer".to_string())?;
            }
            "--scope" => {
                let s = value(&mut it, "--scope")?;
                opts.scope =
                    Scope::parse(&s).ok_or_else(|| format!("unknown scope `{s}` (see usage)"))?;
            }
            "--timeout" => {
                opts.timeout = Duration::from_secs(
                    value(&mut it, "--timeout")?
                        .parse()
                        .map_err(|_| "--timeout needs seconds".to_string())?,
                );
            }
            "--budget" => {
                opts.budget = Duration::from_secs(
                    value(&mut it, "--budget")?
                        .parse()
                        .map_err(|_| "--budget needs seconds".to_string())?,
                );
            }
            "--root" => opts.root = PathBuf::from(value(&mut it, "--root")?),
            "--scratch" => opts.scratch = Some(PathBuf::from(value(&mut it, "--scratch")?)),
            "--json" => opts.json = true,
            "--no-cache" => opts.no_cache = true,
            "--help" | "-h" => return Err(String::new()),
            other => return Err(format!("unrecognized argument `{other}`")),
        }
    }
    Ok(opts)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match parse_args(&args) {
        Ok(o) => o,
        Err(msg) => {
            if msg.is_empty() {
                print!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            eprintln!("ah-mutate: {msg}\n\n{USAGE}");
            return ExitCode::from(2);
        }
    };
    match run(&opts) {
        Ok(code) => code,
        Err(msg) => {
            eprintln!("ah-mutate: {msg}");
            ExitCode::from(3)
        }
    }
}

fn run(opts: &Opts) -> Result<ExitCode, String> {
    let root =
        opts.root.canonicalize().map_err(|e| format!("bad --root {}: {e}", opts.root.display()))?;
    if opts.list {
        return list(opts, &root);
    }
    if opts.all || !opts.ids.is_empty() {
        return sweep(opts, &root);
    }
    gate(opts, &root)
}

fn list(opts: &Opts, root: &Path) -> Result<ExitCode, String> {
    let mutants = select(opts, root)?;
    for m in &mutants {
        println!("{} {}:{} {} `{}` -> `{}`", m.id, m.file, m.line, m.op, m.original, m.replacement);
    }
    eprintln!("{} mutants enumerated", mutants.len());
    Ok(ExitCode::SUCCESS)
}

/// Enumerate and apply `--id` / `--sample` filters.
fn select(opts: &Opts, root: &Path) -> Result<Vec<ah_mutate::Mutant>, String> {
    let mut mutants = enumerate_workspace(root)?;
    if !opts.ids.is_empty() {
        mutants.retain(|m| opts.ids.iter().any(|id| id == &m.id));
        for id in &opts.ids {
            if !mutants.iter().any(|m| &m.id == id) {
                return Err(format!("--id {id}: no such mutant in this tree (see --list)"));
            }
        }
    } else if let Some(n) = opts.sample {
        mutants = sample(mutants, n, opts.seed);
    }
    Ok(mutants)
}

fn scratch_dir(opts: &Opts, root: &std::path::Path) -> PathBuf {
    opts.scratch.clone().unwrap_or_else(|| root.join("out/mutate-scratch"))
}

/// The full sweep (or an `--id`-filtered burn-down run).
fn sweep(opts: &Opts, root: &Path) -> Result<ExitCode, String> {
    let mutants = select(opts, root)?;
    let tree_fp = tree_fingerprint(root).map_err(|e| format!("fingerprinting tree: {e}"))?;
    let cache_path = root.join("out/mutate-cache.json");
    let mut cache = if opts.no_cache {
        Cache { tree_fp: tree_fp.clone(), entries: Default::default() }
    } else {
        Cache::load(&cache_path, &tree_fp)
    };
    eprintln!(
        "sweeping {} mutants (tree {tree_fp}, {} cached verdicts apply)",
        mutants.len(),
        mutants.iter().filter(|m| cache.entries.contains_key(&m.id)).count()
    );

    let mut scratch: Option<Scratch> = None;
    let mut results = Vec::with_capacity(mutants.len());
    let total = mutants.len();
    for (i, m) in mutants.into_iter().enumerate() {
        let (result, cached) = match cache.entries.get(&m.id) {
            Some(e) => {
                (RunResult { outcome: e.outcome, detail: e.detail.clone(), secs: e.secs }, true)
            }
            None => {
                let s = match &scratch {
                    Some(s) => s,
                    None => {
                        eprintln!("preparing scratch tree…");
                        scratch.insert(
                            Scratch::prepare(root, &scratch_dir(opts, root))
                                .map_err(|e| format!("preparing scratch: {e}"))?,
                        )
                    }
                };
                let steps = default_steps(&pkg_for(&m.file), opts.scope);
                let r = s
                    .run_mutant(&m, &steps, opts.timeout)
                    .map_err(|e| format!("running {}: {e}", m.id))?;
                cache.insert(&m.id, &r);
                if !opts.no_cache {
                    cache.save(&cache_path).map_err(|e| format!("saving cache: {e}"))?;
                }
                (r, false)
            }
        };
        eprintln!(
            "[{}/{total}] {} {}:{} {} `{}`->`{}`: {}{} ({:.1}s)",
            i + 1,
            m.id,
            m.file,
            m.line,
            m.op,
            m.original,
            m.replacement,
            result.outcome.as_str(),
            if cached { " (cached)" } else { "" },
            result.secs
        );
        results.push(Classified { mutant: m, result, cached });
    }

    write_reports(&root.join("out"), &tree_fp, &results)
        .map_err(|e| format!("writing reports: {e}"))?;
    if opts.json {
        print!("{}", render_json(&tree_fp, &results));
    } else {
        print!("{}", render_survivors(&results));
    }
    let c = count(&results);
    eprintln!(
        "wrote out/mutants.json and out/survivors.md ({} survivors, {} executed, {} cached)",
        c.survived,
        results.len() - c.cached,
        c.cached
    );
    Ok(ExitCode::SUCCESS)
}

/// The CI sentinel gate: every curated mutant must be caught, inside
/// the wall-clock budget. Only *caught* verdicts are cached — a
/// sentinel's narrow kill steps prove a catch, but cannot prove a
/// sweep-grade survival.
fn gate(opts: &Opts, root: &Path) -> Result<ExitCode, String> {
    let started = Instant::now();
    let resolved = resolve_all(root)?;
    let tree_fp = tree_fingerprint(root).map_err(|e| format!("fingerprinting tree: {e}"))?;
    let cache_path = root.join("out/mutate-cache.json");
    let mut cache = if opts.no_cache {
        Cache { tree_fp: tree_fp.clone(), entries: Default::default() }
    } else {
        Cache::load(&cache_path, &tree_fp)
    };
    eprintln!("sentinel gate: {} mutants (tree {tree_fp})", resolved.len());

    let mut scratch: Option<Scratch> = None;
    let mut failures = Vec::new();
    let total = resolved.len();
    for (i, (s, m)) in resolved.iter().enumerate() {
        if started.elapsed() > opts.budget {
            return Err(format!(
                "gate exceeded its {}s budget after {} of {total} sentinels",
                opts.budget.as_secs(),
                i
            ));
        }
        if let Some(e) = cache.entries.get(&m.id) {
            if e.outcome == Outcome::Caught {
                eprintln!(
                    "[{}/{total}] {} ({}:{}): caught (cached)",
                    i + 1,
                    s.name,
                    m.file,
                    m.line
                );
                continue;
            }
        }
        let sc = match &scratch {
            Some(sc) => sc,
            None => {
                eprintln!("preparing scratch tree…");
                scratch.insert(
                    Scratch::prepare(root, &scratch_dir(opts, root))
                        .map_err(|e| format!("preparing scratch: {e}"))?,
                )
            }
        };
        let steps: Vec<Vec<String>> =
            s.kill.iter().map(|step| step.iter().map(|a| a.to_string()).collect()).collect();
        let per_mutant = opts.timeout.min(opts.budget.saturating_sub(started.elapsed()));
        let r = sc
            .run_mutant(m, &steps, per_mutant)
            .map_err(|e| format!("running sentinel {}: {e}", s.name))?;
        eprintln!(
            "[{}/{total}] {} ({}:{} {} `{}`->`{}`): {} ({:.1}s)",
            i + 1,
            s.name,
            m.file,
            m.line,
            m.op,
            m.original,
            m.replacement,
            r.outcome.as_str(),
            r.secs
        );
        if r.outcome == Outcome::Caught {
            if !opts.no_cache {
                cache.insert(&m.id, &r);
                cache.save(&cache_path).map_err(|e| format!("saving cache: {e}"))?;
            }
        } else {
            failures.push((s.name, r));
        }
    }

    let secs = started.elapsed().as_secs();
    if failures.is_empty() {
        println!(
            "mutation gate: all {} sentinels caught in {secs}s ({} curated: ring orderings, \
             WAL integrity, detector thresholds, aggregator boundaries)",
            total,
            SENTINELS.len(),
        );
        return Ok(ExitCode::SUCCESS);
    }
    println!("mutation gate FAILED ({secs}s): {} of {total} sentinels not caught:", failures.len());
    for (name, r) in &failures {
        println!("  {name}: {} — {}", r.outcome.as_str(), r.detail);
    }
    Ok(ExitCode::from(1))
}
