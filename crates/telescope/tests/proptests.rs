//! Property-based tests for the telescope substrate.

use ah_net::ipv4::Ipv4Addr4;
use ah_net::packet::{PacketMeta, ScanClass};
use ah_net::time::{Dur, Ts};
use ah_telescope::dstset::DstSet;
use ah_telescope::event::EventAggregator;
use proptest::prelude::*;
use std::collections::HashSet;

proptest! {
    /// DstSet behaves exactly like a HashSet across its representation
    /// upgrades.
    #[test]
    fn dstset_matches_hashset_model(
        universe in 64u32..20_000,
        ids in proptest::collection::vec(any::<u32>(), 1..6000),
    ) {
        let mut s = DstSet::new(universe);
        let mut model: HashSet<u32> = HashSet::new();
        for raw in ids {
            let id = raw % universe;
            let added = s.insert(id);
            prop_assert_eq!(added, model.insert(id));
        }
        prop_assert_eq!(s.count() as usize, model.len());
        for &x in model.iter().take(100) {
            prop_assert!(s.contains(x));
        }
        let cov = s.coverage();
        prop_assert!((0.0..=1.0).contains(&cov));
    }

    /// Event aggregation conserves packets and bytes: whatever goes in
    /// comes out across completed events, regardless of timing patterns.
    #[test]
    fn aggregation_conserves_packets_and_bytes(
        steps in proptest::collection::vec((0u64..100_000, 0u8..8, 1u32..500, 0u8..3), 1..300),
    ) {
        let dark = 1u32 << 12;
        let mut agg = EventAggregator::new(dark, Dur::from_mins(10));
        let mut t = Ts::ZERO;
        let mut packets_in = 0u64;
        let mut bytes_in = 0u64;
        for (gap_ms, src, dst, class) in steps {
            t += Dur::from_millis(gap_ms);
            let src_ip = Ipv4Addr4::new(10, 0, 0, src);
            let dst_ip = Ipv4Addr4(0x1400_0000 + dst % dark);
            let (pkt, cls) = match class {
                0 => (PacketMeta::tcp_syn(t, src_ip, dst_ip, 1, 23), ScanClass::TcpSyn),
                1 => (PacketMeta::udp_probe(t, src_ip, dst_ip, 1, 53), ScanClass::Udp),
                _ => (PacketMeta::icmp_echo(t, src_ip, dst_ip), ScanClass::IcmpEcho),
            };
            packets_in += 1;
            bytes_in += u64::from(pkt.wire_len);
            agg.observe(&pkt, cls, dst % dark);
        }
        let events = agg.flush();
        let packets_out: u64 = events.iter().map(|e| e.packets).sum();
        let bytes_out: u64 = events.iter().map(|e| e.bytes).sum();
        prop_assert_eq!(packets_in, packets_out);
        prop_assert_eq!(bytes_in, bytes_out);
        // Structural sanity on every event.
        for e in &events {
            prop_assert!(e.start <= e.end);
            prop_assert!(e.unique_dsts >= 1);
            prop_assert!(u64::from(e.unique_dsts) <= e.packets);
            prop_assert!(e.dispersion() <= 1.0);
            prop_assert_eq!(e.tools.total(), e.packets);
        }
    }

    /// No completed event contains an internal silence longer than the
    /// timeout: splitting a uniform packet train at the timeout boundary
    /// produces ceil-like event counts.
    #[test]
    fn uniform_train_splits_predictably(
        gap_s in 1u64..1200,
        n in 2u64..50,
    ) {
        let timeout = Dur::from_mins(10);
        let dark = 1024;
        let mut agg = EventAggregator::new(dark, timeout);
        for i in 0..n {
            let pkt = PacketMeta::tcp_syn(
                Ts::from_secs(i * gap_s),
                Ipv4Addr4::new(10, 0, 0, 1),
                Ipv4Addr4(0x1400_0000 + (i as u32 % dark)),
                1,
                23,
            );
            agg.observe(&pkt, ScanClass::TcpSyn, i as u32 % dark);
        }
        let events = agg.flush();
        let expected = if gap_s * 1_000_000 > timeout.micros() { n } else { 1 };
        prop_assert_eq!(events.len() as u64, expected, "gap {}s n {}", gap_s, n);
    }
}
