//! End-to-end pipeline throughput: the serial engine vs the sharded
//! parallel engine at increasing worker counts.
//!
//! Besides the Criterion measurements, the bench writes a machine-readable
//! summary (`BENCH_pipeline.json`, or the path in `$BENCH_PIPELINE_OUT`)
//! with packets-per-second per engine configuration, measured with a
//! best-of-three wall-clock loop over identical full-vantage runs. The
//! summary is what `scripts/bench.sh` publishes and what the throughput
//! table in `EXPERIMENTS.md` is generated from.

use aggressive_scanners::pipeline::{self, RunOptions, Telemetry};
use ah_obs::{Recorder, Value};
use ah_simnet::scenario::ScenarioConfig;
use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};
use std::time::Instant;

const SEED: u64 = 42;
const DAYS: u64 = 2;
const THREAD_COUNTS: [usize; 4] = [1, 2, 4, 8];

fn cfg() -> ScenarioConfig {
    ScenarioConfig::tiny(DAYS, SEED)
}

fn run_once(threads: usize) -> u64 {
    if threads == 0 {
        pipeline::run(cfg(), RunOptions::full()).generated_packets
    } else {
        pipeline::run_parallel(cfg(), RunOptions::full(), threads).generated_packets
    }
}

fn bench_pipeline(c: &mut Criterion) {
    let generated = run_once(0);
    let mut g = c.benchmark_group("pipeline");
    g.sample_size(10);
    g.throughput(Throughput::Elements(generated));
    g.bench_function("serial", |b| b.iter(|| black_box(run_once(0))));
    for threads in THREAD_COUNTS {
        g.bench_function(&format!("parallel_{threads}"), |b| {
            b.iter(|| black_box(run_once(threads)))
        });
    }
    g.finish();
    write_summary(generated);
}

/// The commit the numbers were measured at: `$GIT_COMMIT` if the harness
/// (scripts/bench.sh) exported it, else `git rev-parse`, else "unknown".
fn git_commit() -> String {
    if let Ok(c) = std::env::var("GIT_COMMIT") {
        if !c.is_empty() {
            return c;
        }
    }
    std::process::Command::new("git")
        .args(["rev-parse", "--short=12", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .map(|o| String::from_utf8_lossy(&o.stdout).trim().to_string())
        .filter(|s| !s.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

/// One instrumented run on the widest configuration, returning the
/// per-shard SPSC ring occupancy high-water marks (in slots) plus the
/// run's wall clock — the recorder is the only way to see inside the
/// dispatcher/shard boundary without perturbing the output.
fn ring_occupancy(threads: usize) -> (Vec<i64>, f64) {
    let rec = Recorder::new();
    let mut tel = Telemetry::new(rec.clone());
    let t0 = Instant::now();
    black_box(pipeline::run_parallel_with_recorder(cfg(), RunOptions::full(), threads, &mut tel));
    let secs = t0.elapsed().as_secs_f64();
    let snap = rec.snapshot();
    let hwm: Vec<i64> = snap
        .samples
        .iter()
        .filter(|s| s.name == "ah_pipeline_ring_occupancy_hwm")
        .map(|s| match s.value {
            Value::Gauge(v) => v,
            _ => 0,
        })
        .collect();
    (hwm, secs)
}

/// One run of the widest configuration with a live [`ah_trace::Tracer`]
/// at the binary's default journey sampling (1-in-64 sources),
/// returning the wall clock and the number of trace events recorded —
/// the price of tracing *on*. (Tracing *off* is every other
/// configuration: the noop tracer rides the same hot paths.)
fn traced_run(threads: usize) -> (f64, usize) {
    let trace_cfg = ah_trace::TraceConfig { seed: SEED, ..ah_trace::TraceConfig::default() };
    let mut tel = Telemetry::disabled().with_tracer(ah_trace::Tracer::new(trace_cfg));
    let t0 = Instant::now();
    black_box(pipeline::run_parallel_with_recorder(cfg(), RunOptions::full(), threads, &mut tel));
    let secs = t0.elapsed().as_secs_f64();
    let snap = tel.tracer.snapshot();
    let events = snap.tracks.iter().map(|t| t.events.len()).sum();
    (secs, events)
}

/// One run of the widest configuration with tagged-allocator
/// accounting on, returning the wall clock and the end-of-run memory
/// report — the price and the payoff of `--mem-report`. The peak
/// window is rebased first so per-tag peaks describe this run, not
/// everything the bench process allocated before it.
fn mem_run(threads: usize) -> (f64, ah_mem::MemReport) {
    ah_mem::set_accounting(true);
    ah_mem::reset_window();
    let mut tel = Telemetry::disabled().with_mem(100_000);
    let t0 = Instant::now();
    let out = pipeline::run_parallel_with_recorder(cfg(), RunOptions::full(), threads, &mut tel);
    let secs = t0.elapsed().as_secs_f64();
    let report = out.mem.clone().unwrap_or_default();
    black_box(out);
    ah_mem::set_accounting(false);
    (secs, report)
}

/// Best-of-three wall clock per configuration, written as JSON.
///
/// The host core count is recorded alongside the numbers: on a
/// single-core host every configuration timeshares one CPU, so the
/// parallel engine can only show its dispatch/ring overhead there —
/// speedup needs `host_cpus >= threads`. `git_commit` and
/// `wall_seconds` tie the numbers to a revision and a total cost;
/// `ring_occupancy_hwm` (from a live-recorder run of the widest
/// configuration) shows how close each shard ring came to
/// back-pressuring the dispatcher.
fn write_summary(generated: u64) {
    let wall0 = Instant::now();
    let host_cpus = std::thread::available_parallelism().map_or(1, |n| n.get());
    let mut lines = Vec::new();
    let mut serial_pps = 0.0f64;
    for (label, threads) in
        std::iter::once(("serial", 0usize)).chain(THREAD_COUNTS.iter().map(|&t| ("parallel", t)))
    {
        let mut best = f64::INFINITY;
        for _ in 0..3 {
            let t0 = Instant::now();
            black_box(run_once(threads));
            best = best.min(t0.elapsed().as_secs_f64());
        }
        let pps = generated as f64 / best;
        if threads == 0 {
            serial_pps = pps;
        }
        let speedup = if serial_pps > 0.0 { pps / serial_pps } else { 1.0 };
        eprintln!(
            "[bench] {label}{}: {:.3}s, {:.0} pkts/s, {speedup:.2}x vs serial",
            if threads == 0 { String::new() } else { format!("_{threads}") },
            best,
            pps,
        );
        lines.push(format!(
            concat!(
                "    {{\"engine\": \"{}\", \"threads\": {}, \"seconds\": {:.6}, ",
                "\"packets_per_sec\": {:.1}, \"speedup_vs_serial\": {:.3}}}"
            ),
            label, threads, best, pps, speedup
        ));
    }
    let widest = *THREAD_COUNTS.last().expect("thread counts");
    let (ring_hwm, metrics_secs) = ring_occupancy(widest);
    let metrics_pps = generated as f64 / metrics_secs;
    eprintln!(
        "[bench] parallel_{widest} with live recorder: {metrics_secs:.3}s, {metrics_pps:.0} pkts/s"
    );
    eprintln!("[bench] ring occupancy HWM (slots, per shard): {ring_hwm:?}");
    lines.push(format!(
        concat!(
            "    {{\"engine\": \"parallel_metrics\", \"threads\": {}, \"seconds\": {:.6}, ",
            "\"packets_per_sec\": {:.1}, \"speedup_vs_serial\": {:.3}}}"
        ),
        widest,
        metrics_secs,
        metrics_pps,
        if serial_pps > 0.0 { metrics_pps / serial_pps } else { 1.0 }
    ));
    let (trace_secs, trace_events) = traced_run(widest);
    let trace_pps = generated as f64 / trace_secs;
    eprintln!(
        "[bench] parallel_{widest} with live tracer: {trace_secs:.3}s, {trace_pps:.0} pkts/s, \
         {trace_events} events"
    );
    lines.push(format!(
        concat!(
            "    {{\"engine\": \"parallel_trace\", \"threads\": {}, \"seconds\": {:.6}, ",
            "\"packets_per_sec\": {:.1}, \"speedup_vs_serial\": {:.3}, \"trace_events\": {}}}"
        ),
        widest,
        trace_secs,
        trace_pps,
        if serial_pps > 0.0 { trace_pps / serial_pps } else { 1.0 },
        trace_events
    ));
    let (mem_secs, mem_report) = mem_run(widest);
    let mem_pps = generated as f64 / mem_secs;
    eprintln!(
        "[bench] parallel_{widest} with memory accounting: {mem_secs:.3}s, {mem_pps:.0} pkts/s, \
         peak rss {} bytes",
        mem_report.peak_rss_bytes()
    );
    lines.push(format!(
        concat!(
            "    {{\"engine\": \"parallel_mem\", \"threads\": {}, \"seconds\": {:.6}, ",
            "\"packets_per_sec\": {:.1}, \"speedup_vs_serial\": {:.3}}}"
        ),
        widest,
        mem_secs,
        mem_pps,
        if serial_pps > 0.0 { mem_pps / serial_pps } else { 1.0 },
    ));
    let tag_peaks: Vec<String> =
        mem_report.tags().map(|(tag, s)| format!("\"{}\": {}", tag.name(), s.peak_bytes)).collect();
    let ring_json: Vec<String> = ring_hwm.iter().map(|v| v.to_string()).collect();
    // An undersized host cannot produce a meaningful parallel speedup
    // curve, only dispatch/ring overhead; label the summary so a
    // single-core sanity run is never mistaken for a perf baseline.
    let (kind, note) = if host_cpus >= widest {
        ("perf-baseline", format!("host has {host_cpus} CPU(s); speedups are meaningful"))
    } else {
        (
            "undersized-host-sanity",
            format!(
                "host has {host_cpus} CPU(s) for up to {widest} threads; every configuration \
                 timeshares the same cores, so speedup_vs_serial only measures engine overhead \
                 — re-run on a host with >= {widest} CPUs for a perf baseline"
            ),
        )
    };
    let json = format!(
        "{{\n  \"bench\": \"pipeline\",\n  \"baseline_kind\": \"{kind}\",\n  \
         \"note\": \"{note}\",\n  \"git_commit\": \"{}\",\n  \
         \"scenario\": \"tiny({DAYS} days, seed {SEED})\",\n  \
         \"generated_packets\": {generated},\n  \"host_cpus\": {host_cpus},\n  \
         \"wall_seconds\": {:.3},\n  \
         \"ring_occupancy_hwm\": {{\"threads\": {widest}, \"slots\": [{}]}},\n  \
         \"memory\": {{\"threads\": {widest}, \"peak_rss_bytes\": {}, \
         \"global_peak_live_bytes\": {}, \"tag_peak_bytes\": {{{}}}}},\n  \
         \"configs\": [\n{}\n  ]\n}}\n",
        git_commit(),
        wall0.elapsed().as_secs_f64(),
        ring_json.join(", "),
        mem_report.peak_rss_bytes(),
        mem_report.global.peak_bytes,
        tag_peaks.join(", "),
        lines.join(",\n")
    );
    let path =
        std::env::var("BENCH_PIPELINE_OUT").unwrap_or_else(|_| "BENCH_pipeline.json".to_string());
    match std::fs::write(&path, &json) {
        Ok(()) => eprintln!("[bench] wrote {path}"),
        Err(e) => eprintln!("[bench] could not write {path}: {e}"),
    }
}

criterion_group!(benches, bench_pipeline);
criterion_main!(benches);
