//! End-to-end fault-injection ("chaos") runs: the full pipeline fed a
//! degraded packet stream must neither panic nor lose input without a
//! ledger entry, and detection must degrade gracefully — at a 1% fault
//! rate the aggressive-hitter lists stay nearly identical to a pristine
//! run (Jaccard ≥ 0.9 for all three definitions).

use aggressive_scanners::core::defs::{Definition, Thresholds};
use aggressive_scanners::core::lists::jaccard;
use aggressive_scanners::net::time::Dur;
use aggressive_scanners::pipeline::{self, RunOptions, RunOutput};
use aggressive_scanners::simnet::faults::FaultPlan;
use aggressive_scanners::simnet::scenario::ScenarioConfig;

/// Loose tail cuts so the tiny scenario yields lists of tens of sources
/// per definition (the paper's α = 10⁻⁴ assumes millions of events).
fn chaos_thresholds() -> Thresholds {
    Thresholds { dispersion_fraction: 0.10, volume_alpha: 0.01, ports_alpha: 0.01 }
}

fn chaos_run(faults: Option<FaultPlan>) -> RunOutput {
    let mut opts = RunOptions::full().with_thresholds(chaos_thresholds());
    if let Some(plan) = faults {
        opts = opts.with_faults(plan);
    }
    pipeline::run(ScenarioConfig::tiny(3, 77), opts)
}

/// Every stage ledger must balance exactly, at any fault rate.
fn assert_conserves(out: &RunOutput, label: &str) {
    assert!(
        out.health.conserves(),
        "{label}: conservation violated in stages {:?}\n{}",
        out.health.violations(),
        out.health.render()
    );
}

#[test]
fn faulty_runs_never_panic_and_always_conserve() {
    for rate in [0.001, 0.01, 0.05] {
        let out = chaos_run(Some(FaultPlan::uniform(rate, 7)));
        assert_conserves(&out, &format!("rate {rate}"));
        let inj = out.health.stage("faults.injector").expect("injector stage present");
        assert!(inj.received >= out.generated_packets, "injector saw every packet");
        assert!(inj.discarded_total() > 0, "rate {rate} must discard something");
        // The degraded stream still reaches every vantage point.
        assert!(out.capture.total_packets > 0);
        assert!(out.merit_flows.as_ref().is_some_and(|d| !d.records.is_empty()));
        assert!(out.gn_entries.as_ref().is_some_and(|g| !g.is_empty()));
    }
}

#[test]
fn one_percent_faults_keep_hitter_lists_stable() {
    let clean = chaos_run(None);
    let faulty = chaos_run(Some(FaultPlan::uniform(0.01, 7)));
    assert_conserves(&clean, "clean");
    assert_conserves(&faulty, "1% faults");
    for def in [Definition::AddressDispersion, Definition::PacketVolume, Definition::DistinctPorts]
    {
        let a = clean.report.hitters(def);
        let b = faulty.report.hitters(def);
        assert!(!a.is_empty(), "{def:?}: clean run must detect hitters");
        let j = jaccard(a, b);
        assert!(
            j >= 0.9,
            "{def:?}: Jaccard {j:.3} < 0.9 (clean {} vs faulty {})",
            a.len(),
            b.len()
        );
    }
}

#[test]
fn clean_plan_is_an_identity() {
    let baseline = chaos_run(None);
    let injected = chaos_run(Some(FaultPlan::clean()));
    assert_conserves(&injected, "clean plan");
    let inj = injected.health.stage("faults.injector").expect("injector stage present");
    assert_eq!(inj.received, inj.accepted, "clean plan delivers every packet");
    assert_eq!(inj.discarded_total(), 0);
    assert_eq!(baseline.generated_packets, injected.generated_packets);
    assert_eq!(baseline.capture.total_packets, injected.capture.total_packets);
    for def in [Definition::AddressDispersion, Definition::PacketVolume, Definition::DistinctPorts]
    {
        assert_eq!(baseline.report.hitters(def), injected.report.hitters(def), "{def:?}");
    }
}

// --- Storage-fault recovery ----------------------------------------------
//
// Chaos at the durability layer: damage a write-ahead log the way real
// crashes and disks do (torn final write, truncated tail, flipped bit,
// missing index sidecar), then demand that recovery truncates to the
// durable watermark, that a second recovery pass is a no-op, and that
// resuming the damaged run reproduces the uninterrupted run's output
// bit for bit.

use aggressive_scanners::obs::Recorder;
use aggressive_scanners::pipeline::{Telemetry, WalOutcome, WalRun};
use aggressive_scanners::simnet::faults::{StorageFaultKind, StorageFaultPlan};
use aggressive_scanners::wal;
use std::path::{Path, PathBuf};

/// Fresh, collision-free WAL directory for one test case.
fn chaos_wal_dir(label: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ah-chaos-{label}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Every log file in `dir`, as (name, bytes) — for idempotence checks.
fn dir_snapshot(dir: &Path) -> Vec<(String, Vec<u8>)> {
    let mut files: Vec<(String, Vec<u8>)> = std::fs::read_dir(dir)
        .expect("wal dir readable")
        .map(|e| {
            let e = e.expect("dir entry");
            let name = e.file_name().to_string_lossy().into_owned();
            (name, std::fs::read(e.path()).expect("file readable"))
        })
        .collect();
    files.sort_by(|a, b| a.0.cmp(&b.0));
    files
}

/// Run recovery over `dir`, discarding the records.
fn recover_quiet(dir: &Path) -> wal::RecoveredLog {
    wal::recover(dir, &Recorder::new(), |_, _, _| {}).expect("recovery succeeds")
}

/// Suspend a durable run partway, damage the log with `kind`, and check
/// the full recovery contract against the uninterrupted `plain` run.
fn storage_fault_case(kind: StorageFaultKind, label: &str, plain: &RunOutput) {
    let opts = || RunOptions::full().with_thresholds(chaos_thresholds());
    let cfg = || ScenarioConfig::tiny(2, 91);
    let mut tel = Telemetry::disabled();
    let dir = chaos_wal_dir(label);
    let cut = plain.capture.total_packets.max(8) / 2;
    let wal_run = WalRun::new(&dir).suspend_after(cut);
    match pipeline::run_wal(cfg(), opts(), &wal_run, &mut tel) {
        Ok(WalOutcome::Suspended { delivered, .. }) => assert_eq!(delivered, cut, "{label}"),
        Ok(WalOutcome::Completed(_)) => panic!("{label}: run finished before suspension point"),
        Err(e) => panic!("{label}: suspend run failed: {e}"),
    }
    let intact = recover_quiet(&dir);

    let segs: Vec<PathBuf> =
        wal::segment_paths(&dir).expect("list segments").into_iter().map(|(_, p)| p).collect();
    assert!(!segs.is_empty(), "{label}: suspended log must have segments");
    let report = StorageFaultPlan::new(kind, 7)
        .apply(&segs, &wal::segment::index_path(&dir))
        .expect("storage fault applies");

    // First recovery repairs; it must never invent frames, and every
    // damage kind except the deleted sidecar must cost at least one.
    let repaired = recover_quiet(&dir);
    assert!(repaired.next_seq <= intact.next_seq, "{label}: recovery must not invent frames");
    assert!(repaired.meta.is_some(), "{label}: run metadata survives");
    assert!(!repaired.is_sealed(), "{label}: suspended log stays unsealed");
    match kind {
        StorageFaultKind::MissingIndex => {
            assert!(repaired.stats.index_rebuilt, "{label}: index must be rebuilt");
            assert_eq!(repaired.next_seq, intact.next_seq, "{label}: data files untouched");
        }
        StorageFaultKind::TornFinalWrite => {
            assert!(repaired.next_seq < intact.next_seq, "{label}: torn tail loses a frame");
            assert!(
                repaired.stats.torn_frames > 0 && repaired.stats.bytes_truncated > 0,
                "{label}: the mid-frame cut must be observed: {:?}",
                repaired.stats
            );
        }
        StorageFaultKind::TruncatedTail => {
            // The cut may land exactly on a frame boundary, in which case
            // the shorter log is already clean — only the watermark moves.
            assert!(repaired.next_seq < intact.next_seq, "{label}: tail damage loses frames");
        }
        StorageFaultKind::BitFlipMidSegment => {
            assert!(report.bit_flipped.is_some(), "{label}: report names the flipped bit");
            assert!(repaired.next_seq < intact.next_seq, "{label}: the flipped frame is lost");
            assert!(
                repaired.stats.torn_frames + repaired.stats.corrupt_frames > 0,
                "{label}: flipped bit must fail a frame check: {:?}",
                repaired.stats
            );
        }
    }

    // Second recovery is a no-op: same watermark, byte-identical files.
    let snapshot = dir_snapshot(&dir);
    let again = recover_quiet(&dir);
    assert_eq!(again.next_seq, repaired.next_seq, "{label}: recovery watermark is stable");
    assert_eq!(again.stats.bytes_truncated, 0, "{label}: second pass truncates nothing");
    assert_eq!(dir_snapshot(&dir), snapshot, "{label}: second pass rewrites nothing");

    // Resuming the damaged run regenerates the lost tail deterministically.
    let resumed = pipeline::resume_wal(cfg(), opts(), &WalRun::new(&dir), &mut tel)
        .unwrap_or_else(|e| panic!("{label}: resume failed: {e}"))
        .completed()
        .unwrap_or_else(|| panic!("{label}: resume must run to completion"));
    assert_eq!(
        resumed.fingerprint(),
        plain.fingerprint(),
        "{label}: resumed output diverged from the uninterrupted run"
    );
    assert_conserves(&resumed, label);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn storage_faults_recover_to_the_durable_watermark() {
    let plain = pipeline::run(
        ScenarioConfig::tiny(2, 91),
        RunOptions::full().with_thresholds(chaos_thresholds()),
    );
    storage_fault_case(StorageFaultKind::TornFinalWrite, "torn-final-write", &plain);
    storage_fault_case(StorageFaultKind::TruncatedTail, "truncated-tail", &plain);
    storage_fault_case(StorageFaultKind::BitFlipMidSegment, "bit-flip-mid-segment", &plain);
    storage_fault_case(StorageFaultKind::MissingIndex, "missing-index", &plain);
}

#[test]
fn burst_outages_are_dropped_and_ledgered() {
    let plan = FaultPlan::clean().with_outage(Dur::from_mins(60), Dur::from_mins(5));
    let out = chaos_run(Some(plan));
    assert_conserves(&out, "outage");
    let inj = out.health.stage("faults.injector").expect("injector stage present");
    let outage = inj.discarded.get("outage").copied().unwrap_or(0);
    assert!(outage > 0, "periodic outage windows must drop packets");
    assert_eq!(inj.received, inj.accepted + outage, "outage is the only loss");
    // Capture still conserves downstream of the holes.
    assert!(out.capture.total_packets > 0);
}
