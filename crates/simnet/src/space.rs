//! The observable-space scaling trick.
//!
//! A real Internet-wide scanner sweeps all 2³² addresses; our vantage
//! points (dark space, two ISPs, honeypot sensors) only ever see the tiny
//! sub-stream landing inside their prefixes. Materializing the other
//! 99.97% of probes would waste nearly all simulation time, so actors
//! draw targets directly from the *observable space* — the union of all
//! monitored prefixes, indexed densely — and their conceptual Internet
//! rate `R` is thinned to an observable rate
//! `R_obs = R · |observable| / 2³²`.
//!
//! This preserves exactly the quantities the paper measures: address
//! dispersion is a *fraction* of the dark space, packet-volume and
//! port-count thresholds are percentiles, and a scanner covering a
//! fraction `f` of IPv4 covers in expectation the same fraction `f` of
//! every observable prefix.

use ah_net::ipv4::Ipv4Addr4;
use ah_net::prefix::Prefix;

/// Size of the IPv4 space, for rate thinning.
pub const IPV4_SPACE: f64 = 4_294_967_296.0;

/// The union of monitored prefixes with a dense index space.
#[derive(Debug, Clone)]
pub struct ObservableSpace {
    prefixes: Vec<Prefix>,
    /// Cumulative sizes: `cum[i]` = first index of `prefixes[i]`.
    cum: Vec<u64>,
    total: u64,
}

impl ObservableSpace {
    /// Build from a list of (assumed disjoint) prefixes. Order is
    /// preserved: indices 0..size(p0) map into the first prefix, etc.
    pub fn new(prefixes: Vec<Prefix>) -> ObservableSpace {
        let mut cum = Vec::with_capacity(prefixes.len());
        let mut total = 0u64;
        for p in &prefixes {
            cum.push(total);
            total += p.size();
        }
        ObservableSpace { prefixes, cum, total }
    }

    /// Number of observable addresses.
    pub fn len(&self) -> u64 {
        self.total
    }

    /// Whether the space contains no addresses.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// The prefixes, in index order.
    pub fn prefixes(&self) -> &[Prefix] {
        &self.prefixes
    }

    /// Address at a dense index.
    pub fn addr_at(&self, index: u64) -> Option<Ipv4Addr4> {
        if index >= self.total {
            return None;
        }
        // Find the prefix containing the index: last cum[i] <= index.
        let i = match self.cum.binary_search(&index) {
            Ok(i) => i,
            Err(i) => i - 1,
        };
        self.prefixes[i].addr_at((index - self.cum[i]) as u32)
    }

    /// Address at `index % len`: cycling lookup for actors that draw
    /// random in-range indices and want an address unconditionally.
    pub fn addr_mod(&self, index: u64) -> Ipv4Addr4 {
        // ah-lint: allow(panic-path, reason = "index is reduced modulo the space size and every scenario monitors at least one prefix, so the space is non-empty")
        self.addr_at(index % self.total.max(1)).expect("non-empty observable space")
    }

    /// Dense index of an observable address.
    pub fn index_of(&self, addr: Ipv4Addr4) -> Option<u64> {
        self.prefixes
            .iter()
            .zip(&self.cum)
            .find_map(|(p, base)| p.index_of(addr).map(|i| base + u64::from(i)))
    }

    /// Thin a conceptual Internet-wide rate (pps over 2³²) to the rate at
    /// which probes land in the observable space.
    pub fn thin_rate(&self, internet_rate_pps: f64) -> f64 {
        internet_rate_pps * self.total as f64 / IPV4_SPACE
    }

    /// The sub-range of dense indices covered by a particular prefix of
    /// this space (for actors that target only one network).
    pub fn range_of(&self, prefix: Prefix) -> Option<std::ops::Range<u64>> {
        self.prefixes
            .iter()
            .zip(&self.cum)
            .find(|(p, _)| **p == prefix)
            .map(|(p, base)| *base..*base + p.size())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn space() -> ObservableSpace {
        ObservableSpace::new(vec![
            "20.0.0.0/24".parse().unwrap(), // 256
            "10.0.0.0/30".parse().unwrap(), // 4
            "50.1.0.0/31".parse().unwrap(), // 2
        ])
    }

    #[test]
    fn total_size() {
        assert_eq!(space().len(), 262);
        assert!(!space().is_empty());
    }

    #[test]
    fn addr_at_spans_prefixes() {
        let s = space();
        assert_eq!(s.addr_at(0), Some(Ipv4Addr4::new(20, 0, 0, 0)));
        assert_eq!(s.addr_at(255), Some(Ipv4Addr4::new(20, 0, 0, 255)));
        assert_eq!(s.addr_at(256), Some(Ipv4Addr4::new(10, 0, 0, 0)));
        assert_eq!(s.addr_at(259), Some(Ipv4Addr4::new(10, 0, 0, 3)));
        assert_eq!(s.addr_at(260), Some(Ipv4Addr4::new(50, 1, 0, 0)));
        assert_eq!(s.addr_at(261), Some(Ipv4Addr4::new(50, 1, 0, 1)));
        assert_eq!(s.addr_at(262), None);
    }

    #[test]
    fn index_roundtrip() {
        let s = space();
        for i in 0..s.len() {
            let a = s.addr_at(i).unwrap();
            assert_eq!(s.index_of(a), Some(i), "index {i} addr {a}");
        }
        assert_eq!(s.index_of(Ipv4Addr4::new(9, 9, 9, 9)), None);
    }

    #[test]
    fn rate_thinning() {
        let s = ObservableSpace::new(vec!["0.0.0.0/1".parse().unwrap()]); // half the net
        let thinned = s.thin_rate(1000.0);
        assert!((thinned - 500.0).abs() < 1e-9);
    }

    #[test]
    fn range_of_prefix() {
        let s = space();
        let r = s.range_of("10.0.0.0/30".parse().unwrap()).unwrap();
        assert_eq!(r, 256..260);
        assert!(s.range_of("99.0.0.0/24".parse().unwrap()).is_none());
    }
}
