//! Deterministic property-testing harness.
//!
//! This is a first-party, API-subset reimplementation of the `proptest`
//! crate, vendored so the workspace builds and runs its property tests
//! without crates.io access (see `vendor/README.md` for the policy).
//! Test files written against upstream proptest's prelude compile and
//! *execute* unchanged for the subset used in this repository:
//! `any::<T>()`, integer range strategies, `Just`, `prop_map` /
//! `prop_filter` / `prop_flat_map`, tuple strategies,
//! `proptest::collection::{vec, hash_set}`, `prop::sample::Index`, and
//! the `proptest!` / `prop_assert*` / `prop_assume!` macros.
//!
//! Differences from upstream, by design:
//!
//! - **Deterministic, not seeded from entropy.** Each test function's
//!   input stream is a SplitMix64 sequence seeded by FNV-1a over the
//!   test's `module_path!()::name`, perturbed per case. Every run on
//!   every machine explores the same inputs, so a failure reproduces
//!   exactly — the failure message includes the case number and base
//!   seed. This also keeps `cargo test` output stable, which the
//!   pipeline's bitwise-determinism gates rely on.
//! - **No shrinking and no regression persistence.** A failing case is
//!   reported as generated. `*.proptest-regressions` files are ignored.
//! - **64 cases per test by default** (override with
//!   `#![proptest_config(ProptestConfig { cases: N })]`).

// ah-lint: allow-file(panic-path, reason = "test-support crate: the proptest harness reports shrunk counterexamples by panicking, matching upstream behavior")

#![warn(missing_docs)]
#![forbid(unsafe_code)]

/// Test-case plumbing: the RNG, per-test configuration, and the error
/// type that `prop_assert!` returns from a property body.
pub mod test_runner {
    use std::fmt;

    /// Failure of a single property case, carrying the formatted
    /// assertion message (including file:line of the failing
    /// `prop_assert!`).
    #[derive(Debug)]
    pub struct TestCaseError(String);

    impl TestCaseError {
        /// A failure with no further detail.
        pub fn fail() -> TestCaseError {
            TestCaseError("property assertion failed".to_string())
        }

        /// A failure carrying a formatted message.
        pub fn fail_msg(msg: String) -> TestCaseError {
            TestCaseError(msg)
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str(&self.0)
        }
    }

    /// Per-test configuration accepted by
    /// `#![proptest_config(..)]`. Only `cases` is honored.
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of property cases to run per test function.
        pub cases: u32,
    }

    impl Default for Config {
        fn default() -> Config {
            Config { cases: 64 }
        }
    }

    /// SplitMix64: a tiny, high-quality deterministic generator. One
    /// instance is created per test case from a per-test base seed.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// A generator whose stream is fully determined by `seed`.
        pub fn from_seed(seed: u64) -> TestRng {
            TestRng { state: seed }
        }

        /// Next 64 uniformly distributed bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform draw from `[0, n)`. `n` must be nonzero; spans up to
        /// 2^64 (e.g. a full-width `RangeInclusive<u64>`) are exact.
        pub fn below(&mut self, n: u128) -> u128 {
            assert!(n > 0, "TestRng::below(0)");
            let wide = (u128::from(self.next_u64()) << 64) | u128::from(self.next_u64());
            wide % n
        }
    }

    /// FNV-1a over a test identifier; the per-test base seed used by
    /// the `proptest!` macro.
    pub fn fnv1a(s: &str) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in s.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h
    }
}

/// Value-generation strategies and their combinators.
pub mod strategy {
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// How many draws `prop_filter` attempts before concluding the
    /// predicate is unsatisfiably strict and panicking.
    const FILTER_MAX_TRIES: u32 = 1_000;

    /// A recipe for generating values of `Self::Value` from a
    /// deterministic RNG.
    pub trait Strategy: Sized {
        /// The type of value this strategy produces.
        type Value;

        /// Draw one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Transform every generated value with `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F> {
            Map(self, f)
        }

        /// Keep only values satisfying `f`; `reason` is reported if the
        /// filter rejects too many consecutive draws.
        fn prop_filter<F: Fn(&Self::Value) -> bool>(
            self,
            reason: &'static str,
            f: F,
        ) -> Filter<Self, F> {
            Filter(self, f, reason)
        }

        /// Generate a value, then generate from the strategy `f` builds
        /// out of it (dependent generation).
        fn prop_flat_map<O: Strategy, F: Fn(Self::Value) -> O>(self, f: F) -> FlatMap<Self, F> {
            FlatMap(self, f)
        }
    }

    /// Strategy produced by [`Strategy::prop_map`].
    pub struct Map<S, F>(S, F);
    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.1)(self.0.generate(rng))
        }
    }

    /// Strategy produced by [`Strategy::prop_filter`].
    pub struct Filter<S, F>(S, F, &'static str);
    impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> S::Value {
            for _ in 0..FILTER_MAX_TRIES {
                let v = self.0.generate(rng);
                if (self.1)(&v) {
                    return v;
                }
            }
            panic!("prop_filter rejected {FILTER_MAX_TRIES} consecutive draws: {}", self.2);
        }
    }

    /// Strategy produced by [`Strategy::prop_flat_map`].
    pub struct FlatMap<S, F>(S, F);
    impl<S: Strategy, O: Strategy, F: Fn(S::Value) -> O> Strategy for FlatMap<S, F> {
        type Value = O::Value;
        fn generate(&self, rng: &mut TestRng) -> O::Value {
            (self.1)(self.0.generate(rng)).generate(rng)
        }
    }

    /// Always generates a clone of the wrapped value.
    #[derive(Clone, Copy, Debug)]
    pub struct Just<T>(pub T);
    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    (self.start as i128 + rng.below(span) as i128) as $t
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty inclusive range strategy");
                    let span = (hi as i128 - lo as i128) as u128 + 1;
                    (lo as i128 + rng.below(span) as i128) as $t
                }
            }
        )*};
    }
    int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    /// Strategy for any value of `T`, via [`crate::arbitrary::Arbitrary`].
    pub struct Any<T>(PhantomData<T>);
    impl<T: crate::arbitrary::Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    pub(crate) fn any_strategy<T>() -> Any<T> {
        Any(PhantomData)
    }

    macro_rules! tuple_strategy {
        ($($p:ident),*) => {
            impl<$($p: Strategy),*> Strategy for ($($p,)*) {
                type Value = ($($p::Value,)*);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($p,)*) = self;
                    ($($p.generate(rng),)*)
                }
            }
        };
    }
    tuple_strategy!(A, B);
    tuple_strategy!(A, B, C);
    tuple_strategy!(A, B, C, D);
    tuple_strategy!(A, B, C, D, E);
    tuple_strategy!(A, B, C, D, E, F);
    tuple_strategy!(A, B, C, D, E, F, G);
    tuple_strategy!(A, B, C, D, E, F, G, H);
    tuple_strategy!(A, B, C, D, E, F, G, H, I);
    tuple_strategy!(A, B, C, D, E, F, G, H, I, J);
}

/// The [`Arbitrary`](arbitrary::Arbitrary) trait behind `any::<T>()`.
pub mod arbitrary {
    use crate::test_runner::TestRng;

    /// Types that can be generated from raw RNG bits.
    pub trait Arbitrary {
        /// Draw one arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! int_arbitrary {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for crate::sample::Index {
        fn arbitrary(rng: &mut TestRng) -> crate::sample::Index {
            crate::sample::Index(rng.next_u64() as usize)
        }
    }

    /// Strategy for any value of `T` (upstream proptest's `any`).
    pub fn any<T: Arbitrary>() -> crate::strategy::Any<T> {
        crate::strategy::any_strategy::<T>()
    }
}

/// Collection strategies: `vec` and `hash_set`.
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::collections::HashSet;

    /// An inclusive size bound for collection strategies, converted
    /// from `usize` (exact), `Range<usize>` or `RangeInclusive<usize>`.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl SizeRange {
        fn draw(&self, rng: &mut TestRng) -> usize {
            let span = (self.hi - self.lo) as u128 + 1;
            self.lo + rng.below(span) as usize
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { lo: n, hi: n }
        }
    }
    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty size range");
            SizeRange { lo: r.start, hi: r.end - 1 }
        }
    }
    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> SizeRange {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange { lo: *r.start(), hi: *r.end() }
        }
    }

    /// Strategy generating a `Vec` of values from an element strategy.
    pub struct VecStrategy<S>(S, SizeRange);
    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.1.draw(rng);
            (0..len).map(|_| self.0.generate(rng)).collect()
        }
    }

    /// A `Vec` whose length is drawn from `size` and whose elements
    /// come from `s`.
    pub fn vec<S: Strategy>(s: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy(s, size.into())
    }

    /// Strategy generating a `HashSet` of values from an element
    /// strategy.
    pub struct HashSetStrategy<S>(S, SizeRange);
    impl<S: Strategy> Strategy for HashSetStrategy<S>
    where
        S::Value: std::hash::Hash + Eq,
    {
        type Value = HashSet<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> HashSet<S::Value> {
            let target = self.1.draw(rng);
            let mut out = HashSet::with_capacity(target);
            // A narrow element domain may not hold `target` distinct
            // values; cap the attempts and accept a smaller set rather
            // than spinning (upstream proptest rejects the case).
            let mut attempts = 8 * target + 8;
            while out.len() < target && attempts > 0 {
                out.insert(self.0.generate(rng));
                attempts -= 1;
            }
            out
        }
    }

    /// A `HashSet` with up to `size` distinct elements drawn from `s`.
    pub fn hash_set<S: Strategy>(s: S, size: impl Into<SizeRange>) -> HashSetStrategy<S>
    where
        S::Value: std::hash::Hash + Eq,
    {
        HashSetStrategy(s, size.into())
    }
}

/// Auxiliary sample types (`prop::sample::Index`).
pub mod sample {
    /// A position that maps uniformly into any slice length via
    /// [`Index::index`].
    #[derive(Debug, Clone, Copy, Default)]
    pub struct Index(pub usize);

    impl Index {
        /// This index reduced into `[0, len)`; yields 0 for empty
        /// slices.
        pub fn index(&self, len: usize) -> usize {
            self.0 % len.max(1)
        }
    }
}

/// Upstream-compatible `prop::` namespace (`prop::collection`,
/// `prop::sample`).
pub mod prop {
    pub use crate::collection;
    pub use crate::sample;
}

/// The glob-import surface test files use: `use proptest::prelude::*`.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::prop;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{Config as ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Define property tests. Each `fn name(arg in strategy, ..) { body }`
/// becomes a test function running `cases` deterministic cases (64 by
/// default, or `#![proptest_config(ProptestConfig { cases: N })]`).
/// A failing case panics with the case number, the per-test base seed,
/// and the `prop_assert!` message.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = ($crate::test_runner::Config::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = ($cfg:expr); $( $(#[$meta:meta])* fn $name:ident ( $($arg:pat in $strat:expr),* $(,)? ) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __cfg: $crate::test_runner::Config = $cfg;
                let __cases = __cfg.cases.max(1);
                let __seed =
                    $crate::test_runner::fnv1a(concat!(module_path!(), "::", stringify!($name)));
                for __case in 0..__cases {
                    let mut __rng = $crate::test_runner::TestRng::from_seed(
                        __seed ^ u64::from(__case).wrapping_mul(0x9E37_79B9_7F4A_7C15),
                    );
                    let __run = |__rng: &mut $crate::test_runner::TestRng|
                        -> ::core::result::Result<(), $crate::test_runner::TestCaseError> {
                        $(let $arg = $crate::strategy::Strategy::generate(&($strat), __rng);)*
                        $body
                        ::core::result::Result::Ok(())
                    };
                    if let ::core::result::Result::Err(__e) = __run(&mut __rng) {
                        ::core::panic!(
                            "[proptest] {} failed at case {}/{} (base seed {:#018x}): {}",
                            stringify!($name), __case + 1, __cases, __seed, __e
                        );
                    }
                }
            }
        )*
    };
}

/// Fail the current case unless `cond` holds; the failure message
/// carries file:line, the condition text, and an optional formatted
/// message.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail_msg(
                ::std::format!(
                    "{}:{}: assertion failed: {}",
                    ::core::file!(),
                    ::core::line!(),
                    ::core::stringify!($cond)
                ),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail_msg(
                ::std::format!(
                    "{}:{}: assertion failed: {} — {}",
                    ::core::file!(),
                    ::core::line!(),
                    ::core::stringify!($cond),
                    ::std::format!($($fmt)*)
                ),
            ));
        }
    };
}

/// Fail the current case unless the two expressions are equal,
/// reporting both values.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (__a, __b) = (&$a, &$b);
        if !(__a == __b) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail_msg(
                ::std::format!(
                    "{}:{}: {} == {} failed: left = {:?}, right = {:?}",
                    ::core::file!(),
                    ::core::line!(),
                    ::core::stringify!($a),
                    ::core::stringify!($b),
                    __a,
                    __b
                ),
            ));
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (__a, __b) = (&$a, &$b);
        if !(__a == __b) {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail_msg(
                ::std::format!(
                    "{}:{}: {} == {} failed: left = {:?}, right = {:?} — {}",
                    ::core::file!(),
                    ::core::line!(),
                    ::core::stringify!($a),
                    ::core::stringify!($b),
                    __a,
                    __b,
                    ::std::format!($($fmt)*)
                ),
            ));
        }
    }};
}

/// Fail the current case if the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        let (__a, __b) = (&$a, &$b);
        if __a == __b {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail_msg(
                ::std::format!(
                    "{}:{}: {} != {} failed: both = {:?}",
                    ::core::file!(),
                    ::core::line!(),
                    ::core::stringify!($a),
                    ::core::stringify!($b),
                    __a
                ),
            ));
        }
    }};
}

/// Discard the current case (counted as a pass) when `cond` is false.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::core::result::Result::Ok(());
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    #[test]
    fn rng_is_deterministic() {
        let mut a = TestRng::from_seed(42);
        let mut b = TestRng::from_seed(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = TestRng::from_seed(7);
        for _ in 0..1000 {
            let v = (10u32..20).generate(&mut rng);
            assert!((10..20).contains(&v));
            let w = (8u8..=32).generate(&mut rng);
            assert!((8..=32).contains(&w));
            let s = (-5i32..=5).generate(&mut rng);
            assert!((-5..=5).contains(&s));
        }
    }

    #[test]
    fn full_width_inclusive_range_is_total() {
        let mut rng = TestRng::from_seed(3);
        // span = 2^64: must not overflow or panic.
        let _ = (0u64..=u64::MAX).generate(&mut rng);
    }

    #[test]
    fn collections_respect_size() {
        let mut rng = TestRng::from_seed(11);
        for _ in 0..200 {
            let v = prop::collection::vec(any::<u8>(), 3..6).generate(&mut rng);
            assert!((3..6).contains(&v.len()));
            let exact = prop::collection::vec(any::<u32>(), 50).generate(&mut rng);
            assert_eq!(exact.len(), 50);
            let s = prop::collection::hash_set(0u32..1000, 0..10).generate(&mut rng);
            assert!(s.len() < 10);
        }
    }

    #[test]
    fn combinators_compose() {
        let mut rng = TestRng::from_seed(13);
        let even = (0u32..100).prop_map(|x| x * 2);
        let filtered = (0u32..100).prop_filter("odd only", |x| x % 2 == 1);
        let dependent = (1usize..5).prop_flat_map(|n| prop::collection::vec(any::<u8>(), n));
        for _ in 0..200 {
            assert_eq!(even.generate(&mut rng) % 2, 0);
            assert_eq!(filtered.generate(&mut rng) % 2, 1);
            let v = dependent.generate(&mut rng);
            assert!((1..5).contains(&v.len()));
        }
    }

    proptest! {
        /// The macro path itself: bodies run, assertions hold, tuples
        /// and Just work.
        #[test]
        fn macro_runs_real_cases(
            x in 0u16..100,
            (a, b) in (0u8..10, 0u8..10),
            k in Just(7usize),
            idx in any::<prop::sample::Index>(),
        ) {
            prop_assert!(x < 100);
            prop_assert!(a < 10 && b < 10);
            prop_assert_eq!(k, 7);
            prop_assert!(idx.index(5) < 5);
            prop_assert_ne!(x as usize + 1, 0);
        }
    }

    #[test]
    fn failing_case_reports_seed_and_case() {
        // A proptest body that must fail on some case; verify the
        // harness actually executes bodies (the pre-vendored stub
        // silently skipped them) and panics with a diagnostic.
        let result = std::panic::catch_unwind(|| {
            proptest! {
                #[allow(unused)]
                fn always_fails(x in 0u8..10) {
                    prop_assert!(x > 200, "x was {}", x);
                }
            }
            always_fails();
        });
        let msg = match result {
            Ok(()) => panic!("harness failed to execute property body"),
            Err(e) => *e.downcast::<String>().expect("panic message"),
        };
        assert!(msg.contains("always_fails"), "missing test name: {msg}");
        assert!(msg.contains("base seed"), "missing seed: {msg}");
    }
}
