//! `ah-wal` — durable write-ahead event store for the aggressive-scanner
//! pipeline.
//!
//! The simulation pipeline is deterministic, but a run is only
//! re-creatable while the code and seeds that produced it exist. This
//! crate gives runs a durable form: every delivered packet (and,
//! optionally, derived events and flows) is appended to an on-disk log
//! that survives crashes, can be **resumed** mid-simulation, and can be
//! **replayed** through the detectors without re-simulating — producing
//! bitwise-identical daily aggressive-scanner lists.
//!
//! Layering, bottom up:
//!
//! * [`crc`] — hand-rolled CRC32 (the workspace has no third-party
//!   dependencies).
//! * [`frame`] — length-prefixed, CRC-framed log entries with monotonic
//!   sequence numbers.
//! * [`record`] — the domain payloads: run meta, packets, darknet
//!   events, flow records, and the end-of-run seal.
//! * [`segment`] — on-disk segment files plus the advisory, atomically
//!   rewritten segment index.
//! * [`writer`] — batched group-commit appends, segment rotation, the
//!   durable watermark, and a deliberate crash hook for fault drills.
//! * [`mod@recover`] — the recovery scanner: validates every frame,
//!   truncates at the first torn/corrupt one, drops unreachable
//!   segments, rebuilds the index, and streams the surviving records to
//!   the caller.
//!
//! Durability contract, in one paragraph: a frame is durable once the
//! group commit containing it returns ([`writer::WalWriter::commit`]
//! writes + `fdatasync`s the batch). Recovery never invents data and
//! never keeps a suffix after damage: the recovered log is exactly the
//! durable prefix, and recovering twice is a no-op. The pipeline-side
//! wiring (`ah-pipeline`'s `wal` runners) builds suspend/resume and
//! replay on top of those two guarantees.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod crc;
pub mod frame;
pub mod record;
pub mod recover;
pub mod segment;
pub mod writer;

pub use record::{RunMeta, RunSeal, WalRecord, FNV_OFFSET};
pub use recover::{peek_meta, recover, RecoveredLog, RecoveryStats};
pub use segment::segment_paths;
pub use writer::{WalWriter, WalWriterConfig};
