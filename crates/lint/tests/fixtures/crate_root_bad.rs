// Fixture: a crate root missing both posture attributes. //~ doc-header, unsafe-forbid

pub fn item() {}
