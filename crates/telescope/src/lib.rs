//! Network-telescope substrate (ORION-style).
//!
//! A telescope passively records traffic destined to a *dark* (unused but
//! routed) address block. This crate provides:
//!
//! * [`capture`] — the dark-space filter and scanning-packet classifier,
//!   with running capture statistics (Table 1 of the paper);
//! * [`event`] — *darknet events* ("logical scans"): per
//!   (source IP, destination port, traffic type) aggregation with an idle
//!   timeout, the unit over which all three aggressive-hitter definitions
//!   are computed;
//! * [`timeout`] — the Moore et al. flow-timeout derivation the paper uses
//!   to pick its ~10-minute event expiration;
//! * [`daily`] — per-day rollups of darknet activity;
//! * [`dstset`] — a memory-adaptive exact distinct-counter used for
//!   per-event destination dispersion;
//! * [`hll`] — a HyperLogLog sketch, the constant-memory alternative
//!   for much larger dark spaces (ablated in the bench suite).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod capture;
pub mod daily;
pub mod dstset;
pub mod event;
pub mod hll;
pub mod timeout;

pub use capture::{CaptureStats, DarkSpace};
pub use event::{AggregatorStats, DarknetEvent, EventAggregator, EventKey};
pub use timeout::TimeoutModel;
