//! Regenerates every table and figure of the paper's evaluation.
//!
//! ```text
//! experiment <id>... [--days-scale F] [--seed N] [--out DIR] [--threads N]
//!                    [--metrics PATH] [--metrics-interval N]
//!                    [--trace-out PATH] [--trace-sample N]
//!                    [--mem-report] [--mem-interval N]
//!   ids: table1..table9  fig1..fig6  whatif  health  all
//!
//! `--threads N` (N >= 2) routes the single-pass simulation runs through
//! the sharded parallel engine; output is bitwise identical to serial.
//!
//! `--metrics PATH` turns on pipeline telemetry and writes snapshot files
//! `PATH.jsonl` (one snapshot per line) and `PATH.prom` (Prometheus text
//! exposition, latest snapshot). `--metrics-interval N` exports every N
//! delivered packets (default 100000). Telemetry is observation-only:
//! all tables and figures are bitwise identical with it on or off.
//!
//! `--mem-report` turns on the tagged allocator's per-subsystem
//! accounting and prints a live/peak/cumulative memory table (plus the
//! process peak RSS) after the last experiment. `--mem-interval N`
//! refreshes the `ah_mem_*` gauges every N delivered packets (default
//! 100000). Accounting is observation-only too.
//! ```
//!
//! Each experiment prints a paper-mirroring text table and writes CSV
//! series under the output directory (default `out/`). Simulation runs
//! are shared across experiments in one invocation.

use aggressive_scanners::core::characterize::{
    origin_table, port_overlap, protocol_mix_darknet, protocol_mix_flow, top_ports, trends,
    zipf_concentration,
};
use aggressive_scanners::core::defs::Definition;
use aggressive_scanners::core::impact::{flow_impact, presence};
use aggressive_scanners::core::lists::{intersect, intersect3, jaccard, level_counts};
use aggressive_scanners::core::report::{fmt_count, fmt_pct, write_csv, TextTable};
use aggressive_scanners::core::validate::{
    acked_validation, daily_gn_overlap, gn_breakdown, gn_tag_table,
};
use aggressive_scanners::pipeline::{RunOutput, Telemetry};
use ah_bench::{Runs, Spans};
use std::collections::HashSet;
use std::path::PathBuf;

const WEEKDAYS: [&str; 7] = ["Mon", "Tue", "Wed", "Thu", "Fri", "Sat", "Sun"];

fn weekday(day0_weekday: u8, day: u64) -> &'static str {
    WEEKDAYS[((u64::from(day0_weekday) + day) % 7) as usize]
}

struct Ctx {
    runs: Runs,
    out: PathBuf,
    seed: u64,
}

/// Exit with a diagnostic instead of panicking when a run output lacks a
/// piece an experiment needs (a wiring bug, not a user error).
fn require<T>(opt: Option<T>, what: &str, experiment: &str) -> T {
    opt.unwrap_or_else(|| {
        eprintln!("error: {experiment}: run output is missing {what}");
        std::process::exit(1);
    })
}

/// Parse the value following a flag, exiting with a usage error when it
/// is absent or malformed.
fn parse_flag<T: std::str::FromStr>(args: &[String], i: usize, flag: &str, kind: &str) -> T {
    let Some(v) = args.get(i) else {
        eprintln!("error: {flag} requires a value ({kind})");
        std::process::exit(2);
    };
    v.parse().unwrap_or_else(|_| {
        eprintln!("error: {flag}: {v:?} is not a valid {kind}");
        std::process::exit(2);
    })
}

impl Ctx {
    fn csv(&self, name: &str, headers: &[&str], rows: &[Vec<String>]) {
        let path = self.out.join(name);
        if let Err(e) = write_csv(&path, headers, rows) {
            eprintln!("warning: could not write {}: {e}", path.display());
        } else {
            eprintln!("[csv] {}", path.display());
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut ids: Vec<String> = Vec::new();
    let mut scale = 1.0f64;
    let mut seed = 1u64;
    let mut threads = 0usize;
    let mut out = PathBuf::from("out");
    let mut metrics: Option<PathBuf> = None;
    let mut metrics_interval = 100_000u64;
    let mut trace_out: Option<PathBuf> = None;
    let mut trace_sample = 64u64;
    let mut mem_report = false;
    let mut mem_interval = 100_000u64;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--days-scale" => {
                i += 1;
                scale = parse_flag(&args, i, "--days-scale", "float");
            }
            "--seed" => {
                i += 1;
                seed = parse_flag(&args, i, "--seed", "integer");
            }
            "--threads" => {
                i += 1;
                threads = parse_flag(&args, i, "--threads", "integer");
            }
            "--out" => {
                i += 1;
                let Some(dir) = args.get(i) else {
                    eprintln!("error: --out requires a directory argument");
                    std::process::exit(2);
                };
                out = PathBuf::from(dir);
            }
            "--metrics" => {
                i += 1;
                let Some(base) = args.get(i) else {
                    eprintln!("error: --metrics requires a file-base argument (e.g. out/metrics)");
                    std::process::exit(2);
                };
                metrics = Some(PathBuf::from(base));
            }
            "--metrics-interval" => {
                i += 1;
                metrics_interval = parse_flag(&args, i, "--metrics-interval", "integer");
            }
            "--trace-out" => {
                i += 1;
                let Some(path) = args.get(i) else {
                    eprintln!("error: --trace-out requires a file path (e.g. out/trace.json)");
                    std::process::exit(2);
                };
                trace_out = Some(PathBuf::from(path));
            }
            "--trace-sample" => {
                i += 1;
                trace_sample = parse_flag(&args, i, "--trace-sample", "integer");
            }
            "--mem-report" => mem_report = true,
            "--mem-interval" => {
                i += 1;
                mem_interval = parse_flag(&args, i, "--mem-interval", "integer");
            }
            id => ids.push(id.to_string()),
        }
        i += 1;
    }
    if ids.is_empty() {
        eprintln!(
            "usage: experiment <table1..table9|fig1..fig6|whatif|health|all>... [--days-scale F] [--seed N] [--out DIR] [--threads N] [--metrics PATH] [--metrics-interval N] [--trace-out PATH] [--trace-sample N] [--mem-report] [--mem-interval N]"
        );
        std::process::exit(2);
    }
    for (flag, value) in [
        ("--metrics-interval", metrics_interval),
        ("--trace-sample", trace_sample),
        ("--mem-interval", mem_interval),
    ] {
        if value == 0 {
            eprintln!("error: {flag} must be at least 1 (0 would disable the stream it paces)");
            std::process::exit(2);
        }
    }
    if ids.iter().any(|s| s == "all") {
        ids = (1..=9)
            .map(|n| format!("table{n}"))
            .chain((1..=6).map(|n| format!("fig{n}")))
            .chain(["whatif".to_string(), "health".to_string()])
            .collect();
    }
    let spans = Spans::default().scaled(scale);
    let mut runs = Runs::new(spans, seed).with_threads(threads);
    let mut tel = if let Some(base) = metrics {
        if let Some(dir) = base.parent().filter(|d| !d.as_os_str().is_empty()) {
            std::fs::create_dir_all(dir).ok();
        }
        let rec = ah_obs::Recorder::new();
        let exporter = ah_obs::Exporter::new(rec.clone(), base, metrics_interval);
        eprintln!(
            "[metrics] recording to {} / {} every {metrics_interval} packets",
            exporter.jsonl_path().display(),
            exporter.prom_path().display()
        );
        Telemetry::with_exporter(rec, exporter)
    } else {
        Telemetry::disabled()
    };
    if trace_out.is_some() {
        tel.tracer = ah_trace::Tracer::new(ah_trace::TraceConfig {
            seed,
            sample_one_in: trace_sample,
            ..ah_trace::TraceConfig::default()
        });
        eprintln!("[trace] spans on, following ~1-in-{trace_sample} source journeys");
    }
    if mem_report {
        ah_mem::set_accounting(true);
        tel = tel.with_mem(mem_interval);
        eprintln!("[mem] per-subsystem accounting on, refresh every {mem_interval} packets");
    }
    if tel.exporter.is_some() || tel.tracer.is_enabled() || tel.mem.is_some() {
        runs = runs.with_telemetry(tel);
    }
    let mut ctx = Ctx { runs, out, seed };
    std::fs::create_dir_all(&ctx.out).ok();
    for id in &ids {
        let t0 = std::time::Instant::now();
        match id.as_str() {
            "table1" => table1(&mut ctx),
            "table2" => table2(&mut ctx),
            "table3" => table3(&mut ctx),
            "table4" => table4(&mut ctx),
            "table5" => table5(&mut ctx),
            "table6" => table6(&mut ctx),
            "table7" => table7(&mut ctx),
            "table8" => table8(&mut ctx),
            "table9" => table9(&mut ctx),
            "fig1" => fig1(&mut ctx),
            "fig2" => fig2(&mut ctx),
            "fig3" => fig3(&mut ctx),
            "fig4" => fig4(&mut ctx),
            "fig5" => fig5(&mut ctx),
            "fig6" => fig6(&mut ctx),
            "whatif" => whatif(&mut ctx),
            "health" => health(&mut ctx),
            other => {
                eprintln!("unknown experiment {other:?}");
                std::process::exit(2);
            }
        }
        eprintln!("[done] {id} in {:.1}s\n", t0.elapsed().as_secs_f64());
    }
    if let Some(ex) = ctx.runs.telemetry().exporter.as_ref() {
        eprintln!(
            "[metrics] {} snapshots -> {} ({} io errors)",
            ex.snapshots_written(),
            ex.jsonl_path().display(),
            ex.io_errors()
        );
    }
    if let Some(path) = trace_out {
        if let Some(dir) = path.parent().filter(|d| !d.as_os_str().is_empty()) {
            std::fs::create_dir_all(dir).ok();
        }
        let snap = ctx.runs.telemetry().tracer.snapshot();
        match ah_trace::export::write_artifacts(&snap, &path) {
            Ok(folded) => {
                eprintln!("[trace] chrome trace -> {}", path.display());
                eprintln!("[trace] folded stacks -> {}", folded.display());
                if snap.dropped > 0 {
                    eprintln!("[trace] {} events dropped (buffers full)", snap.dropped);
                }
            }
            Err(e) => {
                eprintln!("error: writing trace artifacts: {e}");
                std::process::exit(1);
            }
        }
    }
    if mem_report {
        // Cached run outputs are still alive here, so this is a
        // whole-process snapshot, not a drained-run leak check (the
        // scanner binary's `--mem-report` does that).
        eprint!("{}", ah_mem::report().render());
    }
}

/// Table 1: description of datasets.
fn table1(ctx: &mut Ctx) {
    let mut t = TextTable::new(
        "Table 1: Description of Datasets",
        &["", "Darknet-1", "Darknet-2", "Flows-1+2"],
    );
    let (d1_pkts, d1_src, d1_dst, d1_ev);
    {
        let d1 = ctx.runs.darknet1();
        d1_pkts = d1.capture.total_packets;
        d1_src = d1.capture.unique_sources;
        d1_dst = d1.capture.unique_dsts;
        d1_ev = d1.report.records().len() as u64;
    }
    let (d2_pkts, d2_src, d2_dst, d2_ev);
    {
        let d2 = ctx.runs.darknet2();
        d2_pkts = d2.capture.total_packets;
        d2_src = d2.capture.unique_sources;
        d2_dst = d2.capture.unique_dsts;
        d2_ev = d2.report.records().len() as u64;
    }
    let (f_pkts, f_src, f_dst);
    {
        let f = ctx.runs.flows();
        let ds = require(f.merit_flows.as_ref(), "merit flows", "table1");
        f_pkts = ds.router_days.values().map(|c| c.packets).sum::<u64>();
        let srcs: HashSet<_> = ds.records.iter().map(|r| r.key.src).collect();
        let dsts: HashSet<_> = ds.records.iter().map(|r| r.key.dst).collect();
        f_src = srcs.len() as u64;
        f_dst = dsts.len() as u64;
    }
    t.row(&["Packets", &fmt_count(d1_pkts), &fmt_count(d2_pkts), &fmt_count(f_pkts)]);
    t.row(&["Source IPs", &fmt_count(d1_src), &fmt_count(d2_src), &fmt_count(f_src)]);
    t.row(&["Dest. IPs", &fmt_count(d1_dst), &fmt_count(d2_dst), &fmt_count(f_dst)]);
    t.row(&["Total Events", &fmt_count(d1_ev), &fmt_count(d2_ev), "-"]);
    println!("{}", t.render());
    ctx.csv(
        "table1.csv",
        &["metric", "darknet1", "darknet2", "flows"],
        &[
            vec!["packets".into(), d1_pkts.to_string(), d2_pkts.to_string(), f_pkts.to_string()],
            vec!["source_ips".into(), d1_src.to_string(), d2_src.to_string(), f_src.to_string()],
            vec!["dest_ips".into(), d1_dst.to_string(), d2_dst.to_string(), f_dst.to_string()],
            vec!["events".into(), d1_ev.to_string(), d2_ev.to_string(), String::new()],
        ],
    );
}

/// Table 2: AH (definition 1) impact at the three Merit routers, per day.
fn table2(ctx: &mut Ctx) {
    let flows = ctx.runs.flows();
    let ds = require(flows.merit_flows.as_ref(), "merit flows", "table2");
    let rows = flow_impact(ds, |day| {
        flows.report.active_hitters(Definition::AddressDispersion, day).cloned()
    });
    let mut t = TextTable::new(
        "Table 2: Network impact of active AH (def. #1) at the top-3 Merit routers",
        &["Date", "Router-1 pkts/pcnt", "Router-2 pkts/pcnt", "Router-3 pkts/pcnt"],
    );
    let days: Vec<u64> = {
        let mut d: Vec<u64> = rows.iter().map(|r| r.day).collect();
        d.sort_unstable();
        d.dedup();
        d.retain(|&d| d >= 1); // day 0 is the warm-up
        d
    };
    let mut csv = Vec::new();
    let mut sums = [[0u64; 2]; 3];
    for &day in &days {
        let mut cells = vec![format!("day {day} ({})", weekday(4, day))];
        for router in 1..=3u8 {
            if let Some(r) = rows.iter().find(|r| r.day == day && r.router == router) {
                cells.push(format!("{} ({})", fmt_count(r.ah_packets), fmt_pct(r.pct())));
                sums[(router - 1) as usize][0] += r.ah_packets;
                sums[(router - 1) as usize][1] += r.total_packets;
                csv.push(vec![
                    day.to_string(),
                    router.to_string(),
                    r.ah_packets.to_string(),
                    r.total_packets.to_string(),
                    format!("{:.4}", r.pct()),
                ]);
            } else {
                cells.push("-".to_string());
            }
        }
        t.row(&cells);
    }
    let mut avg = vec!["Avg".to_string()];
    for s in sums {
        let pct = if s[1] == 0 { 0.0 } else { 100.0 * s[0] as f64 / s[1] as f64 };
        avg.push(format!("{} ({})", fmt_count(s[0] / days.len().max(1) as u64), fmt_pct(pct)));
    }
    t.row(&avg);
    println!("{}", t.render());
    ctx.csv("table2.csv", &["day", "router", "ah_packets", "total_packets", "pct"], &csv);
}

/// Table 3: protocol mix in darknet vs flow data, per definition.
fn table3(ctx: &mut Ctx) {
    let flows = ctx.runs.flows();
    let ds = require(flows.merit_flows.as_ref(), "merit flows", "table3");
    let day = flows.days - 1; // the "2022-10-01" analog
    let names = ["TCP-SYN", "UDP", "ICMP Ech Rqst"];
    let mut t = TextTable::new(
        &format!("Table 3: Protocols in Darknet (D) and Flow (F), day {day}, router-1"),
        &["Protocol", "Def #1 D/F", "Def #2 D/F", "Def #3 D/F"],
    );
    let mut mixes = Vec::new();
    for def in Definition::ALL {
        let d = protocol_mix_darknet(&flows.report, def, Some(day..day + 1));
        let empty = HashSet::new();
        let hitters = flows.report.active_hitters(def, day).unwrap_or(&empty);
        let r1_records: Vec<_> =
            ds.records.iter().filter(|r| r.router == 1 && r.day() == day).cloned().collect();
        let f = protocol_mix_flow(&r1_records, hitters);
        mixes.push((d, f));
    }
    let mut csv = Vec::new();
    for (i, name) in names.iter().enumerate() {
        let row: Vec<String> = std::iter::once(name.to_string())
            .chain(mixes.iter().map(|(d, f)| format!("{:.1} / {:.1}", d[i], f[i])))
            .collect();
        csv.push(row.clone());
        t.row(&row);
    }
    println!("{}", t.render());
    ctx.csv("table3.csv", &["protocol", "def1_d_f", "def2_d_f", "def3_d_f"], &csv);
}

/// Table 4: impact of ACKed scanners per router and definition.
fn table4(ctx: &mut Ctx) {
    let flows = ctx.runs.flows();
    let ds = require(flows.merit_flows.as_ref(), "merit flows", "table4");
    let world = &flows.world;
    let acked = world.acked_list(8);
    let rdns = world.rdns(64);
    let day = flows.days - 1;
    let mut t = TextTable::new(
        &format!("Table 4: Network impact of ACKed scanners (day {day})"),
        &["", "Router-1", "Router-2", "Router-3"],
    );
    let mut csv = Vec::new();
    for def in Definition::ALL {
        let v = acked_validation(&flows.report, def, &acked, &rdns);
        let rows = flow_impact(ds, |_| Some(v.ips.clone()));
        let mut cells = vec![format!("Definition {}", def.short())];
        for router in 1..=3u8 {
            if let Some(r) = rows.iter().find(|r| r.day == day && r.router == router) {
                cells.push(format!("{} ({})", fmt_count(r.ah_packets), fmt_pct(r.pct())));
                csv.push(vec![
                    def.short().into(),
                    router.to_string(),
                    r.ah_packets.to_string(),
                    format!("{:.4}", r.pct()),
                ]);
            } else {
                cells.push("-".into());
            }
        }
        t.row(&cells);
    }
    println!("{}", t.render());
    ctx.csv("table4.csv", &["definition", "router", "acked_packets", "pct"], &csv);
}

fn origins_for(run: &RunOutput, label: &str) -> (TextTable, Vec<Vec<String>>) {
    let world = &run.world;
    let db = world.asn_db();
    let acked = world.acked_list(8);
    let rdns = world.rdns(64);
    let (rows, totals) =
        origin_table(&run.report, Definition::AddressDispersion, &db, &acked, &rdns, 10);
    let mut t = TextTable::new(
        &format!("Table 5 ({label}): origins of def. #1 aggressive scanners"),
        &["AS Type", "unique /32s (ACKed)", "unique /24s (ACKed)", "Pkts"],
    );
    let mut csv = Vec::new();
    for r in &rows {
        t.row(&[
            r.label.clone(),
            format!("{} ({})", r.unique_ips, r.acked_ips),
            format!("{} ({})", r.unique_24s, r.acked_24s),
            fmt_count(r.packets),
        ]);
        csv.push(vec![
            r.label.clone(),
            r.org.clone(),
            r.unique_ips.to_string(),
            r.unique_24s.to_string(),
            r.packets.to_string(),
            r.acked_ips.to_string(),
        ]);
    }
    t.row(&[
        "Total (top-10 share)".to_string(),
        format!("{} ({:.0}%)", totals.top_ips, 100.0 * totals.top_ips_share),
        format!("{} ({:.0}%)", totals.top_24s, 100.0 * totals.top_24s_share),
        format!("{} ({:.0}%)", fmt_count(totals.top_packets), 100.0 * totals.top_packets_share),
    ]);
    (t, csv)
}

/// Table 5: origins for both years.
fn table5(ctx: &mut Ctx) {
    let (t1, csv1) = origins_for(ctx.runs.darknet1(), "Darknet-1, 2021");
    println!("{}", t1.render());
    let (t2, csv2) = origins_for(ctx.runs.darknet2(), "Darknet-2, 2022");
    println!("{}", t2.render());
    let headers = ["label", "org", "unique_ips", "unique_24s", "packets", "acked_ips"];
    ctx.csv("table5_darknet1.csv", &headers, &csv1);
    ctx.csv("table5_darknet2.csv", &headers, &csv2);
}

/// Table 6: validation against the Acknowledged-Scanners list.
fn table6(ctx: &mut Ctx) {
    let mut t = TextTable::new(
        "Table 6: Validation via ACKed-scanners lists",
        &["", "D1 2021", "D1 2022", "D2 2021", "D2 2022", "D3 2021", "D3 2022"],
    );
    // (year, def) -> validation.
    let mut cells: Vec<Vec<String>> = vec![Vec::new(); 6];
    let mut csv = Vec::new();
    for (yi, which) in [0usize, 1].into_iter().enumerate() {
        let run: &RunOutput = if which == 0 { ctx.runs.darknet1() } else { ctx.runs.darknet2() };
        let acked = run.world.acked_list(8);
        let rdns = run.world.rdns(64);
        for def in Definition::ALL {
            let v = acked_validation(&run.report, def, &acked, &rdns);
            let col = def.index() * 2 + yi;
            cells[col] = vec![
                v.ip_matches.to_string(),
                v.domain_matches.to_string(),
                v.total_ips.to_string(),
                fmt_count(v.packets),
                fmt_pct(v.packets_pct_of_ah),
                v.orgs.to_string(),
            ];
            csv.push(vec![
                if yi == 0 { "2021" } else { "2022" }.into(),
                def.short().into(),
                v.ip_matches.to_string(),
                v.domain_matches.to_string(),
                v.total_ips.to_string(),
                v.packets.to_string(),
                format!("{:.2}", v.packets_pct_of_ah),
                v.orgs.to_string(),
            ]);
        }
    }
    let labels =
        ["IP match", "Domain matches", "Total IPs", "Packets", "Packets (% all AH)", "Total Orgs"];
    for (i, label) in labels.iter().enumerate() {
        let mut row = vec![label.to_string()];
        for col in [0usize, 1, 2, 3, 4, 5] {
            // column order: D1 2021, D1 2022, D2 2021, D2 2022, D3 2021, D3 2022
            row.push(cells[col].get(i).cloned().unwrap_or_default());
        }
        t.row(&row);
    }
    println!("{}", t.render());
    ctx.csv(
        "table6.csv",
        &["year", "def", "ip_match", "domain_match", "total_ips", "packets", "pct_of_ah", "orgs"],
        &csv,
    );
}

/// Table 7: populations and intersections across definitions.
fn table7(ctx: &mut Ctx) {
    let mut csv = Vec::new();
    for which in [0, 1] {
        let run: &RunOutput = if which == 0 { ctx.runs.darknet1() } else { ctx.runs.darknet2() };
        let label = if which == 0 { "Darknet-1" } else { "Darknet-2" };
        let db = run.world.asn_db();
        let d1 = run.report.hitters(Definition::AddressDispersion);
        let d2 = run.report.hitters(Definition::PacketVolume);
        let d3 = run.report.hitters(Definition::DistinctPorts);
        let sets: Vec<(&str, std::collections::HashSet<_>)> = vec![
            ("D1", d1.clone()),
            ("D2", d2.clone()),
            ("D3", d3.clone()),
            ("D1∩D2", intersect(d1, d2)),
            ("D2∩D3", intersect(d2, d3)),
            ("D1∩D3", intersect(d1, d3)),
            ("D1∩D2∩D3", intersect3(d1, d2, d3)),
        ];
        let mut t = TextTable::new(
            &format!("Table 7 ({label}): aggressive scanners across all definitions"),
            &["", "D1", "D2", "D3", "D1∩D2", "D2∩D3", "D1∩D3", "D1∩D2∩D3"],
        );
        let counts: Vec<_> = sets.iter().map(|(_, s)| level_counts(s, &db)).collect();
        let mut push =
            |name: &str, f: &dyn Fn(&aggressive_scanners::core::lists::LevelCounts) -> u64| {
                let mut row = vec![name.to_string()];
                row.extend(counts.iter().map(|c| f(c).to_string()));
                t.row(&row);
            };
        push("IP", &|c| c.ips);
        push("ASN", &|c| c.asns);
        push("Org", &|c| c.orgs);
        push("Country", &|c| c.countries);
        println!("{}", t.render());
        println!("Jaccard(D1, D2) = {:.2}   (paper: ≈0.8)\n", jaccard(d1, d2));
        for (name, s) in &sets {
            let c = level_counts(s, &db);
            csv.push(vec![
                label.into(),
                name.to_string(),
                c.ips.to_string(),
                c.asns.to_string(),
                c.orgs.to_string(),
                c.countries.to_string(),
            ]);
        }
    }
    ctx.csv("table7.csv", &["dataset", "set", "ips", "asns", "orgs", "countries"], &csv);
}

/// Table 8: hitter presence per router.
fn table8(ctx: &mut Ctx) {
    let flows = ctx.runs.flows();
    let ds = require(flows.merit_flows.as_ref(), "merit flows", "table8");
    let mut t = TextTable::new(
        "Table 8: active AH seen at each router (percent of population)",
        &["Day", "Def", "# AH", "Router-1", "Router-2", "Router-3"],
    );
    let mut csv = Vec::new();
    for def in Definition::ALL {
        let rows = presence(ds, |day| flows.report.active_hitters(def, day).cloned());
        for row in rows.into_iter().filter(|r| r.day >= 1) {
            let mut cells = vec![
                format!("day {} ({})", row.day, weekday(4, row.day)),
                def.short().to_string(),
                row.population.to_string(),
            ];
            for (_, frac) in &row.seen_fraction {
                cells.push(format!("{:.1}%", 100.0 * frac));
            }
            csv.push(cells.clone());
            t.row(&cells);
        }
    }
    println!("{}", t.render());
    ctx.csv("table8.csv", &["day", "def", "population", "r1", "r2", "r3"], &csv);
}

/// Table 9: GreyNoise tags of non-ACKed hitters.
fn table9(ctx: &mut Ctx) {
    let gn_run = ctx.runs.gn();
    let entries = require(gn_run.gn_entries.as_ref(), "GreyNoise entries", "table9");
    let acked = gn_run.world.acked_list(8);
    let rdns = gn_run.world.rdns(64);
    let v = acked_validation(&gn_run.report, Definition::AddressDispersion, &acked, &rdns);
    let hitters = gn_run.report.hitters(Definition::AddressDispersion);
    let rows = gn_tag_table(hitters, entries, &v.ips, 20);
    let mut t = TextTable::new(
        "Table 9: GreyNoise tags for non-ACKed AH",
        &["Rank", "GreyNoise Tag", "IP Count"],
    );
    let mut csv = Vec::new();
    for (i, (tag, n)) in rows.iter().enumerate() {
        t.row(&[format!("#{}", i + 1), tag.clone(), n.to_string()]);
        csv.push(vec![(i + 1).to_string(), tag.clone(), n.to_string()]);
    }
    println!("{}", t.render());
    ctx.csv("table9.csv", &["rank", "tag", "ips"], &csv);
}

/// Figure 1: cumulative/instantaneous impact and rates at both taps.
fn fig1(ctx: &mut Ctx) {
    let tap = ctx.runs.taps();
    let mut t = TextTable::new(
        "Figure 1: packet-tap impact of def. #1 AH (summary)",
        &["Metric", "Merit (router-1 tap)", "CU (campus tap)"],
    );
    let summarize = |s: &aggressive_scanners::core::impact::TapSeries| {
        let cum = s.cumulative_pct();
        let inst = s.instantaneous_pct();
        let max_inst = inst.iter().cloned().fold(0.0f64, f64::max);
        let peak_rate = s.rate_pps().into_iter().max().unwrap_or(0);
        (cum.last().copied().unwrap_or(0.0), max_inst, peak_rate, s.total_packets(), s.ah_packets())
    };
    let m = summarize(&tap.merit_tap);
    let c = summarize(&tap.cu_tap);
    t.row(&["Cumulative AH impact", &fmt_pct(m.0), &fmt_pct(c.0)]);
    t.row(&["Max instantaneous impact", &fmt_pct(m.1), &fmt_pct(c.1)]);
    t.row(&["Peak rate (pps)", &fmt_count(m.2), &fmt_count(c.2)]);
    t.row(&["Total packets", &fmt_count(m.3), &fmt_count(c.3)]);
    t.row(&["AH packets", &fmt_count(m.4), &fmt_count(c.4)]);
    println!("{}", t.render());
    println!("AH list size joined at taps: {}\n", tap.ah_list.len());
    // Full per-minute series for plotting.
    let mut rows = Vec::new();
    let md = tap.merit_tap.downsample(60);
    let cd = tap.cu_tap.downsample(60);
    let mcum = md.cumulative_pct();
    let minst = md.instantaneous_pct();
    let ccum = cd.cumulative_pct();
    let cinst = cd.instantaneous_pct();
    for i in 0..md.bins.len().max(cd.bins.len()) {
        rows.push(vec![
            i.to_string(),
            md.bins.get(i).map_or_else(String::new, |b| b.0.to_string()),
            md.bins.get(i).map_or_else(String::new, |b| b.1.to_string()),
            mcum.get(i).map_or_else(String::new, |v| format!("{v:.4}")),
            minst.get(i).map_or_else(String::new, |v| format!("{v:.4}")),
            cd.bins.get(i).map_or_else(String::new, |b| b.0.to_string()),
            cd.bins.get(i).map_or_else(String::new, |b| b.1.to_string()),
            ccum.get(i).map_or_else(String::new, |v| format!("{v:.4}")),
            cinst.get(i).map_or_else(String::new, |v| format!("{v:.4}")),
        ]);
    }
    ctx.csv(
        "fig1.csv",
        &[
            "minute",
            "merit_pps",
            "merit_ah_pps",
            "merit_cum_pct",
            "merit_inst_pct",
            "cu_pps",
            "cu_ah_pps",
            "cu_cum_pct",
            "cu_inst_pct",
        ],
        &rows,
    );
}

/// Figure 2: per-/24-normalized AH rates.
fn fig2(ctx: &mut Ctx) {
    let tap = ctx.runs.taps();
    let m24 = tap.world.merit_slash24s();
    let c24 = tap.world.cu_slash24s();
    let mrate = tap.merit_tap.ah_rate_per_slash24(m24);
    let crate_ = tap.cu_tap.ah_rate_per_slash24(c24);
    let mean = |v: &[f64]| if v.is_empty() { 0.0 } else { v.iter().sum::<f64>() / v.len() as f64 };
    let mut t = TextTable::new(
        "Figure 2: AH packet rate normalized by /24 count",
        &["Network", "/24s", "mean AH pps per /24", "max AH pps per /24"],
    );
    let mx = |v: &[f64]| v.iter().cloned().fold(0.0f64, f64::max);
    t.row(&[
        "Merit".to_string(),
        m24.to_string(),
        format!("{:.4}", mean(&mrate)),
        format!("{:.3}", mx(&mrate)),
    ]);
    t.row(&[
        "CU".to_string(),
        c24.to_string(),
        format!("{:.4}", mean(&crate_)),
        format!("{:.3}", mx(&crate_)),
    ]);
    println!("{}", t.render());
    if mean(&crate_) > mean(&mrate) {
        println!("CU is more affected per /24 than Merit, as in the paper.\n");
    }
    let rows: Vec<Vec<String>> = mrate
        .chunks(60)
        .zip(crate_.chunks(60))
        .enumerate()
        .map(|(i, (a, b))| {
            vec![i.to_string(), format!("{:.5}", mean(a)), format!("{:.5}", mean(b))]
        })
        .collect();
    ctx.csv("fig2.csv", &["minute", "merit_ah_pps_per_24", "cu_ah_pps_per_24"], &rows);
}

/// Figure 3: temporal trends for definition 1.
fn fig3(ctx: &mut Ctx) {
    let mut csv = Vec::new();
    for which in [0, 1] {
        let run: &RunOutput = if which == 0 { ctx.runs.darknet1() } else { ctx.runs.darknet2() };
        let label = if which == 0 { "Darknet-1" } else { "Darknet-2" };
        let series = trends(&run.report, Definition::AddressDispersion, run.days);
        let (daily, active) = run.report.mean_daily_active(Definition::AddressDispersion);
        let ah_pkts: u64 = series.iter().map(|d| d.ah_packets).sum();
        let all_pkts: u64 = series.iter().map(|d| d.all_packets).sum();
        let avg_srcs =
            series.iter().map(|d| d.all_sources).sum::<u64>() as f64 / series.len().max(1) as f64;
        println!("## Figure 3 ({label})");
        println!("  mean daily AH/day:  {daily:.0}");
        println!("  mean active AH/day: {active:.0}");
        println!("  mean scanning sources/day: {avg_srcs:.0}");
        println!(
            "  AH share of daily-attributed darknet packets: {:.1}%  (paper: >63%)",
            100.0 * ah_pkts as f64 / all_pkts.max(1) as f64
        );
        println!(
            "  AH share of scanning sources: {:.2}%  (paper: ≈0.1%)\n",
            100.0 * daily / avg_srcs.max(1.0)
        );
        for d in &series {
            csv.push(vec![
                label.into(),
                d.day.to_string(),
                d.active_ah.to_string(),
                d.daily_ah.to_string(),
                d.all_sources.to_string(),
                d.ah_packets.to_string(),
                d.all_packets.to_string(),
            ]);
        }
    }
    ctx.csv(
        "fig3.csv",
        &["dataset", "day", "active_ah", "daily_ah", "all_sources", "ah_packets", "all_packets"],
        &csv,
    );
}

/// Figure 4: top-25 targeted ports with tool attribution, both years.
fn fig4(ctx: &mut Ctx) {
    let mut csv = Vec::new();
    for which in [0, 1] {
        let run: &RunOutput = if which == 0 { ctx.runs.darknet1() } else { ctx.runs.darknet2() };
        let label = if which == 0 { "2021" } else { "2022" };
        let rows = top_ports(&run.report, Definition::AddressDispersion, 25);
        let mut t = TextTable::new(
            &format!("Figure 4 ({label}): top-25 ports targeted by def. #1 AH"),
            &["Rank", "Service", "Packets", "ZMap%", "Masscan%", "Other%"],
        );
        for (i, r) in rows.iter().enumerate() {
            let total = r.total().max(1) as f64;
            t.row(&[
                (i + 1).to_string(),
                r.label(),
                fmt_count(r.total()),
                format!("{:.0}%", 100.0 * r.zmap as f64 / total),
                format!("{:.0}%", 100.0 * r.masscan as f64 / total),
                format!("{:.0}%", 100.0 * r.other as f64 / total),
            ]);
            csv.push(vec![
                label.into(),
                (i + 1).to_string(),
                r.label(),
                r.zmap.to_string(),
                r.masscan.to_string(),
                r.other.to_string(),
            ]);
        }
        println!("{}", t.render());
    }
    ctx.csv("fig4.csv", &["year", "rank", "service", "zmap", "masscan", "other"], &csv);
}

/// Figure 5: darknet-vs-flow port overlap scatter.
fn fig5(ctx: &mut Ctx) {
    let flows = ctx.runs.flows();
    let ds = require(flows.merit_flows.as_ref(), "merit flows", "fig5");
    let day = flows.days - 1;
    let mut csv = Vec::new();
    for def in [Definition::AddressDispersion, Definition::PacketVolume] {
        let pairs = port_overlap(&flows.report, def, day, &ds.records, ds.sampling_rate);
        let both = pairs.iter().filter(|(_, d, f)| *d > 0 && *f > 0).count();
        println!(
            "## Figure 5 ({}): {} ports observed, {} seen in BOTH darknet and flows",
            def.short(),
            pairs.len(),
            both
        );
        let mut top: Vec<_> = pairs.clone();
        top.sort_by_key(|(_, d, f)| std::cmp::Reverse(d + f));
        let mut t = TextTable::new("", &["Service", "Darknet pkts", "Flow pkts (est.)"]);
        for (label, d, f) in top.iter().take(12) {
            t.row(&[label.clone(), fmt_count(*d), fmt_count(*f)]);
        }
        println!("{}", t.render());
        for (label, d, f) in pairs {
            csv.push(vec![def.short().into(), label, d.to_string(), f.to_string()]);
        }
    }
    ctx.csv("fig5.csv", &["def", "service", "darknet_pkts", "flow_pkts"], &csv);
}

/// What-if: operationalize the paper's conclusion — "even starting by
/// blocking a small amount of AH, a large fraction of the problem is
/// ameliorated". Blocks the top-N hitters (ranked by darknet packet
/// contribution, the list an operator would compute) and measures how
/// much of the hitter traffic at the ISP's routers disappears.
fn whatif(ctx: &mut Ctx) {
    use std::collections::HashMap;
    let flows = ctx.runs.flows();
    let ds = require(flows.merit_flows.as_ref(), "merit flows", "whatif");
    let def = Definition::AddressDispersion;
    // Rank hitters by darknet packets (what the telescope operator knows).
    let mut pkts_by_src: HashMap<aggressive_scanners::net::ipv4::Ipv4Addr4, u64> = HashMap::new();
    for r in flows.report.hitter_records(def) {
        *pkts_by_src.entry(r.src).or_default() += u64::from(r.packets);
    }
    let mut ranked: Vec<_> = pkts_by_src.into_iter().collect();
    ranked.sort_by_key(|&(_, p)| std::cmp::Reverse(p));
    // Hitter packets seen at the routers, per source (sampled).
    let mut router_pkts: HashMap<aggressive_scanners::net::ipv4::Ipv4Addr4, u64> = HashMap::new();
    let mut total_ah_router = 0u64;
    let all: HashSet<_> = ranked.iter().map(|&(ip, _)| ip).collect();
    for r in &ds.records {
        if all.contains(&r.key.src) {
            *router_pkts.entry(r.key.src).or_default() += r.packets;
            total_ah_router += r.packets;
        }
    }
    let mut t = TextTable::new(
        "What-if: blocklisting the top-N darknet hitters (def. #1)",
        &["Blocked", "% of hitter pkts removed at routers", "% of hitter IPs"],
    );
    let mut csv = Vec::new();
    for n in [1usize, 2, 5, 10, 25, 50, ranked.len()] {
        let n = n.min(ranked.len());
        let removed: u64 =
            ranked[..n].iter().map(|&(ip, _)| router_pkts.get(&ip).copied().unwrap_or(0)).sum();
        let pct = if total_ah_router == 0 {
            0.0
        } else {
            100.0 * removed as f64 / total_ah_router as f64
        };
        let ip_pct = 100.0 * n as f64 / ranked.len().max(1) as f64;
        t.row(&[format!("top {n}"), fmt_pct(pct), format!("{ip_pct:.1}%")]);
        csv.push(vec![n.to_string(), format!("{pct:.3}"), format!("{ip_pct:.3}")]);
        if n == ranked.len() {
            break;
        }
    }
    println!("{}", t.render());
    println!(
        "Ranking derived from darknet packets only; removal measured on the ISP's sampled flows.
"
    );
    ctx.csv("whatif.csv", &["blocked_top_n", "pct_pkts_removed", "pct_ips"], &csv);
}

/// Figure 6: GreyNoise breakdown (left) and traffic concentration (right).
fn fig6(ctx: &mut Ctx) {
    let run = ctx.runs.gn();
    let entries = require(run.gn_entries.as_ref(), "GreyNoise entries", "fig6");
    let seen = require(run.gn_seen.as_ref(), "GreyNoise seen-set", "fig6");
    let acked = run.world.acked_list(8);
    let rdns = run.world.rdns(64);
    let v = acked_validation(&run.report, Definition::AddressDispersion, &acked, &rdns);
    let hitters = run.report.hitters(Definition::AddressDispersion);
    let b = gn_breakdown(hitters, entries, &v.ips);
    let mut t = TextTable::new(
        "Figure 6 (left): GN breakdown of monthly non-ACKed AH (def. #1)",
        &["Class", "IPs", "Share"],
    );
    let total = b.total().max(1) as f64;
    t.row(&["malicious", &b.malicious.to_string(), &fmt_pct(100.0 * b.malicious as f64 / total)]);
    t.row(&["unknown", &b.unknown.to_string(), &fmt_pct(100.0 * b.unknown as f64 / total)]);
    t.row(&["benign", &b.benign.to_string(), &fmt_pct(100.0 * b.benign as f64 / total)]);
    t.row(&["not in GN", &b.absent.to_string(), &fmt_pct(100.0 * b.absent as f64 / total)]);
    println!("{}", t.render());
    let overlap = daily_gn_overlap(&run.report, Definition::AddressDispersion, seen, 0..run.days);
    println!("Average daily AH∩GN overlap: {:.1}% (paper: 99.3%)\n", 100.0 * overlap);

    let z = zipf_concentration(&run.report, Definition::AddressDispersion);
    if !z.is_empty() {
        let top1pct_idx = (z.len() / 100).max(1) - 1;
        println!(
            "Figure 6 (right): top 1% of AH ({} IPs) contribute {:.1}% of AH traffic (paper: >25%)",
            top1pct_idx + 1,
            z[top1pct_idx]
        );
        let rows: Vec<Vec<String>> = z
            .iter()
            .enumerate()
            .map(|(i, v)| vec![(i + 1).to_string(), format!("{v:.3}")])
            .collect();
        ctx.csv("fig6_zipf.csv", &["rank", "cumulative_pct"], &rows);
    }
    ctx.csv(
        "fig6_breakdown.csv",
        &["class", "ips"],
        &[
            vec!["malicious".into(), b.malicious.to_string()],
            vec!["unknown".into(), b.unknown.to_string()],
            vec!["benign".into(), b.benign.to_string()],
            vec!["absent".into(), b.absent.to_string()],
        ],
    );
}

/// Pipeline health: graceful-degradation ledgers for a pristine run and
/// a 1%-fault chaos run of the same scenario, side by side.
fn health(ctx: &mut Ctx) {
    use aggressive_scanners::core::defs::Thresholds;
    use aggressive_scanners::pipeline::{self, RunOptions};
    use aggressive_scanners::simnet::faults::FaultPlan;
    use aggressive_scanners::simnet::scenario::ScenarioConfig;
    let thresholds =
        Thresholds { dispersion_fraction: 0.10, volume_alpha: 0.01, ports_alpha: 0.01 };
    let opts = RunOptions::full().with_thresholds(thresholds);
    let mut csv = Vec::new();
    for (label, faults) in
        [("clean", None), ("faults-1pct", Some(FaultPlan::uniform(0.01, ctx.seed)))]
    {
        eprintln!("[run] health {label} (3 days)...");
        let mut o = opts;
        if let Some(plan) = faults {
            o = o.with_faults(plan);
        }
        let out = pipeline::run(ScenarioConfig::tiny(3, ctx.seed ^ 0x6ea1), o);
        println!("## Pipeline health ({label})");
        print!("{}", out.health.render());
        println!(
            "conservation: {}\n",
            if out.health.conserves() { "every stage balances" } else { "VIOLATED" }
        );
        for s in &out.health.stages {
            csv.push(vec![
                label.to_string(),
                s.stage.clone(),
                s.received.to_string(),
                s.accepted.to_string(),
                s.repaired.to_string(),
                s.quarantined.to_string(),
                s.discarded_total().to_string(),
            ]);
        }
    }
    ctx.csv(
        "health.csv",
        &["run", "stage", "received", "accepted", "repaired", "quarantined", "discarded"],
        &csv,
    );
}
