//! HyperLogLog distinct-counting sketch.
//!
//! The event aggregator defaults to *exact* adaptive sets
//! ([`crate::dstset::DstSet`]) for per-event destination dispersion. A
//! telescope with a much larger dark space (ORION's 475k, or a /8) may
//! prefer constant-memory sketches; this module provides the standard
//! HLL estimator (Flajolet et al. 2007, with the small-range linear
//! counting correction) so the exact-vs-sketch trade-off can be measured
//! (see the `ablation` bench and DESIGN.md §5).

/// A HyperLogLog sketch with `2^P` registers.
///
/// `P = 12` (4096 registers, 4 KiB) gives a relative standard error of
/// about `1.04 / sqrt(4096)` ≈ 1.6%.
#[derive(Debug, Clone)]
pub struct HyperLogLog<const P: u8 = 12> {
    registers: Vec<u8>,
}

fn hash64(x: u64) -> u64 {
    // splitmix64 finalizer — well-mixed for sequential ids.
    let mut z = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl<const P: u8> HyperLogLog<P> {
    const M: usize = 1 << P;

    /// An empty sketch with `2^P` registers.
    pub fn new() -> Self {
        assert!((4..=18).contains(&P), "register exponent out of range");
        HyperLogLog { registers: vec![0u8; Self::M] }
    }

    /// Alpha bias-correction constant for m registers.
    fn alpha() -> f64 {
        match Self::M {
            16 => 0.673,
            32 => 0.697,
            64 => 0.709,
            m => 0.7213 / (1.0 + 1.079 / m as f64),
        }
    }

    /// Insert one item.
    pub fn insert(&mut self, item: u64) {
        let h = hash64(item);
        let idx = (h >> (64 - P)) as usize;
        let rest = h << P;
        // Rank: position of the leftmost 1-bit in the remaining bits.
        let rank = (rest.leading_zeros() as u8).min(64 - P) + 1;
        if self.registers[idx] < rank {
            self.registers[idx] = rank;
        }
    }

    /// Estimated number of distinct items inserted.
    pub fn estimate(&self) -> f64 {
        let m = Self::M as f64;
        let sum: f64 = self.registers.iter().map(|&r| 2f64.powi(-i32::from(r))).sum();
        let raw = Self::alpha() * m * m / sum;
        if raw <= 2.5 * m {
            // Small-range correction: linear counting over empty registers.
            let zeros = self.registers.iter().filter(|&&r| r == 0).count();
            if zeros > 0 {
                return m * (m / zeros as f64).ln();
            }
        }
        raw
    }

    /// Merge another sketch (union semantics).
    pub fn merge(&mut self, other: &Self) {
        for (a, b) in self.registers.iter_mut().zip(&other.registers) {
            *a = (*a).max(*b);
        }
    }

    /// Memory footprint of the registers in bytes.
    pub fn memory_bytes(&self) -> usize {
        self.registers.len()
    }
}

impl<const P: u8> Default for HyperLogLog<P> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn relative_error(est: f64, truth: u64) -> f64 {
        (est - truth as f64).abs() / truth as f64
    }

    #[test]
    fn empty_estimates_zero() {
        let h: HyperLogLog = HyperLogLog::new();
        assert!(h.estimate() < 1.0);
    }

    #[test]
    fn small_cardinalities_are_nearly_exact() {
        let mut h: HyperLogLog = HyperLogLog::new();
        for i in 0..100u64 {
            h.insert(i);
        }
        assert!(relative_error(h.estimate(), 100) < 0.05, "est {}", h.estimate());
    }

    #[test]
    fn duplicates_do_not_inflate() {
        let mut h: HyperLogLog = HyperLogLog::new();
        for _ in 0..50 {
            for i in 0..500u64 {
                h.insert(i);
            }
        }
        assert!(relative_error(h.estimate(), 500) < 0.05, "est {}", h.estimate());
    }

    #[test]
    fn large_cardinalities_within_error_bound() {
        let mut h: HyperLogLog = HyperLogLog::new();
        let n = 200_000u64;
        for i in 0..n {
            h.insert(i.wrapping_mul(0x9e37_79b9_7f4a_7c15));
        }
        // 1.04/sqrt(4096) ≈ 1.6% std error; allow 4 sigma.
        assert!(relative_error(h.estimate(), n) < 0.065, "est {}", h.estimate());
    }

    #[test]
    fn merge_equals_union() {
        let mut a: HyperLogLog = HyperLogLog::new();
        let mut b: HyperLogLog = HyperLogLog::new();
        for i in 0..10_000u64 {
            a.insert(i);
        }
        for i in 5_000..15_000u64 {
            b.insert(i);
        }
        a.merge(&b);
        assert!(relative_error(a.estimate(), 15_000) < 0.06, "est {}", a.estimate());
    }

    #[test]
    fn memory_is_constant() {
        let mut h: HyperLogLog = HyperLogLog::new();
        let m0 = h.memory_bytes();
        for i in 0..100_000u64 {
            h.insert(i);
        }
        assert_eq!(h.memory_bytes(), m0);
        assert_eq!(m0, 4096);
    }

    #[test]
    fn smaller_precision_usable() {
        let mut h: HyperLogLog<8> = HyperLogLog::new();
        for i in 0..50_000u64 {
            h.insert(i);
        }
        // 1.04/sqrt(256) ≈ 6.5%; allow 4 sigma.
        assert!(relative_error(h.estimate(), 50_000) < 0.26, "est {}", h.estimate());
    }

    #[test]
    fn dispersion_decision_agreement_with_exact() {
        // The question the telescope actually asks: is coverage >= 10%
        // of a 16,384-address dark space? Compare HLL vs exact over a
        // range of true coverages.
        for &truth in &[500u64, 1000, 1600, 1700, 3000, 16_000] {
            let mut h: HyperLogLog = HyperLogLog::new();
            for i in 0..truth {
                h.insert(i.wrapping_mul(0x2545_f491_4f6c_dd1d));
            }
            let exact = truth as f64 / 16_384.0 >= 0.10;
            let sketch = h.estimate() / 16_384.0 >= 0.10;
            // Only the boundary cases (within ±5% of the cut) may
            // disagree; these truths are chosen away from it except
            // 1600/1700 which sit near 1638.
            if !(1500..1800).contains(&truth) {
                assert_eq!(exact, sketch, "truth {truth}");
            }
        }
    }
}
