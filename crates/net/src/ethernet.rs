//! Ethernet II framing.
//!
//! Mirrored packet streams and pcap files carry Ethernet frames; the
//! telescope and flow pipelines strip this layer before the IPv4 parser.

use crate::error::{NetError, Result};
use std::fmt;

/// Ethernet II header length.
pub const HEADER_LEN: usize = 14;

/// EtherType for IPv4.
pub const ETHERTYPE_IPV4: u16 = 0x0800;
/// EtherType for ARP (seen and skipped on taps).
pub const ETHERTYPE_ARP: u16 = 0x0806;
/// EtherType for IPv6 (out of scope per the paper; skipped).
pub const ETHERTYPE_IPV6: u16 = 0x86dd;

/// A 48-bit MAC address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct MacAddr(pub [u8; 6]);

impl MacAddr {
    /// The all-ones broadcast address.
    pub const BROADCAST: MacAddr = MacAddr([0xff; 6]);

    /// Locally administered unicast address derived from a small id —
    /// handy for giving simulated monitoring stations stable MACs.
    pub fn local(id: u32) -> MacAddr {
        let b = id.to_be_bytes();
        MacAddr([0x02, 0x00, b[0], b[1], b[2], b[3]])
    }
}

impl fmt::Display for MacAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let o = self.0;
        write!(f, "{:02x}:{:02x}:{:02x}:{:02x}:{:02x}:{:02x}", o[0], o[1], o[2], o[3], o[4], o[5])
    }
}

/// An owned Ethernet II header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EthernetHeader {
    /// Destination MAC.
    pub dst: MacAddr,
    /// Source MAC.
    pub src: MacAddr,
    /// EtherType (0x0800 for IPv4).
    pub ethertype: u16,
}

impl EthernetHeader {
    /// An IPv4 frame between two synthetic stations.
    pub fn ipv4(src: MacAddr, dst: MacAddr) -> Self {
        EthernetHeader { dst, src, ethertype: ETHERTYPE_IPV4 }
    }

    /// Parse from the front of `data`; returns header + payload.
    pub fn parse(data: &[u8]) -> Result<(EthernetHeader, &[u8])> {
        if data.len() < HEADER_LEN {
            return Err(NetError::Truncated {
                layer: "ethernet",
                needed: HEADER_LEN,
                got: data.len(),
            });
        }
        let mut dst = [0u8; 6];
        let mut src = [0u8; 6];
        dst.copy_from_slice(&data[0..6]);
        src.copy_from_slice(&data[6..12]);
        Ok((
            EthernetHeader {
                dst: MacAddr(dst),
                src: MacAddr(src),
                ethertype: u16::from_be_bytes([data[12], data[13]]),
            },
            &data[HEADER_LEN..],
        ))
    }

    /// Serialize into `out`.
    pub fn emit(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&self.dst.0);
        out.extend_from_slice(&self.src.0);
        out.extend_from_slice(&self.ethertype.to_be_bytes());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let h = EthernetHeader::ipv4(MacAddr::local(1), MacAddr::local(2));
        let mut buf = Vec::new();
        h.emit(&mut buf);
        buf.extend_from_slice(b"payload");
        let (parsed, rest) = EthernetHeader::parse(&buf).unwrap();
        assert_eq!(parsed, h);
        assert_eq!(rest, b"payload");
    }

    #[test]
    fn truncated_rejected() {
        assert!(EthernetHeader::parse(&[0u8; 13]).is_err());
    }

    #[test]
    fn mac_display() {
        assert_eq!(MacAddr::local(0x01020304).to_string(), "02:00:01:02:03:04");
        assert_eq!(MacAddr::BROADCAST.to_string(), "ff:ff:ff:ff:ff:ff");
    }

    #[test]
    fn ethertype_constants() {
        let h = EthernetHeader::ipv4(MacAddr::local(0), MacAddr::local(1));
        assert_eq!(h.ethertype, ETHERTYPE_IPV4);
    }
}
