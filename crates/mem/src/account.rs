//! Cache-padded per-tag atomic accounts.
//!
//! One [`Account`] per [`Tag`](crate::Tag) plus a process-global
//! aggregate, each on its own 64-byte cache line so concurrent shard
//! threads charging different subsystems never false-share. All
//! updates come from the allocator shim (`alloc.rs`), so every
//! function here must be allocation-free and panic-free: plain atomic
//! arithmetic only.
//
// ah-lint: allow-file(atomic-ordering, reason = "ORDERING: accounts are observation-only monotone aggregates — nothing derives inter-thread ordering from them, they are read only at snapshot/report time, and Relaxed keeps the allocator hot path to uncontended RMWs")

use crate::{TagStats, TAG_COUNT};
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering::Relaxed};

/// Index of the process-global aggregate account in [`ACCOUNTS`].
pub(crate) const GLOBAL: usize = TAG_COUNT;

/// One subsystem's counters, padded to a cache line.
#[repr(align(64))]
struct Account {
    /// Bytes currently outstanding. Signed: concurrent charge/debit
    /// interleavings may transiently dip a reader's view below zero.
    live_bytes: AtomicI64,
    /// Blocks currently outstanding.
    live_allocs: AtomicI64,
    /// High-water mark of `live_bytes` (maintained with `fetch_max`).
    peak_bytes: AtomicI64,
    /// Cumulative bytes ever charged.
    total_bytes: AtomicU64,
    /// Cumulative blocks ever charged.
    total_allocs: AtomicU64,
}

impl Account {
    const fn new() -> Account {
        Account {
            live_bytes: AtomicI64::new(0),
            live_allocs: AtomicI64::new(0),
            peak_bytes: AtomicI64::new(0),
            total_bytes: AtomicU64::new(0),
            total_allocs: AtomicU64::new(0),
        }
    }
}

/// `TAG_COUNT` per-tag accounts followed by the global aggregate.
static ACCOUNTS: [Account; TAG_COUNT + 1] = [
    Account::new(),
    Account::new(),
    Account::new(),
    Account::new(),
    Account::new(),
    Account::new(),
    Account::new(),
    Account::new(),
    Account::new(),
    Account::new(),
];

/// Credit `size` bytes to account `idx` and the global aggregate.
pub(crate) fn charge(idx: u8, size: usize) {
    for acct in [&ACCOUNTS[idx as usize % (TAG_COUNT + 1)], &ACCOUNTS[GLOBAL]] {
        let live = acct.live_bytes.fetch_add(size as i64, Relaxed) + size as i64;
        acct.peak_bytes.fetch_max(live, Relaxed);
        acct.live_allocs.fetch_add(1, Relaxed);
        acct.total_bytes.fetch_add(size as u64, Relaxed);
        acct.total_allocs.fetch_add(1, Relaxed);
    }
}

/// Debit `size` bytes from account `idx` and the global aggregate.
pub(crate) fn discharge(idx: u8, size: usize) {
    for acct in [&ACCOUNTS[idx as usize % (TAG_COUNT + 1)], &ACCOUNTS[GLOBAL]] {
        acct.live_bytes.fetch_sub(size as i64, Relaxed);
        acct.live_allocs.fetch_sub(1, Relaxed);
    }
}

/// Move a charged block from `old` to `new` bytes under its original
/// tag (a `realloc` that kept the charge).
pub(crate) fn adjust(idx: u8, old: usize, new: usize) {
    let delta = new as i64 - old as i64;
    for acct in [&ACCOUNTS[idx as usize % (TAG_COUNT + 1)], &ACCOUNTS[GLOBAL]] {
        let live = acct.live_bytes.fetch_add(delta, Relaxed) + delta;
        acct.peak_bytes.fetch_max(live, Relaxed);
        acct.total_bytes.fetch_add(new as u64, Relaxed);
        acct.total_allocs.fetch_add(1, Relaxed);
    }
}

/// Copy account `idx` into a [`TagStats`] snapshot.
pub(crate) fn snapshot(idx: usize) -> TagStats {
    let acct = &ACCOUNTS[idx % (TAG_COUNT + 1)];
    TagStats {
        live_bytes: acct.live_bytes.load(Relaxed),
        live_allocs: acct.live_allocs.load(Relaxed),
        peak_bytes: acct.peak_bytes.load(Relaxed),
        total_bytes: acct.total_bytes.load(Relaxed),
        total_allocs: acct.total_allocs.load(Relaxed),
    }
}

/// Reset every account's peak to its current live level and zero the
/// cumulative counters (fresh measurement window for benches).
pub(crate) fn reset_window() {
    for acct in &ACCOUNTS {
        acct.peak_bytes.store(acct.live_bytes.load(Relaxed), Relaxed);
        acct.total_bytes.store(0, Relaxed);
        acct.total_allocs.store(0, Relaxed);
    }
}
