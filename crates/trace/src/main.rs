//! `ah-trace` — trace-file checker CLI.
//!
//! ```text
//! ah-trace check <trace.json> [--require-journey] [--require <span-name>]...
//! ```
//!
//! Validates a Chrome trace-event JSON file against the first-party
//! schema check ([`ah_trace::check::validate_chrome_trace`]): balanced
//! `B`/`E` events with stack discipline, non-decreasing timestamps per
//! track, scheme-valid span names, well-formed journey flows. With
//! `--require-journey` the trace must contain at least one sampled
//! packet journey; each `--require NAME` asserts that a span or
//! instant with that name is present. Exit status: 0 on success, 1 on
//! validation failure, 2 on usage/IO errors. Used by the `trace` gate
//! in `scripts/ci.sh`.

use std::process::ExitCode;

fn usage() -> ExitCode {
    eprintln!("usage: ah-trace check <trace.json> [--require-journey] [--require <span-name>]...");
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut it = args.iter();
    if it.next().map(String::as_str) != Some("check") {
        return usage();
    }
    let Some(path) = it.next() else { return usage() };
    let mut require_journey = false;
    let mut required: Vec<&str> = Vec::new();
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "--require-journey" => require_journey = true,
            "--require" => match it.next() {
                Some(name) => required.push(name),
                None => return usage(),
            },
            _ => return usage(),
        }
    }
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("ah-trace: reading {path}: {e}");
            return ExitCode::from(2);
        }
    };
    let stats = match ah_trace::check::validate_chrome_trace(&text) {
        Ok(stats) => stats,
        Err(reason) => {
            eprintln!("ah-trace: {path}: INVALID: {reason}");
            return ExitCode::from(1);
        }
    };
    let mut failed = false;
    if require_journey && stats.flow_ids.is_empty() {
        eprintln!("ah-trace: {path}: no sampled packet journeys (want >= 1 flow chain)");
        failed = true;
    }
    for name in &required {
        if !stats.names.contains(*name) {
            eprintln!("ah-trace: {path}: required span {name:?} not present");
            failed = true;
        }
    }
    println!(
        "ah-trace: {path}: OK — {} events, {} tracks, {} spans, {} instants, {} journeys",
        stats.events,
        stats.tracks,
        stats.spans,
        stats.instants,
        stats.flow_ids.len()
    );
    if failed {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}
