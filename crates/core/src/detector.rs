//! Aggressive-hitter detection over darknet events.
//!
//! The [`Detector`] ingests completed darknet events (in any order),
//! compacts them into fixed-size [`EventRecord`]s, and at
//! [`Detector::finalize`] computes, for each of the three definitions:
//!
//! * the **yearly** hitter set (any qualifying event in the dataset),
//! * the **daily** sets (hitters whose qualifying activity *started*
//!   that day — the only granularity at which the events data format
//!   allows packet accounting, per the paper's Figure 3 footnote),
//! * the **active** sets (hitters whose qualifying activity *spans* the
//!   day, i.e. may have started earlier),
//! * per-day packet totals attributable to daily hitters.
//!
//! Definitions 2 and 3 need dataset-wide ECDF thresholds, so detection is
//! inherently two-phase: compact on ingest, qualify on finalize.

use crate::defs::{Definition, Thresholds};
use crate::ecdf::Ecdf;
use ah_net::ipv4::Ipv4Addr4;
use ah_net::packet::ScanClass;
use ah_telescope::event::DarknetEvent;
use std::collections::{BTreeMap, HashSet};

/// Compact summary of one darknet event (32 bytes + padding) — the
/// detector's working set for multi-month runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EventRecord {
    /// Scanning source address.
    pub src: Ipv4Addr4,
    /// Targeted destination port (0 for ICMP).
    pub dst_port: u16,
    /// Traffic type (TCP SYN / UDP / ICMP echo).
    pub class: ScanClass,
    /// Day index of the event's first packet.
    pub start_day: u16,
    /// Day index of the event's last packet.
    pub end_day: u16,
    /// Scanning packets in the event (saturating at `u32::MAX`).
    pub packets: u32,
    /// Total wire bytes.
    pub bytes: u64,
    /// Exact distinct dark destinations contacted.
    pub unique_dsts: u32,
    /// Packets carrying the ZMap fingerprint.
    pub zmap: u32,
    /// Packets carrying the Masscan fingerprint.
    pub masscan: u32,
    /// Packets carrying the Mirai fingerprint (bucketed as "Other" in
    /// Figure 4, tracked separately for tagging analyses).
    pub mirai: u32,
}

impl EventRecord {
    fn from_event(ev: &DarknetEvent) -> EventRecord {
        EventRecord {
            src: ev.key.src,
            dst_port: ev.key.dst_port,
            class: ev.key.class,
            start_day: ev.start.day().min(u64::from(u16::MAX)) as u16,
            end_day: ev.end.day().min(u64::from(u16::MAX)) as u16,
            packets: ev.packets.min(u64::from(u32::MAX)) as u32,
            bytes: ev.bytes,
            unique_dsts: ev.unique_dsts,
            zmap: ev.tools.zmap.min(u64::from(u32::MAX)) as u32,
            masscan: ev.tools.masscan.min(u64::from(u32::MAX)) as u32,
            mirai: ev.tools.mirai.min(u64::from(u32::MAX)) as u32,
        }
    }

    /// Packets with neither ZMap nor Masscan fingerprints — Figure 4's
    /// "Other" bucket (includes Mirai).
    pub fn other_packets(&self) -> u32 {
        self.packets.saturating_sub(self.zmap).saturating_sub(self.masscan)
    }
}

/// Detector configuration.
#[derive(Debug, Clone, Copy)]
pub struct DetectorConfig {
    /// Tail cuts for the three definitions.
    pub thresholds: Thresholds,
    /// Size of the monitored dark space (denominator of dispersion).
    pub dark_size: u32,
}

impl DetectorConfig {
    /// Default thresholds over a dark space of `dark_size` addresses.
    pub fn new(dark_size: u32) -> DetectorConfig {
        DetectorConfig { thresholds: Thresholds::default(), dark_size }
    }
}

/// Streaming event consumer.
pub struct Detector {
    cfg: DetectorConfig,
    records: Vec<EventRecord>,
    /// Packed (src, day, port) tuples for definition 3; deduped at
    /// finalize. ICMP events carry no port and are excluded.
    port_tuples: Vec<u64>,
}

fn pack_tuple(src: Ipv4Addr4, day: u16, port: u16) -> u64 {
    (u64::from(src.to_u32()) << 32) | (u64::from(day) << 16) | u64::from(port)
}

fn unpack_src_day(t: u64) -> (Ipv4Addr4, u16) {
    (Ipv4Addr4((t >> 32) as u32), ((t >> 16) & 0xffff) as u16)
}

impl Detector {
    /// An empty detector with the given configuration.
    pub fn new(cfg: DetectorConfig) -> Detector {
        Detector { cfg, records: Vec::new(), port_tuples: Vec::new() }
    }

    /// The configuration in force.
    pub fn config(&self) -> DetectorConfig {
        self.cfg
    }

    /// Ingest one completed darknet event.
    pub fn ingest(&mut self, ev: &DarknetEvent) {
        let rec = EventRecord::from_event(ev);
        if rec.class != ScanClass::IcmpEcho {
            for day in rec.start_day..=rec.end_day {
                self.port_tuples.push(pack_tuple(rec.src, day, rec.dst_port));
            }
        }
        self.records.push(rec);
    }

    /// Ingest a batch.
    pub fn ingest_all(&mut self, evs: &[DarknetEvent]) {
        for ev in evs {
            self.ingest(ev);
        }
    }

    /// Number of events ingested.
    pub fn event_count(&self) -> usize {
        self.records.len()
    }

    /// Run qualification and build the report.
    pub fn finalize(mut self) -> AhReport {
        let t = self.cfg.thresholds;
        let dark = f64::from(self.cfg.dark_size.max(1));

        // --- ECDFs and thresholds ---------------------------------------
        let volume_ecdf =
            Ecdf::from_samples(self.records.iter().map(|r| u64::from(r.packets)).collect());
        let d2_threshold = volume_ecdf.top_alpha_threshold(t.volume_alpha).unwrap_or(u64::MAX);

        // Distinct ports per (src, day).
        self.port_tuples.sort_unstable();
        self.port_tuples.dedup();
        let mut ports_per_srcday: Vec<(Ipv4Addr4, u16, u64)> = Vec::new();
        {
            let mut i = 0;
            while i < self.port_tuples.len() {
                let key = self.port_tuples[i] >> 16;
                let mut j = i;
                while j < self.port_tuples.len() && self.port_tuples[j] >> 16 == key {
                    j += 1;
                }
                let (src, day) = unpack_src_day(self.port_tuples[i]);
                ports_per_srcday.push((src, day, (j - i) as u64));
                i = j;
            }
        }
        let ports_ecdf = Ecdf::from_samples(ports_per_srcday.iter().map(|&(_, _, c)| c).collect());
        // Floor of 2: a degenerate percentile of 1 port/day (possible in
        // small datasets where almost every source probes one port) would
        // otherwise declare the entire population aggressive.
        let d3_threshold = ports_ecdf.top_alpha_threshold(t.ports_alpha).unwrap_or(u64::MAX).max(2);

        // --- Qualification ------------------------------------------------
        let mut yearly: [HashSet<Ipv4Addr4>; 3] = Default::default();
        let mut daily: [BTreeMap<u64, HashSet<Ipv4Addr4>>; 3] = Default::default();
        let mut active: [BTreeMap<u64, HashSet<Ipv4Addr4>>; 3] = Default::default();
        let mut day_ah_packets: [BTreeMap<u64, u64>; 3] = Default::default();

        // D1/D2 qualify whole events.
        for r in &self.records {
            let d1 = f64::from(r.unique_dsts) / dark >= t.dispersion_fraction;
            let d2 = u64::from(r.packets) > d2_threshold;
            for (qualifies, def) in
                [(d1, Definition::AddressDispersion), (d2, Definition::PacketVolume)]
            {
                if !qualifies {
                    continue;
                }
                let i = def.index();
                yearly[i].insert(r.src);
                daily[i].entry(u64::from(r.start_day)).or_default().insert(r.src);
                for day in r.start_day..=r.end_day {
                    active[i].entry(u64::from(day)).or_default().insert(r.src);
                }
            }
        }

        // D3 qualifies (src, day) pairs. Note the paper's asymmetric
        // wording: D2 hitters *cross* the threshold (strictly above),
        // D3 hitters scan "more than or equal to" the threshold.
        let i3 = Definition::DistinctPorts.index();
        let mut d3_srcdays: HashSet<(Ipv4Addr4, u64)> = HashSet::new();
        for &(src, day, count) in &ports_per_srcday {
            if count >= d3_threshold {
                yearly[i3].insert(src);
                daily[i3].entry(u64::from(day)).or_default().insert(src);
                active[i3].entry(u64::from(day)).or_default().insert(src);
                d3_srcdays.insert((src, u64::from(day)));
            }
        }

        // --- Per-day packets from daily hitters ---------------------------
        // Packets are attributable to an event's start day only.
        for r in &self.records {
            let day = u64::from(r.start_day);
            for def in Definition::ALL {
                let i = def.index();
                let qualifies_today = match def {
                    Definition::DistinctPorts => d3_srcdays.contains(&(r.src, day)),
                    _ => daily[i].get(&day).is_some_and(|s| s.contains(&r.src)),
                };
                if qualifies_today {
                    *day_ah_packets[i].entry(day).or_default() += u64::from(r.packets);
                }
            }
        }

        // --- All-scanner daily statistics ---------------------------------
        let mut day_all_sources: BTreeMap<u64, HashSet<Ipv4Addr4>> = BTreeMap::new();
        let mut day_all_packets: BTreeMap<u64, u64> = BTreeMap::new();
        for r in &self.records {
            let day = u64::from(r.start_day);
            day_all_sources.entry(day).or_default().insert(r.src);
            *day_all_packets.entry(day).or_default() += u64::from(r.packets);
        }

        AhReport {
            cfg: self.cfg,
            d2_threshold,
            d3_threshold,
            volume_ecdf,
            ports_ecdf,
            yearly,
            daily,
            active,
            day_ah_packets,
            day_all_sources: day_all_sources
                .into_iter()
                .map(|(d, s)| (d, s.len() as u64))
                .collect(),
            day_all_packets,
            records: self.records,
        }
    }
}

/// The finalized detection output.
pub struct AhReport {
    /// The configuration the detector ran with.
    pub cfg: DetectorConfig,
    /// Definition-2 packets-per-event threshold (strictly above ⇒ hitter).
    pub d2_threshold: u64,
    /// Definition-3 distinct-ports-per-day threshold.
    pub d3_threshold: u64,
    /// ECDF over per-event packet counts (definition 2's threshold base).
    pub volume_ecdf: Ecdf,
    /// ECDF over per-(source, day) distinct-port counts (definition 3).
    pub ports_ecdf: Ecdf,
    yearly: [HashSet<Ipv4Addr4>; 3],
    daily: [BTreeMap<u64, HashSet<Ipv4Addr4>>; 3],
    active: [BTreeMap<u64, HashSet<Ipv4Addr4>>; 3],
    day_ah_packets: [BTreeMap<u64, u64>; 3],
    /// Unique sources with events starting each day (all scanners).
    pub day_all_sources: BTreeMap<u64, u64>,
    /// Scanning packets in events starting each day (all scanners).
    pub day_all_packets: BTreeMap<u64, u64>,
    records: Vec<EventRecord>,
}

impl AhReport {
    /// The full-dataset hitter set for a definition.
    pub fn hitters(&self, def: Definition) -> &HashSet<Ipv4Addr4> {
        &self.yearly[def.index()]
    }

    /// Hitters whose qualifying activity started on `day`.
    pub fn daily_hitters(&self, def: Definition, day: u64) -> Option<&HashSet<Ipv4Addr4>> {
        self.daily[def.index()].get(&day)
    }

    /// Hitters with qualifying activity spanning `day`.
    pub fn active_hitters(&self, def: Definition, day: u64) -> Option<&HashSet<Ipv4Addr4>> {
        self.active[def.index()].get(&day)
    }

    /// Days with any daily hitters for a definition, ascending.
    pub fn days(&self, def: Definition) -> Vec<u64> {
        self.daily[def.index()].keys().copied().collect()
    }

    /// Packets attributable to daily hitters of `def` on `day`.
    pub fn ah_packets(&self, def: Definition, day: u64) -> u64 {
        self.day_ah_packets[def.index()].get(&day).copied().unwrap_or(0)
    }

    /// Is `src` a hitter under `def`?
    pub fn is_hitter(&self, def: Definition, src: Ipv4Addr4) -> bool {
        self.yearly[def.index()].contains(&src)
    }

    /// The compact event records (all scanners, not just hitters).
    pub fn records(&self) -> &[EventRecord] {
        &self.records
    }

    /// Event records whose source is a hitter under `def`.
    pub fn hitter_records(&self, def: Definition) -> impl Iterator<Item = &EventRecord> {
        let set = &self.yearly[def.index()];
        self.records.iter().filter(move |r| set.contains(&r.src))
    }

    /// Mean daily and active hitter counts over the observed span.
    pub fn mean_daily_active(&self, def: Definition) -> (f64, f64) {
        let i = def.index();
        let days = self.daily[i].len().max(1) as f64;
        let daily: usize = self.daily[i].values().map(HashSet::len).sum();
        let adays = self.active[i].len().max(1) as f64;
        let active: usize = self.active[i].values().map(HashSet::len).sum();
        (daily as f64 / days, active as f64 / adays)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ah_net::time::{Dur, Ts};
    use ah_telescope::event::{EventKey, ToolCounts};

    const DARK: u32 = 1000;

    fn ev(src: u8, port: u16, day: u64, packets: u64, unique: u32) -> DarknetEvent {
        ev_span(src, port, day, day, packets, unique)
    }

    fn ev_span(src: u8, port: u16, d0: u64, d1: u64, packets: u64, unique: u32) -> DarknetEvent {
        DarknetEvent {
            key: EventKey {
                src: Ipv4Addr4::new(10, 0, 0, src),
                dst_port: port,
                class: ScanClass::TcpSyn,
            },
            start: Ts::from_days(d0) + Dur::from_secs(60),
            end: Ts::from_days(d1) + Dur::from_secs(120),
            packets,
            bytes: packets * 40,
            unique_dsts: unique,
            dark_size: DARK,
            tools: ToolCounts::default(),
        }
    }

    fn detector() -> Detector {
        Detector::new(DetectorConfig::new(DARK))
    }

    #[test]
    fn d1_requires_ten_percent_dispersion() {
        let mut d = detector();
        d.ingest(&ev(1, 23, 0, 500, 100)); // exactly 10%
        d.ingest(&ev(2, 23, 0, 500, 99)); // just under
        let r = d.finalize();
        let set = r.hitters(Definition::AddressDispersion);
        assert!(set.contains(&Ipv4Addr4::new(10, 0, 0, 1)));
        assert!(!set.contains(&Ipv4Addr4::new(10, 0, 0, 2)));
    }

    #[test]
    fn d2_uses_ecdf_tail() {
        let mut d = detector();
        // 99,999 small events and one giant: with α = 1e-4 only the giant
        // is above the 99.99th percentile.
        for i in 0..9_999u32 {
            d.ingest(&ev((i % 200) as u8, 23, 0, 10 + u64::from(i % 7), 5));
        }
        d.ingest(&ev(250, 23, 0, 1_000_000, 5));
        let r = d.finalize();
        assert!(r.d2_threshold >= 10);
        let set = r.hitters(Definition::PacketVolume);
        assert!(set.contains(&Ipv4Addr4::new(10, 0, 0, 250)));
        assert!(set.len() <= 3, "tail should be tiny: {}", set.len());
    }

    #[test]
    fn d3_counts_distinct_ports_per_day() {
        let mut d = detector();
        // Source 1: 500 distinct ports on day 0. Source 2: 5 ports.
        for port in 1..=500u16 {
            d.ingest(&ev(1, port, 0, 1, 1));
        }
        for port in 1..=5u16 {
            d.ingest(&ev(2, port, 0, 1, 1));
        }
        // Tail of single-port sources to shape the ECDF.
        for i in 0..200u8 {
            d.ingest(&ev(i.wrapping_add(10), 80, 0, 1, 1));
        }
        let r = d.finalize();
        assert!(r.hitters(Definition::DistinctPorts).contains(&Ipv4Addr4::new(10, 0, 0, 1)));
        assert!(!r.hitters(Definition::DistinctPorts).contains(&Ipv4Addr4::new(10, 0, 0, 2)));
    }

    #[test]
    fn d3_same_port_across_protocols_counts_once() {
        let mut d = detector();
        let mut e_udp = ev(1, 53, 0, 1, 1);
        e_udp.key.class = ScanClass::Udp;
        d.ingest(&ev(1, 53, 0, 1, 1));
        d.ingest(&e_udp);
        let r = d.finalize();
        // One (src, day) sample with exactly 1 distinct port.
        assert_eq!(r.ports_ecdf.max(), Some(1));
    }

    #[test]
    fn icmp_events_do_not_contribute_ports() {
        let mut d = detector();
        let mut e = ev(1, 0, 0, 1, 1);
        e.key.class = ScanClass::IcmpEcho;
        d.ingest(&e);
        let r = d.finalize();
        assert!(r.ports_ecdf.is_empty());
    }

    #[test]
    fn daily_vs_active_attribution() {
        let mut d = detector();
        // A qualifying event spanning days 1-3.
        d.ingest(&ev_span(1, 23, 1, 3, 5000, 200));
        let r = d.finalize();
        let def = Definition::AddressDispersion;
        let src = Ipv4Addr4::new(10, 0, 0, 1);
        assert!(r.daily_hitters(def, 1).unwrap().contains(&src));
        assert!(r.daily_hitters(def, 2).is_none(), "daily keys only the start day");
        for day in 1..=3 {
            assert!(r.active_hitters(def, day).unwrap().contains(&src), "day {day}");
        }
        assert!(r.active_hitters(def, 4).is_none());
    }

    #[test]
    fn ah_packets_attributed_to_start_day() {
        let mut d = detector();
        d.ingest(&ev(1, 23, 2, 700, 150)); // qualifying
        d.ingest(&ev(1, 22, 2, 50, 3)); // same src, same day, non-qualifying event
        d.ingest(&ev(2, 23, 2, 60, 3)); // non-hitter
        let r = d.finalize();
        // All packets of the daily hitter count, including its small event.
        assert_eq!(r.ah_packets(Definition::AddressDispersion, 2), 750);
        assert_eq!(r.day_all_packets[&2], 810);
        assert_eq!(r.day_all_sources[&2], 2);
    }

    #[test]
    fn hitter_records_filter() {
        let mut d = detector();
        d.ingest(&ev(1, 23, 0, 700, 150));
        d.ingest(&ev(2, 23, 0, 10, 2));
        let r = d.finalize();
        assert_eq!(r.records().len(), 2);
        assert_eq!(r.hitter_records(Definition::AddressDispersion).count(), 1);
    }

    #[test]
    fn mean_daily_active_counts() {
        let mut d = detector();
        d.ingest(&ev_span(1, 23, 0, 1, 700, 150));
        d.ingest(&ev(2, 23, 0, 700, 150));
        let r = d.finalize();
        let (daily, active) = r.mean_daily_active(Definition::AddressDispersion);
        // Day 0: 2 daily; active day 0: 2, day 1: 1.
        assert!((daily - 2.0).abs() < 1e-9);
        assert!((active - 1.5).abs() < 1e-9);
    }

    #[test]
    fn empty_detector_finalizes() {
        let r = detector().finalize();
        assert!(r.hitters(Definition::AddressDispersion).is_empty());
        assert_eq!(r.d2_threshold, u64::MAX);
        assert!(r.records().is_empty());
    }

    #[test]
    fn event_record_other_packets() {
        let mut e = ev(1, 23, 0, 100, 5);
        e.tools = ToolCounts { zmap: 60, masscan: 10, mirai: 20, other: 10 };
        let mut d = detector();
        d.ingest(&e);
        let r = d.finalize();
        let rec = &r.records()[0];
        assert_eq!(rec.other_packets(), 30); // mirai + other
        assert_eq!(rec.zmap, 60);
    }
}
