//! Trace determinism and trace-artifact schema checks.
//!
//! The contract under test (`ARCHITECTURE.md` §12): tracing is
//! observation-only. Attaching a live [`ah_trace::Tracer`] — spans on
//! every layer plus sampled packet journeys — must leave
//! [`RunOutput::fingerprint`] bitwise identical on both engines, clean
//! or faulted, and on the durable (WAL) paths. On top of that, the
//! Chrome trace-event export must pass the first-party validator
//! ([`ah_trace::check`]): balanced `B`/`E` stacks, per-track monotonic
//! timestamps, scheme-conforming span names, and flow chains with a
//! single start and at least two points.

use aggressive_scanners::pipeline::{self, RunOptions, RunOutput, Telemetry, WalRun};
use aggressive_scanners::simnet::faults::FaultPlan;
use aggressive_scanners::simnet::scenario::ScenarioConfig;
use ah_trace::{check, export, TraceConfig, Tracer};

fn scenario() -> ScenarioConfig {
    ScenarioConfig::tiny(1, 33)
}

fn opts(faulted: bool) -> RunOptions {
    let o = RunOptions::full();
    if faulted {
        o.with_faults(FaultPlan::uniform(0.01, 33))
    } else {
        o
    }
}

/// A live tracer following ~1-in-`sample` source journeys, seeded like
/// the scenario so the sampled set is reproducible.
fn tracer(sample: u64) -> Tracer {
    Tracer::new(TraceConfig { seed: 33, sample_one_in: sample, ..TraceConfig::default() })
}

fn run_with(tel: &mut Telemetry, threads: usize, faulted: bool) -> RunOutput {
    if threads <= 1 {
        pipeline::run_with_recorder(scenario(), opts(faulted), tel)
    } else {
        pipeline::run_parallel_with_recorder(scenario(), opts(faulted), threads, tel)
    }
}

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("ah-trace-test-{tag}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

// --- Determinism --------------------------------------------------------

#[test]
fn tracing_does_not_perturb_output() {
    for (threads, faulted) in [(1, false), (1, true), (8, false), (8, true)] {
        let baseline = run_with(&mut Telemetry::disabled(), threads, faulted).fingerprint();
        let mut tel = Telemetry::disabled().with_tracer(tracer(4));
        let traced = run_with(&mut tel, threads, faulted).fingerprint();
        assert_eq!(
            baseline, traced,
            "tracing changed the output at threads={threads} faulted={faulted}"
        );
        let snap = tel.tracer.snapshot();
        let events: usize = snap.tracks.iter().map(|t| t.events.len()).sum();
        assert!(events > 0, "live tracer recorded nothing at threads={threads}");
    }
}

// --- Chrome trace schema + causal journeys ------------------------------

#[test]
fn traced_parallel_run_exports_causal_journeys() {
    let mut tel = Telemetry::disabled().with_tracer(tracer(16));
    run_with(&mut tel, 4, true);
    let snap = tel.tracer.snapshot();
    let json = export::to_chrome_trace(&snap);
    let stats = check::validate_chrome_trace(&json).expect("chrome trace validates");
    // One track for the dispatcher plus one per shard worker.
    assert!(stats.tracks >= 3, "expected dispatcher + shard tracks, got {}", stats.tracks);
    assert!(!stats.flow_ids.is_empty(), "no sampled packet journeys in the trace");
    // A journey must be visible at every layer from mux to detector.
    for name in [
        "ah_pipeline_mux_drive",
        "ah_pipeline_dispatch_route",
        "ah_pipeline_shard_consume",
        "ah_pipeline_vantage_consume",
        "ah_telescope_capture_observe",
        "ah_telescope_agg_sweep",
        "ah_flow_router_observe",
        "ah_pipeline_merge_collect",
        "ah_pipeline_detector_pass",
        "ah_pipeline_detector_ingest",
    ] {
        assert!(stats.names.contains(name), "span {name} missing from the trace");
    }
    // The injector's fate instants ride the same journeys.
    assert!(
        stats.names.iter().any(|n| n.starts_with("ah_simnet_faults_")),
        "faulted traced run shows no injector fate instants"
    );

    // Folded-stack export: every line is `stack <self-us>`.
    let folded = export::to_folded_stacks(&snap);
    assert!(!folded.is_empty(), "folded-stack export is empty");
    for line in folded.lines() {
        let (stack, n) = line.rsplit_once(' ').expect("stack and self-time");
        assert!(!stack.is_empty());
        n.parse::<u64>().expect("numeric self-time");
    }
}

// --- WAL I/O visibility --------------------------------------------------

#[test]
fn traced_wal_run_covers_wal_io_and_stays_deterministic() {
    let dir = temp_dir("wal");
    let baseline = pipeline::run(scenario(), opts(false)).fingerprint();

    let mut tel = Telemetry::disabled().with_tracer(tracer(16));
    let mut wal = WalRun::new(&dir);
    // Small batches and segments so the traced window contains several
    // group commits and at least one rotation.
    wal.writer.group_commit_frames = 512;
    wal.writer.segment_bytes = 64 << 10;
    let out = pipeline::run_wal(scenario(), opts(false), &wal, &mut tel)
        .expect("durable run")
        .completed()
        .expect("run completed");
    assert_eq!(out.fingerprint(), baseline, "tracing changed the durable run's output");

    let stats = check::validate_chrome_trace(&export::to_chrome_trace(&tel.tracer.snapshot()))
        .expect("durable-run trace validates");
    for name in [
        "ah_pipeline_mux_drive",
        "ah_pipeline_wal_append",
        "ah_wal_writer_commit",
        "ah_wal_writer_fsync",
        "ah_wal_writer_rotate",
        "ah_wal_writer_seal",
    ] {
        assert!(stats.names.contains(name), "span {name} missing from the WAL trace");
    }

    // Replay the sealed log traced: recovery scan + per-packet replay
    // instants, same fingerprint.
    let mut tel2 = Telemetry::disabled().with_tracer(tracer(16));
    let replayed = pipeline::replay_wal(scenario(), opts(false), &dir, &mut tel2).expect("replay");
    assert_eq!(replayed.fingerprint(), baseline, "traced replay diverged");
    let stats2 = check::validate_chrome_trace(&export::to_chrome_trace(&tel2.tracer.snapshot()))
        .expect("replay trace validates");
    assert!(stats2.names.contains("ah_wal_recover_scan"));
    assert!(stats2.names.contains("ah_wal_replay_packet"));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn traced_parallel_wal_matches_serial() {
    let dir = temp_dir("pwal");
    let mut tel = Telemetry::disabled().with_tracer(tracer(16));
    let out = pipeline::run_parallel_wal(scenario(), opts(false), 4, &WalRun::new(&dir), &mut tel)
        .expect("parallel durable run")
        .completed()
        .expect("run completed");
    assert_eq!(out.fingerprint(), pipeline::run(scenario(), opts(false)).fingerprint());
    let stats = check::validate_chrome_trace(&export::to_chrome_trace(&tel.tracer.snapshot()))
        .expect("parallel WAL trace validates");
    for name in ["ah_pipeline_dispatch_route", "ah_pipeline_wal_append", "ah_wal_writer_commit"] {
        assert!(stats.names.contains(name), "span {name} missing");
    }
    std::fs::remove_dir_all(&dir).ok();
}
