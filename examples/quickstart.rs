//! Quickstart: simulate two days of Internet traffic at a miniature
//! telescope, detect aggressive hitters under all three definitions, and
//! print what was found.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use aggressive_scanners::core::defs::Definition;
use aggressive_scanners::core::lists::jaccard;
use aggressive_scanners::pipeline::{self, RunOptions};
use aggressive_scanners::simnet::scenario::ScenarioConfig;

fn main() {
    // A small world (1,024 dark IPs) over 2 simulated days, seed 42.
    let run = pipeline::run(ScenarioConfig::tiny(2, 42), RunOptions::darknet_only());

    println!("simulated packets:        {}", run.generated_packets);
    println!("captured by telescope:    {}", run.capture.total_packets);
    println!("  scanning packets:       {}", run.capture.scan_packets);
    println!("  backscatter/noise:      {}", run.capture.non_scan_packets);
    println!("unique scanning sources:  {}", run.capture.unique_sources);
    println!("darknet events:           {}", run.report.records().len());
    println!();
    println!("definition thresholds:");
    println!("  D2 packets/event  > {}", run.report.d2_threshold);
    println!("  D3 ports/day     >= {}", run.report.d3_threshold);
    println!();

    for def in Definition::ALL {
        let hitters = run.report.hitters(def);
        println!("{} ({}): {} aggressive hitters", def.short(), def.label(), hitters.len());
        let mut sample: Vec<String> = hitters.iter().take(5).map(|ip| ip.to_string()).collect();
        sample.sort();
        println!("    e.g. {}", sample.join(", "));
    }

    let j = jaccard(
        run.report.hitters(Definition::AddressDispersion),
        run.report.hitters(Definition::PacketVolume),
    );
    println!();
    println!("Jaccard(D1, D2) = {j:.2} — the paper reports ≈0.8 for 2021");
}
