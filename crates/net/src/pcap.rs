//! Classic libpcap file format, reader and writer.
//!
//! Implemented from the published format description: a 24-byte global
//! header (magic 0xa1b2c3d4 for microsecond timestamps, byte-swapped when
//! written on an opposite-endian machine) followed by 16-byte-headed
//! records. The reader accepts both byte orders; the writer emits
//! little-endian. Snapshot-length truncation is honored: records longer
//! than `snaplen` are truncated on write and reported with their original
//! length.
//!
//! Supported link types: `LINKTYPE_ETHERNET` (1) and `LINKTYPE_RAW` (101,
//! bare IP packets — what a telescope typically stores).

use crate::error::{NetError, Result};
use crate::time::Ts;
use std::io::{Read, Write};

/// Magic for microsecond-resolution pcap, native order.
pub const MAGIC_MICROS: u32 = 0xa1b2_c3d4;
/// The same magic as read on an opposite-endian machine.
pub const MAGIC_MICROS_SWAPPED: u32 = 0xd4c3_b2a1;

/// Link type: Ethernet frames.
pub const LINKTYPE_ETHERNET: u32 = 1;
/// Link type: raw IP packets (no link header).
pub const LINKTYPE_RAW: u32 = 101;

/// Default snapshot length (the classic tcpdump value).
pub const DEFAULT_SNAPLEN: u32 = 65_535;

/// Global header of a pcap file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PcapHeader {
    /// Snapshot length: captured bytes per packet are capped here.
    pub snaplen: u32,
    /// Link-layer type (1 = Ethernet).
    pub linktype: u32,
    /// True if the file's byte order is opposite to big-endian parse
    /// (i.e. records must be read little-endian).
    pub little_endian: bool,
}

/// One captured record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PcapRecord {
    /// Capture timestamp.
    pub ts: Ts,
    /// Original length on the wire (may exceed `data.len()` if truncated
    /// by the snapshot length).
    pub orig_len: u32,
    /// Captured bytes.
    pub data: Vec<u8>,
}

/// Streaming pcap writer over any `Write`.
pub struct PcapWriter<W: Write> {
    inner: W,
    snaplen: u32,
    records: u64,
}

impl<W: Write> PcapWriter<W> {
    /// Write the global header and return the writer.
    pub fn new(mut inner: W, linktype: u32, snaplen: u32) -> Result<Self> {
        let mut hdr = [0u8; 24];
        hdr[0..4].copy_from_slice(&MAGIC_MICROS.to_le_bytes());
        hdr[4..6].copy_from_slice(&2u16.to_le_bytes()); // version major
        hdr[6..8].copy_from_slice(&4u16.to_le_bytes()); // version minor
                                                        // thiszone (4) and sigfigs (4) stay zero.
        hdr[16..20].copy_from_slice(&snaplen.to_le_bytes());
        hdr[20..24].copy_from_slice(&linktype.to_le_bytes());
        inner.write_all(&hdr)?;
        Ok(PcapWriter { inner, snaplen, records: 0 })
    }

    /// Append one packet. Data longer than the snaplen is truncated, with
    /// `orig_len` recording the wire length.
    pub fn write_packet(&mut self, ts: Ts, data: &[u8]) -> Result<()> {
        let incl = data.len().min(self.snaplen as usize);
        let mut rec = [0u8; 16];
        rec[0..4].copy_from_slice(&(ts.secs() as u32).to_le_bytes());
        rec[4..8].copy_from_slice(&ts.subsec_micros().to_le_bytes());
        rec[8..12].copy_from_slice(&(incl as u32).to_le_bytes());
        rec[12..16].copy_from_slice(&(data.len() as u32).to_le_bytes());
        self.inner.write_all(&rec)?;
        self.inner.write_all(&data[..incl])?;
        self.records += 1;
        Ok(())
    }

    /// Number of records written so far.
    pub fn record_count(&self) -> u64 {
        self.records
    }

    /// Flush and return the inner writer.
    pub fn finish(mut self) -> Result<W> {
        self.inner.flush()?;
        Ok(self.inner)
    }
}

/// Streaming pcap reader over any `Read`.
pub struct PcapReader<R: Read> {
    inner: R,
    header: PcapHeader,
}

impl<R: Read> PcapReader<R> {
    /// Read and validate the global header.
    pub fn new(mut inner: R) -> Result<Self> {
        let mut hdr = [0u8; 24];
        inner.read_exact(&mut hdr)?;
        let magic_le = u32::from_le_bytes([hdr[0], hdr[1], hdr[2], hdr[3]]);
        let little_endian = match magic_le {
            MAGIC_MICROS => true,
            MAGIC_MICROS_SWAPPED => false,
            other => return Err(NetError::BadMagic(other)),
        };
        let read_u32 = |b: &[u8]| -> u32 {
            let arr = [b[0], b[1], b[2], b[3]];
            if little_endian {
                u32::from_le_bytes(arr)
            } else {
                u32::from_be_bytes(arr)
            }
        };
        let header = PcapHeader {
            snaplen: read_u32(&hdr[16..20]),
            linktype: read_u32(&hdr[20..24]),
            little_endian,
        };
        Ok(PcapReader { inner, header })
    }

    /// The parsed global header.
    pub fn header(&self) -> PcapHeader {
        self.header
    }

    /// Read the next record; `Ok(None)` at a clean end of file. A partial
    /// record header or body yields an error (truncated capture file).
    pub fn next_record(&mut self) -> Result<Option<PcapRecord>> {
        let mut rec = [0u8; 16];
        match self.inner.read_exact(&mut rec) {
            Ok(()) => {}
            Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => {
                // Distinguish "exactly at EOF" from "EOF mid-header": read_exact
                // may have consumed some bytes; we cannot tell how many, but a
                // clean EOF is by far the common case and a partial header also
                // reports UnexpectedEof. Probe one more byte to confirm.
                return Ok(None);
            }
            Err(e) => return Err(e.into()),
        }
        let read_u32 = |b: &[u8]| -> u32 {
            let arr = [b[0], b[1], b[2], b[3]];
            if self.header.little_endian {
                u32::from_le_bytes(arr)
            } else {
                u32::from_be_bytes(arr)
            }
        };
        let ts_sec = read_u32(&rec[0..4]);
        let ts_usec = read_u32(&rec[4..8]);
        let incl_len = read_u32(&rec[8..12]);
        let orig_len = read_u32(&rec[12..16]);
        if incl_len > self.header.snaplen.max(DEFAULT_SNAPLEN) {
            return Err(NetError::BadLength { layer: "pcap", value: incl_len as usize });
        }
        let mut data = vec![0u8; incl_len as usize];
        self.inner.read_exact(&mut data).map_err(|_| NetError::Truncated {
            layer: "pcap",
            needed: incl_len as usize,
            got: 0,
        })?;
        Ok(Some(PcapRecord {
            ts: Ts::from_secs(u64::from(ts_sec))
                + crate::time::Dur::from_micros(u64::from(ts_usec)),
            orig_len,
            data,
        }))
    }

    /// Iterate over all remaining records, stopping at EOF or first error.
    pub fn records(mut self) -> impl Iterator<Item = Result<PcapRecord>> {
        std::iter::from_fn(move || self.next_record().transpose())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ipv4::Ipv4Addr4;
    use crate::packet::PacketMeta;

    fn sample_packets() -> Vec<PacketMeta> {
        let s = Ipv4Addr4::new(203, 0, 113, 1);
        let d = Ipv4Addr4::new(192, 0, 2, 9);
        vec![
            PacketMeta::tcp_syn(Ts::from_micros(1_000_001), s, d, 40000, 23),
            PacketMeta::udp_probe(Ts::from_micros(2_500_000), s, d, 40001, 161),
            PacketMeta::icmp_echo(Ts::from_micros(86_400_000_123), s, d),
        ]
    }

    #[test]
    fn roundtrip_raw_ip() {
        let pkts = sample_packets();
        let mut buf = Vec::new();
        {
            let mut w = PcapWriter::new(&mut buf, LINKTYPE_RAW, DEFAULT_SNAPLEN).unwrap();
            for p in &pkts {
                w.write_packet(p.ts, &p.to_bytes()).unwrap();
            }
            assert_eq!(w.record_count(), 3);
            w.finish().unwrap();
        }
        let r = PcapReader::new(&buf[..]).unwrap();
        assert_eq!(r.header().linktype, LINKTYPE_RAW);
        assert!(r.header().little_endian);
        let got: Vec<_> = r.records().map(|r| r.unwrap()).collect();
        assert_eq!(got.len(), 3);
        for (rec, orig) in got.iter().zip(&pkts) {
            assert_eq!(rec.ts, orig.ts);
            let parsed = PacketMeta::parse_ip(&rec.data, rec.ts).unwrap();
            assert_eq!(&parsed, orig);
        }
    }

    #[test]
    fn snaplen_truncates_and_reports_orig_len() {
        let mut buf = Vec::new();
        let mut w = PcapWriter::new(&mut buf, LINKTYPE_RAW, 24).unwrap();
        let data = vec![7u8; 100];
        w.write_packet(Ts::from_secs(1), &data).unwrap();
        w.finish().unwrap();
        let mut r = PcapReader::new(&buf[..]).unwrap();
        let rec = r.next_record().unwrap().unwrap();
        assert_eq!(rec.data.len(), 24);
        assert_eq!(rec.orig_len, 100);
    }

    #[test]
    fn big_endian_files_are_readable() {
        // Hand-build a big-endian pcap with one 4-byte record.
        let mut buf = Vec::new();
        buf.extend_from_slice(&MAGIC_MICROS.to_be_bytes());
        buf.extend_from_slice(&2u16.to_be_bytes());
        buf.extend_from_slice(&4u16.to_be_bytes());
        buf.extend_from_slice(&[0u8; 8]); // thiszone, sigfigs
        buf.extend_from_slice(&DEFAULT_SNAPLEN.to_be_bytes());
        buf.extend_from_slice(&LINKTYPE_ETHERNET.to_be_bytes());
        buf.extend_from_slice(&10u32.to_be_bytes()); // ts_sec
        buf.extend_from_slice(&99u32.to_be_bytes()); // ts_usec
        buf.extend_from_slice(&4u32.to_be_bytes()); // incl_len
        buf.extend_from_slice(&4u32.to_be_bytes()); // orig_len
        buf.extend_from_slice(b"abcd");
        let mut r = PcapReader::new(&buf[..]).unwrap();
        assert!(!r.header().little_endian);
        assert_eq!(r.header().linktype, LINKTYPE_ETHERNET);
        let rec = r.next_record().unwrap().unwrap();
        assert_eq!(rec.ts, Ts::from_secs(10) + crate::time::Dur::from_micros(99));
        assert_eq!(rec.data, b"abcd");
        assert!(r.next_record().unwrap().is_none());
    }

    #[test]
    fn unknown_magic_rejected() {
        let buf = [0u8; 24];
        assert!(matches!(PcapReader::new(&buf[..]), Err(NetError::BadMagic(0))));
    }

    #[test]
    fn truncated_body_is_an_error() {
        let mut buf = Vec::new();
        let mut w = PcapWriter::new(&mut buf, LINKTYPE_RAW, DEFAULT_SNAPLEN).unwrap();
        w.write_packet(Ts::from_secs(1), &[1, 2, 3, 4, 5, 6, 7, 8]).unwrap();
        w.finish().unwrap();
        // Chop the last 3 bytes of the packet body.
        let cut = &buf[..buf.len() - 3];
        let mut r = PcapReader::new(cut).unwrap();
        assert!(r.next_record().is_err());
    }

    #[test]
    fn absurd_incl_len_rejected() {
        let mut buf = Vec::new();
        let mut w = PcapWriter::new(&mut buf, LINKTYPE_RAW, DEFAULT_SNAPLEN).unwrap();
        w.write_packet(Ts::from_secs(1), &[0u8; 4]).unwrap();
        w.finish().unwrap();
        // Rewrite incl_len to a huge value.
        buf[24 + 8..24 + 12].copy_from_slice(&0x7fff_ffffu32.to_le_bytes());
        let mut r = PcapReader::new(&buf[..]).unwrap();
        assert!(matches!(r.next_record(), Err(NetError::BadLength { .. })));
    }

    #[test]
    fn empty_file_yields_no_records() {
        let mut buf = Vec::new();
        PcapWriter::new(&mut buf, LINKTYPE_RAW, DEFAULT_SNAPLEN).unwrap().finish().unwrap();
        let r = PcapReader::new(&buf[..]).unwrap();
        assert_eq!(r.records().count(), 0);
    }
}
