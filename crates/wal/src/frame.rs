//! Length-prefixed CRC-framed log entries.
//!
//! Every record in a segment is one frame:
//!
//! ```text
//!  offset  size  field
//!  ------  ----  -----------------------------------------------------
//!       0     4  len   (u32 LE) — payload length in bytes, 1..=1 MiB
//!       4     8  seq   (u64 LE) — monotonic frame sequence number
//!      12     4  crc   (u32 LE) — CRC32 over len ‖ seq ‖ payload
//!      16   len  payload         — record kind byte + record body
//! ```
//!
//! The CRC covers the length and sequence fields as well as the payload,
//! so a flip anywhere in the frame is detected; a length flip that points
//! past the end of the file reads short and is classified as *torn*
//! instead. Frames never span segment files.

use crate::crc::Crc32;

/// Fixed bytes before the payload: len (4) + seq (8) + crc (4).
pub const FRAME_HEADER_BYTES: usize = 16;

/// Upper bound on one frame's payload; anything larger in a length field
/// is treated as corruption rather than attempted as an allocation.
pub const MAX_FRAME_PAYLOAD: u32 = 1 << 20;

/// Append one encoded frame carrying `payload` to `out`.
pub fn append_frame(out: &mut Vec<u8>, seq: u64, payload: &[u8]) {
    let len = payload.len() as u32;
    debug_assert!((1..=MAX_FRAME_PAYLOAD).contains(&len));
    let len_le = len.to_le_bytes();
    let seq_le = seq.to_le_bytes();
    let mut crc = Crc32::new();
    crc.update(&len_le);
    crc.update(&seq_le);
    crc.update(payload);
    out.extend_from_slice(&len_le);
    out.extend_from_slice(&seq_le);
    out.extend_from_slice(&crc.finish().to_le_bytes());
    out.extend_from_slice(payload);
}

/// Outcome of validating the frame at the start of `buf`.
#[derive(Debug, PartialEq, Eq)]
pub enum FrameCheck<'a> {
    /// A whole, checksum-valid frame with the expected sequence number.
    Frame {
        /// The frame's payload (kind byte + body).
        payload: &'a [u8],
        /// Total encoded size, header included.
        consumed: usize,
    },
    /// The buffer ends before the frame does — a torn final write.
    Torn,
    /// The frame is structurally complete but fails validation
    /// (checksum mismatch, impossible length, or wrong sequence number).
    Corrupt,
}

/// Validate the frame at the start of `buf`, expecting sequence number
/// `expect_seq`. Never panics and never reads past `buf`.
pub fn check_frame(buf: &[u8], expect_seq: u64) -> FrameCheck<'_> {
    if buf.len() < FRAME_HEADER_BYTES {
        return FrameCheck::Torn;
    }
    // ah-lint: allow(panic-path, reason = "slice bounds proven by the length check above; try_into on a 4/8-byte slice of a checked prefix cannot fail")
    let len = u32::from_le_bytes(buf[0..4].try_into().expect("4-byte slice"));
    // ah-lint: allow(panic-path, reason = "same bounds argument as above")
    let seq = u64::from_le_bytes(buf[4..12].try_into().expect("8-byte slice"));
    // ah-lint: allow(panic-path, reason = "same bounds argument as above")
    let stored_crc = u32::from_le_bytes(buf[12..16].try_into().expect("4-byte slice"));
    if len == 0 || len > MAX_FRAME_PAYLOAD {
        return FrameCheck::Corrupt;
    }
    let total = FRAME_HEADER_BYTES + len as usize;
    if buf.len() < total {
        return FrameCheck::Torn;
    }
    let payload = &buf[FRAME_HEADER_BYTES..total];
    let mut crc = Crc32::new();
    crc.update(&buf[0..4]);
    crc.update(&buf[4..12]);
    crc.update(payload);
    if crc.finish() != stored_crc || seq != expect_seq {
        return FrameCheck::Corrupt;
    }
    FrameCheck::Frame { payload, consumed: total }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let mut buf = Vec::new();
        append_frame(&mut buf, 7, b"hello");
        match check_frame(&buf, 7) {
            FrameCheck::Frame { payload, consumed } => {
                assert_eq!(payload, b"hello");
                assert_eq!(consumed, buf.len());
            }
            other => panic!("expected frame, got {other:?}"),
        }
    }

    #[test]
    fn wrong_seq_is_corrupt() {
        let mut buf = Vec::new();
        append_frame(&mut buf, 7, b"hello");
        assert_eq!(check_frame(&buf, 8), FrameCheck::Corrupt);
    }

    #[test]
    fn short_buffer_is_torn() {
        let mut buf = Vec::new();
        append_frame(&mut buf, 0, b"payload");
        for cut in 0..buf.len() {
            match check_frame(&buf[..cut], 0) {
                FrameCheck::Torn => {}
                other => panic!("cut at {cut}: expected torn, got {other:?}"),
            }
        }
    }

    #[test]
    fn every_bit_flip_is_rejected() {
        let mut buf = Vec::new();
        append_frame(&mut buf, 3, b"some record payload");
        for bit in 0..buf.len() * 8 {
            let mut m = buf.clone();
            m[bit / 8] ^= 1 << (bit % 8);
            match check_frame(&m, 3) {
                FrameCheck::Frame { .. } => panic!("bit {bit} flip accepted"),
                FrameCheck::Torn | FrameCheck::Corrupt => {}
            }
        }
    }
}
