//! Vector clocks: the happens-before backbone of the checker.
//!
//! Every virtual thread carries a [`VClock`]; every shadow operation
//! ticks the thread's own component. Release-class stores snapshot the
//! storer's clock into the store record, acquire-class loads join that
//! snapshot back in — the standard message-passing construction of the
//! happens-before partial order.

/// A grow-on-demand vector clock indexed by virtual-thread id.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct VClock(Vec<u64>);

impl VClock {
    /// The all-zero clock (happens-before everything).
    pub fn new() -> VClock {
        VClock(Vec::new())
    }

    /// Component for thread `tid` (zero if never ticked).
    pub fn get(&self, tid: usize) -> u64 {
        self.0.get(tid).copied().unwrap_or(0)
    }

    /// Advance this thread's own component by one; returns the new tick.
    pub fn tick(&mut self, tid: usize) -> u64 {
        if self.0.len() <= tid {
            self.0.resize(tid + 1, 0);
        }
        self.0[tid] += 1;
        self.0[tid]
    }

    /// Pointwise maximum (`self ⊔= other`): after a join, everything
    /// `other` has observed happens-before this thread's next step.
    pub fn join(&mut self, other: &VClock) {
        if self.0.len() < other.0.len() {
            self.0.resize(other.0.len(), 0);
        }
        for (mine, theirs) in self.0.iter_mut().zip(other.0.iter()) {
            *mine = (*mine).max(*theirs);
        }
    }

    /// Set this thread's component to `tick` (used by the plain-cell
    /// access clocks, which track the last access per thread).
    pub fn record(&mut self, tid: usize, tick: u64) {
        if self.0.len() <= tid {
            self.0.resize(tid + 1, 0);
        }
        self.0[tid] = self.0[tid].max(tick);
    }

    /// True when every component of `self` is `<=` the matching
    /// component of `other` — i.e. all events recorded here are visible
    /// to a thread whose clock is `other`.
    pub fn le(&self, other: &VClock) -> bool {
        self.0.iter().enumerate().all(|(tid, &tick)| tick <= other.get(tid))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tick_join_le() {
        let mut a = VClock::new();
        let mut b = VClock::new();
        assert_eq!(a.tick(0), 1);
        assert_eq!(a.tick(0), 2);
        assert_eq!(b.tick(3), 1);
        assert!(!a.le(&b));
        b.join(&a);
        assert!(a.le(&b));
        assert_eq!(b.get(0), 2);
        assert_eq!(b.get(3), 1);
        assert_eq!(b.get(9), 0);
    }
}
