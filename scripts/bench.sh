#!/usr/bin/env bash
# Pipeline throughput baseline: runs the end-to-end engine bench (serial
# vs sharded parallel) and publishes the machine-readable summary as
# BENCH_pipeline.json in the repo root.
#
# The summary records packets/sec and speedup per thread count plus the
# host core count — on a single-core host the parallel engine can only
# exhibit its dispatch overhead, so interpret speedups against host_cpus.
set -euo pipefail
cd "$(dirname "$0")/.."

export BENCH_PIPELINE_OUT="${BENCH_PIPELINE_OUT:-$PWD/BENCH_pipeline.json}"

echo "==> pipeline throughput bench (summary -> $BENCH_PIPELINE_OUT)"
cargo bench -p ah-bench --bench pipeline

echo "==> summary"
cat "$BENCH_PIPELINE_OUT"
