//! Workspace enumeration, deterministic sampling, and the tree
//! fingerprint that keys the result cache.
//!
//! Mutation scope is the *product* code: the root crate's `src/` and
//! the library crates the pipeline ships. The verification layer itself
//! (`crates/lint`, `crates/mutate`), the bench harness and the vendored
//! test-support crates are excluded — mutating the measuring stick
//! tells us nothing about the suite's coverage of the product, and
//! every survivor there would be noise in the burn-down list.
//!
//! The tree fingerprint is deliberately coarse: FNV-1a over every
//! `*.rs`, `Cargo.toml` and `Cargo.lock` in the repo (tests, benches
//! and vendor included — a verdict depends on the whole tree, not just
//! the mutated file). Any change anywhere invalidates the whole cache;
//! cheap to compute, impossible to be stale.

use std::fs;
use std::io;
use std::path::Path;

use crate::ops::{enumerate_source, fnv1a, Mutant};

/// Directory names under `crates/` that are in mutation scope.
pub const PRODUCT_CRATES: &[&str] =
    &["core", "flow", "intel", "mem", "net", "obs", "simnet", "telescope", "trace", "wal"];

/// The cargo package owning a workspace-relative source path.
pub fn pkg_for(rel: &str) -> String {
    match rel.strip_prefix("crates/").and_then(|r| r.split('/').next()) {
        Some(dir) => format!("ah-{dir}"),
        None => "aggressive-scanners".to_string(),
    }
}

fn collect_rs(dir: &Path, root: &Path, out: &mut Vec<String>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let path = entry?.path();
        if path.is_dir() {
            collect_rs(&path, root, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            if let Ok(rel) = path.strip_prefix(root) {
                out.push(rel_string(rel));
            }
        }
    }
    Ok(())
}

fn rel_string(rel: &Path) -> String {
    rel.components().map(|c| c.as_os_str().to_string_lossy()).collect::<Vec<_>>().join("/")
}

/// Workspace-relative paths of every product source file in mutation
/// scope, sorted.
pub fn product_files(root: &Path) -> io::Result<Vec<String>> {
    let mut files = Vec::new();
    collect_rs(&root.join("src"), root, &mut files)?;
    for dir in PRODUCT_CRATES {
        let src = root.join("crates").join(dir).join("src");
        if src.is_dir() {
            collect_rs(&src, root, &mut files)?;
        }
    }
    files.sort();
    Ok(files)
}

/// Enumerate every mutant of every product file under `root`, in
/// (file, offset, operator) order.
pub fn enumerate_workspace(root: &Path) -> Result<Vec<Mutant>, String> {
    let files = product_files(root).map_err(|e| format!("walking {}: {e}", root.display()))?;
    let mut out = Vec::new();
    for rel in &files {
        let src = fs::read_to_string(root.join(rel)).map_err(|e| format!("reading {rel}: {e}"))?;
        out.extend(enumerate_source(rel, &src));
    }
    out.sort_by(|a, b| (&a.file, a.start, a.op).cmp(&(&b.file, b.start, b.op)));
    Ok(out)
}

/// FNV-1a fingerprint of the whole tree's build-relevant inputs: every
/// `*.rs`, `Cargo.toml` and `Cargo.lock` outside `target/`, `out/` and
/// dot-directories, path and content both folded in, files in sorted
/// order. Rendered as 16 hex chars.
pub fn tree_fingerprint(root: &Path) -> io::Result<String> {
    let mut files = Vec::new();
    walk_inputs(root, root, &mut files)?;
    files.sort();
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for rel in &files {
        h ^= fnv1a(rel.as_bytes());
        h = h.wrapping_mul(0x100_0000_01b3);
        let bytes = fs::read(root.join(rel))?;
        h ^= fnv1a(&bytes);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    Ok(format!("{h:016x}"))
}

fn walk_inputs(dir: &Path, root: &Path, out: &mut Vec<String>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let path = entry?.path();
        let name = path.file_name().map(|n| n.to_string_lossy().to_string()).unwrap_or_default();
        if path.is_dir() {
            if name == "target" || name == "out" || name.starts_with('.') {
                continue;
            }
            walk_inputs(&path, root, out)?;
        } else if name == "Cargo.toml"
            || name == "Cargo.lock"
            || path.extension().is_some_and(|e| e == "rs")
        {
            if let Ok(rel) = path.strip_prefix(root) {
                out.push(rel_string(rel));
            }
        }
    }
    Ok(())
}

/// SplitMix64 — the repo's standard tiny deterministic generator (the
/// same recurrence vendor/proptest uses), local so the harness stays
/// dependency-free.
pub struct SplitMix64(pub u64);

impl SplitMix64 {
    /// Next 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

/// Deterministically sample `n` mutants from `all` with `seed`
/// (partial Fisher–Yates over indices), preserving enumeration order
/// among the chosen. `n >= all.len()` returns everything.
pub fn sample(all: Vec<Mutant>, n: usize, seed: u64) -> Vec<Mutant> {
    if n >= all.len() {
        return all;
    }
    let mut rng = SplitMix64(seed);
    let mut idx: Vec<usize> = (0..all.len()).collect();
    for i in 0..n {
        let j = i + (rng.next_u64() as usize) % (idx.len() - i);
        idx.swap(i, j);
    }
    let mut chosen: Vec<usize> = idx.into_iter().take(n).collect();
    chosen.sort_unstable();
    let mut keep = vec![false; all.len()];
    for c in chosen {
        keep[c] = true;
    }
    all.into_iter().zip(keep).filter_map(|(m, k)| k.then_some(m)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mk(n: usize) -> Vec<Mutant> {
        (0..n)
            .map(|i| {
                let src = format!("//! d\nfn f(a: u64) -> bool {{ a >= {} }}\n", 10 + i);
                enumerate_source(&format!("crates/x/src/f{i}.rs"), &src).remove(0)
            })
            .collect()
    }

    #[test]
    fn sampling_is_deterministic_and_order_preserving() {
        let a = sample(mk(50), 10, 42);
        let b = sample(mk(50), 10, 42);
        assert_eq!(a, b);
        assert_eq!(a.len(), 10);
        let picked: Vec<usize> = a
            .iter()
            .map(|m| {
                m.file.trim_start_matches("crates/x/src/f").trim_end_matches(".rs").parse().unwrap()
            })
            .collect();
        assert!(picked.windows(2).all(|w| w[0] < w[1]), "sample preserves enumeration order");
        let c = sample(mk(50), 10, 43);
        assert_ne!(a, c, "different seed, different sample");
        assert_eq!(sample(mk(5), 99, 1).len(), 5);
    }

    #[test]
    fn pkg_mapping_covers_root_and_crates() {
        assert_eq!(pkg_for("src/pipeline.rs"), "aggressive-scanners");
        assert_eq!(pkg_for("crates/telescope/src/daily.rs"), "ah-telescope");
        assert_eq!(pkg_for("crates/wal/src/frame.rs"), "ah-wal");
    }
}
