//! Simulation/packet timestamps.
//!
//! All components in this workspace share a single monotonic clock:
//! microseconds since the epoch of the experiment (not wall-clock UNIX
//! time — experiments map "day 0" onto a paper date when rendering).

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// Microseconds in one second.
pub const MICROS_PER_SEC: u64 = 1_000_000;
/// Seconds in one day.
pub const SECS_PER_DAY: u64 = 86_400;
/// Microseconds in one day.
pub const MICROS_PER_DAY: u64 = SECS_PER_DAY * MICROS_PER_SEC;

/// A timestamp with microsecond resolution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Ts(pub u64);

impl Ts {
    /// The experiment epoch.
    pub const ZERO: Ts = Ts(0);

    /// From whole seconds.
    pub const fn from_secs(s: u64) -> Ts {
        Ts(s * MICROS_PER_SEC)
    }

    /// From whole milliseconds.
    pub const fn from_millis(ms: u64) -> Ts {
        Ts(ms * 1_000)
    }

    /// From microseconds.
    pub const fn from_micros(us: u64) -> Ts {
        Ts(us)
    }

    /// From whole days since the epoch.
    pub const fn from_days(d: u64) -> Ts {
        Ts(d * MICROS_PER_DAY)
    }

    /// Microseconds since the epoch.
    pub const fn micros(self) -> u64 {
        self.0
    }

    /// Whole seconds since the epoch (truncating).
    pub const fn secs(self) -> u64 {
        self.0 / MICROS_PER_SEC
    }

    /// Fractional-second remainder in microseconds.
    pub const fn subsec_micros(self) -> u32 {
        (self.0 % MICROS_PER_SEC) as u32
    }

    /// Index of the day this timestamp falls in (day 0 starts at the epoch).
    pub const fn day(self) -> u64 {
        self.0 / MICROS_PER_DAY
    }

    /// Start of this timestamp's day.
    pub const fn day_start(self) -> Ts {
        Ts(self.day() * MICROS_PER_DAY)
    }

    /// Seconds elapsed within the current day.
    pub const fn second_of_day(self) -> u64 {
        (self.0 % MICROS_PER_DAY) / MICROS_PER_SEC
    }

    /// Saturating difference `self - earlier` as a [`Dur`].
    pub fn since(self, earlier: Ts) -> Dur {
        Dur(self.0.saturating_sub(earlier.0))
    }
}

impl fmt::Display for Ts {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "d{}+{:05}.{:06}s", self.day(), self.second_of_day(), self.subsec_micros())
    }
}

/// A span of time with microsecond resolution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Dur(pub u64);

impl Dur {
    /// The zero-length duration.
    pub const ZERO: Dur = Dur(0);

    /// From whole seconds.
    pub const fn from_secs(s: u64) -> Dur {
        Dur(s * MICROS_PER_SEC)
    }

    /// From whole milliseconds.
    pub const fn from_millis(ms: u64) -> Dur {
        Dur(ms * 1_000)
    }

    /// From microseconds (the native unit).
    pub const fn from_micros(us: u64) -> Dur {
        Dur(us)
    }

    /// From whole minutes.
    pub const fn from_mins(m: u64) -> Dur {
        Dur(m * 60 * MICROS_PER_SEC)
    }

    /// The duration in microseconds.
    pub const fn micros(self) -> u64 {
        self.0
    }

    /// The duration in whole seconds, truncating.
    pub const fn secs(self) -> u64 {
        self.0 / MICROS_PER_SEC
    }

    /// Seconds as a float, for rate computations.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / MICROS_PER_SEC as f64
    }
}

impl Add<Dur> for Ts {
    type Output = Ts;
    fn add(self, rhs: Dur) -> Ts {
        Ts(self.0 + rhs.0)
    }
}

impl AddAssign<Dur> for Ts {
    fn add_assign(&mut self, rhs: Dur) {
        self.0 += rhs.0;
    }
}

impl Sub<Ts> for Ts {
    type Output = Dur;
    fn sub(self, rhs: Ts) -> Dur {
        Dur(self.0.saturating_sub(rhs.0))
    }
}

impl Add<Dur> for Dur {
    type Output = Dur;
    fn add(self, rhs: Dur) -> Dur {
        Dur(self.0 + rhs.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn day_arithmetic() {
        let t = Ts::from_days(3) + Dur::from_secs(7);
        assert_eq!(t.day(), 3);
        assert_eq!(t.second_of_day(), 7);
        assert_eq!(t.day_start(), Ts::from_days(3));
    }

    #[test]
    fn subtraction_saturates() {
        let a = Ts::from_secs(5);
        let b = Ts::from_secs(9);
        assert_eq!(b - a, Dur::from_secs(4));
        assert_eq!(a - b, Dur::ZERO);
    }

    #[test]
    fn display_format() {
        let t = Ts::from_days(1) + Dur::from_micros(1_500_000);
        assert_eq!(t.to_string(), "d1+00001.500000s");
    }

    #[test]
    fn conversions_roundtrip() {
        assert_eq!(Ts::from_secs(10).secs(), 10);
        assert_eq!(Dur::from_mins(10).secs(), 600);
        assert_eq!(Ts::from_millis(1500).subsec_micros(), 500_000);
        assert!((Dur::from_millis(2500).as_secs_f64() - 2.5).abs() < 1e-12);
    }
}
