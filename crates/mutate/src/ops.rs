//! Token-level mutation operators and the per-file site enumerator.
//!
//! Mutants are byte-range edits derived from the `ah-lint` lexer's
//! token stream, so a mutation can never land inside a string literal,
//! comment, or `#[cfg(test)]` region. The operators target the failure
//! classes the workspace actually fears (see ARCHITECTURE.md §14):
//! atomic-ordering downgrades, flipped or off-by-one threshold
//! comparisons, logic and arithmetic swaps, and silent
//! saturating/wrapping arithmetic substitutions.
//!
//! Token-level means heuristics, not syntax: `<` and `>` double as
//! generic brackets, `&&`/`||`/`*`/`-` have prefix readings. The
//! enumerator filters those with neighbour-shape rules (expression
//! ender on the left, starter on the right, type-like identifiers
//! skipped); the few misfires that slip through fail to compile and are
//! classified `build-broken` by the runner — noisy, never wrong.

use ah_lint::lexer::{lex, Tok, Token};
use ah_lint::lints::test_ranges;

/// One candidate mutation: a byte-range splice in one file.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Mutant {
    /// Stable content-derived id: FNV-1a over
    /// `file ‖ NUL ‖ start-offset ‖ NUL ‖ op ‖ NUL ‖ replacement`,
    /// rendered as 16 hex chars (the replacement disambiguates
    /// operators that emit several mutants at one site, e.g. lit-bump's
    /// up and down nudges).
    pub id: String,
    /// Workspace-relative path (forward slashes).
    pub file: String,
    /// 1-based line of the mutated site.
    pub line: u32,
    /// Operator id (one of [`OPERATORS`]).
    pub op: &'static str,
    /// Byte offset of the replaced range.
    pub start: usize,
    /// Byte offset one past the replaced range.
    pub end: usize,
    /// Original source text of the range.
    pub original: String,
    /// Replacement text.
    pub replacement: String,
    /// The full (trimmed) source line, for reports and sentinel
    /// matching.
    pub context: String,
}

impl Mutant {
    /// Apply this mutant to `src`, returning the mutated file body.
    pub fn apply(&self, src: &str) -> String {
        let mut out = String::with_capacity(src.len() + self.replacement.len());
        out.push_str(&src[..self.start]);
        out.push_str(&self.replacement);
        out.push_str(&src[self.end..]);
        out
    }
}

/// Every operator id with a one-line description.
pub const OPERATORS: &[(&str, &str)] = &[
    ("ord-relax", "downgrade Ordering::{AcqRel,Acquire,Release} to Relaxed"),
    ("cmp-swap", "swap a comparison with its boundary neighbour: < ↔ <=, > ↔ >=, == ↔ !="),
    ("lit-bump", "nudge an integer literal adjacent to a comparison by ±1"),
    ("logic-swap", "swap && ↔ ||"),
    ("arith-swap", "swap + ↔ - and * ↔ / (plain and compound-assign forms)"),
    ("sat-wrap", "swap saturating_* ↔ wrapping_* method calls"),
];

/// True when `op` names a known operator.
pub fn known_op(op: &str) -> bool {
    OPERATORS.iter().any(|(o, _)| *o == op)
}

/// FNV-1a over a byte string, 64-bit.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

fn mutant_id(file: &str, start: usize, op: &str, replacement: &str) -> String {
    let key = format!("{file}\u{0}{start}\u{0}{op}\u{0}{replacement}");
    format!("{:016x}", fnv1a(key.as_bytes()))
}

/// A code atom: either a single non-punct token or a run of adjacent
/// punctuation combined into one of Rust's composite operators.
struct Atom {
    text: String,
    start: usize,
    end: usize,
    line: u32,
    kind: AtomKind,
}

/// What an atom is; punctuation (single or composite) is `Op`.
enum AtomKind {
    Op,
    Ident(String),
    Num,
    Str,
    Char,
    Lifetime,
}

/// Composite punctuation operators, longest-match-first.
const COMPOSITES: &[&str] = &[
    "<<=", ">>=", "..=", "...", "::", "->", "=>", "==", "!=", "<=", ">=", "&&", "||", "<<", ">>",
    "+=", "-=", "*=", "/=", "%=", "^=", "&=", "|=", "..",
];

fn combine(tokens: &[&Token], src: &str) -> Vec<Atom> {
    let mut atoms: Vec<Atom> = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let t = tokens[i];
        let (n, kind) = match &t.kind {
            Tok::Punct(_) => {
                // Greedy maximal munch over span-adjacent puncts.
                let mut munch = 1;
                for want in COMPOSITES {
                    let n = want.len();
                    if i + n > tokens.len() {
                        continue;
                    }
                    let adjacent = (0..n).all(|k| {
                        matches!(tokens[i + k].kind, Tok::Punct(_))
                            && (k == 0 || tokens[i + k].start == tokens[i + k - 1].end)
                    });
                    if adjacent && src.get(t.start..tokens[i + n - 1].end) == Some(*want) {
                        munch = n;
                        break;
                    }
                }
                (munch, AtomKind::Op)
            }
            Tok::Ident(s) => (1, AtomKind::Ident(s.clone())),
            Tok::Num => (1, AtomKind::Num),
            Tok::Str(_) => (1, AtomKind::Str),
            Tok::Char => (1, AtomKind::Char),
            Tok::Lifetime => (1, AtomKind::Lifetime),
            // Comments were filtered out by the caller.
            Tok::Comment(_) | Tok::DocComment(_) => (1, AtomKind::Op),
        };
        let end = tokens[i + n - 1].end;
        atoms.push(Atom {
            text: src.get(t.start..end).unwrap_or_default().to_string(),
            start: t.start,
            end,
            line: t.line,
            kind,
        });
        i += n;
    }
    atoms
}

/// Identifier that names a type (CamelCase-ish or primitive): the shape
/// generic brackets wrap, so `<`/`>` beside one reads as a bracket.
fn type_like(id: &str) -> bool {
    const PRIMITIVES: &[&str] = &[
        "u8", "u16", "u32", "u64", "u128", "usize", "i8", "i16", "i32", "i64", "i128", "isize",
        "f32", "f64", "bool", "char", "str", "dyn", "impl",
    ];
    if PRIMITIVES.contains(&id) {
        return true;
    }
    let mut chars = id.chars();
    let first_upper = chars.next().is_some_and(|c| c.is_ascii_uppercase());
    // CamelCase (has a lowercase tail, no underscores) or a bare
    // single-capital generic parameter; SCREAMING_CASE constants are
    // expressions, not types.
    first_upper
        && !id.contains('_')
        && (id.len() == 1 || id.chars().any(|c| c.is_ascii_lowercase()))
}

fn is_ident(kind: &AtomKind) -> Option<&str> {
    match kind {
        AtomKind::Ident(s) => Some(s),
        _ => None,
    }
}

/// Can this atom end an expression (left operand of a binary op)?
fn expr_ender(a: &Atom) -> bool {
    match &a.kind {
        AtomKind::Ident(s) => !is_keyword_nonvalue(s),
        AtomKind::Num | AtomKind::Str | AtomKind::Char => true,
        AtomKind::Op => a.text == ")" || a.text == "]",
        AtomKind::Lifetime => false,
    }
}

/// Can this atom start an expression (right operand of a binary op)?
fn expr_starter(a: &Atom) -> bool {
    match &a.kind {
        AtomKind::Ident(s) => !is_keyword_nonvalue(s),
        AtomKind::Num | AtomKind::Str | AtomKind::Char => true,
        AtomKind::Op => a.text == "(",
        AtomKind::Lifetime => false,
    }
}

/// Keywords that never stand as a value operand.
fn is_keyword_nonvalue(id: &str) -> bool {
    const KW: &[&str] = &[
        "as", "break", "const", "continue", "crate", "else", "enum", "extern", "fn", "for", "if",
        "impl", "in", "let", "loop", "match", "mod", "move", "mut", "pub", "ref", "return",
        "static", "struct", "trait", "type", "unsafe", "use", "where", "while", "dyn",
    ];
    KW.contains(&id)
}

/// The 1-based line texts of `src`, trimmed, for mutant context.
fn line_text(src: &str, line: u32) -> String {
    src.lines().nth(line as usize - 1).unwrap_or_default().trim().to_string()
}

/// Enumerate every mutation site in one file. `rel_path` feeds the
/// mutant ids, so pass the same workspace-relative path on every
/// machine (forward slashes).
pub fn enumerate_source(rel_path: &str, src: &str) -> Vec<Mutant> {
    let tokens = lex(src);
    let tests = test_ranges(&tokens);
    let in_test = |line: u32| tests.iter().any(|&(a, b)| a <= line && line <= b);
    let code: Vec<&Token> =
        tokens.iter().filter(|t| !matches!(t.kind, Tok::Comment(_) | Tok::DocComment(_))).collect();
    let atoms = combine(&code, src);
    let mut out = Vec::new();
    let mut push = |op: &'static str, start: usize, end: usize, line: u32, replacement: String| {
        out.push(Mutant {
            id: mutant_id(rel_path, start, op, &replacement),
            file: rel_path.to_string(),
            line,
            op,
            start,
            end,
            original: src[start..end].to_string(),
            replacement,
            context: line_text(src, line),
        });
    };

    for (i, a) in atoms.iter().enumerate() {
        if in_test(a.line) {
            continue;
        }
        let prev = i.checked_sub(1).map(|p| &atoms[p]);
        let next = atoms.get(i + 1);

        // --- ord-relax: Ordering::{AcqRel,Acquire,Release} → Relaxed.
        if let Some(id) = is_ident(&a.kind) {
            if matches!(id, "AcqRel" | "Acquire" | "Release") {
                let path_prefixed = i >= 2
                    && atoms[i - 1].text == "::"
                    && is_ident(&atoms[i - 2].kind) == Some("Ordering");
                if path_prefixed {
                    push("ord-relax", a.start, a.end, a.line, "Relaxed".into());
                }
            }
            // --- sat-wrap: saturating_* ↔ wrapping_* calls.
            if next.is_some_and(|n| n.text == "(") {
                if let Some(rest) = id.strip_prefix("saturating_") {
                    push("sat-wrap", a.start, a.end, a.line, format!("wrapping_{rest}"));
                } else if let Some(rest) = id.strip_prefix("wrapping_") {
                    push("sat-wrap", a.start, a.end, a.line, format!("saturating_{rest}"));
                }
            }
            continue;
        }
        if !matches!(a.kind, AtomKind::Op) {
            continue;
        }

        // Neighbour shape for the ambiguous operators.
        let prev_ender = prev.is_some_and(expr_ender);
        let next_starter = next.is_some_and(expr_starter);
        let prev_type = prev.and_then(|p| is_ident(&p.kind)).is_some_and(type_like);
        let next_type = next.and_then(|n| is_ident(&n.kind)).is_some_and(type_like);
        let next_lifetime = next.is_some_and(|n| matches!(n.kind, AtomKind::Lifetime));
        let prev_turbofish = prev.is_some_and(|p| p.text == "::");
        // A `<`/`>` reads as a comparison only when both operands are
        // expression-shaped and neither side looks like a type.
        let comparison_shaped = prev_ender
            && next_starter
            && !prev_type
            && !next_type
            && !next_lifetime
            && !prev_turbofish;

        let swap: Option<&'static str> = match a.text.as_str() {
            "<" if comparison_shaped => Some("<="),
            ">" if comparison_shaped => Some(">="),
            "<=" => Some("<"),
            ">=" => Some(">"),
            "==" => Some("!="),
            "!=" => Some("=="),
            _ => None,
        };
        if let Some(rep) = swap {
            push("cmp-swap", a.start, a.end, a.line, rep.into());
        }

        // --- lit-bump: integer literal beside a genuine comparison.
        let is_cmp = matches!(a.text.as_str(), "<=" | ">=" | "==" | "!=")
            || (matches!(a.text.as_str(), "<" | ">") && comparison_shaped);
        if is_cmp {
            for side in [prev, next].into_iter().flatten() {
                if !matches!(side.kind, AtomKind::Num) || in_test(side.line) {
                    continue;
                }
                if let Some((value, suffix)) = parse_int(&side.text) {
                    push(
                        "lit-bump",
                        side.start,
                        side.end,
                        side.line,
                        format!("{}{}", value + 1, suffix),
                    );
                    if value > 0 {
                        push(
                            "lit-bump",
                            side.start,
                            side.end,
                            side.line,
                            format!("{}{}", value - 1, suffix),
                        );
                    }
                }
            }
        }

        // --- logic-swap: && ↔ || (prefix readings excluded by shape).
        if (a.text == "&&" || a.text == "||") && prev_ender && next_starter {
            let rep = if a.text == "&&" { "||" } else { "&&" };
            push("logic-swap", a.start, a.end, a.line, rep.into());
        }

        // --- arith-swap.
        let arith: Option<&'static str> = match a.text.as_str() {
            // Binary-position plain operators; `*` additionally must not
            // head a raw-pointer type.
            "+" if prev_ender && !prev_type && !next_type && !next_lifetime => Some("-"),
            "-" if prev_ender && next_starter => Some("+"),
            "*" if prev_ender
                && next_starter
                && !matches!(next.and_then(|n| is_ident(&n.kind)), Some("const" | "mut")) =>
            {
                Some("/")
            }
            "/" if prev_ender && next_starter => Some("*"),
            // Compound assignments are unambiguous.
            "+=" => Some("-="),
            "-=" => Some("+="),
            "*=" => Some("/="),
            "/=" => Some("*="),
            _ => None,
        };
        if let Some(rep) = arith {
            push("arith-swap", a.start, a.end, a.line, rep.into());
        }
    }
    out
}

/// Parse a decimal integer literal with optional `_` separators and an
/// optional `u*`/`i*` suffix. Floats, non-decimal radixes and
/// exponent forms return `None`.
fn parse_int(text: &str) -> Option<(u128, &str)> {
    if text.contains('.') {
        return None;
    }
    let bytes = text.as_bytes();
    if bytes.len() >= 2 && bytes[0] == b'0' && bytes[1].is_ascii_alphabetic() {
        return None; // 0x / 0o / 0b
    }
    let digits_end = bytes.iter().position(|b| !b.is_ascii_digit() && *b != b'_');
    let (digits, suffix) = match digits_end {
        Some(p) => text.split_at(p),
        None => (text, ""),
    };
    if digits.is_empty()
        || !(suffix.is_empty() || suffix.starts_with('u') || suffix.starts_with('i'))
    {
        return None;
    }
    let cleaned: String = digits.chars().filter(|c| *c != '_').collect();
    cleaned.parse::<u128>().ok().map(|v| (v, suffix))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ops_at(src: &str) -> Vec<(&'static str, String, String)> {
        enumerate_source("f.rs", src)
            .into_iter()
            .map(|m| (m.op, m.original, m.replacement))
            .collect()
    }

    #[test]
    fn ordering_downgrades_require_the_path_prefix() {
        let src = "//! d\nfn f(a: &AtomicU32) { a.store(1, Ordering::Release); }\n";
        let got = ops_at(src);
        assert!(got.contains(&("ord-relax", "Release".into(), "Relaxed".into())), "{got:?}");
        // A bare `Release` ident (say, an enum variant) is not a site.
        let none = ops_at("//! d\nfn g() -> Mode { Mode::Release }\n");
        assert!(none.iter().all(|(op, ..)| *op != "ord-relax"), "{none:?}");
    }

    #[test]
    fn comparisons_swap_and_generics_do_not() {
        let got = ops_at("//! d\nfn f(a: usize, cap: usize) -> bool { a <= cap }\n");
        assert!(got.contains(&("cmp-swap", "<=".into(), "<".into())), "{got:?}");
        let got = ops_at("//! d\nfn f(a: u64, b: u64) -> bool { a < b }\n");
        assert!(got.contains(&("cmp-swap", "<".into(), "<=".into())), "{got:?}");
        // Generic brackets, turbofish, fat arrows, shifts: untouched.
        for src in [
            "//! d\nfn f(v: Vec<u8>) -> Option<u32> { None }\n",
            "//! d\nfn f() { let x = Vec::<u8>::new(); }\n",
            "//! d\nfn f(x: u8) -> u8 { match x { 1 => 2, _ => 3 } }\n",
            "//! d\nfn f(x: u8) -> u8 { x << 2 }\n",
        ] {
            let got = ops_at(src);
            assert!(
                got.iter().all(|(op, o, _)| *op != "cmp-swap" && o != "<" && o != ">"),
                "{src}: {got:?}"
            );
        }
    }

    #[test]
    fn equality_swaps_both_ways() {
        let got = ops_at("//! d\nfn f(a: u8) -> bool { a == 0 || a != 9 }\n");
        assert!(got.contains(&("cmp-swap", "==".into(), "!=".into())));
        assert!(got.contains(&("cmp-swap", "!=".into(), "==".into())));
        assert!(got.contains(&("logic-swap", "||".into(), "&&".into())));
    }

    #[test]
    fn literals_bump_only_beside_comparisons() {
        let got = ops_at("//! d\nfn f(a: u64) -> bool { a >= 10 }\n");
        assert!(got.contains(&("lit-bump", "10".into(), "11".into())), "{got:?}");
        assert!(got.contains(&("lit-bump", "10".into(), "9".into())), "{got:?}");
        // Suffixes survive; zero does not bump down; floats and hex skip.
        let got = ops_at("//! d\nfn f(a: u64) -> bool { a > 4_096u64 }\n");
        assert!(got.contains(&("lit-bump", "4_096u64".into(), "4097u64".into())), "{got:?}");
        let got = ops_at("//! d\nfn f(a: u64) -> bool { a == 0 }\n");
        assert_eq!(got.iter().filter(|(op, ..)| *op == "lit-bump").count(), 1, "{got:?}");
        let got = ops_at("//! d\nfn f(a: f64, b: u64) -> bool { a < 1.5 && b < 0x1f }\n");
        assert!(got.iter().all(|(op, ..)| *op != "lit-bump"), "{got:?}");
        // An assignment literal with no comparison nearby is not a site.
        let got = ops_at("//! d\nfn f() -> u64 { let x = 10; x }\n");
        assert!(got.iter().all(|(op, ..)| *op != "lit-bump"), "{got:?}");
    }

    #[test]
    fn logic_swap_skips_references_and_closures() {
        for src in [
            "//! d\nfn f(x: &&u32) -> u32 { **x }\n",
            "//! d\nfn f() -> u32 { (|| 1)() }\n",
            "//! d\nfn f(v: Option<u32>) -> u32 { v.map_or_else(|| 0, |x| x) }\n",
        ] {
            let got = ops_at(src);
            assert!(got.iter().all(|(op, ..)| *op != "logic-swap"), "{src}: {got:?}");
        }
    }

    #[test]
    fn arithmetic_swaps_in_binary_position_only() {
        let got = ops_at("//! d\nfn f(a: u64, b: u64) -> u64 { a + b * 2 }\n");
        assert!(got.contains(&("arith-swap", "+".into(), "-".into())), "{got:?}");
        assert!(got.contains(&("arith-swap", "*".into(), "/".into())), "{got:?}");
        // Unary minus, deref, raw pointers, arrows, trait bounds: no.
        for src in [
            "//! d\nfn f(a: i64) -> i64 { -a }\n",
            "//! d\nfn f(a: &u64) -> u64 { *a }\n",
            "//! d\nfn f(p: *const u8) -> *const u8 { p }\n",
            "//! d\nfn f() -> u8 { 0 }\n",
            "//! d\nfn f<T: Send + Sync>(t: T) -> T { t }\n",
        ] {
            let got = ops_at(src);
            assert!(got.iter().all(|(op, ..)| *op != "arith-swap"), "{src}: {got:?}");
        }
        let got = ops_at("//! d\nfn f(a: &mut u64) { *a += 3; }\n");
        assert!(got.contains(&("arith-swap", "+=".into(), "-=".into())), "{got:?}");
    }

    #[test]
    fn saturating_wrapping_swap_both_ways() {
        let got = ops_at("//! d\nfn f(a: u64) -> u64 { a.saturating_sub(1).wrapping_add(2) }\n");
        assert!(got.contains(&("sat-wrap", "saturating_sub".into(), "wrapping_sub".into())));
        assert!(got.contains(&("sat-wrap", "wrapping_add".into(), "saturating_add".into())));
    }

    #[test]
    fn strings_comments_and_test_code_are_never_sites() {
        let src = "//! d\n\
                   // a < b && c == d in a comment\n\
                   fn f() -> &'static str { \"x < y && z\" }\n\
                   #[cfg(test)]\n\
                   mod tests {\n\
                       #[test]\n\
                       fn t() { assert!(1 < 2 && 3 == 3); }\n\
                   }\n";
        assert!(ops_at(src).is_empty(), "{:?}", ops_at(src));
    }

    #[test]
    fn applying_a_mutant_splices_exactly() {
        let src = "//! d\nfn f(a: u64) -> bool { a >= 10 }\n";
        let ms = enumerate_source("f.rs", src);
        let cmp = ms.iter().find(|m| m.op == "cmp-swap").unwrap();
        assert_eq!(cmp.apply(src), "//! d\nfn f(a: u64) -> bool { a > 10 }\n");
    }

    #[test]
    fn ids_are_stable_and_distinct() {
        let src = "//! d\nfn f(a: u64) -> bool { a >= 10 && a <= 20 }\n";
        let a = enumerate_source("crates/x/src/l.rs", src);
        let b = enumerate_source("crates/x/src/l.rs", src);
        assert_eq!(a, b);
        let mut ids: Vec<&str> = a.iter().map(|m| m.id.as_str()).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), a.len(), "duplicate mutant ids");
        // Same site, different file ⇒ different id.
        let c = enumerate_source("crates/y/src/l.rs", src);
        assert_ne!(a[0].id, c[0].id);
    }
}
