//! Property-based tests for the detection core.

use ah_core::defs::Definition;
use ah_core::detector::{Detector, DetectorConfig};
use ah_core::ecdf::Ecdf;
use ah_core::lists::{intersect, jaccard, level_counts};
use ah_intel::asn::AsnDb;
use ah_net::ipv4::Ipv4Addr4;
use ah_net::packet::ScanClass;
use ah_net::time::{Dur, Ts};
use ah_telescope::event::{DarknetEvent, EventKey, ToolCounts};
use proptest::prelude::*;
use std::collections::HashSet;

proptest! {
    /// ECDF invariants: cdf is monotone in x, quantile is the inverse in
    /// the sense that cdf(quantile(q)) >= q, and count_above is exact.
    #[test]
    fn ecdf_coherence(samples in proptest::collection::vec(0u64..10_000, 1..2000)) {
        let e = Ecdf::from_samples(samples.clone());
        // Quantile inverse property.
        for q in [0.0, 0.1, 0.5, 0.9, 0.99, 0.9999, 1.0] {
            let v = e.quantile(q).unwrap();
            prop_assert!(e.cdf(v) >= q - 1e-12, "q {} v {} cdf {}", q, v, e.cdf(v));
        }
        // count_above matches a naive count for arbitrary probes.
        for probe in [0u64, 1, 50, 500, 5000, 9_999, 20_000] {
            let naive = samples.iter().filter(|&&s| s > probe).count();
            prop_assert_eq!(e.count_above(probe), naive);
        }
        // cdf is monotone.
        let mut prev = 0.0;
        for x in (0..10_500).step_by(500) {
            let c = e.cdf(x);
            prop_assert!(c >= prev);
            prev = c;
        }
    }

    /// Jaccard similarity: bounded, symmetric, and 1.0 iff sets equal
    /// (for nonempty sets).
    #[test]
    fn jaccard_properties(
        a in proptest::collection::hash_set(0u32..200, 0..60),
        b in proptest::collection::hash_set(0u32..200, 0..60),
    ) {
        let sa: HashSet<Ipv4Addr4> = a.iter().map(|&x| Ipv4Addr4(x)).collect();
        let sb: HashSet<Ipv4Addr4> = b.iter().map(|&x| Ipv4Addr4(x)).collect();
        let j = jaccard(&sa, &sb);
        prop_assert!((0.0..=1.0).contains(&j));
        prop_assert_eq!(j, jaccard(&sb, &sa));
        if sa == sb {
            prop_assert!((j - 1.0).abs() < 1e-12);
        }
        if !sa.is_empty() && !sb.is_empty() && sa.is_disjoint(&sb) {
            prop_assert_eq!(j, 0.0);
        }
        // Intersection is symmetric and bounded.
        let i = intersect(&sa, &sb);
        prop_assert!(i.len() <= sa.len().min(sb.len()));
        prop_assert_eq!(&i, &intersect(&sb, &sa));
    }

    /// Level counts never exceed IP count and behave monotonically under
    /// the trivial registry.
    #[test]
    fn level_counts_bounds(ips in proptest::collection::hash_set(any::<u32>(), 0..100)) {
        let set: HashSet<Ipv4Addr4> = ips.iter().map(|&x| Ipv4Addr4(x)).collect();
        let db = AsnDb::new();
        let c = level_counts(&set, &db);
        prop_assert_eq!(c.ips as usize, set.len());
        prop_assert!(c.asns <= c.ips);
        prop_assert!(c.orgs <= c.ips);
        prop_assert!(c.countries <= c.ips);
    }

    /// Detector structural invariants over random event streams: daily ⊆
    /// yearly, active ⊆ yearly, D1 membership matches a naive filter,
    /// per-day packet attributions are conservative.
    #[test]
    fn detector_invariants(
        events in proptest::collection::vec(
            (0u8..40, 0u16..100, 0u64..10, 0u64..3, 1u64..5000, 1u32..1500),
            1..400,
        ),
    ) {
        let dark = 4096u32;
        let mut det = Detector::new(DetectorConfig::new(dark));
        let mut naive_d1: HashSet<Ipv4Addr4> = HashSet::new();
        for (src, port, day, span, packets, unique) in events {
            let unique = unique.min(packets as u32);
            let src_ip = Ipv4Addr4::new(10, 0, 0, src);
            let ev = DarknetEvent {
                key: EventKey { src: src_ip, dst_port: port, class: ScanClass::TcpSyn },
                start: Ts::from_days(day) + Dur::from_secs(10),
                end: Ts::from_days(day + span) + Dur::from_secs(20),
                packets,
                bytes: packets * 40,
                unique_dsts: unique,
                dark_size: dark,
                tools: ToolCounts { other: packets, ..Default::default() },
            };
            if f64::from(unique) / f64::from(dark) >= 0.10 {
                naive_d1.insert(src_ip);
            }
            det.ingest(&ev);
        }
        let report = det.finalize();
        prop_assert_eq!(report.hitters(Definition::AddressDispersion), &naive_d1);
        for def in Definition::ALL {
            let yearly = report.hitters(def);
            for day in 0..15u64 {
                if let Some(d) = report.daily_hitters(def, day) {
                    prop_assert!(d.is_subset(yearly));
                }
                if let Some(a) = report.active_hitters(def, day) {
                    prop_assert!(a.is_subset(yearly));
                }
                let ah = report.ah_packets(def, day);
                let all = report.day_all_packets.get(&day).copied().unwrap_or(0);
                prop_assert!(ah <= all);
            }
        }
    }
}
