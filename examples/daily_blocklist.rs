//! The paper's operational deliverable: daily lists of aggressive
//! scanners that operators could subscribe to and block.
//!
//! Simulates a week at the telescope, then writes one JSON blocklist per
//! day per definition under `out/blocklists/`, separating acknowledged
//! research scanners (which an operator may want to allow) from the
//! unacknowledged remainder. Also demonstrates the pcap writer by saving
//! a capture excerpt of the first day's darknet traffic.
//!
//! ```sh
//! cargo run --release --example daily_blocklist
//! ```

use aggressive_scanners::core::defs::Definition;
use aggressive_scanners::net::pcap::{PcapWriter, DEFAULT_SNAPLEN, LINKTYPE_RAW};
use aggressive_scanners::pipeline::{self, RunOptions};
use aggressive_scanners::simnet::scenario::{ScenarioConfig, Year};
use std::collections::BTreeSet;
use std::fs;
use std::path::Path;

struct Blocklist {
    day: u64,
    definition: &'static str,
    threshold_note: String,
    /// Hitters with no disclosed research intent — block candidates.
    unacknowledged: Vec<String>,
    /// Acknowledged research scanners — review before blocking.
    acknowledged: Vec<String>,
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn json_string_array(items: &[String], indent: &str) -> String {
    if items.is_empty() {
        return "[]".to_string();
    }
    let body: Vec<String> =
        items.iter().map(|s| format!("{indent}  \"{}\"", json_escape(s))).collect();
    format!("[\n{}\n{indent}]", body.join(",\n"))
}

impl Blocklist {
    /// Pretty-printed JSON; serialization in this workspace is
    /// hand-rolled (see vendor/README.md).
    fn to_json(&self) -> String {
        format!(
            "{{\n  \"day\": {},\n  \"definition\": \"{}\",\n  \"threshold_note\": \"{}\",\n  \
             \"unacknowledged\": {},\n  \"acknowledged\": {}\n}}\n",
            self.day,
            json_escape(self.definition),
            json_escape(&self.threshold_note),
            json_string_array(&self.unacknowledged, "  "),
            json_string_array(&self.acknowledged, "  "),
        )
    }
}

fn main() -> std::io::Result<()> {
    let days = 7;
    println!("simulating {days} days of darknet traffic...");
    let mut cfg = ScenarioConfig::darknet(Year::Y2022, days, 7);
    cfg.label = "blocklist-demo".into();
    let run = pipeline::run(cfg, RunOptions::darknet_only());

    let acked = run.world.acked_list(8);
    let rdns = run.world.rdns(64);
    let out_dir = Path::new("out/blocklists");
    fs::create_dir_all(out_dir)?;

    let mut written = 0;
    for day in 0..days {
        for def in Definition::ALL {
            let Some(hitters) = run.report.active_hitters(def, day) else { continue };
            let mut unacknowledged = BTreeSet::new();
            let mut acknowledged = BTreeSet::new();
            for ip in hitters {
                if acked.matches(*ip, &rdns).is_some() {
                    acknowledged.insert(ip.to_string());
                } else {
                    unacknowledged.insert(ip.to_string());
                }
            }
            let list = Blocklist {
                day,
                definition: def.short(),
                threshold_note: match def {
                    Definition::AddressDispersion => "event touched >= 10% of dark space".into(),
                    Definition::PacketVolume => {
                        format!("event packets > {} (top-0.01% ECDF)", run.report.d2_threshold)
                    }
                    Definition::DistinctPorts => {
                        format!("distinct ports/day >= {}", run.report.d3_threshold)
                    }
                },
                unacknowledged: unacknowledged.into_iter().collect(),
                acknowledged: acknowledged.into_iter().collect(),
            };
            let path = out_dir.join(format!("day{day}-{}.json", def.short().to_lowercase()));
            fs::write(&path, list.to_json())?;
            written += 1;
        }
    }
    println!("wrote {written} blocklists under {}", out_dir.display());

    // Bonus: persist a capture excerpt like a telescope operator would.
    // (Re-run the same seeded scenario and write the first 10k dark-bound
    // packets as a raw-IP pcap.)
    let mut cfg = ScenarioConfig::darknet(Year::Y2022, 1, 7);
    cfg.label = "pcap-excerpt".into();
    let mut sc = aggressive_scanners::simnet::scenario::Scenario::build(cfg);
    let dark = sc.world.config.dark;
    let file = fs::File::create("out/darknet_excerpt.pcap")?;
    let mut w = PcapWriter::new(std::io::BufWriter::new(file), LINKTYPE_RAW, DEFAULT_SNAPLEN)
        .expect("pcap header");
    while let Some(pkt) = sc.mux.next_packet() {
        if !dark.contains(pkt.dst) {
            continue;
        }
        w.write_packet(pkt.ts, &pkt.to_bytes()).expect("pcap record");
        if w.record_count() >= 10_000 {
            break;
        }
    }
    println!("wrote out/darknet_excerpt.pcap ({} records)", w.record_count());
    w.finish().expect("flush pcap");
    Ok(())
}
