//! Wire-level fingerprints of well-known scanning tools.
//!
//! The paper (following Durumeric et al. 2014, §4.2) attributes probes to
//! tools by invariants the tools stamp into header fields:
//!
//! * **ZMap** sets the IPv4 identification field to the constant 54321.
//! * **Masscan** sets `ip_id = dst_ip ⊕ dst_port ⊕ tcp_seq` (all reduced
//!   to 16 bits), so the receiver can validate responses statelessly.
//! * **Mirai** (used for the GreyNoise-style tagger, not in the paper's
//!   figure but the canonical botnet fingerprint) sets the TCP sequence
//!   number equal to the destination address.
//!
//! Anything else is classified `Other`.

use crate::packet::{PacketMeta, Transport};

/// The IP-ID constant stamped by ZMap.
pub const ZMAP_IP_ID: u16 = 54321;

/// Tool attribution for a single probe packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Tool {
    /// ZMap (fixed IP-ID 54321).
    ZMap,
    /// Masscan (IP-ID = dst xor port xor seq).
    Masscan,
    /// Mirai-style bots (seq = destination address).
    Mirai,
    /// No recognized fingerprint.
    Other,
}

impl Tool {
    /// Display name as used in Figure 4's legend. Mirai probes count as
    /// "Other" there (the figure only splits ZMap/Masscan/Other).
    pub fn figure4_bucket(self) -> &'static str {
        match self {
            Tool::ZMap => "ZMap",
            Tool::Masscan => "Masscan",
            Tool::Mirai | Tool::Other => "Other",
        }
    }
}

/// Compute the Masscan validation cookie for a probe.
///
/// Real masscan uses `syn_cookie(ip_them, port_them, ip_me, port_me, entropy)`;
/// the telescope-visible invariant reduced by Durumeric et al. is the
/// 16-bit XOR relation below, which is what both our generator and
/// classifier use.
pub fn masscan_ip_id(dst: crate::ipv4::Ipv4Addr4, dst_port: u16, tcp_seq: u32) -> u16 {
    let ip = dst.to_u32();
    let ip16 = (ip >> 16) as u16 ^ (ip & 0xffff) as u16;
    let seq16 = (tcp_seq >> 16) as u16 ^ (tcp_seq & 0xffff) as u16;
    ip16 ^ dst_port ^ seq16
}

/// The Mirai invariant: TCP sequence number equals destination address.
pub fn mirai_seq(dst: crate::ipv4::Ipv4Addr4) -> u32 {
    dst.to_u32()
}

/// Classify one packet by tool fingerprint.
///
/// Order matters: the ZMap constant is checked first (it is unambiguous),
/// then Mirai's seq==dst (checked before Masscan because a Mirai packet
/// only collides with the Masscan relation for one ip_id value in 65536),
/// then the Masscan cookie relation.
pub fn classify(pkt: &PacketMeta) -> Tool {
    if pkt.ip_id == ZMAP_IP_ID {
        return Tool::ZMap;
    }
    if let Transport::Tcp { dst_port, seq, .. } = pkt.transport {
        if seq == mirai_seq(pkt.dst) {
            return Tool::Mirai;
        }
        if pkt.ip_id == masscan_ip_id(pkt.dst, dst_port, seq) {
            return Tool::Masscan;
        }
    }
    Tool::Other
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ipv4::Ipv4Addr4;
    use crate::time::Ts;

    const S: Ipv4Addr4 = Ipv4Addr4::new(203, 0, 113, 5);
    const D: Ipv4Addr4 = Ipv4Addr4::new(192, 0, 2, 200);

    #[test]
    fn zmap_constant_detected() {
        let mut m = PacketMeta::tcp_syn(Ts::ZERO, S, D, 40000, 443);
        m.ip_id = ZMAP_IP_ID;
        assert_eq!(classify(&m), Tool::ZMap);
    }

    #[test]
    fn zmap_on_udp_and_icmp_too() {
        // ZMap stamps the IP header, so the fingerprint is visible on any
        // probe type it sends.
        let mut u = PacketMeta::udp_probe(Ts::ZERO, S, D, 1, 53);
        u.ip_id = ZMAP_IP_ID;
        assert_eq!(classify(&u), Tool::ZMap);
        let mut i = PacketMeta::icmp_echo(Ts::ZERO, S, D);
        i.ip_id = ZMAP_IP_ID;
        assert_eq!(classify(&i), Tool::ZMap);
    }

    #[test]
    fn masscan_cookie_detected() {
        let mut m = PacketMeta::tcp_syn(Ts::ZERO, S, D, 61000, 6379);
        if let Transport::Tcp { ref mut seq, .. } = m.transport {
            *seq = 0x1234_5678;
        }
        m.ip_id = masscan_ip_id(D, 6379, 0x1234_5678);
        assert_eq!(classify(&m), Tool::Masscan);
    }

    #[test]
    fn masscan_cookie_is_dst_sensitive() {
        // The same ip_id against a different destination fails the relation.
        let mut m = PacketMeta::tcp_syn(Ts::ZERO, S, D, 61000, 6379);
        m.ip_id = masscan_ip_id(Ipv4Addr4::new(192, 0, 2, 201), 6379, 0);
        assert_eq!(classify(&m), Tool::Other);
    }

    #[test]
    fn mirai_seq_detected() {
        let mut m = PacketMeta::tcp_syn(Ts::ZERO, S, D, 9999, 23);
        if let Transport::Tcp { ref mut seq, .. } = m.transport {
            *seq = D.to_u32();
        }
        m.ip_id = 7; // arbitrary non-matching id
        assert_eq!(classify(&m), Tool::Mirai);
    }

    #[test]
    fn plain_probe_is_other() {
        let mut m = PacketMeta::tcp_syn(Ts::ZERO, S, D, 1000, 22);
        m.ip_id = 11111;
        if let Transport::Tcp { ref mut seq, .. } = m.transport {
            *seq = 0xabcdef01;
        }
        assert_eq!(classify(&m), Tool::Other);
        let u = PacketMeta::udp_probe(Ts::ZERO, S, D, 1, 2);
        assert_eq!(classify(&u), Tool::Other);
    }

    #[test]
    fn figure4_buckets() {
        assert_eq!(Tool::ZMap.figure4_bucket(), "ZMap");
        assert_eq!(Tool::Masscan.figure4_bucket(), "Masscan");
        assert_eq!(Tool::Mirai.figure4_bucket(), "Other");
        assert_eq!(Tool::Other.figure4_bucket(), "Other");
    }

    #[test]
    fn masscan_id_is_deterministic() {
        let a = masscan_ip_id(D, 443, 99);
        let b = masscan_ip_id(D, 443, 99);
        assert_eq!(a, b);
        assert_ne!(a, masscan_ip_id(D, 444, 99));
    }
}
