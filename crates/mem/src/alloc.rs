//! The allocator shim: a [`GlobalAlloc`] wrapper over [`System`] that
//! tags every block with the subsystem charged for it.
//!
//! # Layout
//!
//! Every allocation is padded with a front header region of
//! `offset = max(align, 8)` bytes; the user pointer is `base + offset`
//! and the last 8 bytes of the header region (at `user - 8`) hold a
//! `u64`:
//!
//! ```text
//! [63..32] magic "ahme"   — debug-mode corruption tripwire
//! [8]      charged bit    — block is credited to an account
//! [7..0]   tag index      — which account (only meaningful if charged)
//! ```
//!
//! Because `offset` is a multiple of the alignment, the user pointer
//! keeps the requested alignment, and because the offset is derived
//! purely from the layout, `dealloc`/`realloc` recover the base
//! pointer without trusting the header. The header's *charged bit* —
//! not the global switch — decides debits, so a block charged while
//! accounting was on still drains its account if freed after the
//! switch is flipped off, and accounts can never go negative from
//! toggling.
//!
//! All functions here are called from inside the global allocator, so
//! they must never allocate or panic: accounting is plain relaxed
//! atomics ([`account`](crate::account)) and the thread-local tag is a
//! const-initialized `Cell` read with `try_with`.

use crate::account;
use std::alloc::{GlobalAlloc, Layout, System};
use std::ptr;

/// Bytes reserved immediately below the user pointer for the header
/// word.
const HEADER: usize = 8;
/// "ahme" — spotted in the high half of every header word.
const MAGIC_HI: u64 = 0x6168_6d65;
/// Header bit: this block is credited to the account in the low byte.
const CHARGED: u64 = 1 << 8;

/// Header offset for an alignment: a multiple of `align` that leaves
/// at least [`HEADER`] bytes below the user pointer.
#[inline]
fn offset_for(align: usize) -> usize {
    align.max(HEADER)
}

/// The padded layout actually passed to the system allocator, plus the
/// user-pointer offset. `None` when padding would overflow the layout
/// rules (the caller then reports allocation failure).
#[inline]
fn padded(layout: Layout) -> Option<(usize, Layout)> {
    let offset = offset_for(layout.align());
    let size = layout.size().checked_add(offset)?;
    let padded = Layout::from_size_align(size, layout.align()).ok()?;
    Some((offset, padded))
}

/// Abort (no panic machinery, which could allocate re-entrantly) on a
/// corrupt header in debug builds; release builds skip the check.
#[inline]
fn check_magic(hdr: u64) {
    if cfg!(debug_assertions) && (hdr >> 32) != MAGIC_HI {
        std::process::abort();
    }
}

/// Compose the header word written at `user - 8`, charging the account
/// when accounting is enabled. Returns the header and whether it
/// charged `size` bytes.
#[inline]
fn header_for_new_block(size: usize) -> u64 {
    if crate::accounting_enabled() {
        let tag = crate::current_tag_index();
        account::charge(tag, size);
        (MAGIC_HI << 32) | CHARGED | tag as u64
    } else {
        (MAGIC_HI << 32) | crate::Tag::Other as u64
    }
}

/// Tag-accounting wrapper over the system allocator. Install it as the
/// program's allocator to activate per-subsystem accounting:
///
/// ```ignore
/// #[global_allocator]
/// static ALLOC: ah_mem::TaggedSystem = ah_mem::TaggedSystem::new();
/// ```
///
/// Until [`set_accounting(true)`](crate::set_accounting) is called the
/// wrapper only pads each block and writes the 8-byte header.
#[derive(Debug, Default, Clone, Copy)]
pub struct TaggedSystem;

impl TaggedSystem {
    /// Const constructor for the `#[global_allocator]` static.
    pub const fn new() -> TaggedSystem {
        TaggedSystem
    }
}

// SAFETY: the wrapper delegates every allocation to `System` with a
// layout padded by `offset = max(align, 8)`: same alignment, size
// grown by a multiple of the alignment, so `base + offset` satisfies
// the caller's layout and leaves the header word inside the block.
// `dealloc`/`realloc` recompute the identical offset from the caller's
// layout (the GlobalAlloc contract guarantees it matches the original
// `alloc`) to recover the exact base pointer and padded layout handed
// to `System`. Accounting is relaxed atomics and a const-init TLS read
// — no allocation, no panic — so the shim cannot re-enter itself.
unsafe impl GlobalAlloc for TaggedSystem {
    #[inline]
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let Some((offset, padded)) = padded(layout) else {
            return ptr::null_mut();
        };
        // SAFETY: `padded` is a valid nonzero-size layout (user size
        // plus a nonzero header offset, overflow-checked above).
        let base = unsafe { System.alloc(padded) };
        if base.is_null() {
            return base;
        }
        // SAFETY: `base` points at `padded.size() >= offset + size`
        // bytes we own; `user = base + offset` stays in-bounds, and the
        // header word at `user - HEADER` lies within the padding
        // (`offset >= HEADER`). `write_unaligned` because the header
        // slot is only 8-aligned when the block is.
        unsafe {
            let user = base.add(offset);
            let hdr = header_for_new_block(layout.size());
            user.sub(HEADER).cast::<u64>().write_unaligned(hdr);
            user
        }
    }

    // SAFETY: caller upholds the GlobalAlloc contract (valid layout);
    // delegation and header placement are identical to `alloc`.
    #[inline]
    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        let Some((offset, padded)) = padded(layout) else {
            return ptr::null_mut();
        };
        // SAFETY: as in `alloc`; the user region past the header stays
        // zeroed because the header write touches only the padding.
        unsafe {
            let base = System.alloc_zeroed(padded);
            if base.is_null() {
                return base;
            }
            let user = base.add(offset);
            let hdr = header_for_new_block(layout.size());
            user.sub(HEADER).cast::<u64>().write_unaligned(hdr);
            user
        }
    }

    // SAFETY: caller passes the pointer and layout from a prior `alloc`
    // on this allocator, per the GlobalAlloc contract.
    #[inline]
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        let offset = offset_for(layout.align());
        // SAFETY: a live block exists with this layout (GlobalAlloc
        // contract), so the identical padded size/align pair already
        // passed `Layout` validation in `alloc`; recomputing it
        // unchecked avoids re-validating on the free hot path.
        let padded =
            unsafe { Layout::from_size_align_unchecked(layout.size() + offset, layout.align()) };
        // SAFETY: `ptr` came from our `alloc` with this layout, so the
        // header word sits at `ptr - HEADER` inside the block and the
        // base pointer handed to `System` is `ptr - offset` with the
        // identical recomputed `padded` layout.
        unsafe {
            let hdr = ptr.sub(HEADER).cast::<u64>().read_unaligned();
            check_magic(hdr);
            if hdr & CHARGED != 0 {
                account::discharge((hdr & 0xff) as u8, layout.size());
            }
            System.dealloc(ptr.sub(offset), padded);
        }
    }

    // SAFETY: caller passes a live block's pointer and layout, per the
    // GlobalAlloc contract; the new size is overflow-checked below.
    #[inline]
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let Some((offset, old_padded)) = padded(layout) else {
            return ptr::null_mut();
        };
        let Some(new_padded_size) = new_size.checked_add(offset) else {
            return ptr::null_mut();
        };
        if Layout::from_size_align(new_padded_size, layout.align()).is_err() {
            return ptr::null_mut();
        }
        // SAFETY: `ptr - offset`/`old_padded` reconstruct the original
        // system allocation (same deterministic padding), and the new
        // padded size is layout-valid for this alignment (checked
        // above). On failure the old block is untouched, so accounts
        // stay accurate by doing nothing.
        let new_base = unsafe { System.realloc(ptr.sub(offset), old_padded, new_padded_size) };
        if new_base.is_null() {
            return new_base;
        }
        // SAFETY: the system allocator preserved the leading
        // `min(old, new)` bytes, which include our header region
        // (alignment, and hence `offset`, is unchanged), so the header
        // word at `user - HEADER` is the original block's.
        unsafe {
            let user = new_base.add(offset);
            let hdr_slot = user.sub(HEADER).cast::<u64>();
            let hdr = hdr_slot.read_unaligned();
            check_magic(hdr);
            if hdr & CHARGED != 0 {
                // Keep the charge under the block's original tag.
                account::adjust((hdr & 0xff) as u8, layout.size(), new_size);
            } else if crate::accounting_enabled() {
                // Block predates accounting: start charging it now, at
                // its new size, under the current scope.
                let tag = crate::current_tag_index();
                account::charge(tag, new_size);
                hdr_slot.write_unaligned((MAGIC_HI << 32) | CHARGED | tag as u64);
            }
            user
        }
    }
}
