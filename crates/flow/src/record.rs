//! Flow records and the NetFlow v5 export format.

use ah_net::error::{NetError, Result};
use ah_net::ipv4::Ipv4Addr4;
use ah_net::packet::PacketMeta;
use ah_net::time::Ts;

/// The 5-tuple keying a flow.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FlowKey {
    /// Source address.
    pub src: Ipv4Addr4,
    /// Destination address.
    pub dst: Ipv4Addr4,
    /// Source port (0 for port-less protocols).
    pub src_port: u16,
    /// Destination port (0 for port-less protocols).
    pub dst_port: u16,
    /// IP protocol number.
    pub protocol: u8,
}

impl FlowKey {
    /// Key for a packet (ports are 0 for port-less protocols).
    pub fn of(pkt: &PacketMeta) -> FlowKey {
        FlowKey {
            src: pkt.src,
            dst: pkt.dst,
            src_port: pkt.src_port().unwrap_or(0),
            dst_port: pkt.dst_port().unwrap_or(0),
            protocol: pkt.protocol(),
        }
    }
}

/// One exported flow record.
///
/// `packets`/`bytes` count *sampled* packets; multiply by the sampling
/// rate (or use [`crate::sampler::Sampler::estimate`]) for wire totals.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlowRecord {
    /// The flow's 5-tuple.
    pub key: FlowKey,
    /// Router that exported the record.
    pub router: u8,
    /// Ingress (into the ISP) or egress.
    pub direction: crate::router::Direction,
    /// Timestamp of the first sampled packet.
    pub first: Ts,
    /// Timestamp of the last sampled packet.
    pub last: Ts,
    /// Sampled packet count.
    pub packets: u64,
    /// Sampled byte count.
    pub bytes: u64,
    /// OR of TCP flags seen (0 for non-TCP).
    pub tcp_flags: u8,
}

impl FlowRecord {
    /// Day index of the flow's first packet.
    pub fn day(&self) -> u64 {
        self.first.day()
    }
}

/// NetFlow v5 header length.
pub const V5_HEADER_LEN: usize = 24;
/// NetFlow v5 record length.
pub const V5_RECORD_LEN: usize = 48;
/// Maximum records per v5 export packet.
pub const V5_MAX_RECORDS: usize = 30;

/// Encode up to [`V5_MAX_RECORDS`] flow records as one NetFlow v5 export
/// packet. `sampling_rate` goes in the header's sampling-interval field
/// (mode bits set to 0b01 = packet-interval sampling).
///
/// Timestamps: v5 expresses flow times as router `SysUptime` millis; we
/// export with boot time = experiment epoch, so uptime == `Ts` millis.
/// Flows older than ~49.7 days wrap, as on real hardware.
pub fn encode_v5(
    records: &[FlowRecord],
    export_ts: Ts,
    flow_sequence: u32,
    sampling_rate: u16,
) -> Vec<u8> {
    assert!(records.len() <= V5_MAX_RECORDS, "v5 packets carry at most 30 records");
    let mut out = Vec::with_capacity(V5_HEADER_LEN + records.len() * V5_RECORD_LEN);
    out.extend_from_slice(&5u16.to_be_bytes());
    out.extend_from_slice(&(records.len() as u16).to_be_bytes());
    out.extend_from_slice(&((export_ts.micros() / 1000) as u32).to_be_bytes()); // SysUptime
    out.extend_from_slice(&(export_ts.secs() as u32).to_be_bytes());
    out.extend_from_slice(&((export_ts.subsec_micros()) * 1000).to_be_bytes()); // nsecs
    out.extend_from_slice(&flow_sequence.to_be_bytes());
    out.push(0); // engine type
    out.push(records.first().map_or(0, |r| r.router)); // engine id: router
    out.extend_from_slice(&((0b01u16 << 14) | (sampling_rate & 0x3fff)).to_be_bytes());
    for r in records {
        out.extend_from_slice(&r.key.src.octets());
        out.extend_from_slice(&r.key.dst.octets());
        out.extend_from_slice(&[0u8; 4]); // nexthop
        let (input, output) = match r.direction {
            crate::router::Direction::Ingress => (1u16, 2u16),
            crate::router::Direction::Egress => (2u16, 1u16),
        };
        out.extend_from_slice(&input.to_be_bytes());
        out.extend_from_slice(&output.to_be_bytes());
        out.extend_from_slice(&(r.packets as u32).to_be_bytes());
        out.extend_from_slice(&(r.bytes as u32).to_be_bytes());
        out.extend_from_slice(&((r.first.micros() / 1000) as u32).to_be_bytes());
        out.extend_from_slice(&((r.last.micros() / 1000) as u32).to_be_bytes());
        out.extend_from_slice(&r.key.src_port.to_be_bytes());
        out.extend_from_slice(&r.key.dst_port.to_be_bytes());
        out.push(0); // pad1
        out.push(r.tcp_flags);
        out.push(r.key.protocol);
        out.push(0); // tos
        out.extend_from_slice(&[0u8; 4]); // src_as, dst_as
        out.extend_from_slice(&[0u8; 2]); // src_mask, dst_mask
        out.extend_from_slice(&[0u8; 2]); // pad2
    }
    out
}

/// Decode a NetFlow v5 export packet back into flow records.
pub fn decode_v5(data: &[u8]) -> Result<Vec<FlowRecord>> {
    if data.len() < V5_HEADER_LEN {
        return Err(NetError::Truncated {
            layer: "netflow-v5",
            needed: V5_HEADER_LEN,
            got: data.len(),
        });
    }
    let version = u16::from_be_bytes([data[0], data[1]]);
    if version != 5 {
        return Err(NetError::Unsupported {
            layer: "netflow-v5",
            field: "version",
            value: u64::from(version),
        });
    }
    let count = usize::from(u16::from_be_bytes([data[2], data[3]]));
    let need = V5_HEADER_LEN + count * V5_RECORD_LEN;
    if count > V5_MAX_RECORDS || data.len() < need {
        return Err(NetError::BadLength { layer: "netflow-v5", value: count });
    }
    let router = data[21];
    let mut records = Vec::with_capacity(count);
    for i in 0..count {
        let r = &data[V5_HEADER_LEN + i * V5_RECORD_LEN..V5_HEADER_LEN + (i + 1) * V5_RECORD_LEN];
        let input = u16::from_be_bytes([r[12], r[13]]);
        records.push(FlowRecord {
            key: FlowKey {
                src: Ipv4Addr4::from_octets([r[0], r[1], r[2], r[3]]),
                dst: Ipv4Addr4::from_octets([r[4], r[5], r[6], r[7]]),
                src_port: u16::from_be_bytes([r[32], r[33]]),
                dst_port: u16::from_be_bytes([r[34], r[35]]),
                protocol: r[38],
            },
            router,
            direction: if input == 1 {
                crate::router::Direction::Ingress
            } else {
                crate::router::Direction::Egress
            },
            first: Ts::from_millis(u64::from(u32::from_be_bytes([r[24], r[25], r[26], r[27]]))),
            last: Ts::from_millis(u64::from(u32::from_be_bytes([r[28], r[29], r[30], r[31]]))),
            packets: u64::from(u32::from_be_bytes([r[16], r[17], r[18], r[19]])),
            bytes: u64::from(u32::from_be_bytes([r[20], r[21], r[22], r[23]])),
            tcp_flags: r[37],
        });
    }
    Ok(records)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::router::Direction;

    fn rec(n: u8) -> FlowRecord {
        FlowRecord {
            key: FlowKey {
                src: Ipv4Addr4::new(203, 0, 113, n),
                dst: Ipv4Addr4::new(10, 9, 8, 7),
                src_port: 40000 + u16::from(n),
                dst_port: 6379,
                protocol: 6,
            },
            router: 1,
            direction: if n.is_multiple_of(2) { Direction::Ingress } else { Direction::Egress },
            first: Ts::from_millis(1_000 + u64::from(n)),
            last: Ts::from_millis(2_000 + u64::from(n)),
            packets: 5 + u64::from(n),
            bytes: 200 + u64::from(n),
            tcp_flags: 0x02,
        }
    }

    #[test]
    fn flow_key_of_packet() {
        let p = PacketMeta::tcp_syn(
            Ts::ZERO,
            Ipv4Addr4::new(1, 2, 3, 4),
            Ipv4Addr4::new(5, 6, 7, 8),
            1234,
            22,
        );
        let k = FlowKey::of(&p);
        assert_eq!(k.src_port, 1234);
        assert_eq!(k.dst_port, 22);
        assert_eq!(k.protocol, 6);
        let icmp = PacketMeta::icmp_echo(Ts::ZERO, p.src, p.dst);
        let k2 = FlowKey::of(&icmp);
        assert_eq!((k2.src_port, k2.dst_port, k2.protocol), (0, 0, 1));
    }

    #[test]
    fn v5_roundtrip() {
        let records: Vec<FlowRecord> = (0..7).map(rec).collect();
        let bytes = encode_v5(&records, Ts::from_secs(100), 42, 1000);
        assert_eq!(bytes.len(), V5_HEADER_LEN + 7 * V5_RECORD_LEN);
        let decoded = decode_v5(&bytes).unwrap();
        assert_eq!(decoded, records);
    }

    #[test]
    fn v5_empty_packet() {
        let bytes = encode_v5(&[], Ts::ZERO, 0, 1000);
        assert_eq!(decode_v5(&bytes).unwrap(), vec![]);
    }

    #[test]
    fn v5_rejects_wrong_version() {
        let mut bytes = encode_v5(&[rec(0)], Ts::ZERO, 0, 1000);
        bytes[1] = 9;
        assert!(matches!(decode_v5(&bytes), Err(NetError::Unsupported { .. })));
    }

    #[test]
    fn v5_rejects_truncation() {
        let bytes = encode_v5(&[rec(0), rec(1)], Ts::ZERO, 0, 1000);
        for cut in [0, 10, V5_HEADER_LEN + 1, bytes.len() - 1] {
            assert!(decode_v5(&bytes[..cut]).is_err(), "cut {cut}");
        }
    }

    #[test]
    fn v5_rejects_absurd_count() {
        let mut bytes = encode_v5(&[rec(0)], Ts::ZERO, 0, 1000);
        bytes[2..4].copy_from_slice(&100u16.to_be_bytes());
        assert!(matches!(decode_v5(&bytes), Err(NetError::BadLength { .. })));
    }

    #[test]
    #[should_panic(expected = "at most 30")]
    fn v5_rejects_oversized_batch() {
        let records: Vec<FlowRecord> = (0..31).map(|i| rec(i as u8)).collect();
        let _ = encode_v5(&records, Ts::ZERO, 0, 1000);
    }

    #[test]
    fn record_day() {
        let mut r = rec(0);
        r.first = Ts::from_days(5) + ah_net::time::Dur::from_secs(1);
        assert_eq!(r.day(), 5);
    }
}
