//! Border routers and the ISP model.
//!
//! The paper's network-impact numbers come from three core routers whose
//! *peering arrangements* determine which external traffic enters where
//! (Table 2's router-1 sees most scanner traffic because its tier-1
//! upstreams carry the Europe/Asia sources that dominate definition-1
//! hitters). We model that with a longest-prefix routing policy from
//! external source/destination prefixes to border routers.
//!
//! Only *border-crossing* packets are processed: NetFlow on the paper's
//! routers samples ingress/egress interfaces, and traffic that stays
//! inside the ISP — notably user traffic served by in-network content
//! caches — never reaches them. That bypass is what "amplifies" scanner
//! impact percentages at Merit relative to the cache-less CU network.

use crate::cache::{CacheStats, FlowCache};
use crate::record::FlowRecord;
use crate::sampler::Sampler;
use ah_mem::{MemScope, Tag};
use ah_net::ipv4::Ipv4Addr4;
use ah_net::packet::PacketMeta;
use ah_net::prefix::{Prefix, PrefixMap, PrefixSet};
use ah_net::time::Ts;
use std::collections::HashMap;

/// Identifier of a border router (1-based, as in the paper's tables).
pub type RouterId = u8;

/// Which way a packet crosses the ISP border.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Direction {
    /// From the Internet into the ISP.
    Ingress,
    /// From the ISP out to the Internet.
    Egress,
}

/// Per-day ground-truth counters for one router (the "all routed packets"
/// denominator of Tables 2 and 4 — what an unsampled line-card counter
/// would report).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RouterDayCounter {
    /// Packets routed that day.
    pub packets: u64,
    /// Bytes routed that day.
    pub bytes: u64,
}

/// Per-(router, source) sampler phase.
///
/// Staggers where each source's systematic 1:N pattern starts so
/// sources (and routers) don't select in lockstep, while staying a pure
/// function of `(router, src)` — the property that lets the sharded
/// parallel pipeline key samplers by source with no shared counter
/// (`ARCHITECTURE.md` §11). splitmix64-style finalizer.
fn sampler_phase(router: RouterId, src: Ipv4Addr4) -> u64 {
    let mut z =
        (u64::from(src.to_u32()) << 8 | u64::from(router)).wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// One border router: per-source samplers + flow cache + truth counters.
pub struct BorderRouter {
    /// Router identifier (1-based, as in the paper's tables).
    pub id: RouterId,
    /// NetFlow sampling rate (1:N), shared by every per-source sampler.
    sampling_rate: u64,
    /// One systematic [`Sampler`] per source address, phase-staggered by
    /// [`sampler_phase`]. Keying the sampler by source makes every
    /// selection decision a pure function of the per-source packet
    /// subsequence, so source-sharded runs reproduce serial selections
    /// exactly; aggregate selection is still ~1:N.
    samplers: HashMap<u32, Sampler>,
    cache: FlowCache,
    /// Ground truth packets per day index.
    day_counters: HashMap<u64, RouterDayCounter>,
    /// Telemetry for sampler decisions (inert until
    /// [`IspModel::set_recorder`]).
    m_seen: ah_obs::Counter,
    m_selected: ah_obs::Counter,
}

impl BorderRouter {
    fn new(id: RouterId, sampling_rate: u64) -> BorderRouter {
        BorderRouter {
            id,
            sampling_rate,
            samplers: HashMap::new(),
            cache: FlowCache::new(id),
            day_counters: HashMap::new(),
            m_seen: ah_obs::Counter::default(),
            m_selected: ah_obs::Counter::default(),
        }
    }

    fn set_recorder(&mut self, rec: &ah_obs::Recorder) {
        let router = self.id.to_string();
        self.m_seen =
            rec.counter_with("ah_flow_sampler_packets_seen_total", &[("router", &router)]);
        self.m_selected =
            rec.counter_with("ah_flow_sampler_packets_selected_total", &[("router", &router)]);
        self.cache.set_recorder(rec);
    }

    fn observe(&mut self, pkt: &PacketMeta, direction: Direction) {
        let c = self.day_counters.entry(pkt.ts.day()).or_default();
        c.packets += 1;
        c.bytes += u64::from(pkt.wire_len);
        self.m_seen.inc();
        let (id, rate) = (self.id, self.sampling_rate);
        let sampler = self
            .samplers
            .entry(pkt.src.to_u32())
            .or_insert_with(|| Sampler::new(rate, sampler_phase(id, pkt.src)));
        if sampler.sample() {
            self.m_selected.inc();
            self.cache.observe(pkt, direction);
        }
    }

    /// Ground-truth counter for a day.
    pub fn day_counter(&self, day: u64) -> RouterDayCounter {
        self.day_counters.get(&day).cloned().unwrap_or_default()
    }

    /// All per-day counters.
    pub fn day_counters(&self) -> &HashMap<u64, RouterDayCounter> {
        &self.day_counters
    }

    /// This router's flow-cache input-fate counters.
    pub fn cache_stats(&self) -> CacheStats {
        self.cache.stats()
    }
}

/// Where a packet went, from the ISP's point of view.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Disposition {
    /// Crossed the border at a router.
    Border(RouterId, Direction),
    /// Stayed inside the ISP (e.g. user ↔ in-net content cache).
    Internal,
    /// Neither endpoint is ours; not our traffic.
    Transit,
}

/// A peering/routing policy: which border router carries a packet between
/// an `external` and an `internal` address.
///
/// Real ISPs pick the border by BGP best path, which depends on both the
/// remote origin (which upstream announces it) and the local prefix (how
/// the ISP announces itself per point of presence). Policies that only
/// look at the external side can use [`PrefixRoutePolicy`].
pub trait RoutePolicy {
    /// The border router carrying traffic between `external` and `internal`.
    fn route(&self, external: Ipv4Addr4, internal: Ipv4Addr4) -> RouterId;
}

/// Longest-prefix policy over the external address only.
#[derive(Debug, Clone)]
pub struct PrefixRoutePolicy {
    routes: PrefixMap<RouterId>,
    default_router: RouterId,
}

impl PrefixRoutePolicy {
    /// A policy from explicit routes, falling back to `default_router`.
    pub fn new(routes: Vec<(Prefix, RouterId)>, default_router: RouterId) -> PrefixRoutePolicy {
        let mut map = PrefixMap::new();
        for (p, r) in routes {
            map.insert(p, r);
        }
        PrefixRoutePolicy { routes: map, default_router }
    }
}

impl RoutePolicy for PrefixRoutePolicy {
    fn route(&self, external: Ipv4Addr4, _internal: Ipv4Addr4) -> RouterId {
        self.routes.lookup(external).copied().unwrap_or(self.default_router)
    }
}

/// Configuration of an ISP model.
pub struct IspConfig {
    /// The ISP's own (internal) address space.
    pub internal: PrefixSet,
    /// Peering policy choosing the border router.
    pub policy: Box<dyn RoutePolicy>,
    /// Router ids to instantiate.
    pub routers: Vec<RouterId>,
    /// NetFlow sampling rate (1:N).
    pub sampling_rate: u64,
}

impl IspConfig {
    /// Convenience: external-prefix routing (see [`PrefixRoutePolicy`]).
    pub fn with_prefix_routes(
        internal: PrefixSet,
        routes: Vec<(Prefix, RouterId)>,
        default_router: RouterId,
        routers: Vec<RouterId>,
        sampling_rate: u64,
    ) -> IspConfig {
        IspConfig {
            internal,
            policy: Box::new(PrefixRoutePolicy::new(routes, default_router)),
            routers,
            sampling_rate,
        }
    }
}

/// The ISP: border routers plus routing policy.
pub struct IspModel {
    internal: PrefixSet,
    policy: Box<dyn RoutePolicy>,
    routers: Vec<BorderRouter>,
    sampling_rate: u64,
    /// Packets that stayed internal (cache-served etc.), per day.
    internal_by_day: HashMap<u64, u64>,
    /// Trace handle (inert until [`IspModel::set_tracer`]).
    tracer: ah_trace::Tracer,
}

impl IspModel {
    /// Build the ISP: one [`BorderRouter`] per configured id.
    pub fn new(cfg: IspConfig) -> IspModel {
        IspModel {
            internal: cfg.internal,
            policy: cfg.policy,
            routers: cfg
                .routers
                .into_iter()
                .map(|id| BorderRouter::new(id, cfg.sampling_rate))
                .collect(),
            sampling_rate: cfg.sampling_rate,
            internal_by_day: HashMap::new(),
            tracer: ah_trace::Tracer::noop(),
        }
    }

    fn route(&self, external: Ipv4Addr4, internal: Ipv4Addr4) -> RouterId {
        self.policy.route(external, internal)
    }

    fn router_mut(&mut self, id: RouterId) -> Option<&mut BorderRouter> {
        self.routers.iter_mut().find(|r| r.id == id)
    }

    /// Attach live telemetry instruments (`ah_flow_sampler_*` per router
    /// and `ah_flow_cache_*` for every router's flow cache).
    /// Observation-only: routing, sampling and export are unchanged.
    pub fn set_recorder(&mut self, rec: &ah_obs::Recorder) {
        // Instruments are interned in the recorder, which outlives any
        // run — charge them to Obs, not the run-scoped Flow tag.
        let _mem = MemScope::enter(Tag::Obs);
        for r in &mut self.routers {
            r.set_recorder(rec);
        }
    }

    /// Attach a tracer: sampled packet journeys get an
    /// `ah_flow_router_observe` instant as they cross a border router,
    /// and cache sweeps get an `ah_flow_router_sweep` span.
    /// Observation-only: routing, sampling and export are unchanged.
    pub fn set_tracer(&mut self, tracer: &ah_trace::Tracer) {
        self.tracer = tracer.clone();
    }

    /// Border router by id.
    pub fn router(&self, id: RouterId) -> Option<&BorderRouter> {
        self.routers.iter().find(|r| r.id == id)
    }

    /// Ids of all routers.
    pub fn router_ids(&self) -> Vec<RouterId> {
        self.routers.iter().map(|r| r.id).collect()
    }

    /// Where this packet would go — a pure function of the address plan
    /// and routing policy, with no side effects on the model.
    pub fn disposition(&self, pkt: &PacketMeta) -> Disposition {
        let src_in = self.internal.contains(pkt.src);
        let dst_in = self.internal.contains(pkt.dst);
        match (src_in, dst_in) {
            (false, true) => Disposition::Border(self.route(pkt.src, pkt.dst), Direction::Ingress),
            (true, false) => Disposition::Border(self.route(pkt.dst, pkt.src), Direction::Egress),
            (true, true) => Disposition::Internal,
            (false, false) => Disposition::Transit,
        }
    }

    /// Process one packet through the ISP.
    pub fn observe(&mut self, pkt: &PacketMeta) -> Disposition {
        // Deliberately NO memory scope on this per-packet path; the
        // engine's tagged consume path brackets the call with
        // `ah_mem::tag_swap` when accounting is on (see
        // `ah_telescope::Telescope::observe` for the rationale).
        let disposition = self.disposition(pkt);
        match disposition {
            Disposition::Border(id, dir) => {
                let journey = self.tracer.journey_id(pkt.src.to_u32());
                if journey != 0 {
                    self.tracer.journey_instant("ah_flow_router_observe", journey);
                }
                if let Some(r) = self.router_mut(id) {
                    r.observe(pkt, dir);
                }
            }
            Disposition::Internal => {
                *self.internal_by_day.entry(pkt.ts.day()).or_default() += 1;
            }
            Disposition::Transit => {}
        }
        disposition
    }

    /// Sweep all flow caches as of `now`.
    pub fn sweep(&mut self, now: Ts) {
        let _mem = MemScope::enter(Tag::Flow);
        let _trace = self.tracer.span("ah_flow_router_sweep");
        for r in &mut self.routers {
            r.cache.sweep(now);
        }
    }

    /// Flow-cache input-fate counters aggregated over all border routers.
    /// Read before [`IspModel::finish`] consumes the model.
    pub fn cache_stats(&self) -> CacheStats {
        let mut total = CacheStats::default();
        for r in &self.routers {
            total.merge(&r.cache.stats());
        }
        total
    }

    /// Internal (border-bypassing) packets for a day.
    pub fn internal_packets(&self, day: u64) -> u64 {
        self.internal_by_day.get(&day).copied().unwrap_or(0)
    }

    /// End the measurement: flush all caches into a dataset.
    pub fn finish(mut self) -> FlowDataset {
        let _mem = MemScope::enter(Tag::Flow);
        let mut records = Vec::new();
        let mut router_days = HashMap::new();
        for r in &mut self.routers {
            records.extend(r.cache.flush());
            for (day, c) in &r.day_counters {
                router_days.insert((r.id, *day), c.clone());
            }
        }
        // Total order over record content: HashMap drain order must never
        // leak into the dataset, so ties on (first, src, dst_port) are
        // broken by every remaining field. Records identical in all sort
        // fields are interchangeable, making the order canonical — the
        // parallel pipeline relies on this to merge per-shard datasets
        // into the bitwise-identical serial result.
        records.sort_by_key(canonical_record_key);
        FlowDataset { records, sampling_rate: self.sampling_rate, router_days }
    }
}

/// The canonical (total) sort key for exported flow records.
///
/// Covers every field of the record, so any two streams containing the
/// same multiset of records sort to the same sequence — the invariant
/// that makes per-shard flow datasets mergeable into a bitwise-identical
/// serial result.
#[allow(clippy::type_complexity)]
pub fn canonical_record_key(
    r: &FlowRecord,
) -> (Ts, Ipv4Addr4, u16, Ipv4Addr4, u16, u8, RouterId, u8, Ts, u64, u64, u8) {
    (
        r.first,
        r.key.src,
        r.key.dst_port,
        r.key.dst,
        r.key.src_port,
        r.key.protocol,
        r.router,
        match r.direction {
            Direction::Ingress => 0,
            Direction::Egress => 1,
        },
        r.last,
        r.packets,
        r.bytes,
        r.tcp_flags,
    )
}

/// A completed flow-measurement campaign: every exported record plus the
/// ground-truth per-router-day totals.
#[derive(Debug, Clone)]
pub struct FlowDataset {
    /// Every record exported by any router, in export order.
    pub records: Vec<FlowRecord>,
    /// The 1:N sampling rate the routers ran at.
    pub sampling_rate: u64,
    /// Ground truth (router, day) → processed packet counters.
    pub router_days: HashMap<(RouterId, u64), RouterDayCounter>,
}

impl FlowDataset {
    /// Ground-truth packets a router processed in a day.
    pub fn router_day_packets(&self, router: RouterId, day: u64) -> u64 {
        self.router_days.get(&(router, day)).map_or(0, |c| c.packets)
    }

    /// Estimated wire packets for a sampled count.
    pub fn estimate(&self, sampled: u64) -> u64 {
        sampled * self.sampling_rate
    }

    /// Distinct (router, day) pairs present, sorted.
    pub fn router_day_keys(&self) -> Vec<(RouterId, u64)> {
        let mut keys: Vec<_> = self.router_days.keys().copied().collect();
        keys.sort_unstable();
        keys
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ah_net::time::Dur;

    fn isp() -> IspModel {
        IspModel::new(IspConfig::with_prefix_routes(
            PrefixSet::from_prefixes(vec!["10.0.0.0/8".parse().unwrap()]),
            vec![("100.0.0.0/8".parse().unwrap(), 1), ("200.0.0.0/8".parse().unwrap(), 2)],
            3,
            vec![1, 2, 3],
            10,
        ))
    }

    fn pkt(src: Ipv4Addr4, dst: Ipv4Addr4, t: u64) -> PacketMeta {
        PacketMeta::tcp_syn(Ts::from_secs(t), src, dst, 40000, 80)
    }

    const USER: Ipv4Addr4 = Ipv4Addr4::new(10, 1, 2, 3);
    const CACHE: Ipv4Addr4 = Ipv4Addr4::new(10, 250, 0, 1);
    const EU_SCANNER: Ipv4Addr4 = Ipv4Addr4::new(100, 50, 0, 9);
    const US_HOST: Ipv4Addr4 = Ipv4Addr4::new(200, 1, 1, 1);
    const ELSEWHERE: Ipv4Addr4 = Ipv4Addr4::new(55, 4, 3, 2);

    #[test]
    fn ingress_routes_by_source_prefix() {
        let mut m = isp();
        assert_eq!(
            m.observe(&pkt(EU_SCANNER, USER, 0)),
            Disposition::Border(1, Direction::Ingress)
        );
        assert_eq!(m.observe(&pkt(US_HOST, USER, 0)), Disposition::Border(2, Direction::Ingress));
        assert_eq!(m.observe(&pkt(ELSEWHERE, USER, 0)), Disposition::Border(3, Direction::Ingress));
    }

    #[test]
    fn egress_routes_by_destination_prefix() {
        let mut m = isp();
        assert_eq!(m.observe(&pkt(USER, EU_SCANNER, 0)), Disposition::Border(1, Direction::Egress));
    }

    #[test]
    fn internal_traffic_bypasses_border() {
        let mut m = isp();
        assert_eq!(m.observe(&pkt(USER, CACHE, 0)), Disposition::Internal);
        assert_eq!(m.internal_packets(0), 1);
        let ds = m.finish();
        assert_eq!(ds.router_day_packets(1, 0), 0);
        assert!(ds.records.is_empty());
    }

    #[test]
    fn transit_traffic_is_ignored() {
        let mut m = isp();
        assert_eq!(m.observe(&pkt(EU_SCANNER, US_HOST, 0)), Disposition::Transit);
    }

    #[test]
    fn truth_counters_count_everything_sampled_or_not() {
        let mut m = isp();
        for i in 0..95 {
            m.observe(&pkt(EU_SCANNER, USER, i / 10));
        }
        let ds = m.finish();
        let total: u64 = (0..10).map(|d| ds.router_day_packets(1, d)).sum();
        assert_eq!(total, 95);
        // Sampled flows carry ~1/10 of the packets.
        let sampled: u64 = ds.records.iter().map(|r| r.packets).sum();
        assert!((8..=10).contains(&sampled), "sampled {sampled}");
        assert_eq!(ds.estimate(sampled), sampled * 10);
    }

    #[test]
    fn flows_carry_router_and_direction() {
        let mut m = IspModel::new(IspConfig::with_prefix_routes(
            PrefixSet::from_prefixes(vec!["10.0.0.0/8".parse().unwrap()]),
            vec![],
            1,
            vec![1],
            1,
        ));
        m.observe(&pkt(EU_SCANNER, USER, 0));
        m.observe(&pkt(USER, EU_SCANNER, 1));
        let ds = m.finish();
        assert_eq!(ds.records.len(), 2);
        assert!(ds.records.iter().any(|r| r.direction == Direction::Ingress));
        assert!(ds.records.iter().any(|r| r.direction == Direction::Egress));
        assert!(ds.records.iter().all(|r| r.router == 1));
    }

    #[test]
    fn day_counters_split_by_day() {
        let mut m = isp();
        m.observe(&pkt(EU_SCANNER, USER, 10));
        m.observe(&pkt(EU_SCANNER, USER, 86_400 + 10));
        let r = m.router(1).unwrap();
        assert_eq!(r.day_counter(0).packets, 1);
        assert_eq!(r.day_counter(1).packets, 1);
        assert_eq!(r.day_counter(2).packets, 0);
    }

    #[test]
    fn router_day_keys_sorted() {
        let mut m = isp();
        m.observe(&pkt(US_HOST, USER, 86_400));
        m.observe(&pkt(EU_SCANNER, USER, 0));
        let ds = m.finish();
        assert_eq!(ds.router_day_keys(), vec![(1, 0), (2, 1)]);
    }

    #[test]
    fn cache_stats_aggregate_across_routers() {
        let mut m = IspModel::new(IspConfig::with_prefix_routes(
            PrefixSet::from_prefixes(vec!["10.0.0.0/8".parse().unwrap()]),
            vec![("100.0.0.0/8".parse().unwrap(), 1), ("200.0.0.0/8".parse().unwrap(), 2)],
            1,
            vec![1, 2],
            1, // unsampled: every border packet reaches a cache
        ));
        let a = pkt(EU_SCANNER, USER, 0);
        let b = pkt(US_HOST, USER, 0);
        m.observe(&a);
        m.observe(&a); // duplicate at router 1
        m.observe(&b);
        let s = m.cache_stats();
        assert_eq!(s.received, 3);
        assert_eq!(s.duplicates_suppressed, 1);
        assert!(s.conserves());
        assert_eq!(m.router(1).unwrap().cache_stats().duplicates_suppressed, 1);
        assert_eq!(m.router(2).unwrap().cache_stats().received, 1);
    }

    #[test]
    fn sweep_flushes_idle_flows_to_records() {
        let mut m = IspModel::new(IspConfig::with_prefix_routes(
            PrefixSet::from_prefixes(vec!["10.0.0.0/8".parse().unwrap()]),
            vec![],
            1,
            vec![1],
            1,
        ));
        m.observe(&pkt(EU_SCANNER, USER, 0));
        m.sweep(Ts::from_secs(0) + Dur::from_mins(5));
        let ds = m.finish();
        assert_eq!(ds.records.len(), 1);
    }
}
