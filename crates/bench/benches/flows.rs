//! Flow-substrate benchmarks: cache throughput, sampling, NetFlow v5 codec.

use ah_flow::cache::FlowCache;
use ah_flow::record::{decode_v5, encode_v5};
use ah_flow::router::Direction;
use ah_flow::sampler::Sampler;
use ah_net::ipv4::Ipv4Addr4;
use ah_net::packet::PacketMeta;
use ah_net::time::Ts;
use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};

fn mixed_packets(n: u32) -> Vec<PacketMeta> {
    (0..n)
        .map(|i| {
            PacketMeta::tcp_syn(
                Ts::from_micros(u64::from(i) * 50),
                Ipv4Addr4(0x6400_0000 + (i % 2000)),
                Ipv4Addr4(0x0a00_0000 + (i % 500)),
                (1024 + i % 50_000) as u16,
                [80u16, 443, 22, 23, 6379][(i % 5) as usize],
            )
        })
        .collect()
}

fn bench_cache(c: &mut Criterion) {
    let pkts = mixed_packets(20_000);
    let mut g = c.benchmark_group("flow");
    g.throughput(Throughput::Elements(pkts.len() as u64));
    g.bench_function("cache_observe_20k", |b| {
        b.iter(|| {
            let mut cache = FlowCache::new(1);
            for p in &pkts {
                cache.observe(p, Direction::Ingress);
            }
            black_box(cache.flush().len())
        })
    });
    g.bench_function("sampler_20k", |b| {
        b.iter(|| {
            let mut s = Sampler::new(1000, 0);
            let mut picked = 0u64;
            for _ in 0..20_000 {
                if s.sample() {
                    picked += 1;
                }
            }
            black_box(picked)
        })
    });
    g.finish();
}

fn bench_v5_codec(c: &mut Criterion) {
    let pkts = mixed_packets(3000);
    let mut cache = FlowCache::new(1);
    for p in &pkts {
        cache.observe(p, Direction::Ingress);
    }
    let records = cache.flush();
    let batches: Vec<_> = records.chunks(30).collect();
    let mut g = c.benchmark_group("netflow_v5");
    g.throughput(Throughput::Elements(records.len() as u64));
    g.bench_function("encode", |b| {
        b.iter(|| {
            for (i, batch) in batches.iter().enumerate() {
                black_box(encode_v5(batch, Ts::from_secs(1), i as u32, 1000));
            }
        })
    });
    let encoded: Vec<Vec<u8>> = batches
        .iter()
        .enumerate()
        .map(|(i, b)| encode_v5(b, Ts::from_secs(1), i as u32, 1000))
        .collect();
    g.bench_function("decode", |b| {
        b.iter(|| {
            for e in &encoded {
                black_box(decode_v5(e).unwrap());
            }
        })
    });
    g.finish();
}

criterion_group!(benches, bench_cache, bench_v5_codec);
criterion_main!(benches);
