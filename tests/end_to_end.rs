//! End-to-end integration: simulate → capture → detect → join, asserting
//! the paper's qualitative shape targets on a seeded miniature world.

use aggressive_scanners::core::characterize::{
    protocol_mix_darknet, top_ports, zipf_concentration,
};
use aggressive_scanners::core::defs::Definition;
use aggressive_scanners::core::impact::flow_impact;
use aggressive_scanners::core::lists::jaccard;
use aggressive_scanners::core::validate::acked_validation;
use aggressive_scanners::pipeline::{self, RunOptions};
use aggressive_scanners::simnet::scenario::ScenarioConfig;

fn tiny_run(days: u64, seed: u64) -> pipeline::RunOutput {
    pipeline::run(ScenarioConfig::tiny(days, seed), RunOptions::full())
}

#[test]
fn detects_aggressive_hitters_under_all_definitions() {
    let run = tiny_run(3, 1);
    let d1 = run.report.hitters(Definition::AddressDispersion);
    let d2 = run.report.hitters(Definition::PacketVolume);
    assert!(!d1.is_empty(), "D1 must find hitters");
    assert!(!d2.is_empty(), "D2 must find hitters");
    // D1 and D2 largely overlap (the paper reports Jaccard ≈ 0.8 in 2021
    // and containment in 2022); at miniature scale we only require
    // substantial similarity.
    assert!(jaccard(d1, d2) > 0.3, "J = {}", jaccard(d1, d2));
}

#[test]
fn hitters_are_tiny_fraction_but_most_packets() {
    let run = tiny_run(3, 2);
    let d1 = run.report.hitters(Definition::AddressDispersion);
    let frac_sources = d1.len() as f64 / run.capture.unique_sources.max(1) as f64;
    assert!(frac_sources < 0.15, "hitters are a small source fraction: {frac_sources}");
    // Packets from daily hitters dominate darknet scanning traffic.
    let mut ah = 0u64;
    let mut all = 0u64;
    for day in 0..run.days {
        ah += run.report.ah_packets(Definition::AddressDispersion, day);
        all += run.report.day_all_packets.get(&day).copied().unwrap_or(0);
    }
    let share = ah as f64 / all.max(1) as f64;
    assert!(share > 0.4, "AH packet share {share}");
}

#[test]
fn tcp_syn_dominates_hitter_protocol_mix() {
    let run = tiny_run(3, 3);
    let mix = protocol_mix_darknet(&run.report, Definition::AddressDispersion, None);
    assert!(mix[0] > 60.0, "TCP-SYN dominates: {mix:?}");
    assert!((mix[0] + mix[1] + mix[2] - 100.0).abs() < 1e-6);
}

#[test]
fn flow_impact_is_nonzero_and_bounded() {
    let run = tiny_run(2, 4);
    let ds = run.merit_flows.as_ref().unwrap();
    let rows = flow_impact(ds, |day| {
        run.report.active_hitters(Definition::AddressDispersion, day).cloned()
    });
    assert!(!rows.is_empty());
    let any_positive = rows.iter().any(|r| r.ah_packets > 0);
    assert!(any_positive, "hitter packets must reach the routers");
    for r in &rows {
        assert!(r.pct() <= 100.0);
    }
}

#[test]
fn acked_scanners_are_found_with_both_stages() {
    let run = tiny_run(3, 5);
    let acked = run.world.acked_list(4);
    let rdns = run.world.rdns(64);
    let v = acked_validation(&run.report, Definition::AddressDispersion, &acked, &rdns);
    assert!(v.total_ips > 0, "research sweeps must be detected as hitters");
    assert!(v.orgs > 0);
    assert!(v.packets_pct_of_ah < 100.0);
}

#[test]
fn top_ports_follow_the_configured_profile() {
    let run = tiny_run(3, 6);
    let ports = top_ports(&run.report, Definition::AddressDispersion, 25);
    assert!(!ports.is_empty());
    let labels: Vec<String> = ports.iter().take(8).map(|p| p.label()).collect();
    // Redis, Telnet and SSH are the configured heavyweights.
    let heavy = ["tcp/6379", "tcp/23", "tcp/22"];
    let hits = heavy.iter().filter(|h| labels.iter().any(|l| l == *h)).count();
    assert!(hits >= 2, "expected heavy ports near the top, got {labels:?}");
}

#[test]
fn zipf_concentration_is_heavy_tailed() {
    let run = tiny_run(3, 7);
    let z = zipf_concentration(&run.report, Definition::AddressDispersion);
    assert!(!z.is_empty());
    // The top 20% of hitters carry well over 20% of hitter traffic.
    let idx = (z.len() / 5).max(1) - 1;
    assert!(z[idx] > 25.0, "top-20% share {}", z[idx]);
}

#[test]
fn greynoise_sees_nearly_all_hitters() {
    let run = tiny_run(3, 8);
    let seen = run.gn_seen.as_ref().unwrap();
    let d1 = run.report.hitters(Definition::AddressDispersion);
    let overlap = d1.iter().filter(|ip| seen.contains(ip)).count() as f64 / d1.len().max(1) as f64;
    assert!(overlap > 0.9, "internet-wide hitters hit distributed sensors: {overlap}");
}

#[test]
fn identical_seeds_reproduce_identical_reports() {
    let a = tiny_run(2, 99);
    let b = tiny_run(2, 99);
    assert_eq!(a.generated_packets, b.generated_packets);
    assert_eq!(a.report.d2_threshold, b.report.d2_threshold);
    for def in Definition::ALL {
        assert_eq!(a.report.hitters(def), b.report.hitters(def));
    }
    let fa = a.merit_flows.as_ref().unwrap();
    let fb = b.merit_flows.as_ref().unwrap();
    assert_eq!(fa.records.len(), fb.records.len());
}

#[test]
fn different_seeds_differ() {
    let a = tiny_run(2, 100);
    let b = tiny_run(2, 101);
    assert_ne!(a.generated_packets, b.generated_packets);
}

#[test]
fn spoofed_sources_never_become_hitters() {
    // The tiny scenario includes a spoofed-source flood (bogons + random
    // forged unicast). Bogon sources must be filtered before capture and
    // no forged source may qualify under any definition.
    let run = tiny_run(3, 55);
    // The pipeline's reduced filter set (the synthetic plan deliberately
    // reuses RFC1918/CGNAT space for its networks, so the full
    // standard_bogons() list does not apply here).
    let bogons = aggressive_scanners::net::prefix::PrefixSet::from_prefixes(
        ["0.0.0.0/8", "127.0.0.0/8", "169.254.0.0/16", "224.0.0.0/4", "240.0.0.0/4"]
            .iter()
            .map(|p| p.parse().unwrap()),
    );
    for def in Definition::ALL {
        for ip in run.report.hitters(def) {
            assert!(!bogons.contains(*ip), "bogon source {ip} became a {def:?} hitter");
            // Forged random-unicast sources live in 80.0.0.0/12.
            assert!(
                !aggressive_scanners::net::prefix::Prefix::new(
                    aggressive_scanners::net::ipv4::Ipv4Addr4::new(80, 0, 0, 0),
                    4
                )
                .unwrap()
                .contains(*ip),
                "forged source {ip} became a {def:?} hitter"
            );
        }
    }
}
