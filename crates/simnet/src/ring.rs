//! Bounded lock-free SPSC ring buffer for the parallel pipeline.
//!
//! One producer thread (the packet dispatcher) feeds one consumer thread
//! (a pipeline shard) through a fixed-capacity power-of-two ring. The
//! design follows the classic cache-friendly SPSC layout:
//!
//! * **Cache-line-padded indices.** `head` (consumer cursor) and `tail`
//!   (producer cursor) live on separate 128-byte-aligned cache lines so
//!   the two threads never false-share.
//! * **Cached counterparts.** The producer keeps a stale copy of `head`
//!   and only re-reads the atomic when the ring *looks* full; the
//!   consumer does the same with `tail`. In the common case a push/pop
//!   touches no foreign cache line at all.
//! * **Batched two-phase writes.** `push` writes the slot immediately
//!   (phase one) but publishes the new tail only every
//!   [`PUBLISH_BATCH`] items or on [`Producer::flush`] (phase two), so
//!   the producer amortizes its release stores. Consumers see items in
//!   FIFO order regardless of batching.
//!
//! # Memory-ordering contract
//!
//! Slot writes are plain (unsynchronized) stores made *before* the
//! producer's `tail.store(Release)`; the consumer's matching
//! `tail.load(Acquire)` therefore happens-after every write it observes
//! — reading a slot below the loaded tail is safe. Symmetrically the
//! consumer reads a slot out *before* `head.store(Release)`, and the
//! producer's `head.load(Acquire)` happens-after that read — so a slot
//! is never overwritten until its previous occupant has been moved out.
//! Indices are monotonically increasing `usize` counters masked into the
//! buffer, which makes "full" (`tail - head == capacity`) and "empty"
//! (`tail == head`) unambiguous without a reserved slot.
//!
//! The stream is closed by dropping or [`Producer::close`]-ing the
//! producer: `closed` is set with `Release` *after* the final flush, so
//! a consumer that observes `closed` with `Acquire` and then finds the
//! ring empty has seen every item.
//!
//! # Machine-checked, not just argued
//!
//! The contract above is *proved*, not just asserted: the entire
//! protocol is generic over the [`RingSync`] facade, whose associated
//! `Ordering` constants pin each synchronizing access. Production code
//! uses [`StdSync`] (real `std::sync::atomic`, the orderings above,
//! zero overhead — every facade call is a monomorphized inline
//! passthrough). The model-check suite
//! (`crates/simnet/tests/model_check.rs`) instantiates the *same*
//! generic code over the `interleave` checker's shadow atomics and
//! exhaustively explores every interleaving and every
//! memory-model-permitted stale read at small capacities — and proves
//! the mutation coverage too: demoting any single `Release`/`Acquire`
//! in the facade to `Relaxed` yields a counterexample (data race, lost
//! item, or deadlock) with a replayable schedule. See
//! `ARCHITECTURE.md` §9.

use std::cell::UnsafeCell;
use std::mem::MaybeUninit;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;

/// Producer publishes its tail after at most this many buffered writes.
pub const PUBLISH_BATCH: usize = 32;

/// Facade over the synchronization primitives the ring uses, so the
/// identical protocol code runs on real atomics ([`StdSync`]) or on a
/// model checker's shadow atomics (the model-check suite). The
/// associated `Ordering` constants *are* the memory-ordering contract;
/// the defaults are the proven values, and overriding one in a test
/// facade creates a seeded mutant the checker must catch.
pub trait RingSync: 'static {
    /// Atomic usize (head/tail cursors).
    type AtomicUsize: RingAtomicUsize;
    /// Atomic bool (closed flag).
    type AtomicBool: RingAtomicBool;
    /// One item slot: plain (non-atomic) storage whose cross-thread
    /// ordering is provided entirely by the cursor publications.
    type Slot<T: Send>: RingSlot<T>;

    /// Producer publishes `tail` with this ordering (contract: `Release`
    /// — makes all preceding slot writes visible to the consumer).
    const TAIL_PUBLISH: Ordering = Ordering::Release;
    /// Consumer observes `tail` with this ordering (contract: `Acquire`).
    const TAIL_OBSERVE: Ordering = Ordering::Acquire;
    /// Consumer publishes `head` with this ordering (contract: `Release`
    /// — makes the slot read happen-before reuse of the slot).
    const HEAD_PUBLISH: Ordering = Ordering::Release;
    /// Producer observes `head` with this ordering (contract: `Acquire`).
    const HEAD_OBSERVE: Ordering = Ordering::Acquire;
    /// Producer publishes `closed` with this ordering (contract:
    /// `Release` — ordered after the final flush).
    const CLOSED_PUBLISH: Ordering = Ordering::Release;
    /// Consumer observes `closed` with this ordering (contract:
    /// `Acquire` — the post-close re-check must see the final flush).
    const CLOSED_OBSERVE: Ordering = Ordering::Acquire;

    // --- MPSC merge-ring orderings (`crate::mpsc`) -----------------
    //
    // The multi-producer ring synchronizes through per-slot sequence
    // numbers, not through its cursors; these four consts plus the
    // CLOSED pair above are its whole contract (ARCHITECTURE.md §11).

    /// MPSC producer publishes a slot's sequence number after writing
    /// the slot (contract: `Release` — the consumer's matching load
    /// sees a fully written slot).
    const SEQ_PUBLISH: Ordering = Ordering::Release;
    /// MPSC consumer observes a slot's sequence number (contract:
    /// `Acquire`).
    const SEQ_OBSERVE: Ordering = Ordering::Acquire;
    /// MPSC consumer recycles a slot's sequence number after moving the
    /// value out (contract: `Release` — slot reuse is ordered after the
    /// consumer's read).
    const RECYCLE_PUBLISH: Ordering = Ordering::Release;
    /// MPSC producer observes a slot's recycled sequence number while
    /// probing for room (contract: `Acquire`).
    const RECYCLE_OBSERVE: Ordering = Ordering::Acquire;
    /// MPSC producers reserve slots by CAS on the shared tail.
    /// ORDERING: `Relaxed` is the contract, not a weakening — the tail
    /// is only a reservation counter; every data-carrying edge rides on
    /// the slot sequence numbers above, which the model-check suite
    /// proves sufficient.
    const TAIL_RESERVE: Ordering = Ordering::Relaxed;
    /// MPSC consumer advertises its progress on the shared head.
    /// ORDERING: `Relaxed` — advisory only (occupancy high-water marks
    /// and a fast pre-probe fullness estimate); correctness never reads
    /// it.
    const HEAD_ADVISORY: Ordering = Ordering::Relaxed;

    /// Busy-wait hint (maps to a scheduler park under a model checker).
    fn spin_loop();
    /// Yield to the OS scheduler (park under a model checker).
    fn yield_now();
}

/// Operations the rings need from an atomic `usize`. The SPSC ring
/// uses only load/store; the MPSC merge ring additionally needs the
/// read-modify-write pair (`fetch_add` for the producers-closed count,
/// `compare_exchange` for batched slot reservation).
pub trait RingAtomicUsize: Send + Sync {
    /// New atomic with initial value.
    fn new(v: usize) -> Self;
    /// Atomic load.
    fn load(&self, ord: Ordering) -> usize;
    /// Atomic store.
    fn store(&self, v: usize, ord: Ordering);
    /// Atomic add; returns the previous value.
    fn fetch_add(&self, v: usize, ord: Ordering) -> usize;
    /// Atomic compare-exchange: replace `current` with `new`, returning
    /// `Ok(previous)` on success and `Err(actual)` on mismatch.
    fn compare_exchange(
        &self,
        current: usize,
        new: usize,
        success: Ordering,
        failure: Ordering,
    ) -> Result<usize, usize>;
    /// Non-synchronizing read for exclusively-owned teardown
    /// (`get_mut` equivalent).
    fn unsync_load(&mut self) -> usize;
}

/// Operations the ring needs from an atomic `bool`.
pub trait RingAtomicBool: Send + Sync {
    /// New atomic with initial value.
    fn new(v: bool) -> Self;
    /// Atomic load.
    fn load(&self, ord: Ordering) -> bool;
    /// Atomic store.
    fn store(&self, v: bool, ord: Ordering);
}

/// One plain-memory item slot. All methods are unsafe because the slot
/// itself enforces nothing: the ring's cursor protocol is what makes a
/// given call exclusive, and the model checker verifies exactly that.
pub trait RingSlot<T>: Send + Sync {
    /// A vacant slot.
    fn vacant() -> Self;
    /// Move `v` into the slot.
    ///
    /// # Safety
    /// The slot must be vacant and the caller must be the only thread
    /// accessing it (producer side, `local_tail - head < capacity`).
    unsafe fn write(&self, v: T);
    /// Move the value out, leaving the slot vacant.
    ///
    /// # Safety
    /// The slot must be occupied and the caller must be the only
    /// thread accessing it (consumer side, `head < published tail`).
    unsafe fn take(&self) -> T;
    /// Drop the value in place (teardown of occupied slots).
    ///
    /// # Safety
    /// The slot must be occupied and the caller must have exclusive
    /// ownership of the ring (sole remaining handle).
    unsafe fn drop_in_place(&self);
}

/// Production facade: real `std::sync::atomic` primitives and the
/// contract orderings. Every method is an inlineable passthrough, so
/// the generic ring compiles to exactly the code it was before the
/// facade existed.
pub struct StdSync;

impl RingSync for StdSync {
    type AtomicUsize = AtomicUsize;
    type AtomicBool = AtomicBool;
    type Slot<T: Send> = StdSlot<T>;

    #[inline]
    fn spin_loop() {
        std::hint::spin_loop();
    }

    #[inline]
    fn yield_now() {
        std::thread::yield_now();
    }
}

impl RingAtomicUsize for AtomicUsize {
    #[inline]
    fn new(v: usize) -> AtomicUsize {
        AtomicUsize::new(v)
    }

    #[inline]
    fn load(&self, ord: Ordering) -> usize {
        AtomicUsize::load(self, ord)
    }

    #[inline]
    fn store(&self, v: usize, ord: Ordering) {
        AtomicUsize::store(self, v, ord);
    }

    #[inline]
    fn fetch_add(&self, v: usize, ord: Ordering) -> usize {
        AtomicUsize::fetch_add(self, v, ord)
    }

    #[inline]
    fn compare_exchange(
        &self,
        current: usize,
        new: usize,
        success: Ordering,
        failure: Ordering,
    ) -> Result<usize, usize> {
        AtomicUsize::compare_exchange(self, current, new, success, failure)
    }

    #[inline]
    fn unsync_load(&mut self) -> usize {
        *self.get_mut()
    }
}

impl RingAtomicBool for AtomicBool {
    #[inline]
    fn new(v: bool) -> AtomicBool {
        AtomicBool::new(v)
    }

    #[inline]
    fn load(&self, ord: Ordering) -> bool {
        AtomicBool::load(self, ord)
    }

    #[inline]
    fn store(&self, v: bool, ord: Ordering) {
        AtomicBool::store(self, v, ord);
    }
}

/// [`RingSlot`] over a plain `UnsafeCell<MaybeUninit<T>>`.
pub struct StdSlot<T>(UnsafeCell<MaybeUninit<T>>);

// SAFETY: the slot transfers owned `T` values between exactly two
// threads; the ring's cursor protocol (machine-checked in the
// model-check suite) guarantees each slot is accessed by one side at a
// time, so sharing references across threads is sound for any T: Send.
unsafe impl<T: Send> Sync for StdSlot<T> {}
// SAFETY: an owned slot owns at most one T; moving it moves the value.
unsafe impl<T: Send> Send for StdSlot<T> {}

impl<T: Send> RingSlot<T> for StdSlot<T> {
    #[inline]
    fn vacant() -> StdSlot<T> {
        StdSlot(UnsafeCell::new(MaybeUninit::uninit()))
    }

    #[inline]
    unsafe fn write(&self, v: T) {
        // SAFETY: per the trait contract the caller is the only thread
        // accessing this vacant slot.
        unsafe { (*self.0.get()).write(v) };
    }

    #[inline]
    unsafe fn take(&self) -> T {
        // SAFETY: per the trait contract the slot is occupied and the
        // caller is the only thread accessing it.
        unsafe { (*self.0.get()).assume_init_read() }
    }

    #[inline]
    unsafe fn drop_in_place(&self) {
        // SAFETY: per the trait contract the slot is occupied and the
        // caller has exclusive ownership.
        unsafe { (*self.0.get()).assume_init_drop() };
    }
}

/// A 128-byte-aligned wrapper that keeps its contents on a private cache
/// line (two 64-byte lines, covering adjacent-line prefetching).
#[repr(align(128))]
struct CachePadded<T>(T);

struct Shared<T: Send, S: RingSync> {
    mask: usize,
    slots: Box<[S::Slot<T>]>,
    /// Next index the consumer will pop (published).
    head: CachePadded<S::AtomicUsize>,
    /// One past the last index the producer has published.
    tail: CachePadded<S::AtomicUsize>,
    closed: S::AtomicBool,
}

impl<T: Send, S: RingSync> Drop for Shared<T, S> {
    fn drop(&mut self) {
        // Sole owner at this point: drop every published-but-unpopped item.
        let head = self.head.0.unsync_load();
        let tail = self.tail.0.unsync_load();
        for i in head..tail {
            // SAFETY: items in head..tail are initialized and owned by
            // us — we hold the last reference to the ring.
            unsafe { self.slots[i & self.mask].drop_in_place() };
        }
    }
}

/// The write half of a ring; see [`ring`].
pub struct Producer<T: Send, S: RingSync = StdSync> {
    shared: Arc<Shared<T, S>>,
    /// Next index to write (may run ahead of the published tail).
    local_tail: usize,
    /// Last published tail value.
    published: usize,
    /// Stale copy of the consumer's head.
    cached_head: usize,
    /// Publish the tail after this many buffered writes.
    batch: usize,
    /// Highest producer-observed occupancy (see
    /// [`Producer::high_water_mark`]).
    hwm: usize,
}

/// The read half of a ring; see [`ring`].
pub struct Consumer<T: Send, S: RingSync = StdSync> {
    shared: Arc<Shared<T, S>>,
    /// Next index to pop.
    head: usize,
    /// Stale copy of the producer's published tail.
    cached_tail: usize,
}

/// Create a bounded SPSC ring holding at least `capacity` items
/// (rounded up to a power of two, minimum 2).
///
/// # Examples
///
/// One producer thread, one consumer thread, FIFO exactly-once
/// delivery ending with a close:
///
/// ```
/// let (mut tx, mut rx) = ah_simnet::ring::ring::<u64>(8);
/// let t = std::thread::spawn(move || {
///     for i in 0..100 {
///         tx.push(i); // spins only while the ring is full
///     }
///     tx.close(); // close implies flush
/// });
/// let mut got = Vec::new();
/// while let Some(v) = rx.pop_wait() {
///     got.push(v);
/// }
/// t.join().unwrap();
/// assert_eq!(got, (0..100).collect::<Vec<u64>>());
/// ```
pub fn ring<T: Send>(capacity: usize) -> (Producer<T>, Consumer<T>) {
    ring_with::<StdSync, T>(capacity, PUBLISH_BATCH)
}

/// Create a ring over an explicit [`RingSync`] facade with an explicit
/// publish batch — the entry point the model-check suite uses to run
/// the production protocol on shadow atomics at tiny capacities and
/// batches. `batch` is clamped to at least 1.
pub fn ring_with<S: RingSync, T: Send>(
    capacity: usize,
    batch: usize,
) -> (Producer<T, S>, Consumer<T, S>) {
    let cap = capacity.max(2).next_power_of_two();
    let slots: Box<[S::Slot<T>]> = (0..cap).map(|_| S::Slot::vacant()).collect();
    let shared = Arc::new(Shared::<T, S> {
        mask: cap - 1,
        slots,
        head: CachePadded(S::AtomicUsize::new(0)),
        tail: CachePadded(S::AtomicUsize::new(0)),
        closed: S::AtomicBool::new(false),
    });
    (
        Producer {
            shared: Arc::clone(&shared),
            local_tail: 0,
            published: 0,
            cached_head: 0,
            batch: batch.max(1),
            hwm: 0,
        },
        Consumer { shared, head: 0, cached_tail: 0 },
    )
}

impl<T: Send, S: RingSync> Producer<T, S> {
    /// Ring capacity in items.
    pub fn capacity(&self) -> usize {
        self.shared.mask + 1
    }

    /// Highest occupancy the producer has observed after any push, in
    /// items. Computed against the producer's *stale* head copy, so it
    /// is an upper bound on true instantaneous occupancy — exactly the
    /// conservative number wanted for "how close did this ring come to
    /// back-pressuring the dispatcher". Plain field, no atomics: reading
    /// it costs nothing and cannot perturb the SPSC protocol.
    pub fn high_water_mark(&self) -> usize {
        self.hwm
    }

    /// Publish every buffered write to the consumer (phase two of the
    /// two-phase write).
    pub fn flush(&mut self) {
        if self.published != self.local_tail {
            self.shared.tail.0.store(self.local_tail, S::TAIL_PUBLISH);
            self.published = self.local_tail;
        }
    }

    /// Try to enqueue without blocking; returns the value back when the
    /// ring is full.
    ///
    /// # Examples
    ///
    /// Back-pressure is a return value, not a blocked thread (batch 1
    /// so every accepted item is immediately visible to the consumer):
    ///
    /// ```
    /// use ah_simnet::ring::{ring_with, StdSync};
    ///
    /// let (mut tx, mut rx) = ring_with::<StdSync, u32>(2, 1);
    /// tx.try_push(1).unwrap();
    /// tx.try_push(2).unwrap();
    /// assert_eq!(tx.try_push(3), Err(3), "full ring hands the item back");
    /// assert_eq!(rx.pop(), Some(1));
    /// assert_eq!(tx.try_push(3), Ok(()), "freed slot is reusable");
    /// ```
    pub fn try_push(&mut self, value: T) -> Result<(), T> {
        let cap = self.shared.mask + 1;
        if self.local_tail - self.cached_head >= cap {
            self.cached_head = self.shared.head.0.load(S::HEAD_OBSERVE);
            if self.local_tail - self.cached_head >= cap {
                // Make buffered items visible so the consumer can drain.
                self.flush();
                return Err(value);
            }
        }
        // SAFETY: the slot is free (local_tail - head < capacity) and no
        // other thread writes it; publication below synchronizes the read.
        unsafe { self.shared.slots[self.local_tail & self.shared.mask].write(value) };
        self.local_tail += 1;
        self.hwm = self.hwm.max(self.local_tail - self.cached_head);
        if self.local_tail - self.published >= self.batch {
            self.flush();
        }
        Ok(())
    }

    /// Enqueue, spinning (with escalating yields) while the ring is full.
    pub fn push(&mut self, value: T) {
        let mut v = value;
        let mut spins = 0u32;
        loop {
            match self.try_push(v) {
                Ok(()) => return,
                Err(back) => v = back,
            }
            spins += 1;
            if spins < 64 {
                S::spin_loop();
            } else {
                S::yield_now();
            }
        }
    }

    /// Flush and mark the stream finished; the consumer's
    /// [`Consumer::pop_wait`] returns `None` once the ring drains.
    pub fn close(mut self) {
        self.flush();
        self.shared.closed.store(true, S::CLOSED_PUBLISH);
    }
}

impl<T: Send, S: RingSync> Drop for Producer<T, S> {
    fn drop(&mut self) {
        // A dropped producer behaves like close(): publish and finish.
        if self.published != self.local_tail {
            self.shared.tail.0.store(self.local_tail, S::TAIL_PUBLISH);
            self.published = self.local_tail;
        }
        self.shared.closed.store(true, S::CLOSED_PUBLISH);
    }
}

impl<T: Send, S: RingSync> Consumer<T, S> {
    /// Dequeue without blocking; `None` when no published item is ready.
    pub fn pop(&mut self) -> Option<T> {
        if self.head == self.cached_tail {
            self.cached_tail = self.shared.tail.0.load(S::TAIL_OBSERVE);
            if self.head == self.cached_tail {
                return None;
            }
        }
        // SAFETY: head < published tail, so the slot is initialized and
        // the producer will not touch it until we advance head.
        let value = unsafe { self.shared.slots[self.head & self.shared.mask].take() };
        self.head += 1;
        self.shared.head.0.store(self.head, S::HEAD_PUBLISH);
        Some(value)
    }

    /// Dequeue, waiting (spin, then yield) for an item; `None` only after
    /// the producer closed the ring *and* every item has been drained.
    pub fn pop_wait(&mut self) -> Option<T> {
        let mut spins = 0u32;
        loop {
            if let Some(v) = self.pop() {
                return Some(v);
            }
            if self.shared.closed.load(S::CLOSED_OBSERVE) {
                // Re-check: the final flush happens-before `closed`.
                return self.pop();
            }
            spins += 1;
            if spins < 64 {
                S::spin_loop();
            } else {
                S::yield_now();
            }
        }
    }

    /// True when the producer has closed the stream (items may remain).
    pub fn is_closed(&self) -> bool {
        self.shared.closed.load(S::CLOSED_OBSERVE)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_within_one_thread() {
        let (mut tx, mut rx) = ring::<u32>(8);
        assert_eq!(tx.capacity(), 8);
        for i in 0..5 {
            tx.try_push(i).unwrap();
        }
        tx.flush();
        for i in 0..5 {
            assert_eq!(rx.pop(), Some(i));
        }
        assert_eq!(rx.pop(), None);
    }

    #[test]
    fn unflushed_items_are_invisible_until_batch_or_flush() {
        let (mut tx, mut rx) = ring::<u32>(64);
        tx.try_push(1).unwrap();
        assert_eq!(rx.pop(), None, "phase-one write must not be visible");
        tx.flush();
        assert_eq!(rx.pop(), Some(1));
        // A full batch self-publishes.
        for i in 0..PUBLISH_BATCH as u32 {
            tx.try_push(i).unwrap();
        }
        assert_eq!(rx.pop(), Some(0));
    }

    #[test]
    fn custom_publish_batch_is_respected() {
        let (mut tx, mut rx) = ring_with::<StdSync, u32>(8, 2);
        tx.try_push(1).unwrap();
        assert_eq!(rx.pop(), None, "below batch: invisible");
        tx.try_push(2).unwrap();
        assert_eq!(rx.pop(), Some(1), "batch of 2 self-publishes");
    }

    #[test]
    fn full_ring_rejects_and_capacity_is_respected() {
        let (mut tx, mut rx) = ring::<u32>(4);
        for i in 0..4 {
            tx.try_push(i).unwrap();
        }
        assert_eq!(tx.try_push(99), Err(99));
        assert_eq!(rx.pop(), Some(0));
        tx.try_push(4).unwrap();
        tx.flush();
        assert_eq!((1..=4).map(|_| rx.pop().unwrap()).collect::<Vec<_>>(), vec![1, 2, 3, 4]);
    }

    #[test]
    fn high_water_mark_tracks_peak_occupancy() {
        let (mut tx, mut rx) = ring::<u32>(8);
        assert_eq!(tx.high_water_mark(), 0);
        for i in 0..8 {
            tx.try_push(i).unwrap();
        }
        assert_eq!(tx.high_water_mark(), 8, "filled to capacity");
        assert!(tx.try_push(99).is_err(), "rejected push must not raise the mark");
        for _ in 0..4 {
            rx.pop();
        }
        // Refilling after a drain cannot exceed capacity and never
        // lowers the recorded peak.
        tx.try_push(8).unwrap();
        assert_eq!(tx.high_water_mark(), 8);
    }

    #[test]
    fn close_drains_then_ends() {
        let (mut tx, mut rx) = ring::<u32>(8);
        tx.try_push(7).unwrap();
        tx.close(); // close implies flush
        assert_eq!(rx.pop_wait(), Some(7));
        assert_eq!(rx.pop_wait(), None);
        assert!(rx.is_closed());
    }

    #[test]
    fn drop_of_producer_closes() {
        let (tx, mut rx) = ring::<u32>(8);
        drop(tx);
        assert_eq!(rx.pop_wait(), None);
    }

    #[test]
    fn unpopped_items_are_dropped_with_the_ring() {
        // Box<u64> would leak if Shared::drop didn't run destructors;
        // run under the workspace's normal test flags this is exercised
        // by miri-like tooling and by not leaking under valgrind — here
        // we at least exercise the code path.
        let (mut tx, rx) = ring::<Box<u64>>(8);
        tx.try_push(Box::new(1)).unwrap();
        tx.try_push(Box::new(2)).unwrap();
        tx.flush();
        drop(rx);
        drop(tx);
    }

    #[test]
    fn cross_thread_fifo_and_completeness() {
        const N: usize = 200_000;
        let (mut tx, mut rx) = ring::<usize>(256);
        let consumer = std::thread::spawn(move || {
            let mut seen = Vec::with_capacity(N);
            while let Some(v) = rx.pop_wait() {
                seen.push(v);
            }
            seen
        });
        for i in 0..N {
            tx.push(i);
        }
        tx.close();
        let seen = consumer.join().expect("consumer thread");
        assert_eq!(seen.len(), N);
        assert!(seen.iter().enumerate().all(|(i, &v)| i == v), "items reordered or lost");
    }
}
