//! Telescope benchmarks: capture classification and darknet-event
//! aggregation throughput, DstSet representation upgrades.

use ah_net::ipv4::Ipv4Addr4;
use ah_net::packet::PacketMeta;
use ah_net::time::{Dur, Ts};
use ah_telescope::capture::Telescope;
use ah_telescope::dstset::DstSet;
use criterion::{black_box, criterion_group, criterion_main, Criterion, Throughput};

fn scan_burst(n: u32) -> Vec<PacketMeta> {
    (0..n)
        .map(|i| {
            PacketMeta::tcp_syn(
                Ts::from_micros(u64::from(i) * 100),
                Ipv4Addr4(0x0a00_0000 + (i % 64)),
                Ipv4Addr4(0x1400_0000 + (i * 7919) % 16384),
                40_000,
                23,
            )
        })
        .collect()
}

fn bench_capture(c: &mut Criterion) {
    let pkts = scan_burst(10_000);
    let mut g = c.benchmark_group("telescope");
    g.throughput(Throughput::Elements(pkts.len() as u64));
    g.bench_function("observe_10k_scan", |b| {
        b.iter(|| {
            let mut t = Telescope::new("20.0.0.0/18".parse().unwrap(), Dur::from_mins(10));
            for p in &pkts {
                t.observe(p);
            }
            black_box(t.flush().len())
        })
    });
    g.finish();
}

fn bench_dstset(c: &mut Criterion) {
    let mut g = c.benchmark_group("dstset");
    g.throughput(Throughput::Elements(16_384));
    g.bench_function("insert_full_universe", |b| {
        b.iter(|| {
            let mut s = DstSet::new(16_384);
            for i in 0..16_384u32 {
                s.insert((i * 2_654_435_761) % 16_384);
            }
            black_box(s.count())
        })
    });
    g.bench_function("insert_sparse_64", |b| {
        b.iter(|| {
            let mut s = DstSet::new(16_384);
            for i in 0..64u32 {
                s.insert(i * 17 % 16_384);
            }
            black_box(s.count())
        })
    });
    g.finish();
}

criterion_group!(benches, bench_capture, bench_dstset);
criterion_main!(benches);
