//! Litmus tests for the model checker itself: the classic weak-memory
//! shapes must be found (or proven absent) exactly as the C11
//! acquire/release model dictates, and every failure class must come
//! back with a replayable counterexample.

use std::collections::HashSet;
use std::sync::atomic::Ordering;
use std::sync::{Arc, Mutex};

use interleave::{shadow, Checker, FailureKind};

/// Release/acquire message passing is race-free: the checker must
/// exhaust the space without a single counterexample.
#[test]
fn message_passing_release_acquire_is_clean() {
    let outcome = Checker::new().check(|| {
        let data = Arc::new(shadow::Cell::new(0u64));
        let flag = Arc::new(shadow::AtomicUsize::new(0));
        let (d2, f2) = (Arc::clone(&data), Arc::clone(&flag));
        let t = shadow::thread::spawn(move || {
            if f2.load(Ordering::Acquire) == 1 {
                d2.with(|p| unsafe { assert_eq!(*p, 42) });
            }
        });
        data.with_mut(|p| unsafe { *p = 42 });
        flag.store(1, Ordering::Release);
        t.join();
    });
    outcome.assert_exhaustive_clean();
    assert!(outcome.schedules > 1, "must explore more than one interleaving");
}

/// Demoting the flag to Relaxed breaks the publication: the checker
/// must find the data race and hand back a counterexample.
#[test]
fn message_passing_relaxed_flag_is_a_race() {
    let outcome = Checker::new().check(|| {
        let data = Arc::new(shadow::Cell::new(0u64));
        let flag = Arc::new(shadow::AtomicUsize::new(0));
        let (d2, f2) = (Arc::clone(&data), Arc::clone(&flag));
        let t = shadow::thread::spawn(move || {
            if f2.load(Ordering::Relaxed) == 1 {
                d2.with(|p| unsafe { std::ptr::read(p) });
            }
        });
        data.with_mut(|p| unsafe { *p = 42 });
        flag.store(1, Ordering::Relaxed);
        t.join();
    });
    let failure = outcome.failure.expect("relaxed message passing must race");
    assert_eq!(failure.kind, FailureKind::DataRace);
    assert!(!failure.schedule.is_empty(), "counterexample must carry a schedule");
    assert!(!failure.oplog.is_empty(), "counterexample must carry an op log");
}

/// Store buffering (Dekker): with release/acquire only, both threads
/// may read 0 — the checker must reach that outcome (an SC-only
/// simulator cannot), plus the three interleaving-explainable ones.
#[test]
fn store_buffering_reaches_the_weak_outcome() {
    let seen: Arc<Mutex<HashSet<(u64, u64)>>> = Arc::new(Mutex::new(HashSet::new()));
    let seen2 = Arc::clone(&seen);
    let outcome = Checker::new().check(move || {
        let x = Arc::new(shadow::AtomicUsize::new(0));
        let y = Arc::new(shadow::AtomicUsize::new(0));
        let (x2, y2) = (Arc::clone(&x), Arc::clone(&y));
        let t = shadow::thread::spawn(move || {
            x2.store(1, Ordering::Release);
            y2.load(Ordering::Acquire) as u64
        });
        y.store(1, Ordering::Release);
        let r_main = x.load(Ordering::Acquire) as u64;
        let r_child = t.join();
        seen2.lock().unwrap().insert((r_child, r_main));
    });
    outcome.assert_exhaustive_clean();
    let outcomes = seen.lock().unwrap();
    assert!(
        outcomes.contains(&(0, 0)),
        "store buffering outcome (0,0) not found; reached only {outcomes:?}"
    );
    assert!(outcomes.contains(&(1, 1)) || outcomes.contains(&(0, 1)));
}

/// An assertion that only fires under one interleaving is found, and
/// its schedule replays.
#[test]
fn interleaving_dependent_assertion_is_found() {
    let outcome = Checker::new().check(|| {
        let x = Arc::new(shadow::AtomicUsize::new(0));
        let x2 = Arc::clone(&x);
        let t = shadow::thread::spawn(move || {
            x2.store(1, Ordering::Release);
        });
        let observed = x.load(Ordering::Acquire);
        t.join();
        assert_eq!(observed, 0, "deliberate: fails when the child store wins the race");
    });
    let failure = outcome.failure.expect("some interleaving must trip the assertion");
    assert_eq!(failure.kind, FailureKind::Panic);
    assert!(failure.message.contains("deliberate"));
}

/// A consumer spinning on a flag nobody will ever set is a lost
/// wakeup: park + rescue must converge to a deadlock report, not an
/// infinite exploration.
#[test]
fn spinning_on_an_unset_flag_is_a_deadlock() {
    let outcome = Checker::new().check(|| {
        let flag = Arc::new(shadow::AtomicUsize::new(0));
        let f2 = Arc::clone(&flag);
        let t = shadow::thread::spawn(move || {
            while f2.load(Ordering::Acquire) == 0 {
                shadow::yield_now();
            }
        });
        t.join();
    });
    let failure = outcome.failure.expect("spin on never-set flag must deadlock");
    assert_eq!(failure.kind, FailureKind::Deadlock);
}

/// Spinning that IS eventually satisfied must terminate cleanly —
/// park/unpark plus the stale-read budget keep the search finite.
#[test]
fn satisfied_spin_loop_terminates() {
    let outcome = Checker::new().check(|| {
        let flag = Arc::new(shadow::AtomicUsize::new(0));
        let f2 = Arc::clone(&flag);
        let t = shadow::thread::spawn(move || {
            while f2.load(Ordering::Acquire) == 0 {
                shadow::yield_now();
            }
        });
        flag.store(1, Ordering::Release);
        t.join();
    });
    outcome.assert_exhaustive_clean();
}

/// Relaxed loads may observe stale values, but only up to the
/// configured store-buffer depth; coherence still forbids going
/// backwards. With depth 0 every load sees the newest store.
#[test]
fn stale_depth_zero_forces_latest_reads() {
    let seen: Arc<Mutex<HashSet<u64>>> = Arc::new(Mutex::new(HashSet::new()));
    let seen2 = Arc::clone(&seen);
    let outcome = Checker::new().stale_depth(0).check(move || {
        let x = Arc::new(shadow::AtomicUsize::new(0));
        let x2 = Arc::clone(&x);
        let t = shadow::thread::spawn(move || {
            x2.store(1, Ordering::Release);
            x2.store(2, Ordering::Release);
        });
        let r = x.load(Ordering::Acquire) as u64;
        t.join();
        seen2.lock().unwrap().insert(r);
    });
    outcome.assert_exhaustive_clean();
    // Interleaving still varies (load before/between/after stores) but
    // no *stale* read of an overwritten store is ever taken.
    let outcomes = seen.lock().unwrap();
    assert!(outcomes.contains(&2) && outcomes.contains(&0));
}

/// C++20 release sequences: a relaxed `fetch_add` that reads a release
/// store continues its release sequence, so an acquire load of the
/// RMW's result still synchronizes with the original release store.
/// Counted-close protocols (every producer bumps a shared counter, the
/// consumer acquires the final count) depend on exactly this edge.
#[test]
fn rmw_continues_the_release_sequence() {
    let outcome = Checker::new().check(|| {
        let data = Arc::new(shadow::Cell::new(0u64));
        let flag = Arc::new(shadow::AtomicUsize::new(0));
        let (d2, f2) = (Arc::clone(&data), Arc::clone(&flag));
        let f3 = Arc::clone(&flag);
        let publisher = shadow::thread::spawn(move || {
            d2.with_mut(|p| unsafe { *p = 42 });
            f2.store(1, Ordering::Release);
        });
        let bumper = shadow::thread::spawn(move || {
            // Relaxed on purpose: the RMW itself publishes nothing, but
            // it must keep the publisher's release sequence alive.
            f3.fetch_add(1, Ordering::Relaxed);
        });
        if flag.load(Ordering::Acquire) == 2 {
            data.with(|p| unsafe { assert_eq!(*p, 42) });
        }
        publisher.join();
        bumper.join();
    });
    outcome.assert_exhaustive_clean();
}

/// A plain relaxed *store* (not an RMW) to the same location breaks
/// the release sequence: reading it with Acquire yields no edge to the
/// earlier release store, and the data read races.
#[test]
fn plain_store_breaks_the_release_sequence() {
    let outcome = Checker::new().check(|| {
        let data = Arc::new(shadow::Cell::new(0u64));
        let flag = Arc::new(shadow::AtomicUsize::new(0));
        let (d2, f2) = (Arc::clone(&data), Arc::clone(&flag));
        let f3 = Arc::clone(&flag);
        let publisher = shadow::thread::spawn(move || {
            d2.with_mut(|p| unsafe { *p = 42 });
            f2.store(1, Ordering::Release);
        });
        let clobberer = shadow::thread::spawn(move || {
            if f3.load(Ordering::Relaxed) == 1 {
                f3.store(2, Ordering::Relaxed);
            }
        });
        if flag.load(Ordering::Acquire) == 2 {
            data.with(|p| unsafe { std::ptr::read(p) });
        }
        publisher.join();
        clobberer.join();
    });
    let failure = outcome.failure.expect("broken release sequence must race");
    assert_eq!(failure.kind, FailureKind::DataRace);
}

/// The same model, same bounds, explores the same number of schedules:
/// exploration is deterministic, which is what makes counterexample
/// schedules replayable.
#[test]
fn exploration_is_deterministic() {
    let run = || {
        Checker::new()
            .check(|| {
                let x = Arc::new(shadow::AtomicUsize::new(0));
                let x2 = Arc::clone(&x);
                let t = shadow::thread::spawn(move || {
                    x2.fetch_add(1, Ordering::AcqRel);
                });
                x.fetch_add(2, Ordering::AcqRel);
                t.join();
                assert_eq!(x.load(Ordering::Acquire), 3);
            })
            .schedules
    };
    let a = run();
    let b = run();
    assert_eq!(a, b, "exploration must be deterministic");
    assert!(a >= 2);
}
