//! IPv4 addresses and headers.

use crate::checksum;
use crate::error::{NetError, Result};
use std::fmt;
use std::str::FromStr;

/// An IPv4 address stored as a host-order `u32`.
///
/// We use our own compact type (rather than `std::net::Ipv4Addr`) because
/// the pipeline keeps hundreds of millions of these in hash maps and
/// arrays: a transparent `u32` gives free ordering, masking and dense
/// indexing into the dark space.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Ipv4Addr4(pub u32);

impl Ipv4Addr4 {
    /// 0.0.0.0.
    pub const UNSPECIFIED: Ipv4Addr4 = Ipv4Addr4(0);
    /// 255.255.255.255.
    pub const BROADCAST: Ipv4Addr4 = Ipv4Addr4(u32::MAX);

    /// From dotted-quad octets.
    pub const fn new(a: u8, b: u8, c: u8, d: u8) -> Self {
        Ipv4Addr4(u32::from_be_bytes([a, b, c, d]))
    }

    /// From a host-order `u32`.
    pub const fn from_u32(v: u32) -> Self {
        Ipv4Addr4(v)
    }

    /// Host-order `u32` value.
    pub const fn to_u32(self) -> u32 {
        self.0
    }

    /// Network-order octets.
    pub const fn octets(self) -> [u8; 4] {
        self.0.to_be_bytes()
    }

    /// From network-order octets.
    pub const fn from_octets(o: [u8; 4]) -> Self {
        Ipv4Addr4(u32::from_be_bytes(o))
    }

    /// The /24 network containing this address (used for per-/24
    /// normalization in the impact analysis).
    pub const fn slash24(self) -> Ipv4Addr4 {
        Ipv4Addr4(self.0 & 0xffff_ff00)
    }

    /// The /16 network containing this address.
    pub const fn slash16(self) -> Ipv4Addr4 {
        Ipv4Addr4(self.0 & 0xffff_0000)
    }
}

impl fmt::Display for Ipv4Addr4 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let [a, b, c, d] = self.octets();
        write!(f, "{a}.{b}.{c}.{d}")
    }
}

impl fmt::Debug for Ipv4Addr4 {
    // Debug delegates to Display: addresses read better as dotted quads.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

impl FromStr for Ipv4Addr4 {
    type Err = NetError;

    fn from_str(s: &str) -> Result<Self> {
        let mut octets = [0u8; 4];
        let mut parts = s.split('.');
        for o in octets.iter_mut() {
            let part = parts.next().ok_or_else(|| NetError::BadAddressSyntax(s.to_string()))?;
            *o = part.parse::<u8>().map_err(|_| NetError::BadAddressSyntax(s.to_string()))?;
        }
        if parts.next().is_some() {
            return Err(NetError::BadAddressSyntax(s.to_string()));
        }
        Ok(Ipv4Addr4::from_octets(octets))
    }
}

/// IP protocol number: ICMP.
pub const PROTO_ICMP: u8 = 1;
/// IP protocol number: TCP.
pub const PROTO_TCP: u8 = 6;
/// IP protocol number: UDP.
pub const PROTO_UDP: u8 = 17;

/// Minimum IPv4 header length in bytes (no options).
pub const HEADER_LEN: usize = 20;

/// An owned IPv4 header ("repr" in smoltcp terms).
///
/// Options are carried opaquely; the parser accepts any IHL in 5..=15 and
/// the emitter re-emits options verbatim, so roundtrips are lossless.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Ipv4Header {
    /// DSCP and ECN bits, as one byte.
    pub dscp_ecn: u8,
    /// Total length of the IP datagram (header + payload).
    pub total_len: u16,
    /// Identification field. Scanner fingerprints live here (ZMap: 54321).
    pub ident: u16,
    /// Don't-fragment flag.
    pub dont_frag: bool,
    /// More-fragments flag.
    pub more_frags: bool,
    /// Fragment offset in 8-byte units.
    pub frag_offset: u16,
    /// Time to live.
    pub ttl: u8,
    /// Payload protocol number.
    pub protocol: u8,
    /// Source address.
    pub src: Ipv4Addr4,
    /// Destination address.
    pub dst: Ipv4Addr4,
    /// Raw options bytes (empty when IHL = 5).
    pub options: Vec<u8>,
}

impl Ipv4Header {
    /// A conventional header for a scanning probe.
    pub fn probe(src: Ipv4Addr4, dst: Ipv4Addr4, protocol: u8, payload_len: usize) -> Self {
        Ipv4Header {
            dscp_ecn: 0,
            total_len: (HEADER_LEN + payload_len) as u16,
            ident: 0,
            dont_frag: true,
            more_frags: false,
            frag_offset: 0,
            ttl: 64,
            protocol,
            src,
            dst,
            options: Vec::new(),
        }
    }

    /// Header length in bytes including options.
    pub fn header_len(&self) -> usize {
        HEADER_LEN + self.options.len()
    }

    /// Parse from the front of `data`. Returns the header and the payload
    /// slice (`total_len` bytes minus header; trailing bytes beyond
    /// `total_len`, e.g. Ethernet padding, are excluded).
    ///
    /// The header checksum is verified; packets failing it are rejected,
    /// mirroring what a router line card would do.
    pub fn parse(data: &[u8]) -> Result<(Ipv4Header, &[u8])> {
        if data.len() < HEADER_LEN {
            return Err(NetError::Truncated { layer: "ipv4", needed: HEADER_LEN, got: data.len() });
        }
        let version = data[0] >> 4;
        if version != 4 {
            return Err(NetError::Unsupported {
                layer: "ipv4",
                field: "version",
                value: u64::from(version),
            });
        }
        let ihl = usize::from(data[0] & 0x0f) * 4;
        if !(HEADER_LEN..=60).contains(&ihl) {
            return Err(NetError::BadLength { layer: "ipv4", value: ihl });
        }
        if data.len() < ihl {
            return Err(NetError::Truncated { layer: "ipv4", needed: ihl, got: data.len() });
        }
        if !checksum::verify(&data[..ihl]) {
            return Err(NetError::BadChecksum { layer: "ipv4" });
        }
        let total_len = usize::from(u16::from_be_bytes([data[2], data[3]]));
        if total_len < ihl || total_len > data.len() {
            return Err(NetError::BadLength { layer: "ipv4", value: total_len });
        }
        let flags_frag = u16::from_be_bytes([data[6], data[7]]);
        let header = Ipv4Header {
            dscp_ecn: data[1],
            total_len: total_len as u16,
            ident: u16::from_be_bytes([data[4], data[5]]),
            dont_frag: flags_frag & 0x4000 != 0,
            more_frags: flags_frag & 0x2000 != 0,
            frag_offset: flags_frag & 0x1fff,
            ttl: data[8],
            protocol: data[9],
            src: Ipv4Addr4::from_octets([data[12], data[13], data[14], data[15]]),
            dst: Ipv4Addr4::from_octets([data[16], data[17], data[18], data[19]]),
            options: data[HEADER_LEN..ihl].to_vec(),
        };
        Ok((header, &data[ihl..total_len]))
    }

    /// Serialize the header (with a freshly computed checksum) into `out`.
    pub fn emit(&self, out: &mut Vec<u8>) {
        debug_assert!(self.options.len().is_multiple_of(4), "ipv4 options must be 32-bit aligned");
        let ihl_words = (HEADER_LEN + self.options.len()) / 4;
        let start = out.len();
        out.push(0x40 | ihl_words as u8);
        out.push(self.dscp_ecn);
        out.extend_from_slice(&self.total_len.to_be_bytes());
        out.extend_from_slice(&self.ident.to_be_bytes());
        let mut flags_frag = self.frag_offset & 0x1fff;
        if self.dont_frag {
            flags_frag |= 0x4000;
        }
        if self.more_frags {
            flags_frag |= 0x2000;
        }
        out.extend_from_slice(&flags_frag.to_be_bytes());
        out.push(self.ttl);
        out.push(self.protocol);
        out.extend_from_slice(&[0, 0]); // checksum placeholder
        out.extend_from_slice(&self.src.octets());
        out.extend_from_slice(&self.dst.octets());
        out.extend_from_slice(&self.options);
        let csum = checksum::checksum(&out[start..]);
        out[start + 10..start + 12].copy_from_slice(&csum.to_be_bytes());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Ipv4Header {
        Ipv4Header {
            dscp_ecn: 0x10,
            total_len: 40,
            ident: 54321,
            dont_frag: true,
            more_frags: false,
            frag_offset: 0,
            ttl: 57,
            protocol: PROTO_TCP,
            src: Ipv4Addr4::new(203, 0, 113, 9),
            dst: Ipv4Addr4::new(192, 0, 2, 254),
            options: Vec::new(),
        }
    }

    #[test]
    fn addr_display_and_parse() {
        let a: Ipv4Addr4 = "203.0.113.9".parse().unwrap();
        assert_eq!(a, Ipv4Addr4::new(203, 0, 113, 9));
        assert_eq!(a.to_string(), "203.0.113.9");
        assert!("1.2.3".parse::<Ipv4Addr4>().is_err());
        assert!("1.2.3.4.5".parse::<Ipv4Addr4>().is_err());
        assert!("1.2.3.256".parse::<Ipv4Addr4>().is_err());
    }

    #[test]
    fn addr_masking() {
        let a = Ipv4Addr4::new(10, 20, 30, 40);
        assert_eq!(a.slash24(), Ipv4Addr4::new(10, 20, 30, 0));
        assert_eq!(a.slash16(), Ipv4Addr4::new(10, 20, 0, 0));
    }

    #[test]
    fn addr_ordering_matches_numeric() {
        assert!(Ipv4Addr4::new(1, 0, 0, 0) < Ipv4Addr4::new(2, 0, 0, 0));
        assert!(Ipv4Addr4::new(10, 0, 0, 1) < Ipv4Addr4::new(10, 0, 0, 2));
    }

    #[test]
    fn roundtrip_no_options() {
        let h = sample();
        let mut buf = Vec::new();
        h.emit(&mut buf);
        buf.resize(h.total_len as usize, 0xaa); // fake payload
        let (parsed, payload) = Ipv4Header::parse(&buf).unwrap();
        assert_eq!(parsed, h);
        assert_eq!(payload.len(), 20);
        assert!(payload.iter().all(|&b| b == 0xaa));
    }

    #[test]
    fn roundtrip_with_options() {
        let mut h = sample();
        h.options = vec![1, 1, 1, 1]; // four NOPs
        h.total_len += 4;
        let mut buf = Vec::new();
        h.emit(&mut buf);
        buf.resize(h.total_len as usize, 0);
        let (parsed, _) = Ipv4Header::parse(&buf).unwrap();
        assert_eq!(parsed.options, vec![1, 1, 1, 1]);
    }

    #[test]
    fn trailing_padding_is_excluded() {
        let h = sample();
        let mut buf = Vec::new();
        h.emit(&mut buf);
        buf.resize(h.total_len as usize, 0);
        buf.extend_from_slice(&[0u8; 6]); // ethernet-style padding
        let (_, payload) = Ipv4Header::parse(&buf).unwrap();
        assert_eq!(payload.len(), 20);
    }

    #[test]
    fn rejects_bad_version() {
        let h = sample();
        let mut buf = Vec::new();
        h.emit(&mut buf);
        buf[0] = 0x65; // version 6
        assert!(matches!(
            Ipv4Header::parse(&buf),
            Err(NetError::Unsupported { field: "version", .. })
        ));
    }

    #[test]
    fn rejects_truncation_everywhere() {
        let h = sample();
        let mut buf = Vec::new();
        h.emit(&mut buf);
        buf.resize(h.total_len as usize, 0);
        for cut in 0..buf.len() {
            assert!(Ipv4Header::parse(&buf[..cut]).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn rejects_corrupted_checksum() {
        let h = sample();
        let mut buf = Vec::new();
        h.emit(&mut buf);
        buf.resize(h.total_len as usize, 0);
        buf[8] ^= 0xff; // mangle TTL without fixing checksum
        assert_eq!(Ipv4Header::parse(&buf), Err(NetError::BadChecksum { layer: "ipv4" }));
    }

    #[test]
    fn rejects_total_len_below_header() {
        let h = sample();
        let mut buf = Vec::new();
        h.emit(&mut buf);
        // Set total_len = 8 (< IHL) and fix up the checksum so we reach
        // the length check.
        buf[2..4].copy_from_slice(&8u16.to_be_bytes());
        buf[10..12].copy_from_slice(&[0, 0]);
        let c = checksum::checksum(&buf[..20]);
        buf[10..12].copy_from_slice(&c.to_be_bytes());
        assert!(matches!(Ipv4Header::parse(&buf), Err(NetError::BadLength { .. })));
    }
}
