//! Keyed bijections over `[0, n)` — the simulator's stand-in for ZMap's
//! multiplicative-cyclic-group address permutation.
//!
//! ZMap iterates targets in a random permutation of the address space so
//! that probes never revisit an address and spread load. We reproduce the
//! observable property (a full-coverage, duplicate-free, pseudo-random
//! visiting order) with a 4-round Feistel network over the smallest even
//! bit-width covering `n`, plus cycle-walking to stay inside `[0, n)` —
//! the standard format-preserving-permutation construction.

use crate::rng::hash64;

/// A keyed permutation of `[0, n)`.
#[derive(Debug, Clone)]
pub struct Permutation {
    n: u64,
    half_bits: u32,
    keys: [u64; 4],
}

impl Permutation {
    /// A permutation of `[0, n)` keyed by `key`. `n` must be ≥ 1.
    pub fn new(n: u64, key: u64) -> Permutation {
        assert!(n >= 1, "empty domain");
        // Smallest even bit-width whose 2^bits >= n.
        let mut bits = 64 - (n - 1).leading_zeros();
        if bits == 0 {
            bits = 2;
        }
        if bits % 2 == 1 {
            bits += 1;
        }
        let keys = [
            hash64(key ^ 0xa5a5_0001),
            hash64(key ^ 0xa5a5_0002),
            hash64(key ^ 0xa5a5_0003),
            hash64(key ^ 0xa5a5_0004),
        ];
        Permutation { n, half_bits: bits / 2, keys }
    }

    /// Domain size.
    pub fn len(&self) -> u64 {
        self.n
    }

    /// Always false: the domain size is at least 1.
    pub fn is_empty(&self) -> bool {
        false // domain is always ≥ 1
    }

    fn round(&self, k: u64, x: u64) -> u64 {
        hash64(k ^ x) & ((1u64 << self.half_bits) - 1)
    }

    fn feistel(&self, x: u64) -> u64 {
        let mask = (1u64 << self.half_bits) - 1;
        let mut left = (x >> self.half_bits) & mask;
        let mut right = x & mask;
        for k in self.keys {
            let next = left ^ self.round(k, right);
            left = right;
            right = next;
        }
        (left << self.half_bits) | right
    }

    /// The image of `i` under the permutation. `i` must be `< len()`.
    ///
    /// Cycle-walks: applies the Feistel network until the value falls in
    /// `[0, n)` — guaranteed to terminate because the network permutes
    /// the covering power-of-two domain.
    pub fn apply(&self, i: u64) -> u64 {
        debug_assert!(i < self.n);
        let mut x = self.feistel(i);
        while x >= self.n {
            x = self.feistel(x);
        }
        x
    }

    /// Iterate the whole domain in permuted order starting at `offset`
    /// (offsets let many scanner instances share one sweep).
    pub fn iter_from(&self, offset: u64) -> impl Iterator<Item = u64> + '_ {
        let n = self.n;
        (0..n).map(move |i| self.apply((i + offset) % n))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn is_a_bijection_small() {
        for n in [1u64, 2, 3, 10, 255, 256, 1000] {
            let p = Permutation::new(n, 0xfeed);
            let mut seen = vec![false; n as usize];
            for i in 0..n {
                let y = p.apply(i);
                assert!(y < n, "out of range: {y} >= {n}");
                assert!(!seen[y as usize], "duplicate image {y} (n={n})");
                seen[y as usize] = true;
            }
            assert!(seen.iter().all(|&b| b), "not surjective for n={n}");
        }
    }

    #[test]
    fn different_keys_give_different_orders() {
        let n = 1000;
        let a = Permutation::new(n, 1);
        let b = Permutation::new(n, 2);
        let same = (0..n).filter(|&i| a.apply(i) == b.apply(i)).count();
        // A couple of coincidences are fine; identical orders are not.
        assert!(same < n as usize / 10, "{same} collisions");
    }

    #[test]
    fn order_looks_shuffled() {
        let n = 4096;
        let p = Permutation::new(n, 7);
        // Count ascending adjacent pairs; a sorted order would have n-1,
        // a random one about half.
        let asc = (0..n - 1).filter(|&i| p.apply(i) < p.apply(i + 1)).count() as f64;
        let frac = asc / (n - 1) as f64;
        assert!((0.40..0.60).contains(&frac), "ascending fraction {frac}");
    }

    #[test]
    fn iter_from_wraps_and_covers() {
        let p = Permutation::new(10, 3);
        let xs: Vec<u64> = p.iter_from(7).collect();
        assert_eq!(xs.len(), 10);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn deterministic() {
        let a = Permutation::new(500, 99);
        let b = Permutation::new(500, 99);
        for i in 0..500 {
            assert_eq!(a.apply(i), b.apply(i));
        }
    }

    #[test]
    fn domain_of_one() {
        let p = Permutation::new(1, 5);
        assert_eq!(p.apply(0), 0);
        assert_eq!(p.len(), 1);
        assert!(!p.is_empty());
    }
}
