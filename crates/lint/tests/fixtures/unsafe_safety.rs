//! Fixture: unsafe-safety-comment positives and negatives.
//!
//! Bad sites come first: the lint's proximity windows (4 lines above,
//! 3 below for `unsafe fn`) mean a SAFETY comment for one site could
//! otherwise be misattributed to a later undocumented one.

pub fn bad_block(p: *const u32) -> u32 {
    unsafe { *p } //~ unsafe-safety-comment
}

pub unsafe fn bad_fn(p: *const u32) -> u32 { //~ unsafe-safety-comment
    *p
}

pub struct Bare(*const u32);

unsafe impl Send for Bare {} //~ unsafe-safety-comment

pub fn good_block(p: *const u32) -> u32 {
    // SAFETY: fixture — the caller hands us a valid, aligned pointer.
    unsafe { *p }
}

/// Reads through a raw pointer.
///
/// # Safety
///
/// `p` must be non-null, aligned, and point to initialized memory.
pub unsafe fn good_fn_with_safety_doc(p: *const u32) -> u32 {
    // SAFETY: contract documented on the function above.
    unsafe { *p }
}

pub struct Wrapper(*const u32);

// SAFETY: fixture — the pointer is never dereferenced off-thread.
unsafe impl Send for Wrapper {}
