//! Set algebra and population breakdowns over hitter lists.
//!
//! Supports Table 7 (populations and intersections across definitions, at
//! IP / ASN / organization / country granularity) and the Jaccard-score
//! comparison of definitions 1 and 2 (Section 3).

use ah_intel::asn::AsnDb;
use ah_net::ipv4::Ipv4Addr4;
use std::collections::HashSet;

/// Jaccard similarity |A∩B| / |A∪B| (1.0 for two empty sets).
pub fn jaccard(a: &HashSet<Ipv4Addr4>, b: &HashSet<Ipv4Addr4>) -> f64 {
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    let inter = a.intersection(b).count() as f64;
    let union = (a.len() + b.len()) as f64 - inter;
    inter / union
}

/// Intersection of two hitter sets.
pub fn intersect(a: &HashSet<Ipv4Addr4>, b: &HashSet<Ipv4Addr4>) -> HashSet<Ipv4Addr4> {
    a.intersection(b).copied().collect()
}

/// Intersection of three hitter sets.
pub fn intersect3(
    a: &HashSet<Ipv4Addr4>,
    b: &HashSet<Ipv4Addr4>,
    c: &HashSet<Ipv4Addr4>,
) -> HashSet<Ipv4Addr4> {
    a.iter().filter(|ip| b.contains(ip) && c.contains(ip)).copied().collect()
}

/// A population counted at the four granularities of Table 7.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LevelCounts {
    /// Distinct source IPs.
    pub ips: u64,
    /// Distinct origin ASNs.
    pub asns: u64,
    /// Distinct organizations.
    pub orgs: u64,
    /// Distinct origin countries.
    pub countries: u64,
}

/// Count a hitter set at IP/ASN/org/country level using the registry.
/// Unattributable IPs (no covering announcement) count toward `ips` only.
pub fn level_counts(set: &HashSet<Ipv4Addr4>, db: &AsnDb) -> LevelCounts {
    let mut asns = HashSet::new();
    let mut orgs = HashSet::new();
    let mut countries = HashSet::new();
    for ip in set {
        if let Some(info) = db.lookup(*ip) {
            asns.insert(info.asn);
            orgs.insert(info.org.clone());
            countries.insert(info.country);
        }
    }
    LevelCounts {
        ips: set.len() as u64,
        asns: asns.len() as u64,
        orgs: orgs.len() as u64,
        countries: countries.len() as u64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ah_intel::asn::{AsInfo, AsType, CountryCode};

    fn ip(n: u8) -> Ipv4Addr4 {
        Ipv4Addr4::new(100, 64, 0, n)
    }

    fn set(ids: &[u8]) -> HashSet<Ipv4Addr4> {
        ids.iter().map(|&n| ip(n)).collect()
    }

    #[test]
    fn jaccard_basics() {
        assert_eq!(jaccard(&set(&[]), &set(&[])), 1.0);
        assert_eq!(jaccard(&set(&[1, 2]), &set(&[3, 4])), 0.0);
        assert_eq!(jaccard(&set(&[1, 2]), &set(&[1, 2])), 1.0);
        let j = jaccard(&set(&[1, 2, 3, 4]), &set(&[3, 4, 5, 6]));
        assert!((j - 2.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn intersections() {
        let a = set(&[1, 2, 3]);
        let b = set(&[2, 3, 4]);
        let c = set(&[3, 4, 5]);
        assert_eq!(intersect(&a, &b), set(&[2, 3]));
        assert_eq!(intersect3(&a, &b, &c), set(&[3]));
    }

    #[test]
    fn level_counting() {
        let mut db = AsnDb::new();
        db.announce(
            "100.64.0.0/25".parse().unwrap(),
            AsInfo {
                asn: 1,
                org: "A".into(),
                as_type: AsType::Cloud,
                country: CountryCode::new(b"US"),
            },
        );
        db.announce(
            "100.64.0.128/25".parse().unwrap(),
            AsInfo {
                asn: 2,
                org: "B".into(),
                as_type: AsType::Isp,
                country: CountryCode::new(b"US"),
            },
        );
        let s = set(&[1, 2, 130, 131]);
        let c = level_counts(&s, &db);
        assert_eq!(c.ips, 4);
        assert_eq!(c.asns, 2);
        assert_eq!(c.orgs, 2);
        assert_eq!(c.countries, 1);
    }

    #[test]
    fn unattributed_ips_count_as_ips_only() {
        let db = AsnDb::new();
        let c = level_counts(&set(&[1, 2]), &db);
        assert_eq!(c.ips, 2);
        assert_eq!(c.asns, 0);
        assert_eq!(c.countries, 0);
    }
}
