//! CIDR prefixes and fast prefix sets.
//!
//! The telescope needs a membership test ("is this destination inside the
//! dark space?") on every captured packet, and the intel registry needs
//! longest-prefix matching for IP → AS attribution. Both are built here on
//! a sorted-range representation: prefixes become disjoint `[start, end]`
//! ranges, membership is a binary search, and longest-prefix match is a
//! per-length probe over a hash of masked addresses.

use crate::error::{NetError, Result};
use crate::ipv4::Ipv4Addr4;
use std::collections::HashMap;
use std::fmt;
use std::str::FromStr;

/// An IPv4 CIDR prefix.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Prefix {
    /// Network address, host bits zeroed.
    pub network: Ipv4Addr4,
    /// Prefix length, 0..=32.
    pub len: u8,
}

impl Prefix {
    /// Construct, zeroing any host bits in `addr`.
    pub fn new(addr: Ipv4Addr4, len: u8) -> Result<Prefix> {
        if len > 32 {
            return Err(NetError::BadPrefixLen(len));
        }
        Ok(Prefix { network: Ipv4Addr4(addr.to_u32() & Self::mask(len)), len })
    }

    /// The netmask for a prefix length.
    pub fn mask(len: u8) -> u32 {
        if len == 0 {
            0
        } else {
            u32::MAX << (32 - u32::from(len))
        }
    }

    /// First address in the prefix.
    pub fn first(&self) -> Ipv4Addr4 {
        self.network
    }

    /// Last address in the prefix.
    pub fn last(&self) -> Ipv4Addr4 {
        Ipv4Addr4(self.network.to_u32() | !Self::mask(self.len))
    }

    /// Number of addresses covered (as u64: a /0 has 2^32).
    pub fn size(&self) -> u64 {
        1u64 << (32 - u32::from(self.len))
    }

    /// Membership test.
    pub fn contains(&self, addr: Ipv4Addr4) -> bool {
        addr.to_u32() & Self::mask(self.len) == self.network.to_u32()
    }

    /// Dense index of `addr` within this prefix (0-based), or `None` if
    /// outside. This is how the telescope maps dark IPs onto bitmap slots.
    pub fn index_of(&self, addr: Ipv4Addr4) -> Option<u32> {
        self.contains(addr).then(|| addr.to_u32() - self.network.to_u32())
    }

    /// The `index`-th address of the prefix (inverse of [`Prefix::index_of`]).
    pub fn addr_at(&self, index: u32) -> Option<Ipv4Addr4> {
        (u64::from(index) < self.size()).then(|| Ipv4Addr4(self.network.to_u32() + index))
    }

    /// The `index % size`-th address: infallible cycling indexing, for
    /// callers that draw an index from an arbitrary range and want an
    /// address unconditionally. A prefix is never empty (size ≥ 1), so
    /// no failure case exists.
    pub fn addr_mod(&self, index: u32) -> Ipv4Addr4 {
        Ipv4Addr4(self.network.to_u32() + (u64::from(index) % self.size()) as u32)
    }

    /// Iterate over every address in the prefix (careful with short lengths).
    pub fn iter(&self) -> impl Iterator<Item = Ipv4Addr4> {
        let base = self.network.to_u32();
        (0..self.size()).map(move |i| Ipv4Addr4(base + i as u32))
    }
}

impl fmt::Display for Prefix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.network, self.len)
    }
}

impl FromStr for Prefix {
    type Err = NetError;

    fn from_str(s: &str) -> Result<Self> {
        let (addr, len) =
            s.split_once('/').ok_or_else(|| NetError::BadAddressSyntax(s.to_string()))?;
        let addr: Ipv4Addr4 = addr.parse()?;
        let len: u8 = len.parse().map_err(|_| NetError::BadAddressSyntax(s.to_string()))?;
        Prefix::new(addr, len)
    }
}

/// A set of prefixes supporting O(log n) membership.
///
/// Internally: disjoint sorted inclusive ranges, merged on build.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PrefixSet {
    ranges: Vec<(u32, u32)>,
}

impl PrefixSet {
    /// Build from any collection of prefixes; overlaps and adjacency merge.
    pub fn from_prefixes<I: IntoIterator<Item = Prefix>>(prefixes: I) -> PrefixSet {
        let mut ranges: Vec<(u32, u32)> =
            prefixes.into_iter().map(|p| (p.first().to_u32(), p.last().to_u32())).collect();
        ranges.sort_unstable();
        let mut merged: Vec<(u32, u32)> = Vec::with_capacity(ranges.len());
        for (s, e) in ranges {
            match merged.last_mut() {
                Some((_, le)) if s <= le.saturating_add(1) => *le = (*le).max(e),
                _ => merged.push((s, e)),
            }
        }
        PrefixSet { ranges: merged }
    }

    /// The empty set.
    pub fn empty() -> PrefixSet {
        PrefixSet::default()
    }

    /// Membership test by binary search.
    pub fn contains(&self, addr: Ipv4Addr4) -> bool {
        let a = addr.to_u32();
        match self.ranges.binary_search_by(|&(s, _)| s.cmp(&a)) {
            Ok(_) => true,
            Err(0) => false,
            Err(i) => self.ranges[i - 1].1 >= a,
        }
    }

    /// Total number of addresses covered.
    pub fn size(&self) -> u64 {
        self.ranges.iter().map(|&(s, e)| u64::from(e - s) + 1).sum()
    }

    /// Number of disjoint ranges (after merging).
    pub fn range_count(&self) -> usize {
        self.ranges.len()
    }

    /// True when no addresses are covered.
    pub fn is_empty(&self) -> bool {
        self.ranges.is_empty()
    }
}

/// The standard IPv4 bogon (martian) prefixes: addresses that must never
/// legitimately appear as packet sources on the public Internet. Network
/// telescopes filter these before detection — a spoofing attacker can
/// trivially send probes with such sources, and counting them would
/// pollute scanner lists (the paper's "quality lists" goal, §7).
pub fn standard_bogons() -> PrefixSet {
    PrefixSet::from_prefixes(
        [
            "0.0.0.0/8",       // "this network"
            "10.0.0.0/8",      // RFC 1918
            "100.64.0.0/10",   // CGNAT (RFC 6598)
            "127.0.0.0/8",     // loopback
            "169.254.0.0/16",  // link-local
            "172.16.0.0/12",   // RFC 1918
            "192.0.0.0/24",    // IETF protocol assignments
            "192.0.2.0/24",    // TEST-NET-1
            "192.168.0.0/16",  // RFC 1918
            "198.18.0.0/15",   // benchmarking
            "198.51.100.0/24", // TEST-NET-2
            "203.0.113.0/24",  // TEST-NET-3
            "224.0.0.0/4",     // multicast
            "240.0.0.0/4",     // reserved
        ]
        .iter()
        // ah-lint: allow(panic-path, reason = "static RFC bogon literals above; a typo fails the standard_bogons unit test immediately")
        .map(|s| s.parse().expect("static bogon prefix")),
    )
}

/// Longest-prefix-match table mapping prefixes to values of type `T`.
///
/// Lookup probes each populated prefix length from longest to shortest —
/// at most 33 hash probes, in practice 3–5 because registries only use a
/// handful of lengths.
#[derive(Debug, Clone)]
pub struct PrefixMap<T> {
    /// maps (masked address) -> value, one map per populated prefix length.
    by_len: Vec<(u8, HashMap<u32, T>)>,
}

impl<T> Default for PrefixMap<T> {
    fn default() -> Self {
        PrefixMap { by_len: Vec::new() }
    }
}

impl<T> PrefixMap<T> {
    /// An empty map.
    pub fn new() -> Self {
        Self::default()
    }

    /// Insert a prefix → value mapping. Returns the previous value if the
    /// exact prefix was already present.
    pub fn insert(&mut self, prefix: Prefix, value: T) -> Option<T> {
        let pos = match self.by_len.binary_search_by(|(l, _)| prefix.len.cmp(l)) {
            Ok(i) => i,
            Err(i) => {
                self.by_len.insert(i, (prefix.len, HashMap::new()));
                i
            }
        };
        self.by_len[pos].1.insert(prefix.network.to_u32(), value)
    }

    /// Longest-prefix match for `addr`.
    pub fn lookup(&self, addr: Ipv4Addr4) -> Option<&T> {
        let a = addr.to_u32();
        for (len, map) in &self.by_len {
            if let Some(v) = map.get(&(a & Prefix::mask(*len))) {
                return Some(v);
            }
        }
        None
    }

    /// The matched prefix along with the value.
    pub fn lookup_prefix(&self, addr: Ipv4Addr4) -> Option<(Prefix, &T)> {
        let a = addr.to_u32();
        for (len, map) in &self.by_len {
            let masked = a & Prefix::mask(*len);
            if let Some(v) = map.get(&masked) {
                return Some((Prefix { network: Ipv4Addr4(masked), len: *len }, v));
            }
        }
        None
    }

    /// Number of entries.
    /// Number of prefix → value mappings.
    pub fn len(&self) -> usize {
        self.by_len.iter().map(|(_, m)| m.len()).sum()
    }

    /// Whether the map holds no mappings.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Iterate over all (prefix, value) pairs in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (Prefix, &T)> {
        self.by_len.iter().flat_map(|(len, map)| {
            let len = *len;
            map.iter().map(move |(net, v)| (Prefix { network: Ipv4Addr4(*net), len }, v))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> Prefix {
        s.parse().unwrap()
    }

    #[test]
    fn prefix_parse_display() {
        let pr = p("10.64.0.0/13");
        assert_eq!(pr.to_string(), "10.64.0.0/13");
        assert_eq!(pr.size(), 1 << 19);
        assert!("10.0.0.0/33".parse::<Prefix>().is_err());
        assert!("10.0.0.0".parse::<Prefix>().is_err());
        assert!("banana/8".parse::<Prefix>().is_err());
    }

    #[test]
    fn host_bits_are_zeroed() {
        let pr = Prefix::new(Ipv4Addr4::new(10, 1, 2, 3), 16).unwrap();
        assert_eq!(pr.network, Ipv4Addr4::new(10, 1, 0, 0));
    }

    #[test]
    fn contains_and_bounds() {
        let pr = p("192.0.2.0/24");
        assert!(pr.contains(Ipv4Addr4::new(192, 0, 2, 0)));
        assert!(pr.contains(Ipv4Addr4::new(192, 0, 2, 255)));
        assert!(!pr.contains(Ipv4Addr4::new(192, 0, 3, 0)));
        assert_eq!(pr.first(), Ipv4Addr4::new(192, 0, 2, 0));
        assert_eq!(pr.last(), Ipv4Addr4::new(192, 0, 2, 255));
    }

    #[test]
    fn zero_length_prefix_covers_everything() {
        let pr = p("0.0.0.0/0");
        assert_eq!(pr.size(), 1 << 32);
        assert!(pr.contains(Ipv4Addr4::BROADCAST));
        assert!(pr.contains(Ipv4Addr4::UNSPECIFIED));
    }

    #[test]
    fn index_roundtrip() {
        let pr = p("198.51.100.0/24");
        for i in [0u32, 1, 100, 255] {
            let a = pr.addr_at(i).unwrap();
            assert_eq!(pr.index_of(a), Some(i));
        }
        assert_eq!(pr.addr_at(256), None);
        assert_eq!(pr.index_of(Ipv4Addr4::new(198, 51, 101, 0)), None);
    }

    #[test]
    fn iter_covers_all() {
        let pr = p("10.0.0.0/30");
        let addrs: Vec<_> = pr.iter().collect();
        assert_eq!(addrs.len(), 4);
        assert_eq!(addrs[0], Ipv4Addr4::new(10, 0, 0, 0));
        assert_eq!(addrs[3], Ipv4Addr4::new(10, 0, 0, 3));
    }

    #[test]
    fn prefix_set_merges_overlaps() {
        let set =
            PrefixSet::from_prefixes(vec![p("10.0.0.0/25"), p("10.0.0.128/25"), p("10.0.0.0/24")]);
        assert_eq!(set.range_count(), 1);
        assert_eq!(set.size(), 256);
        assert!(set.contains(Ipv4Addr4::new(10, 0, 0, 200)));
        assert!(!set.contains(Ipv4Addr4::new(10, 0, 1, 0)));
    }

    #[test]
    fn prefix_set_disjoint() {
        let set = PrefixSet::from_prefixes(vec![p("10.0.0.0/24"), p("172.16.0.0/16")]);
        assert_eq!(set.range_count(), 2);
        assert!(set.contains(Ipv4Addr4::new(172, 16, 200, 1)));
        assert!(!set.contains(Ipv4Addr4::new(172, 17, 0, 0)));
        assert!(!set.contains(Ipv4Addr4::new(9, 255, 255, 255)));
    }

    #[test]
    fn empty_set() {
        let set = PrefixSet::empty();
        assert!(set.is_empty());
        assert_eq!(set.size(), 0);
        assert!(!set.contains(Ipv4Addr4::new(1, 2, 3, 4)));
    }

    #[test]
    fn prefix_map_longest_match_wins() {
        let mut m = PrefixMap::new();
        m.insert(p("10.0.0.0/8"), "big");
        m.insert(p("10.1.0.0/16"), "medium");
        m.insert(p("10.1.2.0/24"), "small");
        assert_eq!(m.lookup(Ipv4Addr4::new(10, 1, 2, 3)), Some(&"small"));
        assert_eq!(m.lookup(Ipv4Addr4::new(10, 1, 9, 9)), Some(&"medium"));
        assert_eq!(m.lookup(Ipv4Addr4::new(10, 200, 0, 1)), Some(&"big"));
        assert_eq!(m.lookup(Ipv4Addr4::new(11, 0, 0, 1)), None);
        let (pr, v) = m.lookup_prefix(Ipv4Addr4::new(10, 1, 2, 3)).unwrap();
        assert_eq!((pr, *v), (p("10.1.2.0/24"), "small"));
        assert_eq!(m.len(), 3);
    }

    #[test]
    fn prefix_map_replace() {
        let mut m = PrefixMap::new();
        assert_eq!(m.insert(p("10.0.0.0/8"), 1), None);
        assert_eq!(m.insert(p("10.0.0.0/8"), 2), Some(1));
        assert_eq!(m.lookup(Ipv4Addr4::new(10, 0, 0, 1)), Some(&2));
    }

    #[test]
    fn bogons_cover_martians_not_public_space() {
        let b = standard_bogons();
        for bad in
            ["127.0.0.1", "10.1.2.3", "192.168.1.1", "224.0.0.5", "255.255.255.255", "169.254.9.9"]
        {
            assert!(b.contains(bad.parse().unwrap()), "{bad}");
        }
        for good in ["8.8.8.8", "1.1.1.1", "151.101.0.1", "205.0.0.1"] {
            assert!(!b.contains(good.parse().unwrap()), "{good}");
        }
    }

    #[test]
    fn prefix_map_iter() {
        let mut m = PrefixMap::new();
        m.insert(p("10.0.0.0/8"), 1);
        m.insert(p("20.0.0.0/8"), 2);
        let mut got: Vec<_> = m.iter().map(|(p, v)| (p.to_string(), *v)).collect();
        got.sort();
        assert_eq!(got, vec![("10.0.0.0/8".to_string(), 1), ("20.0.0.0/8".to_string(), 2)]);
    }
}
