//! Minimal stand-in for the `criterion` bench-harness API.
//!
//! Vendored as a first-party crate so the workspace's benches compile
//! and run without crates.io access (see `vendor/README.md`). Unlike
//! upstream criterion this harness does **no** statistical sampling:
//! `Bencher::iter` executes the bench body exactly once through
//! [`black_box`]. The repository's benches do their own wall-clock
//! measurement and emit machine-readable summaries (for example
//! `crates/bench/benches/pipeline.rs` writing `BENCH_pipeline.json`),
//! so this crate only has to provide the structural API: groups, ids,
//! throughput tags, and the `criterion_group!`/`criterion_main!`
//! entry points.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

/// Opaque value barrier, forwarding to [`std::hint::black_box`].
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Throughput annotation for a benchmark group (accepted, not used).
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// The top-level harness handle passed to bench functions.
#[derive(Default)]
pub struct Criterion;

impl Criterion {
    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, _name: &str) -> BenchmarkGroup {
        BenchmarkGroup
    }

    /// Run a single named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, _name: &str, mut f: F) -> &mut Self {
        f(&mut Bencher);
        self
    }

    /// Accept command-line configuration (no-op).
    #[must_use]
    pub fn configure_from_args(self) -> Self {
        self
    }
}

/// Identifier for one parameterized benchmark within a group.
pub struct BenchmarkId;

impl BenchmarkId {
    /// An id from a function name and a parameter value.
    pub fn new(_name: &str, _param: impl std::fmt::Display) -> BenchmarkId {
        BenchmarkId
    }

    /// An id from a parameter value alone.
    pub fn from_parameter(_param: impl std::fmt::Display) -> BenchmarkId {
        BenchmarkId
    }
}

/// A named group of benchmarks.
pub struct BenchmarkGroup;

impl BenchmarkGroup {
    /// Run a benchmark that closes over an input value.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        _id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        f(&mut Bencher, input);
        self
    }

    /// Set the sample count (accepted, not used).
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Set the group's throughput annotation (accepted, not used).
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    /// Run a single named benchmark in this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, _name: &str, mut f: F) -> &mut Self {
        f(&mut Bencher);
        self
    }

    /// Close the group.
    pub fn finish(self) {}
}

/// Handle that runs the timed body of a benchmark.
pub struct Bencher;

impl Bencher {
    /// Execute the bench body once through [`black_box`].
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        black_box(f());
    }
}

/// Bundle bench functions into a group entry point.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Emit `main` for a bench binary (`harness = false`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
