//! The "Acknowledged Scanners" list.
//!
//! Collins' public list enumerates organizations that disclose their
//! scanning intent (research scanners) along with their source IPs. The
//! paper flags a hitter as "ACKed" when (i) its IP appears on the list,
//! or (ii) its reverse-DNS name contains one of 48 keywords compiled from
//! the listed organizations' PTR records. The second stage is what finds
//! the ~7,600 research IPs the list itself misses.

use crate::rdns::{matches_keyword, RdnsTable};
use ah_net::ipv4::Ipv4Addr4;
use std::collections::HashMap;

/// One acknowledged organization.
#[derive(Debug, Clone)]
pub struct AckedOrg {
    /// Organization name as published on the list.
    pub name: String,
    /// Source IPs the org discloses.
    pub ips: Vec<Ipv4Addr4>,
    /// rDNS keywords attributable to this org (lowercase).
    pub keywords: Vec<String>,
}

/// How a hitter matched the acknowledged list.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AckedMatch {
    /// The IP is on the published list.
    IpList {
        /// Matched organization name.
        org: String,
    },
    /// The IP's PTR record contains an org keyword.
    Domain {
        /// Matched organization name.
        org: String,
        /// The keyword that hit.
        keyword: String,
    },
}

impl AckedMatch {
    /// The matched organization name.
    pub fn org(&self) -> &str {
        match self {
            AckedMatch::IpList { org } | AckedMatch::Domain { org, .. } => org,
        }
    }

    /// True for stage-1 (exact IP) matches.
    pub fn is_ip_match(&self) -> bool {
        matches!(self, AckedMatch::IpList { .. })
    }
}

/// The compiled acknowledged-scanners list with both match stages.
#[derive(Debug, Clone, Default)]
pub struct AckedScanners {
    orgs: Vec<AckedOrg>,
    ip_index: HashMap<Ipv4Addr4, usize>,
    /// (keyword, org index) pairs, all lowercase.
    keywords: Vec<(String, usize)>,
}

impl AckedScanners {
    /// Compile a list of organizations into the two-stage matcher.
    pub fn new(orgs: Vec<AckedOrg>) -> AckedScanners {
        let mut ip_index = HashMap::new();
        let mut keywords = Vec::new();
        for (i, org) in orgs.iter().enumerate() {
            for ip in &org.ips {
                ip_index.insert(*ip, i);
            }
            for kw in &org.keywords {
                if !kw.is_empty() {
                    keywords.push((kw.to_ascii_lowercase(), i));
                }
            }
        }
        AckedScanners { orgs, ip_index, keywords }
    }

    /// Number of organizations on the list.
    pub fn org_count(&self) -> usize {
        self.orgs.len()
    }

    /// Total disclosed IPs.
    pub fn ip_count(&self) -> usize {
        self.ip_index.len()
    }

    /// All keyword strings, for reporting.
    pub fn keyword_count(&self) -> usize {
        self.keywords.len()
    }

    /// The paper's two-stage match: exact IP first, then rDNS keyword.
    pub fn matches(&self, ip: Ipv4Addr4, rdns: &RdnsTable) -> Option<AckedMatch> {
        if let Some(&i) = self.ip_index.get(&ip) {
            return Some(AckedMatch::IpList { org: self.orgs[i].name.clone() });
        }
        let name = rdns.lookup(ip)?;
        let kw_strings: Vec<String> = self.keywords.iter().map(|(k, _)| k.clone()).collect();
        let hit = matches_keyword(name, &kw_strings)?;
        // The hit came from this table, so the lookup always succeeds;
        // `?` (rather than a panic path) keeps the impossible branch a
        // graceful no-match.
        let org_idx = self.keywords.iter().find(|(k, _)| k == hit).map(|(_, i)| *i)?;
        Some(AckedMatch::Domain { org: self.orgs[org_idx].name.clone(), keyword: hit.to_string() })
    }

    /// Organization names, in list order.
    pub fn org_names(&self) -> Vec<&str> {
        self.orgs.iter().map(|o| o.name.as_str()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn list() -> AckedScanners {
        AckedScanners::new(vec![
            AckedOrg {
                name: "Censys-like".into(),
                ips: vec![Ipv4Addr4::new(100, 0, 0, 1), Ipv4Addr4::new(100, 0, 0, 2)],
                keywords: vec!["censys-like".into()],
            },
            AckedOrg {
                name: "ShadowLab".into(),
                ips: vec![Ipv4Addr4::new(101, 0, 0, 1)],
                keywords: vec!["shadowlab".into(), "research-probe".into()],
            },
        ])
    }

    #[test]
    fn ip_stage_matches_first() {
        let acked = list();
        let rdns = RdnsTable::new();
        let m = acked.matches(Ipv4Addr4::new(100, 0, 0, 2), &rdns).unwrap();
        assert!(m.is_ip_match());
        assert_eq!(m.org(), "Censys-like");
    }

    #[test]
    fn domain_stage_catches_unlisted_ips() {
        let acked = list();
        let mut rdns = RdnsTable::new();
        let extra = Ipv4Addr4::new(100, 0, 0, 99); // not on the list
        rdns.insert(extra, "probe7.ShadowLab.example.org");
        let m = acked.matches(extra, &rdns).unwrap();
        assert_eq!(m, AckedMatch::Domain { org: "ShadowLab".into(), keyword: "shadowlab".into() });
        assert!(!m.is_ip_match());
    }

    #[test]
    fn unknown_ip_without_rdns_does_not_match() {
        let acked = list();
        let rdns = RdnsTable::new();
        assert_eq!(acked.matches(Ipv4Addr4::new(9, 9, 9, 9), &rdns), None);
    }

    #[test]
    fn non_matching_rdns_does_not_match() {
        let acked = list();
        let mut rdns = RdnsTable::new();
        let ip = Ipv4Addr4::new(9, 9, 9, 9);
        rdns.insert(ip, "mail.corporate.example.com");
        assert_eq!(acked.matches(ip, &rdns), None);
    }

    #[test]
    fn counts() {
        let acked = list();
        assert_eq!(acked.org_count(), 2);
        assert_eq!(acked.ip_count(), 3);
        assert_eq!(acked.keyword_count(), 3);
        assert_eq!(acked.org_names(), vec!["Censys-like", "ShadowLab"]);
    }
}
