//! Dark-space capture: filtering, classification and running statistics.

use crate::dstset::DstSet;
use ah_mem::{MemScope, Tag};
use ah_net::ipv4::Ipv4Addr4;
use ah_net::packet::{PacketMeta, ScanClass};
use ah_net::prefix::Prefix;
use std::collections::HashSet;

/// The monitored dark address block.
///
/// Wraps a [`Prefix`] and provides the dense destination indexing the
/// event aggregator's dispersion bitmaps rely on.
#[derive(Debug, Clone, Copy)]
pub struct DarkSpace {
    prefix: Prefix,
}

impl DarkSpace {
    /// The dark space covering `prefix`.
    pub fn new(prefix: Prefix) -> DarkSpace {
        DarkSpace { prefix }
    }

    /// The monitored prefix.
    pub fn prefix(&self) -> Prefix {
        self.prefix
    }

    /// Number of dark addresses.
    pub fn size(&self) -> u32 {
        self.prefix.size().min(u64::from(u32::MAX)) as u32
    }

    /// True when `dst` is inside the dark space.
    pub fn contains(&self, dst: Ipv4Addr4) -> bool {
        self.prefix.contains(dst)
    }

    /// Dense index of a dark destination.
    pub fn index_of(&self, dst: Ipv4Addr4) -> Option<u32> {
        self.prefix.index_of(dst)
    }

    /// The address at a dense index.
    pub fn addr_at(&self, index: u32) -> Option<Ipv4Addr4> {
        self.prefix.addr_at(index)
    }
}

/// Running statistics over everything the telescope captured — the raw
/// material of Table 1 (packets, unique sources, unique destinations).
#[derive(Debug, Clone)]
pub struct CaptureStats {
    /// All packets that arrived at the dark space, scanning or not.
    pub total_packets: u64,
    /// Total wire bytes.
    pub total_bytes: u64,
    /// Packets per scanning class (TCP-SYN / UDP / ICMP echo).
    pub class_packets: [u64; 3],
    /// Packets that were not classifiable as scanning (backscatter etc.).
    pub non_scan_packets: u64,
    /// Unique source IPs seen (exact).
    sources: HashSet<Ipv4Addr4>,
    /// Unique dark destinations touched (exact, dense).
    dsts: DstSet,
}

impl CaptureStats {
    /// Empty statistics over a dark space of `dark_size` addresses.
    pub fn new(dark_size: u32) -> CaptureStats {
        CaptureStats {
            total_packets: 0,
            total_bytes: 0,
            class_packets: [0; 3],
            non_scan_packets: 0,
            sources: HashSet::new(),
            dsts: DstSet::new(dark_size),
        }
    }

    fn record(&mut self, pkt: &PacketMeta, class: Option<ScanClass>, dst_index: u32) {
        self.total_packets += 1;
        self.total_bytes += u64::from(pkt.wire_len);
        self.sources.insert(pkt.src);
        self.dsts.insert(dst_index);
        match class {
            Some(ScanClass::TcpSyn) => self.class_packets[0] += 1,
            Some(ScanClass::Udp) => self.class_packets[1] += 1,
            Some(ScanClass::IcmpEcho) => self.class_packets[2] += 1,
            None => self.non_scan_packets += 1,
        }
    }

    /// Unique source IP count.
    pub fn unique_sources(&self) -> u64 {
        self.sources.len() as u64
    }

    /// Unique dark destinations touched.
    pub fn unique_dsts(&self) -> u64 {
        u64::from(self.dsts.count())
    }

    /// Scanning packets (sum over classes).
    pub fn scan_packets(&self) -> u64 {
        self.class_packets.iter().sum()
    }

    /// Fold another shard's statistics into this one.
    ///
    /// Counters sum; the unique-source and unique-destination sets take
    /// their set union, so the merged result equals what a single
    /// instance would have computed over the concatenated streams — in
    /// any merge order.
    pub fn merge(&mut self, other: &CaptureStats) {
        self.total_packets += other.total_packets;
        self.total_bytes += other.total_bytes;
        for (a, b) in self.class_packets.iter_mut().zip(other.class_packets.iter()) {
            *a += *b;
        }
        self.non_scan_packets += other.non_scan_packets;
        self.sources.extend(other.sources.iter().copied());
        self.dsts.union_with(&other.dsts);
    }
}

/// Compact summary of capture statistics for reports.
#[derive(Debug, Clone)]
pub struct CaptureSummary {
    /// All packets that arrived at the dark space.
    pub total_packets: u64,
    /// Total wire bytes.
    pub total_bytes: u64,
    /// Packets classified as scanning.
    pub scan_packets: u64,
    /// Packets not classifiable as scanning (backscatter etc.).
    pub non_scan_packets: u64,
    /// Unique source IPs seen (exact).
    pub unique_sources: u64,
    /// Unique dark destinations touched (exact).
    pub unique_dsts: u64,
}

impl From<&CaptureStats> for CaptureSummary {
    fn from(s: &CaptureStats) -> CaptureSummary {
        CaptureSummary {
            total_packets: s.total_packets,
            total_bytes: s.total_bytes,
            scan_packets: s.scan_packets(),
            non_scan_packets: s.non_scan_packets,
            unique_sources: s.unique_sources(),
            unique_dsts: s.unique_dsts(),
        }
    }
}

/// The full telescope: filter + classifier + event aggregation + stats.
pub struct Telescope {
    dark: DarkSpace,
    stats: CaptureStats,
    aggregator: crate::event::EventAggregator,
    /// Source prefixes dropped before detection (bogons/martians).
    source_filter: ah_net::prefix::PrefixSet,
    /// Packets dropped by the source filter.
    filtered_packets: u64,
    /// Telemetry (inert until [`Telescope::set_recorder`]).
    m_packets: ah_obs::Counter,
    m_bytes: ah_obs::Counter,
    m_filtered: ah_obs::Counter,
    /// Trace handle (inert until [`Telescope::set_tracer`]).
    tracer: ah_trace::Tracer,
}

/// What happened to a packet offered to the telescope.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CaptureOutcome {
    /// Destination outside the dark space: not our traffic.
    NotDark,
    /// Source is a bogon/martian: dropped before detection.
    FilteredSource,
    /// Captured and fed into event aggregation as a scanning packet.
    Scan(ScanClass),
    /// Captured but not a scanning packet (backscatter, fragments, ...).
    NonScan,
}

impl Telescope {
    /// A telescope over `prefix` with the given event idle timeout and no
    /// source filtering.
    pub fn new(prefix: Prefix, timeout: ah_net::time::Dur) -> Telescope {
        Telescope::with_source_filter(prefix, timeout, ah_net::prefix::PrefixSet::empty())
    }

    /// A telescope that drops packets whose *source* falls in `filter`
    /// before detection — the operational bogon/martian filter that keeps
    /// trivially-spoofable sources out of the hitter lists (the paper's
    /// "quality lists, minimizing false positives due to spoofing", §7).
    /// Real deployments pass [`ah_net::prefix::standard_bogons`]; the
    /// synthetic world passes a reduced set matching its address plan.
    pub fn with_source_filter(
        prefix: Prefix,
        timeout: ah_net::time::Dur,
        filter: ah_net::prefix::PrefixSet,
    ) -> Telescope {
        let dark = DarkSpace::new(prefix);
        Telescope {
            dark,
            stats: CaptureStats::new(dark.size()),
            aggregator: crate::event::EventAggregator::new(dark.size(), timeout),
            source_filter: filter,
            filtered_packets: 0,
            m_packets: ah_obs::Counter::default(),
            m_bytes: ah_obs::Counter::default(),
            m_filtered: ah_obs::Counter::default(),
            tracer: ah_trace::Tracer::noop(),
        }
    }

    /// Attach live telemetry instruments (`ah_telescope_capture_*`) to
    /// this telescope and `ah_telescope_agg_*` to its event aggregator.
    /// Observation-only: capture and event semantics are unchanged.
    pub fn set_recorder(&mut self, rec: &ah_obs::Recorder) {
        // Instruments are interned in the recorder, which outlives any
        // run — charge them to Obs, not the run-scoped Telescope tag.
        let _mem = MemScope::enter(Tag::Obs);
        self.m_packets = rec.counter("ah_telescope_capture_packets_total");
        self.m_bytes = rec.counter("ah_telescope_capture_bytes_total");
        self.m_filtered = rec.counter("ah_telescope_capture_filtered_total");
        self.aggregator.set_recorder(rec);
    }

    /// Attach a tracer: sampled packet journeys get an
    /// `ah_telescope_capture_observe` instant as they enter the dark
    /// space, and the aggregator's timed sweeps get an
    /// `ah_telescope_agg_sweep` span. Observation-only — capture and
    /// event semantics are unchanged.
    pub fn set_tracer(&mut self, tracer: &ah_trace::Tracer) {
        self.tracer = tracer.clone();
        self.aggregator.set_tracer(tracer);
    }

    /// Packets dropped by the source filter so far.
    pub fn filtered_packets(&self) -> u64 {
        self.filtered_packets
    }

    /// The monitored dark space.
    pub fn dark_space(&self) -> DarkSpace {
        self.dark
    }

    /// Offer one packet to the telescope.
    ///
    /// Every step — dark-space membership, source filtering,
    /// classification, capture statistics, and the aggregator's per-key
    /// reordering verdict — depends only on the packet and per-key
    /// state, so feeding a source-partitioned substream to its own
    /// `Telescope` instance and merging afterwards reproduces the
    /// serial result exactly (`ARCHITECTURE.md` §11).
    pub fn observe(&mut self, pkt: &PacketMeta) -> CaptureOutcome {
        // Deliberately NO memory scope here: this is the hottest
        // function in the pipeline, and even a disabled tag check per
        // packet is measurable. The engine's tagged consume path
        // (`pipeline::Vantage::consume::<true>`) brackets this call
        // with `ah_mem::tag_swap` when accounting is on.
        let Some(idx) = self.dark.index_of(pkt.dst) else {
            return CaptureOutcome::NotDark;
        };
        let journey = self.tracer.journey_id(pkt.src.to_u32());
        if journey != 0 {
            self.tracer.journey_instant("ah_telescope_capture_observe", journey);
        }
        if self.source_filter.contains(pkt.src) {
            self.filtered_packets += 1;
            self.m_filtered.inc();
            return CaptureOutcome::FilteredSource;
        }
        let class = pkt.scan_class();
        self.stats.record(pkt, class, idx);
        self.m_packets.inc();
        self.m_bytes.add(u64::from(pkt.wire_len));
        match class {
            Some(c) => {
                self.aggregator.observe(pkt, c, idx);
                CaptureOutcome::Scan(c)
            }
            None => CaptureOutcome::NonScan,
        }
    }

    /// Expire idle events as of `now` (see [`crate::event::EventAggregator::advance`]).
    pub fn advance(&mut self, now: ah_net::time::Ts) {
        let _mem = MemScope::enter(Tag::Telescope);
        self.aggregator.advance(now);
    }

    /// Drain completed darknet events.
    pub fn drain_events(&mut self) -> Vec<crate::event::DarknetEvent> {
        let _mem = MemScope::enter(Tag::Telescope);
        self.aggregator.drain_completed()
    }

    /// Close all active events and return everything outstanding.
    pub fn flush(&mut self) -> Vec<crate::event::DarknetEvent> {
        let _mem = MemScope::enter(Tag::Telescope);
        self.aggregator.flush()
    }

    /// Capture statistics so far.
    pub fn stats(&self) -> &CaptureStats {
        &self.stats
    }

    /// Reordering-policy counters from the event aggregator.
    pub fn aggregator_stats(&self) -> crate::event::AggregatorStats {
        self.aggregator.stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ah_net::packet::Transport;
    use ah_net::tcp::TcpFlags;
    use ah_net::time::{Dur, Ts};

    fn scope() -> Telescope {
        Telescope::new("192.0.0.0/16".parse().unwrap(), Dur::from_mins(10))
    }

    #[test]
    fn non_dark_traffic_is_ignored() {
        let mut t = scope();
        let p = PacketMeta::tcp_syn(
            Ts::ZERO,
            Ipv4Addr4::new(10, 0, 0, 1),
            Ipv4Addr4::new(8, 8, 8, 8),
            1,
            80,
        );
        assert_eq!(t.observe(&p), CaptureOutcome::NotDark);
        assert_eq!(t.stats().total_packets, 0);
    }

    #[test]
    fn scanning_packets_become_events() {
        let mut t = scope();
        for i in 0..50u32 {
            let p = PacketMeta::tcp_syn(
                Ts::from_secs(u64::from(i)),
                Ipv4Addr4::new(10, 0, 0, 1),
                Ipv4Addr4::new(192, 0, (i >> 8) as u8, (i & 0xff) as u8),
                1,
                23,
            );
            assert_eq!(t.observe(&p), CaptureOutcome::Scan(ScanClass::TcpSyn));
        }
        let evs = t.flush();
        assert_eq!(evs.len(), 1);
        assert_eq!(evs[0].unique_dsts, 50);
        assert_eq!(t.stats().scan_packets(), 50);
        assert_eq!(t.stats().unique_sources(), 1);
        assert_eq!(t.stats().unique_dsts(), 50);
    }

    #[test]
    fn backscatter_is_captured_but_not_an_event() {
        let mut t = scope();
        let mut p = PacketMeta::tcp_syn(
            Ts::ZERO,
            Ipv4Addr4::new(10, 0, 0, 1),
            Ipv4Addr4::new(192, 0, 2, 1),
            80,
            40000,
        );
        p.transport =
            Transport::Tcp { src_port: 80, dst_port: 40000, seq: 1, flags: TcpFlags::SYN_ACK };
        assert_eq!(t.observe(&p), CaptureOutcome::NonScan);
        assert_eq!(t.stats().total_packets, 1);
        assert_eq!(t.stats().non_scan_packets, 1);
        assert!(t.flush().is_empty());
    }

    #[test]
    fn dark_space_indexing() {
        let d = DarkSpace::new("192.0.0.0/16".parse().unwrap());
        assert_eq!(d.size(), 65536);
        assert_eq!(d.index_of(Ipv4Addr4::new(192, 0, 0, 0)), Some(0));
        assert_eq!(d.index_of(Ipv4Addr4::new(192, 0, 255, 255)), Some(65535));
        assert_eq!(d.index_of(Ipv4Addr4::new(192, 1, 0, 0)), None);
        assert_eq!(d.addr_at(256), Some(Ipv4Addr4::new(192, 0, 1, 0)));
    }

    #[test]
    fn summary_reflects_stats() {
        let mut t = scope();
        let p = PacketMeta::udp_probe(
            Ts::ZERO,
            Ipv4Addr4::new(10, 0, 0, 9),
            Ipv4Addr4::new(192, 0, 2, 1),
            1,
            161,
        );
        t.observe(&p);
        let s = CaptureSummary::from(t.stats());
        assert_eq!(s.total_packets, 1);
        assert_eq!(s.scan_packets, 1);
        assert_eq!(s.unique_sources, 1);
        assert_eq!(s.total_bytes, 48);
    }

    #[test]
    fn source_filter_drops_bogons_before_detection() {
        let filter = ah_net::prefix::PrefixSet::from_prefixes(vec![
            "224.0.0.0/4".parse().unwrap(),
            "127.0.0.0/8".parse().unwrap(),
        ]);
        let mut t = Telescope::with_source_filter(
            "192.0.0.0/16".parse().unwrap(),
            Dur::from_mins(10),
            filter,
        );
        let spoofed = PacketMeta::tcp_syn(
            Ts::ZERO,
            Ipv4Addr4::new(224, 0, 0, 5),
            Ipv4Addr4::new(192, 0, 2, 1),
            1,
            23,
        );
        assert_eq!(t.observe(&spoofed), CaptureOutcome::FilteredSource);
        assert_eq!(t.filtered_packets(), 1);
        assert_eq!(t.stats().total_packets, 0, "filtered packets never reach stats");
        assert!(t.flush().is_empty());
        // Legitimate sources still pass.
        let ok = PacketMeta::tcp_syn(
            Ts::ZERO,
            Ipv4Addr4::new(100, 64, 0, 1),
            Ipv4Addr4::new(192, 0, 2, 1),
            1,
            23,
        );
        assert_eq!(t.observe(&ok), CaptureOutcome::Scan(ScanClass::TcpSyn));
    }

    #[test]
    fn class_counters_split_correctly() {
        let mut t = scope();
        let src = Ipv4Addr4::new(10, 0, 0, 1);
        let dst = Ipv4Addr4::new(192, 0, 2, 1);
        t.observe(&PacketMeta::tcp_syn(Ts::ZERO, src, dst, 1, 23));
        t.observe(&PacketMeta::udp_probe(Ts::ZERO, src, dst, 1, 53));
        t.observe(&PacketMeta::udp_probe(Ts::ZERO, src, dst, 1, 123));
        t.observe(&PacketMeta::icmp_echo(Ts::ZERO, src, dst));
        assert_eq!(t.stats().class_packets, [1, 2, 1]);
    }
}
