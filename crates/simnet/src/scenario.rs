//! Paper-shaped scenario presets.
//!
//! A scenario assembles a [`World`] and a population of actors whose mix
//! reproduces the *shape* of the paper's observations (who the hitters
//! are, what they target, how they grow year over year), at a scale that
//! runs on a laptop. Absolute counts are scaled down roughly 1:50 from
//! the paper; every definition downstream is a fraction or percentile, so
//! the detector semantics survive the scaling (see DESIGN.md §2).

use crate::actors::{
    Backscatter, Benign, MiraiBot, PortSpec, PortSweeper, Radiation, SweepConfig, SweepScanner,
    ToolKind,
};
use crate::mux::TrafficMux;
use crate::rng::Rng64;
#[allow(unused_imports)]
use crate::space::ObservableSpace;
use crate::world::{World, WorldConfig};
use ah_net::ipv4::Ipv4Addr4;
use ah_net::time::{Dur, Ts, MICROS_PER_DAY};
use std::sync::Arc;

/// Which measurement year's population mix to generate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Year {
    /// Darknet-1 (calendar 2021).
    Y2021,
    /// Darknet-2 (2022 through mid-October).
    Y2022,
}

/// Whether to generate benign ISP traffic (expensive; only the flow/tap
/// experiments need it).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BenignLevel {
    /// Scanning traffic only (darknet characterization runs).
    Off,
    /// Merit user traffic only.
    Merit,
    /// Merit and CU user traffic (packet-tap experiments).
    MeritAndCu,
}

/// Population intensities. All "alive" figures are time-averaged targets;
/// arrivals ramp up over the run to reproduce Figure 3's growth.
#[derive(Debug, Clone)]
pub struct Intensity {
    /// Concurrently-alive aggressive cloud/ISP sweep scanners.
    pub cloud_sweepers_alive: f64,
    /// Mean sweeper lifetime in days.
    pub sweeper_lifetime_days: f64,
    /// Concurrently-alive Mirai-style bots.
    pub mirai_alive: f64,
    /// Mean bot lifetime in days (IP churn).
    pub mirai_lifetime_days: f64,
    /// Research (acknowledged) source IPs actively sweeping.
    pub research_ips: usize,
    /// Days between consecutive sweeps of one research IP.
    pub research_cycle_days: f64,
    /// Concurrently-alive vertical port sweepers (definition-3 hitters).
    pub port_sweepers_alive: f64,
    /// Mean port-sweeper lifetime in days.
    pub port_sweeper_lifetime_days: f64,
    /// Aggregate background-radiation rate into the observable space (pps).
    pub radiation_pps: f64,
    /// Size of the radiation source window alive at any time.
    pub radiation_window: u64,
    /// How many fresh radiation sources appear per day (DHCP-like churn).
    pub radiation_drift_per_day: u64,
    /// Concurrently-alive volume floods: high packet volume on few
    /// targets (definition-2-only hitters; the paper's 2022 D2
    /// population is ~2x D1 with D1 fully contained).
    pub flood_alive: f64,
    /// Aggregate DoS-backscatter rate (pps).
    pub backscatter_pps: f64,
    /// Merit benign border traffic (pps, before diurnal shaping).
    pub benign_merit_pps: f64,
    /// CU benign border traffic (pps).
    pub benign_cu_pps: f64,
    /// Growth of arrival rates across the run (0.3 = +30% by the end).
    pub growth: f64,
}

impl Intensity {
    /// The 2022 mix (Darknet-2).
    pub fn year2022() -> Intensity {
        Intensity {
            cloud_sweepers_alive: 16.0,
            sweeper_lifetime_days: 5.0,
            mirai_alive: 20.0,
            mirai_lifetime_days: 5.0,
            research_ips: 18,
            research_cycle_days: 7.0,
            port_sweepers_alive: 6.0,
            port_sweeper_lifetime_days: 18.0,
            radiation_pps: 1.8,
            radiation_window: 20_000,
            radiation_drift_per_day: 700,
            flood_alive: 18.0,
            backscatter_pps: 0.25,
            benign_merit_pps: 680.0,
            benign_cu_pps: 150.0,
            growth: 0.35,
        }
    }

    /// The 2021 mix (Darknet-1): ~20% fewer hitters, same structure.
    pub fn year2021() -> Intensity {
        Intensity {
            cloud_sweepers_alive: 13.0,
            mirai_alive: 16.0,
            research_ips: 16,
            port_sweepers_alive: 5.0,
            radiation_pps: 2.1,
            flood_alive: 5.0,
            growth: 0.30,
            ..Intensity::year2022()
        }
    }

    /// Small population for tests (pairs with [`WorldConfig::tiny`]).
    pub fn tiny() -> Intensity {
        Intensity {
            cloud_sweepers_alive: 3.0,
            sweeper_lifetime_days: 4.0,
            mirai_alive: 5.0,
            mirai_lifetime_days: 2.0,
            research_ips: 4,
            research_cycle_days: 2.0,
            port_sweepers_alive: 1.0,
            port_sweeper_lifetime_days: 4.0,
            radiation_pps: 0.8,
            radiation_window: 500,
            radiation_drift_per_day: 50,
            flood_alive: 1.0,
            backscatter_pps: 0.1,
            benign_merit_pps: 2.0,
            benign_cu_pps: 0.8,
            growth: 0.2,
        }
    }

    fn for_year(year: Year) -> Intensity {
        match year {
            Year::Y2021 => Intensity::year2021(),
            Year::Y2022 => Intensity::year2022(),
        }
    }
}

/// (port, weight) profile of aggressive-hitter sweeps for one year —
/// shaped after Figure 4 (Redis and Telnet lead, SSH third; TCP
/// dominates; four UDP services and ICMP complete the top-25).
fn ah_port_profile(year: Year) -> Vec<(PortSpec, f64)> {
    let mut v = vec![
        (PortSpec::tcp(6379), 30.0), // Redis
        (PortSpec::tcp(23), 14.0),   // Telnet (bots supply most 23/tcp)
        (PortSpec::tcp(22), 14.0),   // SSH
        (PortSpec::tcp(80), 9.0),
        (PortSpec::tcp(8080), 7.0),
        (PortSpec::tcp(443), 6.0),
        (PortSpec::tcp(3389), 4.0),
        (PortSpec::tcp(5900), 3.0),
        (PortSpec::tcp(2323), 3.0),
        (PortSpec::tcp(81), 2.5),
        (PortSpec::tcp(8443), 2.0),
        (PortSpec::tcp(1023), 2.0),
        (PortSpec::tcp(5555), 2.0),
        (PortSpec::tcp(7547), 1.5),
        (PortSpec::tcp(8088), 1.5),
        (PortSpec::tcp(60001), 1.5),
        (PortSpec::tcp(2375), 1.5),
        (PortSpec::tcp(6443), 1.0),
        (PortSpec::tcp(9527), 1.0),
        (PortSpec::tcp(52869), 1.0),
        (PortSpec::udp(5060), 2.5),
        (PortSpec::udp(53), 1.5),
        (PortSpec::udp(123), 1.0),
        (PortSpec::udp(161), 1.0),
        (PortSpec::icmp(), 2.0),
    ];
    if year == Year::Y2021 {
        // 2021 tail differs in 5 of the top-25 (the paper observes 20/25
        // stable year-over-year).
        v.truncate(20);
        v.push((PortSpec::tcp(1433), 1.5));
        v.push((PortSpec::udp(5060), 2.5));
        v.push((PortSpec::udp(1900), 1.2));
        v.push((PortSpec::udp(123), 1.0));
        v.push((PortSpec::icmp(), 2.2));
    }
    v
}

/// Weighted origin orgs for aggressive sweepers, per year (Table 5 shape:
/// the same US cloud dominates both years; 2021 ranks a CN cloud second,
/// 2022 a CN ISP second).
fn sweeper_origins(year: Year) -> Vec<(&'static str, f64)> {
    match year {
        Year::Y2021 => vec![
            ("Umbra Cloud", 0.30),
            ("Jade Cloud", 0.14),
            ("Great Wall Telecom", 0.08),
            ("Dragon Hosting", 0.10),
            ("Formosa Net", 0.06),
            ("Red Lantern Broadband", 0.07),
            ("Taiga Net", 0.05),
            ("Prairie ISP", 0.05),
            ("Nimbus Compute", 0.06),
            ("Vapor Cloud", 0.04),
            ("Elbe Hosting", 0.03),
            ("Polder Cloud", 0.02),
        ],
        Year::Y2022 => vec![
            ("Umbra Cloud", 0.28),
            ("Great Wall Telecom", 0.15),
            ("Red Lantern Broadband", 0.12),
            ("Jade Cloud", 0.11),
            ("Han River Telecom", 0.07),
            ("Dragon Hosting", 0.08),
            ("Formosa Net", 0.06),
            ("Nimbus Compute", 0.05),
            ("Vapor Cloud", 0.05),
            ("Stratus Platform", 0.03),
            ("Elbe Hosting", 0.02),
            ("Polder Cloud", 0.02),
        ],
    }
}

/// Weighted origin orgs for Mirai-style bots (IoT-heavy access ISPs).
fn bot_origins() -> Vec<(&'static str, f64)> {
    vec![
        ("Great Wall Telecom", 0.18),
        ("Red Lantern Broadband", 0.15),
        ("Umbra Cloud", 0.14),
        ("Formosa Net", 0.14),
        ("Han River Telecom", 0.13),
        ("Misc Internet", 0.13),
        ("Taiga Net", 0.07),
        ("Prairie ISP", 0.06),
    ]
}

/// A fully-assembled scenario: world + time-ordered traffic.
pub struct Scenario {
    /// Address plan and org registry.
    pub world: World,
    /// The time-ordered traffic source, ready to drain.
    pub mux: TrafficMux,
    /// Scenario length in days.
    pub days: u64,
    /// Measurement year (drives the actor mix).
    pub year: Year,
    /// Human-readable name ("darknet-2021", ...).
    pub label: String,
    /// Master seed everything was derived from.
    pub seed: u64,
}

#[derive(Clone)]
/// Builder inputs for [`Scenario::build`].
pub struct ScenarioConfig {
    /// Human-readable name carried into [`Scenario::label`].
    pub label: String,
    /// Measurement year (drives the actor mix).
    pub year: Year,
    /// Scenario length in days.
    pub days: u64,
    /// Address plan to build the world from.
    pub world: WorldConfig,
    /// Scanner population scale.
    pub intensity: Intensity,
    /// Benign-traffic volume.
    pub benign: BenignLevel,
    /// Master seed; all actor seeds derive from it.
    pub seed: u64,
    /// Weekday of day 0 (0 = Monday .. 6 = Sunday). The paper's flow week
    /// starts Saturday 2022-01-15.
    pub day0_weekday: u8,
}

impl ScenarioConfig {
    /// Darknet characterization run (no benign traffic).
    pub fn darknet(year: Year, days: u64, seed: u64) -> ScenarioConfig {
        ScenarioConfig {
            label: match year {
                Year::Y2021 => "darknet-1".into(),
                Year::Y2022 => "darknet-2".into(),
            },
            year,
            days,
            world: WorldConfig::default(),
            intensity: Intensity::for_year(year),
            benign: BenignLevel::Off,
            seed,
            day0_weekday: 4, // 2021-01-01 and 2022-01-01 were Fri/Sat; Fri.
        }
    }

    /// Flow-measurement run with Merit benign traffic. Day 0 is a
    /// Saturday, like 2022-01-15.
    pub fn flows(days: u64, seed: u64) -> ScenarioConfig {
        ScenarioConfig {
            label: "flows".into(),
            year: Year::Y2022,
            days,
            world: WorldConfig::default(),
            intensity: Intensity::year2022(),
            benign: BenignLevel::Merit,
            seed,
            day0_weekday: 4, // day 0 is a warm-up Friday; the reported week starts Saturday
        }
    }

    /// Packet-tap run with both networks' benign traffic (72 h default).
    pub fn taps(days: u64, seed: u64) -> ScenarioConfig {
        ScenarioConfig {
            label: "taps".into(),
            year: Year::Y2022,
            days,
            world: WorldConfig::default(),
            intensity: Intensity::year2022(),
            benign: BenignLevel::MeritAndCu,
            seed,
            day0_weekday: 0, // 2022-11-28 was a Monday
        }
    }

    /// Tiny run for tests.
    pub fn tiny(days: u64, seed: u64) -> ScenarioConfig {
        ScenarioConfig {
            label: "tiny".into(),
            year: Year::Y2022,
            days,
            world: WorldConfig::tiny(),
            intensity: Intensity::tiny(),
            benign: BenignLevel::MeritAndCu,
            seed,
            day0_weekday: 5,
        }
    }
}

impl Scenario {
    /// Assemble the world and actor population.
    pub fn build(cfg: ScenarioConfig) -> Scenario {
        // The whole substrate — world model, actor population, mux heap
        // — is charged to the mux account.
        let _mem = ah_mem::MemScope::enter(ah_mem::Tag::Mux);
        let world = World::new(cfg.world.clone());
        let space = Arc::new(world.observable().clone());
        let mut rng = Rng64::new(cfg.seed);
        let mut mux = TrafficMux::new();
        let end = Ts::from_days(cfg.days);
        let ports = ah_port_profile(cfg.year);
        let port_weights: Vec<f64> = ports.iter().map(|(_, w)| *w).collect();

        // --- Aggressive cloud/ISP sweepers -------------------------------
        let origins = sweeper_origins(cfg.year);
        let origin_weights: Vec<f64> = origins.iter().map(|(_, w)| *w).collect();
        let mut arrivals = ArrivalProcess::new(
            cfg.intensity.cloud_sweepers_alive,
            cfg.intensity.sweeper_lifetime_days,
            cfg.days,
            cfg.intensity.growth,
        );
        let mut n = 0u64;
        while let Some((start_day, life_days)) = arrivals.next(&mut rng) {
            n += 1;
            let org = world.registry_org(origins[rng.weighted(&origin_weights)].0);
            let src = org.host_cycled(rng.below(org.size()));
            // Rotate through 1-3 ports across sweeps; heavier hitters
            // retry targets (bruteforce flavor) on 22/23.
            let mut my_ports = Vec::new();
            for _ in 0..rng.range(1, 4) {
                my_ports.push(ports[rng.weighted(&port_weights)].0);
            }
            let brute = my_ports.iter().any(|p| p.port == 22 || p.port == 23 || p.port == 2323)
                && rng.chance(0.4);
            // ~40% of hitters scan *continuously* at a lower rate (their
            // darknet event spans their whole lifetime — the paper's
            // "active" population exceeding the "daily" one ~3x); the
            // rest run a discrete sweep roughly once a day.
            let persistent = rng.chance(0.6);
            let (rate_pps, repeat_every) = if persistent {
                (rng.pareto(0.06, 1.0, 1.2), Some(Dur::from_micros(1)))
            } else {
                (
                    rng.pareto(0.6, 9.0, 1.1),
                    Some(Dur::from_secs((86_400.0 * (0.7 + 0.8 * rng.f64())) as u64)),
                )
            };
            mux.add(Box::new(SweepScanner::new(
                SweepConfig {
                    src,
                    tool: match rng.weighted(&[0.40, 0.30, 0.30]) {
                        0 => ToolKind::ZMap,
                        1 => ToolKind::Masscan,
                        _ => ToolKind::Plain,
                    },
                    ports: my_ports,
                    rate_pps,
                    coverage: 0.15 + 0.85 * rng.f64(),
                    probes_per_target: if brute { 3 } else { 1 },
                    start: day_ts(start_day) + jitter(&mut rng),
                    repeat_every,
                    end: end.min(day_ts(start_day + life_days)),
                    seed: rng.next_u64(),
                },
                space.clone(),
            )));
        }
        let _cloud_sweepers = n;

        // --- Volume floods (definition-2-only hitters) ---------------------
        // High packet volume concentrated on a small slice of the space:
        // below the 10% dispersion cut but far out in the packet-volume
        // tail. The paper's 2022 D2 population is ~2x D1 with D1 fully
        // contained — these are the extra members.
        let mut arrivals =
            ArrivalProcess::new(cfg.intensity.flood_alive, 6.0, cfg.days, cfg.intensity.growth);
        while let Some((start_day, life_days)) = arrivals.next(&mut rng) {
            let org = world.registry_org(origins[rng.weighted(&origin_weights)].0);
            let src = org.host_cycled(rng.below(org.size()));
            mux.add(Box::new(SweepScanner::new(
                SweepConfig {
                    src,
                    tool: ToolKind::Plain,
                    ports: vec![*rng.choice(&[
                        PortSpec::tcp(22),
                        PortSpec::tcp(23),
                        PortSpec::tcp(3389),
                        PortSpec::tcp(445),
                        PortSpec::udp(5060),
                        PortSpec::udp(53),
                    ])],
                    rate_pps: rng.pareto(0.9, 5.0, 1.2),
                    coverage: 0.02 + 0.06 * rng.f64(),
                    probes_per_target: 4 + rng.pareto(1.0, 30.0, 1.1) as u32,
                    start: day_ts(start_day) + jitter(&mut rng),
                    repeat_every: Some(Dur::from_secs((86_400.0 * (0.8 + 0.6 * rng.f64())) as u64)),
                    end: end.min(day_ts(start_day + life_days)),
                    seed: rng.next_u64(),
                },
                space.clone(),
            )));
        }

        // --- Mirai-style bots --------------------------------------------
        let bots = bot_origins();
        let bot_weights: Vec<f64> = bots.iter().map(|(_, w)| *w).collect();
        let mut arrivals = ArrivalProcess::new(
            cfg.intensity.mirai_alive,
            cfg.intensity.mirai_lifetime_days,
            cfg.days,
            cfg.intensity.growth,
        );
        while let Some((start_day, life_days)) = arrivals.next(&mut rng) {
            let org = world.registry_org(bots[rng.weighted(&bot_weights)].0);
            let src = org.host_cycled(rng.below(org.size()));
            mux.add(Box::new(MiraiBot::new(
                src,
                rng.pareto(0.06, 0.7, 1.2),
                day_ts(start_day) + jitter(&mut rng),
                end.min(day_ts(start_day + life_days)),
                rng.next_u64(),
                space.clone(),
            )));
        }

        // --- Acknowledged research sweeps --------------------------------
        let research = world.orgs_where(|o| o.is_acked());
        for i in 0..cfg.intensity.research_ips {
            let acked_idx = i % research.len();
            let org = &world.orgs[research[acked_idx]];
            // Research orgs use a handful of scanning hosts each — some
            // in their own prefixes, every third one a rented cloud VM
            // (Table 5's ACKed-inside-the-cloud rows). Host indices
            // beyond the disclosed-list size exercise the rDNS match
            // stage (see World::acked_list).
            let src = if i % 3 == 2 {
                world.acked_cloud_host(acked_idx, (i / research.len()) as u64)
            } else {
                org.host((i / research.len()) as u64 * 7 + (i % 5) as u64)
            }
            // ah-lint: allow(panic-path, reason = "acked registry orgs and the cloud pool are non-empty by construction; World::acked_list tests pin this")
            .expect("acked org addresses exist");
            let port = ports[rng.weighted(&port_weights)].0;
            mux.add(Box::new(SweepScanner::new(
                SweepConfig {
                    src,
                    tool: ToolKind::ZMap, // research tooling is ZMap-derived
                    ports: vec![port, PortSpec::tcp(443), PortSpec::tcp(80)],
                    rate_pps: rng.pareto(1.5, 9.0, 1.4),
                    coverage: 0.7 + 0.3 * rng.f64(),
                    probes_per_target: 1,
                    start: Ts::from_micros(rng.below(MICROS_PER_DAY)),
                    repeat_every: Some(Dur::from_secs(
                        (86_400.0 * cfg.intensity.research_cycle_days * (0.8 + 0.4 * rng.f64()))
                            as u64,
                    )),
                    end,
                    seed: rng.next_u64(),
                },
                space.clone(),
            )));
        }

        // --- Vertical port sweepers (definition-3 hitters) ---------------
        let mut arrivals = ArrivalProcess::new(
            cfg.intensity.port_sweepers_alive,
            cfg.intensity.port_sweeper_lifetime_days,
            cfg.days,
            cfg.intensity.growth,
        );
        let research_orgs = world.orgs_where(|o| o.is_acked());
        while let Some((start_day, life_days)) = arrivals.next(&mut rng) {
            // Definition-3 origins differ from D1/D2: the paper even
            // finds research institutions among them. ~20% of vertical
            // scanners here come from acknowledged orgs.
            let origin = if rng.chance(0.3) {
                &world.orgs[*rng.choice(&research_orgs)]
            } else {
                world.registry_org(origins[rng.weighted(&origin_weights)].0)
            };
            let src = origin.host_cycled(rng.below(origin.size()));
            // Port breadth differs by year: the paper's D3 ECDF threshold
            // jumps from 6,542 (2021) to 57,410 (2022) ports/day.
            let port_count = match cfg.year {
                Year::Y2021 => rng.range(1_500, 8_000) as u16,
                Year::Y2022 => rng.range(6_000, 60_000).min(65_535) as u16,
            };
            let start = day_ts(start_day) + jitter(&mut rng);
            let stop = end.min(day_ts(start_day + life_days));
            mux.add(Box::new(PortSweeper::new(
                src,
                rng.range(4, 24) as usize,
                port_count,
                rng.pareto(0.15, 1.5, 1.3),
                start,
                stop,
                rng.next_u64(),
                &space,
            )));
            // A minority of vertical scanners also sweep horizontally
            // from the same address ("omni" scanners) — the small
            // D1∩D3 / D2∩D3 intersections of Table 7.
            if rng.chance(0.3) {
                mux.add(Box::new(SweepScanner::new(
                    SweepConfig {
                        src,
                        tool: ToolKind::Plain,
                        ports: vec![ports[rng.weighted(&port_weights)].0],
                        rate_pps: rng.pareto(1.0, 8.0, 1.3),
                        coverage: 0.5 + 0.5 * rng.f64(),
                        probes_per_target: 2,
                        start,
                        repeat_every: Some(Dur::from_secs(86_400)),
                        end: stop,
                        seed: rng.next_u64(),
                    },
                    space.clone(),
                )));
            }
        }

        // --- DoS backscatter ----------------------------------------------
        let content = world.registry_org("Hyperflix CDN");
        let victims: Vec<Ipv4Addr4> =
            (0..40).map(|_| content.host_cycled(rng.below(content.size()))).collect();
        mux.add(Box::new(Backscatter::new(
            victims,
            cfg.intensity.backscatter_pps,
            Ts::ZERO,
            end,
            rng.next_u64(),
            space.clone(),
        )));

        // --- Spoofed-source probe flood ------------------------------------
        // Forged sources (bogons + random unicast) sprayed across the
        // space: exercises the telescope's source filter and the
        // definitions' robustness to spoofing (no forged source repeats
        // enough to qualify).
        mux.add(Box::new(crate::actors::SpoofFlood::new(
            cfg.intensity.backscatter_pps * 0.8,
            Ts::ZERO,
            end,
            rng.next_u64(),
            space.clone(),
        )));

        // --- Background radiation (the small-scan long tail) --------------
        // A rotating window over a large source pool: `window` sources
        // alive at a time, `drift` fresh ones per day — producing the
        // paper's large daily and even larger yearly unique-source counts.
        let misc = world.registry_org("Misc Internet");
        let window = cfg.intensity.radiation_window;
        let drift = cfg.intensity.radiation_drift_per_day;
        // One radiation actor per ~week keeps the pool rotating without a
        // custom actor: each covers a slice of days with its own window.
        let slice_days = 7u64.min(cfg.days.max(1));
        let mut day = 0u64;
        let mut slice_no = 0u64;
        while day < cfg.days {
            let span = slice_days.min(cfg.days - day);
            let pool: Vec<Ipv4Addr4> =
                (0..window).map(|i| misc.host_cycled(slice_no * drift * slice_days + i)).collect();
            mux.add(Box::new(Radiation::new(
                pool,
                cfg.intensity.radiation_pps,
                day_ts(day),
                day_ts(day + span).min(end),
                rng.next_u64(),
                space.clone(),
            )));
            day += span;
            slice_no += 1;
        }

        // --- Benign user traffic ------------------------------------------
        let remotes = vec![
            world.registry_org("Hyperflix CDN").prefixes[0],
            world.registry_org("Globe Eyeballs").prefixes[0],
        ];
        if cfg.benign != BenignLevel::Off {
            mux.add(Box::new(Benign::new(
                cfg.world.merit_users,
                Some(cfg.world.merit_caches),
                0.55, // Merit's cache offload fraction
                remotes.clone(),
                cfg.intensity.benign_merit_pps,
                0.62,
                cfg.day0_weekday,
                Ts::ZERO,
                end,
                rng.next_u64(),
            )));
        }
        if cfg.benign == BenignLevel::MeritAndCu {
            mux.add(Box::new(Benign::new(
                cfg.world.cu_users,
                None, // CU has no in-network caches
                0.0,
                remotes,
                cfg.intensity.benign_cu_pps,
                0.62,
                cfg.day0_weekday,
                Ts::ZERO,
                end,
                rng.next_u64(),
            )));
        }

        Scenario { world, mux, days: cfg.days, year: cfg.year, label: cfg.label, seed: cfg.seed }
    }
}

fn day_ts(day: u64) -> Ts {
    Ts::from_days(day)
}

fn jitter(rng: &mut Rng64) -> Dur {
    Dur::from_micros(rng.below(MICROS_PER_DAY))
}

/// Poisson-ish arrival process with linear growth: maintains an average
/// of `alive(t)` concurrent entities with exponential lifetimes.
struct ArrivalProcess {
    alive0: f64,
    lifetime_days: f64,
    days: u64,
    growth: f64,
    t_days: f64,
    /// Initial cohort left to place at t≈0.
    initial_left: u64,
}

impl ArrivalProcess {
    fn new(alive: f64, lifetime_days: f64, days: u64, growth: f64) -> ArrivalProcess {
        ArrivalProcess {
            alive0: alive,
            lifetime_days,
            days,
            growth,
            t_days: 0.0,
            initial_left: alive.round() as u64,
        }
    }

    /// Next (start_day, lifetime_days), or `None` past the end.
    fn next(&mut self, rng: &mut Rng64) -> Option<(u64, u64)> {
        if self.initial_left > 0 {
            self.initial_left -= 1;
            // Residual lifetime for the standing population.
            let life = rng.exp(self.lifetime_days).ceil().max(1.0) as u64;
            return Some((0, life));
        }
        let alive_now = self.alive0 * (1.0 + self.growth * self.t_days / self.days.max(1) as f64);
        let arrival_gap = self.lifetime_days / alive_now;
        self.t_days += rng.exp(arrival_gap);
        if self.t_days >= self.days as f64 {
            return None;
        }
        let life = rng.exp(self.lifetime_days).ceil().max(1.0) as u64;
        Some((self.t_days as u64, life))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    use std::collections::HashSet;

    #[test]
    fn tiny_scenario_builds_and_runs() {
        let mut sc = Scenario::build(ScenarioConfig::tiny(2, 42));
        let mut n = 0u64;
        let mut scans = 0u64;
        let mut last = Ts::ZERO;
        let dark = sc.world.config.dark;
        let mut dark_hits = 0u64;
        sc.mux.drive(|p| {
            n += 1;
            assert!(p.ts >= last, "time ordering violated");
            last = p.ts;
            if p.scan_class().is_some() {
                scans += 1;
            }
            if dark.contains(p.dst) {
                dark_hits += 1;
            }
        });
        assert!(n > 10_000, "too few packets: {n}");
        assert!(scans > 1000, "too few scan packets: {scans}");
        assert!(dark_hits > 500, "dark space should be hit: {dark_hits}");
        assert!(last < Ts::from_days(2) + Dur::from_secs(1));
    }

    #[test]
    fn deterministic_under_seed() {
        let collect = |seed| {
            let mut sc = Scenario::build(ScenarioConfig::tiny(1, seed));
            let mut v = Vec::new();
            sc.mux.drive(|p| v.push((p.ts, p.src, p.dst, p.ip_id)));
            v
        };
        assert_eq!(collect(7), collect(7));
        assert_ne!(collect(7), collect(8));
    }

    #[test]
    fn scan_classes_and_tools_all_present() {
        let mut sc = Scenario::build(ScenarioConfig::tiny(2, 3));
        let mut classes = HashSet::new();
        let mut tools = HashSet::new();
        sc.mux.drive(|p| {
            if let Some(c) = p.scan_class() {
                classes.insert(c);
                tools.insert(ah_net::fingerprint::classify(p));
            }
        });
        assert_eq!(classes.len(), 3, "{classes:?}");
        assert!(tools.contains(&ah_net::fingerprint::Tool::ZMap));
        assert!(tools.contains(&ah_net::fingerprint::Tool::Mirai));
    }

    #[test]
    fn benign_off_means_no_user_traffic() {
        let mut cfg = ScenarioConfig::tiny(1, 5);
        cfg.benign = BenignLevel::Off;
        let mut sc = Scenario::build(cfg);
        let users = sc.world.config.merit_users;
        let mut user_dst = 0u64;
        let mut n = 0u64;
        sc.mux.drive(|p| {
            n += 1;
            // Scanners do hit user space; benign *download* traffic has
            // large packets — absent when benign is off.
            if users.contains(p.dst) && p.wire_len > 1000 {
                user_dst += 1;
            }
        });
        assert!(n > 0);
        assert_eq!(user_dst, 0);
    }

    #[test]
    fn year_profiles_differ() {
        let p21 = ah_port_profile(Year::Y2021);
        let p22 = ah_port_profile(Year::Y2022);
        let s21: HashSet<u16> = p21.iter().map(|(p, _)| p.port).collect();
        let s22: HashSet<u16> = p22.iter().map(|(p, _)| p.port).collect();
        let shared = s21.intersection(&s22).count();
        assert!(shared >= 18, "most top ports persist: {shared}");
        assert_ne!(s21, s22, "but not all");
    }

    #[test]
    fn arrival_process_respects_span() {
        let mut rng = Rng64::new(1);
        let mut a = ArrivalProcess::new(5.0, 3.0, 30, 0.3);
        let mut count = 0;
        while let Some((start, _life)) = a.next(&mut rng) {
            assert!(start < 30);
            count += 1;
        }
        // alive*days/lifetime ≈ 50 arrivals plus the initial cohort.
        assert!((20..150).contains(&count), "{count}");
    }

    #[test]
    fn growth_increases_arrivals_late() {
        let mut rng = Rng64::new(2);
        let mut a = ArrivalProcess::new(20.0, 2.0, 100, 1.0);
        let mut early = 0;
        let mut late = 0;
        while let Some((start, _)) = a.next(&mut rng) {
            if start < 50 {
                early += 1;
            } else {
                late += 1;
            }
        }
        assert!(late as f64 > early as f64 * 1.1, "early {early} late {late}");
    }
}
