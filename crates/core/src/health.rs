//! Graceful-degradation accounting for the measurement pipeline.
//!
//! Every stage that can lose, repair or quarantine input — telescope
//! capture, darknet event aggregation, the ISP flow caches, NetFlow v9
//! decode, GreyNoise ingest — reports a [`StageHealth`] record here
//! instead of discarding silently. The per-stage conservation identity
//!
//! ```text
//! received = accepted + quarantined + Σ discarded-by-category
//! ```
//!
//! is what lets an experiment assert that *nothing disappeared without a
//! ledger entry*, even under fault injection (`ah-simnet::faults`).
//! `repaired` counts inputs that were accepted after an in-place fix
//! (e.g. an event start moved earlier by a late packet) and is a subset
//! of `accepted`, not a separate fate.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Input-fate counters for one pipeline stage.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StageHealth {
    /// Stage name, e.g. `"telescope.capture"` or `"flow.merit"`.
    pub stage: String,
    /// Inputs offered to the stage.
    pub received: u64,
    /// Inputs the stage fully processed (including repaired ones).
    pub accepted: u64,
    /// Accepted inputs that needed an in-place repair first
    /// (subset of `accepted`).
    pub repaired: u64,
    /// Inputs set aside as unusable-but-counted (e.g. packets beyond the
    /// aggregator's reorder window).
    pub quarantined: u64,
    /// Inputs rejected, by category (e.g. `"not_dark"`, `"duplicate"`,
    /// `"template_evicted"`).
    pub discarded: BTreeMap<String, u64>,
}

impl StageHealth {
    /// An empty ledger for the named stage.
    pub fn new(stage: &str) -> StageHealth {
        StageHealth { stage: stage.to_string(), ..StageHealth::default() }
    }

    /// Add `n` to a discard category.
    pub fn discard(&mut self, category: &str, n: u64) {
        if n > 0 {
            *self.discarded.entry(category.to_string()).or_insert(0) += n;
        }
    }

    /// Sum over all discard categories.
    pub fn discarded_total(&self) -> u64 {
        self.discarded.values().sum()
    }

    /// The stage-level conservation identity.
    pub fn conserves(&self) -> bool {
        self.received == self.accepted + self.quarantined + self.discarded_total()
    }
}

/// Health records for every stage of one pipeline run, in pipeline order.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PipelineHealth {
    /// Stage ledgers, in pipeline order.
    pub stages: Vec<StageHealth>,
}

impl PipelineHealth {
    /// Append the next stage's ledger.
    pub fn push(&mut self, stage: StageHealth) {
        self.stages.push(stage);
    }

    /// Look up a stage by name.
    pub fn stage(&self, name: &str) -> Option<&StageHealth> {
        self.stages.iter().find(|s| s.stage == name)
    }

    /// True when every stage's ledger balances.
    pub fn conserves(&self) -> bool {
        self.stages.iter().all(StageHealth::conserves)
    }

    /// Names of stages whose ledger does NOT balance (for diagnostics).
    pub fn violations(&self) -> Vec<&str> {
        self.stages.iter().filter(|s| !s.conserves()).map(|s| s.stage.as_str()).collect()
    }

    /// Total inputs discarded anywhere in the pipeline.
    pub fn total_discarded(&self) -> u64 {
        self.stages.iter().map(StageHealth::discarded_total).sum()
    }

    /// Export every stage ledger as gauges on `rec`, under
    /// `ah_core_health_*` with a `stage` label (and a `category` label
    /// for per-category discards).
    ///
    /// Gauges rather than counters because a ledger is a point-in-time
    /// absolute snapshot, not an increment stream; re-exporting the same
    /// ledger is idempotent. Values mirror the `PipelineHealth` struct
    /// exactly, so `tests/telemetry.rs` cross-checks the exported
    /// metrics against the end-of-run ledger field by field.
    pub fn export_metrics(&self, rec: &ah_obs::Recorder) {
        for s in &self.stages {
            let labels = [("stage", s.stage.as_str())];
            rec.gauge_with("ah_core_health_received_count", &labels).set(s.received as i64);
            rec.gauge_with("ah_core_health_accepted_count", &labels).set(s.accepted as i64);
            rec.gauge_with("ah_core_health_repaired_count", &labels).set(s.repaired as i64);
            rec.gauge_with("ah_core_health_quarantined_count", &labels).set(s.quarantined as i64);
            rec.gauge_with("ah_core_health_discarded_count", &labels)
                .set(s.discarded_total() as i64);
            for (cat, n) in &s.discarded {
                rec.gauge_with(
                    "ah_core_health_discarded_by_category_count",
                    &[("stage", s.stage.as_str()), ("category", cat.as_str())],
                )
                .set(*n as i64);
            }
        }
    }

    /// Human-readable ledger, one stage per line plus discard breakdown.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<22} {:>12} {:>12} {:>9} {:>11} {:>10}  ok",
            "stage", "received", "accepted", "repaired", "quarantined", "discarded"
        );
        for s in &self.stages {
            let _ = writeln!(
                out,
                "{:<22} {:>12} {:>12} {:>9} {:>11} {:>10}  {}",
                s.stage,
                s.received,
                s.accepted,
                s.repaired,
                s.quarantined,
                s.discarded_total(),
                if s.conserves() { "yes" } else { "NO" }
            );
            for (cat, n) in &s.discarded {
                let _ = writeln!(out, "{:<22}   - {cat}: {n}", "");
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_stage() -> StageHealth {
        let mut s = StageHealth::new("telescope.capture");
        s.received = 100;
        s.accepted = 80;
        s.repaired = 5;
        s.quarantined = 4;
        s.discard("not_dark", 10);
        s.discard("filtered_source", 6);
        s
    }

    #[test]
    fn conservation_holds_when_ledger_balances() {
        let s = sample_stage();
        assert_eq!(s.discarded_total(), 16);
        assert!(s.conserves());
    }

    #[test]
    fn conservation_fails_on_unaccounted_loss() {
        let mut s = sample_stage();
        s.accepted -= 1; // one input vanished without a ledger entry
        assert!(!s.conserves());
        let mut h = PipelineHealth::default();
        h.push(sample_stage());
        h.push(s);
        assert!(!h.conserves());
        assert_eq!(h.violations(), vec!["telescope.capture"]);
    }

    #[test]
    fn discard_categories_accumulate() {
        let mut s = StageHealth::new("flow.v9");
        s.discard("template_evicted", 2);
        s.discard("template_evicted", 3);
        s.discard("noop", 0);
        assert_eq!(s.discarded.get("template_evicted"), Some(&5));
        assert!(!s.discarded.contains_key("noop"));
    }

    #[test]
    fn pipeline_lookup_and_render() {
        let mut h = PipelineHealth::default();
        h.push(sample_stage());
        let mut flows = StageHealth::new("flow.merit");
        flows.received = 10;
        flows.accepted = 9;
        flows.discard("duplicate", 1);
        h.push(flows);
        assert!(h.conserves());
        assert!(h.violations().is_empty());
        assert_eq!(h.total_discarded(), 17);
        assert_eq!(h.stage("flow.merit").map(|s| s.received), Some(10));
        assert!(h.stage("missing").is_none());
        let text = h.render();
        assert!(text.contains("telescope.capture"));
        assert!(text.contains("duplicate: 1"));
        assert!(text.contains("yes"));
    }
}
